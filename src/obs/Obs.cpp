//===- obs/Obs.cpp - Runtime metrics registry ---------------------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "obs/Obs.h"

#include "support/Format.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace isp;
using namespace isp::obs;

// The ISP_STATS environment variable pre-enables collection for runs
// that never reach a flag parser (tests, benches under a profiler).
static bool initialStatsEnabled() {
  const char *Env = std::getenv("ISP_STATS");
  return Env && *Env && std::strcmp(Env, "0") != 0;
}

bool isp::obs::StatsEnabledFlag = initialStatsEnabled();

void isp::obs::setStatsEnabled(bool Enabled) { StatsEnabledFlag = Enabled; }

uint64_t isp::obs::nowNs() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point Anchor = Clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           Anchor)
          .count());
}

Registry::Registry() = default;

Registry &Registry::get() {
  static Registry Instance;
  return Instance;
}

Counter &Registry::counter(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::unique_ptr<Counter> &Slot = Counters[Name];
  if (!Slot)
    Slot = std::make_unique<Counter>();
  return *Slot;
}

Gauge &Registry::gauge(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::unique_ptr<Gauge> &Slot = Gauges[Name];
  if (!Slot)
    Slot = std::make_unique<Gauge>();
  return *Slot;
}

Histogram &Registry::histogram(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::unique_ptr<Histogram> &Slot = Histograms[Name];
  if (!Slot)
    Slot = std::make_unique<Histogram>();
  return *Slot;
}

void Registry::reset() {
  std::lock_guard<std::mutex> Lock(Mutex);
  for (auto &[Name, C] : Counters)
    C->reset();
  for (auto &[Name, G] : Gauges)
    G->reset();
  for (auto &[Name, H] : Histograms)
    H->reset();
}

std::map<std::string, uint64_t> Registry::counterValues() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::map<std::string, uint64_t> Out;
  for (const auto &[Name, C] : Counters)
    Out[Name] = C->value();
  return Out;
}

bool Registry::empty() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Counters.empty() && Gauges.empty() && Histograms.empty();
}

static std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out += formatString("\\u%04x", C);
      else
        Out.push_back(C);
    }
  }
  return Out;
}

std::string Registry::renderJson() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::string Out =
      formatString("{\n  \"schema_version\": %u,\n  \"counters\": {",
                   StatsSchemaVersion);
  bool First = true;
  for (const auto &[Name, C] : Counters) {
    Out += formatString("%s\n    \"%s\": %llu", First ? "" : ",",
                        jsonEscape(Name).c_str(),
                        static_cast<unsigned long long>(C->value()));
    First = false;
  }
  Out += First ? "},\n" : "\n  },\n";
  Out += "  \"gauges\": {";
  First = true;
  for (const auto &[Name, G] : Gauges) {
    Out += formatString("%s\n    \"%s\": %llu", First ? "" : ",",
                        jsonEscape(Name).c_str(),
                        static_cast<unsigned long long>(G->value()));
    First = false;
  }
  Out += First ? "},\n" : "\n  },\n";
  Out += "  \"histograms\": {";
  First = true;
  for (const auto &[Name, H] : Histograms) {
    Out += formatString(
        "%s\n    \"%s\": {\"count\": %llu, \"sum\": %llu, \"max\": %llu, "
        "\"mean\": %.3f, \"buckets\": [",
        First ? "" : ",", jsonEscape(Name).c_str(),
        static_cast<unsigned long long>(H->count()),
        static_cast<unsigned long long>(H->sum()),
        static_cast<unsigned long long>(H->max()), H->mean());
    bool FirstBucket = true;
    for (unsigned I = 0; I != Histogram::NumBuckets; ++I) {
      uint64_t N = H->bucketCount(I);
      if (N == 0)
        continue;
      Out += formatString(
          "%s[%llu, %llu]", FirstBucket ? "" : ", ",
          static_cast<unsigned long long>(Histogram::bucketLowerBound(I)),
          static_cast<unsigned long long>(N));
      FirstBucket = false;
    }
    Out += "]}";
    First = false;
  }
  Out += First ? "}\n" : "\n  }\n";
  Out += "}\n";
  return Out;
}

std::string Registry::renderJsonLine(uint64_t Seq) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::string Out = formatString(
      "{\"schema_version\": %u, \"seq\": %llu, \"ts_ns\": %llu, "
      "\"counters\": {",
      StatsSchemaVersion, static_cast<unsigned long long>(Seq),
      static_cast<unsigned long long>(nowNs()));
  bool First = true;
  for (const auto &[Name, C] : Counters) {
    Out += formatString("%s\"%s\": %llu", First ? "" : ", ",
                        jsonEscape(Name).c_str(),
                        static_cast<unsigned long long>(C->value()));
    First = false;
  }
  Out += "}, \"gauges\": {";
  First = true;
  for (const auto &[Name, G] : Gauges) {
    Out += formatString("%s\"%s\": %llu", First ? "" : ", ",
                        jsonEscape(Name).c_str(),
                        static_cast<unsigned long long>(G->value()));
    First = false;
  }
  Out += "}, \"histograms\": {";
  First = true;
  for (const auto &[Name, H] : Histograms) {
    Out += formatString(
        "%s\"%s\": {\"count\": %llu, \"sum\": %llu, \"max\": %llu}",
        First ? "" : ", ", jsonEscape(Name).c_str(),
        static_cast<unsigned long long>(H->count()),
        static_cast<unsigned long long>(H->sum()),
        static_cast<unsigned long long>(H->max()));
    First = false;
  }
  Out += "}}\n";
  return Out;
}

std::string Registry::renderCsv() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::string Out = "kind,name,value\n";
  for (const auto &[Name, C] : Counters)
    Out += formatString("counter,%s,%llu\n", Name.c_str(),
                        static_cast<unsigned long long>(C->value()));
  for (const auto &[Name, G] : Gauges)
    Out += formatString("gauge,%s,%llu\n", Name.c_str(),
                        static_cast<unsigned long long>(G->value()));
  for (const auto &[Name, H] : Histograms) {
    Out += formatString("histogram.count,%s,%llu\n", Name.c_str(),
                        static_cast<unsigned long long>(H->count()));
    Out += formatString("histogram.sum,%s,%llu\n", Name.c_str(),
                        static_cast<unsigned long long>(H->sum()));
    Out += formatString("histogram.max,%s,%llu\n", Name.c_str(),
                        static_cast<unsigned long long>(H->max()));
  }
  return Out;
}

bool StatsHeartbeat::start(const std::string &Path, unsigned IntervalMs) {
  if (Thread.joinable() || File)
    return false;
  File = std::fopen(Path.c_str(), "a");
  if (!File)
    return false;
  Stopping = false;
  emitSnapshot();
  Thread = std::thread([this, IntervalMs] { run(IntervalMs); });
  return true;
}

void StatsHeartbeat::stop() {
  if (Thread.joinable()) {
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      Stopping = true;
    }
    Cv.notify_all();
    Thread.join();
  }
  if (File) {
    emitSnapshot();
    std::fclose(File);
    File = nullptr;
  }
}

void StatsHeartbeat::run(unsigned IntervalMs) {
  std::unique_lock<std::mutex> Lock(Mutex);
  for (;;) {
    if (Cv.wait_for(Lock, std::chrono::milliseconds(IntervalMs ? IntervalMs : 1),
                    [this] { return Stopping; }))
      return;
    emitSnapshot();
  }
}

void StatsHeartbeat::emitSnapshot() {
  std::string Line = Registry::get().renderJsonLine(Seq++);
  std::fputs(Line.c_str(), File);
  std::fflush(File);
}

bool isp::obs::writeStatsFile(const std::string &Path, StatsFormat Format) {
  std::string Rendered = Format == StatsFormat::Json
                             ? Registry::get().renderJson()
                             : Registry::get().renderCsv();
  if (Path.empty() || Path == "-") {
    std::fputs(Rendered.c_str(), stdout);
    return true;
  }
  FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  std::fputs(Rendered.c_str(), F);
  std::fclose(F);
  return true;
}
