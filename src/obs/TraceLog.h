//===- obs/TraceLog.h - Chrome trace_event timeline -------------*- C++ -*-===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A self-profiling timeline of the instrumentation pipeline in the
/// Chrome trace_event JSON format, loadable in chrome://tracing and
/// Perfetto. One lane ("tid" in trace terms, all under pid 1) per guest
/// thread — spans are the scheduler slices that thread ran, named after
/// the function on top of its stack — plus dedicated lanes for the
/// dispatcher (flush spans, tagged with their cause) and for each
/// registered tool (per-flush callback spans). Under parallel tool
/// fan-out each dispatcher worker gets its own lane ("worker N") whose
/// spans cover one batch-slot consumption; tool callback spans are then
/// emitted from the worker that owns the tool (the recorder itself is
/// mutex-protected, so lanes interleave safely).
///
/// Recording is gated on one global bool like stats collection; span
/// granularity is scheduler slices and batch flushes (hundreds of
/// events apiece), never individual events, so an enabled timeline
/// costs two clock reads per slice/flush, not per event.
///
/// Timestamps are obs::nowNs() nanoseconds, written as microseconds
/// (the format's unit) with 3 fractional digits.
///
//===----------------------------------------------------------------------===//

#ifndef ISPROF_OBS_TRACELOG_H
#define ISPROF_OBS_TRACELOG_H

#include "obs/Obs.h"

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace isp {
namespace obs {

/// A timeline lane ("tid" in the trace_event model). Guest threads use
/// their ThreadId verbatim; infrastructure lanes (dispatcher, tools,
/// driver) are allocated from FirstInfraLane upward so they can never
/// collide with guest ids.
using LaneId = uint32_t;

/// Global timeline switch, mirroring StatsEnabledFlag.
extern bool TracingEnabledFlag;
inline bool tracingEnabled() { return TracingEnabledFlag; }

class TraceLog {
public:
  static constexpr LaneId FirstInfraLane = 1u << 20;

  static TraceLog &get();

  /// Turns recording on (idempotent).
  void enable();
  /// Turns recording off and drops everything recorded.
  void reset();

  /// Allocates a fresh infrastructure lane named \p Name.
  LaneId allocLane(const std::string &Name);
  /// Names a lane (guest lanes are named on thread start).
  void setLaneName(LaneId Lane, const std::string &Name);

  /// Records a completed span ('X' phase). No-op when disabled.
  void completeSpan(LaneId Lane, const std::string &Name,
                    const char *Category, uint64_t StartNs, uint64_t EndNs);
  /// Records an instant event ('i' phase). No-op when disabled.
  void instant(LaneId Lane, const std::string &Name, const char *Category,
               uint64_t TsNs);
  /// Records a counter sample ('C' phase) on the process track.
  void counterSample(const std::string &Name, uint64_t Value, uint64_t TsNs);

  size_t eventCount() const;

  /// Renders the whole timeline as a trace_event JSON object.
  std::string renderJson() const;
  /// Writes renderJson() to \p Path. Returns false on I/O failure.
  bool write(const std::string &Path) const;

private:
  TraceLog() = default;

  struct Record {
    char Phase; // 'X', 'i', 'C'
    LaneId Lane = 0;
    uint64_t TsNs = 0;
    uint64_t DurNs = 0; // 'X' only
    uint64_t Value = 0; // 'C' only
    std::string Name;
    const char *Category = "";
  };

  mutable std::mutex Mutex;
  std::vector<Record> Records;
  std::vector<std::pair<LaneId, std::string>> LaneNames;
  LaneId NextInfraLane = FirstInfraLane;
};

/// Records a span around a scope. Arms only if tracing was enabled at
/// construction, so a disabled scope costs one bool test.
class ScopedSpan {
public:
  ScopedSpan(LaneId Lane, std::string Name, const char *Category)
      : Active(tracingEnabled()), Lane(Lane), Name(std::move(Name)),
        Category(Category), StartNs(Active ? nowNs() : 0) {}
  ScopedSpan(const ScopedSpan &) = delete;
  ScopedSpan &operator=(const ScopedSpan &) = delete;
  ~ScopedSpan() {
    if (Active)
      TraceLog::get().completeSpan(Lane, Name, Category, StartNs, nowNs());
  }

private:
  bool Active;
  LaneId Lane;
  std::string Name;
  const char *Category;
  uint64_t StartNs;
};

} // namespace obs
} // namespace isp

#endif // ISPROF_OBS_TRACELOG_H
