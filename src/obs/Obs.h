//===- obs/Obs.h - Runtime metrics registry ---------------------*- C++ -*-===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Self-observability for the event pipeline: a process-wide registry of
/// monotonic counters, gauges, and fixed-bucket power-of-two histograms,
/// plus scoped wall-clock timers and JSON/CSV exporters.
///
/// Design constraints, in order:
///
///  1. **Near-zero cost when disabled.** Collection is gated on one
///     global bool (`statsEnabled()`); every instrumentation site is a
///     predicted-not-taken branch via the ISP_STATS macro, and a
///     disabled process never interns a metric name or allocates a
///     metric slot (tested). The pipeline's highest-frequency counters
///     (dispatcher merge counts, machine access tallies) stay plain
///     per-object integers that are *folded* into the registry at
///     publish points, so the interpreter loop never pays even the
///     branch.
///  2. **Honest under the serialized scheduler.** Guest threads are
///     serialized, but the dispatcher's parallel tool fan-out bumps
///     tool-side counters from worker threads; all registry metrics are
///     therefore relaxed atomics — unsynchronized visibility is
///     acceptable for statistics, torn counts are not. Per-tool tallies
///     (events delivered, callback time) stay plain integers because a
///     tool is owned by exactly one consumer thread; the dispatcher
///     folds them into the registry after the finish() join.
///  3. **Stable exports.** Metric maps are name-sorted, so JSON/CSV
///     dumps are deterministic and diffable (the golden-file tests rely
///     on this).
///
/// Naming convention: "<stage>.<metric>" with '.'-separated lowercase
/// segments — "machine.instructions", "dispatcher.access_merges",
/// "shadow.wts.cache_hits", "tool.aprof-trms.callback_ns". Durations are
/// counters in nanoseconds with an "_ns" suffix; sizes are gauges in
/// bytes with a "_bytes" suffix. Parallel fan-out publishes under
/// "dispatcher.parallel.*": the worker count, the
/// blocked-on-backpressure counter ("backpressure_blocks" plus the
/// nanoseconds spent blocked), and the peak batch-queue depth.
///
//===----------------------------------------------------------------------===//

#ifndef ISPROF_OBS_OBS_H
#define ISPROF_OBS_OBS_H

#include "support/Compiler.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace isp {
namespace obs {

/// Version stamp of every JSON stats export (renderJson and the
/// heartbeat's renderJsonLine). Bump it whenever the export shape
/// changes; fleet scrapers gate on the field.
inline constexpr unsigned StatsSchemaVersion = 1;

/// Global stats-collection switch. Off by default; the driver's --stats
/// flag and the ISP_STATS=1 environment variable turn it on. Read
/// through statsEnabled() — a single non-atomic bool load. (The flag is
/// flipped only during single-threaded setup, never mid-run.)
extern bool StatsEnabledFlag;
inline bool statsEnabled() { return StatsEnabledFlag; }
void setStatsEnabled(bool Enabled);

/// Runs \p ... only when stats collection is on. The guard is the whole
/// cost of a disabled instrumentation site.
#define ISP_STATS(...)                                                        \
  do {                                                                        \
    if (ISP_UNLIKELY(::isp::obs::statsEnabled())) {                           \
      __VA_ARGS__;                                                            \
    }                                                                         \
  } while (0)

/// Nanoseconds of steady-clock time since the first call in this
/// process. All obs timestamps (timers, trace spans) share this anchor.
uint64_t nowNs();

/// A monotonic counter.
class Counter {
public:
  void add(uint64_t N = 1) { Value.fetch_add(N, std::memory_order_relaxed); }
  uint64_t value() const { return Value.load(std::memory_order_relaxed); }
  void reset() { Value.store(0, std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> Value{0};
};

/// A last-value / high-water-mark cell.
class Gauge {
public:
  void set(uint64_t V) { Value.store(V, std::memory_order_relaxed); }
  /// Raises the gauge to \p V if larger (peak tracking).
  void noteMax(uint64_t V) {
    uint64_t Cur = Value.load(std::memory_order_relaxed);
    while (V > Cur &&
           !Value.compare_exchange_weak(Cur, V, std::memory_order_relaxed))
      ;
  }
  uint64_t value() const { return Value.load(std::memory_order_relaxed); }
  void reset() { Value.store(0, std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> Value{0};
};

/// A fixed-bucket histogram over uint64 samples. Buckets are powers of
/// two: bucket 0 holds zeros, bucket i (i >= 1) holds values in
/// [2^(i-1), 2^i). 33 buckets cover [0, 2^32); larger samples land in
/// the last bucket. Fixed storage means record() never allocates — safe
/// on hot paths and in the disabled->enabled transition.
class Histogram {
public:
  static constexpr unsigned NumBuckets = 33;

  void record(uint64_t V) {
    Buckets[bucketIndex(V)].fetch_add(1, std::memory_order_relaxed);
    Count.fetch_add(1, std::memory_order_relaxed);
    Sum.fetch_add(V, std::memory_order_relaxed);
    uint64_t Cur = Max.load(std::memory_order_relaxed);
    while (V > Cur &&
           !Max.compare_exchange_weak(Cur, V, std::memory_order_relaxed))
      ;
  }

  uint64_t count() const { return Count.load(std::memory_order_relaxed); }
  uint64_t sum() const { return Sum.load(std::memory_order_relaxed); }
  uint64_t max() const { return Max.load(std::memory_order_relaxed); }
  double mean() const {
    uint64_t N = count();
    return N ? static_cast<double>(sum()) / static_cast<double>(N) : 0.0;
  }
  uint64_t bucketCount(unsigned I) const {
    return Buckets[I].load(std::memory_order_relaxed);
  }
  /// Smallest sample value that lands in bucket \p I.
  static uint64_t bucketLowerBound(unsigned I) {
    return I == 0 ? 0 : uint64_t(1) << (I - 1);
  }
  static unsigned bucketIndex(uint64_t V) {
    unsigned Bits = 0;
    while (V != 0) {
      ++Bits;
      V >>= 1;
    }
    return Bits < NumBuckets ? Bits : NumBuckets - 1;
  }

  void reset() {
    for (auto &B : Buckets)
      B.store(0, std::memory_order_relaxed);
    Count.store(0, std::memory_order_relaxed);
    Sum.store(0, std::memory_order_relaxed);
    Max.store(0, std::memory_order_relaxed);
  }

private:
  std::atomic<uint64_t> Buckets[NumBuckets] = {};
  std::atomic<uint64_t> Count{0};
  std::atomic<uint64_t> Sum{0};
  std::atomic<uint64_t> Max{0};
};

/// The process-wide metric registry. Lookup interns the name under a
/// mutex (cold — instrumentation sites cache the reference or run at
/// publish points); the returned references stay valid for the process
/// lifetime, including across reset().
class Registry {
public:
  static Registry &get();

  Counter &counter(const std::string &Name);
  Gauge &gauge(const std::string &Name);
  Histogram &histogram(const std::string &Name);

  /// Zeroes every registered metric (bench repetitions, tests). Names
  /// stay registered; references stay valid.
  void reset();

  /// All counters by name (snapshot; used by the bench harnesses).
  std::map<std::string, uint64_t> counterValues() const;
  /// True when nothing has ever been registered (disabled-mode test).
  bool empty() const;

  /// Renders every metric as a stable, name-sorted JSON object:
  /// {"schema_version":N,"counters":{...},"gauges":{...},
  /// "histograms":{name:{count,sum,max,mean,buckets:[[lower,count],
  /// ...]}}}. schema_version is bumped whenever the export shape
  /// changes, so fleet scrapers can gate on it.
  std::string renderJson() const;
  /// Renders every metric as "kind,name,value" CSV rows (histograms are
  /// flattened into .count/.sum/.max rows).
  std::string renderCsv() const;
  /// One compact single-line JSON snapshot (JSONL) carrying
  /// schema_version, \p Seq, a steady-clock timestamp, and every
  /// counter/gauge plus histogram count/sum/max — the heartbeat record
  /// long-lived runs append per --stats-interval tick.
  std::string renderJsonLine(uint64_t Seq) const;

private:
  Registry();

  mutable std::mutex Mutex;
  std::map<std::string, std::unique_ptr<Counter>> Counters;
  std::map<std::string, std::unique_ptr<Gauge>> Gauges;
  std::map<std::string, std::unique_ptr<Histogram>> Histograms;
};

/// Export format for writeStatsFile.
enum class StatsFormat { Json, Csv };

/// Writes the registry to \p Path ("" or "-" mean stdout). Returns false
/// when the file cannot be opened.
bool writeStatsFile(const std::string &Path, StatsFormat Format);

/// Accumulates elapsed wall-clock nanoseconds into a counter and/or a
/// histogram on destruction. Pass null for a disabled site — the timer
/// then never reads the clock.
class ScopedTimer {
public:
  explicit ScopedTimer(Counter *NsTotal, Histogram *NsHist = nullptr)
      : NsTotal(NsTotal), NsHist(NsHist),
        StartNs(NsTotal || NsHist ? nowNs() : 0) {}
  ScopedTimer(const ScopedTimer &) = delete;
  ScopedTimer &operator=(const ScopedTimer &) = delete;
  ~ScopedTimer() { stop(); }

  /// Records once and disarms; returns the elapsed nanoseconds.
  uint64_t stop() {
    if (!NsTotal && !NsHist)
      return 0;
    uint64_t Elapsed = nowNs() - StartNs;
    if (NsTotal)
      NsTotal->add(Elapsed);
    if (NsHist)
      NsHist->record(Elapsed);
    NsTotal = nullptr;
    NsHist = nullptr;
    return Elapsed;
  }

private:
  Counter *NsTotal;
  Histogram *NsHist;
  uint64_t StartNs;
};

/// Periodic live-stats emitter for always-on runs (--stats-interval).
/// A background thread appends one renderJsonLine snapshot to the
/// target file per interval; start() writes an initial snapshot and
/// stop() a final one, so every run produces at least two. The file is
/// JSONL: one self-contained JSON object per line, each carrying
/// schema_version and a monotonically increasing seq.
class StatsHeartbeat {
public:
  StatsHeartbeat() = default;
  StatsHeartbeat(const StatsHeartbeat &) = delete;
  StatsHeartbeat &operator=(const StatsHeartbeat &) = delete;
  ~StatsHeartbeat() { stop(); }

  /// Opens \p Path for appending and starts the emitter thread. Returns
  /// false (without starting) when the file cannot be opened.
  bool start(const std::string &Path, unsigned IntervalMs);
  /// Appends the final snapshot, joins the thread, closes the file.
  /// Idempotent.
  void stop();

  /// Snapshots appended so far.
  uint64_t snapshots() const { return Seq; }

private:
  void run(unsigned IntervalMs);
  void emitSnapshot();

  std::thread Thread;
  std::mutex Mutex;
  std::condition_variable Cv;
  bool Stopping = false;
  FILE *File = nullptr;
  uint64_t Seq = 0;
};

} // namespace obs
} // namespace isp

#endif // ISPROF_OBS_OBS_H
