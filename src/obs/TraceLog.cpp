//===- obs/TraceLog.cpp - Chrome trace_event timeline -------------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "obs/TraceLog.h"

#include "support/Format.h"

#include <cstdio>

using namespace isp;
using namespace isp::obs;

bool isp::obs::TracingEnabledFlag = false;

TraceLog &TraceLog::get() {
  static TraceLog Instance;
  return Instance;
}

void TraceLog::enable() { TracingEnabledFlag = true; }

void TraceLog::reset() {
  TracingEnabledFlag = false;
  std::lock_guard<std::mutex> Lock(Mutex);
  Records.clear();
  LaneNames.clear();
  NextInfraLane = FirstInfraLane;
}

LaneId TraceLog::allocLane(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mutex);
  LaneId Lane = NextInfraLane++;
  LaneNames.emplace_back(Lane, Name);
  return Lane;
}

void TraceLog::setLaneName(LaneId Lane, const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mutex);
  for (auto &[Id, Existing] : LaneNames)
    if (Id == Lane) {
      Existing = Name;
      return;
    }
  LaneNames.emplace_back(Lane, Name);
}

void TraceLog::completeSpan(LaneId Lane, const std::string &Name,
                            const char *Category, uint64_t StartNs,
                            uint64_t EndNs) {
  if (!tracingEnabled())
    return;
  std::lock_guard<std::mutex> Lock(Mutex);
  Records.push_back({'X', Lane, StartNs, EndNs - StartNs, 0, Name, Category});
}

void TraceLog::instant(LaneId Lane, const std::string &Name,
                       const char *Category, uint64_t TsNs) {
  if (!tracingEnabled())
    return;
  std::lock_guard<std::mutex> Lock(Mutex);
  Records.push_back({'i', Lane, TsNs, 0, 0, Name, Category});
}

void TraceLog::counterSample(const std::string &Name, uint64_t Value,
                             uint64_t TsNs) {
  if (!tracingEnabled())
    return;
  std::lock_guard<std::mutex> Lock(Mutex);
  Records.push_back({'C', 0, TsNs, 0, Value, Name, "counter"});
}

size_t TraceLog::eventCount() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Records.size();
}

static std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out += formatString("\\u%04x", C);
      else
        Out.push_back(C);
    }
  }
  return Out;
}

/// Nanoseconds -> the format's microseconds, keeping ns resolution.
static std::string micros(uint64_t Ns) {
  return formatString("%llu.%03u",
                      static_cast<unsigned long long>(Ns / 1000),
                      static_cast<unsigned>(Ns % 1000));
}

std::string TraceLog::renderJson() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::string Out = "{\"traceEvents\": [\n";
  bool First = true;
  auto Sep = [&]() -> const char * {
    const char *S = First ? "" : ",\n";
    First = false;
    return S;
  };
  for (const auto &[Lane, Name] : LaneNames)
    Out += formatString("%s{\"name\": \"thread_name\", \"ph\": \"M\", "
                        "\"pid\": 1, \"tid\": %u, \"args\": {\"name\": "
                        "\"%s\"}}",
                        Sep(), Lane, jsonEscape(Name).c_str());
  for (const Record &R : Records) {
    switch (R.Phase) {
    case 'X':
      Out += formatString("%s{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": "
                          "\"X\", \"ts\": %s, \"dur\": %s, \"pid\": 1, "
                          "\"tid\": %u}",
                          Sep(), jsonEscape(R.Name).c_str(), R.Category,
                          micros(R.TsNs).c_str(), micros(R.DurNs).c_str(),
                          R.Lane);
      break;
    case 'i':
      Out += formatString("%s{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": "
                          "\"i\", \"s\": \"t\", \"ts\": %s, \"pid\": 1, "
                          "\"tid\": %u}",
                          Sep(), jsonEscape(R.Name).c_str(), R.Category,
                          micros(R.TsNs).c_str(), R.Lane);
      break;
    case 'C':
      Out += formatString("%s{\"name\": \"%s\", \"ph\": \"C\", \"ts\": %s, "
                          "\"pid\": 1, \"args\": {\"value\": %llu}}",
                          Sep(), jsonEscape(R.Name).c_str(),
                          micros(R.TsNs).c_str(),
                          static_cast<unsigned long long>(R.Value));
      break;
    }
  }
  Out += "\n], \"displayTimeUnit\": \"ms\"}\n";
  return Out;
}

bool TraceLog::write(const std::string &Path) const {
  FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  std::string Rendered = renderJson();
  bool Ok = std::fwrite(Rendered.data(), 1, Rendered.size(), F) ==
            Rendered.size();
  return std::fclose(F) == 0 && Ok;
}
