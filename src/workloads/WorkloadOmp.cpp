//===- workloads/WorkloadOmp.cpp - SPEC OMP2012-like kernels -------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Fork-join parallel kernels modelled on the algorithmic cores of the
// twelve SPEC OMP2012 components the paper successfully ran (Table 1):
// md, bwaves, nab, botsalgn, botsspar, ilbdc, fma3d, imagick, mgrid331,
// applu331, smithwa, kdtree. Each spawns ${T} workers over a problem
// scaled by ${N} and mixes shared-array traffic (thread-induced input),
// private compute, and — where the original does I/O — device reads.
// Phase barriers are modelled by re-spawning workers per phase (fork-
// join), and the wavefront codes (applu331, smithwa) pipeline rows
// through semaphores, which is where their thread-induced input comes
// from.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include <algorithm>

using namespace isp;

namespace {

// 350.md: N-body slice per worker, O(N^2 / T) pair interactions over a
// shared position array; forces are thread-private then reduced.
const char *MdSrc = R"(
var pos[${N}];
var vel[${N}];

fn pair_force(a, b) {
  var d = a - b;
  if (d < 0) { d = 0 - d; }
  return (d * d + 7) % 1000;
}

fn md_slice(lo, hi) {
  var i = lo;
  var acc = 0;
  while (i < hi) {
    var f = 0;
    var j = 0;
    while (j < ${N}) {
      if (j != i) {
        f = f + pair_force(pos[i], pos[j]);
      }
      j = j + 1;
    }
    vel[i] = vel[i] + f % 97;
    acc = acc + f;
    i = i + 1;
  }
  return acc;
}

fn main() {
  var i = 0;
  while (i < ${N}) { pos[i] = i * 37 % 1024; vel[i] = 0; i = i + 1; }
  var per = ${N} / ${T};
  var w[${T}];
  var t = 0;
  while (t < ${T}) { w[t] = spawn md_slice(t * per, t * per + per); t = t + 1; }
  var total = 0;
  t = 0;
  while (t < ${T}) { total = total + join(w[t]); t = t + 1; }
  print(total % 100000);
  return 0;
}
)";

// 351.bwaves: iterated 1D stencil sweeps, fork-join per iteration; each
// sweep reads neighbour cells written by other workers last iteration.
const char *BwavesSrc = R"(
var u[${CELLS}];
var v[${CELLS}];

fn sweep(lo, hi) {
  var i = lo;
  var acc = 0;
  while (i < hi) {
    v[i] = (u[i - 1] + 2 * u[i] + u[i + 1]) / 4 + 1;
    acc = acc + v[i];
    i = i + 1;
  }
  return acc;
}

fn copy_back(lo, hi) {
  var i = lo;
  while (i < hi) { u[i] = v[i]; i = i + 1; }
  return 0;
}

fn main() {
  var i = 0;
  while (i < ${CELLS}) { u[i] = i * 13 % 512; i = i + 1; }
  var inner = ${CELLS} - 2;
  var per = inner / ${T};
  var it = 0;
  var total = 0;
  while (it < ${ITERS}) {
    var w[${T}];
    var t = 0;
    while (t < ${T}) { w[t] = spawn sweep(1 + t * per, 1 + t * per + per); t = t + 1; }
    t = 0;
    while (t < ${T}) { total = total + join(w[t]); t = t + 1; }
    var c[${T}];
    t = 0;
    while (t < ${T}) { c[t] = spawn copy_back(1 + t * per, 1 + t * per + per); t = t + 1; }
    t = 0;
    while (t < ${T}) { join(c[t]); t = t + 1; }
    it = it + 1;
  }
  print(total % 100000);
  return 0;
}
)";

// 352.nab: molecular energy terms over pair lists streamed from disk
// (the original reads molecule topologies): external + compute mix.
const char *NabSrc = R"(
var coords[${N}];

fn pair_energy(i, j) {
  var d = coords[i % ${N}] - coords[j % ${N}];
  if (d < 0) { d = 0 - d; }
  var e = 0;
  var k = 0;
  while (k < 8) { e = e + (d + k) * (d + k) % 131; k = k + 1; }
  return e;
}

fn nab_worker(id, batches) {
  var b = 0;
  var local = 0;
  var seed = id * 9973 + 17;
  while (b < batches) {
    var p = 0;
    while (p < 32) {
      seed = (seed * 1103515245 + 12345) % 2147483648;
      var i = seed % ${N};
      seed = (seed * 1103515245 + 12345) % 2147483648;
      local = local + pair_energy(i, seed % ${N});
      p = p + 1;
    }
    b = b + 1;
  }
  return local;
}

fn main() {
  // The molecule topology is read once at startup and normalized in
  // place, as the original reads its input files before the parallel
  // region: the workers' reads of coords are thread-induced (main wrote
  // them), not external.
  sysread(7, coords, ${N});
  var i = 0;
  while (i < ${N}) { coords[i] = coords[i] % 2048; i = i + 1; }
  var w[${T}];
  var t = 0;
  while (t < ${T}) { w[t] = spawn nab_worker(t, ${BATCHES}); t = t + 1; }
  var energy = 0;
  t = 0;
  while (t < ${T}) { energy = energy + join(w[t]); t = t + 1; }
  print(energy % 100000);
  return 0;
}
)";

// 358.botsalgn: task-parallel pairwise sequence alignment; sequences
// come from the device, each task runs an O(L^2) DP band.
const char *BotsalgnSrc = R"(
var seqdb[${DB}];
var taskLock;
var nextTask;

fn align_pair(sa, sb, len) {
  var dp[${L1}];
  var j = 0;
  while (j < len + 1) { dp[j] = j; j = j + 1; }
  var i = 1;
  while (i < len + 1) {
    var diag = dp[0];
    dp[0] = i;
    j = 1;
    while (j < len + 1) {
      var cost = 1;
      if (sa[i - 1] == sb[j - 1]) { cost = 0; }
      var best = diag + cost;
      if (dp[j] + 1 < best) { best = dp[j] + 1; }
      if (dp[j - 1] + 1 < best) { best = dp[j - 1] + 1; }
      diag = dp[j];
      dp[j] = best;
      j = j + 1;
    }
    i = i + 1;
  }
  return dp[len];
}

fn grab_task() {
  lock_acquire(taskLock);
  var t = nextTask;
  nextTask = nextTask + 1;
  lock_release(taskLock);
  return t;
}

fn align_worker(nTasks, nSeqs) {
  var total = 0;
  var t = grab_task();
  while (t < nTasks) {
    var a = (t * 7) % nSeqs;
    var b = (t * 13 + 1) % nSeqs;
    total = total + align_pair(seqdb + a * ${L}, seqdb + b * ${L}, ${L});
    t = grab_task();
  }
  return total;
}

fn main() {
  // The protein database is loaded and normalized once before the task
  // region, like the original's input parsing; workers then align pairs
  // straight out of the shared database.
  sysread(8, seqdb, ${DB});
  var i = 0;
  while (i < ${DB}) { seqdb[i] = seqdb[i] % 4; i = i + 1; }
  taskLock = lock_create();
  nextTask = 0;
  var w[${T}];
  var t = 0;
  while (t < ${T}) {
    w[t] = spawn align_worker(${TASKS}, ${NSEQS});
    t = t + 1;
  }
  var total = 0;
  t = 0;
  while (t < ${T}) { total = total + join(w[t]); t = t + 1; }
  print(total);
  return 0;
}
)";

// 359.botsspar: blocked sparse LU; each step factors the diagonal block
// then workers update trailing blocks against it (shared reads of the
// freshly-written diagonal: thread-induced input).
const char *BotssparSrc = R"(
var blocks[${TOTAL}];

fn factor_diag(k) {
  var base = (k * ${NB} + k) * ${BS};
  var i = 0;
  while (i < ${BS}) {
    blocks[base + i] = (blocks[base + i] * 3 + k + 1) % 10007 + 1;
    i = i + 1;
  }
  return 0;
}

fn update_block(k, b) {
  var diag = (k * ${NB} + k) * ${BS};
  var mine = b * ${BS};
  var i = 0;
  var acc = 0;
  while (i < ${BS}) {
    blocks[mine + i] = (blocks[mine + i] + blocks[diag + i] * 2) % 10007;
    acc = acc + blocks[mine + i];
    i = i + 1;
  }
  return acc;
}

fn update_worker(k, id) {
  var nBlocks = ${NB} * ${NB};
  var b = id;
  var acc = 0;
  while (b < nBlocks) {
    var row = b / ${NB};
    var col = b % ${NB};
    if (row > k && col > k) {
      acc = acc + update_block(k, b);
    }
    b = b + ${T};
  }
  return acc;
}

fn main() {
  var i = 0;
  while (i < ${TOTAL}) { blocks[i] = i * 7 % 1000 + 1; i = i + 1; }
  var k = 0;
  var total = 0;
  while (k < ${NB}) {
    factor_diag(k);
    var w[${T}];
    var t = 0;
    while (t < ${T}) { w[t] = spawn update_worker(k, t); t = t + 1; }
    t = 0;
    while (t < ${T}) { total = total + join(w[t]); t = t + 1; }
    k = k + 1;
  }
  print(total % 100000);
  return 0;
}
)";

// 360.ilbdc: lattice-Boltzmann-like streaming between two grids with a
// fork-join swap per time step.
const char *IlbdcSrc = R"(
var src[${CELLS}];
var dst[${CELLS}];

fn stream(lo, hi) {
  var i = lo;
  var acc = 0;
  while (i < hi) {
    var left = src[(i + ${CELLS} - 1) % ${CELLS}];
    var right = src[(i + 1) % ${CELLS}];
    dst[i] = (left + right + src[i]) / 3 + 1;
    acc = acc + dst[i];
    i = i + 1;
  }
  return acc;
}

fn swap_back(lo, hi) {
  var i = lo;
  while (i < hi) { src[i] = dst[i]; i = i + 1; }
  return 0;
}

fn main() {
  var i = 0;
  while (i < ${CELLS}) { src[i] = i % 100; i = i + 1; }
  var per = ${CELLS} / ${T};
  var step = 0;
  var total = 0;
  while (step < ${STEPS}) {
    var w[${T}];
    var t = 0;
    while (t < ${T}) { w[t] = spawn stream(t * per, t * per + per); t = t + 1; }
    t = 0;
    while (t < ${T}) { total = total + join(w[t]); t = t + 1; }
    var c[${T}];
    t = 0;
    while (t < ${T}) { c[t] = spawn swap_back(t * per, t * per + per); t = t + 1; }
    t = 0;
    while (t < ${T}) { join(c[t]); t = t + 1; }
    step = step + 1;
  }
  print(total % 100000);
  return 0;
}
)";

// 362.fma3d: element loop gathering node values and scattering forces
// back under region locks (crash-simulation structure).
const char *Fma3dSrc = R"(
var nodes[${NODES}];
var forces[${NODES}];
var regionLocks[${T}];

fn element_force(n0, n1, n2) {
  return (nodes[n0] + nodes[n1] * 2 + nodes[n2] * 3) % 500 + 1;
}

fn fma_worker(id, elemsPer) {
  var e = 0;
  var acc = 0;
  while (e < elemsPer) {
    var eid = id * elemsPer + e;
    var n0 = eid % ${NODES};
    var n1 = (eid * 7 + 1) % ${NODES};
    var n2 = (eid * 13 + 2) % ${NODES};
    var f = element_force(n0, n1, n2);
    var region = n1 % ${T};
    lock_acquire(regionLocks[region]);
    forces[n1] = forces[n1] + f;
    lock_release(regionLocks[region]);
    acc = acc + f;
    e = e + 1;
  }
  return acc;
}

fn main() {
  var i = 0;
  while (i < ${NODES}) { nodes[i] = i * 11 % 300; forces[i] = 0; i = i + 1; }
  i = 0;
  while (i < ${T}) { regionLocks[i] = lock_create(); i = i + 1; }
  var w[${T}];
  var t = 0;
  while (t < ${T}) { w[t] = spawn fma_worker(t, ${ELEMS}); t = t + 1; }
  var total = 0;
  t = 0;
  while (t < ${T}) { total = total + join(w[t]); t = t + 1; }
  print(total % 100000);
  return 0;
}
)";

// 367.imagick: row-parallel 3x3 convolution over an image loaded from
// the device (resize/convolve operators dominate the original).
const char *ImagickSrc = R"(
var img[${PIXELS}];
var out[${PIXELS}];

fn convolve_rows(rowLo, rowHi) {
  var y = rowLo;
  var acc = 0;
  while (y < rowHi) {
    var x = 1;
    while (x < ${W} - 1) {
      var idx = y * ${W} + x;
      var sum = img[idx - 1] + img[idx] * 4 + img[idx + 1];
      if (y > 0) { sum = sum + img[idx - ${W}]; }
      if (y < ${H} - 1) { sum = sum + img[idx + ${W}]; }
      out[idx] = sum / 8;
      acc = acc + out[idx];
      x = x + 1;
    }
    y = y + 1;
  }
  return acc;
}

fn main() {
  sysread(9, img, ${PIXELS});
  var per = ${H} / ${T};
  var w[${T}];
  var t = 0;
  while (t < ${T}) { w[t] = spawn convolve_rows(t * per, t * per + per); t = t + 1; }
  var total = 0;
  t = 0;
  while (t < ${T}) { total = total + join(w[t]); t = t + 1; }
  syswrite(10, out, ${PIXELS});
  print(total % 100000);
  return 0;
}
)";

// 370.mgrid331: two-level multigrid V-cycle — relax fine, restrict to
// coarse, relax coarse, prolongate back; fork-join per phase.
const char *MgridSrc = R"(
var fine[${FINE}];
var coarse[${COARSE}];

fn relax(grid, lo, hi, n) {
  var i = lo;
  var acc = 0;
  while (i < hi) {
    if (i > 0 && i < n - 1) {
      grid[i] = (grid[i - 1] + grid[i] * 2 + grid[i + 1]) / 4 + 1;
    }
    acc = acc + grid[i];
    i = i + 1;
  }
  return acc;
}

fn restrict_slice(lo, hi) {
  var i = lo;
  while (i < hi) {
    coarse[i] = (fine[2 * i] + fine[2 * i + 1]) / 2;
    i = i + 1;
  }
  return 0;
}

fn prolongate_slice(lo, hi) {
  var i = lo;
  while (i < hi) {
    fine[2 * i] = coarse[i];
    fine[2 * i + 1] = (coarse[i] + coarse[(i + 1) % ${COARSE}]) / 2;
    i = i + 1;
  }
  return 0;
}

fn run_phase(phase, cycles) {
  var finePer = ${FINE} / ${T};
  var coarsePer = ${COARSE} / ${T};
  var w[${T}];
  var t = 0;
  while (t < ${T}) {
    if (phase == 0) { w[t] = spawn relax(fine, t * finePer, t * finePer + finePer, ${FINE}); }
    if (phase == 1) { w[t] = spawn restrict_slice(t * coarsePer, t * coarsePer + coarsePer); }
    if (phase == 2) { w[t] = spawn relax(coarse, t * coarsePer, t * coarsePer + coarsePer, ${COARSE}); }
    if (phase == 3) { w[t] = spawn prolongate_slice(t * coarsePer, t * coarsePer + coarsePer); }
    t = t + 1;
  }
  var total = 0;
  t = 0;
  while (t < ${T}) { total = total + join(w[t]); t = t + 1; }
  return total;
}

fn main() {
  var i = 0;
  while (i < ${FINE}) { fine[i] = i * 5 % 200; i = i + 1; }
  var c = 0;
  var total = 0;
  while (c < ${CYCLES}) {
    total = total + run_phase(0, c);
    run_phase(1, c);
    total = total + run_phase(2, c);
    run_phase(3, c);
    c = c + 1;
  }
  print(total % 100000);
  return 0;
}
)";

// 371.applu331: SSOR wavefront — row workers pipeline through
// semaphores; row r may only process column c after row r-1 finished
// column c (classic dependency, heavy thread-induced input).
const char *AppluSrc = R"(
var grid[${TOTAL}];
var rowSems[${T}];

fn ssor_row(r, cols) {
  var c = 0;
  var acc = 0;
  while (c < cols) {
    if (r > 0) {
      sem_wait(rowSems[r - 1]);
    }
    var idx = r * cols + c;
    var up = 0;
    if (r > 0) { up = grid[idx - cols]; }
    var left = 0;
    if (c > 0) { left = grid[idx - 1]; }
    grid[idx] = (grid[idx] + up + left) % 9973 + 1;
    acc = acc + grid[idx];
    if (r < ${T} - 1) {
      sem_post(rowSems[r]);
    }
    c = c + 1;
  }
  return acc;
}

fn main() {
  var i = 0;
  while (i < ${TOTAL}) { grid[i] = i % 173; i = i + 1; }
  i = 0;
  while (i < ${T}) { rowSems[i] = sem_create(0); i = i + 1; }
  var sweep = 0;
  var total = 0;
  while (sweep < ${SWEEPS}) {
    var w[${T}];
    var r = 0;
    while (r < ${T}) { w[r] = spawn ssor_row(r, ${COLS}); r = r + 1; }
    r = 0;
    while (r < ${T}) { total = total + join(w[r]); r = r + 1; }
    sweep = sweep + 1;
  }
  print(total % 100000);
  return 0;
}
)";

// 372.smithwa: Smith-Waterman DP, rows pipelined across workers with
// semaphores (each row consumes the previous row's freshly-written
// cells: thread-induced input proportional to the matrix).
const char *SmithwaSrc = R"(
var seqA[${L}];
var seqB[${L}];
var H[${HCELLS}];
var rowReady[${T}];

fn sw_rows(firstRow, rows, width) {
  var r = firstRow;
  var best = 0;
  while (r < firstRow + rows) {
    var c = 1;
    while (c < width) {
      if (r > 0 && c % 8 == 1) {
        sem_wait(rowReady[(r - 1) % ${T}]);
      }
      var idx = r * width + c;
      var match = 0 - 1;
      if (seqA[r % ${L}] == seqB[c % ${L}]) { match = 2; }
      var diag = 0;
      var up = 0;
      if (r > 0) {
        diag = H[idx - width - 1] + match;
        up = H[idx - width] - 1;
      }
      var left = H[idx - 1] - 1;
      var v = 0;
      if (diag > v) { v = diag; }
      if (up > v) { v = up; }
      if (left > v) { v = left; }
      H[idx] = v;
      if (v > best) { best = v; }
      if (c % 8 == 0) {
        sem_post(rowReady[r % ${T}]);
      }
      c = c + 1;
    }
    sem_post(rowReady[r % ${T}]);
    r = r + 1;
  }
  return best;
}

fn main() {
  sysread(11, seqA, ${L});
  sysread(11, seqB, ${L});
  var i = 0;
  while (i < ${L}) { seqA[i] = seqA[i] % 4; seqB[i] = seqB[i] % 4; i = i + 1; }
  i = 0;
  while (i < ${T}) { rowReady[i] = sem_create(1024); i = i + 1; }
  var width = ${L};
  var rowsPer = ${ROWS} / ${T};
  var w[${T}];
  var t = 0;
  while (t < ${T}) { w[t] = spawn sw_rows(t * rowsPer, rowsPer, width); t = t + 1; }
  var best = 0;
  t = 0;
  while (t < ${T}) {
    var b = join(w[t]);
    if (b > best) { best = b; }
    t = t + 1;
  }
  print(best);
  return 0;
}
)";

// 376.kdtree: build a binary space partition over points, then parallel
// range queries walk it (pointer-chasing reads of a shared structure).
const char *KdtreeSrc = R"(
var points[${N}];
var left[${N}];
var right[${N}];
var rootHolder[1];

fn tree_insert(root, p) {
  var cur = root;
  for (;;) {
    if (points[p] < points[cur]) {
      if (left[cur] < 0) { left[cur] = p; return 0; }
      cur = left[cur];
    } else {
      if (right[cur] < 0) { right[cur] = p; return 0; }
      cur = right[cur];
    }
  }
  return 0;
}

fn tree_count_range(node, lo, hi) {
  if (node < 0) {
    return 0;
  }
  var n = 0;
  var v = points[node];
  if (v >= lo && v <= hi) { n = 1; }
  if (v >= lo) { n = n + tree_count_range(left[node], lo, hi); }
  if (v <= hi) { n = n + tree_count_range(right[node], lo, hi); }
  return n;
}

fn query_worker(id, queries) {
  var q = 0;
  var acc = 0;
  while (q < queries) {
    var lo = (id * 131 + q * 17) % 9000;
    acc = acc + tree_count_range(rootHolder[0], lo, lo + 500);
    q = q + 1;
  }
  return acc;
}

fn main() {
  var i = 0;
  var s = 12345;
  while (i < ${N}) {
    s = (s * 1103515245 + 12345) % 2147483648;
    points[i] = s % 10000;
    left[i] = 0 - 1;
    right[i] = 0 - 1;
    i = i + 1;
  }
  rootHolder[0] = 0;
  i = 1;
  while (i < ${N}) { tree_insert(0, i); i = i + 1; }
  var w[${T}];
  var t = 0;
  while (t < ${T}) { w[t] = spawn query_worker(t, ${QUERIES}); t = t + 1; }
  var total = 0;
  t = 0;
  while (t < ${T}) { total = total + join(w[t]); t = t + 1; }
  print(total % 100000);
  return 0;
}
)";

uint64_t roundTo(uint64_t Value, uint64_t Multiple) {
  Value = std::max(Value, Multiple);
  return Value - Value % Multiple;
}

std::string makeMd(const WorkloadParams &P) {
  WorkloadParams Q = P;
  Q.Size = roundTo(P.Size, P.Threads);
  return instantiate(MdSrc, Q);
}

std::string makeBwaves(const WorkloadParams &P) {
  uint64_t Cells = roundTo(P.Size * 4, P.Threads) + 2;
  Cells = 2 + roundTo(Cells - 2, P.Threads);
  return instantiate(BwavesSrc, P,
                     {{"CELLS", std::to_string(Cells)},
                      {"ITERS", std::to_string(P.Size / 8 + 2)}});
}

std::string makeNab(const WorkloadParams &P) {
  return instantiate(NabSrc, P,
                     {{"BATCHES", std::to_string(P.Size / 4 + 2)}});
}

std::string makeBotsalgn(const WorkloadParams &P) {
  uint64_t L = P.Size / 8 + 8;
  uint64_t NumSeqs = 12;
  return instantiate(BotsalgnSrc, P,
                     {{"L", std::to_string(L)},
                      {"L1", std::to_string(L + 1)},
                      {"DB", std::to_string(L * NumSeqs)},
                      {"NSEQS", std::to_string(NumSeqs)},
                      {"TASKS", std::to_string(P.Threads * 3 + P.Size / 32)}});
}

std::string makeBotsspar(const WorkloadParams &P) {
  uint64_t NB = P.Size / 16 + 3;
  uint64_t BS = 12;
  return instantiate(BotssparSrc, P,
                     {{"NB", std::to_string(NB)},
                      {"BS", std::to_string(BS)},
                      {"TOTAL", std::to_string(NB * NB * BS)}});
}

std::string makeIlbdc(const WorkloadParams &P) {
  uint64_t Cells = roundTo(P.Size * 4, P.Threads);
  return instantiate(IlbdcSrc, P,
                     {{"CELLS", std::to_string(Cells)},
                      {"STEPS", std::to_string(P.Size / 12 + 2)}});
}

std::string makeFma3d(const WorkloadParams &P) {
  return instantiate(Fma3dSrc, P,
                     {{"NODES", std::to_string(P.Size * 2 + 16)},
                      {"ELEMS", std::to_string(P.Size * 8 + 8)}});
}

std::string makeImagick(const WorkloadParams &P) {
  uint64_t H = roundTo(P.Size / 2 + P.Threads, P.Threads);
  uint64_t W = 32;
  return instantiate(ImagickSrc, P,
                     {{"W", std::to_string(W)},
                      {"H", std::to_string(H)},
                      {"PIXELS", std::to_string(W * H)}});
}

std::string makeMgrid(const WorkloadParams &P) {
  uint64_t Coarse = roundTo(P.Size, P.Threads);
  return instantiate(MgridSrc, P,
                     {{"FINE", std::to_string(Coarse * 2)},
                      {"COARSE", std::to_string(Coarse)},
                      {"CYCLES", std::to_string(P.Size / 16 + 2)}});
}

std::string makeApplu(const WorkloadParams &P) {
  uint64_t Cols = P.Size + 8;
  return instantiate(AppluSrc, P,
                     {{"COLS", std::to_string(Cols)},
                      {"TOTAL", std::to_string(Cols * P.Threads)},
                      {"SWEEPS", std::to_string(P.Size / 24 + 2)}});
}

std::string makeSmithwa(const WorkloadParams &P) {
  uint64_t L = P.Size + 16;
  uint64_t Rows = roundTo(P.Threads * 4, P.Threads);
  return instantiate(SmithwaSrc, P,
                     {{"L", std::to_string(L)},
                      {"ROWS", std::to_string(Rows)},
                      {"HCELLS", std::to_string(Rows * L)}});
}

std::string makeKdtree(const WorkloadParams &P) {
  return instantiate(KdtreeSrc, P,
                     {{"QUERIES", std::to_string(P.Size + 4)}});
}

} // namespace

void isp::registerOmpWorkloads(std::vector<WorkloadInfo> &Out) {
  Out.push_back({"md", "omp2012", "N-body pair forces over shared positions",
                 makeMd});
  Out.push_back({"bwaves", "omp2012", "iterated 1D stencil sweeps",
                 makeBwaves});
  Out.push_back({"nab", "omp2012",
                 "molecular energy terms over device pair lists", makeNab});
  Out.push_back({"botsalgn", "omp2012",
                 "task-parallel sequence alignment (DP)", makeBotsalgn});
  Out.push_back({"botsspar", "omp2012", "blocked sparse LU factorization",
                 makeBotsspar});
  Out.push_back({"ilbdc", "omp2012", "lattice-Boltzmann streaming steps",
                 makeIlbdc});
  Out.push_back({"fma3d", "omp2012",
                 "element gather/scatter under region locks", makeFma3d});
  Out.push_back({"imagick", "omp2012", "row-parallel image convolution",
                 makeImagick});
  Out.push_back({"mgrid331", "omp2012", "two-level multigrid V-cycles",
                 makeMgrid});
  Out.push_back({"applu331", "omp2012", "SSOR wavefront via row pipelines",
                 makeApplu});
  Out.push_back({"smithwa", "omp2012",
                 "Smith-Waterman DP with pipelined rows", makeSmithwa});
  Out.push_back({"kdtree", "omp2012",
                 "space-partition tree build and parallel queries",
                 makeKdtree});
}
