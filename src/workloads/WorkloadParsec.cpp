//===- workloads/WorkloadParsec.cpp - PARSEC-like pipelines --------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Pipeline and data-parallel workloads modelled on the PARSEC 2.1
// benchmarks the paper evaluates:
//
//  - vips_pipeline: a multi-stage image pipeline. im_generate (the
//    Figure 5 routine) computes output tiles from an input region that
//    upstream threads keep rewriting in a shared strip buffer — its
//    induced input is thread-induced. wbuffer_write_thread (Figure 7)
//    drains completed tiles to the output device from a reused write
//    buffer — almost all of its input is external + thread-induced, and
//    its rms collapses to a couple of values.
//  - dedup: chunk -> hash -> compress -> write pipeline over semaphore
//    queues; data enters from the device and flows across threads, so
//    both induced kinds appear.
//  - fluidanimate: grid-partitioned particle relaxation with per-border
//    locks; neighbours exchange border cells (thread-induced input, no
//    external input).
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

using namespace isp;

namespace {

const char *VipsSrc = R"(
// One strip of the input image, refreshed on demand from the device,
// a bounded tile queue between workers and the write-behind thread, and
// a small reused write buffer. Region sizes vary, so im_generate and
// wbuffer_write_thread see many distinct input sizes.
var strip[${STRIP}];
var loaderDone;
var refreshReq;
var refreshDone;
var tiles[${TILEQ}];
var tilesLock;
var tilesAvail;
var tilesSpace;
var tileHead;
var tileTail;
var wbuf[${WBUF}];

fn im_affine(v, band) {
  return (v * 7 + band * 3) % 100000;
}

// Generates `nTiles` output tiles from the shared strip. Every ${R}
// tiles the loader refreshes the strip from the device, so re-reads of
// the same strip cells are genuinely new (external) input: the
// activation's rms saturates at the strip size while its trms tracks
// nTiles * TILE.
fn im_generate(nTiles, id) {
  var t = 0;
  var acc = 0;
  while (t < nTiles) {
    if (t % ${R} == 0) {
      sem_post(refreshReq);
      sem_wait(refreshDone);
    }
    var base = (t * ${TILE} + id * 3) % (${STRIP} - ${TILE});
    var i = 0;
    var v = 0;
    while (i < ${TILE}) {
      v = v + im_affine(strip[base + i], t);
      i = i + 1;
    }
    tile_push(v);
    t = t + 1;
  }
  return acc;
}

fn tile_push(value) {
  sem_wait(tilesSpace);
  lock_acquire(tilesLock);
  tiles[tileTail % ${TILEQ}] = value;
  tileTail = tileTail + 1;
  lock_release(tilesLock);
  sem_post(tilesAvail);
  return 0;
}

fn tile_pop() {
  sem_wait(tilesAvail);
  lock_acquire(tilesLock);
  var v = tiles[tileHead % ${TILEQ}];
  tileHead = tileHead + 1;
  lock_release(tilesLock);
  sem_post(tilesSpace);
  return v;
}

// Drains `batch` tiles through the fixed write buffer and flushes them
// to the output device. One activation moves a variable amount of data
// through a constant set of cells: its rms collapses onto a couple of
// values (queue + buffer size) while its trms counts the batch — the
// Figure 7 effect.
fn wbuffer_write_thread(batch) {
  var done = 0;
  var fill = 0;
  while (done < batch) {
    wbuf[fill] = tile_pop();
    fill = fill + 1;
    if (fill == ${WBUF}) {
      syswrite(3, wbuf, ${WBUF});
      sysread(4, wbuf, 2); // device ack/metadata
      var ack = wbuf[0] + wbuf[1];
      fill = 0;
    }
    done = done + 1;
  }
  if (fill > 0) {
    syswrite(3, wbuf, fill);
  }
  return done;
}

fn writer_daemon(totalTiles) {
  var left = totalTiles;
  var batch = 3;
  var moved = 0;
  while (left > 0) {
    if (batch > left) { batch = left; }
    moved = moved + wbuffer_write_thread(batch);
    left = left - batch;
    batch = batch + 4;
    if (batch > ${MAXBATCH}) { batch = 3; }
  }
  return moved;
}

fn vips_worker(id, regions) {
  var r = 0;
  var acc = 0;
  while (r < regions) {
    var nTiles = 2 + (r * 5 + id * 3) % ${MAXTILES};
    acc = acc + im_generate(nTiles, id);
    r = r + 1;
  }
  return acc;
}

fn region_tiles(id, regions) {
  var r = 0;
  var total = 0;
  while (r < regions) {
    total = total + 2 + (r * 5 + id * 3) % ${MAXTILES};
    r = r + 1;
  }
  return total;
}

fn strip_loader() {
  var n = 0;
  for (;;) {
    sem_wait(refreshReq);
    if (loaderDone == 1) {
      return n;
    }
    sysread(2, strip, ${STRIP});
    sem_post(refreshDone);
    n = n + 1;
  }
  return n;
}

fn main() {
  tilesLock = lock_create();
  tilesAvail = sem_create(0);
  tilesSpace = sem_create(${TILEQ});
  refreshReq = sem_create(0);
  refreshDone = sem_create(0);
  tileHead = 0;
  tileTail = 0;
  loaderDone = 0;
  var regions = ${REGIONS};
  var totalTiles = 0;
  var w = 0;
  while (w < ${T}) {
    totalTiles = totalTiles + region_tiles(w, regions);
    w = w + 1;
  }
  var loader = spawn strip_loader();
  var writer = spawn writer_daemon(totalTiles);
  var workers[${T}];
  w = 0;
  while (w < ${T}) {
    workers[w] = spawn vips_worker(w, regions);
    w = w + 1;
  }
  w = 0;
  while (w < ${T}) {
    join(workers[w]);
    w = w + 1;
  }
  var moved = join(writer);
  loaderDone = 1;
  sem_post(refreshReq);
  join(loader);
  print(moved);
  return 0;
}
)";

const char *DedupSrc = R"(
// chunk -> hash -> compress -> write, one thread per stage plus ${T}
// hash workers, connected by two bounded queues. Queue cursors live in
// dedicated one-cell arrays so stages can pass their addresses around.
var q1[${QCAP}];
var q1cur[2]; // [0] = head, [1] = tail
var q1lock; var q1avail; var q1space;
var q2[${QCAP}];
var q2cur[2];
var q2lock; var q2avail; var q2space;
var chunkbuf[${CHUNK}];
var outbuf[${CHUNK}];

fn queue_push(q, cur, lockId, availId, spaceId, value) {
  sem_wait(spaceId);
  lock_acquire(lockId);
  var t = cur[1];
  q[t % ${QCAP}] = value;
  cur[1] = t + 1;
  lock_release(lockId);
  sem_post(availId);
  return 0;
}

fn queue_pop(q, cur, lockId, availId, spaceId) {
  sem_wait(availId);
  lock_acquire(lockId);
  var h = cur[0];
  var v = q[h % ${QCAP}];
  cur[0] = h + 1;
  lock_release(lockId);
  sem_post(spaceId);
  return v;
}

fn rabin_chunk(nChunks) {
  var c = 0;
  while (c < nChunks) {
    sysread(5, chunkbuf, ${CHUNK});
    var sig = 0;
    var i = 0;
    while (i < ${CHUNK}) {
      sig = (sig * 31 + chunkbuf[i]) % 1000003;
      i = i + 1;
    }
    queue_push(q1, q1cur, q1lock, q1avail, q1space, sig);
    c = c + 1;
  }
  return nChunks;
}

fn hash_worker(nChunks) {
  var done = 0;
  var acc = 0;
  while (done < nChunks) {
    var sig = queue_pop(q1, q1cur, q1lock, q1avail, q1space);
    var h = sig;
    var r = 0;
    while (r < 16) {
      h = (h * 1103515245 + 12345) % 2147483648;
      r = r + 1;
    }
    queue_push(q2, q2cur, q2lock, q2avail, q2space, h % 997);
    done = done + 1;
    acc = acc + h % 7;
  }
  return acc;
}

fn write_stage(nChunks) {
  var done = 0;
  var fill = 0;
  while (done < nChunks) {
    var v = queue_pop(q2, q2cur, q2lock, q2avail, q2space);
    outbuf[fill % ${CHUNK}] = v;
    fill = fill + 1;
    if (fill % ${CHUNK} == 0) {
      syswrite(6, outbuf, ${CHUNK});
    }
    done = done + 1;
  }
  return done;
}

fn main() {
  q1lock = lock_create(); q1avail = sem_create(0); q1space = sem_create(${QCAP});
  q2lock = lock_create(); q2avail = sem_create(0); q2space = sem_create(${QCAP});
  q1cur[0] = 0; q1cur[1] = 0; q2cur[0] = 0; q2cur[1] = 0;
  var per = ${CHUNKS} / ${T};
  var total = per * ${T};
  var chunker = spawn rabin_chunk(total);
  var writer = spawn write_stage(total);
  var workers[${T}];
  var w = 0;
  while (w < ${T}) {
    workers[w] = spawn hash_worker(per);
    w = w + 1;
  }
  w = 0;
  while (w < ${T}) {
    join(workers[w]);
    w = w + 1;
  }
  join(chunker);
  print(join(writer));
  return 0;
}
)";

const char *FluidSrc = R"(
// ${T} partitions of a 1D cell chain; each worker relaxes its slice for
// ${STEPS} steps, exchanging border cells with neighbours under locks.
var cells[${CELLS}];
var borderLocks[${T}];

fn relax_cell(left, mid, right) {
  return (left + 2 * mid + right) / 4 + 1;
}

// Relaxes the slice including its boundary cells, whose stencils read
// the neighbouring slices' border cells — the cross-thread traffic that
// makes fluidanimate's induced input thread-induced.
fn advance_slice(lo, hi, n) {
  var i = lo;
  var acc = 0;
  while (i < hi) {
    if (i > 0 && i < n - 1) {
      cells[i] = relax_cell(cells[i - 1], cells[i], cells[i + 1]);
    }
    acc = acc + cells[i];
    i = i + 1;
  }
  return acc;
}

fn exchange_borders(id, lo, hi) {
  lock_acquire(borderLocks[id]);
  cells[lo] = (cells[lo] + cells[lo + 1]) / 2;
  cells[hi - 1] = (cells[hi - 1] + cells[hi - 2]) / 2;
  lock_release(borderLocks[id]);
  return 0;
}

fn fluid_worker(id, sliceLen) {
  var lo = id * sliceLen;
  var hi = lo + sliceLen;
  var s = 0;
  var acc = 0;
  while (s < ${STEPS}) {
    acc = acc + advance_slice(lo, hi, ${CELLS});
    exchange_borders(id, lo, hi);
    yield();
    s = s + 1;
  }
  return acc;
}

fn main() {
  var i = 0;
  while (i < ${CELLS}) {
    cells[i] = i * 17 % 1000;
    i = i + 1;
  }
  i = 0;
  while (i < ${T}) {
    borderLocks[i] = lock_create();
    i = i + 1;
  }
  var sliceLen = ${CELLS} / ${T};
  var workers[${T}];
  var w = 0;
  while (w < ${T}) {
    workers[w] = spawn fluid_worker(w, sliceLen);
    w = w + 1;
  }
  var total = 0;
  w = 0;
  while (w < ${T}) {
    total = total + join(workers[w]);
    w = w + 1;
  }
  print(total % 100000);
  return 0;
}
)";

std::string makeVips(const WorkloadParams &P) {
  uint64_t Tile = 8;
  uint64_t Strip = std::max<uint64_t>(96, P.Size);
  uint64_t Regions = P.Size / 12 + 3;
  uint64_t MaxTiles = P.Size / 4 + 6;
  return instantiate(VipsSrc, P,
                     {{"TILE", std::to_string(Tile)},
                      {"STRIP", std::to_string(Strip)},
                      {"TILEQ", "16"},
                      {"WBUF", "12"},
                      {"R", "6"},
                      {"REGIONS", std::to_string(Regions)},
                      {"MAXTILES", std::to_string(MaxTiles)},
                      {"MAXBATCH", "40"}});
}

std::string makeDedup(const WorkloadParams &P) {
  uint64_t Chunks = P.Size * 3 + P.Threads * 4;
  return instantiate(DedupSrc, P,
                     {{"QCAP", "16"},
                      {"CHUNK", "32"},
                      {"CHUNKS", std::to_string(Chunks)}});
}

std::string makeFluid(const WorkloadParams &P) {
  uint64_t Cells = std::max<uint64_t>(P.Threads * 8, P.Size * 4);
  Cells -= Cells % P.Threads; // even slices
  uint64_t Steps = P.Size / 8 + 3;
  return instantiate(FluidSrc, P,
                     {{"CELLS", std::to_string(Cells)},
                      {"STEPS", std::to_string(Steps)}});
}

} // namespace

void isp::registerParsecWorkloads(std::vector<WorkloadInfo> &Out) {
  Out.push_back({"vips_pipeline", "parsec",
                 "vips-like image pipeline with write-behind thread",
                 makeVips});
  Out.push_back({"dedup", "parsec",
                 "dedup-like chunk/hash/compress/write pipeline", makeDedup});
  Out.push_back({"fluidanimate", "parsec",
                 "fluidanimate-like locked grid relaxation", makeFluid});
}
