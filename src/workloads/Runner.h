//===- workloads/Runner.h - Workload execution helpers ----------*- C++ -*-===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convenience helpers shared by tests, examples, and benchmark
/// harnesses: compile a workload, run it natively, or run it under the
/// trms profiler and hand back the profile with symbol names.
///
//===----------------------------------------------------------------------===//

#ifndef ISPROF_WORKLOADS_RUNNER_H
#define ISPROF_WORKLOADS_RUNNER_H

#include "core/ProfileData.h"
#include "core/TrmsProfiler.h"
#include "instr/SymbolTable.h"
#include "vm/Machine.h"
#include "workloads/Workload.h"

#include <optional>
#include <string>

namespace isp {

/// Compiles \p Workload at \p Params; reports diagnostics on failure.
std::optional<Program> compileWorkload(const WorkloadInfo &Workload,
                                       const WorkloadParams &Params,
                                       std::string *ErrorOut = nullptr);

/// The result of one profiled workload run.
struct ProfiledRun {
  RunResult Run;
  ProfileDatabase Profile;
  SymbolTable Symbols;
};

/// Runs \p Workload natively (no instrumentation).
RunResult runWorkloadNative(const WorkloadInfo &Workload,
                            const WorkloadParams &Params,
                            MachineOptions MachineOpts = MachineOptions());

/// Runs \p Workload under aprof-trms and returns profile + symbols.
/// \p ParallelToolWorkers > 0 delivers event batches from that many
/// dispatcher worker threads (the profile is identical to serial
/// delivery; 0 keeps the default in-line dispatch).
/// ProfOpts.ShadowShards > 1 selects the sharded-wts profiler, and
/// \p BatchCapacity overrides the dispatcher's pending-batch size
/// (0 = default); both leave the profile byte-identical.
ProfiledRun
profileWorkload(const WorkloadInfo &Workload, const WorkloadParams &Params,
                TrmsProfilerOptions ProfOpts = TrmsProfilerOptions(),
                MachineOptions MachineOpts = MachineOptions(),
                unsigned ParallelToolWorkers = 0, size_t BatchCapacity = 0);

} // namespace isp

#endif // ISPROF_WORKLOADS_RUNNER_H
