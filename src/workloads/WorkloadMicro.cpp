//===- workloads/WorkloadMicro.cpp - Didactic workloads ------------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// The paper's Section 2 examples plus small algorithmic kernels used by
// the quickstart example and the unit tests:
//  - producer_consumer (Figure 2): the consumer repeatedly reads one
//    shared cell; rms stays 1 while trms grows with the items consumed.
//  - buffered_read (Figure 3): 2n values enter a 2-cell buffer via the
//    kernel but only n are actually read, so trms counts exactly n.
//  - sort_compare: insertion sort vs merge sort on the same inputs — the
//    classic input-sensitive profiling demo (O(n^2) vs O(n log n)).
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

using namespace isp;

namespace {

// Figure 2. One semaphore pair serializes producer/consumer strictly, so
// every consumeData read of x is preceded by a produceData write.
const char *ProducerConsumerSrc = R"(
var x;
var emptySem;
var fullSem;

fn produceData(i) {
  x = i * 3 + 1;
  return 0;
}

fn consumeData() {
  return x;
}

fn producer(n) {
  var i = 0;
  while (i < n) {
    sem_wait(emptySem);
    produceData(i);
    sem_post(fullSem);
    i = i + 1;
  }
  return 0;
}

fn consumer(n) {
  var i = 0;
  var sum = 0;
  while (i < n) {
    sem_wait(fullSem);
    sum = sum + consumeData();
    sem_post(emptySem);
    i = i + 1;
  }
  return sum;
}

fn main() {
  emptySem = sem_create(1);
  fullSem = sem_create(0);
  var p = spawn producer(${N});
  var c = spawn consumer(${N});
  join(p);
  var total = join(c);
  print(total);
  return 0;
}
)";

// Figure 3. externalRead loads 2 values per iteration into a 2-cell
// buffer but processes only b[0]; after n iterations its trms is n (all
// induced by kernel writes) while its rms is 1.
const char *BufferedReadSrc = R"(
var b[2];

fn externalRead(n) {
  var i = 0;
  var sum = 0;
  while (i < n) {
    sysread(1, b, 2);
    sum = sum + b[0];
    i = i + 1;
  }
  return sum;
}

fn main() {
  print(externalRead(${N}));
  return 0;
}
)";

// Insertion sort vs merge sort over identical pseudo-random inputs of
// growing sizes: the worst-case plots should fit O(n^2) and O(n log n).
const char *SortCompareSrc = R"(
var scratch[${N}];

fn fillRandom(a, n, seed) {
  var i = 0;
  var s = seed;
  while (i < n) {
    s = (s * 1103515245 + 12345) % 2147483648;
    a[i] = s % 10000;
    i = i + 1;
  }
  return 0;
}

fn insertionSort(a, n) {
  var i = 1;
  while (i < n) {
    var key = a[i];
    var j = i - 1;
    while (j >= 0 && a[j] > key) {
      a[j + 1] = a[j];
      j = j - 1;
    }
    a[j + 1] = key;
    i = i + 1;
  }
  return 0;
}

fn merge(a, lo, mid, hi) {
  var i = lo;
  var j = mid;
  var k = lo;
  while (i < mid && j < hi) {
    if (a[i] <= a[j]) {
      scratch[k] = a[i];
      i = i + 1;
    } else {
      scratch[k] = a[j];
      j = j + 1;
    }
    k = k + 1;
  }
  while (i < mid) { scratch[k] = a[i]; i = i + 1; k = k + 1; }
  while (j < hi) { scratch[k] = a[j]; j = j + 1; k = k + 1; }
  k = lo;
  while (k < hi) { a[k] = scratch[k]; k = k + 1; }
  return 0;
}

fn mergeSort(a, lo, hi) {
  if (hi - lo < 2) {
    return 0;
  }
  var mid = lo + (hi - lo) / 2;
  mergeSort(a, lo, mid);
  mergeSort(a, mid, hi);
  merge(a, lo, mid, hi);
  return 0;
}

fn checkSorted(a, n) {
  var i = 1;
  while (i < n) {
    if (a[i - 1] > a[i]) {
      return 0;
    }
    i = i + 1;
  }
  return 1;
}

fn main() {
  var size = 4;
  var ok = 1;
  while (size <= ${N}) {
    var a[size];
    var b[size];
    fillRandom(a, size, size);
    fillRandom(b, size, size);
    insertionSort(a, size);
    mergeSort(b, 0, size);
    ok = ok && checkSorted(a, size) && checkSorted(b, size);
    size = size + size / 2 + 1;
  }
  print(ok);
  return 0;
}
)";

// Figure 1a-style interleaving: a reader routine whose second read of a
// shared location is induced by a writer thread.
const char *SharedCellSrc = R"(
var x;
var readySem;
var doneSem;

fn readTwice() {
  var first = x;
  sem_post(readySem);
  sem_wait(doneSem);
  var second = x;
  return first + second;
}

fn writer() {
  sem_wait(readySem);
  x = 99;
  sem_post(doneSem);
  return 0;
}

fn main() {
  readySem = sem_create(0);
  doneSem = sem_create(0);
  x = 7;
  var w = spawn writer();
  var sum = readTwice();
  join(w);
  print(sum);
  return 0;
}
)";

std::string makeProducerConsumer(const WorkloadParams &P) {
  return instantiate(ProducerConsumerSrc, P);
}
std::string makeBufferedRead(const WorkloadParams &P) {
  return instantiate(BufferedReadSrc, P);
}
std::string makeSortCompare(const WorkloadParams &P) {
  return instantiate(SortCompareSrc, P);
}
std::string makeSharedCell(const WorkloadParams &P) {
  return instantiate(SharedCellSrc, P);
}

} // namespace

void isp::registerMicroWorkloads(std::vector<WorkloadInfo> &Out) {
  Out.push_back({"producer_consumer", "micro",
                 "Figure 2 semaphore producer-consumer over one cell",
                 makeProducerConsumer});
  Out.push_back({"buffered_read", "micro",
                 "Figure 3 buffered kernel reads, half the data consumed",
                 makeBufferedRead});
  Out.push_back({"sort_compare", "micro",
                 "insertion sort vs merge sort over growing inputs",
                 makeSortCompare});
  Out.push_back({"shared_cell", "micro",
                 "Figure 1a interleaving: induced re-read of one cell",
                 makeSharedCell});
}
