//===- workloads/WorkloadServer.cpp - MySQL-like table server ------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// A database-server workload modelled on the paper's MySQL + mysqlslap
// case study: ${T} client threads each run ${Q} queries against tables
// stored on an external device. The routines mirror the case-study
// functions:
//
//  - mysql_select: scans a table by repeatedly loading pages into a
//    *shared, reused* buffer via sysread and summing the qualifying
//    tuples. Because the buffer is reused, its rms saturates at the
//    buffer size while its true input (and running time) grows with the
//    table — the Figure 4 effect. Larger queries touch larger tables.
//  - buf_flush_buffered_writes: appends modified tuples to a write
//    buffer and, when a query commits, flushes it after an insertion-
//    sort ordering pass — cost superlinear in the flushed volume, the
//    Figure 6 effect (trms reveals it; rms under-reports the input).
//  - protocol_send_eof: sends the result + EOF packet to the client
//    socket via syswrite — the Figure 8 workload-characterization
//    routine.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

using namespace isp;

namespace {

const char *DbServerSrc = R"(
// Shared buffer pool: one page buffer per client would hide the reuse
// effect, so the server deliberately shares PAGE cells per client slot.
var pagebuf[${PAGEBUF}];

fn mysql_select(fd, pages, clientSlot) {
  var base = clientSlot * ${PAGE};
  var p = 0;
  var matched = 0;
  while (p < pages) {
    sysread(fd, pagebuf + base, ${PAGE});
    var i = 0;
    while (i < ${PAGE}) {
      var tuple = pagebuf[base + i];
      if (tuple % 3 != 0) {
        matched = matched + tuple % 100;
      }
      i = i + 1;
    }
    p = p + 1;
  }
  return matched;
}

var flushring[${FRING}];
var fhead;
var ftail;
var flushlock;
var resultbuf[4];
var statsLock;
var rowsServed;

fn buf_append(value) {
  lock_acquire(flushlock);
  if (ftail - fhead < ${FRING}) {
    flushring[ftail % ${FRING}] = value;
    ftail = ftail + 1;
  }
  lock_release(flushlock);
  return 0;
}

// Drains up to `target` dirty tuples from the shared ring — which other
// client threads keep refilling — ordering them into a local sorted run
// before writing back (insertion sort: superlinear in the batch). The
// tuples stream through the ${FRING} fixed ring cells, so the
// activation's rms saturates at the ring size while its trms counts the
// whole drained batch: the Figure 6 effect.
fn buf_flush_buffered_writes(fd, target) {
  var srt[${FLUSHMAX}];
  var drained = 0;
  var idle = 0;
  while (drained < target && idle < 3) {
    lock_acquire(flushlock);
    var got = 0;
    while (fhead < ftail && drained < target) {
      var v = flushring[fhead % ${FRING}];
      fhead = fhead + 1;
      var j = drained - 1;
      while (j >= 0 && srt[j] > v) {
        srt[j + 1] = srt[j];
        j = j - 1;
      }
      srt[j + 1] = v;
      drained = drained + 1;
      got = 1;
    }
    lock_release(flushlock);
    if (got == 0) { idle = idle + 1; } else { idle = 0; }
    yield();
  }
  syswrite(fd, srt, drained);
  return drained;
}

// Sends the EOF packet, then polls the shared server-state counter for
// backpressure before returning — a number of polls that depends on the
// result size. Re-reads of the counter after other clients bump it are
// induced first-accesses, so the routine's trms (and its Figure 8
// workload plot) spreads over many values while its rms stays constant.
fn protocol_send_eof(fd, rows, status) {
  resultbuf[0] = 254;
  resultbuf[1] = rows;
  resultbuf[2] = status;
  resultbuf[3] = rows % 251;
  syswrite(fd, resultbuf, 4);
  var spins = rows % ${SPINMAX};
  var s = 0;
  var seen = 0;
  while (s < spins) {
    seen = seen + rowsServed % 2;
    yield();
    s = s + 1;
  }
  return seen;
}

fn dispatch_query(fd, q, clientSlot) {
  // Query q of a client scans a table whose page count grows with q, so
  // one session produces many distinct input sizes.
  var pages = 1 + q % ${MAXPAGES};
  var matched = mysql_select(fd, pages, clientSlot);
  var updates = 2 + q % 9;
  var u = 0;
  while (u < updates) {
    buf_append(matched + u * 13 + q);
    u = u + 1;
  }
  if (q % 3 == 2) {
    buf_flush_buffered_writes(fd + 100, 4 + q % ${MAXFLUSH});
  }
  lock_acquire(statsLock);
  rowsServed = rowsServed + pages * ${PAGE};
  lock_release(statsLock);
  protocol_send_eof(fd + 200, pages * ${PAGE}, 0);
  return matched;
}

fn client_session(id) {
  var q = 0;
  var acc = 0;
  while (q < ${Q}) {
    acc = acc + dispatch_query(id + 1, q + id, id);
    q = q + 1;
  }
  return acc;
}

fn main() {
  flushlock = lock_create();
  statsLock = lock_create();
  fhead = 0;
  ftail = 0;
  rowsServed = 0;
  var tids[${T}];
  var t = 0;
  while (t < ${T}) {
    tids[t] = spawn client_session(t);
    t = t + 1;
  }
  t = 0;
  var total = 0;
  while (t < ${T}) {
    total = total + join(tids[t]);
    t = t + 1;
  }
  buf_flush_buffered_writes(999, ${FLUSHMAX} - 1);
  print(rowsServed);
  return 0;
}
)";

std::string makeDbServer(const WorkloadParams &P) {
  // PAGE cells per buffer slot; one slot per client thread. Query q
  // scans up to MAXPAGES pages and flushes batches of up to MAXFLUSH
  // dirty tuples, so both input-size axes sweep with Size.
  uint64_t Page = 16;
  uint64_t MaxPages = P.Size / 8 + 2;
  uint64_t Queries = P.Size / 4 + 4;
  uint64_t MaxFlush = P.Size / 2 + 8;
  return instantiate(
      DbServerSrc, P,
      {{"PAGE", std::to_string(Page)},
       {"PAGEBUF", std::to_string(Page * P.Threads)},
       {"MAXPAGES", std::to_string(MaxPages)},
       {"Q", std::to_string(Queries)},
       {"FRING", "24"},
       {"MAXFLUSH", std::to_string(MaxFlush)},
       {"FLUSHMAX", std::to_string(MaxFlush + 8)},
       {"SPINMAX", "12"}});
}

} // namespace

void isp::registerServerWorkloads(std::vector<WorkloadInfo> &Out) {
  Out.push_back({"dbserver", "server",
                 "MySQL-like table server under concurrent client load",
                 makeDbServer});
}
