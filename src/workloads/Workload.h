//===- workloads/Workload.h - Guest workload registry -----------*- C++ -*-===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The benchmark workloads: guest-language programs modelled on the
/// algorithmic cores of the suites the paper evaluates on — the SPEC
/// OMP2012 components (fork-join parallel kernels), PARSEC pipelines
/// (vips, dedup, fluidanimate), a MySQL-like table server driven by
/// concurrent clients, and the paper's didactic examples (producer-
/// consumer, buffered external reads). Sources are generated from
/// templates parameterized by thread count and problem size, so the
/// benchmark harnesses can sweep them.
///
//===----------------------------------------------------------------------===//

#ifndef ISPROF_WORKLOADS_WORKLOAD_H
#define ISPROF_WORKLOADS_WORKLOAD_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace isp {

struct WorkloadParams {
  /// Worker thread count (the "-t N" of the paper's Figure 14 sweep).
  unsigned Threads = 4;
  /// Problem size scale; each workload derives its own dimensions.
  uint64_t Size = 128;
};

struct WorkloadInfo {
  std::string Name;
  /// "omp2012", "parsec", "server", or "micro".
  std::string Suite;
  std::string Description;
  std::string (*MakeSource)(const WorkloadParams &Params);
};

/// All registered workloads, in suite order.
const std::vector<WorkloadInfo> &allWorkloads();

/// Finds a workload by name; null if absent.
const WorkloadInfo *findWorkload(const std::string &Name);

/// Replaces every "${KEY}" in \p Template with its value.
std::string
substituteTemplate(const std::string &Template,
                   const std::map<std::string, std::string> &Values);

/// Shorthand used by workload sources: substitutes ${T} (threads) and
/// ${N} (size) plus any extras.
std::string instantiate(const char *Template, const WorkloadParams &Params,
                        std::map<std::string, std::string> Extra = {});

// Per-suite registration hooks (implementation detail of allWorkloads()).
void registerMicroWorkloads(std::vector<WorkloadInfo> &Out);
void registerServerWorkloads(std::vector<WorkloadInfo> &Out);
void registerOmpWorkloads(std::vector<WorkloadInfo> &Out);
void registerParsecWorkloads(std::vector<WorkloadInfo> &Out);
void registerExtraWorkloads(std::vector<WorkloadInfo> &Out);

} // namespace isp

#endif // ISPROF_WORKLOADS_WORKLOAD_H
