//===- workloads/Runner.cpp - Workload execution helpers -----------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "workloads/Runner.h"

#include "instr/Dispatcher.h"
#include "obs/Obs.h"
#include "vm/Compiler.h"
#include "vm/Diag.h"
#include "vm/Optimizer.h"

using namespace isp;

/// Phase-timer target: the named duration counter when stats collection
/// is on, null (a disarmed timer) otherwise.
static obs::Counter *phaseCounter(const char *Name) {
  return obs::statsEnabled() ? &obs::Registry::get().counter(Name) : nullptr;
}

std::optional<Program> isp::compileWorkload(const WorkloadInfo &Workload,
                                            const WorkloadParams &Params,
                                            std::string *ErrorOut) {
  DiagnosticEngine Diags;
  std::string Source;
  std::optional<Program> Prog;
  {
    obs::ScopedTimer Timer(phaseCounter("runner.compile_ns"));
    Source = Workload.MakeSource(Params);
    Prog = compileProgram(Source, Diags);
  }
  if (!Prog && ErrorOut)
    *ErrorOut = "workload '" + Workload.Name +
                "' failed to compile:\n" + Diags.render();
  // Match the driver: benchmarks run optimized bytecode. The optimizer
  // preserves the event stream, so tool measurements are unaffected
  // except through shorter interpreter time (which benefits native and
  // instrumented runs alike).
  if (Prog) {
    obs::ScopedTimer Timer(phaseCounter("runner.optimize_ns"));
    optimizeProgram(*Prog);
  }
  return Prog;
}

RunResult isp::runWorkloadNative(const WorkloadInfo &Workload,
                                 const WorkloadParams &Params,
                                 MachineOptions MachineOpts) {
  std::string Error;
  std::optional<Program> Prog = compileWorkload(Workload, Params, &Error);
  if (!Prog) {
    RunResult Result;
    Result.Error = Error;
    return Result;
  }
  Machine M(*Prog, /*Events=*/nullptr, MachineOpts);
  obs::ScopedTimer Timer(phaseCounter("runner.execute_ns"));
  return M.run();
}

ProfiledRun isp::profileWorkload(const WorkloadInfo &Workload,
                                 const WorkloadParams &Params,
                                 TrmsProfilerOptions ProfOpts,
                                 MachineOptions MachineOpts,
                                 unsigned ParallelToolWorkers,
                                 size_t BatchCapacity) {
  ProfiledRun Out;
  std::string Error;
  std::optional<Program> Prog = compileWorkload(Workload, Params, &Error);
  if (!Prog) {
    Out.Run.Error = Error;
    return Out;
  }
  // The sharded and plain profilers run the identical algorithm; only
  // the wts layout differs, so either fills the same ProfiledRun.
  auto RunWith = [&](auto &Profiler) {
    EventDispatcher Dispatcher;
    Dispatcher.addTool(&Profiler);
    if (BatchCapacity != 0)
      Dispatcher.setBatchCapacity(BatchCapacity);
    if (ParallelToolWorkers > 0)
      Dispatcher.setParallelWorkers(ParallelToolWorkers);
    Machine M(*Prog, &Dispatcher, MachineOpts);
    {
      obs::ScopedTimer Timer(phaseCounter("runner.execute_ns"));
      Out.Run = M.run();
    }
    Out.Profile = Profiler.takeDatabase();
  };
  if (ProfOpts.ShadowShards > 1) {
    ShardedTrmsProfiler Profiler(ProfOpts);
    RunWith(Profiler);
  } else {
    TrmsProfiler Profiler(ProfOpts);
    RunWith(Profiler);
  }
  Out.Symbols = Prog->Symbols;
  return Out;
}
