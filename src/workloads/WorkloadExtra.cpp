//===- workloads/WorkloadExtra.cpp - Additional benchmark kernels --------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Benchmarks beyond the paper's measured set:
//
//  - swim and bt331: the two SPEC OMP2012 components the paper could
//    *not* run ("whose execution failed due to a Valgrind memory
//    issue", §6.1). Our substrate has no such limitation, so both are
//    modelled and run here — suite "omp2012-extra" keeps Table 1's
//    twelve-row shape intact.
//  - streamcluster and canneal: two more PARSEC kernels, rounding out
//    the shared-memory workload mix (parallel distance evaluation with
//    a shared medoid set; annealing swaps under fine-grained locks).
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include <algorithm>

using namespace isp;

namespace {

// 363.swim: shallow-water equations — 2D stencil over three fields with
// fork-join sweeps per time step.
const char *SwimSrc = R"(
var u[${CELLS}];
var v[${CELLS}];
var p[${CELLS}];

fn sweep_row(row) {
  var acc = 0;
  var x = 1;
  while (x < ${W} - 1) {
    var i = row * ${W} + x;
    u[i] = (u[i] + p[i - 1] - p[i + 1]) % 9973;
    v[i] = (v[i] + p[i - ${W}] - p[i + ${W}]) % 9973;
    p[i] = (p[i] + u[i] - v[i]) % 9973;
    acc = acc + p[i];
    x = x + 1;
  }
  return acc;
}

fn swim_worker(rowLo, rowHi) {
  var acc = 0;
  var r = rowLo;
  while (r < rowHi) {
    acc = acc + sweep_row(r);
    r = r + 1;
  }
  return acc;
}

fn main() {
  var i = 0;
  while (i < ${CELLS}) {
    u[i] = i % 97;
    v[i] = i % 89;
    p[i] = i % 83;
    i = i + 1;
  }
  var rowsPer = (${H} - 2) / ${T};
  var step = 0;
  var total = 0;
  while (step < ${STEPS}) {
    var w[${T}];
    var t = 0;
    while (t < ${T}) {
      w[t] = spawn swim_worker(1 + t * rowsPer, 1 + t * rowsPer + rowsPer);
      t = t + 1;
    }
    t = 0;
    while (t < ${T}) { total = total + join(w[t]); t = t + 1; }
    step = step + 1;
  }
  print(total % 100000);
  return 0;
}
)";

// 357.bt331: block-tridiagonal solver — forward elimination and back
// substitution over per-row blocks, rows distributed across workers.
const char *Bt331Src = R"(
var diag[${TOTAL}];
var rhs[${ROWS}];

fn eliminate_row(r) {
  var base = r * ${BS};
  var pivot = diag[base] % 97 + 1;
  var i = 1;
  var acc = 0;
  while (i < ${BS}) {
    diag[base + i] = (diag[base + i] + diag[base + i - 1] / pivot) % 9973;
    acc = acc + diag[base + i];
    i = i + 1;
  }
  rhs[r] = (rhs[r] + acc) % 9973;
  return acc;
}

fn back_substitute(r) {
  var base = r * ${BS};
  var x = rhs[r];
  var i = ${BS} - 1;
  while (i >= 0) {
    x = (x + diag[base + i]) % 9973;
    i = i - 1;
  }
  return x;
}

fn bt_worker(rowLo, rowHi) {
  var r = rowLo;
  var acc = 0;
  while (r < rowHi) {
    eliminate_row(r);
    acc = acc + back_substitute(r);
    r = r + 1;
  }
  return acc;
}

fn main() {
  var i = 0;
  while (i < ${TOTAL}) { diag[i] = i * 13 % 1000 + 1; i = i + 1; }
  i = 0;
  while (i < ${ROWS}) { rhs[i] = i * 7 % 500; i = i + 1; }
  var per = ${ROWS} / ${T};
  var w[${T}];
  var t = 0;
  while (t < ${T}) { w[t] = spawn bt_worker(t * per, t * per + per); t = t + 1; }
  var total = 0;
  t = 0;
  while (t < ${T}) { total = total + join(w[t]); t = t + 1; }
  print(total % 100000);
  return 0;
}
)";

// streamcluster: parallel assignment of points to the current medoid
// set; the master refines medoids between rounds (thread-induced reads
// of the refreshed medoid array).
const char *StreamclusterSrc = R"(
var points[${POINTS}];
var medoids[${K}];
var assignCost[${T}];

fn point_cost(value) {
  var best = 1000000000;
  var m = 0;
  while (m < ${K}) {
    var d = value - medoids[m];
    if (d < 0) { d = 0 - d; }
    if (d < best) { best = d; }
    m = m + 1;
  }
  return best;
}

fn assign_worker(id, per) {
  var acc = 0;
  var i = id * per;
  while (i < id * per + per) {
    acc = acc + point_cost(points[i]);
    i = i + 1;
  }
  assignCost[id] = acc;
  return acc;
}

fn refine_medoids(round) {
  var m = 0;
  while (m < ${K}) {
    medoids[m] = (medoids[m] * 7 + round * 31 + m) % 10000;
    m = m + 1;
  }
  return 0;
}

fn main() {
  sysread(12, points, ${POINTS});
  var i = 0;
  while (i < ${POINTS}) { points[i] = points[i] % 10000; i = i + 1; }
  refine_medoids(0);
  var per = ${POINTS} / ${T};
  var round = 0;
  var total = 0;
  while (round < ${ROUNDS}) {
    var w[${T}];
    var t = 0;
    while (t < ${T}) { w[t] = spawn assign_worker(t, per); t = t + 1; }
    t = 0;
    while (t < ${T}) { total = total + join(w[t]); t = t + 1; }
    refine_medoids(round + 1);
    round = round + 1;
  }
  print(total % 100000);
  return 0;
}
)";

// canneal: simulated-annealing element swaps under per-bucket locks;
// workers read neighbour positions other workers keep moving.
const char *CannealSrc = R"(
var pos[${ELEMS}];
var nets[${ELEMS}];
var bucketLocks[${BUCKETS}];

fn route_cost(e) {
  var a = pos[e];
  var b = pos[nets[e]];
  var d = a - b;
  if (d < 0) { d = 0 - d; }
  return d;
}

fn try_swap(e1, e2) {
  var b1 = e1 % ${BUCKETS};
  var b2 = e2 % ${BUCKETS};
  var lo = b1;
  var hi = b2;
  if (lo > hi) { lo = b2; hi = b1; }
  lock_acquire(bucketLocks[lo]);
  if (hi != lo) {
    lock_acquire(bucketLocks[hi]);
  }
  var before = route_cost(e1) + route_cost(e2);
  var tmp = pos[e1];
  pos[e1] = pos[e2];
  pos[e2] = tmp;
  var after = route_cost(e1) + route_cost(e2);
  var kept = 1;
  if (after > before) {
    tmp = pos[e1];
    pos[e1] = pos[e2];
    pos[e2] = tmp;
    kept = 0;
  }
  if (hi != lo) {
    lock_release(bucketLocks[hi]);
  }
  lock_release(bucketLocks[lo]);
  return kept;
}

fn anneal_worker(id, swaps) {
  var s = 0;
  var kept = 0;
  var seed = id * 747 + 11;
  while (s < swaps) {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    var e1 = seed % ${ELEMS};
    seed = (seed * 1103515245 + 12345) % 2147483648;
    var e2 = seed % ${ELEMS};
    if (e1 != e2) {
      kept = kept + try_swap(e1, e2);
    }
    s = s + 1;
  }
  return kept;
}

fn main() {
  var i = 0;
  while (i < ${ELEMS}) {
    pos[i] = i * 37 % 5000;
    nets[i] = (i * 17 + 3) % ${ELEMS};
    i = i + 1;
  }
  i = 0;
  while (i < ${BUCKETS}) { bucketLocks[i] = lock_create(); i = i + 1; }
  var w[${T}];
  var t = 0;
  while (t < ${T}) { w[t] = spawn anneal_worker(t, ${SWAPS}); t = t + 1; }
  var total = 0;
  t = 0;
  while (t < ${T}) { total = total + join(w[t]); t = t + 1; }
  print(total);
  return 0;
}
)";

uint64_t roundUpTo(uint64_t Value, uint64_t Multiple) {
  Value = std::max(Value, Multiple);
  return Value - Value % Multiple;
}

std::string makeSwim(const WorkloadParams &P) {
  uint64_t W = 24;
  uint64_t H = 2 + roundUpTo(P.Size / 4 + P.Threads, P.Threads);
  return instantiate(SwimSrc, P,
                     {{"W", std::to_string(W)},
                      {"H", std::to_string(H)},
                      {"CELLS", std::to_string(W * H)},
                      {"STEPS", std::to_string(P.Size / 32 + 2)}});
}

std::string makeBt331(const WorkloadParams &P) {
  uint64_t Rows = roundUpTo(P.Size, P.Threads);
  uint64_t BS = 16;
  return instantiate(Bt331Src, P,
                     {{"ROWS", std::to_string(Rows)},
                      {"BS", std::to_string(BS)},
                      {"TOTAL", std::to_string(Rows * BS)}});
}

std::string makeStreamcluster(const WorkloadParams &P) {
  uint64_t Points = roundUpTo(P.Size * 2, P.Threads);
  return instantiate(StreamclusterSrc, P,
                     {{"POINTS", std::to_string(Points)},
                      {"K", "8"},
                      {"ROUNDS", std::to_string(P.Size / 24 + 2)}});
}

std::string makeCanneal(const WorkloadParams &P) {
  return instantiate(CannealSrc, P,
                     {{"ELEMS", std::to_string(P.Size * 2 + 16)},
                      {"BUCKETS", "16"},
                      {"SWAPS", std::to_string(P.Size + 8)}});
}

} // namespace

namespace isp {
void registerExtraWorkloads(std::vector<WorkloadInfo> &Out) {
  Out.push_back({"swim", "omp2012-extra",
                 "shallow-water stencil (the paper's Valgrind could not "
                 "run it)",
                 makeSwim});
  Out.push_back({"bt331", "omp2012-extra",
                 "block-tridiagonal solver (the paper's Valgrind could "
                 "not run it)",
                 makeBt331});
  Out.push_back({"streamcluster", "parsec",
                 "k-median assignment rounds over refreshed medoids",
                 makeStreamcluster});
  Out.push_back({"canneal", "parsec",
                 "annealing swaps under fine-grained bucket locks",
                 makeCanneal});
}
} // namespace isp
