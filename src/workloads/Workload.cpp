//===- workloads/Workload.cpp - Guest workload registry -----------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include <cstdio>

using namespace isp;


std::string isp::substituteTemplate(
    const std::string &Template,
    const std::map<std::string, std::string> &Values) {
  std::string Out;
  Out.reserve(Template.size());
  size_t Pos = 0;
  while (Pos < Template.size()) {
    size_t Dollar = Template.find("${", Pos);
    if (Dollar == std::string::npos) {
      Out.append(Template, Pos, std::string::npos);
      break;
    }
    Out.append(Template, Pos, Dollar - Pos);
    size_t Close = Template.find('}', Dollar + 2);
    if (Close == std::string::npos) {
      Out.append(Template, Dollar, std::string::npos);
      break;
    }
    std::string Key = Template.substr(Dollar + 2, Close - Dollar - 2);
    auto It = Values.find(Key);
    if (It != Values.end())
      Out += It->second;
    else
      Out += Template.substr(Dollar, Close - Dollar + 1); // leave as-is
    Pos = Close + 1;
  }
  return Out;
}

std::string isp::instantiate(const char *Template,
                             const WorkloadParams &Params,
                             std::map<std::string, std::string> Extra) {
  Extra.emplace("T", std::to_string(Params.Threads));
  Extra.emplace("N", std::to_string(Params.Size));
  return substituteTemplate(Template, Extra);
}

const std::vector<WorkloadInfo> &isp::allWorkloads() {
  static const std::vector<WorkloadInfo> Registry = [] {
    std::vector<WorkloadInfo> W;
    registerOmpWorkloads(W);
    registerParsecWorkloads(W);
    registerExtraWorkloads(W);
    registerServerWorkloads(W);
    registerMicroWorkloads(W);
    return W;
  }();
  return Registry;
}

const WorkloadInfo *isp::findWorkload(const std::string &Name) {
  for (const WorkloadInfo &W : allWorkloads())
    if (W.Name == Name)
      return &W;
  return nullptr;
}
