//===- trace/Synthetic.h - Random valid trace generation --------*- C++ -*-===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates random but structurally valid multithreaded execution traces
/// (balanced call/return nesting, per-thread start/end, shared and private
/// address pools, kernel I/O). These drive the property-based test suites
/// — most importantly the equivalence check between the O(1)-per-event
/// read/write timestamping profiler and the naive set-based oracle — and
/// the algorithmic ablation benchmarks.
///
//===----------------------------------------------------------------------===//

#ifndef ISPROF_TRACE_SYNTHETIC_H
#define ISPROF_TRACE_SYNTHETIC_H

#include "trace/Event.h"

#include <vector>

namespace isp {

struct SyntheticTraceOptions {
  unsigned NumThreads = 4;
  unsigned NumRoutines = 8;
  /// Number of addresses in the pool shared by all threads.
  unsigned SharedAddresses = 64;
  /// Number of addresses private to each thread.
  unsigned PrivateAddresses = 32;
  /// Total number of operations to generate across all threads (memory
  /// accesses, calls, returns, kernel ops, basic blocks).
  uint64_t NumOperations = 10000;
  unsigned MaxCallDepth = 12;
  /// Operation mix (remaining probability mass goes to plain reads).
  double CallProbability = 0.08;
  double ReturnProbability = 0.08;
  double WriteProbability = 0.25;
  double KernelReadProbability = 0.02;
  double KernelWriteProbability = 0.02;
  double BasicBlockProbability = 0.20;
  /// Probability that a memory operation touches the shared pool.
  double SharedProbability = 0.5;
  uint64_t Seed = 1;
};

/// Generates one totally ordered multithreaded trace. Every thread begins
/// with ThreadStart + a root routine Call and ends with the matching
/// unwinding Returns and ThreadEnd; memory operations only occur inside
/// at least one activation. EventRecord times are unique and strictly
/// increasing, so splitByThread() + mergeTraces() reproduces the trace.
std::vector<EventRecord> generateSyntheticTrace(const SyntheticTraceOptions &Opts);

/// Splits a merged trace into per-thread traces (dropping ThreadSwitch
/// pseudo-events), suitable for feeding back into mergeTraces().
std::vector<std::vector<EventRecord>> splitByThread(const std::vector<EventRecord> &Trace);

} // namespace isp

#endif // ISPROF_TRACE_SYNTHETIC_H
