//===- trace/TraceFile.h - Binary trace serialization -----------*- C++ -*-===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serialization of event traces to a compact binary format, enabling
/// offline profiling: record once under the VM, replay under any number
/// of analysis tools. The format is versioned and self-describing:
///
///   magic "ISPTRC01" | u32 routine count | routines (u32 id, u32 len,
///   bytes name) ... | u64 event count | packed events.
///
//===----------------------------------------------------------------------===//

#ifndef ISPROF_TRACE_TRACEFILE_H
#define ISPROF_TRACE_TRACEFILE_H

#include "trace/Event.h"

#include <string>
#include <utility>
#include <vector>

namespace isp {

/// A trace plus the symbol information needed to render reports.
struct TraceData {
  /// (routine id, routine name) pairs.
  std::vector<std::pair<RoutineId, std::string>> Routines;
  std::vector<EventRecord> Events;
};

/// On-disk encodings. Raw is the fixed-width v1 layout; Compressed (v2)
/// stores events as LEB128 varints with delta-coded timestamps and
/// addresses, typically 3-5x smaller on real traces. readTraceFile and
/// deserializeTrace auto-detect the format from the magic.
enum class TraceFormat { Raw, Compressed };

/// Writes \p Data to \p Path. Returns false on I/O failure.
bool writeTraceFile(const std::string &Path, const TraceData &Data,
                    TraceFormat Format = TraceFormat::Compressed);

/// Reads a trace from \p Path into \p Data. Returns false on I/O failure
/// or a malformed/mismatched header.
bool readTraceFile(const std::string &Path, TraceData &Data);

/// In-memory round trip used by tests and by tools that pipe traces
/// between stages without touching the filesystem.
std::string serializeTrace(const TraceData &Data,
                           TraceFormat Format = TraceFormat::Raw);
bool deserializeTrace(const std::string &Bytes, TraceData &Data);

} // namespace isp

#endif // ISPROF_TRACE_TRACEFILE_H
