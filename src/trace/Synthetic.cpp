//===- trace/Synthetic.cpp - Random valid trace generation ------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "trace/Synthetic.h"

#include "support/Random.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace isp;

namespace {

/// Per-thread generation state.
struct ThreadState {
  std::vector<RoutineId> CallStack;
  bool Started = false;
  bool Finished = false;
};

} // namespace

std::vector<EventRecord>
isp::generateSyntheticTrace(const SyntheticTraceOptions &Opts) {
  assert(Opts.NumThreads > 0 && Opts.NumRoutines > 0);
  Rng R(Opts.Seed);
  std::vector<EventRecord> Trace;
  Trace.reserve(Opts.NumOperations + Opts.NumThreads * 4);

  uint64_t Clock = 0;
  auto now = [&Clock] { return ++Clock; };

  std::vector<ThreadState> Threads(Opts.NumThreads);
  // Shared pool occupies [0, SharedAddresses); thread T's private pool
  // occupies [SharedAddresses + T*PrivateAddresses, ...).
  auto pickAddress = [&](ThreadId Tid) -> Addr {
    if (Opts.SharedAddresses > 0 &&
        (Opts.PrivateAddresses == 0 || R.nextBool(Opts.SharedProbability)))
      return R.nextBelow(Opts.SharedAddresses);
    return Opts.SharedAddresses +
           static_cast<Addr>(Tid) * Opts.PrivateAddresses +
           R.nextBelow(std::max(1u, Opts.PrivateAddresses));
  };

  // Start all threads eagerly; thread 0 is its own parent by convention.
  for (ThreadId Tid = 0; Tid != Opts.NumThreads; ++Tid) {
    Threads[Tid].Started = true;
    Trace.push_back(EventRecord::threadStart(Tid, now(), Tid == 0 ? 0 : 0));
    RoutineId Root = static_cast<RoutineId>(R.nextBelow(Opts.NumRoutines));
    Threads[Tid].CallStack.push_back(Root);
    Trace.push_back(EventRecord::call(Tid, now(), Root));
  }

  for (uint64_t Op = 0; Op != Opts.NumOperations; ++Op) {
    ThreadId Tid =
        static_cast<ThreadId>(R.nextBelow(Opts.NumThreads));
    ThreadState &TS = Threads[Tid];
    if (TS.Finished)
      continue;

    double Dice = R.nextDouble();
    double CallEdge = Opts.CallProbability;
    double ReturnEdge = CallEdge + Opts.ReturnProbability;
    double WriteEdge = ReturnEdge + Opts.WriteProbability;
    double KrEdge = WriteEdge + Opts.KernelReadProbability;
    double KwEdge = KrEdge + Opts.KernelWriteProbability;
    double BbEdge = KwEdge + Opts.BasicBlockProbability;

    if (Dice < CallEdge) {
      if (TS.CallStack.size() < Opts.MaxCallDepth) {
        RoutineId Rtn =
            static_cast<RoutineId>(R.nextBelow(Opts.NumRoutines));
        TS.CallStack.push_back(Rtn);
        Trace.push_back(EventRecord::call(Tid, now(), Rtn));
      }
    } else if (Dice < ReturnEdge) {
      // Keep the root activation alive until the final unwind.
      if (TS.CallStack.size() > 1) {
        RoutineId Rtn = TS.CallStack.back();
        TS.CallStack.pop_back();
        Trace.push_back(EventRecord::ret(Tid, now(), Rtn, 0));
      }
    } else if (Dice < WriteEdge) {
      Trace.push_back(EventRecord::write(Tid, now(), pickAddress(Tid)));
    } else if (Dice < KrEdge) {
      Trace.push_back(EventRecord::kernelRead(Tid, now(), pickAddress(Tid)));
    } else if (Dice < KwEdge) {
      Trace.push_back(EventRecord::kernelWrite(Tid, now(), pickAddress(Tid)));
    } else if (Dice < BbEdge) {
      Trace.push_back(EventRecord::basicBlock(Tid, now()));
    } else {
      Trace.push_back(EventRecord::read(Tid, now(), pickAddress(Tid)));
    }
  }

  // Unwind every thread: return from all pending activations, then end.
  for (ThreadId Tid = 0; Tid != Opts.NumThreads; ++Tid) {
    ThreadState &TS = Threads[Tid];
    while (!TS.CallStack.empty()) {
      RoutineId Rtn = TS.CallStack.back();
      TS.CallStack.pop_back();
      Trace.push_back(EventRecord::ret(Tid, now(), Rtn, 0));
    }
    TS.Finished = true;
    Trace.push_back(EventRecord::threadEnd(Tid, now()));
  }
  return Trace;
}

std::vector<std::vector<EventRecord>>
isp::splitByThread(const std::vector<EventRecord> &Trace) {
  std::map<ThreadId, std::vector<EventRecord>> ByThread;
  for (const EventRecord &E : Trace) {
    if (E.Kind == EventKind::ThreadSwitch)
      continue;
    ByThread[E.Tid].push_back(E);
  }
  std::vector<std::vector<EventRecord>> Result;
  Result.reserve(ByThread.size());
  for (auto &[Tid, Events] : ByThread)
    Result.push_back(std::move(Events));
  return Result;
}
