//===- trace/TraceStream.h - Chunked streaming trace files ------*- C++ -*-===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bounded-memory trace recording and replay: the delta/varint event
/// codec of TraceFile.h layered on an incremental, chunked file writer,
/// so recording a long run never materializes the whole event vector and
/// replaying one never loads more than a single chunk.
///
/// Stream layout (magic "ISPSTM03"; readers also accept v2 "ISPSTM02"
/// and v1 "ISPSTM01"):
///
///   header  : magic | varint routine count
///             | routines (varint id, varint name length, name bytes)
///   chunk*  : u32 payload length | payload
///   payload : varint event count | packed events (the v2 delta/varint
///             encoding, with the delta state RESET at each chunk start,
///             so every chunk decodes independently — the property that
///             makes chunk-level seek possible)
///   footer  : varint chunk count
///             | per chunk (varint file offset, varint event count,
///               varint first event time,
///               [v2+] varint routine-activity mask,
///               [v2+] 4 x varint shard-activity mask words,
///               [v3+] 4 x varint written-shard mask words)
///   trailer : u64 footer offset | magic "ISPSTMIX"
///
/// The footer index is written last (the writer knows chunk offsets only
/// after the fact) and found through the fixed-size trailer, so a reader
/// can seek to any chunk — and a truncated file is detected immediately
/// rather than half-replayed.
///
/// The v2 activity masks are per-chunk Bloom-style summaries consumed by
/// the parallel replay engine (replay/ParallelReplay.h): the routine
/// mask sets bit `RoutineId & 63` for every Call in the chunk, and the
/// 256-bit shard mask sets bit `(Addr >> ActivityChunkShift) & 255` for
/// every shadow chunk a memory access touches. The shard geometry
/// mirrors the shadow-memory layout (ThreeLevelShadow::OffsetBits /
/// ShardedShadow::MaxShards) and is stored at maximum resolution, so one
/// recorded mask folds down to any configured shard count. Masks are
/// advisory: they can only suppress per-chunk bookkeeping for provably
/// untouched shards, never change what is replayed, so a corrupt mask
/// cannot corrupt results. v1 streams read back with all-ones masks.
///
/// The v3 written-shard mask records the shard slots touched by
/// *mutating* events (Write, KernelWrite, Alloc). The
/// collector's routine-filtered ingest consults it before skipping a
/// chunk: a chunk containing no filtered routine may still *write*
/// memory that a later, matching chunk reads, and dropping that write
/// would undercount trms — the written mask makes "this chunk cannot
/// induce any retained read" checkable per chunk (collect/Collector.cpp
/// has the suffix-union argument). v1/v2 streams read back with
/// all-ones written masks, so consumers that filter unconditionally
/// simply never skip on old streams (hasWrittenMasks() distinguishes).
///
/// In-memory, decoded chunks are delivered as packed 16-byte stream
/// words (trace/Event.h) — the on-disk payload codec is unchanged, but
/// readers re-encode into the packed form so replay buffers hold ~2.5x
/// more events per cache line than the wide record form.
///
//===----------------------------------------------------------------------===//

#ifndef ISPROF_TRACE_TRACESTREAM_H
#define ISPROF_TRACE_TRACESTREAM_H

#include "instr/Dispatcher.h"
#include "trace/Event.h"
#include "trace/TraceFile.h"

#include <array>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace isp {

class SymbolTable;
class Tool;

/// Shadow-chunk key geometry for the v2 activity masks. A memory address
/// maps to shadow chunk key `Addr >> ActivityChunkShift`; the mask
/// records `key & (ActivityShardSlots - 1)`. These mirror
/// ThreeLevelShadow::OffsetBits and ShardedShadow::MaxShards (statically
/// asserted where both headers meet, in the parallel replay engine).
inline constexpr unsigned ActivityChunkShift = 9;
inline constexpr unsigned ActivityShardSlots = 256;

/// A 256-bit shard-activity bitmap: bit `k` of word `k / 64` is set when
/// the chunk touches some shadow chunk whose key folds to slot `k`.
using ShardActivityMask = std::array<uint64_t, 4>;

struct TraceStreamOptions {
  /// Target chunk payload size. A chunk is sealed when its encoded
  /// payload reaches this many bytes, so writer memory is bounded by
  /// roughly one chunk regardless of trace length. The default keeps
  /// chunks comfortably cache-resident while amortizing per-chunk
  /// overhead (header, footer entry, one fwrite) over ~10k events.
  size_t ChunkBytes = size_t(1) << 16;
  /// Stream format version to emit: 3 (default) writes activity masks
  /// plus the per-chunk written-shard masks, 2 omits the written masks,
  /// 1 writes the legacy mask-less index (compatibility tests).
  /// Anything else fails open().
  unsigned FormatVersion = 3;
};

/// Incremental trace writer: events stream to disk chunk by chunk as
/// they arrive. Implements EventDispatcher::RecordSink so it can be
/// plugged directly into the dispatcher as a recording sink that
/// consumes flushed batches (see EventDispatcher::setRecordSink).
class TraceStreamWriter : public EventDispatcher::RecordSink {
public:
  TraceStreamWriter() = default;
  ~TraceStreamWriter() override;
  TraceStreamWriter(const TraceStreamWriter &) = delete;
  TraceStreamWriter &operator=(const TraceStreamWriter &) = delete;

  /// Creates \p Path and writes the header. Returns false on I/O
  /// failure (error() explains).
  bool open(const std::string &Path,
            const std::vector<std::pair<RoutineId, std::string>> &Routines,
            TraceStreamOptions Opts = TraceStreamOptions());

  /// Appends one event to the current chunk, sealing it to disk when
  /// the target payload size is reached. I/O errors are sticky: the
  /// writer goes inert and close() reports the failure.
  void append(const EventRecord &E);
  /// Appends a flushed dispatcher batch of packed stream words (the
  /// RecordSink hook); each batch decodes standalone.
  void recordBatch(const Event *Words, size_t Count) override;

  /// Seals the final chunk, writes the footer index and trailer, and
  /// closes the file. Returns false if any write (including earlier
  /// append I/O) failed. The writer can be reused via open() after.
  bool close();

  bool isOpen() const { return File != nullptr; }
  const std::string &error() const { return Error; }

  uint64_t eventsWritten() const { return EventsWritten; }
  uint64_t chunksWritten() const { return Chunks.size(); }
  uint64_t bytesWritten() const { return BytesWritten; }
  /// Bytes currently buffered for the open chunk, and the high-water
  /// mark over the stream's lifetime — the writer's whole variable
  /// memory cost, which the bounded-memory benchmarks assert stays flat
  /// as the event count grows.
  uint64_t bufferedBytes() const { return Buffer.size(); }
  uint64_t peakBufferedBytes() const { return PeakBufferedBytes; }

private:
  struct ChunkMeta {
    uint64_t Offset = 0;
    uint64_t Events = 0;
    uint64_t FirstTime = 0;
    uint64_t RoutineMask = 0;
    ShardActivityMask ShardMask = {};
    ShardActivityMask WrittenMask = {};
  };

  void sealChunk();
  void writeRaw(const void *Data, size_t Size);
  void noteActivity(const EventRecord &E);

  std::FILE *File = nullptr;
  TraceStreamOptions Options;
  std::string Buffer;
  std::string Error;
  std::vector<ChunkMeta> Chunks;
  uint64_t ChunkEvents = 0;
  uint64_t ChunkFirstTime = 0;
  /// Activity accumulated for the open chunk (v2+ output only; the
  /// written mask is emitted only at v3+).
  uint64_t ChunkRoutineMask = 0;
  ShardActivityMask ChunkShardMask = {};
  ShardActivityMask ChunkWrittenMask = {};
  /// Per-chunk delta state (reset when a chunk is sealed).
  uint64_t LastTime = 0;
  uint64_t LastArg0[32] = {};
  uint64_t EventsWritten = 0;
  uint64_t BytesWritten = 0;
  uint64_t PeakBufferedBytes = 0;
  bool Failed = false;
};

/// Incremental trace reader: open() loads only the header and the
/// footer index; chunks are decoded one at a time into a caller-owned
/// reuse buffer, so replay memory is one chunk regardless of trace
/// length. Chunk-level random access (seek) goes through the index.
///
/// Every malformed input — truncated chunk, corrupt footer, overlong
/// varint, chunk length past EOF — is rejected with a diagnostic in
/// error(); no input crashes the reader or makes it allocate beyond
/// what the actual payload bytes can back.
class TraceStreamReader {
public:
  TraceStreamReader() = default;
  ~TraceStreamReader();
  TraceStreamReader(const TraceStreamReader &) = delete;
  TraceStreamReader &operator=(const TraceStreamReader &) = delete;

  /// Opens \p Path, validating the header, trailer, and footer index.
  bool open(const std::string &Path);

  const std::string &error() const { return Error; }
  const std::vector<std::pair<RoutineId, std::string>> &routines() const {
    return Routines;
  }
  size_t chunkCount() const { return Chunks.size(); }
  /// Total events across all chunks, from the footer index (no decode).
  uint64_t eventCount() const { return TotalEvents; }
  /// Per-chunk metadata from the index: event count and the timestamp
  /// of the chunk's first event (the seek key for time-based lookup).
  uint64_t chunkEvents(size_t I) const { return Chunks[I].Events; }
  uint64_t chunkFirstTime(size_t I) const { return Chunks[I].FirstTime; }

  /// Format version of the open stream (1, 2, or 3).
  unsigned formatVersion() const { return Version; }
  /// True when the index carries real per-chunk activity masks (v2+).
  /// For v1 streams the mask accessors return all-ones, so consumers
  /// can filter unconditionally and v1 simply never skips anything.
  bool hasActivityMasks() const { return Version >= 2; }
  /// True when the index carries real per-chunk written-shard masks
  /// (v3+). v1/v2 report all-ones written masks (fail-open).
  bool hasWrittenMasks() const { return Version >= 3; }
  /// Routine-activity mask of chunk \p I: bit `RoutineId & 63` is set
  /// for every Call the chunk contains.
  uint64_t chunkRoutineMask(size_t I) const { return Chunks[I].RoutineMask; }
  /// Shard-activity mask of chunk \p I (see ShardActivityMask).
  const ShardActivityMask &chunkShardMask(size_t I) const {
    return Chunks[I].ShardMask;
  }
  /// Written-shard mask of chunk \p I: shard slots touched by the
  /// chunk's mutating events (Write, KernelWrite, Alloc).
  const ShardActivityMask &chunkWrittenMask(size_t I) const {
    return Chunks[I].WrittenMask;
  }

  /// Index of the last chunk whose first event time is <= \p Time (0 if
  /// Time predates every chunk) — chunk-level seek for resuming replay
  /// mid-stream.
  size_t chunkIndexForTime(uint64_t Time) const;

  /// Decodes chunk \p I into packed stream words (cleared first;
  /// capacity is reused across calls). Each chunk's word run decodes
  /// standalone. Returns false with a diagnostic on any malformed
  /// chunk.
  bool readChunk(size_t I, std::vector<Event> &Out);
  /// Wide-record convenience overload (tests, offline analysis).
  bool readChunk(size_t I, std::vector<EventRecord> &Out);

  /// Sequential cursor: decodes the next unread chunk into \p Out.
  /// Returns false at end of stream (error() empty) or on a malformed
  /// chunk (error() set). seek() repositions the cursor.
  bool nextChunk(std::vector<Event> &Out);
  bool nextChunk(std::vector<EventRecord> &Out);
  void seek(size_t ChunkIndex) { Cursor = ChunkIndex; }
  size_t cursor() const { return Cursor; }

private:
  struct ChunkMeta {
    uint64_t Offset = 0;
    uint64_t Events = 0;
    uint64_t FirstTime = 0;
    uint64_t RoutineMask = 0;
    ShardActivityMask ShardMask = {};
    ShardActivityMask WrittenMask = {};
  };

  bool fail(const std::string &Message);

  std::FILE *File = nullptr;
  std::string Error;
  std::vector<std::pair<RoutineId, std::string>> Routines;
  std::vector<ChunkMeta> Chunks;
  uint64_t TotalEvents = 0;
  uint64_t FooterOffset = 0;
  unsigned Version = 0;
  size_t Cursor = 0;
  /// Reused raw-payload buffer (readChunk decodes out of it).
  std::string Payload;
  /// Reused packed scratch backing the wide readChunk overload.
  std::vector<Event> PackedScratch;
};

/// True when \p Path starts with the chunked-stream magic; lets the
/// driver auto-detect stream files next to the monolithic formats.
bool isTraceStreamFile(const std::string &Path);

/// Replays \p Reader's full stream into \p T through a batching
/// EventDispatcher (the same delivery path replayTraceBatched uses),
/// pulling one chunk at a time with a reused buffer. Returns false on
/// a read error (Reader.error() explains); the tool still sees
/// onFinish so partial results are well-formed.
bool replayTraceStream(TraceStreamReader &Reader, Tool &T,
                       const SymbolTable *Symbols = nullptr);

} // namespace isp

#endif // ISPROF_TRACE_TRACESTREAM_H
