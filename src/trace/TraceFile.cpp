//===- trace/TraceFile.cpp - Binary trace serialization ---------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "trace/TraceFile.h"

#include <cstdint>
#include <cstdio>
#include <cstring>

using namespace isp;

static const char Magic[8] = {'I', 'S', 'P', 'T', 'R', 'C', '0', '1'};
static const char MagicV2[8] = {'I', 'S', 'P', 'T', 'R', 'C', '0', '2'};

namespace {

/// Appends fixed-width little-endian integers to a byte buffer.
class ByteWriter {
public:
  explicit ByteWriter(std::string &Out) : Out(Out) {}

  void writeU32(uint32_t V) {
    for (int I = 0; I != 4; ++I)
      Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
  }
  void writeU64(uint64_t V) {
    for (int I = 0; I != 8; ++I)
      Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
  }
  void writeBytes(const void *Data, size_t Size) {
    Out.append(static_cast<const char *>(Data), Size);
  }

private:
  std::string &Out;
};

/// Reads fixed-width little-endian integers from a byte buffer; sets a
/// sticky failure flag on underflow instead of reading out of bounds.
class ByteReader {
public:
  ByteReader(const char *Data, size_t Size) : Data(Data), Size(Size) {}

  bool readU32(uint32_t &V) {
    if (!ensure(4))
      return false;
    V = 0;
    for (int I = 0; I != 4; ++I)
      V |= static_cast<uint32_t>(static_cast<unsigned char>(Data[Pos++]))
           << (8 * I);
    return true;
  }
  bool readU64(uint64_t &V) {
    if (!ensure(8))
      return false;
    V = 0;
    for (int I = 0; I != 8; ++I)
      V |= static_cast<uint64_t>(static_cast<unsigned char>(Data[Pos++]))
           << (8 * I);
    return true;
  }
  bool readBytes(void *Out, size_t N) {
    if (!ensure(N))
      return false;
    std::memcpy(Out, Data + Pos, N);
    Pos += N;
    return true;
  }
  bool atEnd() const { return Pos == Size; }
  size_t remaining() const { return Size - Pos; }

private:
  bool ensure(size_t N) const { return Size - Pos >= N; }

  const char *Data;
  size_t Size;
  size_t Pos = 0;
};

} // namespace

namespace {

/// Unsigned LEB128 append.
void writeVarint(std::string &Out, uint64_t V) {
  while (V >= 0x80) {
    Out.push_back(static_cast<char>((V & 0x7f) | 0x80));
    V >>= 7;
  }
  Out.push_back(static_cast<char>(V));
}

/// Unsigned LEB128 read; false on truncation or overlong encodings. A
/// uint64 needs at most ten bytes, and the tenth may carry only bit 63:
/// a continuation bit or payload bits 64+ there mean the value cannot
/// fit, so the stream is rejected rather than silently wrapped.
bool readVarint(const std::string &Bytes, size_t &Pos, uint64_t &V) {
  V = 0;
  for (unsigned Shift = 0; Shift < 64; Shift += 7) {
    if (Pos >= Bytes.size())
      return false;
    uint8_t Byte = static_cast<uint8_t>(Bytes[Pos++]);
    if (Shift == 63 && (Byte & 0xfe))
      return false;
    V |= static_cast<uint64_t>(Byte & 0x7f) << Shift;
    if (!(Byte & 0x80))
      return true;
  }
  return false;
}

/// ZigZag for signed deltas.
uint64_t zigzag(int64_t V) {
  return (static_cast<uint64_t>(V) << 1) ^
         static_cast<uint64_t>(V >> 63);
}
int64_t unzigzag(uint64_t V) {
  return static_cast<int64_t>(V >> 1) ^ -static_cast<int64_t>(V & 1);
}

std::string serializeCompressed(const TraceData &Data) {
  std::string Out;
  Out.reserve(16 + Data.Events.size() * 6);
  Out.append(MagicV2, sizeof(MagicV2));
  writeVarint(Out, Data.Routines.size());
  for (const auto &[Id, Name] : Data.Routines) {
    writeVarint(Out, Id);
    writeVarint(Out, Name.size());
    Out.append(Name);
  }
  writeVarint(Out, Data.Events.size());
  // Delta state: time is monotone (plain delta); Arg0 (addresses) is
  // delta-coded per event kind via zigzag since accesses cluster.
  uint64_t LastTime = 0;
  uint64_t LastArg0[32] = {};
  for (const EventRecord &E : Data.Events) {
    Out.push_back(static_cast<char>(E.Kind));
    writeVarint(Out, E.Tid);
    writeVarint(Out, E.Time - LastTime);
    LastTime = E.Time;
    uint8_t K = static_cast<uint8_t>(E.Kind);
    writeVarint(Out, zigzag(static_cast<int64_t>(E.Arg0) -
                            static_cast<int64_t>(LastArg0[K])));
    LastArg0[K] = E.Arg0;
    writeVarint(Out, E.Arg1);
  }
  return Out;
}

bool deserializeCompressed(const std::string &Bytes, TraceData &Data) {
  size_t Pos = sizeof(MagicV2);
  uint64_t RoutineCount = 0;
  if (!readVarint(Bytes, Pos, RoutineCount))
    return false;
  // Each routine needs at least two bytes (id + length varints), so a
  // count beyond remaining/2 is a lie — reject before trusting it.
  if (RoutineCount > (Bytes.size() - Pos) / 2)
    return false;
  Data.Routines.clear();
  for (uint64_t I = 0; I != RoutineCount; ++I) {
    uint64_t Id = 0, Len = 0;
    if (!readVarint(Bytes, Pos, Id) || !readVarint(Bytes, Pos, Len) ||
        Bytes.size() - Pos < Len)
      return false;
    if (Id > UINT32_MAX)
      return false;
    Data.Routines.emplace_back(static_cast<RoutineId>(Id),
                               Bytes.substr(Pos, Len));
    Pos += Len;
  }
  uint64_t EventCount = 0;
  if (!readVarint(Bytes, Pos, EventCount))
    return false;
  // The smallest encoded event is five bytes (kind + four one-byte
  // varints). Clamping the declared count to what the payload could
  // possibly hold keeps a hostile header from reserving gigabytes.
  if (EventCount > (Bytes.size() - Pos) / 5)
    return false;
  Data.Events.clear();
  Data.Events.reserve(EventCount);
  uint64_t LastTime = 0;
  uint64_t LastArg0[32] = {};
  for (uint64_t I = 0; I != EventCount; ++I) {
    if (Pos >= Bytes.size())
      return false;
    uint8_t KindByte = static_cast<uint8_t>(Bytes[Pos++]);
    if (KindByte > static_cast<uint8_t>(EventKind::ThreadSwitch))
      return false;
    EventRecord E;
    E.Kind = static_cast<EventKind>(KindByte);
    uint64_t Tid = 0, TimeDelta = 0, Arg0Delta = 0, Arg1 = 0;
    if (!readVarint(Bytes, Pos, Tid) ||
        !readVarint(Bytes, Pos, TimeDelta) ||
        !readVarint(Bytes, Pos, Arg0Delta) ||
        !readVarint(Bytes, Pos, Arg1))
      return false;
    // ThreadId is 32-bit; a larger varint would truncate silently.
    if (Tid > UINT32_MAX)
      return false;
    E.Tid = static_cast<ThreadId>(Tid);
    LastTime += TimeDelta;
    E.Time = LastTime;
    LastArg0[KindByte] = static_cast<uint64_t>(
        static_cast<int64_t>(LastArg0[KindByte]) + unzigzag(Arg0Delta));
    E.Arg0 = LastArg0[KindByte];
    E.Arg1 = Arg1;
    Data.Events.push_back(E);
  }
  return Pos == Bytes.size();
}

} // namespace

static std::string serializeRaw(const TraceData &Data) {
  std::string Out;
  Out.reserve(16 + Data.Events.size() * 29);
  ByteWriter W(Out);
  W.writeBytes(Magic, sizeof(Magic));
  W.writeU32(static_cast<uint32_t>(Data.Routines.size()));
  for (const auto &[Id, Name] : Data.Routines) {
    W.writeU32(Id);
    W.writeU32(static_cast<uint32_t>(Name.size()));
    W.writeBytes(Name.data(), Name.size());
  }
  W.writeU64(Data.Events.size());
  for (const EventRecord &E : Data.Events) {
    Out.push_back(static_cast<char>(E.Kind));
    W.writeU32(E.Tid);
    W.writeU64(E.Time);
    W.writeU64(E.Arg0);
    W.writeU64(E.Arg1);
  }
  return Out;
}

std::string isp::serializeTrace(const TraceData &Data, TraceFormat Format) {
  return Format == TraceFormat::Compressed ? serializeCompressed(Data)
                                           : serializeRaw(Data);
}

bool isp::deserializeTrace(const std::string &Bytes, TraceData &Data) {
  if (Bytes.size() >= sizeof(MagicV2) &&
      std::memcmp(Bytes.data(), MagicV2, sizeof(MagicV2)) == 0)
    return deserializeCompressed(Bytes, Data);
  ByteReader R(Bytes.data(), Bytes.size());
  char Header[8];
  if (!R.readBytes(Header, sizeof(Header)) ||
      std::memcmp(Header, Magic, sizeof(Magic)) != 0)
    return false;

  uint32_t RoutineCount = 0;
  if (!R.readU32(RoutineCount))
    return false;
  // A routine record is at least eight bytes (two u32s); bound the
  // declared count by the bytes actually present before reserving.
  if (RoutineCount > R.remaining() / 8)
    return false;
  Data.Routines.clear();
  Data.Routines.reserve(RoutineCount);
  for (uint32_t I = 0; I != RoutineCount; ++I) {
    uint32_t Id = 0, Len = 0;
    if (!R.readU32(Id) || !R.readU32(Len))
      return false;
    if (Len > R.remaining())
      return false;
    std::string Name(Len, '\0');
    if (!R.readBytes(Name.data(), Len))
      return false;
    Data.Routines.emplace_back(Id, std::move(Name));
  }

  uint64_t EventCount = 0;
  if (!R.readU64(EventCount))
    return false;
  // Raw events are 29 bytes each; an EventCount the payload cannot hold
  // is rejected before Events.reserve() trusts it.
  if (EventCount > R.remaining() / 29)
    return false;
  Data.Events.clear();
  Data.Events.reserve(EventCount);
  for (uint64_t I = 0; I != EventCount; ++I) {
    unsigned char KindByte = 0;
    EventRecord E;
    if (!R.readBytes(&KindByte, 1) || !R.readU32(E.Tid) ||
        !R.readU64(E.Time) || !R.readU64(E.Arg0) || !R.readU64(E.Arg1))
      return false;
    if (KindByte > static_cast<unsigned char>(EventKind::ThreadSwitch))
      return false;
    E.Kind = static_cast<EventKind>(KindByte);
    Data.Events.push_back(E);
  }
  return R.atEnd();
}

bool isp::writeTraceFile(const std::string &Path, const TraceData &Data,
                         TraceFormat Format) {
  std::FILE *File = std::fopen(Path.c_str(), "wb");
  if (!File)
    return false;
  std::string Bytes = serializeTrace(Data, Format);
  size_t Written = std::fwrite(Bytes.data(), 1, Bytes.size(), File);
  // fclose flushes stdio's buffer; a full disk surfaces here, not in
  // fwrite, so its result is part of the write succeeding.
  int CloseResult = std::fclose(File);
  return Written == Bytes.size() && CloseResult == 0;
}

bool isp::readTraceFile(const std::string &Path, TraceData &Data) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return false;
  std::string Bytes;
  char Buffer[1 << 16];
  size_t N;
  while ((N = std::fread(Buffer, 1, sizeof(Buffer), File)) > 0)
    Bytes.append(Buffer, N);
  // fread returning 0 means EOF *or* error; only EOF leaves the bytes
  // trustworthy enough to hand to the deserializer.
  bool ReadOk = !std::ferror(File);
  std::fclose(File);
  return ReadOk && deserializeTrace(Bytes, Data);
}
