//===- trace/TraceMerger.h - Timestamped trace merging ----------*- C++ -*-===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Merges per-thread event traces into one totally ordered execution
/// trace, exactly as the paper's Section 4 prescribes: events are
/// interleaved by timestamp; ties between threads are broken arbitrarily
/// (we expose deterministic and seeded-random tie-break policies so tests
/// can assert schedule-independence); and ThreadSwitch events are inserted
/// between any two consecutive operations of different threads.
///
//===----------------------------------------------------------------------===//

#ifndef ISPROF_TRACE_TRACEMERGER_H
#define ISPROF_TRACE_TRACEMERGER_H

#include "trace/Event.h"

#include <cstdint>
#include <vector>

namespace isp {

/// How the merger breaks timestamp ties between threads. Per the paper,
/// "ties are broken arbitrarily: no assumption can be done about which
/// operation will be processed first" — analyses must be correct for any
/// policy.
enum class TieBreakPolicy {
  ByThreadId,    ///< Deterministic: lowest thread id first.
  RoundRobin,    ///< Deterministic: rotate among tied threads.
  SeededRandom   ///< Randomized by an explicit seed (for property tests).
};

struct TraceMergeOptions {
  TieBreakPolicy Policy = TieBreakPolicy::ByThreadId;
  uint64_t Seed = 0;
  /// Insert ThreadSwitch pseudo-events between operations of different
  /// threads (Section 4's switchThread events).
  bool InsertThreadSwitches = true;
};

/// Merges \p ThreadTraces (each sorted by EventRecord::Time, each from a single
/// thread) into one totally ordered trace. Asserts in debug builds if a
/// per-thread trace is not time-sorted or mixes thread ids.
std::vector<EventRecord>
mergeTraces(const std::vector<std::vector<EventRecord>> &ThreadTraces,
            const TraceMergeOptions &Options = TraceMergeOptions());

/// Verifies the per-thread invariants mergeTraces relies on; returns true
/// when every input trace is non-decreasing in time and single-threaded.
bool verifyThreadTraces(const std::vector<std::vector<EventRecord>> &ThreadTraces);

} // namespace isp

#endif // ISPROF_TRACE_TRACEMERGER_H
