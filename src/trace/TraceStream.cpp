//===- trace/TraceStream.cpp - Chunked streaming trace files -----------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "trace/TraceStream.h"

#include <algorithm>
#include <cstring>

using namespace isp;

static const char StreamMagicV1[8] = {'I', 'S', 'P', 'S', 'T', 'M', '0', '1'};
static const char StreamMagicV2[8] = {'I', 'S', 'P', 'S', 'T', 'M', '0', '2'};
static const char StreamMagicV3[8] = {'I', 'S', 'P', 'S', 'T', 'M', '0', '3'};
static const char TrailerMagic[8] = {'I', 'S', 'P', 'S', 'T', 'M', 'I', 'X'};

/// Bytes 0..6 shared by every version's magic ("ISPSTM0").
static constexpr size_t MagicBytes = sizeof(StreamMagicV1);

/// Decodes the version digit of an 8-byte magic; 0 when not a stream.
static unsigned streamVersionOf(const char *Head) {
  if (std::memcmp(Head, StreamMagicV1, MagicBytes - 1) != 0)
    return 0;
  if (Head[MagicBytes - 1] == '1')
    return 1;
  if (Head[MagicBytes - 1] == '2')
    return 2;
  if (Head[MagicBytes - 1] == '3')
    return 3;
  return 0;
}

static const char *streamMagicFor(unsigned Version) {
  return Version == 1 ? StreamMagicV1
                      : (Version == 2 ? StreamMagicV2 : StreamMagicV3);
}

/// Trailer: u64 footer offset + magic, always the last 16 file bytes.
static constexpr size_t TrailerBytes = 8 + sizeof(TrailerMagic);

namespace {

/// Unsigned LEB128 append (the TraceFile.cpp v2 convention).
void writeVarint(std::string &Out, uint64_t V) {
  while (V >= 0x80) {
    Out.push_back(static_cast<char>((V & 0x7f) | 0x80));
    V >>= 7;
  }
  Out.push_back(static_cast<char>(V));
}

/// Unsigned LEB128 read; false on truncation or overlong encodings. A
/// uint64 needs at most ten bytes, and the tenth may carry only bit 63:
/// a continuation bit or payload bits 64+ there mean the value cannot
/// fit, so the stream is rejected rather than silently wrapped.
bool readVarint(const std::string &Bytes, size_t &Pos, uint64_t &V) {
  V = 0;
  for (unsigned Shift = 0; Shift < 64; Shift += 7) {
    if (Pos >= Bytes.size())
      return false;
    uint8_t Byte = static_cast<uint8_t>(Bytes[Pos++]);
    if (Shift == 63 && (Byte & 0xfe))
      return false;
    V |= static_cast<uint64_t>(Byte & 0x7f) << Shift;
    if (!(Byte & 0x80))
      return true;
  }
  return false;
}

uint64_t zigzag(int64_t V) {
  return (static_cast<uint64_t>(V) << 1) ^ static_cast<uint64_t>(V >> 63);
}
int64_t unzigzag(uint64_t V) {
  return static_cast<int64_t>(V >> 1) ^ -static_cast<int64_t>(V & 1);
}

void appendU32(std::string &Out, uint32_t V) {
  for (int I = 0; I != 4; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

void appendU64(std::string &Out, uint64_t V) {
  for (int I = 0; I != 8; ++I)
    Out.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

uint32_t decodeU32(const unsigned char *P) {
  uint32_t V = 0;
  for (int I = 0; I != 4; ++I)
    V |= static_cast<uint32_t>(P[I]) << (8 * I);
  return V;
}

uint64_t decodeU64(const unsigned char *P) {
  uint64_t V = 0;
  for (int I = 0; I != 8; ++I)
    V |= static_cast<uint64_t>(P[I]) << (8 * I);
  return V;
}

} // namespace

//===----------------------------------------------------------------------===//
// TraceStreamWriter
//===----------------------------------------------------------------------===//

TraceStreamWriter::~TraceStreamWriter() {
  if (File) {
    std::fclose(File);
    File = nullptr;
  }
}

bool TraceStreamWriter::open(
    const std::string &Path,
    const std::vector<std::pair<RoutineId, std::string>> &Routines,
    TraceStreamOptions Opts) {
  if (File)
    std::fclose(File);
  File = std::fopen(Path.c_str(), "wb");
  Options = Opts;
  if (Options.ChunkBytes == 0)
    Options.ChunkBytes = 1;
  Buffer.clear();
  Error.clear();
  Chunks.clear();
  ChunkEvents = 0;
  ChunkFirstTime = 0;
  LastTime = 0;
  std::memset(LastArg0, 0, sizeof(LastArg0));
  EventsWritten = 0;
  BytesWritten = 0;
  PeakBufferedBytes = 0;
  Failed = false;
  ChunkRoutineMask = 0;
  ChunkShardMask = {};
  ChunkWrittenMask = {};
  if (!File) {
    Error = "cannot open '" + Path + "' for writing";
    Failed = true;
    return false;
  }
  if (Options.FormatVersion < 1 || Options.FormatVersion > 3) {
    Error = "unsupported trace stream format version";
    Failed = true;
    std::fclose(File);
    File = nullptr;
    return false;
  }
  std::string Header;
  Header.append(streamMagicFor(Options.FormatVersion), MagicBytes);
  writeVarint(Header, Routines.size());
  for (const auto &[Id, Name] : Routines) {
    writeVarint(Header, Id);
    writeVarint(Header, Name.size());
    Header.append(Name);
  }
  writeRaw(Header.data(), Header.size());
  return !Failed;
}

void TraceStreamWriter::writeRaw(const void *Data, size_t Size) {
  if (Failed || !File)
    return;
  if (std::fwrite(Data, 1, Size, File) != Size) {
    Error = "short write to trace stream";
    Failed = true;
    return;
  }
  BytesWritten += Size;
}

/// Sets the shard-slot bits the cell range [Addr, Addr+Cells) touches.
static void noteShardRange(ShardActivityMask &Mask, Addr A, uint64_t Cells) {
  if (Cells == 0)
    return;
  uint64_t FirstKey = A >> ActivityChunkShift;
  uint64_t LastKey = (A + Cells - 1) >> ActivityChunkShift;
  if (LastKey - FirstKey >= ActivityShardSlots - 1) {
    Mask.fill(~uint64_t(0));
    return;
  }
  for (uint64_t Key = FirstKey; Key <= LastKey; ++Key) {
    unsigned Slot = static_cast<unsigned>(Key & (ActivityShardSlots - 1));
    Mask[Slot >> 6] |= uint64_t(1) << (Slot & 63);
  }
}

void TraceStreamWriter::noteActivity(const EventRecord &E) {
  switch (E.Kind) {
  case EventKind::Call:
    ChunkRoutineMask |= uint64_t(1) << (E.Arg0 & 63);
    return;
  case EventKind::Read:
  case EventKind::KernelRead:
    noteShardRange(ChunkShardMask, E.Arg0, E.Arg1);
    return;
  case EventKind::Write:
  case EventKind::KernelWrite:
    noteShardRange(ChunkShardMask, E.Arg0, E.Arg1);
    noteShardRange(ChunkWrittenMask, E.Arg0, E.Arg1);
    return;
  case EventKind::Alloc:
    // Allocation defines memory (shadow state changes) without a Read
    // or Write event; a filtered-ingest consumer must treat it as a
    // mutation, so it contributes to the written mask. It stays out of
    // the access-shard mask, whose consumers route only memory-access
    // events.
    noteShardRange(ChunkWrittenMask, E.Arg0, E.Arg1);
    return;
  default:
    return;
  }
}

void TraceStreamWriter::append(const EventRecord &E) {
  if (Failed || !File)
    return;
  if (ChunkEvents == 0)
    ChunkFirstTime = E.Time;
  if (Options.FormatVersion >= 2)
    noteActivity(E);
  Buffer.push_back(static_cast<char>(E.Kind));
  writeVarint(Buffer, E.Tid);
  writeVarint(Buffer, E.Time - LastTime);
  LastTime = E.Time;
  uint8_t K = static_cast<uint8_t>(E.Kind);
  writeVarint(Buffer, zigzag(static_cast<int64_t>(E.Arg0) -
                             static_cast<int64_t>(LastArg0[K])));
  LastArg0[K] = E.Arg0;
  writeVarint(Buffer, E.Arg1);
  ++ChunkEvents;
  ++EventsWritten;
  PeakBufferedBytes = std::max<uint64_t>(PeakBufferedBytes, Buffer.size());
  if (Buffer.size() >= Options.ChunkBytes)
    sealChunk();
}

void TraceStreamWriter::recordBatch(const Event *Words, size_t Count) {
  // Every flushed batch decodes standalone; re-encode into the on-disk
  // delta codec one record at a time.
  EventStreamView V(Words, Count);
  for (EventRecord E; V.next(E);)
    append(E);
}

void TraceStreamWriter::sealChunk() {
  if (ChunkEvents == 0)
    return;
  ChunkMeta Meta;
  Meta.Offset = BytesWritten;
  Meta.Events = ChunkEvents;
  Meta.FirstTime = ChunkFirstTime;
  Meta.RoutineMask = ChunkRoutineMask;
  Meta.ShardMask = ChunkShardMask;
  Meta.WrittenMask = ChunkWrittenMask;
  // Payload = varint event count + the buffered encoded events; the
  // chunk is the u32 payload length followed by the payload.
  std::string CountPrefix;
  writeVarint(CountPrefix, ChunkEvents);
  std::string LenPrefix;
  appendU32(LenPrefix,
            static_cast<uint32_t>(CountPrefix.size() + Buffer.size()));
  writeRaw(LenPrefix.data(), LenPrefix.size());
  writeRaw(CountPrefix.data(), CountPrefix.size());
  writeRaw(Buffer.data(), Buffer.size());
  Chunks.push_back(Meta);
  Buffer.clear();
  ChunkEvents = 0;
  ChunkFirstTime = 0;
  ChunkRoutineMask = 0;
  ChunkShardMask = {};
  ChunkWrittenMask = {};
  // Reset the delta state: each chunk decodes independently, which is
  // what makes chunk-level seek possible.
  LastTime = 0;
  std::memset(LastArg0, 0, sizeof(LastArg0));
}

bool TraceStreamWriter::close() {
  if (!File)
    return !Failed;
  sealChunk();
  uint64_t FooterOffset = BytesWritten;
  std::string Footer;
  writeVarint(Footer, Chunks.size());
  for (const ChunkMeta &Meta : Chunks) {
    writeVarint(Footer, Meta.Offset);
    writeVarint(Footer, Meta.Events);
    writeVarint(Footer, Meta.FirstTime);
    if (Options.FormatVersion >= 2) {
      writeVarint(Footer, Meta.RoutineMask);
      for (uint64_t Word : Meta.ShardMask)
        writeVarint(Footer, Word);
    }
    if (Options.FormatVersion >= 3)
      for (uint64_t Word : Meta.WrittenMask)
        writeVarint(Footer, Word);
  }
  appendU64(Footer, FooterOffset);
  Footer.append(TrailerMagic, sizeof(TrailerMagic));
  writeRaw(Footer.data(), Footer.size());
  // fclose flushes stdio's buffer; a full disk surfaces here, not in
  // fwrite, so its result is part of the write succeeding.
  if (std::fclose(File) != 0 && !Failed) {
    Error = "close failed on trace stream";
    Failed = true;
  }
  File = nullptr;
  return !Failed;
}

//===----------------------------------------------------------------------===//
// TraceStreamReader
//===----------------------------------------------------------------------===//

TraceStreamReader::~TraceStreamReader() {
  if (File) {
    std::fclose(File);
    File = nullptr;
  }
}

bool TraceStreamReader::fail(const std::string &Message) {
  Error = Message;
  if (File) {
    std::fclose(File);
    File = nullptr;
  }
  return false;
}

bool TraceStreamReader::open(const std::string &Path) {
  if (File)
    std::fclose(File);
  File = nullptr;
  Error.clear();
  Routines.clear();
  Chunks.clear();
  TotalEvents = 0;
  FooterOffset = 0;
  Version = 0;
  Cursor = 0;
  File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return fail("cannot open '" + Path + "'");
  if (std::fseek(File, 0, SEEK_END) != 0)
    return fail("cannot seek in '" + Path + "'");
  long EndPos = std::ftell(File);
  if (EndPos < 0)
    return fail("cannot tell file size of '" + Path + "'");
  uint64_t FileSize = static_cast<uint64_t>(EndPos);
  if (FileSize < MagicBytes + TrailerBytes)
    return fail("not a trace stream: file too small");

  char Head[MagicBytes];
  if (std::fseek(File, 0, SEEK_SET) != 0 ||
      std::fread(Head, 1, sizeof(Head), File) != sizeof(Head))
    return fail("not a trace stream: bad magic");
  Version = streamVersionOf(Head);
  if (Version == 0)
    return fail("not a trace stream: bad magic or unsupported version");

  // Trailer: the last 16 bytes locate the footer index.
  unsigned char Trailer[TrailerBytes];
  if (std::fseek(File, static_cast<long>(FileSize - TrailerBytes),
                 SEEK_SET) != 0 ||
      std::fread(Trailer, 1, TrailerBytes, File) != TrailerBytes)
    return fail("truncated trace stream: missing trailer");
  if (std::memcmp(Trailer + 8, TrailerMagic, sizeof(TrailerMagic)) != 0)
    return fail("truncated trace stream: bad trailer magic");
  FooterOffset = decodeU64(Trailer);
  if (FooterOffset < MagicBytes ||
      FooterOffset > FileSize - TrailerBytes)
    return fail("corrupt footer offset");

  // Footer index: chunk count, then (offset, events, first time) per
  // chunk. Counts are clamped to what the footer bytes can encode
  // before anything is reserved.
  size_t FooterLen = static_cast<size_t>(FileSize - TrailerBytes - FooterOffset);
  std::string Footer(FooterLen, '\0');
  if (std::fseek(File, static_cast<long>(FooterOffset), SEEK_SET) != 0 ||
      std::fread(Footer.data(), 1, FooterLen, File) != FooterLen)
    return fail("truncated trace stream: missing footer");
  size_t Pos = 0;
  uint64_t ChunkCount = 0;
  if (!readVarint(Footer, Pos, ChunkCount))
    return fail("corrupt footer: bad chunk count");
  // Each index entry is at least three one-byte varints (v2 adds the
  // routine mask and four shard-mask words, v3 four more written-mask
  // words, one byte minimum each).
  size_t MinEntryBytes = Version >= 3 ? 12 : (Version >= 2 ? 8 : 3);
  if (ChunkCount > (Footer.size() - Pos) / MinEntryBytes)
    return fail("corrupt footer: chunk count exceeds index bytes");
  Chunks.reserve(ChunkCount);
  uint64_t PrevEnd = MagicBytes;
  for (uint64_t I = 0; I != ChunkCount; ++I) {
    ChunkMeta Meta;
    if (!readVarint(Footer, Pos, Meta.Offset) ||
        !readVarint(Footer, Pos, Meta.Events) ||
        !readVarint(Footer, Pos, Meta.FirstTime))
      return fail("corrupt footer: truncated index entry");
    if (Version >= 2) {
      bool MasksOk = readVarint(Footer, Pos, Meta.RoutineMask);
      for (uint64_t &Word : Meta.ShardMask)
        MasksOk = MasksOk && readVarint(Footer, Pos, Word);
      if (!MasksOk)
        return fail("corrupt footer: truncated activity masks");
    } else {
      // v1 carries no activity masks; report "everything may be
      // active" so mask-driven skipping is a no-op, never wrong.
      Meta.RoutineMask = ~uint64_t(0);
      Meta.ShardMask.fill(~uint64_t(0));
    }
    if (Version >= 3) {
      bool MasksOk = true;
      for (uint64_t &Word : Meta.WrittenMask)
        MasksOk = MasksOk && readVarint(Footer, Pos, Word);
      if (!MasksOk)
        return fail("corrupt footer: truncated written masks");
    } else {
      // Pre-v3 indexes don't say what a chunk writes; report
      // "everything may be written" so write-aware skipping stays
      // sound (it just never skips on old streams).
      Meta.WrittenMask.fill(~uint64_t(0));
    }
    // Offsets must be in order, past the header (and every earlier
    // chunk), and leave room for the chunk's own length prefix.
    if (Meta.Offset < PrevEnd || Meta.Offset + 4 > FooterOffset)
      return fail("corrupt footer: chunk offset out of bounds");
    PrevEnd = Meta.Offset + 4;
    TotalEvents += Meta.Events;
    Chunks.push_back(Meta);
  }
  if (Pos != Footer.size())
    return fail("corrupt footer: trailing bytes");

  // Routine table: everything between the magic and the first chunk
  // (or the footer, for an event-free stream).
  uint64_t HeaderEnd = Chunks.empty() ? FooterOffset : Chunks.front().Offset;
  size_t HeaderLen = static_cast<size_t>(HeaderEnd - MagicBytes);
  std::string Header(HeaderLen, '\0');
  if (std::fseek(File, MagicBytes, SEEK_SET) != 0 ||
      std::fread(Header.data(), 1, HeaderLen, File) != HeaderLen)
    return fail("truncated trace stream: missing routine table");
  Pos = 0;
  uint64_t RoutineCount = 0;
  if (!readVarint(Header, Pos, RoutineCount))
    return fail("corrupt routine table: bad count");
  // Each routine needs at least two bytes (id + length varints).
  if (RoutineCount > (Header.size() - Pos) / 2)
    return fail("corrupt routine table: count exceeds header bytes");
  Routines.reserve(RoutineCount);
  for (uint64_t I = 0; I != RoutineCount; ++I) {
    uint64_t Id = 0, Len = 0;
    if (!readVarint(Header, Pos, Id) || !readVarint(Header, Pos, Len) ||
        Header.size() - Pos < Len)
      return fail("corrupt routine table: truncated entry");
    if (Id > UINT32_MAX)
      return fail("corrupt routine table: routine id out of range");
    Routines.emplace_back(static_cast<RoutineId>(Id),
                          Header.substr(Pos, Len));
    Pos += Len;
  }
  if (Pos != Header.size())
    return fail("corrupt routine table: trailing bytes");
  return true;
}

size_t TraceStreamReader::chunkIndexForTime(uint64_t Time) const {
  size_t Lo = 0;
  for (size_t I = 0; I != Chunks.size(); ++I) {
    if (Chunks[I].FirstTime > Time)
      break;
    Lo = I;
  }
  return Lo;
}

bool TraceStreamReader::readChunk(size_t I, std::vector<Event> &Out) {
  Out.clear();
  if (!File)
    return fail(Error.empty() ? "trace stream is not open" : Error);
  if (I >= Chunks.size()) {
    Error = "chunk index out of range";
    return false;
  }
  const ChunkMeta &Meta = Chunks[I];
  unsigned char LenBytes[4];
  if (std::fseek(File, static_cast<long>(Meta.Offset), SEEK_SET) != 0 ||
      std::fread(LenBytes, 1, 4, File) != 4)
    return fail("truncated chunk: missing length prefix");
  uint32_t PayloadLen = decodeU32(LenBytes);
  // A chunk must end before the footer index begins; a length that
  // runs past it (or past EOF) is rejected before any read.
  if (PayloadLen == 0 ||
      static_cast<uint64_t>(PayloadLen) > FooterOffset - (Meta.Offset + 4))
    return fail("corrupt chunk: payload length out of bounds");
  Payload.resize(PayloadLen);
  if (std::fread(Payload.data(), 1, PayloadLen, File) != PayloadLen)
    return fail("truncated chunk: payload cut short");

  size_t Pos = 0;
  uint64_t EventCount = 0;
  if (!readVarint(Payload, Pos, EventCount))
    return fail("corrupt chunk: bad event count");
  // The smallest encoded event is five bytes; clamp the declared count
  // to what the payload can hold before reserving, and cross-check it
  // against the footer index so the two can never disagree silently.
  if (EventCount > (Payload.size() - Pos) / 5)
    return fail("corrupt chunk: event count exceeds payload bytes");
  if (EventCount != Meta.Events)
    return fail("corrupt chunk: event count disagrees with footer index");
  Out.reserve(EventCount);
  // Per-chunk delta state: every chunk decodes from a clean slate —
  // both the on-disk delta codec and the packed word encoder, so each
  // chunk's word run also decodes standalone.
  uint64_t LastTime = 0;
  uint64_t LastArg0[32] = {};
  EventEncoder Enc;
  Event Words[Event::MaxWordsPerRecord];
  for (uint64_t N = 0; N != EventCount; ++N) {
    if (Pos >= Payload.size())
      return fail("corrupt chunk: truncated event");
    uint8_t KindByte = static_cast<uint8_t>(Payload[Pos++]);
    if (KindByte > static_cast<uint8_t>(EventKind::ThreadSwitch))
      return fail("corrupt chunk: invalid event kind");
    EventRecord E;
    E.Kind = static_cast<EventKind>(KindByte);
    uint64_t Tid = 0, TimeDelta = 0, Arg0Delta = 0, Arg1 = 0;
    if (!readVarint(Payload, Pos, Tid) ||
        !readVarint(Payload, Pos, TimeDelta) ||
        !readVarint(Payload, Pos, Arg0Delta) ||
        !readVarint(Payload, Pos, Arg1))
      return fail("corrupt chunk: bad event varint");
    if (Tid > UINT32_MAX)
      return fail("corrupt chunk: thread id out of range");
    E.Tid = static_cast<ThreadId>(Tid);
    LastTime += TimeDelta;
    E.Time = LastTime;
    LastArg0[KindByte] = static_cast<uint64_t>(
        static_cast<int64_t>(LastArg0[KindByte]) + unzigzag(Arg0Delta));
    E.Arg0 = LastArg0[KindByte];
    E.Arg1 = Arg1;
    Out.insert(Out.end(), Words, Words + Enc.encode(E, Words));
  }
  if (Pos != Payload.size())
    return fail("corrupt chunk: trailing payload bytes");
  return true;
}

bool TraceStreamReader::readChunk(size_t I, std::vector<EventRecord> &Out) {
  Out.clear();
  if (!readChunk(I, PackedScratch))
    return false;
  Out.reserve(packedEventCount(PackedScratch));
  EventStreamView V(PackedScratch);
  for (EventRecord E; V.next(E);)
    Out.push_back(E);
  return true;
}

bool TraceStreamReader::nextChunk(std::vector<Event> &Out) {
  if (Cursor >= Chunks.size()) {
    Out.clear();
    return false; // end of stream; error() stays empty
  }
  return readChunk(Cursor++, Out);
}

bool TraceStreamReader::nextChunk(std::vector<EventRecord> &Out) {
  if (Cursor >= Chunks.size()) {
    Out.clear();
    return false;
  }
  return readChunk(Cursor++, Out);
}

//===----------------------------------------------------------------------===//
// Free functions
//===----------------------------------------------------------------------===//

bool isp::isTraceStreamFile(const std::string &Path) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return false;
  char Head[MagicBytes];
  bool Ok = std::fread(Head, 1, sizeof(Head), File) == sizeof(Head) &&
            streamVersionOf(Head) != 0;
  std::fclose(File);
  return Ok;
}

bool isp::replayTraceStream(TraceStreamReader &Reader, Tool &T,
                            const SymbolTable *Symbols) {
  EventDispatcher Dispatcher;
  Dispatcher.addTool(&T);
  Dispatcher.start(Symbols);
  std::vector<Event> Chunk;
  Reader.seek(0);
  while (Reader.nextChunk(Chunk)) {
    EventStreamView V(Chunk);
    for (EventRecord E; V.next(E);)
      Dispatcher.enqueue(E);
  }
  // finish() runs either way so the tool's onFinish leaves partial
  // results well-formed even when a mid-stream chunk is corrupt.
  Dispatcher.finish();
  return Reader.error().empty();
}
