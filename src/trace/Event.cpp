//===- trace/Event.cpp - Instrumentation event model -----------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "trace/Event.h"

#include "support/Compiler.h"

using namespace isp;

const char *isp::eventKindName(EventKind Kind) {
  switch (Kind) {
  case EventKind::ThreadStart:
    return "ThreadStart";
  case EventKind::ThreadEnd:
    return "ThreadEnd";
  case EventKind::Call:
    return "Call";
  case EventKind::Return:
    return "Return";
  case EventKind::BasicBlock:
    return "BasicBlock";
  case EventKind::Read:
    return "Read";
  case EventKind::Write:
    return "Write";
  case EventKind::KernelRead:
    return "KernelRead";
  case EventKind::KernelWrite:
    return "KernelWrite";
  case EventKind::SyncAcquire:
    return "SyncAcquire";
  case EventKind::SyncRelease:
    return "SyncRelease";
  case EventKind::ThreadCreate:
    return "ThreadCreate";
  case EventKind::ThreadJoin:
    return "ThreadJoin";
  case EventKind::Alloc:
    return "Alloc";
  case EventKind::Free:
    return "Free";
  case EventKind::ThreadSwitch:
    return "ThreadSwitch";
  }
  ISP_UNREACHABLE("unknown event kind");
}
