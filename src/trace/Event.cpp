//===- trace/Event.cpp - Instrumentation event model -----------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "trace/Event.h"

#include "support/Compiler.h"

using namespace isp;

const char *isp::eventKindName(EventKind Kind) {
  switch (Kind) {
  case EventKind::ThreadStart:
    return "ThreadStart";
  case EventKind::ThreadEnd:
    return "ThreadEnd";
  case EventKind::Call:
    return "Call";
  case EventKind::Return:
    return "Return";
  case EventKind::BasicBlock:
    return "BasicBlock";
  case EventKind::Read:
    return "Read";
  case EventKind::Write:
    return "Write";
  case EventKind::KernelRead:
    return "KernelRead";
  case EventKind::KernelWrite:
    return "KernelWrite";
  case EventKind::SyncAcquire:
    return "SyncAcquire";
  case EventKind::SyncRelease:
    return "SyncRelease";
  case EventKind::ThreadCreate:
    return "ThreadCreate";
  case EventKind::ThreadJoin:
    return "ThreadJoin";
  case EventKind::Alloc:
    return "Alloc";
  case EventKind::Free:
    return "Free";
  case EventKind::ThreadSwitch:
    return "ThreadSwitch";
  }
  ISP_UNREACHABLE("unknown event kind");
}

std::vector<Event>
isp::encodeEventStream(const std::vector<EventRecord> &Records) {
  std::vector<Event> Words;
  Words.reserve(Records.size());
  EventEncoder Enc;
  Event Buf[Event::MaxWordsPerRecord];
  for (const EventRecord &E : Records) {
    size_t N = Enc.encode(E, Buf);
    Words.insert(Words.end(), Buf, Buf + N);
  }
  return Words;
}

std::vector<EventRecord> isp::decodeEventStream(const Event *Words,
                                                size_t Count) {
  std::vector<EventRecord> Records;
  Records.reserve(Count);
  EventStreamView V(Words, Count);
  EventRecord E;
  while (V.next(E))
    Records.push_back(E);
  return Records;
}

std::vector<EventRecord>
isp::decodeEventStream(const std::vector<Event> &Words) {
  return decodeEventStream(Words.data(), Words.size());
}

size_t isp::packedEventCount(const Event *Words, size_t Count) {
  size_t Records = 0;
  for (size_t I = 0; I != Count; ++I)
    if (!Words[I].isSpecial())
      ++Records;
  return Records;
}
