//===- trace/TraceMerger.cpp - Timestamped trace merging --------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "trace/TraceMerger.h"

#include "support/Random.h"

#include <cassert>
#include <cstddef>

using namespace isp;

bool isp::verifyThreadTraces(
    const std::vector<std::vector<EventRecord>> &ThreadTraces) {
  for (const auto &Trace : ThreadTraces) {
    if (Trace.empty())
      continue;
    ThreadId Tid = Trace.front().Tid;
    uint64_t LastTime = 0;
    for (const EventRecord &E : Trace) {
      if (E.Tid != Tid)
        return false;
      if (E.Time < LastTime)
        return false;
      LastTime = E.Time;
    }
  }
  return true;
}

std::vector<EventRecord>
isp::mergeTraces(const std::vector<std::vector<EventRecord>> &ThreadTraces,
                 const TraceMergeOptions &Options) {
  assert(verifyThreadTraces(ThreadTraces) &&
         "per-thread traces must be time-sorted and single-threaded");

  std::vector<size_t> Cursor(ThreadTraces.size(), 0);
  size_t Remaining = 0;
  for (const auto &Trace : ThreadTraces)
    Remaining += Trace.size();

  std::vector<EventRecord> Merged;
  Merged.reserve(Remaining + Remaining / 4);

  Rng TieRng(Options.Seed);
  size_t RoundRobinNext = 0;
  ThreadId LastTid = 0;
  bool HaveLastTid = false;

  std::vector<size_t> Tied;
  while (Remaining != 0) {
    // Find the minimum next timestamp across all cursors, and the set of
    // input traces tied at that timestamp.
    uint64_t MinTime = UINT64_MAX;
    Tied.clear();
    for (size_t I = 0; I != ThreadTraces.size(); ++I) {
      if (Cursor[I] >= ThreadTraces[I].size())
        continue;
      uint64_t T = ThreadTraces[I][Cursor[I]].Time;
      if (T < MinTime) {
        MinTime = T;
        Tied.clear();
        Tied.push_back(I);
      } else if (T == MinTime) {
        Tied.push_back(I);
      }
    }
    assert(!Tied.empty() && "remaining events but no candidate");

    size_t Chosen = Tied.front();
    if (Tied.size() > 1) {
      switch (Options.Policy) {
      case TieBreakPolicy::ByThreadId:
        // Tied is already in input order; choose the lowest thread id.
        for (size_t I : Tied)
          if (ThreadTraces[I][Cursor[I]].Tid <
              ThreadTraces[Chosen][Cursor[Chosen]].Tid)
            Chosen = I;
        break;
      case TieBreakPolicy::RoundRobin: {
        // Pick the first tied trace at or after the rotation point.
        Chosen = Tied[RoundRobinNext % Tied.size()];
        ++RoundRobinNext;
        break;
      }
      case TieBreakPolicy::SeededRandom:
        Chosen = Tied[TieRng.nextBelow(Tied.size())];
        break;
      }
    }

    const EventRecord &E = ThreadTraces[Chosen][Cursor[Chosen]];
    if (Options.InsertThreadSwitches && HaveLastTid && E.Tid != LastTid)
      Merged.push_back({EventKind::ThreadSwitch, E.Tid, E.Time, E.Tid, 0});
    Merged.push_back(E);
    LastTid = E.Tid;
    HaveLastTid = true;
    ++Cursor[Chosen];
    --Remaining;
  }
  return Merged;
}
