//===- trace/Event.h - Instrumentation event model --------------*- C++ -*-===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The event vocabulary shared by the instrumentation substrate, the trace
/// files, and every analysis tool. This mirrors the trace model of the
/// paper's Section 4: routine activations (call/return), memory accesses
/// (read/write), kernel-mediated accesses (kernelRead/kernelWrite), plus
/// the synchronization and allocation events the comparison tools
/// (helgrind-, memcheck-analogues) need.
///
//===----------------------------------------------------------------------===//

#ifndef ISPROF_TRACE_EVENT_H
#define ISPROF_TRACE_EVENT_H

#include <cstdint>

namespace isp {

/// Identifies a guest thread. Thread 0 is the initial (main) thread.
using ThreadId = uint32_t;

/// Identifies a routine (function) of the program under analysis.
using RoutineId = uint32_t;

/// A guest memory location. The substrate traces at the granularity of one
/// 64-bit guest cell per address, matching Definition 1's "memory cells".
using Addr = uint64_t;

/// Identifies a synchronization object (semaphore or mutex).
using SyncId = uint32_t;

/// The kinds of events a trace can contain.
enum class EventKind : uint8_t {
  ThreadStart,  ///< A thread begins execution. Arg0 = parent thread id.
  ThreadEnd,    ///< A thread finishes.
  Call,         ///< Routine activation. Arg0 = RoutineId.
  Return,       ///< Topmost activation completes. Arg0 = RoutineId,
                ///< Arg1 = basic blocks executed since the call (cost).
  BasicBlock,   ///< One basic-block entry (the cost metric). Arg1 = count.
  Read,         ///< Memory read. Arg0 = Addr, Arg1 = cell count.
  Write,        ///< Memory write. Arg0 = Addr, Arg1 = cell count.
  KernelRead,   ///< The OS reads guest memory on the thread's behalf
                ///< (thread sends data to a device). Arg0/Arg1 as Read.
  KernelWrite,  ///< The OS writes guest memory on the thread's behalf
                ///< (thread receives external data). Arg0/Arg1 as Write.
  SyncAcquire,  ///< Semaphore wait / mutex lock completed. Arg0 = SyncId,
                ///< Arg1 = 1 when the object is a mutex-style lock.
  SyncRelease,  ///< Semaphore post / mutex unlock. Arg0/Arg1 as above.
  ThreadCreate, ///< Arg0 = created thread id.
  ThreadJoin,   ///< Arg0 = joined thread id.
  Alloc,        ///< Heap allocation. Arg0 = Addr, Arg1 = cell count.
  Free,         ///< Heap release. Arg0 = Addr.
  ThreadSwitch  ///< Synthesized by the merger between events of different
                ///< threads. Arg0 = incoming thread id.
};

/// Returns a printable name for \p Kind.
const char *eventKindName(EventKind Kind);

/// A single trace event. \c Time is the per-thread logical timestamp used
/// by the merger to interleave thread-specific traces; events of one
/// thread must be non-decreasing in Time.
struct Event {
  EventKind Kind = EventKind::ThreadStart;
  ThreadId Tid = 0;
  uint64_t Time = 0;
  uint64_t Arg0 = 0;
  uint64_t Arg1 = 0;

  static Event threadStart(ThreadId Tid, uint64_t Time, ThreadId Parent) {
    return {EventKind::ThreadStart, Tid, Time, Parent, 0};
  }
  static Event threadEnd(ThreadId Tid, uint64_t Time) {
    return {EventKind::ThreadEnd, Tid, Time, 0, 0};
  }
  static Event call(ThreadId Tid, uint64_t Time, RoutineId Rtn) {
    return {EventKind::Call, Tid, Time, Rtn, 0};
  }
  static Event ret(ThreadId Tid, uint64_t Time, RoutineId Rtn,
                   uint64_t Cost) {
    return {EventKind::Return, Tid, Time, Rtn, Cost};
  }
  static Event basicBlock(ThreadId Tid, uint64_t Time, uint64_t Count = 1) {
    return {EventKind::BasicBlock, Tid, Time, 0, Count};
  }
  static Event read(ThreadId Tid, uint64_t Time, Addr A, uint64_t Cells = 1) {
    return {EventKind::Read, Tid, Time, A, Cells};
  }
  static Event write(ThreadId Tid, uint64_t Time, Addr A,
                     uint64_t Cells = 1) {
    return {EventKind::Write, Tid, Time, A, Cells};
  }
  static Event kernelRead(ThreadId Tid, uint64_t Time, Addr A,
                          uint64_t Cells = 1) {
    return {EventKind::KernelRead, Tid, Time, A, Cells};
  }
  static Event kernelWrite(ThreadId Tid, uint64_t Time, Addr A,
                           uint64_t Cells = 1) {
    return {EventKind::KernelWrite, Tid, Time, A, Cells};
  }
  static Event syncAcquire(ThreadId Tid, uint64_t Time, SyncId Id,
                           bool IsLock = false) {
    return {EventKind::SyncAcquire, Tid, Time, Id, IsLock ? 1u : 0u};
  }
  static Event syncRelease(ThreadId Tid, uint64_t Time, SyncId Id,
                           bool IsLock = false) {
    return {EventKind::SyncRelease, Tid, Time, Id, IsLock ? 1u : 0u};
  }
  static Event threadCreate(ThreadId Tid, uint64_t Time, ThreadId Child) {
    return {EventKind::ThreadCreate, Tid, Time, Child, 0};
  }
  static Event threadJoin(ThreadId Tid, uint64_t Time, ThreadId Child) {
    return {EventKind::ThreadJoin, Tid, Time, Child, 0};
  }
  static Event alloc(ThreadId Tid, uint64_t Time, Addr A, uint64_t Cells) {
    return {EventKind::Alloc, Tid, Time, A, Cells};
  }
  static Event free(ThreadId Tid, uint64_t Time, Addr A) {
    return {EventKind::Free, Tid, Time, A, 0};
  }

  bool operator==(const Event &Other) const = default;
};

} // namespace isp

#endif // ISPROF_TRACE_EVENT_H
