//===- trace/Event.h - Instrumentation event model --------------*- C++ -*-===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The event vocabulary shared by the instrumentation substrate, the trace
/// files, and every analysis tool. This mirrors the trace model of the
/// paper's Section 4: routine activations (call/return), memory accesses
/// (read/write), kernel-mediated accesses (kernelRead/kernelWrite), plus
/// the synchronization and allocation events the comparison tools
/// (helgrind-, memcheck-analogues) need.
///
/// Two representations share the vocabulary:
///
///  - EventRecord is the decoded, fully explicit form (kind, tid, 64-bit
///    time, two 64-bit args) that tools, the on-disk codecs, and every
///    analysis consume.
///  - Event is the packed 16-byte *stream word* the hot path moves:
///    dispatcher batch buffers, the recorded stream, and decoded
///    TraceStream chunks hold Events, so one cache line carries four
///    words instead of ~1.5 wide records.
///
/// Packed word layout:
///
///      Meta     : u32   bits 0..5  event kind
///                       bit  6     special word (time-base escape or
///                                  follow-on word)
///                       bit  7     a follow-on word follows / this is one
///                       bits 8..31 thread id (24 bits)
///      TimeLow  : u32   low 32 bits of the absolute event time
///      Arg      : u64   primary argument (Arg0; for BasicBlock the block
///                       count, since its Arg0 is always zero — keeping
///                       the count in the main word lets block-count
///                       folding stay a single in-place add)
///
/// The high 32 bits of the time are carried by a shared decoder *epoch*:
/// a time-base escape word (Meta == SpecialBit, Arg = new epoch) resets
/// it explicitly, and a main word whose TimeLow is smaller than the
/// previous word's bumps it implicitly (times are non-decreasing in
/// every real stream, so a smaller low half means the 32-bit counter
/// wrapped). Streams whose times fit in 32 bits — every practical run —
/// contain no escape words at all.
///
/// The second argument rides in an optional follow-on word
/// (Meta == SpecialBit|FollowBit, Arg = Arg1) emitted only when Arg1
/// differs from the kind's default (1 cell for memory accesses, 0
/// otherwise) or when the thread id exceeds 24 bits (the follow-on's
/// TimeLow then carries the full id). Single-cell reads and writes — the
/// dominant events — and basic blocks stay one word.
///
/// Each encoded record is thus 1..3 words (escape + main + follow-on).
/// Per-batch decode with a fresh decoder is always exact; one continuous
/// decode over concatenated batches is exact as long as times are
/// non-decreasing across batch boundaries — which every
/// dispatcher-produced stream guarantees (each batch's encoder restarts
/// at epoch zero and re-emits an escape if its first time needs one).
///
//===----------------------------------------------------------------------===//

#ifndef ISPROF_TRACE_EVENT_H
#define ISPROF_TRACE_EVENT_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace isp {

/// Identifies a guest thread. Thread 0 is the initial (main) thread.
using ThreadId = uint32_t;

/// Identifies a routine (function) of the program under analysis.
using RoutineId = uint32_t;

/// A guest memory location. The substrate traces at the granularity of one
/// 64-bit guest cell per address, matching Definition 1's "memory cells".
using Addr = uint64_t;

/// Identifies a synchronization object (semaphore or mutex).
using SyncId = uint32_t;

/// The kinds of events a trace can contain.
enum class EventKind : uint8_t {
  ThreadStart,  ///< A thread begins execution. Arg0 = parent thread id.
  ThreadEnd,    ///< A thread finishes.
  Call,         ///< Routine activation. Arg0 = RoutineId.
  Return,       ///< Topmost activation completes. Arg0 = RoutineId,
                ///< Arg1 = basic blocks executed since the call (cost).
  BasicBlock,   ///< One basic-block entry (the cost metric). Arg1 = count.
  Read,         ///< Memory read. Arg0 = Addr, Arg1 = cell count.
  Write,        ///< Memory write. Arg0 = Addr, Arg1 = cell count.
  KernelRead,   ///< The OS reads guest memory on the thread's behalf
                ///< (thread sends data to a device). Arg0/Arg1 as Read.
  KernelWrite,  ///< The OS writes guest memory on the thread's behalf
                ///< (thread receives external data). Arg0/Arg1 as Write.
  SyncAcquire,  ///< Semaphore wait / mutex lock completed. Arg0 = SyncId,
                ///< Arg1 = 1 when the object is a mutex-style lock.
  SyncRelease,  ///< Semaphore post / mutex unlock. Arg0/Arg1 as above.
  ThreadCreate, ///< Arg0 = created thread id.
  ThreadJoin,   ///< Arg0 = joined thread id.
  Alloc,        ///< Heap allocation. Arg0 = Addr, Arg1 = cell count.
  Free,         ///< Heap release. Arg0 = Addr.
  ThreadSwitch  ///< Synthesized by the merger between events of different
                ///< threads. Arg0 = incoming thread id.
};

/// Returns a printable name for \p Kind.
const char *eventKindName(EventKind Kind);

/// A single decoded trace event. \c Time is the per-thread logical
/// timestamp used by the merger to interleave thread-specific traces;
/// events of one thread must be non-decreasing in Time.
struct EventRecord {
  EventKind Kind = EventKind::ThreadStart;
  ThreadId Tid = 0;
  uint64_t Time = 0;
  uint64_t Arg0 = 0;
  uint64_t Arg1 = 0;

  static EventRecord threadStart(ThreadId Tid, uint64_t Time,
                                 ThreadId Parent) {
    return {EventKind::ThreadStart, Tid, Time, Parent, 0};
  }
  static EventRecord threadEnd(ThreadId Tid, uint64_t Time) {
    return {EventKind::ThreadEnd, Tid, Time, 0, 0};
  }
  static EventRecord call(ThreadId Tid, uint64_t Time, RoutineId Rtn) {
    return {EventKind::Call, Tid, Time, Rtn, 0};
  }
  static EventRecord ret(ThreadId Tid, uint64_t Time, RoutineId Rtn,
                         uint64_t Cost) {
    return {EventKind::Return, Tid, Time, Rtn, Cost};
  }
  static EventRecord basicBlock(ThreadId Tid, uint64_t Time,
                                uint64_t Count = 1) {
    return {EventKind::BasicBlock, Tid, Time, 0, Count};
  }
  static EventRecord read(ThreadId Tid, uint64_t Time, Addr A,
                          uint64_t Cells = 1) {
    return {EventKind::Read, Tid, Time, A, Cells};
  }
  static EventRecord write(ThreadId Tid, uint64_t Time, Addr A,
                           uint64_t Cells = 1) {
    return {EventKind::Write, Tid, Time, A, Cells};
  }
  static EventRecord kernelRead(ThreadId Tid, uint64_t Time, Addr A,
                                uint64_t Cells = 1) {
    return {EventKind::KernelRead, Tid, Time, A, Cells};
  }
  static EventRecord kernelWrite(ThreadId Tid, uint64_t Time, Addr A,
                                 uint64_t Cells = 1) {
    return {EventKind::KernelWrite, Tid, Time, A, Cells};
  }
  static EventRecord syncAcquire(ThreadId Tid, uint64_t Time, SyncId Id,
                                 bool IsLock = false) {
    return {EventKind::SyncAcquire, Tid, Time, Id, IsLock ? 1u : 0u};
  }
  static EventRecord syncRelease(ThreadId Tid, uint64_t Time, SyncId Id,
                                 bool IsLock = false) {
    return {EventKind::SyncRelease, Tid, Time, Id, IsLock ? 1u : 0u};
  }
  static EventRecord threadCreate(ThreadId Tid, uint64_t Time,
                                  ThreadId Child) {
    return {EventKind::ThreadCreate, Tid, Time, Child, 0};
  }
  static EventRecord threadJoin(ThreadId Tid, uint64_t Time,
                                ThreadId Child) {
    return {EventKind::ThreadJoin, Tid, Time, Child, 0};
  }
  static EventRecord alloc(ThreadId Tid, uint64_t Time, Addr A,
                           uint64_t Cells) {
    return {EventKind::Alloc, Tid, Time, A, Cells};
  }
  static EventRecord free(ThreadId Tid, uint64_t Time, Addr A) {
    return {EventKind::Free, Tid, Time, A, 0};
  }

  bool operator==(const EventRecord &Other) const = default;
};

/// One packed 16-byte stream word (see the file comment for the layout
/// and the escape/follow-on protocol).
struct Event {
  /// Meta bit assignments.
  static constexpr uint32_t KindMask = 0x3F;
  static constexpr uint32_t SpecialBit = 0x40;
  static constexpr uint32_t FollowBit = 0x80;
  static constexpr unsigned TidShift = 8;
  /// Largest thread id that fits the Meta field; bigger ids spill the
  /// full 32-bit id into the follow-on word's TimeLow.
  static constexpr ThreadId MaxInlineTid = (ThreadId(1) << 24) - 1;
  /// Worst case words per logical event: escape + main + follow-on.
  static constexpr size_t MaxWordsPerRecord = 3;

  uint32_t Meta = 0;
  uint32_t TimeLow = 0;
  uint64_t Arg = 0;

  EventKind kind() const { return static_cast<EventKind>(Meta & KindMask); }
  ThreadId inlineTid() const { return Meta >> TidShift; }
  bool isSpecial() const { return (Meta & SpecialBit) != 0; }
  bool isEscape() const {
    return (Meta & (SpecialBit | FollowBit)) == SpecialBit;
  }
  bool hasFollow() const { return (Meta & FollowBit) != 0; }

  bool operator==(const Event &Other) const = default;
};

static_assert(sizeof(Event) == 16, "stream words must be packed 16 bytes");

/// One pre-encoded word of a compacted run template (the block
/// compiler's unit; spliced by EventDispatcher::spliceTemplateRun).
/// Word carries the static bits — kind, flags, static address or count
/// — with the thread id and TimeLow left zero. At splice time the
/// executing thread's id, the absolute low time, and (for
/// frame-relative addresses) the frame base are patched in through two
/// masks, so the patch is three branch-free ALU ops per word:
///
///     Meta    = Word.Meta    | (TidBits            & MainMask)
///     TimeLow = Word.TimeLow + ((Time0 + TimeOff)  & MainMask)
///     Arg     = Word.Arg     + (FrameBase          & FrameMask)
///
/// MainMask is all-ones on main words and zero on follow-on words
/// (which take neither a tid nor a time); FrameMask is all-ones
/// exactly when Arg is a frame-relative stack address.
struct TemplateWord {
  Event Word;
  uint32_t TimeOff = 0;   ///< event-time offset from the run's entry time
  uint32_t MainMask = 0;  ///< ~0u on main words, 0 on follow-ons
  uint64_t FrameMask = 0; ///< ~0ull when Arg needs the frame base added
};

/// Arg1 value a kind carries when no follow-on word is present: memory
/// accesses default to one cell, everything else to zero.
constexpr uint64_t eventSecondaryDefault(EventKind K) {
  switch (K) {
  case EventKind::Read:
  case EventKind::Write:
  case EventKind::KernelRead:
  case EventKind::KernelWrite:
    return 1;
  default:
    return 0;
  }
}

/// Stateful record-to-word encoder. One encoder per batch/chunk; reset()
/// (or a fresh instance) restarts the time base so each batch also
/// decodes standalone.
class EventEncoder {
public:
  /// Encodes \p E into \p Out (which must have room for MaxWordsPerRecord
  /// words) and returns the number of words written. \p MainOff receives
  /// the offset of the main word within the emitted run (0 or 1).
  size_t encode(const EventRecord &E, Event *Out, size_t &MainOff) {
    size_t N = 0;
    uint32_t Low = static_cast<uint32_t>(E.Time);
    uint64_t Hi = E.Time >> 32;
    uint64_t Infer = Epoch + (Low < PrevLow ? 1 : 0);
    if (Hi != Infer) {
      Out[N].Meta = Event::SpecialBit;
      Out[N].TimeLow = 0;
      Out[N].Arg = Hi;
      ++N;
      Epoch = Hi;
    } else {
      Epoch = Infer;
    }
    PrevLow = Low;
    MainOff = N;
    bool BlockKind = E.Kind == EventKind::BasicBlock;
    uint64_t Primary = BlockKind ? E.Arg1 : E.Arg0;
    uint64_t Secondary = BlockKind ? E.Arg0 : E.Arg1;
    bool BigTid = E.Tid > Event::MaxInlineTid;
    bool Follow = BigTid || Secondary != eventSecondaryDefault(E.Kind);
    Out[N].Meta = static_cast<uint32_t>(E.Kind) |
                  (Follow ? Event::FollowBit : 0) |
                  ((E.Tid & Event::MaxInlineTid) << Event::TidShift);
    Out[N].TimeLow = Low;
    Out[N].Arg = Primary;
    ++N;
    if (Follow) {
      Out[N].Meta = Event::SpecialBit | Event::FollowBit;
      Out[N].TimeLow = BigTid ? E.Tid : 0;
      Out[N].Arg = Secondary;
      ++N;
    }
    return N;
  }
  size_t encode(const EventRecord &E, Event *Out) {
    size_t MainOff = 0;
    return encode(E, Out, MainOff);
  }

  void reset() {
    Epoch = 0;
    PrevLow = 0;
  }

  uint64_t epoch() const { return Epoch; }
  uint32_t prevLow() const { return PrevLow; }
  /// Synchronizes the time state after externally produced main words
  /// ending at absolute time \p LastTime — used by the block compiler's
  /// bulk template append, which patches main words directly into the
  /// batch buffer.
  void noteAppended(uint64_t LastTime) {
    Epoch = LastTime >> 32;
    PrevLow = static_cast<uint32_t>(LastTime);
  }

private:
  uint64_t Epoch = 0;
  uint32_t PrevLow = 0;
};

/// Stateful word-to-record decoder, the inverse of EventEncoder.
class EventDecoder {
public:
  /// Decodes the next record starting at \p W, consuming any leading
  /// escape words. Returns the number of words consumed, or 0 when no
  /// complete record remains (end of batch; trailing escapes are still
  /// applied to the decoder state).
  size_t decode(const Event *W, size_t Avail, EventRecord &Out) {
    size_t N = 0;
    while (N != Avail && W[N].isEscape()) {
      Epoch = W[N].Arg;
      PrevLow = 0;
      ++N;
    }
    if (N == Avail)
      return 0;
    const Event &M = W[N];
    uint32_t Low = M.TimeLow;
    if (Low < PrevLow)
      ++Epoch;
    PrevLow = Low;
    EventKind K = M.kind();
    ThreadId Tid = M.inlineTid();
    uint64_t Primary = M.Arg;
    uint64_t Secondary = eventSecondaryDefault(K);
    ++N;
    if (M.hasFollow()) {
      if (N == Avail)
        return 0; // truncated mid-record: treat as end of stream
      Secondary = W[N].Arg;
      if (W[N].TimeLow != 0)
        Tid = W[N].TimeLow;
      ++N;
    }
    Out.Kind = K;
    Out.Tid = Tid;
    Out.Time = (Epoch << 32) | Low;
    if (K == EventKind::BasicBlock) {
      Out.Arg0 = Secondary;
      Out.Arg1 = Primary;
    } else {
      Out.Arg0 = Primary;
      Out.Arg1 = Secondary;
    }
    return N;
  }

  void reset() {
    Epoch = 0;
    PrevLow = 0;
  }

private:
  uint64_t Epoch = 0;
  uint32_t PrevLow = 0;
};

/// Forward pass over a packed word sequence, yielding decoded records.
/// Consumers that used to iterate a std::vector of wide records iterate
/// one of these instead:
///
///     EventStreamView V(Chunk);
///     for (EventRecord E; V.next(E);)
///       process(E);
class EventStreamView {
public:
  EventStreamView(const Event *Words, size_t Count)
      : Words(Words), Count(Count) {}
  explicit EventStreamView(const std::vector<Event> &V)
      : Words(V.data()), Count(V.size()) {}

  bool next(EventRecord &Out) {
    if (Pos == Count)
      return false;
    size_t Used = Decoder.decode(Words + Pos, Count - Pos, Out);
    if (Used == 0) {
      Pos = Count;
      return false;
    }
    Pos += Used;
    return true;
  }

private:
  const Event *Words;
  size_t Count;
  size_t Pos = 0;
  EventDecoder Decoder;
};

/// Encodes \p Records into a packed word stream (fresh encoder).
std::vector<Event> encodeEventStream(const std::vector<EventRecord> &Records);

/// Decodes a packed word stream into records (fresh decoder).
std::vector<EventRecord> decodeEventStream(const Event *Words, size_t Count);
std::vector<EventRecord> decodeEventStream(const std::vector<Event> &Words);

/// Number of logical records in a packed word stream (escape and
/// follow-on words don't count).
size_t packedEventCount(const Event *Words, size_t Count);
inline size_t packedEventCount(const std::vector<Event> &Words) {
  return packedEventCount(Words.data(), Words.size());
}

} // namespace isp

#endif // ISPROF_TRACE_EVENT_H
