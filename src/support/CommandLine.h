//===- support/CommandLine.h - Tiny option parser ---------------*- C++ -*-===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small command-line option parser for the example and benchmark
/// executables. Supports --name=value, --name value, --flag, and
/// positional arguments, with typed accessors and generated --help text.
///
//===----------------------------------------------------------------------===//

#ifndef ISPROF_SUPPORT_COMMANDLINE_H
#define ISPROF_SUPPORT_COMMANDLINE_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace isp {

/// Declarative option set: register options with defaults, then parse.
class OptionParser {
public:
  explicit OptionParser(std::string ProgramDescription)
      : Description(std::move(ProgramDescription)) {}

  /// Registers an option. \p Name is used as "--Name".
  void addOption(const std::string &Name, const std::string &Default,
                 const std::string &Help);
  void addFlag(const std::string &Name, const std::string &Help);

  /// Parses argv. Returns false (after printing a diagnostic to stderr)
  /// on unknown options, duplicate options (each may be given at most
  /// once — a silently-overwriting repeat is almost always a typo in a
  /// long benchmark invocation), or a missing value; prints help and
  /// returns false for --help.
  bool parse(int Argc, const char *const *Argv);

  std::string getString(const std::string &Name) const;
  int64_t getInt(const std::string &Name) const;
  double getDouble(const std::string &Name) const;
  bool getFlag(const std::string &Name) const;

  const std::vector<std::string> &positional() const { return Positional; }

  std::string helpText() const;

private:
  struct Option {
    std::string Default;
    std::string Help;
    std::string Value;
    bool IsFlag = false;
    bool Seen = false;
  };

  std::string Description;
  std::string ProgramName;
  std::map<std::string, Option> Options;
  std::vector<std::string> Positional;
};

} // namespace isp

#endif // ISPROF_SUPPORT_COMMANDLINE_H
