//===- support/Format.h - String formatting helpers ------------*- C++ -*-===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// printf-style formatting into std::string plus small humanization
/// helpers used by report and table writers.
///
//===----------------------------------------------------------------------===//

#ifndef ISPROF_SUPPORT_FORMAT_H
#define ISPROF_SUPPORT_FORMAT_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace isp {

/// printf into a std::string.
std::string formatString(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Formats a byte count as "512 B", "1.2 MB", ... (decimal units).
std::string formatBytes(uint64_t Bytes);

/// Formats a count humanized to engineering units: 972 -> "972",
/// 54292 -> "54.3k", 1234567 -> "1.2M". Counts below 1000 stay exact;
/// use formatWithCommas where full precision matters.
std::string formatCount(uint64_t Value);

/// Formats a nanosecond duration at a human scale: "123 ns", "12.3 us",
/// "4.6 ms", "2.1 s" (ASCII units; reports must survive dumb terminals).
std::string formatDuration(uint64_t Nanoseconds);

/// Formats a count with thousands separators: 1234567 -> "1,234,567".
std::string formatWithCommas(uint64_t Value);

/// Formats a ratio as e.g. "3.1x".
std::string formatRatio(double Ratio);

} // namespace isp

#endif // ISPROF_SUPPORT_FORMAT_H
