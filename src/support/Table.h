//===- support/Table.h - ASCII table writer ---------------------*- C++ -*-===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small column-aligned ASCII table builder used by the benchmark
/// harnesses to print paper-style tables (e.g. Table 1) on stdout.
///
//===----------------------------------------------------------------------===//

#ifndef ISPROF_SUPPORT_TABLE_H
#define ISPROF_SUPPORT_TABLE_H

#include <string>
#include <vector>

namespace isp {

/// Column-aligned text table. Append a header, then rows; render() pads
/// every column to its widest cell. Numeric cells should be preformatted
/// by the caller (the table does not interpret values).
class TextTable {
public:
  /// Sets the header row. Column count is fixed by the header.
  void setHeader(std::vector<std::string> Names);

  /// Appends a data row; must match the header's column count (short rows
  /// are padded with empty cells).
  void addRow(std::vector<std::string> Cells);

  /// Appends a horizontal separator line.
  void addSeparator();

  /// Renders the table with two-space column gaps.
  std::string render() const;

  size_t numRows() const { return Rows.size(); }

private:
  struct Row {
    std::vector<std::string> Cells;
    bool IsSeparator = false;
  };

  std::vector<std::string> Header;
  std::vector<Row> Rows;
};

} // namespace isp

#endif // ISPROF_SUPPORT_TABLE_H
