//===- support/Csv.cpp - CSV emission ---------------------------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "support/Csv.h"

#include <cstdio>

using namespace isp;

static std::string escapeCell(const std::string &Cell) {
  bool NeedsQuoting = Cell.find_first_of(",\"\n") != std::string::npos;
  if (!NeedsQuoting)
    return Cell;
  std::string Out = "\"";
  for (char C : Cell) {
    if (C == '"')
      Out += '"';
    Out += C;
  }
  Out += '"';
  return Out;
}

void CsvWriter::addRow(const std::vector<std::string> &Cells) {
  Rows.push_back(Cells);
}

std::string CsvWriter::render() const {
  std::string Out;
  for (const auto &Row : Rows) {
    for (size_t I = 0; I != Row.size(); ++I) {
      if (I != 0)
        Out += ',';
      Out += escapeCell(Row[I]);
    }
    Out += '\n';
  }
  return Out;
}

bool CsvWriter::writeToFile(const std::string &Path) const {
  std::FILE *File = std::fopen(Path.c_str(), "w");
  if (!File)
    return false;
  std::string Data = render();
  size_t Written = std::fwrite(Data.data(), 1, Data.size(), File);
  std::fclose(File);
  return Written == Data.size();
}
