//===- support/CurveFit.cpp - Asymptotic model fitting --------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "support/CurveFit.h"

#include "support/Compiler.h"

#include <cassert>
#include <algorithm>
#include <cmath>
#include <cstdio>

using namespace isp;

const char *isp::growthModelName(GrowthModel Model) {
  switch (Model) {
  case GrowthModel::Constant:
    return "O(1)";
  case GrowthModel::Log:
    return "O(log n)";
  case GrowthModel::Linear:
    return "O(n)";
  case GrowthModel::NLogN:
    return "O(n log n)";
  case GrowthModel::Quadratic:
    return "O(n^2)";
  case GrowthModel::Cubic:
    return "O(n^3)";
  }
  ISP_UNREACHABLE("unknown growth model");
}

double isp::growthBasis(GrowthModel Model, double N) {
  // Clamp so log-based bases stay finite for n <= 1.
  double SafeN = N < 1.0 ? 1.0 : N;
  switch (Model) {
  case GrowthModel::Constant:
    return 1.0;
  case GrowthModel::Log:
    return std::log2(SafeN);
  case GrowthModel::Linear:
    return N;
  case GrowthModel::NLogN:
    return N * std::log2(SafeN);
  case GrowthModel::Quadratic:
    return N * N;
  case GrowthModel::Cubic:
    return N * N * N;
  }
  ISP_UNREACHABLE("unknown growth model");
}

double ModelFit::evaluate(double N) const {
  return Intercept + Slope * growthBasis(Model, N);
}

/// Simple linear regression of Y on X. Returns false when X is degenerate
/// (all equal), in which case only the intercept is meaningful.
static bool linearRegression(const std::vector<double> &X,
                             const std::vector<double> &Y, double &Intercept,
                             double &Slope) {
  assert(X.size() == Y.size() && !X.empty());
  double N = static_cast<double>(X.size());
  double SumX = 0, SumY = 0, SumXX = 0, SumXY = 0;
  for (size_t I = 0; I != X.size(); ++I) {
    SumX += X[I];
    SumY += Y[I];
    SumXX += X[I] * X[I];
    SumXY += X[I] * Y[I];
  }
  double Denominator = N * SumXX - SumX * SumX;
  if (std::fabs(Denominator) < 1e-12 * (1.0 + SumXX)) {
    Intercept = SumY / N;
    Slope = 0;
    return false;
  }
  Slope = (N * SumXY - SumX * SumY) / Denominator;
  Intercept = (SumY - Slope * SumX) / N;
  return true;
}

FitResult isp::fitCurve(const std::vector<FitPoint> &Points,
                        double ParsimonyTolerance) {
  FitResult Result;
  const GrowthModel AllModels[] = {GrowthModel::Constant, GrowthModel::Log,
                                   GrowthModel::Linear,   GrowthModel::NLogN,
                                   GrowthModel::Quadratic, GrowthModel::Cubic};

  double MeanCost = 0;
  for (const FitPoint &P : Points)
    MeanCost += P.Cost;
  if (!Points.empty())
    MeanCost /= static_cast<double>(Points.size());
  double CostScale = MeanCost > 0 ? MeanCost : 1.0;

  double TotalVar = 0;
  for (const FitPoint &P : Points)
    TotalVar += (P.Cost - MeanCost) * (P.Cost - MeanCost);

  for (GrowthModel Model : AllModels) {
    ModelFit Fit;
    Fit.Model = Model;
    if (!Points.empty()) {
      std::vector<double> X, Y;
      X.reserve(Points.size());
      Y.reserve(Points.size());
      for (const FitPoint &P : Points) {
        X.push_back(growthBasis(Model, P.N));
        Y.push_back(P.Cost);
      }
      linearRegression(X, Y, Fit.Intercept, Fit.Slope);
      double SqErr = 0;
      for (const FitPoint &P : Points) {
        double E = Fit.evaluate(P.N) - P.Cost;
        SqErr += E * E;
      }
      Fit.NormalizedRmse =
          std::sqrt(SqErr / static_cast<double>(Points.size())) / CostScale;
      Fit.R2 = TotalVar > 0 ? 1.0 - SqErr / TotalVar : 1.0;
    }
    Result.Candidates.push_back(Fit);
  }

  // A negative slope disqualifies a growth model: it means the basis is
  // being used to fit a *decreasing* trend, which none of our asymptotic
  // shapes represent. Among the remaining fits, find the minimum RMSE,
  // then pick the slowest-growing model within the parsimony tolerance of
  // that minimum so noisy linear data is not labelled quadratic.
  auto isEligible = [&](size_t I) {
    return I == 0 || Result.Candidates[I].Slope >= 0;
  };
  double MinRmse = 1e100;
  for (size_t I = 0; I != Result.Candidates.size(); ++I)
    if (isEligible(I))
      MinRmse = std::min(MinRmse, Result.Candidates[I].NormalizedRmse);
  // Relative margin plus a small absolute floor so exact fits do not get
  // displaced by a merely-adequate slower model, while genuinely noisy
  // data still prefers the simpler shape.
  double Threshold = MinRmse * (1.0 + ParsimonyTolerance) + 0.005;
  Result.BestIndex = 0;
  for (size_t I = 0; I != Result.Candidates.size(); ++I) {
    if (isEligible(I) && Result.Candidates[I].NormalizedRmse <= Threshold) {
      Result.BestIndex = I;
      break;
    }
  }

  // Free power-law exponent from log-log regression over positive samples.
  std::vector<double> LogN, LogCost;
  for (const FitPoint &P : Points) {
    if (P.N > 1 && P.Cost > 0) {
      LogN.push_back(std::log(P.N));
      LogCost.push_back(std::log(P.Cost));
    }
  }
  if (LogN.size() >= 2) {
    double Intercept = 0, Slope = 0;
    if (linearRegression(LogN, LogCost, Intercept, Slope)) {
      Result.PowerLawAlpha = Slope;
      Result.PowerLawCoeff = std::exp(Intercept);
      Result.PowerLawValid = true;
    }
  }
  return Result;
}

std::string isp::formatFit(const ModelFit &Fit) {
  char Buffer[128];
  std::snprintf(Buffer, sizeof(Buffer), "%s: cost = %.4g + %.4g*g(n) (rmse %.3g)",
                growthModelName(Fit.Model), Fit.Intercept, Fit.Slope,
                Fit.NormalizedRmse);
  return Buffer;
}
