//===- support/Stats.h - Descriptive statistics ----------------*- C++ -*-===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Descriptive statistics over numeric samples: mean, geometric mean (used
/// by the paper's Table 1 summary row), median, percentiles, and standard
/// deviation, plus an incremental accumulator for streaming use.
///
//===----------------------------------------------------------------------===//

#ifndef ISPROF_SUPPORT_STATS_H
#define ISPROF_SUPPORT_STATS_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace isp {

/// Arithmetic mean of \p Samples; 0 for an empty vector.
double mean(const std::vector<double> &Samples);

/// Geometric mean of \p Samples; skips non-positive entries the same way
/// SPEC summary rows do. Returns 0 if no positive samples exist.
double geometricMean(const std::vector<double> &Samples);

/// Population standard deviation; 0 for fewer than two samples.
double stddev(const std::vector<double> &Samples);

/// Median (linear interpolation between middle elements for even sizes).
double median(std::vector<double> Samples);

/// P-th percentile with linear interpolation, P in [0, 100].
double percentile(std::vector<double> Samples, double P);

/// Incremental min/max/sum/count accumulator. This is the aggregate kept
/// per (routine, input size) cell of a profile, so it is deliberately tiny.
struct Accumulator {
  uint64_t Count = 0;
  double Min = 0;
  double Max = 0;
  double Sum = 0;

  void add(double X) {
    if (Count == 0) {
      Min = Max = X;
    } else {
      if (X < Min)
        Min = X;
      if (X > Max)
        Max = X;
    }
    Sum += X;
    ++Count;
  }

  double average() const { return Count ? Sum / Count : 0.0; }
};

} // namespace isp

#endif // ISPROF_SUPPORT_STATS_H
