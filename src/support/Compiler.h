//===- support/Compiler.h - Portable compiler helpers ----------*- C++ -*-===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small portability macros used across the isprof libraries. The project
/// follows the LLVM convention of not using exceptions or RTTI in library
/// code: invariant violations abort via ispUnreachable/assert, recoverable
/// conditions are reported through return values.
///
//===----------------------------------------------------------------------===//

#ifndef ISPROF_SUPPORT_COMPILER_H
#define ISPROF_SUPPORT_COMPILER_H

#include <cstdio>
#include <cstdlib>

namespace isp {

/// Aborts the program with a message; used to mark control flow that must
/// never be reached when program invariants hold.
[[noreturn]] inline void ispUnreachableImpl(const char *Msg, const char *File,
                                            unsigned Line) {
  std::fprintf(stderr, "UNREACHABLE executed at %s:%u: %s\n", File, Line, Msg);
  std::abort();
}

/// Reports a fatal, non-recoverable usage error (bad input file, malformed
/// guest program, ...) and exits. Library code calls this only for errors
/// that have already been surfaced to the caller in context.
[[noreturn]] inline void reportFatalError(const char *Msg) {
  std::fprintf(stderr, "isprof fatal error: %s\n", Msg);
  std::exit(1);
}

} // namespace isp

#define ISP_UNREACHABLE(msg) ::isp::ispUnreachableImpl(msg, __FILE__, __LINE__)

#endif // ISPROF_SUPPORT_COMPILER_H
