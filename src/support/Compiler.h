//===- support/Compiler.h - Portable compiler helpers ----------*- C++ -*-===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small portability macros used across the isprof libraries. The project
/// follows the LLVM convention of not using exceptions or RTTI in library
/// code: invariant violations abort via ispUnreachable/assert, recoverable
/// conditions are reported through return values.
///
//===----------------------------------------------------------------------===//

#ifndef ISPROF_SUPPORT_COMPILER_H
#define ISPROF_SUPPORT_COMPILER_H

#include <cstdio>
#include <cstdlib>

namespace isp {

/// Aborts the program with a message; used to mark control flow that must
/// never be reached when program invariants hold.
[[noreturn]] inline void ispUnreachableImpl(const char *Msg, const char *File,
                                            unsigned Line) {
  std::fprintf(stderr, "UNREACHABLE executed at %s:%u: %s\n", File, Line, Msg);
  std::abort();
}

/// Reports a fatal, non-recoverable usage error (bad input file, malformed
/// guest program, ...) and exits. Library code calls this only for errors
/// that have already been surfaced to the caller in context.
[[noreturn]] inline void reportFatalError(const char *Msg) {
  std::fprintf(stderr, "isprof fatal error: %s\n", Msg);
  std::exit(1);
}

} // namespace isp

#define ISP_UNREACHABLE(msg) ::isp::ispUnreachableImpl(msg, __FILE__, __LINE__)

/// Branch-weight hints for hot paths where the compiler cannot infer the
/// skew (e.g. the interpreter's address-decode fast path).
#if defined(__GNUC__) || defined(__clang__)
#define ISP_LIKELY(x) (__builtin_expect(!!(x), 1))
#define ISP_UNLIKELY(x) (__builtin_expect(!!(x), 0))
#else
#define ISP_LIKELY(x) (x)
#define ISP_UNLIKELY(x) (x)
#endif

/// Forces inlining of small helpers that sit on a per-instruction or
/// per-access path; -O2 alone leaves them out of line once they grow an
/// error branch or two.
#if defined(__GNUC__) || defined(__clang__)
#define ISP_ALWAYS_INLINE inline __attribute__((always_inline))
#else
#define ISP_ALWAYS_INLINE inline
#endif

#endif // ISPROF_SUPPORT_COMPILER_H
