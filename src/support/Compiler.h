//===- support/Compiler.h - Portable compiler helpers ----------*- C++ -*-===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small portability macros used across the isprof libraries. The project
/// follows the LLVM convention of not using exceptions or RTTI in library
/// code: invariant violations abort via ispUnreachable/assert, recoverable
/// conditions are reported through return values.
///
//===----------------------------------------------------------------------===//

#ifndef ISPROF_SUPPORT_COMPILER_H
#define ISPROF_SUPPORT_COMPILER_H

#include <cstdio>
#include <cstdlib>

namespace isp {

/// Aborts the program with a message; used to mark control flow that must
/// never be reached when program invariants hold.
[[noreturn]] inline void ispUnreachableImpl(const char *Msg, const char *File,
                                            unsigned Line) {
  std::fprintf(stderr, "UNREACHABLE executed at %s:%u: %s\n", File, Line, Msg);
  std::abort();
}

/// Reports a fatal, non-recoverable usage error (bad input file, malformed
/// guest program, ...) and exits. Library code calls this only for errors
/// that have already been surfaced to the caller in context.
[[noreturn]] inline void reportFatalError(const char *Msg) {
  std::fprintf(stderr, "isprof fatal error: %s\n", Msg);
  std::exit(1);
}

} // namespace isp

#define ISP_UNREACHABLE(msg) ::isp::ispUnreachableImpl(msg, __FILE__, __LINE__)

/// Branch-weight hints for hot paths where the compiler cannot infer the
/// skew (e.g. the interpreter's address-decode fast path).
#if defined(__GNUC__) || defined(__clang__)
#define ISP_LIKELY(x) (__builtin_expect(!!(x), 1))
#define ISP_UNLIKELY(x) (__builtin_expect(!!(x), 0))
#else
#define ISP_LIKELY(x) (x)
#define ISP_UNLIKELY(x) (x)
#endif

/// Forces inlining of small helpers that sit on a per-instruction or
/// per-access path; -O2 alone leaves them out of line once they grow an
/// error branch or two.
#if defined(__GNUC__) || defined(__clang__)
#define ISP_ALWAYS_INLINE inline __attribute__((always_inline))
#else
#define ISP_ALWAYS_INLINE inline
#endif

/// Keeps a large-but-cool function out of its hot callers: inlining the
/// block-compile fast path into the interpreter loops bloats their
/// frames enough to slow the per-instruction dispatch itself.
#if defined(__GNUC__) || defined(__clang__)
#define ISP_NOINLINE __attribute__((noinline))
#else
#define ISP_NOINLINE
#endif

/// Error/abort paths reached at most once per run: compiled for size
/// and laid out away from the hot text so they cost nothing until hit.
#if defined(__GNUC__) || defined(__clang__)
#define ISP_COLD __attribute__((cold, noinline))
#else
#define ISP_COLD
#endif

/// Computed-goto threaded dispatch for the interpreter: the per-pc
/// label tables need the GNU "labels as values" extension (GCC and
/// Clang). Build with -DISP_FORCE_SWITCH_DISPATCH to compile out the
/// threaded variant and exercise the portable switch loop even on
/// compilers that support the extension — the CI matrix covers that
/// configuration.
#if !defined(ISP_FORCE_SWITCH_DISPATCH) && \
    (defined(__GNUC__) || defined(__clang__))
#define ISP_DISPATCH_THREADED 1
#else
#define ISP_DISPATCH_THREADED 0
#endif

#endif // ISPROF_SUPPORT_COMPILER_H
