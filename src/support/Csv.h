//===- support/Csv.h - CSV emission -----------------------------*- C++ -*-===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal CSV writer. Benchmark harnesses dump their raw data series as
/// CSV alongside the rendered tables so plots can be regenerated offline.
///
//===----------------------------------------------------------------------===//

#ifndef ISPROF_SUPPORT_CSV_H
#define ISPROF_SUPPORT_CSV_H

#include <string>
#include <vector>

namespace isp {

/// Accumulates rows and renders RFC-4180-ish CSV (quotes cells containing
/// commas, quotes, or newlines).
class CsvWriter {
public:
  void addRow(const std::vector<std::string> &Cells);
  std::string render() const;

  /// Writes the rendered CSV to \p Path. Returns false on I/O error.
  bool writeToFile(const std::string &Path) const;

private:
  std::vector<std::vector<std::string>> Rows;
};

} // namespace isp

#endif // ISPROF_SUPPORT_CSV_H
