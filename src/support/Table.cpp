//===- support/Table.cpp - ASCII table writer ------------------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "support/Table.h"

#include <algorithm>

using namespace isp;

void TextTable::setHeader(std::vector<std::string> Names) {
  Header = std::move(Names);
}

void TextTable::addRow(std::vector<std::string> Cells) {
  Row R;
  R.Cells = std::move(Cells);
  while (R.Cells.size() < Header.size())
    R.Cells.emplace_back();
  Rows.push_back(std::move(R));
}

void TextTable::addSeparator() {
  Row R;
  R.IsSeparator = true;
  Rows.push_back(std::move(R));
}

std::string TextTable::render() const {
  std::vector<size_t> Widths(Header.size(), 0);
  for (size_t I = 0; I != Header.size(); ++I)
    Widths[I] = Header[I].size();
  for (const Row &R : Rows) {
    for (size_t I = 0; I < R.Cells.size() && I < Widths.size(); ++I)
      Widths[I] = std::max(Widths[I], R.Cells[I].size());
  }

  size_t TotalWidth = 0;
  for (size_t W : Widths)
    TotalWidth += W + 2;

  auto renderCells = [&](const std::vector<std::string> &Cells) {
    std::string Line;
    for (size_t I = 0; I != Widths.size(); ++I) {
      const std::string &Cell = I < Cells.size() ? Cells[I] : std::string();
      // Left-align the first column (names), right-align the rest
      // (numbers) so magnitudes line up.
      if (I == 0) {
        Line += Cell;
        Line.append(Widths[I] - Cell.size() + 2, ' ');
      } else {
        Line.append(Widths[I] - Cell.size(), ' ');
        Line += Cell;
        Line.append(2, ' ');
      }
    }
    while (!Line.empty() && Line.back() == ' ')
      Line.pop_back();
    return Line;
  };

  std::string Out = renderCells(Header);
  Out += '\n';
  Out.append(TotalWidth, '-');
  Out += '\n';
  for (const Row &R : Rows) {
    if (R.IsSeparator)
      Out.append(TotalWidth, '-');
    else
      Out += renderCells(R.Cells);
    Out += '\n';
  }
  return Out;
}
