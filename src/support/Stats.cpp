//===- support/Stats.cpp - Descriptive statistics -------------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "support/Stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace isp;

double isp::mean(const std::vector<double> &Samples) {
  if (Samples.empty())
    return 0.0;
  double Sum = 0;
  for (double X : Samples)
    Sum += X;
  return Sum / static_cast<double>(Samples.size());
}

double isp::geometricMean(const std::vector<double> &Samples) {
  double LogSum = 0;
  size_t N = 0;
  for (double X : Samples) {
    if (X <= 0)
      continue;
    LogSum += std::log(X);
    ++N;
  }
  if (N == 0)
    return 0.0;
  return std::exp(LogSum / static_cast<double>(N));
}

double isp::stddev(const std::vector<double> &Samples) {
  if (Samples.size() < 2)
    return 0.0;
  double M = mean(Samples);
  double SqSum = 0;
  for (double X : Samples)
    SqSum += (X - M) * (X - M);
  return std::sqrt(SqSum / static_cast<double>(Samples.size()));
}

double isp::median(std::vector<double> Samples) {
  return percentile(std::move(Samples), 50.0);
}

double isp::percentile(std::vector<double> Samples, double P) {
  if (Samples.empty())
    return 0.0;
  assert(P >= 0 && P <= 100 && "percentile out of range");
  std::sort(Samples.begin(), Samples.end());
  if (Samples.size() == 1)
    return Samples.front();
  double Rank = P / 100.0 * static_cast<double>(Samples.size() - 1);
  size_t Lo = static_cast<size_t>(Rank);
  size_t Hi = std::min(Lo + 1, Samples.size() - 1);
  double Frac = Rank - static_cast<double>(Lo);
  return Samples[Lo] * (1.0 - Frac) + Samples[Hi] * Frac;
}
