//===- support/Gnuplot.h - Plot script emission -----------------*- C++ -*-===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Emits gnuplot scripts plus whitespace-separated data files for the
/// figure-reproduction harnesses, so every cost plot the paper shows can
/// be regenerated as an image with `gnuplot <figure>.gp`.
///
//===----------------------------------------------------------------------===//

#ifndef ISPROF_SUPPORT_GNUPLOT_H
#define ISPROF_SUPPORT_GNUPLOT_H

#include <string>
#include <utility>
#include <vector>

namespace isp {

/// One named series of (x, y) points.
struct PlotSeries {
  std::string Name;
  std::vector<std::pair<double, double>> Points;
  /// gnuplot style, e.g. "points pt 7" or "linespoints".
  std::string Style = "points pt 7";
};

/// A figure: several series over labelled axes.
class GnuplotFigure {
public:
  GnuplotFigure(std::string Title, std::string XLabel, std::string YLabel)
      : Title(std::move(Title)), XLabel(std::move(XLabel)),
        YLabel(std::move(YLabel)) {}

  void addSeries(PlotSeries Series) {
    AllSeries.push_back(std::move(Series));
  }

  /// Use logarithmic axes (handy for power-law cost plots).
  void setLogScale(bool X, bool Y) {
    LogX = X;
    LogY = Y;
  }

  /// Renders the data file (one block per series, separated by blank
  /// lines, gnuplot `index` convention).
  std::string renderData() const;

  /// Renders the .gp script; \p DataPath is referenced from the script
  /// and \p OutputPath is the PNG the script will write.
  std::string renderScript(const std::string &DataPath,
                           const std::string &OutputPath) const;

  /// Writes "<BasePath>.dat" and "<BasePath>.gp" (script outputs
  /// "<BasePath>.png"). Returns false on I/O failure.
  bool write(const std::string &BasePath) const;

private:
  std::string Title;
  std::string XLabel;
  std::string YLabel;
  std::vector<PlotSeries> AllSeries;
  bool LogX = false;
  bool LogY = false;
};

} // namespace isp

#endif // ISPROF_SUPPORT_GNUPLOT_H
