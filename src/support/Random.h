//===- support/Random.h - Deterministic pseudo-random sources --*- C++ -*-===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic random number generation. Every stochastic component in
/// isprof (synthetic traces, external device contents, workload data) is
/// seeded explicitly so that runs, tests, and benchmark tables are exactly
/// reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef ISPROF_SUPPORT_RANDOM_H
#define ISPROF_SUPPORT_RANDOM_H

#include <cassert>
#include <cstdint>

namespace isp {

/// SplitMix64: tiny, high-quality 64-bit mixer. Used both directly and to
/// seed Xoshiro256StarStar.
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed) : State(Seed) {}

  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

private:
  uint64_t State;
};

/// Xoshiro256**: fast general-purpose PRNG with 256 bits of state.
class Rng {
public:
  explicit Rng(uint64_t Seed) {
    SplitMix64 SM(Seed);
    for (auto &Word : State)
      Word = SM.next();
  }

  /// Returns the next raw 64-bit value.
  uint64_t next() {
    uint64_t Result = rotl(State[1] * 5, 7) * 9;
    uint64_t T = State[1] << 17;
    State[2] ^= State[0];
    State[3] ^= State[1];
    State[1] ^= State[2];
    State[0] ^= State[3];
    State[2] ^= T;
    State[3] = rotl(State[3], 45);
    return Result;
  }

  /// Returns a uniform integer in [0, Bound). \p Bound must be positive.
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound > 0 && "nextBelow() requires a positive bound");
    // Rejection sampling to avoid modulo bias; the loop terminates quickly
    // because at least half of the 64-bit range is accepted.
    uint64_t Threshold = (0 - Bound) % Bound;
    for (;;) {
      uint64_t R = next();
      if (R >= Threshold)
        return R % Bound;
    }
  }

  /// Returns a uniform integer in [Lo, Hi] inclusive.
  int64_t nextInRange(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "empty range");
    return Lo + static_cast<int64_t>(
                    nextBelow(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// Returns a uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Returns true with probability \p P.
  bool nextBool(double P) { return nextDouble() < P; }

private:
  static uint64_t rotl(uint64_t X, int K) {
    return (X << K) | (X >> (64 - K));
  }

  uint64_t State[4];
};

} // namespace isp

#endif // ISPROF_SUPPORT_RANDOM_H
