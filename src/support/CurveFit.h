//===- support/CurveFit.h - Asymptotic model fitting ------------*- C++ -*-===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Least-squares fitting of cost-vs-input-size samples to standard
/// asymptotic models. Input-sensitive profiles are consumed as (n, cost)
/// points; the paper's Figure 6 applies "standard curve fitting techniques"
/// to decide whether a routine's worst-case plot is linear or superlinear.
/// We fit cost = A + B * g(n) for each model g and select the best by RMSE
/// on normalized data, and additionally estimate a free power-law exponent
/// via log-log regression.
///
//===----------------------------------------------------------------------===//

#ifndef ISPROF_SUPPORT_CURVEFIT_H
#define ISPROF_SUPPORT_CURVEFIT_H

#include <string>
#include <vector>

namespace isp {

/// The candidate asymptotic shapes, ordered by growth rate.
enum class GrowthModel {
  Constant, ///< g(n) = 1
  Log,      ///< g(n) = log2 n
  Linear,   ///< g(n) = n
  NLogN,    ///< g(n) = n log2 n
  Quadratic,///< g(n) = n^2
  Cubic     ///< g(n) = n^3
};

/// Returns a printable name such as "O(n log n)".
const char *growthModelName(GrowthModel Model);

/// Evaluates the model basis function g(n).
double growthBasis(GrowthModel Model, double N);

/// One fitted model: cost ~= Intercept + Slope * g(n).
struct ModelFit {
  GrowthModel Model = GrowthModel::Constant;
  double Intercept = 0;
  double Slope = 0;
  /// Root-mean-square error of the fit, normalized by the mean cost so
  /// fits of differently-scaled routines are comparable.
  double NormalizedRmse = 0;
  /// Coefficient of determination in [~0, 1].
  double R2 = 0;

  double evaluate(double N) const;
};

/// Result of fitting all candidate models plus the free power law.
struct FitResult {
  /// All candidate fits, in GrowthModel order.
  std::vector<ModelFit> Candidates;
  /// Index into Candidates of the selected (lowest-RMSE, with a parsimony
  /// tie-break preferring slower growth) model.
  size_t BestIndex = 0;
  /// Free exponent fit cost ~= C * n^Alpha from log-log regression;
  /// Alpha is the headline "does it scale superlinearly?" number.
  double PowerLawAlpha = 0;
  double PowerLawCoeff = 0;
  bool PowerLawValid = false;

  const ModelFit &best() const { return Candidates[BestIndex]; }
};

/// A single (input size, cost) observation.
struct FitPoint {
  double N = 0;
  double Cost = 0;
};

/// Fits all candidate models to \p Points. Requires at least two points
/// with distinct N for a meaningful answer; with fewer, the constant model
/// is returned. Ties within \p ParsimonyTolerance of the best RMSE are
/// resolved in favour of the slower-growing model, which keeps noisy
/// linear data from being labelled quadratic.
FitResult fitCurve(const std::vector<FitPoint> &Points,
                   double ParsimonyTolerance = 0.05);

/// Formats a fit as e.g. "O(n): cost = 3.1 + 2.0*n (rmse 0.02)".
std::string formatFit(const ModelFit &Fit);

} // namespace isp

#endif // ISPROF_SUPPORT_CURVEFIT_H
