//===- support/Gnuplot.cpp - Plot script emission --------------------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "support/Gnuplot.h"

#include "support/Format.h"

#include <cstdio>

using namespace isp;

std::string GnuplotFigure::renderData() const {
  std::string Out;
  for (size_t I = 0; I != AllSeries.size(); ++I) {
    Out += formatString("# series %zu: %s\n", I,
                        AllSeries[I].Name.c_str());
    for (const auto &[X, Y] : AllSeries[I].Points)
      Out += formatString("%.6g %.6g\n", X, Y);
    Out += "\n\n"; // gnuplot index separator
  }
  return Out;
}

std::string GnuplotFigure::renderScript(const std::string &DataPath,
                                        const std::string &OutputPath) const {
  std::string Out;
  Out += "set terminal pngcairo size 800,500\n";
  Out += formatString("set output '%s'\n", OutputPath.c_str());
  Out += formatString("set title '%s'\n", Title.c_str());
  Out += formatString("set xlabel '%s'\n", XLabel.c_str());
  Out += formatString("set ylabel '%s'\n", YLabel.c_str());
  Out += "set key left top\n";
  if (LogX)
    Out += "set logscale x\n";
  if (LogY)
    Out += "set logscale y\n";
  Out += "plot ";
  for (size_t I = 0; I != AllSeries.size(); ++I) {
    if (I != 0)
      Out += ", \\\n     ";
    Out += formatString("'%s' index %zu with %s title '%s'",
                        DataPath.c_str(), I, AllSeries[I].Style.c_str(),
                        AllSeries[I].Name.c_str());
  }
  Out += "\n";
  return Out;
}

bool GnuplotFigure::write(const std::string &BasePath) const {
  std::string DataPath = BasePath + ".dat";
  std::string ScriptPath = BasePath + ".gp";
  std::string PngPath = BasePath + ".png";

  std::FILE *Data = std::fopen(DataPath.c_str(), "w");
  if (!Data)
    return false;
  std::string DataText = renderData();
  bool Ok = std::fwrite(DataText.data(), 1, DataText.size(), Data) ==
            DataText.size();
  std::fclose(Data);
  if (!Ok)
    return false;

  std::FILE *Script = std::fopen(ScriptPath.c_str(), "w");
  if (!Script)
    return false;
  std::string ScriptText = renderScript(DataPath, PngPath);
  Ok = std::fwrite(ScriptText.data(), 1, ScriptText.size(), Script) ==
       ScriptText.size();
  std::fclose(Script);
  return Ok;
}
