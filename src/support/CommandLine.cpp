//===- support/CommandLine.cpp - Tiny option parser -------------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "support/CommandLine.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

using namespace isp;

void OptionParser::addOption(const std::string &Name,
                             const std::string &Default,
                             const std::string &Help) {
  Option Opt;
  Opt.Default = Default;
  Opt.Value = Default;
  Opt.Help = Help;
  Options[Name] = Opt;
}

void OptionParser::addFlag(const std::string &Name, const std::string &Help) {
  Option Opt;
  Opt.Default = "false";
  Opt.Value = "false";
  Opt.Help = Help;
  Opt.IsFlag = true;
  Options[Name] = Opt;
}

bool OptionParser::parse(int Argc, const char *const *Argv) {
  ProgramName = Argc > 0 ? Argv[0] : "program";
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--help" || Arg == "-h") {
      std::fputs(helpText().c_str(), stdout);
      return false;
    }
    if (Arg.rfind("--", 0) != 0) {
      Positional.push_back(Arg);
      continue;
    }
    std::string Name = Arg.substr(2);
    std::string Value;
    bool HasValue = false;
    size_t Eq = Name.find('=');
    if (Eq != std::string::npos) {
      Value = Name.substr(Eq + 1);
      Name = Name.substr(0, Eq);
      HasValue = true;
    }
    auto It = Options.find(Name);
    if (It == Options.end()) {
      std::fprintf(stderr, "%s: unknown option --%s (try --help)\n",
                   ProgramName.c_str(), Name.c_str());
      return false;
    }
    Option &Opt = It->second;
    if (Opt.Seen) {
      std::fprintf(stderr,
                   "%s: duplicate option --%s (already set to '%s'; each "
                   "option may be given at most once)\n",
                   ProgramName.c_str(), Name.c_str(), Opt.Value.c_str());
      return false;
    }
    if (Opt.IsFlag) {
      Opt.Value = HasValue ? Value : "true";
    } else if (HasValue) {
      Opt.Value = Value;
    } else {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "%s: option --%s requires a value\n",
                     ProgramName.c_str(), Name.c_str());
        return false;
      }
      Opt.Value = Argv[++I];
    }
    Opt.Seen = true;
  }
  return true;
}

std::string OptionParser::getString(const std::string &Name) const {
  auto It = Options.find(Name);
  assert(It != Options.end() && "querying unregistered option");
  return It->second.Value;
}

int64_t OptionParser::getInt(const std::string &Name) const {
  return std::strtoll(getString(Name).c_str(), nullptr, 10);
}

double OptionParser::getDouble(const std::string &Name) const {
  return std::strtod(getString(Name).c_str(), nullptr);
}

bool OptionParser::getFlag(const std::string &Name) const {
  std::string V = getString(Name);
  return V == "true" || V == "1" || V == "yes";
}

std::string OptionParser::helpText() const {
  std::string Out = Description + "\n\nOptions:\n";
  for (const auto &[Name, Opt] : Options) {
    Out += "  --" + Name;
    if (!Opt.IsFlag)
      Out += "=<value> (default: " + Opt.Default + ")";
    Out += "\n      " + Opt.Help + "\n";
  }
  return Out;
}
