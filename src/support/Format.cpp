//===- support/Format.cpp - String formatting helpers ---------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "support/Format.h"

#include <cstdarg>
#include <cstdio>

using namespace isp;

std::string isp::formatString(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  std::string Result;
  if (Needed > 0) {
    Result.resize(static_cast<size_t>(Needed) + 1);
    std::vsnprintf(Result.data(), Result.size(), Fmt, ArgsCopy);
    Result.resize(static_cast<size_t>(Needed));
  }
  va_end(ArgsCopy);
  return Result;
}

std::string isp::formatBytes(uint64_t Bytes) {
  const char *Units[] = {"B", "KB", "MB", "GB", "TB"};
  double Value = static_cast<double>(Bytes);
  unsigned Unit = 0;
  while (Value >= 1000.0 && Unit < 4) {
    Value /= 1000.0;
    ++Unit;
  }
  if (Unit == 0)
    return formatString("%llu B", static_cast<unsigned long long>(Bytes));
  return formatString("%.1f %s", Value, Units[Unit]);
}

std::string isp::formatCount(uint64_t Value) {
  const char *Units[] = {"", "k", "M", "G", "T"};
  double Scaled = static_cast<double>(Value);
  unsigned Unit = 0;
  while (Scaled >= 1000.0 && Unit < 4) {
    Scaled /= 1000.0;
    ++Unit;
  }
  if (Unit == 0)
    return std::to_string(Value);
  return formatString("%.1f%s", Scaled, Units[Unit]);
}

std::string isp::formatDuration(uint64_t Nanoseconds) {
  if (Nanoseconds < 1000)
    return formatString("%llu ns",
                        static_cast<unsigned long long>(Nanoseconds));
  double Value = static_cast<double>(Nanoseconds);
  const char *Units[] = {"ns", "us", "ms", "s"};
  unsigned Unit = 0;
  while (Value >= 1000.0 && Unit < 3) {
    Value /= 1000.0;
    ++Unit;
  }
  return formatString("%.1f %s", Value, Units[Unit]);
}

std::string isp::formatWithCommas(uint64_t Value) {
  std::string Digits = std::to_string(Value);
  std::string Result;
  int Count = 0;
  for (auto It = Digits.rbegin(); It != Digits.rend(); ++It) {
    if (Count != 0 && Count % 3 == 0)
      Result.push_back(',');
    Result.push_back(*It);
    ++Count;
  }
  return std::string(Result.rbegin(), Result.rend());
}

std::string isp::formatRatio(double Ratio) {
  return formatString("%.1fx", Ratio);
}
