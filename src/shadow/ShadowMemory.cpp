//===- shadow/ShadowMemory.cpp - Three-level shadow memory -------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// ShadowMemory is header-only (templates); this file instantiates the
// common configurations once to keep object code out of every user and to
// surface template errors at library build time.
//
//===----------------------------------------------------------------------===//

#include "shadow/ShadowMemory.h"

#include "shadow/ShardedShadow.h"

namespace isp {

template class ThreeLevelShadow<uint64_t>;
template class ThreeLevelShadow<uint32_t>;
template class ThreeLevelShadow<uint8_t>;
template class DenseShadow<uint64_t>;
template class ShardedShadow<uint64_t>;

} // namespace isp
