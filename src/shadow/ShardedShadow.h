//===- shadow/ShardedShadow.h - Range-sharded shadow memory -----*- C++ -*-===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ShardedShadow splits a shadow memory across a power-of-two number of
/// ThreeLevelShadow shards by address range: chunk key → shard, i.e.
/// shard = (A >> OffsetBits) & (ShardCount - 1). Every 512-cell chunk
/// belongs to exactly one shard, so the range primitives still resolve
/// each chunk once per span and the one-entry chunk cache inside each
/// shard keeps its hit rate (consecutive accesses within a chunk land
/// on the same shard).
///
/// This is the groundwork ROADMAP names for a parallel-replay mode: the
/// global wts shadow sharded by address range, with per-shard
/// renumbering epochs (renumberNonZero bumps one epoch counter per
/// shard per pass) so a future parallel renumberer can sweep shards
/// independently. With ShardCount == 1 every operation forwards to the
/// single inner shard unchanged, and profiles are byte-identical across
/// shard counts (property-tested).
///
/// The combined view: forEachNonZero walks shards in index order (each
/// shard in its own address order — the global enumeration is not
/// address-sorted for ShardCount > 1), and the stats/accounting surface
/// (bytesAllocated, chunksAllocated, cacheHits, ...) sums over shards.
///
//===----------------------------------------------------------------------===//

#ifndef ISPROF_SHADOW_SHARDEDSHADOW_H
#define ISPROF_SHADOW_SHARDEDSHADOW_H

#include "shadow/ShadowMemory.h"

#include <cstdint>
#include <vector>

namespace isp {

template <typename T> class ShardedShadow {
public:
  using ShardT = ThreeLevelShadow<T>;
  static constexpr unsigned OffsetBits = ShardT::OffsetBits;
  static constexpr size_t ChunkCells = ShardT::ChunkCells;
  static constexpr Addr MaxAddress = ShardT::MaxAddress;
  /// Upper bound on setShardCount (sanity, not tuning).
  static constexpr unsigned MaxShards = 256;

  ShardedShadow() : Shards(1), Epochs(1, 0) {}

  /// Resizes to \p N shards. \p N must be a power of two in
  /// [1, MaxShards]; returns false (leaving the shadow unchanged)
  /// otherwise. Existing contents are discarded — call before use.
  bool setShardCount(unsigned N) {
    if (N == 0 || N > MaxShards || (N & (N - 1)) != 0)
      return false;
    Shards.clear();
    Shards.resize(N);
    Epochs.assign(N, 0);
    Mask = N - 1;
    return true;
  }
  unsigned shardCount() const { return static_cast<unsigned>(Shards.size()); }

  T get(Addr A) const { return Shards[shardOf(A)].get(A); }
  void set(Addr A, T Value) { Shards[shardOf(A)].set(A, Value); }
  T &cell(Addr A) { return Shards[shardOf(A)].cell(A); }

  /// Range primitives split the span at chunk boundaries and route each
  /// chunk-sized piece to its owning shard, preserving the resolve-once-
  /// per-chunk property of the underlying shards.
  template <typename Callback>
  void forRange(Addr A, uint64_t Cells, Callback Fn) {
    if (Mask == 0) {
      Shards[0].forRange(A, Cells, Fn);
      return;
    }
    while (Cells != 0) {
      size_t Off = static_cast<size_t>(A & (ChunkCells - 1));
      size_t Span =
          static_cast<size_t>(std::min<uint64_t>(Cells, ChunkCells - Off));
      Shards[shardOf(A)].forRange(A, Span, Fn);
      A += Span;
      Cells -= Span;
    }
  }

  void fillRange(Addr A, uint64_t Cells, T Value) {
    if (Mask == 0) {
      Shards[0].fillRange(A, Cells, Value);
      return;
    }
    while (Cells != 0) {
      size_t Off = static_cast<size_t>(A & (ChunkCells - 1));
      size_t Span =
          static_cast<size_t>(std::min<uint64_t>(Cells, ChunkCells - Off));
      Shards[shardOf(A)].fillRange(A, Span, Value);
      A += Span;
      Cells -= Span;
    }
  }

  /// Combined iterate view: every non-zero cell of every shard, shard 0
  /// first (per-shard address order; not globally address-sorted when
  /// sharded — no current client depends on the global order).
  template <typename Callback> void forEachNonZero(Callback Fn) {
    for (ShardT &S : Shards)
      S.forEachNonZero(Fn);
  }

  /// A full renumbering sweep: forEachNonZero shard by shard, bumping
  /// that shard's epoch as its sweep completes. The epoch counters are
  /// the hook for a future parallel renumberer to prove every shard was
  /// swept exactly once per pass.
  template <typename Callback> void renumberNonZero(Callback Fn) {
    for (size_t I = 0; I != Shards.size(); ++I) {
      Shards[I].forEachNonZero(Fn);
      ++Epochs[I];
    }
  }

  /// Renumbering epochs completed by shard \p I.
  uint64_t shardEpoch(size_t I) const { return Epochs[I]; }
  /// Sum of all per-shard epochs (shardCount × passes when healthy).
  uint64_t totalEpochs() const {
    uint64_t Total = 0;
    for (uint64_t E : Epochs)
      Total += E;
    return Total;
  }

  //===--- Combined stats view: sums over shards ------------------------===//

  uint64_t bytesAllocated() const {
    uint64_t Total = 0;
    for (const ShardT &S : Shards)
      Total += S.bytesAllocated();
    return Total;
  }
  uint64_t fixedBytes() const {
    uint64_t Total = 0;
    for (const ShardT &S : Shards)
      Total += S.fixedBytes();
    return Total;
  }
  uint64_t totalBytes() const { return bytesAllocated() + fixedBytes(); }
  uint64_t chunksAllocated() const {
    uint64_t Total = 0;
    for (const ShardT &S : Shards)
      Total += S.chunksAllocated();
    return Total;
  }
  uint64_t cacheHits() const {
    uint64_t Total = 0;
    for (const ShardT &S : Shards)
      Total += S.cacheHits();
    return Total;
  }
  uint64_t cacheMisses() const {
    uint64_t Total = 0;
    for (const ShardT &S : Shards)
      Total += S.cacheMisses();
    return Total;
  }

  /// Clears contents and accounting of every shard; the shard count and
  /// the epoch counters (lifetime tallies, like the cache stats) stay.
  void clear() {
    for (ShardT &S : Shards)
      S.clear();
  }

  /// Shard owning address \p A (chunk key → shard).
  size_t shardOf(Addr A) const {
    return static_cast<size_t>((A >> OffsetBits) & Mask);
  }

  //===--- Shard-local access (parallel replay) -------------------------===//
  //
  // The router state (Shards base pointer, Mask) is immutable between
  // setShardCount calls, so concurrent threads may operate on DISTINCT
  // shards without locking: get/set/forRange/fillRange on addresses of
  // shard i touch only Shards[i] — including its mutable one-entry
  // chunk cache, which is why the partition must be by shard, never by
  // address within a shard. The combined views (forEachNonZero, stats)
  // and setShardCount still require exclusive access.

  /// Direct access to inner shard \p I, for callers that partition work
  /// shard-by-shard (e.g. a per-worker sweep).
  ShardT &shard(size_t I) { return Shards[I]; }
  const ShardT &shard(size_t I) const { return Shards[I]; }

private:
  std::vector<ShardT> Shards;
  std::vector<uint64_t> Epochs;
  Addr Mask = 0;
};

} // namespace isp

#endif // ISPROF_SHADOW_SHARDEDSHADOW_H
