//===- shadow/ShadowMemory.h - Three-level shadow memory --------*- C++ -*-===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shadow memories mapping guest addresses to per-location analysis state
/// (timestamps for the profilers, validity bits for the memory checker,
/// access histories for the race detector).
///
/// ThreeLevelShadow reproduces the layout of the paper's Section 5: a
/// primary table of 2048 entries indexes secondary tables, each of which
/// indexes 16K lazily-allocated chunks; only chunks covering addresses a
/// thread actually touched are materialized, which is what keeps the
/// per-thread shadow cost sublinear in practice (Figure 14's space curve).
/// DenseShadow is the hash-map baseline used by the ablation benchmark.
///
//===----------------------------------------------------------------------===//

#ifndef ISPROF_SHADOW_SHADOWMEMORY_H
#define ISPROF_SHADOW_SHADOWMEMORY_H

#include "trace/Event.h"

#include <cassert>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

namespace isp {

/// Three-level radix shadow memory over guest cell addresses.
///
/// Address bits: [ L1: 8 | L2: 10 | offset: 9 ], covering 2^27 cells —
/// the guest address space of vm/Bytecode.h. The structure follows the
/// paper's three-level design; the table and chunk sizes are scaled to
/// this project's laptop-sized guests (the paper shadows multi-GB
/// address spaces with 64KB chunks; we shadow multi-MB guests with
/// 512-cell chunks) so that space overhead remains proportional to
/// memory actually touched. Unaccessed locations implicitly hold T{}
/// (all profilers use 0 as the "never" timestamp, so lazy chunks need no
/// initialization pass beyond zero-fill).
template <typename T> class ThreeLevelShadow {
public:
  static constexpr unsigned OffsetBits = 9;
  static constexpr unsigned L2Bits = 10;
  static constexpr unsigned L1Bits = 8;
  static constexpr size_t ChunkCells = size_t(1) << OffsetBits;
  static constexpr size_t L2Entries = size_t(1) << L2Bits;
  static constexpr size_t L1Entries = size_t(1) << L1Bits;
  static constexpr Addr MaxAddress =
      (Addr(1) << (OffsetBits + L2Bits + L1Bits)) - 1;

  ThreeLevelShadow() : Primary(L1Entries) {}

  /// Returns the value at \p A without allocating (T{} if untouched).
  T get(Addr A) const {
    assert(A <= MaxAddress && "guest address out of shadowable range");
    const Secondary *S = Primary[l1Index(A)].get();
    if (!S)
      return T{};
    const Chunk *C = S->Chunks[l2Index(A)].get();
    if (!C)
      return T{};
    return C->Cells[offset(A)];
  }

  /// Stores \p Value at \p A, materializing the chunk if needed.
  void set(Addr A, T Value) { cell(A) = Value; }

  /// Returns a mutable reference, materializing the chunk if needed.
  T &cell(Addr A) {
    assert(A <= MaxAddress && "guest address out of shadowable range");
    std::unique_ptr<Secondary> &S = Primary[l1Index(A)];
    if (!S) {
      S = std::make_unique<Secondary>();
      BytesAllocated += sizeof(Secondary);
    }
    std::unique_ptr<Chunk> &C = S->Chunks[l2Index(A)];
    if (!C) {
      C = std::make_unique<Chunk>();
      BytesAllocated += sizeof(Chunk);
    }
    return C->Cells[offset(A)];
  }

  /// Invokes \p Fn(Addr, T&) for every cell of every materialized chunk
  /// whose value differs from T{}. Used by the timestamp renumbering pass,
  /// which must rewrite all live timestamps.
  template <typename Callback> void forEachNonZero(Callback Fn) {
    for (size_t I1 = 0; I1 != L1Entries; ++I1) {
      Secondary *S = Primary[I1].get();
      if (!S)
        continue;
      for (size_t I2 = 0; I2 != L2Entries; ++I2) {
        Chunk *C = S->Chunks[I2].get();
        if (!C)
          continue;
        Addr Base = (Addr(I1) << (L2Bits + OffsetBits)) |
                    (Addr(I2) << OffsetBits);
        for (size_t Off = 0; Off != ChunkCells; ++Off)
          if (!(C->Cells[Off] == T{}))
            Fn(Base | Off, C->Cells[Off]);
      }
    }
  }

  /// Bytes held by secondary tables and chunks (excludes the fixed-size
  /// primary table, reported separately by fixedBytes()).
  uint64_t bytesAllocated() const { return BytesAllocated; }
  uint64_t fixedBytes() const { return L1Entries * sizeof(void *); }
  uint64_t totalBytes() const { return BytesAllocated + fixedBytes(); }

  void clear() {
    for (auto &S : Primary)
      S.reset();
    BytesAllocated = 0;
  }

private:
  struct Chunk {
    T Cells[ChunkCells] = {};
  };
  struct Secondary {
    std::unique_ptr<Chunk> Chunks[L2Entries];
  };

  static size_t l1Index(Addr A) { return A >> (L2Bits + OffsetBits); }
  static size_t l2Index(Addr A) { return (A >> OffsetBits) & (L2Entries - 1); }
  static size_t offset(Addr A) { return A & (ChunkCells - 1); }

  std::vector<std::unique_ptr<Secondary>> Primary;
  uint64_t BytesAllocated = 0;
};

/// Hash-map shadow memory: the no-structure baseline for the ablation
/// benchmark (same interface as ThreeLevelShadow).
template <typename T> class DenseShadow {
public:
  T get(Addr A) const {
    auto It = Map.find(A);
    return It == Map.end() ? T{} : It->second;
  }

  void set(Addr A, T Value) { Map[A] = Value; }

  T &cell(Addr A) { return Map[A]; }

  template <typename Callback> void forEachNonZero(Callback Fn) {
    for (auto &[A, Value] : Map)
      if (!(Value == T{}))
        Fn(A, Value);
  }

  uint64_t bytesAllocated() const {
    // Approximation: per-node overhead of the hash table (key + value +
    // bucket pointer + node header) plus the bucket array.
    return Map.size() * (sizeof(Addr) + sizeof(T) + 2 * sizeof(void *)) +
           Map.bucket_count() * sizeof(void *);
  }
  uint64_t totalBytes() const { return bytesAllocated(); }

  void clear() { Map.clear(); }

private:
  std::unordered_map<Addr, T> Map;
};

} // namespace isp

#endif // ISPROF_SHADOW_SHADOWMEMORY_H
