//===- shadow/ShadowMemory.h - Three-level shadow memory --------*- C++ -*-===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shadow memories mapping guest addresses to per-location analysis state
/// (timestamps for the profilers, validity bits for the memory checker,
/// access histories for the race detector).
///
/// ThreeLevelShadow reproduces the layout of the paper's Section 5: a
/// primary table of 2048 entries indexes secondary tables, each of which
/// indexes 16K lazily-allocated chunks; only chunks covering addresses a
/// thread actually touched are materialized, which is what keeps the
/// per-thread shadow cost sublinear in practice (Figure 14's space curve).
/// DenseShadow is the hash-map baseline used by the ablation benchmark.
///
/// Both shadows expose the same fast-path surface:
///  - a one-entry last-chunk cache (Valgrind-style): consecutive accesses
///    to the same 512-cell chunk skip the radix walk entirely;
///  - range primitives forRange/forRangeIfPresent/fillRange that resolve
///    each chunk once per 512-cell span instead of once per cell, which
///    is how the profilers process multi-cell Read/Write events.
///
//===----------------------------------------------------------------------===//

#ifndef ISPROF_SHADOW_SHADOWMEMORY_H
#define ISPROF_SHADOW_SHADOWMEMORY_H

#include "obs/Obs.h"
#include "trace/Event.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

namespace isp {

/// Three-level radix shadow memory over guest cell addresses.
///
/// Address bits: [ L1: 8 | L2: 10 | offset: 9 ], covering 2^27 cells —
/// the guest address space of vm/Bytecode.h. The structure follows the
/// paper's three-level design; the table and chunk sizes are scaled to
/// this project's laptop-sized guests (the paper shadows multi-GB
/// address spaces with 64KB chunks; we shadow multi-MB guests with
/// 512-cell chunks) so that space overhead remains proportional to
/// memory actually touched. Unaccessed locations implicitly hold T{}
/// (all profilers use 0 as the "never" timestamp, so lazy chunks need no
/// initialization pass beyond zero-fill).
template <typename T> class ThreeLevelShadow {
public:
  static constexpr unsigned OffsetBits = 9;
  static constexpr unsigned L2Bits = 10;
  static constexpr unsigned L1Bits = 8;
  static constexpr size_t ChunkCells = size_t(1) << OffsetBits;
  static constexpr size_t L2Entries = size_t(1) << L2Bits;
  static constexpr size_t L1Entries = size_t(1) << L1Bits;
  static constexpr Addr MaxAddress =
      (Addr(1) << (OffsetBits + L2Bits + L1Bits)) - 1;

  ThreeLevelShadow() : Primary(L1Entries) {}

  /// Returns the value at \p A without allocating (T{} if untouched).
  T get(Addr A) const {
    assert(A <= MaxAddress && "guest address out of shadowable range");
    if (chunkKey(A) == CachedKey) {
      ISP_STATS(++CacheHits);
      return CachedChunk->Cells[offset(A)];
    }
    ISP_STATS(++CacheMisses);
    const Secondary *S = Primary[l1Index(A)].get();
    if (!S)
      return T{};
    Chunk *C = S->Chunks[l2Index(A)].get();
    if (!C)
      return T{};
    CachedKey = chunkKey(A);
    CachedChunk = C;
    return C->Cells[offset(A)];
  }

  /// Stores \p Value at \p A, materializing the chunk if needed.
  void set(Addr A, T Value) { cell(A) = Value; }

  /// Returns a mutable reference, materializing the chunk if needed.
  T &cell(Addr A) {
    assert(A <= MaxAddress && "guest address out of shadowable range");
    if (chunkKey(A) == CachedKey) {
      ISP_STATS(++CacheHits);
      return CachedChunk->Cells[offset(A)];
    }
    ISP_STATS(++CacheMisses);
    return materialize(A)->Cells[offset(A)];
  }

  /// Invokes \p Fn(Addr, T&) for each of the \p Cells cells starting at
  /// \p A, materializing chunks as needed. Each chunk on the span is
  /// resolved exactly once — the multi-cell event fast path.
  template <typename Callback>
  void forRange(Addr A, uint64_t Cells, Callback Fn) {
    assert(Cells == 0 || A + Cells - 1 <= MaxAddress);
    while (Cells != 0) {
      size_t Off = offset(A);
      size_t Span = static_cast<size_t>(
          std::min<uint64_t>(Cells, ChunkCells - Off));
      Chunk *C = resolveChunk(A);
      for (size_t I = 0; I != Span; ++I)
        Fn(A + I, C->Cells[Off + I]);
      A += Span;
      Cells -= Span;
    }
  }

  /// Stores \p Value into each of the \p Cells cells starting at \p A,
  /// resolving each chunk on the span once.
  void fillRange(Addr A, uint64_t Cells, T Value) {
    assert(Cells == 0 || A + Cells - 1 <= MaxAddress);
    while (Cells != 0) {
      size_t Off = offset(A);
      size_t Span = static_cast<size_t>(
          std::min<uint64_t>(Cells, ChunkCells - Off));
      Chunk *C = resolveChunk(A);
      std::fill_n(C->Cells + Off, Span, Value);
      A += Span;
      Cells -= Span;
    }
  }

  /// Invokes \p Fn(Addr, T&) for every cell of every materialized chunk
  /// whose value differs from T{}. Used by the timestamp renumbering pass,
  /// which must rewrite all live timestamps.
  template <typename Callback> void forEachNonZero(Callback Fn) {
    for (size_t I1 = 0; I1 != L1Entries; ++I1) {
      Secondary *S = Primary[I1].get();
      if (!S)
        continue;
      for (size_t I2 = 0; I2 != L2Entries; ++I2) {
        Chunk *C = S->Chunks[I2].get();
        if (!C)
          continue;
        Addr Base = (Addr(I1) << (L2Bits + OffsetBits)) |
                    (Addr(I2) << OffsetBits);
        for (size_t Off = 0; Off != ChunkCells; ++Off)
          if (!(C->Cells[Off] == T{}))
            Fn(Base | Off, C->Cells[Off]);
      }
    }
  }

  /// Bytes held by secondary tables and chunks (excludes the fixed-size
  /// primary table, reported separately by fixedBytes()).
  uint64_t bytesAllocated() const { return BytesAllocated; }
  uint64_t fixedBytes() const { return L1Entries * sizeof(void *); }
  uint64_t totalBytes() const { return BytesAllocated + fixedBytes(); }

  /// Observability tallies, cumulative over the shadow's lifetime (not
  /// reset by clear()). Chunk allocations are counted unconditionally —
  /// the path already allocates, so the bump is noise. Cache hit/miss
  /// tallies sit on the per-access fast path and are bumped only while
  /// stats collection is on (ISP_STATS), keeping the default
  /// configuration's lookup untouched; range primitives count one
  /// hit/miss per chunk span, not per cell.
  uint64_t chunksAllocated() const { return ChunksAllocated; }
  uint64_t cacheHits() const { return CacheHits; }
  uint64_t cacheMisses() const { return CacheMisses; }

  void clear() {
    for (auto &S : Primary)
      S.reset();
    BytesAllocated = 0;
    CachedKey = NoKey;
    CachedChunk = nullptr;
  }

private:
  struct Chunk {
    T Cells[ChunkCells] = {};
  };
  struct Secondary {
    std::unique_ptr<Chunk> Chunks[L2Entries];
  };

  static size_t l1Index(Addr A) { return A >> (L2Bits + OffsetBits); }
  static size_t l2Index(Addr A) { return (A >> OffsetBits) & (L2Entries - 1); }
  static size_t offset(Addr A) { return A & (ChunkCells - 1); }
  /// Identifies the chunk containing \p A; always < NoKey for valid
  /// addresses, so the empty cache never matches.
  static Addr chunkKey(Addr A) { return A >> OffsetBits; }
  static constexpr Addr NoKey = ~Addr(0);

  /// Radix walk with chunk materialization; refreshes the cache.
  Chunk *materialize(Addr A) {
    std::unique_ptr<Secondary> &S = Primary[l1Index(A)];
    if (!S) {
      S = std::make_unique<Secondary>();
      BytesAllocated += sizeof(Secondary);
    }
    std::unique_ptr<Chunk> &C = S->Chunks[l2Index(A)];
    if (!C) {
      C = std::make_unique<Chunk>();
      BytesAllocated += sizeof(Chunk);
      ++ChunksAllocated;
    }
    CachedKey = chunkKey(A);
    CachedChunk = C.get();
    return C.get();
  }

  /// Cache-aware chunk resolution for the range primitives.
  Chunk *resolveChunk(Addr A) {
    if (chunkKey(A) == CachedKey) {
      ISP_STATS(++CacheHits);
      return CachedChunk;
    }
    ISP_STATS(++CacheMisses);
    return materialize(A);
  }

  std::vector<std::unique_ptr<Secondary>> Primary;
  uint64_t BytesAllocated = 0;
  uint64_t ChunksAllocated = 0;
  /// Mutable: the read-only get() path tallies hits/misses too.
  mutable uint64_t CacheHits = 0;
  mutable uint64_t CacheMisses = 0;
  /// One-entry last-chunk cache. Chunks live until clear(), so the raw
  /// pointer stays valid as long as the key matches. Mutable so the
  /// read-only get() path can also profit from locality.
  mutable Addr CachedKey = NoKey;
  mutable Chunk *CachedChunk = nullptr;
};

/// Hash-map shadow memory: the no-structure baseline for the ablation
/// benchmark (same interface as ThreeLevelShadow, including the range
/// primitives, so the ablation compares layouts, not loop shapes).
template <typename T> class DenseShadow {
public:
  T get(Addr A) const {
    auto It = Map.find(A);
    return It == Map.end() ? T{} : It->second;
  }

  void set(Addr A, T Value) { Map[A] = Value; }

  T &cell(Addr A) { return Map[A]; }

  template <typename Callback>
  void forRange(Addr A, uint64_t Cells, Callback Fn) {
    for (uint64_t I = 0; I != Cells; ++I)
      Fn(A + I, Map[A + I]);
  }

  void fillRange(Addr A, uint64_t Cells, T Value) {
    for (uint64_t I = 0; I != Cells; ++I)
      Map[A + I] = Value;
  }

  template <typename Callback> void forEachNonZero(Callback Fn) {
    for (auto &[A, Value] : Map)
      if (!(Value == T{}))
        Fn(A, Value);
  }

  /// Observability parity with ThreeLevelShadow; the hash map has no
  /// chunk cache, so the tallies are identically zero.
  uint64_t chunksAllocated() const { return 0; }
  uint64_t cacheHits() const { return 0; }
  uint64_t cacheMisses() const { return 0; }

  uint64_t bytesAllocated() const {
    // Approximation: per-node overhead of the hash table (key + value +
    // bucket pointer + node header) plus the bucket array. The bucket
    // array is accounted at the size the container actually keeps, which
    // is at least size() / max_load_factor() buckets — never less, so
    // load-factor headroom is consistently included. An empty shadow
    // accounts zero even if a bucket array lingers, giving clear() the
    // same resets-accounting guarantee ThreeLevelShadow has.
    if (Map.empty())
      return 0;
    uint64_t BucketCount = static_cast<uint64_t>(std::max<size_t>(
        Map.bucket_count(),
        static_cast<size_t>(static_cast<double>(Map.size()) /
                            Map.max_load_factor())));
    return Map.size() * (sizeof(Addr) + sizeof(T) + 2 * sizeof(void *)) +
           BucketCount * sizeof(void *);
  }
  uint64_t totalBytes() const { return bytesAllocated(); }

  void clear() { Map.clear(); }

private:
  std::unordered_map<Addr, T> Map;
};

} // namespace isp

#endif // ISPROF_SHADOW_SHADOWMEMORY_H
