//===- instr/Tool.cpp - Analysis tool callback interface --------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "instr/Tool.h"

#include "support/Compiler.h"

using namespace isp;

Tool::~Tool() = default;

void Tool::handleEvent(const Event &E) {
  switch (E.Kind) {
  case EventKind::ThreadStart:
    onThreadStart(E.Tid, static_cast<ThreadId>(E.Arg0));
    return;
  case EventKind::ThreadEnd:
    onThreadEnd(E.Tid);
    return;
  case EventKind::Call:
    onCall(E.Tid, static_cast<RoutineId>(E.Arg0));
    return;
  case EventKind::Return:
    onReturn(E.Tid, static_cast<RoutineId>(E.Arg0));
    return;
  case EventKind::BasicBlock:
    onBasicBlock(E.Tid, E.Arg1);
    return;
  case EventKind::Read:
    onRead(E.Tid, E.Arg0, E.Arg1);
    return;
  case EventKind::Write:
    onWrite(E.Tid, E.Arg0, E.Arg1);
    return;
  case EventKind::KernelRead:
    onKernelRead(E.Tid, E.Arg0, E.Arg1);
    return;
  case EventKind::KernelWrite:
    onKernelWrite(E.Tid, E.Arg0, E.Arg1);
    return;
  case EventKind::SyncAcquire:
    onSyncAcquire(E.Tid, static_cast<SyncId>(E.Arg0), E.Arg1 != 0);
    return;
  case EventKind::SyncRelease:
    onSyncRelease(E.Tid, static_cast<SyncId>(E.Arg0), E.Arg1 != 0);
    return;
  case EventKind::ThreadCreate:
    onThreadCreate(E.Tid, static_cast<ThreadId>(E.Arg0));
    return;
  case EventKind::ThreadJoin:
    onThreadJoin(E.Tid, static_cast<ThreadId>(E.Arg0));
    return;
  case EventKind::Alloc:
    onAlloc(E.Tid, E.Arg0, E.Arg1);
    return;
  case EventKind::Free:
    onFree(E.Tid, E.Arg0);
    return;
  case EventKind::ThreadSwitch:
    onThreadSwitch(static_cast<ThreadId>(E.Arg0));
    return;
  }
  ISP_UNREACHABLE("unknown event kind");
}
