//===- instr/Tool.cpp - Analysis tool callback interface --------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "instr/Tool.h"

using namespace isp;

// Anchors the vtable; event dispatch lives inline in the header.
Tool::~Tool() = default;
