//===- instr/SymbolTable.h - Routine id <-> name mapping --------*- C++ -*-===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Maps routine ids to names and back. The VM compiler populates one per
/// program; trace files persist it; report writers use it to label plots.
///
//===----------------------------------------------------------------------===//

#ifndef ISPROF_INSTR_SYMBOLTABLE_H
#define ISPROF_INSTR_SYMBOLTABLE_H

#include "trace/Event.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace isp {

class SymbolTable {
public:
  /// Interns \p Name, returning its id (existing id if already present).
  RoutineId intern(const std::string &Name);

  /// Returns the name for \p Id, or "routine#<id>" if unknown.
  std::string routineName(RoutineId Id) const;

  /// Returns the id for \p Name, or ~0u if absent.
  RoutineId lookup(const std::string &Name) const;

  size_t size() const { return Names.size(); }

  /// All (id, name) pairs in id order.
  std::vector<std::pair<RoutineId, std::string>> entries() const;

private:
  std::vector<std::string> Names;
  std::unordered_map<std::string, RoutineId> Ids;
};

} // namespace isp

#endif // ISPROF_INSTR_SYMBOLTABLE_H
