//===- instr/SpscQueue.h - Bounded SPSC queue with backpressure -*- C++ -*-===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded single-producer/single-consumer ring, the reusable core of
/// the double-buffered dispatch ring from the parallel tool fan-out: one
/// producer thread pushes fixed-size items, one consumer thread drains
/// them in batches, and a full ring blocks the producer (backpressure)
/// instead of growing — so total queue memory is a hard constant no
/// matter how far the producer runs ahead.
///
/// Progress is lock-free in the common case: indices are published with
/// release stores and observed with acquire loads, so the payload cells
/// themselves need no synchronization. Only when one side would spin
/// indefinitely (ring full / ring empty) does it fall back to a
/// condition variable; the waits are timed, so a missed notification
/// costs a millisecond, never a deadlock.
///
//===----------------------------------------------------------------------===//

#ifndef ISPROF_INSTR_SPSCQUEUE_H
#define ISPROF_INSTR_SPSCQUEUE_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>

namespace isp {

template <typename T> class SpscQueue {
public:
  /// \p Capacity is rounded up to a power of two (minimum 2).
  explicit SpscQueue(size_t Capacity) {
    size_t Cap = 2;
    while (Cap < Capacity && Cap < (size_t(1) << 31))
      Cap <<= 1;
    Mask = Cap - 1;
    Ring = std::make_unique<T[]>(Cap);
  }
  SpscQueue(const SpscQueue &) = delete;
  SpscQueue &operator=(const SpscQueue &) = delete;

  size_t capacity() const { return Mask + 1; }

  /// Producer only. Blocks while the ring is full.
  void push(const T &V) {
    uint64_t Tl = Tail.load(std::memory_order_relaxed);
    if (Tl - HeadCache > Mask)
      waitForSpace(Tl);
    Ring[Tl & Mask] = V;
    Tail.store(Tl + 1, std::memory_order_release);
    uint64_t Depth = Tl + 1 - HeadCache;
    if (Depth > PeakDepthValue)
      PeakDepthValue = Depth;
    if (ConsumerWaiting.load(std::memory_order_seq_cst)) {
      { std::lock_guard<std::mutex> Lock(WakeMutex); }
      DataReady.notify_one();
    }
  }

  /// Consumer only. Blocks until at least one item is available, then
  /// copies up to \p Max items into \p Out and returns the count.
  size_t popBatch(T *Out, size_t Max) {
    uint64_t Hd = Head.load(std::memory_order_relaxed);
    if (TailCache == Hd)
      waitForData(Hd);
    size_t N = static_cast<size_t>(TailCache - Hd);
    if (N > Max)
      N = Max;
    for (size_t I = 0; I != N; ++I)
      Out[I] = Ring[(Hd + I) & Mask];
    Head.store(Hd + N, std::memory_order_release);
    if (ProducerWaiting.load(std::memory_order_seq_cst)) {
      { std::lock_guard<std::mutex> Lock(WakeMutex); }
      SpaceReady.notify_one();
    }
    return N;
  }

  /// Producer-side high-water mark of the ring occupancy (items). An
  /// ordinary value, not an atomic: read it after the producer is done.
  uint64_t peakDepth() const { return PeakDepthValue; }

private:
  void waitForSpace(uint64_t Tl) {
    HeadCache = Head.load(std::memory_order_acquire);
    unsigned Spins = 0;
    while (Tl - HeadCache > Mask) {
      if (++Spins < SpinLimit) {
        HeadCache = Head.load(std::memory_order_acquire);
        continue;
      }
      std::unique_lock<std::mutex> Lock(WakeMutex);
      ProducerWaiting.store(true, std::memory_order_seq_cst);
      HeadCache = Head.load(std::memory_order_acquire);
      if (Tl - HeadCache > Mask)
        SpaceReady.wait_for(Lock, std::chrono::milliseconds(1));
      ProducerWaiting.store(false, std::memory_order_relaxed);
      HeadCache = Head.load(std::memory_order_acquire);
    }
  }

  void waitForData(uint64_t Hd) {
    TailCache = Tail.load(std::memory_order_acquire);
    unsigned Spins = 0;
    while (TailCache == Hd) {
      if (++Spins < SpinLimit) {
        TailCache = Tail.load(std::memory_order_acquire);
        continue;
      }
      std::unique_lock<std::mutex> Lock(WakeMutex);
      ConsumerWaiting.store(true, std::memory_order_seq_cst);
      TailCache = Tail.load(std::memory_order_acquire);
      if (TailCache == Hd)
        DataReady.wait_for(Lock, std::chrono::milliseconds(1));
      ConsumerWaiting.store(false, std::memory_order_relaxed);
      TailCache = Tail.load(std::memory_order_acquire);
    }
  }

  static constexpr unsigned SpinLimit = 1024;

  std::unique_ptr<T[]> Ring;
  size_t Mask = 1;

  /// Producer cacheline: owns Tail, caches the last-seen Head.
  alignas(64) std::atomic<uint64_t> Tail{0};
  uint64_t HeadCache = 0;
  uint64_t PeakDepthValue = 0;

  /// Consumer cacheline: owns Head, caches the last-seen Tail.
  alignas(64) std::atomic<uint64_t> Head{0};
  uint64_t TailCache = 0;

  /// Slow-path parking. The flags are checked by the fast path with a
  /// seq_cst load so a waiter that set its flag inside the lock is never
  /// missed; the timed wait bounds the damage of any residual race.
  alignas(64) std::mutex WakeMutex;
  std::condition_variable DataReady;
  std::condition_variable SpaceReady;
  std::atomic<bool> ProducerWaiting{false};
  std::atomic<bool> ConsumerWaiting{false};
};

} // namespace isp

#endif // ISPROF_INSTR_SPSCQUEUE_H
