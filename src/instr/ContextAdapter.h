//===- instr/ContextAdapter.h - Context-sensitive profiling -----*- C++ -*-===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Upgrades any routine-level analysis to calling-context sensitivity by
/// event rewriting: the adapter sits between the substrate and an inner
/// Tool, interning each distinct call path as a fresh pseudo-routine id
/// ("main > dispatch_query > mysql_select") and forwarding Call/Return
/// events with the context id substituted. An input-sensitive profiler
/// behind the adapter therefore produces *per-context* cost-vs-input
/// plots — the context-sensitive profiles the paper's related work
/// contrasts with — without the profiler knowing anything changed.
///
//===----------------------------------------------------------------------===//

#ifndef ISPROF_INSTR_CONTEXTADAPTER_H
#define ISPROF_INSTR_CONTEXTADAPTER_H

#include "instr/SymbolTable.h"
#include "instr/Tool.h"

#include <map>
#include <string>
#include <vector>

namespace isp {

class ContextAdapter : public Tool {
public:
  /// \p Inner receives the rewritten events. Not owned.
  explicit ContextAdapter(Tool &Inner) : Inner(Inner) {}

  std::string name() const override {
    return Inner.name() + "+contexts";
  }
  /// The adapter's context tree lives wherever the inner tool runs, so
  /// it inherits the inner tool's affinity.
  ToolAffinity threadAffinity() const override {
    return Inner.threadAffinity();
  }
  uint64_t memoryFootprintBytes() const override;
  ProfileDatabase *profileDatabase() override {
    return Inner.profileDatabase();
  }

  void onStart(const SymbolTable *Symbols) override;
  void onFinish() override { Inner.onFinish(); }
  void onThreadStart(ThreadId Tid, ThreadId Parent) override {
    Inner.onThreadStart(Tid, Parent);
  }
  void onThreadEnd(ThreadId Tid) override;
  void onThreadSwitch(ThreadId Incoming) override {
    Inner.onThreadSwitch(Incoming);
  }
  void onCall(ThreadId Tid, RoutineId Rtn) override;
  void onReturn(ThreadId Tid, RoutineId Rtn) override;
  void onBasicBlock(ThreadId Tid, uint64_t Count) override {
    Inner.onBasicBlock(Tid, Count);
  }
  void onRead(ThreadId Tid, Addr A, uint64_t Cells) override {
    Inner.onRead(Tid, A, Cells);
  }
  void onWrite(ThreadId Tid, Addr A, uint64_t Cells) override {
    Inner.onWrite(Tid, A, Cells);
  }
  void onKernelRead(ThreadId Tid, Addr A, uint64_t Cells) override {
    Inner.onKernelRead(Tid, A, Cells);
  }
  void onKernelWrite(ThreadId Tid, Addr A, uint64_t Cells) override {
    Inner.onKernelWrite(Tid, A, Cells);
  }
  void onSyncAcquire(ThreadId Tid, SyncId Id, bool IsLock) override {
    Inner.onSyncAcquire(Tid, Id, IsLock);
  }
  void onSyncRelease(ThreadId Tid, SyncId Id, bool IsLock) override {
    Inner.onSyncRelease(Tid, Id, IsLock);
  }
  void onThreadCreate(ThreadId Tid, ThreadId Child) override {
    Inner.onThreadCreate(Tid, Child);
  }
  void onThreadJoin(ThreadId Tid, ThreadId Child) override {
    Inner.onThreadJoin(Tid, Child);
  }
  void onAlloc(ThreadId Tid, Addr A, uint64_t Cells) override {
    Inner.onAlloc(Tid, A, Cells);
  }
  void onFree(ThreadId Tid, Addr A) override { Inner.onFree(Tid, A); }

  /// The synthesized symbol table mapping context ids to path names.
  /// Use this (not the program's) when rendering the inner tool's
  /// reports.
  const SymbolTable &contextSymbols() const { return ContextSymbols; }

  /// Number of distinct contexts interned so far.
  size_t contextCount() const { return Nodes.size() - 1; }

private:
  /// Context-tree node; index 0 is the synthetic root.
  struct Node {
    RoutineId Rtn = ~0u;
    uint32_t Parent = 0;
    RoutineId ContextId = ~0u; ///< interned pseudo-routine id
    std::map<RoutineId, uint32_t> Children;
  };

  uint32_t childOf(uint32_t Parent, RoutineId Rtn);
  std::string pathName(uint32_t NodeIndex) const;

  Tool &Inner;
  const SymbolTable *ProgramSymbols = nullptr;
  SymbolTable ContextSymbols;
  std::vector<Node> Nodes{Node{}};
  std::map<ThreadId, std::vector<uint32_t>> Stacks;
};

} // namespace isp

#endif // ISPROF_INSTR_CONTEXTADAPTER_H
