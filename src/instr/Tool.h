//===- instr/Tool.h - Analysis tool callback interface ----------*- C++ -*-===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The boundary between the instrumentation substrate and analyses. Every
/// analysis (the aprof profilers, the memcheck/callgrind/helgrind
/// analogues, the null tool) implements Tool; the VM interpreter and the
/// trace replayer drive Tools through these callbacks. This mirrors how
/// Valgrind tools subscribe to the VEX event stream in the paper's
/// Section 5.
///
//===----------------------------------------------------------------------===//

#ifndef ISPROF_INSTR_TOOL_H
#define ISPROF_INSTR_TOOL_H

#include "support/Compiler.h"
#include "trace/Event.h"

#include <cstdint>
#include <string>

namespace isp {

class SymbolTable;

/// Where a tool's callbacks may run when the dispatcher operates in
/// parallel fan-out mode (see Dispatcher.h). Whatever the mode, the
/// no-reentrancy guarantee holds: every tool consumes its batches in
/// publication order on exactly one thread, so no callback is ever
/// reentered and no tool needs internal locking.
enum class ToolAffinity : uint8_t {
  /// Callbacks must run on the thread that enqueues events (the VM /
  /// replay thread). The dispatcher falls back to synchronous serial
  /// delivery for such tools. This is the conservative default: a tool
  /// that has not audited its thread confinement never silently runs on
  /// a worker.
  DispatchThread,
  /// Callbacks may run on a dispatcher worker thread, but all
  /// CoScheduled tools must share the *same* worker. Declared by the
  /// input-sensitive profilers: each keeps per-thread shadows but shares
  /// a global wts shadow and timestamp counter across guest threads, so
  /// the whole profiler family is kept on one serialized consumer.
  CoScheduled,
  /// Callbacks may run on any single fixed worker thread. Correct for
  /// tools whose entire analysis state is instance-private and touched
  /// only from callbacks.
  AnyWorker,
};

/// Base class for analysis tools. All callbacks default to no-ops so a
/// tool overrides only the events it cares about; the dispatcher calls
/// them in trace order (the substrate serializes threads, so no callback
/// is ever reentered).
class Tool {
public:
  virtual ~Tool();

  /// Declares where this tool's callbacks may run under parallel tool
  /// fan-out. Defaults to DispatchThread (serial delivery) so unaudited
  /// tools stay safe; every shipped tool overrides it.
  virtual ToolAffinity threadAffinity() const {
    return ToolAffinity::DispatchThread;
  }

  /// Called once before the first event, with the symbol table of the
  /// program under analysis (may be null for anonymous traces).
  virtual void onStart(const SymbolTable *Symbols) {}
  /// Called once after the last event.
  virtual void onFinish() {}

  virtual void onThreadStart(ThreadId Tid, ThreadId Parent) {}
  virtual void onThreadEnd(ThreadId Tid) {}
  virtual void onThreadSwitch(ThreadId Incoming) {}
  virtual void onCall(ThreadId Tid, RoutineId Rtn) {}
  virtual void onReturn(ThreadId Tid, RoutineId Rtn) {}
  virtual void onBasicBlock(ThreadId Tid, uint64_t Count) {}
  virtual void onRead(ThreadId Tid, Addr A, uint64_t Cells) {}
  virtual void onWrite(ThreadId Tid, Addr A, uint64_t Cells) {}
  virtual void onKernelRead(ThreadId Tid, Addr A, uint64_t Cells) {}
  virtual void onKernelWrite(ThreadId Tid, Addr A, uint64_t Cells) {}
  virtual void onSyncAcquire(ThreadId Tid, SyncId Id, bool IsLock) {}
  virtual void onSyncRelease(ThreadId Tid, SyncId Id, bool IsLock) {}
  virtual void onThreadCreate(ThreadId Tid, ThreadId Child) {}
  virtual void onThreadJoin(ThreadId Tid, ThreadId Child) {}
  virtual void onAlloc(ThreadId Tid, Addr A, uint64_t Cells) {}
  virtual void onFree(ThreadId Tid, Addr A) {}

  /// A short identifier used in benchmark tables ("aprof-trms", ...).
  virtual std::string name() const = 0;

  /// Bytes of analysis state currently held (shadow memories, stacks,
  /// profile maps). Used for the paper's space-overhead comparisons.
  virtual uint64_t memoryFootprintBytes() const { return 0; }

  /// Input-sensitive profilers expose their database here; other tools
  /// return null. (Hand-rolled dispatch — the project builds without
  /// relying on RTTI.)
  virtual class ProfileDatabase *profileDatabase() { return nullptr; }

  /// Dispatches one decoded trace event to the matching callback.
  /// Defined inline so the decode switch disappears into the batch loop
  /// below — the per-event cost of a batch is then one predicted switch
  /// plus the virtual callback itself.
  void handleEvent(const EventRecord &E) {
    switch (E.Kind) {
    case EventKind::ThreadStart:
      onThreadStart(E.Tid, static_cast<ThreadId>(E.Arg0));
      return;
    case EventKind::ThreadEnd:
      onThreadEnd(E.Tid);
      return;
    case EventKind::Call:
      onCall(E.Tid, static_cast<RoutineId>(E.Arg0));
      return;
    case EventKind::Return:
      onReturn(E.Tid, static_cast<RoutineId>(E.Arg0));
      return;
    case EventKind::BasicBlock:
      onBasicBlock(E.Tid, E.Arg1);
      return;
    case EventKind::Read:
      onRead(E.Tid, E.Arg0, E.Arg1);
      return;
    case EventKind::Write:
      onWrite(E.Tid, E.Arg0, E.Arg1);
      return;
    case EventKind::KernelRead:
      onKernelRead(E.Tid, E.Arg0, E.Arg1);
      return;
    case EventKind::KernelWrite:
      onKernelWrite(E.Tid, E.Arg0, E.Arg1);
      return;
    case EventKind::SyncAcquire:
      onSyncAcquire(E.Tid, static_cast<SyncId>(E.Arg0), E.Arg1 != 0);
      return;
    case EventKind::SyncRelease:
      onSyncRelease(E.Tid, static_cast<SyncId>(E.Arg0), E.Arg1 != 0);
      return;
    case EventKind::ThreadCreate:
      onThreadCreate(E.Tid, static_cast<ThreadId>(E.Arg0));
      return;
    case EventKind::ThreadJoin:
      onThreadJoin(E.Tid, static_cast<ThreadId>(E.Arg0));
      return;
    case EventKind::Alloc:
      onAlloc(E.Tid, E.Arg0, E.Arg1);
      return;
    case EventKind::Free:
      onFree(E.Tid, E.Arg0);
      return;
    case EventKind::ThreadSwitch:
      onThreadSwitch(static_cast<ThreadId>(E.Arg0));
      return;
    }
    ISP_UNREACHABLE("unknown event kind");
  }

  /// Dispatches a batch of \p Count packed stream words in order,
  /// decoding as it goes (a flushed batch always decodes standalone).
  /// Non-virtual on purpose: batched delivery is a substrate
  /// optimization (one call per flush instead of one per event), not a
  /// semantic extension point — a batch is always observationally
  /// identical to dispatching its decoded events one by one.
  void handleBatch(const Event *Words, size_t Count) {
    EventStreamView V(Words, Count);
    for (EventRecord E; V.next(E);)
      handleEvent(E);
  }
};

} // namespace isp

#endif // ISPROF_INSTR_TOOL_H
