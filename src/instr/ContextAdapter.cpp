//===- instr/ContextAdapter.cpp - Context-sensitive profiling ----------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "instr/ContextAdapter.h"

#include "support/Format.h"

using namespace isp;

void ContextAdapter::onStart(const SymbolTable *Symbols) {
  ProgramSymbols = Symbols;
  // The inner tool sees the synthesized table so its reports print
  // full call paths.
  Inner.onStart(&ContextSymbols);
}

std::string ContextAdapter::pathName(uint32_t NodeIndex) const {
  std::vector<RoutineId> Path;
  for (uint32_t Cursor = NodeIndex; Cursor != 0;
       Cursor = Nodes[Cursor].Parent)
    Path.push_back(Nodes[Cursor].Rtn);
  std::string Out;
  for (auto It = Path.rbegin(); It != Path.rend(); ++It) {
    if (!Out.empty())
      Out += " > ";
    Out += ProgramSymbols ? ProgramSymbols->routineName(*It)
                          : formatString("#%u", *It);
  }
  return Out;
}

uint32_t ContextAdapter::childOf(uint32_t Parent, RoutineId Rtn) {
  auto [It, Inserted] = Nodes[Parent].Children.try_emplace(Rtn, 0u);
  if (Inserted) {
    It->second = static_cast<uint32_t>(Nodes.size());
    Node N;
    N.Rtn = Rtn;
    N.Parent = Parent;
    Nodes.push_back(std::move(N));
    Nodes.back().ContextId =
        ContextSymbols.intern(pathName(It->second));
  }
  return It->second;
}

void ContextAdapter::onCall(ThreadId Tid, RoutineId Rtn) {
  std::vector<uint32_t> &Stack = Stacks[Tid];
  uint32_t Parent = Stack.empty() ? 0 : Stack.back();
  uint32_t Child = childOf(Parent, Rtn);
  Stack.push_back(Child);
  Inner.onCall(Tid, Nodes[Child].ContextId);
}

void ContextAdapter::onReturn(ThreadId Tid, RoutineId Rtn) {
  std::vector<uint32_t> &Stack = Stacks[Tid];
  if (Stack.empty())
    return;
  uint32_t Top = Stack.back();
  Stack.pop_back();
  Inner.onReturn(Tid, Nodes[Top].ContextId);
}

void ContextAdapter::onThreadEnd(ThreadId Tid) {
  // Unwind in sync with the inner tool's own unwinding, keeping the
  // Return routine ids consistent.
  std::vector<uint32_t> &Stack = Stacks[Tid];
  while (!Stack.empty()) {
    uint32_t Top = Stack.back();
    Stack.pop_back();
    Inner.onReturn(Tid, Nodes[Top].ContextId);
  }
  Inner.onThreadEnd(Tid);
  Stacks.erase(Tid);
}

uint64_t ContextAdapter::memoryFootprintBytes() const {
  uint64_t Total = Inner.memoryFootprintBytes();
  Total += Nodes.capacity() * sizeof(Node);
  for (const Node &N : Nodes)
    Total += N.Children.size() * 48;
  for (const auto &[Tid, Stack] : Stacks)
    Total += Stack.capacity() * sizeof(uint32_t) + 48;
  return Total;
}
