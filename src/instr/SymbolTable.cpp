//===- instr/SymbolTable.cpp - Routine id <-> name mapping -------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "instr/SymbolTable.h"

#include "support/Format.h"

using namespace isp;

RoutineId SymbolTable::intern(const std::string &Name) {
  auto It = Ids.find(Name);
  if (It != Ids.end())
    return It->second;
  RoutineId Id = static_cast<RoutineId>(Names.size());
  Names.push_back(Name);
  Ids.emplace(Name, Id);
  return Id;
}

std::string SymbolTable::routineName(RoutineId Id) const {
  if (Id < Names.size())
    return Names[Id];
  return formatString("routine#%u", Id);
}

RoutineId SymbolTable::lookup(const std::string &Name) const {
  auto It = Ids.find(Name);
  return It == Ids.end() ? ~0u : It->second;
}

std::vector<std::pair<RoutineId, std::string>> SymbolTable::entries() const {
  std::vector<std::pair<RoutineId, std::string>> Result;
  Result.reserve(Names.size());
  for (RoutineId Id = 0; Id != Names.size(); ++Id)
    Result.emplace_back(Id, Names[Id]);
  return Result;
}
