//===- instr/Dispatcher.cpp - Event fan-out and trace replay --------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "instr/Dispatcher.h"

#include "obs/Obs.h"

#include <cstdlib>

using namespace isp;

/// Worker request from the ISPROF_PARALLEL_TOOLS environment variable:
/// -1 when unset/invalid, otherwise a worker count (0 = auto). Parsed
/// once; the CI ThreadSanitizer job uses it to force parallel delivery
/// through every dispatcher the test suite constructs.
static int envParallelWorkers() {
  static const int Cached = [] {
    const char *V = std::getenv("ISPROF_PARALLEL_TOOLS");
    if (!V || !*V)
      return -1;
    char *End = nullptr;
    long N = std::strtol(V, &End, 10);
    if (End == V || *End != '\0' || N < 0 ||
        N > static_cast<long>(EventDispatcher::MaxParallelWorkers))
      return -1;
    return static_cast<int>(N);
  }();
  return Cached;
}

EventDispatcher::~EventDispatcher() {
  // finish() normally joins; guard against early destruction (error
  // paths, tests) so worker threads never outlive the dispatcher.
  if (ParallelActive)
    joinWorkers();
}

void EventDispatcher::start(const SymbolTable *Symbols) {
  // Cache tool names (and allocate timeline lanes) once; flushImpl must
  // not call the virtual name() per batch.
  if (obs::statsEnabled() || obs::tracingEnabled()) {
    ToolObs.clear();
    for (Tool *T : Tools) {
      ToolObsState S;
      S.Name = T->name();
      if (obs::tracingEnabled())
        S.Lane = obs::TraceLog::get().allocLane("tool " + S.Name);
      ToolObs.push_back(std::move(S));
    }
    if (obs::tracingEnabled() && DispatcherLane == 0)
      DispatcherLane = obs::TraceLog::get().allocLane("dispatcher");
  }
  for (Tool *T : Tools)
    T->onStart(Symbols);
  int Request = RequestedWorkers >= 0 ? RequestedWorkers : envParallelWorkers();
  if (Request >= 0 && !Tools.empty())
    startParallel();
}

void EventDispatcher::startParallel() {
  // Partition the registered tools by affinity. DispatchThread tools
  // keep synchronous serial delivery; CoScheduled tools must share one
  // worker; AnyWorker tools spread round-robin.
  SerialToolIdx.clear();
  std::vector<size_t> CoScheduled, Spreadable;
  for (size_t I = 0; I != Tools.size(); ++I) {
    switch (Tools[I]->threadAffinity()) {
    case ToolAffinity::DispatchThread:
      SerialToolIdx.push_back(I);
      break;
    case ToolAffinity::CoScheduled:
      CoScheduled.push_back(I);
      break;
    case ToolAffinity::AnyWorker:
      Spreadable.push_back(I);
      break;
    }
  }
  // Schedulable units: the whole CoScheduled group is one unit.
  size_t Units = Spreadable.size() + (CoScheduled.empty() ? 0 : 1);
  if (Units == 0)
    return; // every tool is pinned to the dispatch thread — stay serial

  int Request = RequestedWorkers >= 0 ? RequestedWorkers : envParallelWorkers();
  unsigned N = static_cast<unsigned>(Request);
  if (N == 0) { // auto-size
    unsigned Hw = std::thread::hardware_concurrency();
    N = Hw == 0 ? 2 : Hw;
  }
  if (N > Units)
    N = static_cast<unsigned>(Units);
  if (N > MaxParallelWorkers)
    N = MaxParallelWorkers;

  Workers.clear();
  for (unsigned I = 0; I != N; ++I) {
    auto W = std::make_unique<WorkerState>();
    if (obs::tracingEnabled())
      W->Lane =
          obs::TraceLog::get().allocLane("worker " + std::to_string(I));
    Workers.push_back(std::move(W));
  }
  // The CoScheduled group shares worker 0; AnyWorker tools round-robin
  // over the rest (wrapping back through 0 when the pool is small).
  for (size_t I : CoScheduled)
    Workers[0]->ToolIdx.push_back(I);
  size_t Next = CoScheduled.empty() ? 0 : 1;
  for (size_t I : Spreadable)
    Workers[Next++ % N]->ToolIdx.push_back(I);

  Ring.clear();
  Ring.resize(InitialRingSlots);
  for (BatchSlot &Slot : Ring)
    Slot.Words.reset(new Event[Capacity]);

  PublishedSeq = 0;
  ShuttingDown = false;
  IdleWorkers = 0;
  PublisherWaiting = false;
  BackpressureBlocks = 0;
  BackpressureWaitNs = 0;
  MaxQueueDepth = 0;
  RingSlotsUsed = Ring.size();
  RingGrowths = 0;
  BlocksAtLastGrowth = 0;
  WorkerCountUsed = N;
  ParallelActive = true;
  for (auto &W : Workers)
    W->Thread = std::thread([this, WPtr = W.get()] { workerLoop(*WPtr); });
}

void EventDispatcher::deliverTo(const std::vector<size_t> &Idx,
                                const Event *Words, size_t Count,
                                size_t Records) {
  bool Observe = obs::statsEnabled() || obs::tracingEnabled();
  if (ISP_UNLIKELY(Observe) && ToolObs.size() == Tools.size()) {
    for (size_t I : Idx) {
      uint64_t Start = obs::nowNs();
      Tools[I]->handleBatch(Words, Count);
      uint64_t End = obs::nowNs();
      ToolObs[I].Events += Records;
      ToolObs[I].CallbackNs += End - Start;
      if (obs::tracingEnabled())
        obs::TraceLog::get().completeSpan(ToolObs[I].Lane, "handleBatch",
                                          "tool", Start, End);
    }
  } else {
    for (size_t I : Idx)
      Tools[I]->handleBatch(Words, Count);
  }
}

void EventDispatcher::workerLoop(WorkerState &W) {
  for (;;) {
    const Event *Words = nullptr;
    size_t Count = 0;
    size_t Records = 0;
    uint64_t Seq = 0;
    {
      std::unique_lock<std::mutex> Lock(ParMutex);
      while (!(PublishedSeq > W.NextSeq || ShuttingDown)) {
        ++IdleWorkers;
        WorkReady.wait(Lock);
        --IdleWorkers;
      }
      if (PublishedSeq == W.NextSeq)
        return; // shutting down and fully drained
      Seq = W.NextSeq;
      BatchSlot &Slot = Ring[Seq % Ring.size()];
      Words = Slot.Words.get();
      Count = Slot.Count;
      Records = Slot.Records;
    }
    // Deliver outside the lock: the slot buffer is immutable until every
    // worker (this one included) has marked it consumed.
    uint64_t SpanStart = obs::tracingEnabled() ? obs::nowNs() : 0;
    deliverTo(W.ToolIdx, Words, Count, Records);
    if (obs::tracingEnabled())
      obs::TraceLog::get().completeSpan(W.Lane, "batch", "worker", SpanStart,
                                        obs::nowNs());
    {
      std::lock_guard<std::mutex> Lock(ParMutex);
      ++W.NextSeq;
      if (--Ring[Seq % Ring.size()].Remaining == 0 && PublisherWaiting)
        SlotFree.notify_one();
    }
  }
}

void EventDispatcher::publishBatch(FlushCause Cause) {
  ++Flushes[static_cast<size_t>(Cause)];
  if (Recording)
    Recorded.insert(Recorded.end(), Pending.get(),
                    Pending.get() + PendingWords);
  // Record sinks consume the batch on the dispatch thread, before the
  // worker handoff swaps the buffer away — the sink sees exactly the
  // stream the in-memory recorder would.
  if (Sink)
    Sink->recordBatch(Pending.get(), PendingWords);
  // DispatchThread tools keep the serial contract: synchronous delivery
  // on the enqueue thread, before the batch is handed to the workers.
  // (Tools are independent, so their order against worker tools is
  // unobservable.)
  if (!SerialToolIdx.empty())
    deliverTo(SerialToolIdx, Pending.get(), PendingWords, PendingRecords);
  bool WakeWorkers;
  {
    std::unique_lock<std::mutex> Lock(ParMutex);
    size_t SlotIdx = PublishedSeq % Ring.size();
    if (Ring[SlotIdx].Remaining != 0) {
      // Backpressure: every slot is in flight.
      ++BackpressureBlocks;
      uint64_t WaitStart = obs::nowNs();
      PublisherWaiting = true;
      if (Ring.size() < MaxRingSlots &&
          BackpressureBlocks - BlocksAtLastGrowth >= RingGrowthThreshold) {
        // Adaptive growth: blocking keeps happening at this size, so
        // double the ring. Resizing remaps every seq % size slot
        // assignment, which is only safe with nothing in flight — wait
        // for the workers to drain completely (a one-off stall, paid at
        // most log2(Max/Initial) times per run), then resize under the
        // lock.
        SlotFree.wait(Lock, [&] {
          uint64_t MinSeq = PublishedSeq;
          for (const auto &W : Workers)
            MinSeq = W->NextSeq < MinSeq ? W->NextSeq : MinSeq;
          return MinSeq == PublishedSeq;
        });
        size_t NewSize = Ring.size() * 2;
        if (NewSize > MaxRingSlots)
          NewSize = MaxRingSlots;
        size_t OldSize = Ring.size();
        Ring.resize(NewSize);
        for (size_t I = OldSize; I != NewSize; ++I)
          Ring[I].Words.reset(new Event[Capacity]);
        RingSlotsUsed = NewSize;
        ++RingGrowths;
        BlocksAtLastGrowth = BackpressureBlocks;
        SlotIdx = PublishedSeq % Ring.size();
      } else {
        // Steady-state backpressure: block until the slowest worker
        // frees this slot.
        SlotFree.wait(Lock, [&] { return Ring[SlotIdx].Remaining == 0; });
      }
      PublisherWaiting = false;
      BackpressureWaitNs += obs::nowNs() - WaitStart;
    }
    // Double-buffer swap: the filled Pending buffer becomes the slot's
    // batch; the slot's drained buffer becomes the next Pending.
    BatchSlot &Slot = Ring[SlotIdx];
    std::swap(Slot.Words, Pending);
    Slot.Count = PendingWords;
    Slot.Records = PendingRecords;
    Slot.Remaining = static_cast<unsigned>(Workers.size());
    ++PublishedSeq;
    uint64_t MinSeq = PublishedSeq;
    for (const auto &W : Workers)
      MinSeq = W->NextSeq < MinSeq ? W->NextSeq : MinSeq;
    uint64_t Depth = PublishedSeq - MinSeq;
    MaxQueueDepth = Depth > MaxQueueDepth ? Depth : MaxQueueDepth;
    // Signal only parked workers: a worker that is busy (or runnable)
    // re-checks PublishedSeq under the lock before it ever waits, so
    // skipping the notify can't lose a wakeup.
    WakeWorkers = IdleWorkers != 0;
  }
  if (WakeWorkers)
    WorkReady.notify_all();
  ISP_STATS(obs::Registry::get()
                .histogram("dispatcher.batch_fill")
                .record(PendingWords));
  DeliveredEvents += PendingRecords;
  PendingWords = 0;
  PendingRecords = 0;
  Enc.reset();
}

void EventDispatcher::joinWorkers() {
  {
    std::lock_guard<std::mutex> Lock(ParMutex);
    ShuttingDown = true;
  }
  WorkReady.notify_all();
  for (auto &W : Workers)
    if (W->Thread.joinable())
      W->Thread.join();
  ParallelActive = false;
  ShuttingDown = false;
  Workers.clear();
  Ring.clear();
  SerialToolIdx.clear();
}

static const char *flushCauseName(EventDispatcher::FlushCause Cause) {
  switch (Cause) {
  case EventDispatcher::FlushCause::Capacity:
    return "flush:capacity";
  case EventDispatcher::FlushCause::Explicit:
    return "flush:explicit";
  case EventDispatcher::FlushCause::Finish:
    return "flush:finish";
  }
  return "flush";
}

void EventDispatcher::flushImpl(FlushCause Cause) {
  // Run bookkeeping holds indices into Pending; invalidate it whether or
  // not anything is delivered.
  resetCompaction();
  if (PendingWords == 0)
    return;
  if (ISP_UNLIKELY(ParallelActive)) {
    publishBatch(Cause);
    return;
  }
  ++Flushes[static_cast<size_t>(Cause)];
  if (Recording)
    Recorded.insert(Recorded.end(), Pending.get(), Pending.get() + PendingWords);
  if (ISP_UNLIKELY(Sink != nullptr))
    Sink->recordBatch(Pending.get(), PendingWords);
  // The observed path times each tool's callback (and records timeline
  // spans); the default path is the PR-1 hot loop, untouched.
  bool Observe = obs::statsEnabled() || obs::tracingEnabled();
  if (ISP_UNLIKELY(Observe) && ToolObs.size() == Tools.size()) {
    uint64_t FlushStart = obs::nowNs();
    for (size_t I = 0; I != Tools.size(); ++I) {
      uint64_t Start = obs::nowNs();
      Tools[I]->handleBatch(Pending.get(), PendingWords);
      uint64_t End = obs::nowNs();
      ToolObs[I].Events += PendingRecords;
      ToolObs[I].CallbackNs += End - Start;
      if (obs::tracingEnabled())
        obs::TraceLog::get().completeSpan(ToolObs[I].Lane, "handleBatch",
                                          "tool", Start, End);
    }
    if (obs::tracingEnabled())
      obs::TraceLog::get().completeSpan(DispatcherLane,
                                        flushCauseName(Cause), "dispatcher",
                                        FlushStart, obs::nowNs());
    ISP_STATS(obs::Registry::get()
                  .histogram("dispatcher.batch_fill")
                  .record(PendingWords));
  } else {
    for (Tool *T : Tools)
      T->handleBatch(Pending.get(), PendingWords);
  }
  DeliveredEvents += PendingRecords;
  PendingWords = 0;
  PendingRecords = 0;
  Enc.reset();
}

void EventDispatcher::publishStats() const {
  obs::Registry &R = obs::Registry::get();
  R.counter("dispatcher.enqueued_events").add(EnqueuedEvents);
  R.counter("dispatcher.delivered_events").add(DeliveredEvents);
  R.counter("dispatcher.access_merges").add(AccessMerges);
  R.counter("dispatcher.bb_folds").add(BbFolds);
  R.counter("dispatcher.flushes.capacity")
      .add(flushCount(FlushCause::Capacity));
  R.counter("dispatcher.flushes.explicit")
      .add(flushCount(FlushCause::Explicit));
  R.counter("dispatcher.flushes.finish").add(flushCount(FlushCause::Finish));
  if (WorkerCountUsed != 0) {
    R.gauge("dispatcher.parallel.workers").noteMax(WorkerCountUsed);
    R.counter("dispatcher.parallel.backpressure_blocks")
        .add(BackpressureBlocks);
    R.counter("dispatcher.parallel.backpressure_wait_ns")
        .add(BackpressureWaitNs);
    R.gauge("dispatcher.parallel.max_queue_depth").noteMax(MaxQueueDepth);
    R.gauge("dispatcher.parallel.ring_slots").noteMax(RingSlotsUsed);
    R.counter("dispatcher.parallel.ring_growths").add(RingGrowths);
  }
  for (size_t I = 0; I != ToolObs.size(); ++I) {
    const ToolObsState &S = ToolObs[I];
    R.counter("tool." + S.Name + ".events_delivered").add(S.Events);
    R.counter("tool." + S.Name + ".callback_ns").add(S.CallbackNs);
    if (I < Tools.size())
      R.gauge("tool." + S.Name + ".footprint_bytes")
          .noteMax(Tools[I]->memoryFootprintBytes());
  }
}

void EventDispatcher::finish() {
  flushImpl(FlushCause::Finish);
  // Join point: drain every worker queue before any tool's onFinish —
  // the join also publishes all worker-side writes to this thread.
  if (ParallelActive)
    joinWorkers();
  for (Tool *T : Tools)
    T->onFinish();
  ISP_STATS(publishStats());
}

void isp::replayTrace(const std::vector<EventRecord> &Events, Tool &T,
                      const SymbolTable *Symbols) {
  T.onStart(Symbols);
  for (const EventRecord &E : Events)
    T.handleEvent(E);
  T.onFinish();
}

void isp::replayTraceBatched(const std::vector<EventRecord> &Events, Tool &T,
                             const SymbolTable *Symbols) {
  EventDispatcher Dispatcher;
  Dispatcher.addTool(&T);
  Dispatcher.start(Symbols);
  for (const EventRecord &E : Events)
    Dispatcher.enqueue(E);
  Dispatcher.finish();
}
