//===- instr/Dispatcher.cpp - Event fan-out and trace replay -----------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "instr/Dispatcher.h"

using namespace isp;

void EventDispatcher::start(const SymbolTable *Symbols) {
  for (Tool *T : Tools)
    T->onStart(Symbols);
}

void EventDispatcher::finish() {
  for (Tool *T : Tools)
    T->onFinish();
}

void isp::replayTrace(const std::vector<Event> &Events, Tool &T,
                      const SymbolTable *Symbols) {
  T.onStart(Symbols);
  for (const Event &E : Events)
    T.handleEvent(E);
  T.onFinish();
}
