//===- instr/Dispatcher.cpp - Event fan-out and trace replay -----------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "instr/Dispatcher.h"

using namespace isp;

void EventDispatcher::start(const SymbolTable *Symbols) {
  for (Tool *T : Tools)
    T->onStart(Symbols);
}

void EventDispatcher::flush() {
  // Run bookkeeping holds indices into Pending; invalidate it whether or
  // not anything is delivered.
  resetCompaction();
  if (PendingCount == 0)
    return;
  if (Recording)
    Recorded.insert(Recorded.end(), Pending.get(), Pending.get() + PendingCount);
  for (Tool *T : Tools)
    T->handleBatch(Pending.get(), PendingCount);
  DeliveredEvents += PendingCount;
  PendingCount = 0;
}

void EventDispatcher::finish() {
  flush();
  for (Tool *T : Tools)
    T->onFinish();
}

void isp::replayTrace(const std::vector<Event> &Events, Tool &T,
                      const SymbolTable *Symbols) {
  T.onStart(Symbols);
  for (const Event &E : Events)
    T.handleEvent(E);
  T.onFinish();
}

void isp::replayTraceBatched(const std::vector<Event> &Events, Tool &T,
                             const SymbolTable *Symbols) {
  EventDispatcher Dispatcher;
  Dispatcher.addTool(&T);
  Dispatcher.start(Symbols);
  for (const Event &E : Events)
    Dispatcher.enqueue(E);
  Dispatcher.finish();
}
