//===- instr/Dispatcher.cpp - Event fan-out and trace replay -----------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "instr/Dispatcher.h"

#include "obs/Obs.h"

using namespace isp;

void EventDispatcher::start(const SymbolTable *Symbols) {
  // Cache tool names (and allocate timeline lanes) once; flushImpl must
  // not call the virtual name() per batch.
  if (obs::statsEnabled() || obs::tracingEnabled()) {
    ToolObs.clear();
    for (Tool *T : Tools) {
      ToolObsState S;
      S.Name = T->name();
      if (obs::tracingEnabled())
        S.Lane = obs::TraceLog::get().allocLane("tool " + S.Name);
      ToolObs.push_back(std::move(S));
    }
    if (obs::tracingEnabled() && DispatcherLane == 0)
      DispatcherLane = obs::TraceLog::get().allocLane("dispatcher");
  }
  for (Tool *T : Tools)
    T->onStart(Symbols);
}

static const char *flushCauseName(EventDispatcher::FlushCause Cause) {
  switch (Cause) {
  case EventDispatcher::FlushCause::Capacity:
    return "flush:capacity";
  case EventDispatcher::FlushCause::Explicit:
    return "flush:explicit";
  case EventDispatcher::FlushCause::Finish:
    return "flush:finish";
  }
  return "flush";
}

void EventDispatcher::flushImpl(FlushCause Cause) {
  // Run bookkeeping holds indices into Pending; invalidate it whether or
  // not anything is delivered.
  resetCompaction();
  if (PendingCount == 0)
    return;
  ++Flushes[static_cast<size_t>(Cause)];
  if (Recording)
    Recorded.insert(Recorded.end(), Pending.get(), Pending.get() + PendingCount);
  // The observed path times each tool's callback (and records timeline
  // spans); the default path is the PR-1 hot loop, untouched.
  bool Observe = obs::statsEnabled() || obs::tracingEnabled();
  if (ISP_UNLIKELY(Observe) && ToolObs.size() == Tools.size()) {
    uint64_t FlushStart = obs::nowNs();
    for (size_t I = 0; I != Tools.size(); ++I) {
      uint64_t Start = obs::nowNs();
      Tools[I]->handleBatch(Pending.get(), PendingCount);
      uint64_t End = obs::nowNs();
      ToolObs[I].Events += PendingCount;
      ToolObs[I].CallbackNs += End - Start;
      if (obs::tracingEnabled())
        obs::TraceLog::get().completeSpan(ToolObs[I].Lane, "handleBatch",
                                          "tool", Start, End);
    }
    if (obs::tracingEnabled())
      obs::TraceLog::get().completeSpan(DispatcherLane,
                                        flushCauseName(Cause), "dispatcher",
                                        FlushStart, obs::nowNs());
    ISP_STATS(obs::Registry::get()
                  .histogram("dispatcher.batch_fill")
                  .record(PendingCount));
  } else {
    for (Tool *T : Tools)
      T->handleBatch(Pending.get(), PendingCount);
  }
  DeliveredEvents += PendingCount;
  PendingCount = 0;
}

void EventDispatcher::publishStats() const {
  obs::Registry &R = obs::Registry::get();
  R.counter("dispatcher.enqueued_events").add(EnqueuedEvents);
  R.counter("dispatcher.delivered_events").add(DeliveredEvents);
  R.counter("dispatcher.access_merges").add(AccessMerges);
  R.counter("dispatcher.bb_folds").add(BbFolds);
  R.counter("dispatcher.flushes.capacity")
      .add(flushCount(FlushCause::Capacity));
  R.counter("dispatcher.flushes.explicit")
      .add(flushCount(FlushCause::Explicit));
  R.counter("dispatcher.flushes.finish").add(flushCount(FlushCause::Finish));
  for (size_t I = 0; I != ToolObs.size(); ++I) {
    const ToolObsState &S = ToolObs[I];
    R.counter("tool." + S.Name + ".events_delivered").add(S.Events);
    R.counter("tool." + S.Name + ".callback_ns").add(S.CallbackNs);
    if (I < Tools.size())
      R.gauge("tool." + S.Name + ".footprint_bytes")
          .noteMax(Tools[I]->memoryFootprintBytes());
  }
}

void EventDispatcher::finish() {
  flushImpl(FlushCause::Finish);
  for (Tool *T : Tools)
    T->onFinish();
  ISP_STATS(publishStats());
}

void isp::replayTrace(const std::vector<Event> &Events, Tool &T,
                      const SymbolTable *Symbols) {
  T.onStart(Symbols);
  for (const Event &E : Events)
    T.handleEvent(E);
  T.onFinish();
}

void isp::replayTraceBatched(const std::vector<Event> &Events, Tool &T,
                             const SymbolTable *Symbols) {
  EventDispatcher Dispatcher;
  Dispatcher.addTool(&T);
  Dispatcher.start(Symbols);
  for (const Event &E : Events)
    Dispatcher.enqueue(E);
  Dispatcher.finish();
}
