//===- instr/Dispatcher.h - Event fan-out and trace replay ------*- C++ -*-===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// EventDispatcher fans substrate events out to any number of registered
/// Tools (and optionally records them into a trace buffer); replayTrace
/// drives a Tool from a recorded trace. Together these decouple analyses
/// from how the event stream was produced — live VM execution, a trace
/// file, or a synthetic generator.
///
//===----------------------------------------------------------------------===//

#ifndef ISPROF_INSTR_DISPATCHER_H
#define ISPROF_INSTR_DISPATCHER_H

#include "instr/Tool.h"
#include "trace/Event.h"

#include <vector>

namespace isp {

class SymbolTable;

/// Fans events out to registered tools. Tools are not owned.
class EventDispatcher {
public:
  /// Registers \p T; tools receive events in registration order.
  void addTool(Tool *T) { Tools.push_back(T); }

  /// Enables recording of every dispatched event.
  void enableRecording() { Recording = true; }

  /// Signals the start of a run. Forwards to Tool::onStart.
  void start(const SymbolTable *Symbols);
  /// Signals the end of a run. Forwards to Tool::onFinish.
  void finish();

  /// Dispatches one event to all tools (and the recording buffer).
  void dispatch(const Event &E) {
    if (Recording)
      Recorded.push_back(E);
    for (Tool *T : Tools)
      T->handleEvent(E);
  }

  /// True when at least one tool is registered or recording is on; the VM
  /// skips event construction entirely otherwise ("native" runs).
  bool isActive() const { return Recording || !Tools.empty(); }

  const std::vector<Event> &recordedEvents() const { return Recorded; }
  std::vector<Event> takeRecordedEvents() { return std::move(Recorded); }

private:
  std::vector<Tool *> Tools;
  std::vector<Event> Recorded;
  bool Recording = false;
};

/// Replays \p Events into \p T, bracketed by onStart/onFinish.
void replayTrace(const std::vector<Event> &Events, Tool &T,
                 const SymbolTable *Symbols = nullptr);

} // namespace isp

#endif // ISPROF_INSTR_DISPATCHER_H
