//===- instr/Dispatcher.h - Event fan-out and trace replay ------*- C++ -*-===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// EventDispatcher fans substrate events out to any number of registered
/// Tools (and optionally records them into a trace buffer); replayTrace
/// drives a Tool from a recorded trace. Together these decouple analyses
/// from how the event stream was produced — live VM execution, a trace
/// file, or a synthetic generator.
///
/// The hot path is enqueue(): events accumulate in a pending batch of
/// packed 16-byte stream words (trace/Event.h) that is delivered to the
/// tools in one handleBatch call per flush, and the dense access/cost
/// stream is *compacted* on the way in. Compaction merges a new event
/// into a buffered one in two cases:
///
///  - a Read or Write whose cells directly continue the *last* buffered
///    event (same kind, same thread, consecutive addresses) extends it
///    into one multi-cell event. Only the literally-last event is a
///    merge target, so a merge never crosses another event: any
///    intervening event — in particular every counter-bump kind —
///    breaks adjacency by itself, and the merged event is
///    observationally identical to the run of single-cell events it
///    replaces for every tool.
///  - a BasicBlock folds into the thread's still-open basic-block event
///    even across interleaved reads and writes (cost events carry only
///    a count, and no tool orders accesses against block costs between
///    two calls). The open block is closed by Call and Return — the
///    points where cost attribution changes — and by every barrier.
///
/// Everything else — thread lifecycle and switches, kernel ops, sync —
/// is a compaction barrier: it closes the open basic-block run (and, by
/// sitting between them in the buffer, breaks access adjacency), but it
/// does *not* force delivery. Batches are delivered only when the
/// fixed-size buffer fills, keeping flush frequency independent of the
/// scheduler's switch rate; in-batch order preserves the exact event
/// sequence, so tools observe barriers at the right position either
/// way.
///
/// In the packed form a logical event occupies one to three words (a
/// rare time-base escape, the main word, an optional follow-on carrying
/// a non-default second argument); the batch flushes when fewer than
/// MaxWordsPerRecord free slots remain, so an enqueue never overruns
/// the buffer. The word-level encoder state resets at every flush, so
/// each delivered batch decodes standalone — and because times are
/// non-decreasing, the concatenated recorded stream decodes with one
/// continuous decoder too.
///
/// The recorded stream is the compacted stream (merged events keep the
/// first event's time, so times stay strictly increasing); replaying it
/// is equivalent by construction.
///
/// **Parallel tool fan-out.** Batches are immutable once flushed, so
/// independent tools can consume them from worker threads
/// (setParallelWorkers / --parallel-tools). Flushed batches are
/// published into a bounded ring of batch slots; each registered tool
/// is assigned one fixed worker and consumes every batch in publication
/// order there, preserving Tool.h's no-reentrancy guarantee. The
/// pending array is double-buffered through the ring — publication
/// swaps the filled buffer into a drained slot and takes that slot's
/// buffer back, so the enqueue hot path keeps filling while workers
/// drain. When every slot is still in flight the publisher blocks
/// (backpressure, bounded memory under slow tools). Tools declare where
/// they may run via Tool::threadAffinity(): DispatchThread tools are
/// delivered synchronously on the enqueue thread (serial fallback),
/// CoScheduled tools share worker 0, AnyWorker tools are spread
/// round-robin. finish() is the join point: it publishes the final
/// partial batch, drains every worker queue, joins the workers, and
/// only then calls onFinish(). Each tool observes exactly the batch
/// sequence serial mode would deliver, so profiles are identical to
/// serial delivery; serial mode itself takes none of these paths.
///
//===----------------------------------------------------------------------===//

#ifndef ISPROF_INSTR_DISPATCHER_H
#define ISPROF_INSTR_DISPATCHER_H

#include "instr/Tool.h"
#include "obs/TraceLog.h"
#include "trace/Event.h"

#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace isp {

class SymbolTable;

/// Fans events out to registered tools. Tools are not owned.
class EventDispatcher {
public:
  /// Default pending-batch capacity in stream words; a flush is forced
  /// when fewer than Event::MaxWordsPerRecord free words remain. Large
  /// enough to amortize delivery, small enough to stay cache-resident.
  /// Tunable per dispatcher via setBatchCapacity (--batch-capacity in
  /// the driver).
  static constexpr size_t DefaultBatchCapacity = 256;
  /// Valid setBatchCapacity range (powers of two only, so the sweep
  /// benchmark and the driver flag share one validation rule).
  static constexpr size_t MinBatchCapacity = 16;
  static constexpr size_t MaxBatchCapacity = 65536;

  /// Initial number of in-flight batch slots in parallel mode. Bounds
  /// the publisher's lead over the slowest worker (backpressure) and
  /// the memory pinned in undrained batches. When backpressure trips
  /// repeatedly the ring grows adaptively, doubling up to MaxRingSlots
  /// (see publishBatch); ringSlots() reports the size in use.
  static constexpr size_t InitialRingSlots = 8;
  static constexpr size_t MaxRingSlots = 64;
  /// Backpressure blocks tolerated since the last resize before the
  /// ring doubles again.
  static constexpr uint64_t RingGrowthThreshold = 4;

  /// Upper bound on --parallel-tools worker counts (sanity, not tuning).
  static constexpr unsigned MaxParallelWorkers = 64;

  /// Why a (non-empty) batch was delivered. Capacity is the steady
  /// state; Explicit covers dispatch()-forced order preservation and
  /// manual flush() calls; Finish is the end-of-run drain. The
  /// distribution is the tuning signal for BatchCapacity (see
  /// ROADMAP's hot-path follow-ups).
  enum class FlushCause : uint8_t { Capacity, Explicit, Finish };
  static constexpr size_t NumFlushCauses = 3;

  /// Consumer of recorded batches, for sinks that stream the compacted
  /// event stream somewhere (e.g. TraceStreamWriter writing chunked
  /// trace files) instead of accumulating it in the Recorded vector.
  /// Batches arrive on the dispatch thread, in delivery order, as
  /// packed word runs that decode standalone (fresh decoder per batch),
  /// exactly as the in-memory recorder would append them — so a sink
  /// observes a byte-identical stream.
  class RecordSink {
  public:
    virtual ~RecordSink() = default;
    virtual void recordBatch(const Event *Words, size_t Count) = 0;
  };

  ~EventDispatcher();

  /// Registers \p T; tools receive events in registration order.
  void addTool(Tool *T) { Tools.push_back(T); }

  /// Streams every recorded batch to \p S instead of (or alongside) the
  /// in-memory Recorded vector. Pass nullptr to detach. The sink is not
  /// owned and must outlive the run.
  void setRecordSink(RecordSink *S) { Sink = S; }

  /// Resizes the pending batch. \p N must be a power of two in
  /// [MinBatchCapacity, MaxBatchCapacity]; returns false (leaving the
  /// capacity unchanged) otherwise or when events are already buffered —
  /// call before the run starts.
  bool setBatchCapacity(size_t N) {
    if (N < MinBatchCapacity || N > MaxBatchCapacity || (N & (N - 1)) != 0 ||
        PendingWords != 0 || ParallelActive)
      return false;
    Capacity = N;
    Pending.reset(new Event[Capacity]);
    return true;
  }
  size_t batchCapacity() const { return Capacity; }

  /// Requests parallel tool fan-out with \p N workers (0 = auto-size to
  /// the eligible tool count, capped at the hardware concurrency). Must
  /// be called before start(). Parallel delivery actually engages only
  /// when at least one registered tool's affinity permits a worker;
  /// otherwise the dispatcher silently stays serial. When never called,
  /// the ISPROF_PARALLEL_TOOLS environment variable (a worker count; 0 =
  /// auto) supplies the request — the CI ThreadSanitizer job uses it to
  /// force parallel delivery through the whole test suite.
  void setParallelWorkers(unsigned N) {
    RequestedWorkers = static_cast<int>(N > MaxParallelWorkers
                                            ? MaxParallelWorkers
                                            : N);
  }

  /// True while worker threads are consuming batches (between start()
  /// and finish() in an engaged parallel run).
  bool parallelActive() const { return ParallelActive; }
  /// Workers used by the current/most recent parallel run (0 = serial).
  unsigned parallelWorkersUsed() const { return WorkerCountUsed; }
  /// Times the publisher blocked because every ring slot was in flight.
  uint64_t backpressureBlocks() const { return BackpressureBlocks; }
  /// Peak number of published-but-undrained batches.
  uint64_t maxQueueDepth() const { return MaxQueueDepth; }
  /// Ring size used by the current/most recent parallel run (the
  /// adaptive growth's final answer; InitialRingSlots if it never grew,
  /// 0 if parallel mode never engaged).
  size_t ringSlots() const { return RingSlotsUsed; }
  /// Times the ring doubled under repeated backpressure.
  uint64_t ringGrowths() const { return RingGrowths; }

  /// Enables recording of every dispatched event. The recorded stream is
  /// the *compacted* stream — replaying it is equivalent by
  /// construction.
  void enableRecording() { Recording = true; }

  /// Signals the start of a run. Forwards to Tool::onStart.
  void start(const SymbolTable *Symbols);
  /// Signals the end of a run. Flushes pending events, then forwards to
  /// Tool::onFinish.
  void finish();

  /// Queues one event for batched delivery, compacting adjacent access
  /// runs and basic-block counts (see the file comment for the exact
  /// rules). The buffer is a fixed array of packed words so the append
  /// is branch-cheap and inlines into the interpreter loop.
  void enqueue(const EventRecord &E) {
    ++EnqueuedEvents;
    switch (E.Kind) {
    case EventKind::Read:
    case EventKind::Write:
      if (HaveLastMain && E.Tid <= Event::MaxInlineTid) {
        Event &M = Pending[LastMain];
        if (M.kind() == E.Kind && M.inlineTid() == E.Tid) {
          bool Follow = M.hasFollow();
          // A nonzero follow-on TimeLow means the buffered event's real
          // tid lives there (spilled >24-bit id): don't merge into it.
          if (!Follow || Pending[LastMain + 1].TimeLow == 0) {
            uint64_t Cells = Follow ? Pending[LastMain + 1].Arg : 1;
            if (M.Arg + Cells == E.Arg0) {
              // The merged event keeps the first event's time; only the
              // cell count grows (growing 1 -> 2 cells materializes the
              // follow-on word right behind the main word).
              if (Follow) {
                Pending[LastMain + 1].Arg = Cells + E.Arg1;
              } else {
                M.Meta |= Event::FollowBit;
                Event &FW = Pending[PendingWords++];
                FW.Meta = Event::SpecialBit | Event::FollowBit;
                FW.TimeLow = 0;
                FW.Arg = Cells + E.Arg1;
              }
              ++AccessMerges;
              if (ISP_UNLIKELY(PendingWords + Event::MaxWordsPerRecord >
                               Capacity))
                flushImpl(FlushCause::Capacity);
              return;
            }
          }
        }
      }
      break;
    case EventKind::BasicBlock:
      if (BbRun.Active && BbRun.Tid == E.Tid) {
        Pending[BbRun.Index].Arg += E.Arg1;
        ++BbFolds;
        return;
      }
      break;
    default:
      // Calls/returns (cost attribution boundaries) and the rare
      // scheduling/kernel/sync kinds: close the open basic-block event.
      // Their presence in the buffer breaks access adjacency by itself.
      BbRun.Active = false;
      break;
    }
    size_t MainOff = 0;
    size_t N = Enc.encode(E, &Pending[PendingWords], MainOff);
    LastMain = static_cast<uint32_t>(PendingWords + MainOff);
    HaveLastMain = true;
    if (E.Kind == EventKind::BasicBlock)
      BbRun = {true, E.Tid, LastMain};
    PendingWords += N;
    ++PendingRecords;
    if (ISP_UNLIKELY(PendingWords + Event::MaxWordsPerRecord > Capacity))
      flushImpl(FlushCause::Capacity);
  }

  /// Delivers the pending batch to every tool (and the recording buffer)
  /// and empties it.
  void flush() { flushImpl(FlushCause::Explicit); }

  /// Dispatches one event to all tools immediately, after flushing any
  /// pending batch so order is preserved. Kept for replay loops and
  /// tests that need per-event delivery: the event goes out as its own
  /// single-event batch (synchronously in serial mode; published like
  /// any other batch in parallel mode, where finish() remains the only
  /// join point).
  void dispatch(const EventRecord &E) {
    if (PendingWords != 0)
      flushImpl(FlushCause::Explicit);
    ++EnqueuedEvents;
    PendingWords = Enc.encode(E, Pending.get());
    PendingRecords = 1;
    flushImpl(FlushCause::Explicit);
  }

  //===--- Block-compiler seam (vm/BlockCompiler.h) ----------------------===//

  /// A pre-compacted run template: the exact words the per-instruction
  /// path would have buffered for one straight-line stretch of a
  /// covered run, had the batch been empty — static bits pre-encoded,
  /// thread id / time base / frame base left to the splice
  /// (trace/Event.h TemplateWord). A run with dynamic (indirect)
  /// accesses is spliced as several such segments with the dynamic
  /// events enqueue()d normally in between; only the first segment
  /// leads with the run's BasicBlock marker (HasBlockHead). Contains no
  /// escape words — the caller must have checked runTimesCompatible()
  /// over the whole run.
  struct TemplateRun {
    const TemplateWord *Words;
    uint32_t NumWords;
    uint32_t NumRecords;      ///< logical events among Words
    uint32_t InternalMerges;  ///< access merges already applied in-run
    uint32_t InternalBbFolds; ///< covered BasicBlock markers folded in-run
    uint64_t EnqueueCount;    ///< events the uncompacted stream held
    /// Time offset (from the run's entry time) of this segment's *last
    /// record's main word* — what the encoder's PrevLow must read after
    /// the splice. Not necessarily the segment's last event time: a
    /// trailing merge keeps the first constituent's time, and merged
    /// events never reach the encoder.
    uint32_t LastMainOff;
    /// True when Words[0] is the run's leading BasicBlock marker (the
    /// first segment); mid-run segments lead with an access record.
    bool HasBlockHead;
  };

  /// True when a run of \p Words more words still fits the current batch
  /// with the post-append slack intact. The block fast path must *not*
  /// flush early to make room: flush timing — and with it the encoder
  /// reset and escape-word placement — is part of the byte-exact
  /// contract, so a run that does not fit falls back to the per-event
  /// path, which rolls the batch at exactly the point it always would.
  bool runFits(size_t Words) const {
    return PendingWords + Words + Event::MaxWordsPerRecord <= Capacity;
  }

  /// True when times [FirstTime, LastTime] extend the batch's time base
  /// without an epoch change — the one case template words cannot
  /// express (the per-event path emits a time-base escape instead).
  bool runTimesCompatible(uint64_t FirstTime, uint64_t LastTime) const {
    return (FirstTime >> 32) == Enc.epoch() &&
           (LastTime >> 32) == Enc.epoch();
  }

  /// Splices a run-template segment into the live batch in one pass:
  /// words are patched (thread id, absolute times, frame base) directly
  /// into the pending buffer, and the two compaction rules are
  /// re-applied at the seam — a leading BasicBlock folds into the
  /// thread's open block run, and (only then — an unfolded marker
  /// breaks adjacency by sitting in the buffer — or always for
  /// mid-run segments, which lead with an access) the segment's first
  /// access may extend the last buffered event. Byte-identical to
  /// enqueueing the uncompacted event sequence; \p T0 is the *run's*
  /// entry event time (TimeOffs are run-relative, so mid-run segments
  /// pass the same T0 as the first). Caller must have called runFits()
  /// and runTimesCompatible() over the whole run.
  void spliceTemplateRun(const TemplateRun &R, ThreadId Tid, uint64_t T0,
                         uint64_t FrameBase) {
    EnqueuedEvents += R.EnqueueCount;
    AccessMerges += R.InternalMerges;
    BbFolds += R.InternalBbFolds;
    const TemplateWord *W = R.Words;
    size_t N = R.NumWords;
    size_t Records = R.NumRecords;
    const uint32_t TidBits = static_cast<uint32_t>(Tid) << Event::TidShift;
    const uint32_t T0Low = static_cast<uint32_t>(T0);
    // Seam rule: the first remaining word (an access) may extend the
    // last buffered event, exactly as enqueue() would have merged it.
    auto SeamMergeFirstAccess = [&] {
      if (N == 0 || !HaveLastMain || Tid > Event::MaxInlineTid)
        return;
      Event &M = Pending[LastMain];
      EventKind K = W[0].Word.kind();
      if ((K != EventKind::Read && K != EventKind::Write) || M.kind() != K ||
          M.inlineTid() != Tid)
        return;
      bool Follow = M.hasFollow();
      // A nonzero follow-on TimeLow means the buffered event's real tid
      // lives there (spilled >24-bit id): don't merge into it.
      if (Follow && Pending[LastMain + 1].TimeLow != 0)
        return;
      uint64_t Cells = Follow ? Pending[LastMain + 1].Arg : 1;
      if (M.Arg + Cells != W[0].Word.Arg + (FrameBase & W[0].FrameMask))
        return;
      bool RunFollow = W[0].Word.hasFollow();
      uint64_t RunCells = RunFollow ? W[1].Word.Arg : 1;
      size_t Skip = RunFollow ? 2 : 1;
      if (Follow) {
        Pending[LastMain + 1].Arg = Cells + RunCells;
      } else {
        M.Meta |= Event::FollowBit;
        Event &FW = Pending[PendingWords++];
        FW.Meta = Event::SpecialBit | Event::FollowBit;
        FW.TimeLow = 0;
        FW.Arg = Cells + RunCells;
      }
      ++AccessMerges;
      W += Skip;
      N -= Skip;
      --Records;
    };
    if (R.HasBlockHead) {
      if (BbRun.Active && BbRun.Tid == Tid) {
        // BasicBlock templates keep the fold count in Arg and are never
        // frame-relative, so the fold needs no patching at all.
        Pending[BbRun.Index].Arg += W[0].Word.Arg;
        ++BbFolds;
        ++W;
        --N;
        --Records;
        SeamMergeFirstAccess();
      } else {
        BbRun = {true, Tid, static_cast<uint32_t>(PendingWords)};
      }
    } else {
      SeamMergeFirstAccess();
    }
    if (N != 0) {
      Event *Dst = &Pending[PendingWords];
      for (size_t I = 0; I != N; ++I) {
        const TemplateWord &TW = W[I];
        Dst[I].Meta = TW.Word.Meta | (TidBits & TW.MainMask);
        Dst[I].TimeLow = TW.Word.TimeLow + ((T0Low + TW.TimeOff) & TW.MainMask);
        Dst[I].Arg = TW.Word.Arg + (FrameBase & TW.FrameMask);
      }
      size_t LastMainAt = Dst[N - 1].isSpecial() ? N - 2 : N - 1;
      LastMain = static_cast<uint32_t>(PendingWords + LastMainAt);
      HaveLastMain = true;
      PendingWords += N;
      // Encoder bookkeeping tracks the last *encoded* main word; when
      // the whole run folded/merged away, nothing was encoded and the
      // per-event path would have left the encoder untouched too.
      Enc.noteAppended(T0 + R.LastMainOff);
    }
    PendingRecords += Records;
    if (ISP_UNLIKELY(PendingWords + Event::MaxWordsPerRecord > Capacity))
      flushImpl(FlushCause::Capacity);
  }

  /// True when at least one tool is registered or recording is on; the VM
  /// skips event construction entirely otherwise ("native" runs).
  bool isActive() const { return Recording || Sink != nullptr || !Tools.empty(); }

  /// Events accepted by enqueue()/dispatch() — i.e. what the substrate
  /// emitted, before compaction.
  uint64_t enqueuedEvents() const { return EnqueuedEvents; }
  /// Events actually delivered to tools after compaction; together with
  /// enqueuedEvents this gives the compaction ratio the benchmark
  /// harnesses report.
  uint64_t deliveredEvents() const { return DeliveredEvents; }

  /// Compaction breakdown. The exact identity
  ///   enqueuedEvents() == deliveredEvents() + accessMerges() + bbFolds()
  /// holds whenever the pending batch is empty (always after finish());
  /// every enqueue either merges into a buffered event or is eventually
  /// delivered. ObsTest asserts this.
  uint64_t accessMerges() const { return AccessMerges; }
  uint64_t bbFolds() const { return BbFolds; }

  /// Number of non-empty batch deliveries attributed to \p Cause.
  uint64_t flushCount(FlushCause Cause) const {
    return Flushes[static_cast<size_t>(Cause)];
  }
  uint64_t totalFlushes() const {
    return Flushes[0] + Flushes[1] + Flushes[2];
  }

  /// The recorded stream as packed words (what sinks and chunk files
  /// hold). Decode with decodeEventStream / EventStreamView.
  const std::vector<Event> &recordedEvents() const { return Recorded; }
  /// Decoded copy of the recorded stream (convenience for consumers
  /// that want wide records; the packed buffer stays intact).
  std::vector<EventRecord> decodedRecordedEvents() const {
    return decodeEventStream(Recorded);
  }
  /// Decodes and returns the recorded stream, releasing the packed
  /// buffer.
  std::vector<EventRecord> takeRecordedEvents() {
    std::vector<EventRecord> Out = decodeEventStream(Recorded);
    Recorded.clear();
    Recorded.shrink_to_fit();
    return Out;
  }

private:
  /// The thread's still-open basic-block event sitting in the batch.
  struct BbRunState {
    bool Active = false;
    ThreadId Tid = 0;
    uint32_t Index = 0;
  };

  /// Per-tool observability: cached name (Tool::name() is virtual),
  /// events consumed, callback wall-time, and a timeline lane.
  /// Populated by start(); parallel to Tools.
  struct ToolObsState {
    std::string Name;
    uint64_t Events = 0;
    uint64_t CallbackNs = 0;
    obs::LaneId Lane = 0;
  };

  /// One slot of the parallel batch ring. The word buffer rotates with
  /// the Pending array: publication swaps the filled Pending buffer in
  /// and takes the slot's drained buffer back, so no batch is ever
  /// copied. Remaining counts the workers that have not yet consumed
  /// the slot; the publisher reuses a slot only at zero.
  struct BatchSlot {
    std::unique_ptr<Event[]> Words;
    size_t Count = 0;
    size_t Records = 0;
    unsigned Remaining = 0;
  };

  /// A worker thread and its fixed tool assignment (indices into Tools).
  struct WorkerState {
    std::thread Thread;
    std::vector<size_t> ToolIdx;
    /// Next batch sequence number this worker will consume. Guarded by
    /// ParMutex.
    uint64_t NextSeq = 0;
    obs::LaneId Lane = 0;
  };

  void resetCompaction() {
    BbRun.Active = false;
    HaveLastMain = false;
  }

  void flushImpl(FlushCause Cause);

  /// Partitions tools by affinity, sizes the worker pool, allocates the
  /// batch ring, and spawns the workers. Leaves ParallelActive false
  /// when no registered tool may run on a worker.
  void startParallel();
  /// Parallel-mode flush body: delivers to DispatchThread tools
  /// synchronously, then publishes the pending buffer into the ring
  /// (blocking while all slots are in flight).
  void publishBatch(FlushCause Cause);
  /// Signals shutdown, drains every worker queue, joins the threads.
  void joinWorkers();
  void workerLoop(WorkerState &W);
  /// Delivers the batch to the tools in \p Idx, with per-tool
  /// observability when enabled. Each index is only ever touched by the
  /// one thread that owns the tool, so the ToolObs tallies stay
  /// single-writer.
  void deliverTo(const std::vector<size_t> &Idx, const Event *Words,
                 size_t Count, size_t Records);

  /// Folds the dispatcher's plain counters (and the per-tool tallies)
  /// into the process-wide obs registry. Called by finish() when stats
  /// collection is on.
  void publishStats() const;

  std::vector<Tool *> Tools;
  /// Pending batch of packed words, sized Capacity (enqueue flushes
  /// when fewer than MaxWordsPerRecord free words remain).
  size_t Capacity = DefaultBatchCapacity;
  std::unique_ptr<Event[]> Pending{new Event[DefaultBatchCapacity]};
  size_t PendingWords = 0;
  /// Logical events among the pending words (delivery accounting).
  size_t PendingRecords = 0;
  /// Word index of the last logical event's main word (merge target);
  /// valid only while HaveLastMain.
  uint32_t LastMain = 0;
  bool HaveLastMain = false;
  /// Word-level encoder time state; resets at every flush so each batch
  /// decodes standalone.
  EventEncoder Enc;
  std::vector<Event> Recorded;
  RecordSink *Sink = nullptr;
  bool Recording = false;
  BbRunState BbRun;
  uint64_t EnqueuedEvents = 0;
  uint64_t DeliveredEvents = 0;
  /// Compaction and flush-cause tallies. Plain (non-atomic) members like
  /// EnqueuedEvents, bumped unconditionally: they sit on paths that
  /// already do comparable work per event, and folding them into the
  /// atomic registry happens once per run in publishStats().
  uint64_t AccessMerges = 0;
  uint64_t BbFolds = 0;
  uint64_t Flushes[NumFlushCauses] = {0, 0, 0};
  std::vector<ToolObsState> ToolObs;
  obs::LaneId DispatcherLane = 0;

  //===--- Parallel fan-out state (untouched in serial mode) -------------===//

  /// -1 = never requested (environment may still force it); >= 0 = the
  /// worker count passed to setParallelWorkers (0 = auto).
  int RequestedWorkers = -1;
  bool ParallelActive = false;
  unsigned WorkerCountUsed = 0;
  std::vector<std::unique_ptr<WorkerState>> Workers;
  /// Tools pinned to the dispatch thread (serial-delivery fallback).
  std::vector<size_t> SerialToolIdx;
  std::vector<BatchSlot> Ring;
  /// Batches published so far; slot = seq % Ring.size(). Guarded by
  /// ParMutex together with ShuttingDown and the slot/worker cursors.
  /// Ring.size() only changes while every slot is drained and the
  /// publisher holds ParMutex (see the adaptive-growth path), so the
  /// modulo mapping never rebinds an in-flight batch.
  uint64_t PublishedSeq = 0;
  bool ShuttingDown = false;
  /// Workers currently parked in a WorkReady wait / publisher parked in
  /// a SlotFree wait. Guarded by ParMutex; lets each side skip the
  /// condvar signal (a futex syscall per batch) when nobody is waiting.
  unsigned IdleWorkers = 0;
  bool PublisherWaiting = false;
  std::mutex ParMutex;
  std::condition_variable WorkReady;
  std::condition_variable SlotFree;
  uint64_t BackpressureBlocks = 0;
  uint64_t BackpressureWaitNs = 0;
  uint64_t MaxQueueDepth = 0;
  /// Adaptive ring sizing: current size survives joinWorkers (so stats
  /// can report it), growth count, and the block tally at the last
  /// resize (growth triggers on RingGrowthThreshold new blocks).
  size_t RingSlotsUsed = 0;
  uint64_t RingGrowths = 0;
  uint64_t BlocksAtLastGrowth = 0;
};

/// Replays \p Events into \p T, bracketed by onStart/onFinish.
void replayTrace(const std::vector<EventRecord> &Events, Tool &T,
                 const SymbolTable *Symbols = nullptr);

/// Replays \p Events into \p T through a batching EventDispatcher —
/// the same delivery path the live VM uses, including event compaction.
/// Results are identical to replayTrace for every tool (the batched-
/// equivalence tests assert this); the batched form is faster on
/// access-dense traces.
void replayTraceBatched(const std::vector<EventRecord> &Events, Tool &T,
                        const SymbolTable *Symbols = nullptr);

} // namespace isp

#endif // ISPROF_INSTR_DISPATCHER_H
