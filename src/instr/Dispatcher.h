//===- instr/Dispatcher.h - Event fan-out and trace replay ------*- C++ -*-===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// EventDispatcher fans substrate events out to any number of registered
/// Tools (and optionally records them into a trace buffer); replayTrace
/// drives a Tool from a recorded trace. Together these decouple analyses
/// from how the event stream was produced — live VM execution, a trace
/// file, or a synthetic generator.
///
/// The hot path is enqueue(): events accumulate in a pending batch that
/// is delivered to the tools in one handleBatch call per flush, and the
/// dense access/cost stream is *compacted* on the way in. Compaction
/// merges a new event into a buffered one in two cases:
///
///  - a Read or Write whose cells directly continue the *last* buffered
///    event (same kind, same thread, consecutive addresses) extends it
///    into one multi-cell event. Only the literally-last event is a
///    merge target, so a merge never crosses another event: any
///    intervening event — in particular every counter-bump kind —
///    breaks adjacency by itself, and the merged event is
///    observationally identical to the run of single-cell events it
///    replaces for every tool.
///  - a BasicBlock folds into the thread's still-open basic-block event
///    even across interleaved reads and writes (cost events carry only
///    a count, and no tool orders accesses against block costs between
///    two calls). The open block is closed by Call and Return — the
///    points where cost attribution changes — and by every barrier.
///
/// Everything else — thread lifecycle and switches, kernel ops, sync —
/// is a compaction barrier: it closes the open basic-block run (and, by
/// sitting between them in the buffer, breaks access adjacency), but it
/// does *not* force delivery. Batches are delivered only when the
/// fixed-size buffer fills, keeping flush frequency independent of the
/// scheduler's switch rate; in-batch order preserves the exact event
/// sequence, so tools observe barriers at the right position either
/// way.
///
/// The recorded stream is the compacted stream (merged events keep the
/// first event's time, so times stay strictly increasing); replaying it
/// is equivalent by construction.
///
//===----------------------------------------------------------------------===//

#ifndef ISPROF_INSTR_DISPATCHER_H
#define ISPROF_INSTR_DISPATCHER_H

#include "instr/Tool.h"
#include "obs/TraceLog.h"
#include "trace/Event.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace isp {

class SymbolTable;

/// Fans events out to registered tools. Tools are not owned.
class EventDispatcher {
public:
  /// Pending-batch capacity; a flush is forced when it fills. Large
  /// enough to amortize delivery, small enough to stay cache-resident.
  static constexpr size_t BatchCapacity = 256;

  /// Why a (non-empty) batch was delivered. Capacity is the steady
  /// state; Explicit covers dispatch()-forced order preservation and
  /// manual flush() calls; Finish is the end-of-run drain. The
  /// distribution is the tuning signal for BatchCapacity (see
  /// ROADMAP's hot-path follow-ups).
  enum class FlushCause : uint8_t { Capacity, Explicit, Finish };
  static constexpr size_t NumFlushCauses = 3;

  /// Registers \p T; tools receive events in registration order.
  void addTool(Tool *T) { Tools.push_back(T); }

  /// Enables recording of every dispatched event. The recorded stream is
  /// the *compacted* stream — replaying it is equivalent by
  /// construction.
  void enableRecording() { Recording = true; }

  /// Signals the start of a run. Forwards to Tool::onStart.
  void start(const SymbolTable *Symbols);
  /// Signals the end of a run. Flushes pending events, then forwards to
  /// Tool::onFinish.
  void finish();

  /// Queues one event for batched delivery, compacting adjacent access
  /// runs and basic-block counts (see the file comment for the exact
  /// rules). The buffer is a fixed array so the append is branch-cheap
  /// and inlines into the interpreter loop.
  void enqueue(const Event &E) {
    ++EnqueuedEvents;
    switch (E.Kind) {
    case EventKind::Read:
    case EventKind::Write:
      if (PendingCount != 0) {
        Event &Last = Pending[PendingCount - 1];
        if (Last.Kind == E.Kind && Last.Tid == E.Tid &&
            Last.Arg0 + Last.Arg1 == E.Arg0) {
          Last.Arg1 += E.Arg1;
          ++AccessMerges;
          return;
        }
      }
      break;
    case EventKind::BasicBlock:
      if (BbRun.Active && BbRun.Tid == E.Tid) {
        Pending[BbRun.Index].Arg1 += E.Arg1;
        ++BbFolds;
        return;
      }
      BbRun = {true, E.Tid, static_cast<uint32_t>(PendingCount)};
      break;
    default:
      // Calls/returns (cost attribution boundaries) and the rare
      // scheduling/kernel/sync kinds: close the open basic-block event.
      // Their presence in the buffer breaks access adjacency by itself.
      BbRun.Active = false;
      break;
    }
    Pending[PendingCount++] = E;
    if (PendingCount == BatchCapacity)
      flushImpl(FlushCause::Capacity);
  }

  /// Delivers the pending batch to every tool (and the recording buffer)
  /// and empties it.
  void flush() { flushImpl(FlushCause::Explicit); }

  /// Dispatches one event to all tools immediately, after flushing any
  /// pending batch so order is preserved. Kept for replay loops and
  /// tests that need per-event delivery.
  void dispatch(const Event &E) {
    if (PendingCount != 0)
      flushImpl(FlushCause::Explicit);
    ++EnqueuedEvents;
    ++DeliveredEvents;
    if (Recording)
      Recorded.push_back(E);
    for (size_t I = 0; I != Tools.size(); ++I) {
      Tools[I]->handleEvent(E);
      if (ISP_UNLIKELY(obs::statsEnabled()) && I < ToolObs.size())
        ++ToolObs[I].Events;
    }
  }

  /// True when at least one tool is registered or recording is on; the VM
  /// skips event construction entirely otherwise ("native" runs).
  bool isActive() const { return Recording || !Tools.empty(); }

  /// Events accepted by enqueue()/dispatch() — i.e. what the substrate
  /// emitted, before compaction.
  uint64_t enqueuedEvents() const { return EnqueuedEvents; }
  /// Events actually delivered to tools after compaction; together with
  /// enqueuedEvents this gives the compaction ratio the benchmark
  /// harnesses report.
  uint64_t deliveredEvents() const { return DeliveredEvents; }

  /// Compaction breakdown. The exact identity
  ///   enqueuedEvents() == deliveredEvents() + accessMerges() + bbFolds()
  /// holds whenever the pending batch is empty (always after finish());
  /// every enqueue either merges into a buffered event or is eventually
  /// delivered. ObsTest asserts this.
  uint64_t accessMerges() const { return AccessMerges; }
  uint64_t bbFolds() const { return BbFolds; }

  /// Number of non-empty batch deliveries attributed to \p Cause.
  uint64_t flushCount(FlushCause Cause) const {
    return Flushes[static_cast<size_t>(Cause)];
  }
  uint64_t totalFlushes() const {
    return Flushes[0] + Flushes[1] + Flushes[2];
  }

  const std::vector<Event> &recordedEvents() const { return Recorded; }
  std::vector<Event> takeRecordedEvents() { return std::move(Recorded); }

private:
  /// The thread's still-open basic-block event sitting in the batch.
  struct BbRunState {
    bool Active = false;
    ThreadId Tid = 0;
    uint32_t Index = 0;
  };

  /// Per-tool observability: cached name (Tool::name() is virtual),
  /// events consumed, callback wall-time, and a timeline lane.
  /// Populated by start(); parallel to Tools.
  struct ToolObsState {
    std::string Name;
    uint64_t Events = 0;
    uint64_t CallbackNs = 0;
    obs::LaneId Lane = 0;
  };

  void resetCompaction() { BbRun.Active = false; }

  void flushImpl(FlushCause Cause);

  /// Folds the dispatcher's plain counters (and the per-tool tallies)
  /// into the process-wide obs registry. Called by finish() when stats
  /// collection is on.
  void publishStats() const;

  std::vector<Tool *> Tools;
  /// Fixed-size pending batch (enqueue flushes when it fills).
  std::unique_ptr<Event[]> Pending{new Event[BatchCapacity]};
  size_t PendingCount = 0;
  std::vector<Event> Recorded;
  bool Recording = false;
  BbRunState BbRun;
  uint64_t EnqueuedEvents = 0;
  uint64_t DeliveredEvents = 0;
  /// Compaction and flush-cause tallies. Plain (non-atomic) members like
  /// EnqueuedEvents, bumped unconditionally: they sit on paths that
  /// already do comparable work per event, and folding them into the
  /// atomic registry happens once per run in publishStats().
  uint64_t AccessMerges = 0;
  uint64_t BbFolds = 0;
  uint64_t Flushes[NumFlushCauses] = {0, 0, 0};
  std::vector<ToolObsState> ToolObs;
  obs::LaneId DispatcherLane = 0;
};

/// Replays \p Events into \p T, bracketed by onStart/onFinish.
void replayTrace(const std::vector<Event> &Events, Tool &T,
                 const SymbolTable *Symbols = nullptr);

/// Replays \p Events into \p T through a batching EventDispatcher —
/// the same delivery path the live VM uses, including event compaction.
/// Results are identical to replayTrace for every tool (the batched-
/// equivalence tests assert this); the batched form is faster on
/// access-dense traces.
void replayTraceBatched(const std::vector<Event> &Events, Tool &T,
                        const SymbolTable *Symbols = nullptr);

} // namespace isp

#endif // ISPROF_INSTR_DISPATCHER_H
