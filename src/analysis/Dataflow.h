//===- analysis/Dataflow.h - Worklist dataflow solver -----------*- C++ -*-===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A generic forward/backward dataflow solver: a worklist fixpoint over
/// a join-semilattice supplied by the problem type. A problem provides:
///
///   using State = ...;             // one lattice element per block edge
///   State boundary() const;        // state at the entry (forward) or
///                                  // exit (backward) boundary
///   State top() const;             // identity of join ("unreached")
///   bool join(State &Into, const State &From) const;
///                                  // Into := Into \/ From; true if changed
///   State transfer(const CFG &G, uint32_t Block, State In) const;
///                                  // flow function of one whole block
///
/// States must be value types; the solver owns one State per block (the
/// input state for forward problems, the output state for backward
/// ones). Termination requires the usual finite-ascending-chain
/// condition on the problem's lattice; every problem in this repo uses
/// finite sets or small integer domains.
///
//===----------------------------------------------------------------------===//

#ifndef ISPROF_ANALYSIS_DATAFLOW_H
#define ISPROF_ANALYSIS_DATAFLOW_H

#include "analysis/CFG.h"

#include <deque>
#include <vector>

namespace isp {
namespace analysis {

enum class Direction { Forward, Backward };

/// Solves \p P over \p G and returns the per-block fixpoint: entry
/// states for forward problems, exit states for backward problems.
/// Unreachable blocks keep top().
template <typename Problem>
std::vector<typename Problem::State>
solveDataflow(const CFG &G, const Problem &P, Direction Dir) {
  using State = typename Problem::State;
  const uint32_t N = G.numBlocks();
  std::vector<State> States(N, P.top());
  if (N == 0)
    return States;

  std::deque<uint32_t> Work;
  std::vector<bool> InWork(N, false);
  auto enqueue = [&](uint32_t B) {
    if (!InWork[B]) {
      InWork[B] = true;
      Work.push_back(B);
    }
  };

  if (Dir == Direction::Forward) {
    States[G.entry()] = P.boundary();
    // Seed in RPO so the first sweep already visits most blocks with
    // their final inputs.
    for (uint32_t B : G.rpo())
      if (G.reachable(B))
        enqueue(B);
    while (!Work.empty()) {
      uint32_t B = Work.front();
      Work.pop_front();
      InWork[B] = false;
      State Out = P.transfer(G, B, States[B]);
      for (uint32_t S : G.block(B).Succs)
        if (P.join(States[S], Out))
          enqueue(S);
    }
  } else {
    // Backward: States holds block *exit* states; seed every exit block
    // (Return terminators) with the boundary, propagate against edges.
    for (uint32_t B = 0; B != N; ++B)
      if (G.block(B).Succs.empty())
        States[B] = P.boundary();
    for (auto It = G.rpo().rbegin(); It != G.rpo().rend(); ++It)
      if (G.reachable(*It))
        enqueue(*It);
    while (!Work.empty()) {
      uint32_t B = Work.front();
      Work.pop_front();
      InWork[B] = false;
      State In = P.transfer(G, B, States[B]);
      for (uint32_t Pred : G.block(B).Preds)
        if (P.join(States[Pred], In))
          enqueue(Pred);
    }
  }
  return States;
}

/// Forward-only variant for problems that refine the flowed state per
/// outgoing edge (branch-condition refinement) and need the target block
/// for join-site policies (widening). The problem additionally provides:
///
///   void refineEdge(const CFG &G, uint32_t Block, size_t SuccIdx,
///                   State &Edge) const;
///                        // sharpen the copy flowing along edge SuccIdx
///                        // (index into block(Block).Succs)
///   bool joinAt(uint32_t Block, State &Into, const State &From) const;
///                        // like join, but told the join point so the
///                        // problem can widen chronically growing states
///
/// Termination with infinite-ascending-chain lattices (intervals) is the
/// problem's responsibility via widening inside joinAt.
template <typename Problem>
std::vector<typename Problem::State>
solveDataflowEdges(const CFG &G, const Problem &P) {
  using State = typename Problem::State;
  const uint32_t N = G.numBlocks();
  std::vector<State> States(N, P.top());
  if (N == 0)
    return States;

  std::deque<uint32_t> Work;
  std::vector<bool> InWork(N, false);
  auto enqueue = [&](uint32_t B) {
    if (!InWork[B]) {
      InWork[B] = true;
      Work.push_back(B);
    }
  };

  States[G.entry()] = P.boundary();
  for (uint32_t B : G.rpo())
    if (G.reachable(B))
      enqueue(B);
  while (!Work.empty()) {
    uint32_t B = Work.front();
    Work.pop_front();
    InWork[B] = false;
    State Out = P.transfer(G, B, States[B]);
    const std::vector<uint32_t> &Succs = G.block(B).Succs;
    for (size_t SI = 0; SI != Succs.size(); ++SI) {
      State Edge = Out;
      P.refineEdge(G, B, SI, Edge);
      if (P.joinAt(Succs[SI], States[Succs[SI]], Edge))
        enqueue(Succs[SI]);
    }
  }
  return States;
}

} // namespace analysis
} // namespace isp

#endif // ISPROF_ANALYSIS_DATAFLOW_H
