//===- analysis/LocksetLint.cpp - Static lockset lint ------------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "analysis/LocksetLint.h"

#include "analysis/CFG.h"
#include "analysis/Dataflow.h"
#include "analysis/Verifier.h"
#include "obs/Obs.h"
#include "support/Format.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <memory>
#include <set>

using namespace isp;
using namespace isp::analysis;

namespace {

/// Must-held locks + a live-thread bound, with an explicit unreached
/// (top) element for the dataflow join.
///
/// Live is an upper bound on how many spawned threads may still be
/// running: 0 means provably none (the single-threaded init prefix and
/// the quiescent window after every spawned thread has been joined),
/// ManyLive means "unknown / unbounded". Each join() builtin credibly
/// retires one thread only while the count is exact — a spawn in a
/// loop, a spawn hidden in a callee, or a saturated count stays at
/// ManyLive forever, so the model only ever under-approximates the
/// quiescent windows (safe: extra accesses get recorded, never fewer).
struct LockState {
  static constexpr unsigned ManyLive = 255;

  bool Reached = false;
  unsigned Live = 0;          ///< upper bound on running spawned threads
  std::set<Addr> Locks;       ///< must-held named locks

  static LockState entry(bool StartsSpawned) {
    return {true, StartsSpawned ? ManyLive : 0u, {}};
  }
  bool join(const LockState &From) {
    if (!From.Reached)
      return false;
    if (!Reached) {
      *this = From;
      return true;
    }
    bool Changed = false;
    if (From.Live > Live) {
      Live = From.Live;
      Changed = true;
    }
    for (auto It = Locks.begin(); It != Locks.end();) {
      if (!From.Locks.count(*It)) {
        It = Locks.erase(It);
        Changed = true;
      } else {
        ++It;
      }
    }
    return Changed;
  }
};

enum class LockOp { None, Acquire, Release };

/// Classifies a CallBuiltin as a lock operation and names its lock when
/// the argument is the direct `LoadGlobal g` compile pattern.
LockOp classifyLockOp(const Function &F, size_t Pc, std::optional<Addr> &Lock) {
  const Instr &In = F.Code[Pc];
  assert(In.Opcode == Op::CallBuiltin);
  Builtin B = static_cast<Builtin>(In.A);
  LockOp Kind = LockOp::None;
  if (B == Builtin::LockAcquire || B == Builtin::SemWait)
    Kind = LockOp::Acquire;
  else if (B == Builtin::LockRelease || B == Builtin::SemPost)
    Kind = LockOp::Release;
  if (Kind == LockOp::None)
    return Kind;
  Lock.reset();
  if (In.B == 1 && Pc > 0 && F.Code[Pc - 1].Opcode == Op::LoadGlobal)
    Lock = static_cast<Addr>(F.Code[Pc - 1].A);
  return Kind;
}

/// One shared-location accessor tally.
struct LocationInfo {
  std::string Name;
  bool IsArray = false;
  std::set<unsigned> Contexts;
  std::set<unsigned> Writers;
  bool HaveLockset = false;
  std::set<Addr> CommonLocks; ///< intersection over post-init accesses
};

class Lint {
public:
  Lint(const Program &Prog, const PointsToResult &PT) : Prog(Prog), PT(PT) {}

  LintReport run();

private:
  struct FnSummary {
    bool MaySpawn = false;
    bool ReleasesUnknown = false;
    std::set<Addr> MayRelease;
  };

  struct Context {
    size_t Root = 0;
    unsigned Multiplicity = 1;
    bool StartsSpawned = false; ///< false only for the main context
  };

  const CFG &cfg(size_t Fn) {
    if (!Cfgs[Fn])
      Cfgs[Fn] = std::make_unique<CFG>(Prog.Functions[Fn]);
    return *Cfgs[Fn];
  }

  void computeSummaries();
  void collectContexts();
  void analyzeContext(unsigned CtxId);
  /// Applies instruction \p Pc to \p S; when \p Record is set, also
  /// tallies accesses and propagates entries into callees.
  void stepInstr(size_t Fn, size_t Pc, LockState &S, unsigned CtxId,
                 bool Record);
  void recordAccess(Addr Key, const std::string &Name, bool IsArray,
                    bool IsWrite, unsigned CtxId, const LockState &S);

  /// Source-level name of scalar cell \p A, or "" when unnamed (raw
  /// addresses reached by arithmetic, array base cells).
  const std::string &scalarName(Addr A) const {
    static const std::string Empty;
    for (const GlobalVarInfo &V : Prog.GlobalVars)
      if (V.Cell == A)
        return V.Name;
    return Empty;
  }

  const Program &Prog;
  const PointsToResult &PT;
  std::vector<std::unique_ptr<CFG>> Cfgs;
  std::vector<FnSummary> Summaries;
  std::vector<Context> Contexts;
  std::map<Addr, LocationInfo> Locations;

  /// Interprocedural state for the context currently being analyzed.
  std::map<size_t, LockState> EntryStates;
  std::vector<size_t> FnWork;
};

void Lint::computeSummaries() {
  Summaries.assign(Prog.Functions.size(), {});
  // Local facts, then transitive closure over direct calls.
  for (size_t FI = 0; FI != Prog.Functions.size(); ++FI) {
    const Function &F = Prog.Functions[FI];
    for (size_t Pc = 0; Pc != F.Code.size(); ++Pc) {
      const Instr &In = F.Code[Pc];
      if (In.Opcode == Op::Spawn)
        Summaries[FI].MaySpawn = true;
      if (In.Opcode == Op::CallBuiltin) {
        std::optional<Addr> Lock;
        if (classifyLockOp(F, Pc, Lock) == LockOp::Release) {
          if (Lock)
            Summaries[FI].MayRelease.insert(*Lock);
          else
            Summaries[FI].ReleasesUnknown = true;
        }
      }
    }
  }
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t FI = 0; FI != Prog.Functions.size(); ++FI) {
      for (const Instr &In : Prog.Functions[FI].Code) {
        if (In.Opcode != Op::Call)
          continue;
        const FnSummary &Callee = Summaries[static_cast<size_t>(In.A)];
        FnSummary &S = Summaries[FI];
        if (Callee.MaySpawn && !S.MaySpawn) {
          S.MaySpawn = true;
          Changed = true;
        }
        if (Callee.ReleasesUnknown && !S.ReleasesUnknown) {
          S.ReleasesUnknown = true;
          Changed = true;
        }
        for (Addr L : Callee.MayRelease)
          Changed |= S.MayRelease.insert(L).second;
      }
    }
  }
}

void Lint::collectContexts() {
  Contexts.push_back({Prog.EntryIndex, 1, false});
  for (size_t FI = 0; FI != Prog.Functions.size(); ++FI) {
    const CFG &G = cfg(FI);
    const Function &F = Prog.Functions[FI];
    for (size_t Pc = 0; Pc != F.Code.size(); ++Pc) {
      if (F.Code[Pc].Opcode != Op::Spawn)
        continue;
      // A spawn on a cyclic path can create arbitrarily many threads;
      // model it as two contexts so "shared between spawned threads"
      // trips even when it is the only spawn site.
      unsigned Mult = G.inCycle(G.blockOf(Pc)) ? 2 : 1;
      Contexts.push_back(
          {static_cast<size_t>(F.Code[Pc].A), Mult, true});
    }
  }
}

void Lint::recordAccess(Addr Key, const std::string &Name, bool IsArray,
                        bool IsWrite, unsigned CtxId, const LockState &S) {
  // Single-threaded windows cannot race: the main context's accesses
  // both before any spawn may have happened and after every spawned
  // thread has provably been joined (join() publishes the joined
  // thread's writes — the happens-before edge).
  if (S.Live == 0 && !Contexts[CtxId].StartsSpawned)
    return;
  LocationInfo &L = Locations[Key];
  if (L.Name.empty())
    L.Name = Name;
  L.IsArray |= IsArray;
  L.Contexts.insert(CtxId);
  if (IsWrite)
    L.Writers.insert(CtxId);
  if (!L.HaveLockset) {
    L.HaveLockset = true;
    L.CommonLocks = S.Locks;
  } else {
    for (auto It = L.CommonLocks.begin(); It != L.CommonLocks.end();)
      It = S.Locks.count(*It) ? std::next(It) : L.CommonLocks.erase(It);
  }
}

void Lint::stepInstr(size_t Fn, size_t Pc, LockState &S, unsigned CtxId,
                     bool Record) {
  const Function &F = Prog.Functions[Fn];
  const Instr &In = F.Code[Pc];
  switch (In.Opcode) {
  case Op::LoadGlobal:
  case Op::StoreGlobal:
    if (Record)
      recordAccess(static_cast<Addr>(In.A),
                   scalarName(static_cast<Addr>(In.A)), false,
                   In.Opcode == Op::StoreGlobal, CtxId, S);
    break;
  case Op::LoadIndirect:
  case Op::StoreIndirect:
    if (Record) {
      if (const SiteFacts *Facts = PT.siteFacts(Fn, Pc)) {
        for (uint32_t Obj : Facts->Objects) {
          const AbstractObject &O = PT.Objects[Obj];
          if (O.K != AbstractObject::Kind::GlobalArray)
            continue;
          const GlobalArrayInfo &Arr = Prog.GlobalArrays[O.ArrayIndex];
          recordAccess(Arr.Base, Arr.Name, true,
                       In.Opcode == Op::StoreIndirect, CtxId, S);
        }
      }
    }
    break;
  case Op::Spawn:
    // A spawn on a cyclic path can run any number of times; an exact
    // count is only credible for straight-line spawns.
    S.Live = cfg(Fn).inCycle(cfg(Fn).blockOf(Pc))
                 ? LockState::ManyLive
                 : std::min(S.Live + 1, LockState::ManyLive);
    break;
  case Op::Call: {
    size_t Callee = static_cast<size_t>(In.A);
    if (Record) {
      LockState CalleeEntry = S;
      auto [It, New] = EntryStates.try_emplace(Callee, CalleeEntry);
      if (New || It->second.join(CalleeEntry))
        FnWork.push_back(Callee);
    }
    const FnSummary &Sum = Summaries[Callee];
    // A callee that may spawn leaves the live count unknowable (it may
    // spawn any number of threads and join none of them).
    if (Sum.MaySpawn)
      S.Live = LockState::ManyLive;
    if (Sum.ReleasesUnknown)
      S.Locks.clear();
    else
      for (Addr L : Sum.MayRelease)
        S.Locks.erase(L);
    break;
  }
  case Op::CallBuiltin: {
    // join(t) retires one spawned thread — but only while the count is
    // exact; a saturated count stays ManyLive forever. The lint does
    // not track which handle a join names, so joining the same thread
    // twice in the exact regime can retire a still-running one — a
    // deliberate heuristic (handles are almost always joined once,
    // straight-line), matching the lint's other unsound trades.
    if (static_cast<Builtin>(In.A) == Builtin::Join && S.Live > 0 &&
        S.Live < LockState::ManyLive)
      S.Live -= 1;
    std::optional<Addr> Lock;
    switch (classifyLockOp(F, Pc, Lock)) {
    case LockOp::Acquire:
      if (Lock)
        S.Locks.insert(*Lock);
      break; // unnamed acquire: protects nothing we can credit
    case LockOp::Release:
      if (Lock)
        S.Locks.erase(*Lock);
      else
        S.Locks.clear(); // unnamed release: trust no held lock
      break;
    case LockOp::None:
      break;
    }
    break;
  }
  default:
    break;
  }
}

void Lint::analyzeContext(unsigned CtxId) {
  const Context &Ctx = Contexts[CtxId];
  EntryStates.clear();
  FnWork.clear();
  EntryStates.emplace(Ctx.Root, LockState::entry(Ctx.StartsSpawned));
  FnWork.push_back(Ctx.Root);

  // Interprocedural fixpoint on entry states, then one recording pass
  // per function once its entry state is final. Across the fixpoint,
  // states only weaken — the lock set shrinks (intersection) and Live
  // only rises (max join) — so re-processing a function after its entry
  // state changed re-records accesses with the weaker state;
  // recordAccess only ever weakens tallies, so recording during the
  // fixpoint is sound.
  struct Problem {
    using State = LockState;
    Lint &L;
    size_t Fn;
    unsigned CtxId;
    LockState Entry;
    State boundary() const { return Entry; }
    State top() const { return {}; }
    bool join(State &Into, const State &From) const {
      return Into.join(From);
    }
    State transfer(const CFG &G, uint32_t Block, State In) const {
      if (!In.Reached)
        return In;
      for (size_t Pc = G.block(Block).Begin; Pc != G.block(Block).End; ++Pc)
        L.stepInstr(Fn, Pc, In, CtxId, /*Record=*/false);
      return In;
    }
  };

  while (!FnWork.empty()) {
    size_t Fn = FnWork.back();
    FnWork.pop_back();
    const CFG &G = cfg(Fn);
    Problem P{*this, Fn, CtxId, EntryStates.at(Fn)};
    std::vector<LockState> BlockEntry =
        solveDataflow(G, P, Direction::Forward);
    for (uint32_t BI = 0; BI != G.numBlocks(); ++BI) {
      LockState S = BlockEntry[BI];
      if (!S.Reached)
        continue;
      for (size_t Pc = G.block(BI).Begin; Pc != G.block(BI).End; ++Pc)
        stepInstr(Fn, Pc, S, CtxId, /*Record=*/true);
    }
  }
}

LintReport Lint::run() {
  Cfgs.resize(Prog.Functions.size());
  std::vector<VerifyError> Structural;
  for (size_t FI = 0; FI != Prog.Functions.size(); ++FI)
    if (!verifyFunctionStructure(Prog, FI, Structural))
      return {}; // lint requires structurally valid bytecode

  computeSummaries();
  collectContexts();
  for (unsigned C = 0; C != Contexts.size(); ++C)
    analyzeContext(C);

  LintReport Report;
  Report.ContextCount = 0;
  for (const Context &C : Contexts)
    Report.ContextCount += C.Multiplicity;

  for (const auto &[Key, Info] : Locations) {
    unsigned Weight = 0;
    for (unsigned Ctx : Info.Contexts)
      Weight += Contexts[Ctx].Multiplicity;
    if (Weight < 2 || Info.Writers.empty() || !Info.CommonLocks.empty())
      continue;
    Report.Warnings.push_back({Key, Info.Name, Info.IsArray, Weight,
                               static_cast<unsigned>(Info.Writers.size())});
  }
  std::sort(Report.Warnings.begin(), Report.Warnings.end(),
            [](const LintWarning &A, const LintWarning &B) {
              return A.Address < B.Address;
            });
  return Report;
}

} // namespace

std::string LintReport::render() const {
  std::string Out = formatString(
      "lint: %llu location(s) with empty candidate lockset\n",
      static_cast<unsigned long long>(Warnings.size()));
  for (const LintWarning &W : Warnings)
    Out += formatString("  possible race at address %llu\n",
                        static_cast<unsigned long long>(W.Address));
  return Out;
}

LintReport isp::analysis::runLocksetLint(const Program &Prog,
                                         const PointsToResult &PT) {
  obs::ScopedTimer Timer(
      obs::statsEnabled() ? &obs::Registry::get().counter("analysis.lint_ns")
                          : nullptr);
  LintReport R = Lint(Prog, PT).run();
  ISP_STATS(obs::Registry::get()
                .counter("analysis.lint_warnings")
                .add(R.Warnings.size()));
  return R;
}

LintReport isp::analysis::runLocksetLint(const Program &Prog) {
  return runLocksetLint(Prog, computePointsTo(Prog));
}
