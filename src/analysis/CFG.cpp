//===- analysis/CFG.cpp - Control-flow graph construction --------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "analysis/CFG.h"

#include <algorithm>
#include <cassert>

using namespace isp;
using namespace isp::analysis;

bool isp::analysis::isJumpOp(Op Opcode) {
  return Opcode == Op::Jump || Opcode == Op::JumpIfFalse ||
         Opcode == Op::JumpIfTrue;
}

bool isp::analysis::isTerminatorOp(Op Opcode) {
  return isJumpOp(Opcode) || Opcode == Op::Return;
}

StackEffect isp::analysis::stackEffect(const Instr &I) {
  switch (I.Opcode) {
  case Op::Nop:
  case Op::BasicBlock:
  case Op::Jump:
    return {0, 0};
  case Op::PushConst:
    return {0, 1};
  case Op::Pop:
  case Op::StoreLocal:
  case Op::StoreGlobal:
  case Op::JumpIfFalse:
  case Op::JumpIfTrue:
  case Op::Return:
    return {1, 0};
  case Op::LoadLocal:
  case Op::LoadGlobal:
    return {0, 1};
  case Op::LoadIndirect:
    return {2, 1};
  case Op::StoreIndirect:
    return {3, 0};
  case Op::AllocaArray:
    return {1, 1};
  case Op::Add:
  case Op::Sub:
  case Op::Mul:
  case Op::Div:
  case Op::Mod:
  case Op::Lt:
  case Op::Le:
  case Op::Gt:
  case Op::Ge:
  case Op::Eq:
  case Op::Ne:
    return {2, 1};
  case Op::Neg:
  case Op::Not:
  case Op::ToBool:
    return {1, 1};
  case Op::Call:
  case Op::CallBuiltin:
  case Op::Spawn:
    // Modeled through to completion: arguments popped, result pushed.
    return {static_cast<int>(I.B), 1};
  }
  return {0, 0};
}

CFG::CFG(const Function &F) : Fn(&F) {
  const std::vector<Instr> &Code = F.Code;
  const size_t N = Code.size();
  BlockIndex.assign(N, 0);
  if (N == 0) {
    Reachable.assign(0, false);
    InCycle.assign(0, false);
    return;
  }

  std::vector<bool> Leader(N, false);
  Leader[0] = true;
  for (size_t I = 0; I != N; ++I) {
    if (isJumpOp(Code[I].Opcode)) {
      assert(Code[I].A >= 0 && static_cast<size_t>(Code[I].A) < N &&
             "CFG requires verified jump targets");
      Leader[static_cast<size_t>(Code[I].A)] = true;
    }
    if (isTerminatorOp(Code[I].Opcode) && I + 1 < N)
      Leader[I + 1] = true;
  }

  for (size_t I = 0; I != N; ++I) {
    if (Leader[I]) {
      BasicBlock B;
      B.Begin = I;
      Blocks.push_back(B);
    }
    BlockIndex[I] = static_cast<uint32_t>(Blocks.size() - 1);
  }
  for (size_t BI = 0; BI != Blocks.size(); ++BI)
    Blocks[BI].End = BI + 1 < Blocks.size() ? Blocks[BI + 1].Begin : N;

  auto addEdge = [this](uint32_t From, uint32_t To) {
    Blocks[From].Succs.push_back(To);
    Blocks[To].Preds.push_back(From);
  };
  for (uint32_t BI = 0; BI != Blocks.size(); ++BI) {
    const Instr &Last = Code[Blocks[BI].End - 1];
    switch (Last.Opcode) {
    case Op::Jump:
      addEdge(BI, BlockIndex[static_cast<size_t>(Last.A)]);
      break;
    case Op::JumpIfFalse:
    case Op::JumpIfTrue:
      addEdge(BI, BlockIndex[static_cast<size_t>(Last.A)]);
      if (Blocks[BI].End < N)
        addEdge(BI, BlockIndex[Blocks[BI].End]);
      break;
    case Op::Return:
      break;
    default:
      // Fall-through into the next leader (only happens when the next
      // instruction is a jump target).
      if (Blocks[BI].End < N)
        addEdge(BI, BlockIndex[Blocks[BI].End]);
      break;
    }
  }

  // Reverse post-order + reachability via iterative DFS.
  Reachable.assign(Blocks.size(), false);
  std::vector<uint32_t> Post;
  Post.reserve(Blocks.size());
  {
    // Stack entries: (block, next-successor index).
    std::vector<std::pair<uint32_t, size_t>> Stack;
    Stack.emplace_back(entry(), 0);
    Reachable[entry()] = true;
    while (!Stack.empty()) {
      auto &[B, SuccIdx] = Stack.back();
      if (SuccIdx < Blocks[B].Succs.size()) {
        uint32_t S = Blocks[B].Succs[SuccIdx++];
        if (!Reachable[S]) {
          Reachable[S] = true;
          Stack.emplace_back(S, 0);
        }
      } else {
        Post.push_back(B);
        Stack.pop_back();
      }
    }
  }
  Rpo.assign(Post.rbegin(), Post.rend());
  for (uint32_t BI = 0; BI != Blocks.size(); ++BI)
    if (!Reachable[BI])
      Rpo.push_back(BI);

  // Cycle membership: a block is in a cycle iff it can reach itself.
  // Tarjan SCC would be linear; the quadratic fallback below is fine for
  // guest-sized routines (tens of blocks) and far simpler. Computed as:
  // block B is cyclic iff some successor of B reaches B.
  InCycle.assign(Blocks.size(), false);
  for (uint32_t BI = 0; BI != Blocks.size(); ++BI) {
    std::vector<bool> Seen(Blocks.size(), false);
    std::vector<uint32_t> Work(Blocks[BI].Succs.begin(),
                               Blocks[BI].Succs.end());
    while (!Work.empty()) {
      uint32_t B = Work.back();
      Work.pop_back();
      if (Seen[B])
        continue;
      Seen[B] = true;
      if (B == BI) {
        InCycle[BI] = true;
        break;
      }
      Work.insert(Work.end(), Blocks[B].Succs.begin(), Blocks[B].Succs.end());
    }
  }
}
