//===- analysis/Range.cpp - Interprocedural value-range analysis ------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "analysis/Range.h"

#include "analysis/CFG.h"
#include "analysis/Dataflow.h"
#include "analysis/Verifier.h"
#include "obs/Obs.h"
#include "support/Format.h"

#include <algorithm>
#include <deque>
#include <optional>

using namespace isp;
using namespace isp::analysis;

//===----------------------------------------------------------------------===//
// Interval arithmetic
//===----------------------------------------------------------------------===//

namespace {

constexpr int64_t NegInf = Interval::NegInf;
constexpr int64_t PosInf = Interval::PosInf;

/// The machine wraps on int64 overflow, so when a computation may wrap
/// nothing is known about the result.
Interval saturatedTop() {
  Interval R = Interval::top();
  R.Saturated = true;
  return R;
}

/// True when either operand carries an infinity sentinel in some bound.
bool anyInfBound(const Interval &A, const Interval &B) {
  return A.Lo == Interval::NegInf || A.Hi == Interval::PosInf ||
         B.Lo == Interval::NegInf || B.Hi == Interval::PosInf;
}

/// Builds an interval from ideal (unbounded) integer bounds. The
/// sentinels equal the int64 extremes, so ideal arithmetic over raw
/// bounds is exact: a bound landing outside [INT64_MIN, INT64_MAX]
/// means some concrete execution may wrap, and the result degrades to
/// top; a bound landing exactly on an extreme becomes the corresponding
/// infinity sentinel, which is a sound reading. Only an overflow of
/// all-finite bounds (\p AnyInf false) is wrap *evidence* and sets
/// Saturated — overflow through a widening infinity is an artifact of
/// the sentinel encoding, and warning on it would flag ordinary
/// widened loop counters (the result interval is top either way).
Interval fromIdeal(__int128 Lo, __int128 Hi, bool Sat, bool AnyInf) {
  if (Lo < static_cast<__int128>(INT64_MIN) ||
      Hi > static_cast<__int128>(INT64_MAX)) {
    if (AnyInf && !Sat)
      return Interval::top();
    return saturatedTop();
  }
  Interval R;
  R.Lo = static_cast<int64_t>(Lo);
  R.Hi = static_cast<int64_t>(Hi);
  R.Saturated = Sat;
  return R;
}

} // namespace

std::string Interval::str() const {
  std::string L = Lo == NegInf ? "-inf" : std::to_string(Lo);
  std::string H = Hi == PosInf ? "+inf" : std::to_string(Hi);
  return "[" + L + "," + H + "]";
}

Interval isp::analysis::intervalJoin(const Interval &A, const Interval &B) {
  Interval R;
  R.Lo = std::min(A.Lo, B.Lo);
  R.Hi = std::max(A.Hi, B.Hi);
  R.Saturated = A.Saturated || B.Saturated;
  return R;
}

Interval isp::analysis::intervalAdd(const Interval &A, const Interval &B) {
  return fromIdeal(static_cast<__int128>(A.Lo) + B.Lo,
                   static_cast<__int128>(A.Hi) + B.Hi,
                   A.Saturated || B.Saturated, anyInfBound(A, B));
}

Interval isp::analysis::intervalNeg(const Interval &A) {
  return fromIdeal(-static_cast<__int128>(A.Hi), -static_cast<__int128>(A.Lo),
                   A.Saturated, anyInfBound(A, A));
}

Interval isp::analysis::intervalSub(const Interval &A, const Interval &B) {
  return fromIdeal(static_cast<__int128>(A.Lo) - B.Hi,
                   static_cast<__int128>(A.Hi) - B.Lo,
                   A.Saturated || B.Saturated, anyInfBound(A, B));
}

Interval isp::analysis::intervalMul(const Interval &A, const Interval &B) {
  __int128 Corners[4] = {static_cast<__int128>(A.Lo) * B.Lo,
                         static_cast<__int128>(A.Lo) * B.Hi,
                         static_cast<__int128>(A.Hi) * B.Lo,
                         static_cast<__int128>(A.Hi) * B.Hi};
  return fromIdeal(*std::min_element(Corners, Corners + 4),
                   *std::max_element(Corners, Corners + 4),
                   A.Saturated || B.Saturated, anyInfBound(A, B));
}

Interval isp::analysis::intervalDiv(const Interval &A, const Interval &B) {
  bool Sat = A.Saturated || B.Saturated;
  Interval R = Interval::top();
  R.Saturated = Sat;
  if (B.isConst() && B.Lo > 0) {
    // Truncating division by a positive constant is monotone, never
    // wraps, and maps the sentinels onto sound bounds.
    R.Lo = A.Lo == NegInf ? NegInf : A.Lo / B.Lo;
    R.Hi = A.Hi == PosInf ? PosInf : A.Hi / B.Lo;
    return R;
  }
  if (B.Lo >= 1) {
    // Dividing by anything >= 1 moves values toward zero.
    R.Lo = std::min<int64_t>(A.Lo, 0);
    R.Hi = std::max<int64_t>(A.Hi, 0);
    return R;
  }
  return R;
}

Interval isp::analysis::intervalMod(const Interval &A, const Interval &B) {
  Interval R = Interval::top();
  R.Saturated = A.Saturated || B.Saturated;
  if (B.Lo < 1)
    return R; // divisor may be <= 0: runtime error or sign surprises
  // The remainder takes the dividend's sign with magnitude below the
  // divisor; it re-normalizes the value, so upstream saturation stops
  // mattering and the flag is cleared.
  R.Saturated = false;
  int64_t Mag = B.Hi == PosInf ? PosInf - 1 : B.Hi - 1;
  if (A.Lo >= 0) {
    R.Lo = 0;
    R.Hi = std::min(A.Hi, Mag);
  } else {
    R.Lo = -Mag;
    R.Hi = Mag;
  }
  return R;
}

//===----------------------------------------------------------------------===//
// Block-local symbolic values (base provenance + branch conditions)
//===----------------------------------------------------------------------===//

namespace {

/// A shallow symbolic value for one operand-stack slot: enough to name
/// indirect-access bases (LoadLocal / LoadGlobal), recognize counting
/// increments (local + constant), and carry comparison operands to the
/// branch that consumes them.
struct SymVal {
  enum class K : uint8_t { Unknown, Const, Local, GlobalCell, AddConst, Cmp };
  K Kind = K::Unknown;
  int64_t C = 0;     ///< Const value / GlobalCell cell / AddConst addend
  uint32_t Slot = 0; ///< Local / AddConst slot
  // Cmp payload: both operands restricted to Local-or-Const.
  Op CmpOp = Op::Nop;
  bool LhsIsLocal = false;
  bool RhsIsLocal = false;
  uint32_t LhsSlot = 0;
  uint32_t RhsSlot = 0;
  int64_t LhsC = 0;
  int64_t RhsC = 0;

  bool readsSlot(uint32_t S) const {
    switch (Kind) {
    case K::Local:
    case K::AddConst:
      return Slot == S;
    case K::Cmp:
      return (LhsIsLocal && LhsSlot == S) || (RhsIsLocal && RhsSlot == S);
    default:
      return false;
    }
  }
};

/// Symbolic operand stack for one basic block. Entry values are
/// Unknown; callers inspect the stack (peek) *before* stepping each
/// instruction.
class SymSim {
public:
  explicit SymSim(size_t EntryDepth) : Stack(EntryDepth) {}

  /// Value at \p FromTop positions below the top (0 = top).
  SymVal peek(size_t FromTop) const {
    return FromTop < Stack.size() ? Stack[Stack.size() - 1 - FromTop]
                                  : SymVal();
  }

  void step(const Instr &I) {
    StackEffect Eff = stackEffect(I);
    std::vector<SymVal> Popped;
    for (int P = 0; P != Eff.Pops && !Stack.empty(); ++P) {
      Popped.push_back(Stack.back());
      Stack.pop_back();
    }
    // Popped[0] is the old top (the rhs of binary operators).
    SymVal Out; // Unknown unless a rule below applies
    switch (I.Opcode) {
    case Op::PushConst:
      Out.Kind = SymVal::K::Const;
      Out.C = I.A;
      break;
    case Op::LoadLocal:
      Out.Kind = SymVal::K::Local;
      Out.Slot = static_cast<uint32_t>(I.A);
      break;
    case Op::LoadGlobal:
      Out.Kind = SymVal::K::GlobalCell;
      Out.C = I.A;
      break;
    case Op::Add:
    case Op::Sub:
      if (Popped.size() == 2)
        Out = foldAdd(Popped[1], Popped[0], I.Opcode == Op::Sub);
      break;
    case Op::Lt:
    case Op::Le:
    case Op::Gt:
    case Op::Ge:
    case Op::Eq:
    case Op::Ne:
      if (Popped.size() == 2)
        Out = foldCmp(I.Opcode, Popped[1], Popped[0]);
      break;
    case Op::StoreLocal:
      // The slot's old value is gone: symbolic references to it die.
      for (SymVal &V : Stack)
        if (V.readsSlot(static_cast<uint32_t>(I.A)))
          V = SymVal();
      break;
    default:
      break;
    }
    for (int P = 0; P != Eff.Pushes; ++P)
      Stack.push_back(Out);
  }

private:
  static SymVal foldAdd(const SymVal &L, const SymVal &R, bool Sub) {
    SymVal Out;
    auto Make = [&Out](uint32_t Slot, int64_t C) {
      Out.Kind = C == 0 ? SymVal::K::Local : SymVal::K::AddConst;
      Out.Slot = Slot;
      Out.C = C;
    };
    if (L.Kind == SymVal::K::Const && R.Kind == SymVal::K::Const) {
      int64_t V = 0;
      bool Ov = Sub ? __builtin_sub_overflow(L.C, R.C, &V)
                    : __builtin_add_overflow(L.C, R.C, &V);
      if (!Ov) {
        Out.Kind = SymVal::K::Const;
        Out.C = V;
      }
      return Out;
    }
    if (L.Kind == SymVal::K::Local && R.Kind == SymVal::K::Const) {
      int64_t C = R.C;
      if (Sub && __builtin_sub_overflow(int64_t(0), R.C, &C))
        return Out;
      Make(L.Slot, C);
      return Out;
    }
    if (!Sub && L.Kind == SymVal::K::Const && R.Kind == SymVal::K::Local)
      Make(R.Slot, L.C);
    return Out;
  }

  static SymVal foldCmp(Op O, const SymVal &L, const SymVal &R) {
    auto Side = [](const SymVal &V, bool &IsLocal, uint32_t &Slot,
                   int64_t &C) {
      if (V.Kind == SymVal::K::Local) {
        IsLocal = true;
        Slot = V.Slot;
        return true;
      }
      if (V.Kind == SymVal::K::Const) {
        IsLocal = false;
        C = V.C;
        return true;
      }
      return false;
    };
    SymVal Cmp;
    Cmp.Kind = SymVal::K::Cmp;
    Cmp.CmpOp = O;
    if (Side(L, Cmp.LhsIsLocal, Cmp.LhsSlot, Cmp.LhsC) &&
        Side(R, Cmp.RhsIsLocal, Cmp.RhsSlot, Cmp.RhsC))
      return Cmp;
    return SymVal();
  }

  std::vector<SymVal> Stack;
};

//===----------------------------------------------------------------------===//
// Interprocedural summaries
//===----------------------------------------------------------------------===//

/// Parameter/return interval summaries shared across the per-function
/// solves, joined over all call/spawn sites with per-bound widening so
/// the interprocedural rounds terminate.
struct InterState {
  struct FnSummary {
    std::vector<Interval> Params;
    std::vector<bool> ParamSeen;
    std::vector<unsigned> ParamGrowth;
    Interval Return;
    bool ReturnSeen = false;
    unsigned ReturnGrowth = 0;
    bool Called = false;
  };
  std::vector<FnSummary> Fns;
  bool Changed = false;

  /// Joins \p V into \p Into; after three growths the still-moving
  /// bound widens to its infinity.
  void joinWiden(Interval &Into, bool &Seen, unsigned &Growth,
                 const Interval &V) {
    if (!Seen) {
      Into = V;
      Seen = true;
      Changed = true;
      return;
    }
    Interval J = intervalJoin(Into, V);
    if (J == Into)
      return;
    if (++Growth > 3) {
      if (J.Lo < Into.Lo)
        J.Lo = NegInf;
      if (J.Hi > Into.Hi)
        J.Hi = PosInf;
    }
    Into = J;
    Changed = true;
  }

  void markCalled(size_t Callee) {
    if (Callee < Fns.size() && !Fns[Callee].Called) {
      Fns[Callee].Called = true;
      Changed = true;
    }
  }

  void joinParam(size_t Callee, size_t Idx, const Interval &V) {
    if (Callee >= Fns.size())
      return;
    FnSummary &S = Fns[Callee];
    if (Idx >= S.Params.size())
      return;
    bool Seen = S.ParamSeen[Idx];
    joinWiden(S.Params[Idx], Seen, S.ParamGrowth[Idx], V);
    S.ParamSeen[Idx] = Seen;
  }
};

//===----------------------------------------------------------------------===//
// Intraprocedural dataflow problem
//===----------------------------------------------------------------------===//

struct RangeState {
  bool Reached = false;
  std::vector<Interval> Locals;
  std::vector<Interval> Stack;
};

class RangeProblem {
public:
  using State = RangeState;

  RangeProblem(const Program &Prog, size_t FnIndex, InterState &Inter)
      : FnIndex(FnIndex), F(Prog.Functions[FnIndex]), Inter(Inter) {
    // Widening landmarks: the function's literal constants (loop bounds
    // live here as comparison operands). Widening jumps to the nearest
    // landmark first and to infinity only past the last one, so a bound
    // chasing a constant-bounded counter lands on the bound instead of
    // degrading to +inf (which no later branch may re-refine).
    for (const Instr &I : F.Code)
      if (I.Opcode == Op::PushConst && I.A != NegInf && I.A != PosInf)
        Landmarks.push_back(I.A);
    std::sort(Landmarks.begin(), Landmarks.end());
    Landmarks.erase(std::unique(Landmarks.begin(), Landmarks.end()),
                    Landmarks.end());
  }

  /// When set, transfer records per-site facts (final sweep only).
  RangeResult *Record = nullptr;
  /// True only during the per-round summary sweep: call/spawn argument
  /// and return intervals fold into InterState once per round at the
  /// intraprocedural fixpoint — folding them on every worklist
  /// re-evaluation would feed the summary widening a growing counter's
  /// intermediate states and widen precise parameters to infinity.
  bool CollectInter = false;
  /// The CFG the current solve runs over; set before each solve (used
  /// by the join-point widening policy).
  const CFG *G = nullptr;

  void resetPerSolve() const {
    JoinCounts.clear();
    BranchSyms.clear();
  }

  State boundary() const {
    State S;
    S.Reached = true;
    S.Locals.assign(F.NumLocals, Interval::top());
    const InterState::FnSummary &Sum = Inter.Fns[FnIndex];
    for (size_t P = 0; P < F.NumParams && P < Sum.Params.size(); ++P)
      S.Locals[P] = Sum.Params[P];
    return S;
  }
  State top() const { return State(); }

  State transfer(const CFG &Graph, uint32_t Block, State In) const {
    if (!In.Reached)
      return In;
    const BasicBlock &B = Graph.block(Block);
    SymSim Syms(In.Stack.size());
    State S = std::move(In);
    for (size_t Pc = B.Begin; Pc != B.End; ++Pc) {
      const Instr &I = F.Code[Pc];
      stepInterval(S, Syms, I, Pc, Block, B);
      Syms.step(I);
    }
    return S;
  }

  void refineEdge(const CFG &Graph, uint32_t Block, size_t SuccIdx,
                  State &Edge) const {
    if (!Edge.Reached)
      return;
    const BasicBlock &B = Graph.block(Block);
    if (B.End == B.Begin)
      return;
    const Instr &Last = F.Code[B.End - 1];
    if (Last.Opcode != Op::JumpIfFalse && Last.Opcode != Op::JumpIfTrue)
      return;
    auto It = BranchSyms.find(Block);
    if (It == BranchSyms.end() || It->second.Kind != SymVal::K::Cmp)
      return;
    // Succs[0] is the jump target, Succs[1] the fallthrough (CFG.cpp
    // edge order). JumpIfFalse jumps when the condition is false.
    bool TruthOnTarget = Last.Opcode == Op::JumpIfTrue;
    bool Truth = SuccIdx == 0 ? TruthOnTarget : !TruthOnTarget;
    applyRefinement(Edge, It->second, Truth);
  }

  bool joinAt(uint32_t Block, State &Into, const State &From) const {
    if (!From.Reached)
      return false;
    if (!Into.Reached) {
      Into = From;
      return true;
    }
    if (Into.Locals.size() != From.Locals.size() ||
        Into.Stack.size() != From.Stack.size()) {
      // Cannot happen on depth-verified functions; degrade safely.
      bool Changed = false;
      for (Interval &V : Into.Locals)
        if (!V.isTop()) {
          V = Interval::top();
          Changed = true;
        }
      return Changed;
    }
    // Widening only at multi-predecessor blocks inside cycles keeps
    // single-predecessor loop bodies at their branch-refined precision;
    // every reachable cycle contains such a block (its header has an
    // entry edge plus a back edge), so chains still stabilize. Only
    // *changing* joins count toward the trigger — the worklist calls
    // joinAt many times with already-subsumed states.
    bool WidenHere = G != nullptr && G->block(Block).Preds.size() >= 2 &&
                     G->inCycle(Block);
    bool Widen = WidenHere && JoinCounts[Block] > 3;
    bool Changed = false;
    auto JoinOne = [this, Widen, &Changed](Interval &IntoV,
                                           const Interval &FromV) {
      Interval J = intervalJoin(IntoV, FromV);
      if (J == IntoV)
        return;
      if (Widen) {
        // Each widened change moves to a strictly larger landmark or an
        // infinity, so chains stay bounded by the landmark count.
        if (J.Lo < IntoV.Lo) {
          auto It = std::upper_bound(Landmarks.begin(), Landmarks.end(),
                                     J.Lo);
          J.Lo = It != Landmarks.begin() ? *std::prev(It) : NegInf;
        }
        if (J.Hi > IntoV.Hi) {
          auto It = std::lower_bound(Landmarks.begin(), Landmarks.end(),
                                     J.Hi);
          J.Hi = It != Landmarks.end() ? *It : PosInf;
        }
        if (J == IntoV)
          return;
      }
      IntoV = J;
      Changed = true;
    };
    for (size_t L = 0; L != Into.Locals.size(); ++L)
      JoinOne(Into.Locals[L], From.Locals[L]);
    for (size_t P = 0; P != Into.Stack.size(); ++P)
      JoinOne(Into.Stack[P], From.Stack[P]);
    if (Changed && WidenHere)
      ++JoinCounts[Block];
    return Changed;
  }

private:
  static Interval popI(State &S) {
    if (S.Stack.empty())
      return Interval::top();
    Interval V = S.Stack.back();
    S.Stack.pop_back();
    return V;
  }

  void stepInterval(State &S, const SymSim &Syms, const Instr &I, size_t Pc,
                    uint32_t Block, const BasicBlock &B) const {
    switch (I.Opcode) {
    case Op::Nop:
    case Op::BasicBlock:
    case Op::Jump:
      break;
    case Op::PushConst:
      S.Stack.push_back(I.A == NegInf || I.A == PosInf
                            ? Interval::top()
                            : Interval::constant(I.A));
      break;
    case Op::Pop:
      popI(S);
      break;
    case Op::LoadLocal:
      S.Stack.push_back(static_cast<size_t>(I.A) < S.Locals.size()
                            ? S.Locals[static_cast<size_t>(I.A)]
                            : Interval::top());
      break;
    case Op::StoreLocal: {
      Interval V = popI(S);
      if (static_cast<size_t>(I.A) < S.Locals.size())
        S.Locals[static_cast<size_t>(I.A)] = V;
      break;
    }
    case Op::LoadGlobal:
      S.Stack.push_back(Interval::top());
      break;
    case Op::StoreGlobal:
      popI(S);
      break;
    case Op::LoadIndirect: {
      Interval Index = popI(S);
      popI(S); // base
      if (Record != nullptr)
        recordIndirect(Pc, Index, /*IsStore=*/false, Syms.peek(1));
      S.Stack.push_back(Interval::top());
      break;
    }
    case Op::StoreIndirect: {
      popI(S); // value
      Interval Index = popI(S);
      popI(S); // base
      if (Record != nullptr)
        recordIndirect(Pc, Index, /*IsStore=*/true, Syms.peek(2));
      break;
    }
    case Op::AllocaArray: {
      Interval Size = popI(S);
      if (Record != nullptr)
        Record->Allocas[{FnIndex, Pc}] = AllocaSiteRange{Size};
      S.Stack.push_back(Interval::top());
      break;
    }
    case Op::Add:
    case Op::Sub:
    case Op::Mul:
    case Op::Div:
    case Op::Mod: {
      Interval R = popI(S);
      Interval L = popI(S);
      Interval Out;
      switch (I.Opcode) {
      case Op::Add:
        Out = intervalAdd(L, R);
        break;
      case Op::Sub:
        Out = intervalSub(L, R);
        break;
      case Op::Mul:
        Out = intervalMul(L, R);
        break;
      case Op::Div:
        Out = intervalDiv(L, R);
        break;
      default:
        Out = intervalMod(L, R);
        break;
      }
      S.Stack.push_back(Out);
      break;
    }
    case Op::Lt:
    case Op::Le:
    case Op::Gt:
    case Op::Ge:
    case Op::Eq:
    case Op::Ne:
    case Op::Not:
    case Op::ToBool:
      for (int P = 0; P != stackEffect(I).Pops; ++P)
        popI(S);
      S.Stack.push_back(Interval::range(0, 1));
      break;
    case Op::Neg:
      S.Stack.push_back(intervalNeg(popI(S)));
      break;
    case Op::JumpIfFalse:
    case Op::JumpIfTrue:
      if (Pc == B.End - 1)
        BranchSyms[Block] = Syms.peek(0);
      popI(S);
      break;
    case Op::Call:
    case Op::Spawn: {
      size_t Callee = static_cast<size_t>(I.A);
      unsigned NumArgs = static_cast<unsigned>(I.B);
      if (CollectInter)
        Inter.markCalled(Callee);
      // Arguments pop in reverse: the top of the stack is the last.
      for (unsigned A = 0; A != NumArgs; ++A) {
        Interval Arg = popI(S);
        if (CollectInter)
          Inter.joinParam(Callee, NumArgs - 1 - A, Arg);
      }
      if (I.Opcode == Op::Spawn)
        S.Stack.push_back(Interval::range(0, PosInf)); // thread id
      else if (Callee < Inter.Fns.size() && Inter.Fns[Callee].ReturnSeen)
        S.Stack.push_back(Inter.Fns[Callee].Return);
      else
        S.Stack.push_back(Interval::top());
      break;
    }
    case Op::CallBuiltin: {
      unsigned NumArgs = static_cast<unsigned>(I.B);
      Builtin Bi = static_cast<Builtin>(I.A);
      std::vector<Interval> Args(NumArgs, Interval::top());
      for (unsigned A = 0; A != NumArgs; ++A)
        Args[NumArgs - 1 - A] = popI(S); // Args[i] = i-th argument
      if (Record != nullptr &&
          (Bi == Builtin::SysRead || Bi == Builtin::SysWrite) &&
          NumArgs == 3) {
        KernelWriteSite KW;
        SymVal Buf = Syms.peek(1); // n on top, then buf, then fd
        if (Buf.Kind == SymVal::K::GlobalCell)
          KW.BufGlobalCell = Buf.C;
        KW.Count = Args[2];
        Record->KernelWrites[{FnIndex, Pc}] = KW;
      }
      S.Stack.push_back(builtinResult(Bi, Args));
      break;
    }
    case Op::Return: {
      Interval V = popI(S);
      if (CollectInter) {
        InterState::FnSummary &Sum = Inter.Fns[FnIndex];
        Inter.joinWiden(Sum.Return, Sum.ReturnSeen, Sum.ReturnGrowth, V);
      }
      break;
    }
    }
  }

  static Interval builtinResult(Builtin Bi,
                                const std::vector<Interval> &Args) {
    switch (Bi) {
    case Builtin::Print:
      return Args.empty() ? Interval::top() : Args[0];
    case Builtin::Store:
      return Args.size() == 2 ? Args[1] : Interval::top();
    case Builtin::SysRead:
    case Builtin::SysWrite:
      return Args.size() == 3 ? Args[2] : Interval::top();
    case Builtin::Rand: {
      // rand(b) draws from [0, b) for b >= 1 and returns 0 otherwise,
      // so the result is always non-negative.
      Interval R = Interval::range(0, PosInf);
      if (Args.size() == 1 && Args[0].Lo >= 1 && Args[0].Hi != PosInf)
        R.Hi = Args[0].Hi - 1;
      return R;
    }
    case Builtin::Free:
    case Builtin::SemWait:
    case Builtin::SemPost:
    case Builtin::LockAcquire:
    case Builtin::LockRelease:
    case Builtin::Yield:
      return Interval::constant(0);
    case Builtin::SemCreate:
    case Builtin::LockCreate:
    case Builtin::ThreadId:
    case Builtin::Alloc:
      return Interval::range(0, PosInf);
    case Builtin::Join:
    case Builtin::Load:
      break;
    }
    return Interval::top();
  }

  void recordIndirect(size_t Pc, const Interval &Index, bool IsStore,
                      const SymVal &BaseSym) const {
    IndirectSiteRange Site;
    Site.Index = Index;
    Site.IsStore = IsStore;
    if (BaseSym.Kind == SymVal::K::Local)
      Site.BaseLocalSlot = BaseSym.Slot;
    else if (BaseSym.Kind == SymVal::K::GlobalCell)
      Site.BaseGlobalCell = BaseSym.C;
    Record->Sites[{FnIndex, Pc}] = Site;
  }

  void applyRefinement(State &Edge, const SymVal &Cmp, bool Truth) const {
    Op O = Cmp.CmpOp;
    if (!Truth) {
      switch (O) {
      case Op::Lt:
        O = Op::Ge;
        break;
      case Op::Le:
        O = Op::Gt;
        break;
      case Op::Gt:
        O = Op::Le;
        break;
      case Op::Ge:
        O = Op::Lt;
        break;
      case Op::Eq:
        O = Op::Ne;
        break;
      case Op::Ne:
        O = Op::Eq;
        break;
      default:
        return;
      }
    }
    auto Get = [&Edge](bool IsLocal, uint32_t Slot, int64_t C) {
      if (IsLocal)
        return Slot < Edge.Locals.size() ? Edge.Locals[Slot]
                                         : Interval::top();
      return Interval::constant(C);
    };
    Interval L = Get(Cmp.LhsIsLocal, Cmp.LhsSlot, Cmp.LhsC);
    Interval R = Get(Cmp.RhsIsLocal, Cmp.RhsSlot, Cmp.RhsC);
    Interval NewL = L;
    Interval NewR = R;
    // Bounds refined here hold for the *concrete* (possibly wrapped)
    // value, because the branch tested exactly that value — clamping is
    // sound even on saturated inputs.
    switch (O) {
    case Op::Lt: // L < R
      if (R.Hi != PosInf)
        NewL.Hi = std::min(NewL.Hi, R.Hi - 1);
      if (L.Lo != NegInf)
        NewR.Lo = std::max(NewR.Lo, L.Lo + 1);
      break;
    case Op::Le:
      NewL.Hi = std::min(NewL.Hi, R.Hi);
      NewR.Lo = std::max(NewR.Lo, L.Lo);
      break;
    case Op::Gt: // L > R
      if (R.Lo != NegInf)
        NewL.Lo = std::max(NewL.Lo, R.Lo + 1);
      if (L.Hi != PosInf)
        NewR.Hi = std::min(NewR.Hi, L.Hi - 1);
      break;
    case Op::Ge:
      NewL.Lo = std::max(NewL.Lo, R.Lo);
      NewR.Hi = std::min(NewR.Hi, L.Hi);
      break;
    case Op::Eq:
      NewL.Lo = std::max(L.Lo, R.Lo);
      NewL.Hi = std::min(L.Hi, R.Hi);
      NewL.Saturated = L.Saturated || R.Saturated;
      NewR = NewL;
      break;
    case Op::Ne:
      return; // no interval refinement from disequality
    default:
      return;
    }
    if (NewL.Lo > NewL.Hi || NewR.Lo > NewR.Hi) {
      Edge.Reached = false; // branch provably never taken
      return;
    }
    if (Cmp.LhsIsLocal && Cmp.LhsSlot < Edge.Locals.size())
      Edge.Locals[Cmp.LhsSlot] = NewL;
    if (Cmp.RhsIsLocal && Cmp.RhsSlot < Edge.Locals.size())
      Edge.Locals[Cmp.RhsSlot] = NewR;
  }

  size_t FnIndex;
  const Function &F;
  InterState &Inter;
  std::vector<int64_t> Landmarks;
  mutable std::map<uint32_t, unsigned> JoinCounts;
  mutable std::map<uint32_t, SymVal> BranchSyms;
};

} // namespace

//===----------------------------------------------------------------------===//
// Interprocedural driver
//===----------------------------------------------------------------------===//

RangeResult isp::analysis::computeRanges(const Program &Prog) {
  obs::ScopedTimer Timer(
      obs::statsEnabled()
          ? &obs::Registry::get().counter("analysis.range_ns")
          : nullptr);
  RangeResult Result;

  const size_t NumFns = Prog.Functions.size();
  std::vector<bool> Analyzable(NumFns, false);
  std::deque<std::optional<CFG>> Graphs;
  for (size_t Fn = 0; Fn != NumFns; ++Fn) {
    Graphs.emplace_back();
    std::vector<VerifyError> Scratch;
    if (!verifyFunctionStructure(Prog, Fn, Scratch))
      continue;
    Graphs[Fn].emplace(Prog.Functions[Fn]);
    if (!computeBlockEntryDepths(*Graphs[Fn], Fn, nullptr)) {
      Graphs[Fn].reset();
      continue;
    }
    Analyzable[Fn] = true;
  }

  InterState Inter;
  Inter.Fns.resize(NumFns);
  for (size_t Fn = 0; Fn != NumFns; ++Fn) {
    InterState::FnSummary &S = Inter.Fns[Fn];
    size_t NumParams = Prog.Functions[Fn].NumParams;
    S.Params.assign(NumParams, Interval::top());
    S.ParamSeen.assign(NumParams, false);
    S.ParamGrowth.assign(NumParams, 0);
  }
  if (Prog.EntryIndex < NumFns)
    Inter.Fns[Prog.EntryIndex].Called = true;

  std::deque<RangeProblem> Problems;
  for (size_t Fn = 0; Fn != NumFns; ++Fn)
    Problems.emplace_back(Prog, Fn, Inter);

  // Interprocedural rounds terminate because summaries only grow and
  // every bound widens to an infinity after three growths; the cap is a
  // pure safety net.
  for (unsigned Round = 0; Round != 1000; ++Round) {
    Inter.Changed = false;
    for (size_t Fn = 0; Fn != NumFns; ++Fn) {
      if (!Analyzable[Fn] || !Inter.Fns[Fn].Called)
        continue;
      Problems[Fn].G = &*Graphs[Fn];
      Problems[Fn].resetPerSolve();
      std::vector<RangeState> States =
          solveDataflowEdges(*Graphs[Fn], Problems[Fn]);
      // Summary sweep at the fixpoint: each call site contributes its
      // stabilized argument intervals exactly once per round.
      Problems[Fn].CollectInter = true;
      for (uint32_t B = 0; B != Graphs[Fn]->numBlocks(); ++B)
        if (States[B].Reached)
          (void)Problems[Fn].transfer(*Graphs[Fn], B, States[B]);
      Problems[Fn].CollectInter = false;
    }
    if (!Inter.Changed)
      break;
  }

  // Recording sweep over the stabilized summaries: re-solve, then run
  // one recording transfer per reachable block at the fixpoint so each
  // site's recorded interval is deterministic.
  for (size_t Fn = 0; Fn != NumFns; ++Fn) {
    if (!Analyzable[Fn] || !Inter.Fns[Fn].Called)
      continue;
    Problems[Fn].G = &*Graphs[Fn];
    Problems[Fn].resetPerSolve();
    std::vector<RangeState> States =
        solveDataflowEdges(*Graphs[Fn], Problems[Fn]);
    Problems[Fn].Record = &Result;
    for (uint32_t B = 0; B != Graphs[Fn]->numBlocks(); ++B)
      if (States[B].Reached)
        (void)Problems[Fn].transfer(*Graphs[Fn], B, States[B]);
    Problems[Fn].Record = nullptr;
  }

  Result.Functions.resize(NumFns);
  for (size_t Fn = 0; Fn != NumFns; ++Fn) {
    Result.Functions[Fn].Params = Inter.Fns[Fn].Params;
    Result.Functions[Fn].Return =
        Inter.Fns[Fn].ReturnSeen ? Inter.Fns[Fn].Return : Interval::top();
    Result.Functions[Fn].Called = Inter.Fns[Fn].Called;
  }

  for (const auto &Entry : Result.Sites)
    if (!Entry.second.Index.isTop())
      ++Result.Facts;
  for (const auto &Entry : Result.Allocas)
    if (!Entry.second.Size.isTop())
      ++Result.Facts;
  for (const FunctionRanges &FR : Result.Functions) {
    for (const Interval &P : FR.Params)
      if (!P.isTop())
        ++Result.Facts;
    if (!FR.Return.isTop())
      ++Result.Facts;
  }
  ISP_STATS({
    obs::Registry::get().counter("analysis.range_facts").add(Result.Facts);
  });
  return Result;
}

//===----------------------------------------------------------------------===//
// Covered-read certificate
//===----------------------------------------------------------------------===//

namespace {

/// Dom[B][I] = block I dominates block B. Unreachable blocks keep the
/// all-true initialization (vacuous: they never execute).
std::vector<std::vector<bool>> computeDominators(const CFG &G) {
  const uint32_t N = G.numBlocks();
  std::vector<std::vector<bool>> Dom(N, std::vector<bool>(N, true));
  if (N == 0)
    return Dom;
  Dom[G.entry()].assign(N, false);
  Dom[G.entry()][G.entry()] = true;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (uint32_t B : G.rpo()) {
      if (B == G.entry() || !G.reachable(B))
        continue;
      std::vector<bool> New(N, true);
      bool AnyPred = false;
      for (uint32_t P : G.block(B).Preds) {
        if (!G.reachable(P))
          continue;
        AnyPred = true;
        for (uint32_t I = 0; I != N; ++I)
          New[I] = New[I] && Dom[P][I];
      }
      if (!AnyPred)
        New.assign(N, false);
      New[B] = true;
      if (New != Dom[B]) {
        Dom[B] = std::move(New);
        Changed = true;
      }
    }
  }
  return Dom;
}

/// Finds the exit blocks of certified counting fill loops over frame
/// array \p A: loops of the shape
///
///   iv = 0; while (iv < Cells) { a[iv] = ...; iv = iv + 1; }
///
/// where the head's branch condition is exactly Lt(iv, Cells), the body
/// is a single block that stores through the array base at index iv and
/// increments iv once, and every other edge into the head delivers
/// iv = 0. At such a loop's exit every cell of [0, Cells) has been
/// written, so any dominated in-bounds re-read is redundant.
std::vector<uint32_t> certifiedFillExits(const Function &F, const CFG &G,
                                         const std::vector<int> &Depths,
                                         const std::vector<std::vector<bool>> &Dom,
                                         const FrameArray &A) {
  std::vector<uint32_t> Exits;
  for (uint32_t H = 0; H != G.numBlocks(); ++H) {
    if (!G.reachable(H))
      continue;
    const BasicBlock &HB = G.block(H);
    if (HB.End == HB.Begin ||
        F.Code[HB.End - 1].Opcode != Op::JumpIfFalse ||
        HB.Succs.size() != 2)
      continue;
    uint32_t E = HB.Succs[0]; // jump target: loop exit (condition false)
    uint32_t B = HB.Succs[1]; // fallthrough: loop body
    if (E == B || E == H || B == H)
      continue;

    // The head must compute exactly iv < Cells, with no store to iv on
    // the way (SymSim invalidates comparison operands on StoreLocal, so
    // an intervening store breaks the Cmp shape).
    SymSim HeadSyms(static_cast<size_t>(Depths[H]));
    SymVal Branch;
    for (size_t Pc = HB.Begin; Pc != HB.End; ++Pc) {
      if (Pc == HB.End - 1)
        Branch = HeadSyms.peek(0);
      HeadSyms.step(F.Code[Pc]);
    }
    if (Branch.Kind != SymVal::K::Cmp || Branch.CmpOp != Op::Lt ||
        !Branch.LhsIsLocal || Branch.RhsIsLocal ||
        Branch.RhsC != static_cast<int64_t>(A.Cells))
      continue;
    uint32_t Iv = Branch.LhsSlot;
    if (Iv == A.Slot)
      continue;
    bool HeadStoresIv = false;
    for (size_t Pc = HB.Begin; Pc != HB.End; ++Pc)
      if (F.Code[Pc].Opcode == Op::StoreLocal &&
          static_cast<uint32_t>(F.Code[Pc].A) == Iv)
        HeadStoresIv = true;
    if (HeadStoresIv)
      continue;

    // The body must be a single self-contained block: H -> B -> H.
    const BasicBlock &BB = G.block(B);
    if (BB.Preds.size() != 1 || BB.Preds[0] != H || BB.Succs.size() != 1 ||
        BB.Succs[0] != H)
      continue;

    // Scan the body: exactly one increment of iv (iv = iv + 1), exactly
    // one store through the array base and its index must be iv, and
    // the store must precede the increment (so iteration k writes cell
    // k, not k+1).
    SymSim BodySyms(static_cast<size_t>(Depths[B]));
    size_t IncPos = SIZE_MAX;
    size_t StorePos = SIZE_MAX;
    size_t IvStores = 0;
    size_t BaseStores = 0;
    bool Bad = false;
    for (size_t Pc = BB.Begin; Pc != BB.End && !Bad; ++Pc) {
      const Instr &I = F.Code[Pc];
      if (I.Opcode == Op::StoreLocal && static_cast<uint32_t>(I.A) == Iv) {
        ++IvStores;
        IncPos = Pc;
        SymVal V = BodySyms.peek(0);
        if (!(V.Kind == SymVal::K::AddConst && V.Slot == Iv && V.C == 1))
          Bad = true;
      }
      if (I.Opcode == Op::StoreIndirect) {
        SymVal Base = BodySyms.peek(2);
        SymVal Index = BodySyms.peek(1);
        if (Base.Kind == SymVal::K::Local && Base.Slot == A.Slot) {
          ++BaseStores;
          StorePos = Pc;
          if (!(Index.Kind == SymVal::K::Local && Index.Slot == Iv))
            Bad = true;
        }
      }
      BodySyms.step(I);
    }
    if (Bad || IvStores != 1 || BaseStores != 1 || StorePos > IncPos)
      continue;

    // The exit must not be reachable around the loop test.
    if (G.block(E).Preds.size() != 1 || G.block(E).Preds[0] != H)
      continue;

    // Every non-body edge into the head must deliver iv = 0: the
    // predecessor's last store to iv stores literal 0.
    bool EntryOk = true;
    bool AnyEntry = false;
    for (uint32_t P : HB.Preds) {
      if (P == B)
        continue;
      if (!G.reachable(P))
        continue;
      AnyEntry = true;
      const BasicBlock &PB = G.block(P);
      SymSim PredSyms(static_cast<size_t>(Depths[P]));
      bool SawZeroStore = false;
      bool LastIsZero = false;
      for (size_t Pc = PB.Begin; Pc != PB.End; ++Pc) {
        const Instr &I = F.Code[Pc];
        if (I.Opcode == Op::StoreLocal &&
            static_cast<uint32_t>(I.A) == Iv) {
          SymVal V = PredSyms.peek(0);
          SawZeroStore = true;
          LastIsZero = V.Kind == SymVal::K::Const && V.C == 0;
        }
        PredSyms.step(I);
      }
      if (!SawZeroStore || !LastIsZero) {
        EntryOk = false;
        break;
      }
    }
    if (!EntryOk || !AnyEntry)
      continue;

    // The array must already exist when the loop runs.
    uint32_t DefBlock = G.blockOf(A.AllocaPc + 1);
    if (!Dom[H][DefBlock])
      continue;

    Exits.push_back(E);
  }
  return Exits;
}

/// Program-wide containment: no guest or kernel store anywhere in the
/// live (called) program can land outside tracked object storage — the
/// precondition for *any* covered-read certificate. Loads matter too:
/// a wild read of a candidate cell would update its read timestamp,
/// making the suppressed event observable.
bool allAccessesContained(const Program &Prog, const PointsToResult &PT,
                          const RangeResult &RR) {
  constexpr int64_t MaxGlobalIndex = int64_t(1) << 22;
  for (size_t Fn = 0; Fn != Prog.Functions.size(); ++Fn) {
    if (Fn >= RR.Functions.size() || !RR.Functions[Fn].Called)
      continue; // never executes
    const Function &F = Prog.Functions[Fn];
    for (size_t Pc = 0; Pc != F.Code.size(); ++Pc) {
      const Instr &I = F.Code[Pc];
      switch (I.Opcode) {
      case Op::CallBuiltin: {
        Builtin Bi = static_cast<Builtin>(I.A);
        if (Bi == Builtin::Load || Bi == Builtin::Store)
          return false; // arbitrary-address access
        if (Bi != Builtin::SysRead && Bi != Builtin::SysWrite)
          break;
        // The kernel side reads or writes buf[0 .. n-1]: buf must be
        // the immutable base cell of a global array and n bounded by
        // its extent.
        auto KW = RR.KernelWrites.find({Fn, Pc});
        if (KW == RR.KernelWrites.end() ||
            KW->second.BufGlobalCell < 0)
          return false;
        const GlobalArrayInfo *GA = nullptr;
        for (const GlobalArrayInfo &Cand : Prog.GlobalArrays)
          if (static_cast<int64_t>(Cand.Cell) == KW->second.BufGlobalCell)
            GA = &Cand;
        if (GA == nullptr)
          return false;
        const Interval &N = KW->second.Count;
        if (N.Hi == PosInf || N.Hi < 0 ||
            static_cast<uint64_t>(N.Hi) > GA->Cells)
          return false;
        // The base cell must keep its loader-installed value.
        for (size_t G2 = 0; G2 != Prog.Functions.size(); ++G2) {
          if (G2 >= RR.Functions.size() || !RR.Functions[G2].Called)
            continue;
          for (const Instr &I2 : Prog.Functions[G2].Code)
            if (I2.Opcode == Op::StoreGlobal &&
                I2.A == KW->second.BufGlobalCell)
              return false;
        }
        break;
      }
      case Op::LoadIndirect:
      case Op::StoreIndirect: {
        const IndirectSiteRange *Site = RR.site(Fn, Pc);
        const SiteFacts *Facts = PT.siteFacts(Fn, Pc);
        if (Site == nullptr || Facts == nullptr || !Facts->BaseKnown ||
            Facts->Objects.empty())
          return false;
        bool AllGlobal = true;
        bool AllKnown = true;
        uint64_t MinCells = UINT64_MAX;
        for (uint32_t Obj : Facts->Objects) {
          const AbstractObject &O = PT.Objects[Obj];
          AllGlobal &= O.K == AbstractObject::Kind::GlobalArray;
          if (O.Cells == 0)
            AllKnown = false;
          else
            MinCells = std::min(MinCells, O.Cells);
        }
        const Interval &Index = Site->Index;
        // Global-array bases with a bounded non-huge index cannot reach
        // the stack region (it starts far above the globals, and
        // negative indices wrap past the top of the address space), so
        // exact in-bounds is not required for them.
        bool GlobalContained =
            AllGlobal && Index.Hi != PosInf && Index.Hi <= MaxGlobalIndex;
        bool ExactContained = AllKnown && Index.within(MinCells);
        if (!GlobalContained && !ExactContained)
          return false;
        break;
      }
      default:
        break;
      }
    }
  }
  return true;
}

} // namespace

std::vector<std::pair<size_t, size_t>>
isp::analysis::coveredIndirectReads(const Program &Prog,
                                    const PointsToResult &PT,
                                    const EscapeResult &Esc,
                                    const RangeResult &RR) {
  std::vector<std::pair<size_t, size_t>> Covered;
  if (Esc.NeverEscaping.empty() || PT.HasWildStore)
    return Covered;
  if (!allAccessesContained(Prog, PT, RR))
    return Covered;

  for (const FrameArray &A : Esc.NeverEscaping) {
    if (A.Fn >= RR.Functions.size() || !RR.Functions[A.Fn].Called)
      continue;
    const Function &F = Prog.Functions[A.Fn];
    std::vector<VerifyError> Scratch;
    if (!verifyFunctionStructure(Prog, A.Fn, Scratch))
      continue;
    CFG G(F);
    std::optional<std::vector<int>> Depths =
        computeBlockEntryDepths(G, A.Fn, nullptr);
    if (!Depths)
      continue;
    // One activation = one array instance; a re-executed alloca would
    // make "the" array ambiguous within an activation.
    if (G.inCycle(G.blockOf(A.AllocaPc)))
      continue;
    std::vector<std::vector<bool>> Dom = computeDominators(G);
    std::vector<uint32_t> Exits = certifiedFillExits(F, G, *Depths, Dom, A);
    if (Exits.empty())
      continue;

    for (const auto &Entry : RR.Sites) {
      if (Entry.first.first != A.Fn || Entry.second.IsStore)
        continue;
      if (Entry.second.BaseLocalSlot != static_cast<int64_t>(A.Slot))
        continue;
      if (!Entry.second.Index.within(A.Cells))
        continue;
      uint32_t ReadBlock = G.blockOf(Entry.first.second);
      if (!G.reachable(ReadBlock))
        continue;
      bool Dominated = false;
      for (uint32_t E : Exits)
        Dominated |= Dom[ReadBlock][E];
      if (Dominated)
        Covered.push_back(Entry.first);
    }
  }
  return Covered;
}

//===----------------------------------------------------------------------===//
// Bounds lint
//===----------------------------------------------------------------------===//

std::string BoundsReport::render(const Program &Prog) const {
  std::string Out = formatString(
      "bounds lint: %llu warning(s)\n",
      static_cast<unsigned long long>(Warnings.size()));
  for (const BoundsWarning &W : Warnings) {
    const char *Name = W.Fn < Prog.Functions.size()
                           ? Prog.Functions[W.Fn].Name.c_str()
                           : "?";
    Out += formatString("  %s+%llu: %s\n", Name,
                        static_cast<unsigned long long>(W.Pc),
                        W.Message.c_str());
  }
  return Out;
}

namespace {

/// Human name for the object an index warning is about.
std::string objectName(const Program &Prog, const PointsToResult &PT,
                       const SiteFacts &Facts) {
  if (Facts.Objects.size() == 1) {
    const AbstractObject &O = PT.Objects[Facts.Objects[0]];
    switch (O.K) {
    case AbstractObject::Kind::GlobalArray:
      if (O.ArrayIndex < Prog.GlobalArrays.size())
        return "array '" + Prog.GlobalArrays[O.ArrayIndex].Name + "'";
      return "global array";
    case AbstractObject::Kind::AllocaSite:
      return "frame array";
    case AbstractObject::Kind::HeapSite:
      return "heap block";
    }
  }
  return "target object";
}

} // namespace

BoundsReport isp::analysis::runBoundsLint(const Program &Prog,
                                          const PointsToResult &PT,
                                          const RangeResult &RR) {
  obs::ScopedTimer Timer(
      obs::statsEnabled()
          ? &obs::Registry::get().counter("analysis.bounds_lint_ns")
          : nullptr);
  BoundsReport Report;
  for (const auto &Entry : RR.Sites) {
    const IndirectSiteRange &Site = Entry.second;
    const SiteFacts *Facts = PT.siteFacts(Entry.first.first,
                                          Entry.first.second);
    if (Facts == nullptr || !Facts->BaseKnown || Facts->Objects.empty())
      continue;
    const Interval &Index = Site.Index;
    const char *Access = Site.IsStore ? "store" : "load";
    if (Index.Hi < 0) {
      Report.Warnings.push_back(
          {Entry.first.first, Entry.first.second,
           formatString("%s index %s is always negative", Access,
                        Index.str().c_str())});
      continue;
    }
    bool AllKnown = true;
    uint64_t MaxExtent = 0;
    for (uint32_t Obj : Facts->Objects) {
      const AbstractObject &O = PT.Objects[Obj];
      if (O.Cells == 0)
        AllKnown = false;
      else
        MaxExtent = std::max(MaxExtent, O.Cells);
    }
    if (AllKnown && Index.Lo >= 0 &&
        static_cast<uint64_t>(Index.Lo) >= MaxExtent) {
      Report.Warnings.push_back(
          {Entry.first.first, Entry.first.second,
           formatString("%s index %s is out of bounds for %s (%llu cells)",
                        Access, Index.str().c_str(),
                        objectName(Prog, PT, *Facts).c_str(),
                        static_cast<unsigned long long>(MaxExtent))});
      continue;
    }
    if (Index.Saturated && !Index.isTop())
      Report.Warnings.push_back(
          {Entry.first.first, Entry.first.second,
           formatString("possible index overflow: %s index computation "
                        "may wrap (bounds %s)",
                        Access, Index.str().c_str())});
  }
  for (const auto &Entry : RR.Allocas) {
    const Interval &Size = Entry.second.Size;
    if (Size.Hi < 0)
      Report.Warnings.push_back(
          {Entry.first.first, Entry.first.second,
           formatString("alloca size %s is always negative",
                        Size.str().c_str())});
  }
  std::sort(Report.Warnings.begin(), Report.Warnings.end(),
            [](const BoundsWarning &L, const BoundsWarning &R) {
              return L.Fn != R.Fn ? L.Fn < R.Fn : L.Pc < R.Pc;
            });
  ISP_STATS({
    obs::Registry::get()
        .counter("analysis.bounds_warnings")
        .add(Report.Warnings.size());
  });
  return Report;
}

BoundsReport isp::analysis::runBoundsLint(const Program &Prog) {
  PointsToResult PT = computePointsTo(Prog);
  RangeResult RR = computeRanges(Prog);
  return runBoundsLint(Prog, PT, RR);
}

//===----------------------------------------------------------------------===//
// Static growth estimator
//===----------------------------------------------------------------------===//

namespace {

constexpr unsigned MaxDegree = 3;

} // namespace

std::map<RoutineId, unsigned> isp::analysis::estimateGrowth(
    const Program &Prog) {
  const size_t NumFns = Prog.Functions.size();
  std::vector<unsigned> LoopDepth(NumFns, 0); // max loop nesting per fn
  // Call sites: (caller, callee, loop depth at the site). Spawn is
  // excluded: the callee's work runs on another thread and does not
  // multiply the caller's own cost.
  std::vector<std::vector<std::pair<size_t, unsigned>>> Calls(NumFns);
  std::vector<bool> Analyzable(NumFns, false);

  for (size_t Fn = 0; Fn != NumFns; ++Fn) {
    const Function &F = Prog.Functions[Fn];
    std::vector<VerifyError> Scratch;
    if (!verifyFunctionStructure(Prog, Fn, Scratch))
      continue;
    Analyzable[Fn] = true;
    CFG G(F);
    std::vector<std::vector<bool>> Dom = computeDominators(G);
    // Natural loops: for each back edge U -> H (H dominates U), the
    // body is H plus everything that reaches U without passing H.
    std::vector<unsigned> Depth(G.numBlocks(), 0);
    for (uint32_t U = 0; U != G.numBlocks(); ++U) {
      if (!G.reachable(U))
        continue;
      std::vector<uint32_t> Heads;
      for (uint32_t S : G.block(U).Succs)
        if (Dom[U][S] &&
            std::find(Heads.begin(), Heads.end(), S) == Heads.end())
          Heads.push_back(S);
      for (uint32_t H : Heads) {
        std::vector<bool> InBody(G.numBlocks(), false);
        InBody[H] = true;
        std::vector<uint32_t> Stack;
        if (!InBody[U]) {
          InBody[U] = true;
          Stack.push_back(U);
        }
        while (!Stack.empty()) {
          uint32_t B = Stack.back();
          Stack.pop_back();
          for (uint32_t P : G.block(B).Preds)
            if (G.reachable(P) && !InBody[P]) {
              InBody[P] = true;
              Stack.push_back(P);
            }
        }
        for (uint32_t B = 0; B != G.numBlocks(); ++B)
          if (InBody[B])
            ++Depth[B];
      }
    }
    for (uint32_t B = 0; B != G.numBlocks(); ++B) {
      if (!G.reachable(B))
        continue;
      LoopDepth[Fn] = std::max(LoopDepth[Fn], std::min(Depth[B], MaxDegree));
      const BasicBlock &BB = G.block(B);
      for (size_t Pc = BB.Begin; Pc != BB.End; ++Pc)
        if (F.Code[Pc].Opcode == Op::Call) {
          size_t Callee = static_cast<size_t>(F.Code[Pc].A);
          if (Callee < NumFns)
            Calls[Fn].push_back({Callee, std::min(Depth[B], MaxDegree)});
        }
    }
  }

  // Transitive closure over call edges to detect (mutual) recursion.
  std::vector<std::vector<bool>> Reach(NumFns,
                                       std::vector<bool>(NumFns, false));
  for (size_t Fn = 0; Fn != NumFns; ++Fn)
    for (const auto &C : Calls[Fn])
      Reach[Fn][C.first] = true;
  for (size_t K = 0; K != NumFns; ++K)
    for (size_t I = 0; I != NumFns; ++I) {
      if (!Reach[I][K])
        continue;
      for (size_t J = 0; J != NumFns; ++J)
        Reach[I][J] = Reach[I][J] || Reach[K][J];
    }

  // Monotone fixpoint: degree = max(own depth, site depth + callee
  // degree), capped. Unanalyzable or recursive functions pin the cap
  // (their iteration structure is invisible to the loop analysis).
  std::vector<unsigned> Degree(NumFns, 0);
  for (size_t Fn = 0; Fn != NumFns; ++Fn)
    Degree[Fn] = !Analyzable[Fn] || Reach[Fn][Fn] ? MaxDegree : LoopDepth[Fn];
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t Fn = 0; Fn != NumFns; ++Fn) {
      if (!Analyzable[Fn] || Reach[Fn][Fn])
        continue;
      unsigned D = LoopDepth[Fn];
      for (const auto &C : Calls[Fn])
        D = std::max(D, std::min(C.second + Degree[C.first], MaxDegree));
      if (D > Degree[Fn]) {
        Degree[Fn] = D;
        Changed = true;
      }
    }
  }

  std::map<RoutineId, unsigned> Result;
  for (size_t Fn = 0; Fn != NumFns; ++Fn) {
    RoutineId Id = Prog.Functions[Fn].Id;
    auto It = Result.find(Id);
    if (It == Result.end())
      Result[Id] = Degree[Fn];
    else
      It->second = std::max(It->second, Degree[Fn]);
  }
  return Result;
}

const char *isp::analysis::growthClassName(unsigned Degree) {
  switch (Degree) {
  case 0:
    return "O(1)";
  case 1:
    return "O(n)";
  case 2:
    return "O(n^2)";
  default:
    return "O(n^3+)";
  }
}

bool isp::analysis::growthAgrees(unsigned Degree, double Alpha) {
  return Alpha <= static_cast<double>(Degree) + 0.5;
}
