//===- analysis/Verifier.h - Bytecode verifier ------------------*- C++ -*-===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Static verification of a compiled (and possibly optimized or
/// corrupted) Program. A program that verifies clean cannot trip any
/// interpreter assertion or undefined behavior: every residual failure
/// mode (division by zero, wild *runtime-computed* addresses, deadlock,
/// instruction-budget exhaustion) is a defined Machine::runtimeError or
/// scheduler diagnostic. Checks, in order:
///
///  Phase 0 (per instruction, structural):
///   - opcode in range; operand fields unused by the opcode are zero
///     (quiet marks B=1 are allowed only on the five access opcodes)
///   - jump targets inside the function body; code does not fall off
///     the end (last instruction is Jump or Return)
///   - LoadLocal/StoreLocal slots < NumLocals; LoadGlobal/StoreGlobal
///     addresses inside the globals region declared by the Program
///   - Call/Spawn callee index valid, argument count == callee's
///     NumParams; CallBuiltin id valid, argument count == arity
///   - NumParams <= NumLocals; entry function exists and takes no
///     parameters
///
///  Phase 1 (CFG + dataflow, type/stack discipline):
///   - operand-stack depth is consistent at every join point (the
///     forward dataflow in Verifier.cpp), never underflows, and is
///     >= 1 at every Return — the "type discipline" of this uni-typed
///     stack machine is exactly depth discipline
///
//======---------------------------------------------------------------===//

#ifndef ISPROF_ANALYSIS_VERIFIER_H
#define ISPROF_ANALYSIS_VERIFIER_H

#include "analysis/CFG.h"
#include "vm/Bytecode.h"

#include <optional>
#include <string>
#include <vector>

namespace isp {
namespace analysis {

struct VerifyError {
  size_t FunctionIndex = 0;
  size_t InstrIndex = 0; ///< ~size_t(0) for function-level errors
  std::string Message;
};

struct VerifyResult {
  std::vector<VerifyError> Errors;
  bool ok() const { return Errors.empty(); }
  /// Renders "fn[i] at pc: message" lines for diagnostics.
  std::string render(const Program &Prog) const;
};

/// Verifies every function of \p Prog plus program-level invariants.
/// Folds analysis.verifier_failures / analysis.cfg_blocks into the obs
/// registry when stats are enabled.
VerifyResult verifyProgram(const Program &Prog);

/// Phase-0 structural check of one function (no CFG needed). Appends to
/// \p Errors; returns true when the function is structurally sound and
/// CFG construction is safe.
bool verifyFunctionStructure(const Program &Prog, size_t FnIndex,
                             std::vector<VerifyError> &Errors);

/// Operand-stack depth at each block entry of \p G, solved by forward
/// dataflow with an equality join. Returns nullopt (appending to
/// \p Errors, when given) on inconsistent join depths, stack underflow,
/// or a Return with an empty stack. Unreachable blocks report depth 0.
/// Precondition: verifyFunctionStructure passed.
std::optional<std::vector<int>>
computeBlockEntryDepths(const CFG &G, size_t FnIndex,
                        std::vector<VerifyError> *Errors);

} // namespace analysis
} // namespace isp

#endif // ISPROF_ANALYSIS_VERIFIER_H
