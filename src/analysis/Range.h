//===- analysis/Range.h - Interprocedural value-range analysis --*- C++ -*-===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interprocedural integer interval analysis over compiled guest
/// programs, plus the three clients built on it:
///
///  - per-site index/size intervals for every LoadIndirect /
///    StoreIndirect / AllocaArray (consumed by the optimizer's
///    range-based quiet pass, the bounds lint, and the verifier's
///    constant-foldable index rejection),
///  - the covered-read certificate: LoadIndirect sites provably
///    re-reading cells a dominating counting loop already wrote into a
///    never-escaping frame array (Escape.h) — safe to quiet-mark,
///  - a static growth estimator: per-routine loop-nesting degree
///    propagated over the call graph, cross-checked by report/collect
///    against the measured log-log alpha.
///
/// Lattice: intervals [Lo, Hi] over int64 with INT64_MIN/INT64_MAX as
/// -inf/+inf sentinels; arithmetic saturates, and saturation of a
/// *finite* computation sets a sticky Saturated flag (the "possible
/// index overflow" lint signal — sentinel/widening infinities do not
/// set it). The intraprocedural solve is a forward dataflow over
/// (locals, operand stack) with branch refinement on comparison-fed
/// conditional jumps; widening (after 3 joins, changed bound to
/// infinity) applies only at multi-predecessor blocks inside cycles,
/// which every reachable cycle must contain, so the infinite lattice
/// still reaches a fixpoint. Interprocedurally, parameter and return
/// intervals are joined over all call/spawn sites to a bounded-round
/// fixpoint (everything still moving at the cap widens to top).
///
//===----------------------------------------------------------------------===//

#ifndef ISPROF_ANALYSIS_RANGE_H
#define ISPROF_ANALYSIS_RANGE_H

#include "analysis/Escape.h"
#include "analysis/PointsTo.h"
#include "vm/Bytecode.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace isp {
namespace analysis {

/// An integer interval with infinity sentinels and a sticky overflow
/// flag. The default-constructed value is top ([-inf, +inf]).
struct Interval {
  static constexpr int64_t NegInf = INT64_MIN;
  static constexpr int64_t PosInf = INT64_MAX;

  int64_t Lo = NegInf;
  int64_t Hi = PosInf;
  /// A finite computation feeding this value overflowed int64 and was
  /// saturated — the result is still a sound bound, but the concrete
  /// machine value may have wrapped.
  bool Saturated = false;

  static Interval top() { return {}; }
  static Interval constant(int64_t V) { return {V, V, false}; }
  static Interval range(int64_t Lo, int64_t Hi) { return {Lo, Hi, false}; }

  bool isTop() const { return Lo == NegInf && Hi == PosInf; }
  bool isConst() const { return Lo == Hi && Lo != NegInf && Lo != PosInf; }
  bool contains(int64_t V) const { return Lo <= V && V <= Hi; }
  /// Entirely inside [0, Cells)?
  bool within(uint64_t Cells) const {
    return Lo >= 0 && Hi != PosInf &&
           static_cast<uint64_t>(Hi) < Cells;
  }
  bool operator==(const Interval &O) const {
    return Lo == O.Lo && Hi == O.Hi && Saturated == O.Saturated;
  }

  /// Renders "[lo,hi]" with "-inf"/"+inf" for the sentinels.
  std::string str() const;
};

Interval intervalJoin(const Interval &A, const Interval &B);
Interval intervalAdd(const Interval &A, const Interval &B);
Interval intervalSub(const Interval &A, const Interval &B);
Interval intervalMul(const Interval &A, const Interval &B);
Interval intervalDiv(const Interval &A, const Interval &B);
Interval intervalMod(const Interval &A, const Interval &B);
Interval intervalNeg(const Interval &A);

/// Facts at one LoadIndirect/StoreIndirect site.
struct IndirectSiteRange {
  Interval Index;
  bool IsStore = false;
  /// Syntactic base provenance within the block, when the base operand
  /// is directly a LoadLocal (slot) or LoadGlobal (cell); -1 otherwise.
  /// Points-to (PointsTo.h) supplies the object-level provenance.
  int64_t BaseLocalSlot = -1;
  int64_t BaseGlobalCell = -1;
};

/// Facts at one AllocaArray site.
struct AllocaSiteRange {
  Interval Size;
};

/// Facts at one sysread(fd, buf, n) site — the only builtin whose
/// kernel side *writes* guest memory; the covered-read certificate must
/// bound where those writes can land.
struct KernelWriteSite {
  int64_t BufGlobalCell = -1; ///< buf operand when a direct LoadGlobal
  Interval Count;
};

/// Stabilized per-function parameter/return intervals.
struct FunctionRanges {
  std::vector<Interval> Params;
  Interval Return;
  /// False when no call/spawn site for the function was seen (its
  /// params stayed unconstrained-by-evidence and were left top).
  bool Called = false;
};

struct RangeResult {
  /// Keyed by (function index, instruction index).
  std::map<std::pair<size_t, size_t>, IndirectSiteRange> Sites;
  std::map<std::pair<size_t, size_t>, AllocaSiteRange> Allocas;
  std::map<std::pair<size_t, size_t>, KernelWriteSite> KernelWrites;
  std::vector<FunctionRanges> Functions;
  /// Non-trivial intervals recorded — exported as analysis.range_facts.
  uint64_t Facts = 0;

  const IndirectSiteRange *site(size_t Fn, size_t Pc) const {
    auto It = Sites.find({Fn, Pc});
    return It == Sites.end() ? nullptr : &It->second;
  }
  const AllocaSiteRange *allocaSite(size_t Fn, size_t Pc) const {
    auto It = Allocas.find({Fn, Pc});
    return It == Allocas.end() ? nullptr : &It->second;
  }
};

/// Runs the interprocedural solve. Functions that fail the structural
/// or stack-depth checks are skipped (their sites stay unrecorded =
/// unknown). Folds analysis.range_facts and the analysis.range_ns pass
/// timer into the obs registry when stats are enabled.
RangeResult computeRanges(const Program &Prog);

/// The covered-read certificate: returns the (fn, pc) LoadIndirect
/// sites whose event is provably redundant on *every* execution — the
/// accessed cell belongs to a never-escaping frame array, a dominating
/// counting loop wrote all of [0, Cells) before the read, the read's
/// index stays within [0, Cells), and no store anywhere in the program
/// (guest or kernel) can touch the array's storage or the owning
/// frame's slots from outside. Such reads are safe to quiet-mark: the
/// suppressed event cannot change any tool's observable state (see
/// DESIGN.md, "Value ranges & escape").
std::vector<std::pair<size_t, size_t>>
coveredIndirectReads(const Program &Prog, const PointsToResult &PT,
                     const EscapeResult &Esc, const RangeResult &RR);

/// One bounds-lint warning.
struct BoundsWarning {
  size_t Fn = 0;
  size_t Pc = 0;
  std::string Message;
};

/// Same rendering shape as the lockset lint ("lint: N location(s)..."),
/// so CI can artifact both reports the same way:
///   "bounds lint: N warning(s)\n"
///   "  fn+pc: message\n" ...
struct BoundsReport {
  std::vector<BoundsWarning> Warnings;
  std::string render(const Program &Prog) const;
};

/// Flags provably-out-of-range indices (index interval disjoint from
/// [0, extent) of every object the base may point to) and possible
/// index overflow (saturated finite arithmetic feeding an index).
/// Definite-only by design: intervals that merely *may* exceed the
/// extent stay silent, so lint-clean programs stay lint-clean. Folds
/// analysis.bounds_warnings and a pass timer into the obs registry.
BoundsReport runBoundsLint(const Program &Prog, const PointsToResult &PT,
                           const RangeResult &RR);
/// Convenience overload that computes points-to and ranges itself.
BoundsReport runBoundsLint(const Program &Prog);

/// Static growth degree per routine: maximum loop-nesting depth, with
/// call sites contributing depth-at-site + callee degree over a
/// call-graph fixpoint. Spawn sites contribute nothing (the callee's
/// cost runs on another thread). Degrees cap at 3 (recursion pins the
/// cap). Keyed by Function::Id, i.e. the profiler's RoutineId.
std::map<RoutineId, unsigned> estimateGrowth(const Program &Prog);

/// "O(1)" / "O(n)" / "O(n^2)" / "O(n^3+)" for a static degree.
const char *growthClassName(unsigned Degree);

/// The agreement rule reports use: a measured log-log alpha agrees with
/// a static degree when alpha <= degree + 0.5 (the static degree is an
/// upper bound on polynomial growth in the routine's input size).
bool growthAgrees(unsigned Degree, double Alpha);

} // namespace analysis
} // namespace isp

#endif // ISPROF_ANALYSIS_RANGE_H
