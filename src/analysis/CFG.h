//===- analysis/CFG.h - Control-flow graph over guest bytecode --*- C++ -*-===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Basic-block decomposition of one compiled routine. Leaders are the
/// function entry, every jump target, and every instruction following a
/// terminator (Jump/JumpIfFalse/JumpIfTrue/Return). Calls, builtins and
/// spawns do *not* end a block — control returns to the next
/// instruction — even though they do close a quiet-marking window; the
/// two notions are deliberately distinct (see Optimizer.cpp).
///
/// Construction requires structurally valid code: every jump operand in
/// [0, Code.size()). The verifier checks that precondition on untrusted
/// input before any CFG-based analysis runs (Verifier.cpp, phase 1).
///
//===----------------------------------------------------------------------===//

#ifndef ISPROF_ANALYSIS_CFG_H
#define ISPROF_ANALYSIS_CFG_H

#include "vm/Bytecode.h"

#include <cstdint>
#include <vector>

namespace isp {
namespace analysis {

struct BasicBlock {
  /// Instruction range [Begin, End) in Function::Code.
  size_t Begin = 0;
  size_t End = 0;
  std::vector<uint32_t> Succs;
  std::vector<uint32_t> Preds;
};

class CFG {
public:
  /// Builds the CFG of \p F. Precondition: all jump targets in range
  /// (verifier phase 0 establishes this for untrusted code).
  explicit CFG(const Function &F);

  const Function &function() const { return *Fn; }
  const std::vector<BasicBlock> &blocks() const { return Blocks; }
  const BasicBlock &block(uint32_t Id) const { return Blocks[Id]; }
  uint32_t numBlocks() const { return static_cast<uint32_t>(Blocks.size()); }
  /// Block containing instruction \p Index.
  uint32_t blockOf(size_t Index) const { return BlockIndex[Index]; }
  /// Entry block id (always 0 for non-empty code).
  uint32_t entry() const { return 0; }

  /// Block ids in reverse post-order from the entry; unreachable blocks
  /// are appended after the reachable ones in id order.
  const std::vector<uint32_t> &rpo() const { return Rpo; }
  /// True when \p Id is reachable from the entry block.
  bool reachable(uint32_t Id) const { return Reachable[Id]; }
  /// True when \p Id is part of (or reaches itself through) a cycle —
  /// used to detect instructions that may execute more than once.
  bool inCycle(uint32_t Id) const { return InCycle[Id]; }

private:
  const Function *Fn;
  std::vector<BasicBlock> Blocks;
  std::vector<uint32_t> BlockIndex;
  std::vector<uint32_t> Rpo;
  std::vector<bool> Reachable;
  std::vector<bool> InCycle;
};

/// Net operand-stack effect of \p I (pushes minus pops) and the number
/// of operands it pops. Call/CallBuiltin/Spawn are modeled through to
/// completion: they pop their arguments and push one result.
struct StackEffect {
  int Pops = 0;
  int Pushes = 0;
};
StackEffect stackEffect(const Instr &I);

/// True for Jump/JumpIfFalse/JumpIfTrue.
bool isJumpOp(Op Opcode);
/// True when \p Opcode ends a basic block (jumps and Return).
bool isTerminatorOp(Op Opcode);

} // namespace analysis
} // namespace isp

#endif // ISPROF_ANALYSIS_CFG_H
