//===- analysis/PointsTo.h - Andersen-style points-to -----------*- C++ -*-===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Flow- and context-insensitive inclusion-based (Andersen) points-to
/// analysis over a whole compiled Program. Abstract objects are the
/// three kinds of addressable storage a guest can obtain a base pointer
/// to: global array storage (layout in Program::GlobalArrays), heap
/// allocation sites (CallBuiltin Alloc), and frame array sites
/// (AllocaArray). Pointer values propagate through locals, global
/// cells, call arguments/returns and memory via the classic four
/// constraint forms (addr-of, copy, load, store); field-insensitive —
/// one summary node per object.
///
/// Provenance semantics: a value's points-to set tracks which objects
/// its address *provenance* may derive from. The empty set means
/// "no tracked provenance" — either a plain integer or an address
/// forged via arithmetic the analysis does not model. Clients must
/// treat empty-set bases as unknown (may point anywhere), never as
/// "points nowhere". This is the standard conservative reading for a
/// language where integers and addresses share one type.
///
//===----------------------------------------------------------------------===//

#ifndef ISPROF_ANALYSIS_POINTSTO_H
#define ISPROF_ANALYSIS_POINTSTO_H

#include "vm/Bytecode.h"

#include <cstdint>
#include <map>
#include <vector>

namespace isp {
namespace analysis {

/// One abstract storage object.
struct AbstractObject {
  enum class Kind { GlobalArray, HeapSite, AllocaSite };
  Kind K = Kind::HeapSite;
  /// GlobalArray: index into Program::GlobalArrays. Sites: function and
  /// instruction of the allocating op.
  size_t ArrayIndex = 0;
  size_t Fn = 0;
  size_t Pc = 0;
  /// Storage extent in cells; 0 when not statically known (dynamic
  /// alloc sizes).
  uint64_t Cells = 0;
};

/// Per indirect-access site (LoadIndirect/StoreIndirect): what the base
/// operand may point to.
struct SiteFacts {
  /// True when the base has tracked provenance (non-empty object set).
  bool BaseKnown = false;
  bool IsStore = false;
  std::vector<uint32_t> Objects; ///< ids into PointsToResult::Objects
  /// True when the base is, on every path, the *exact* base address of
  /// a heap or global-array object of known extent (no pointer
  /// arithmetic, no frame arrays — frame storage can dangle and be
  /// reused, heap blocks are never reused and global storage is
  /// immortal). With a constant index below MinCells, the accessed cell
  /// is then provably inside object storage — disjoint from named
  /// global cells and from every frame's local slots. The optimizer's
  /// quiet-indirect pass keys its cache-invalidation refinement on this
  /// (Optimizer.cpp).
  bool PreciseBoundedBase = false;
  uint64_t MinCells = 0; ///< smallest extent among Objects (when bounded)
};

struct PointsToResult {
  std::vector<AbstractObject> Objects;
  /// Keyed by (function index, instruction index).
  std::map<std::pair<size_t, size_t>, SiteFacts> Sites;
  /// Total points-to facts (sum of all solved set sizes) — exported as
  /// analysis.points_to_facts.
  uint64_t TotalFacts = 0;
  /// True when some store's target has no tracked provenance (a raw
  /// `store(addr, v)` builtin or an untracked StoreIndirect base) — any
  /// named cell may have been overwritten.
  bool HasWildStore = false;

  const SiteFacts *siteFacts(size_t Fn, size_t Pc) const {
    auto It = Sites.find({Fn, Pc});
    return It == Sites.end() ? nullptr : &It->second;
  }
};

/// Runs the analysis. The program must be structurally valid (verifier
/// phase 0 + depth discipline); compiler output and optimizer output
/// both qualify. Folds analysis.points_to_facts and a pass timer into
/// the obs registry when stats are enabled.
PointsToResult computePointsTo(const Program &Prog);

} // namespace analysis
} // namespace isp

#endif // ISPROF_ANALYSIS_POINTSTO_H
