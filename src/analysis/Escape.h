//===- analysis/Escape.h - Frame-array escape analysis ----------*- C++ -*-===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Identifies frame arrays (`var a[n];` inside a function) whose base
/// address provably never leaves the owning activation: the AllocaArray
/// result flows into exactly one local slot, that slot is assigned
/// nowhere else, and every load of the slot is consumed *only* as the
/// base operand of a LoadIndirect/StoreIndirect in the same basic
/// block. Any other consumption — call/spawn/builtin argument, Return,
/// stored as a value or index, arithmetic, StoreGlobal, or surviving on
/// the operand stack across a block boundary — escapes.
///
/// A never-escaping array is private to its activation by construction:
/// no callee, sibling thread, or kernel transfer can ever hold its
/// address, so no access to its cells can originate outside loads and
/// stores through the tracked slot. The optimizer's range-based quiet
/// pass (Optimizer.cpp, via Range.h's covered-read certificate) and the
/// `; noescape` disasm annotation build on this fact.
///
//===----------------------------------------------------------------------===//

#ifndef ISPROF_ANALYSIS_ESCAPE_H
#define ISPROF_ANALYSIS_ESCAPE_H

#include "vm/Bytecode.h"

#include <cstdint>
#include <vector>

namespace isp {
namespace analysis {

/// One never-escaping frame array.
struct FrameArray {
  size_t Fn = 0;       ///< owning function index
  size_t AllocaPc = 0; ///< the AllocaArray instruction
  uint32_t Slot = 0;   ///< the single local slot holding the base
  uint64_t Cells = 0;  ///< exact extent (constant size operand)
};

struct EscapeResult {
  std::vector<FrameArray> NeverEscaping;

  const FrameArray *find(size_t Fn, uint32_t Slot) const {
    for (const FrameArray &A : NeverEscaping)
      if (A.Fn == Fn && A.Slot == Slot)
        return &A;
    return nullptr;
  }
};

/// Runs the analysis over every structurally-sound function of \p Prog.
/// Folds analysis.escape_objects into the obs registry when stats are
/// enabled.
EscapeResult computeEscape(const Program &Prog);

} // namespace analysis
} // namespace isp

#endif // ISPROF_ANALYSIS_ESCAPE_H
