//===- analysis/Escape.cpp - Frame-array escape analysis ---------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "analysis/Escape.h"

#include "analysis/CFG.h"
#include "analysis/Verifier.h"
#include "obs/Obs.h"

#include <optional>

using namespace isp;
using namespace isp::analysis;

namespace {

/// Simulates one block's operand stack, tracking which positions hold
/// the candidate array's base (a LoadLocal of the tracked slot, or the
/// AllocaArray result itself). Returns false as soon as a tracked value
/// is consumed by anything but an indirect-access base operand (or the
/// single defining StoreLocal), or survives to the block's end.
bool blockUsesAreBaseOnly(const Function &F, const CFG &G, uint32_t Block,
                          int EntryDepth, uint32_t Slot, size_t AllocaPc) {
  const BasicBlock &B = G.block(Block);
  // Entry values came from predecessors; a tracked value crossing a
  // block boundary is rejected below, so entries are all untracked.
  std::vector<bool> Tracked(static_cast<size_t>(EntryDepth), false);
  for (size_t Pc = B.Begin; Pc != B.End; ++Pc) {
    const Instr &I = F.Code[Pc];
    StackEffect Eff = stackEffect(I);
    if (static_cast<size_t>(Eff.Pops) > Tracked.size())
      return false; // malformed; be conservative
    size_t Base = Tracked.size() - static_cast<size_t>(Eff.Pops);
    bool AnyTracked = false;
    for (size_t P = Base; P != Tracked.size(); ++P)
      AnyTracked |= Tracked[P];
    if (AnyTracked) {
      switch (I.Opcode) {
      case Op::LoadIndirect:
        // Pops [base, index]; only the base position may be tracked.
        if (Tracked[Base + 1])
          return false;
        break;
      case Op::StoreIndirect:
        // Pops [base, index, value]; only the base position may be
        // tracked.
        if (Tracked[Base + 1] || Tracked[Base + 2])
          return false;
        break;
      case Op::StoreLocal:
        // Only the defining store of the alloca result is allowed.
        if (!(Pc == AllocaPc + 1 && static_cast<uint32_t>(I.A) == Slot))
          return false;
        break;
      case Op::Pop:
        break; // discarding the address is harmless
      default:
        return false; // argument, return value, arithmetic, ...
      }
    }
    Tracked.resize(Base);
    for (int P = 0; P != Eff.Pushes; ++P)
      Tracked.push_back(false);
    if (Eff.Pushes == 1) {
      if (I.Opcode == Op::LoadLocal && static_cast<uint32_t>(I.A) == Slot)
        Tracked.back() = true;
      if (I.Opcode == Op::AllocaArray && Pc == AllocaPc)
        Tracked.back() = true;
    }
  }
  for (bool T : Tracked)
    if (T)
      return false; // address survives into a successor block
  return true;
}

} // namespace

EscapeResult isp::analysis::computeEscape(const Program &Prog) {
  EscapeResult Result;
  for (size_t FnIndex = 0; FnIndex != Prog.Functions.size(); ++FnIndex) {
    const Function &F = Prog.Functions[FnIndex];
    std::vector<VerifyError> Scratch;
    if (!verifyFunctionStructure(Prog, FnIndex, Scratch))
      continue;
    CFG G(F);
    std::optional<std::vector<int>> Depths =
        computeBlockEntryDepths(G, FnIndex, nullptr);
    if (!Depths)
      continue;

    // Candidate allocas: constant size, result stored straight into one
    // local slot that is assigned nowhere else in the function.
    for (size_t Pc = 0; Pc + 1 < F.Code.size(); ++Pc) {
      if (F.Code[Pc].Opcode != Op::AllocaArray)
        continue;
      if (Pc == 0 || F.Code[Pc - 1].Opcode != Op::PushConst)
        continue;
      int64_t Size = F.Code[Pc - 1].A;
      if (Size < 1)
        continue;
      if (F.Code[Pc + 1].Opcode != Op::StoreLocal)
        continue;
      uint32_t Slot = static_cast<uint32_t>(F.Code[Pc + 1].A);
      size_t Stores = 0;
      for (const Instr &I : F.Code)
        if (I.Opcode == Op::StoreLocal && static_cast<uint32_t>(I.A) == Slot)
          ++Stores;
      if (Stores != 1)
        continue;

      bool Escapes = false;
      for (uint32_t Block = 0; Block != G.numBlocks() && !Escapes; ++Block) {
        if (!G.reachable(Block))
          continue;
        if (!blockUsesAreBaseOnly(F, G, Block, (*Depths)[Block], Slot, Pc))
          Escapes = true;
      }
      if (!Escapes)
        Result.NeverEscaping.push_back(
            {FnIndex, Pc, Slot, static_cast<uint64_t>(Size)});
    }
  }
  ISP_STATS({
    obs::Registry::get()
        .counter("analysis.escape_objects")
        .add(Result.NeverEscaping.size());
  });
  return Result;
}
