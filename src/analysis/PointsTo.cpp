//===- analysis/PointsTo.cpp - Andersen-style points-to ----------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "analysis/PointsTo.h"

#include "analysis/CFG.h"
#include "analysis/Verifier.h"
#include "obs/Obs.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <unordered_map>

using namespace isp;
using namespace isp::analysis;

namespace {

constexpr uint32_t NoNode = ~uint32_t(0);

/// Constraint-graph builder + solver. Nodes are pointer-valued storage
/// summaries: locals, global cells, function returns, per-object
/// content summaries, block-entry stack slots (phi nodes), and
/// per-instruction temporaries.
class Andersen {
public:
  explicit Andersen(const Program &Prog) : Prog(Prog) {}

  PointsToResult run();

private:
  enum class NodeKind : uint8_t { Local, Global, Ret, Content, Phi, Temp };

  uint32_t makeNode() {
    uint32_t Id = static_cast<uint32_t>(Pts.size());
    Pts.emplace_back();
    CopyEdges.emplace_back();
    LoadsFrom.emplace_back();
    StoresTo.emplace_back();
    Imprecise.push_back(false);
    return Id;
  }
  uint32_t keyedNode(NodeKind K, uint64_t A, uint64_t B = 0) {
    uint64_t Key = (static_cast<uint64_t>(K) << 56) ^ (A << 20) ^ B;
    auto [It, New] = KeyedNodes.try_emplace(Key, 0);
    if (New)
      It->second = makeNode();
    return It->second;
  }
  uint32_t localNode(size_t Fn, size_t Slot) {
    return keyedNode(NodeKind::Local, Fn, Slot);
  }
  uint32_t globalNode(Addr A) { return keyedNode(NodeKind::Global, A); }
  uint32_t retNode(size_t Fn) { return keyedNode(NodeKind::Ret, Fn); }
  uint32_t contentNode(uint32_t Obj) {
    return keyedNode(NodeKind::Content, Obj);
  }
  uint32_t phiNode(size_t Fn, uint32_t Block, int Depth) {
    return keyedNode(NodeKind::Phi, (Fn << 20) ^ Block,
                     static_cast<uint64_t>(Depth));
  }

  uint32_t objectForSite(AbstractObject::Kind K, size_t Fn, size_t Pc,
                         uint64_t Cells) {
    uint32_t Id = static_cast<uint32_t>(Result.Objects.size());
    Result.Objects.push_back({K, 0, Fn, Pc, Cells});
    return Id;
  }

  void addAddrOf(uint32_t Node, uint32_t Obj) {
    if (Node != NoNode)
      Pts[Node].insert(Obj);
  }
  void addCopy(uint32_t From, uint32_t To) {
    if (From != NoNode && To != NoNode && From != To)
      CopyEdges[From].insert(To);
  }
  void addLoad(uint32_t BasePtr, uint32_t Dst) {
    if (BasePtr != NoNode && Dst != NoNode)
      LoadsFrom[BasePtr].insert(Dst);
  }
  void addStore(uint32_t BasePtr, uint32_t Src) {
    if (BasePtr != NoNode && Src != NoNode)
      StoresTo[BasePtr].insert(Src);
  }

  void generateFunction(size_t FnIdx);
  void solve();

  const Program &Prog;
  PointsToResult Result;

  std::unordered_map<uint64_t, uint32_t> KeyedNodes;
  std::vector<std::set<uint32_t>> Pts;       ///< node -> object ids
  std::vector<std::set<uint32_t>> CopyEdges; ///< pts(to) >= pts(from)
  std::vector<std::set<uint32_t>> LoadsFrom; ///< pts(dst) >= pts(*node)
  std::vector<std::set<uint32_t>> StoresTo;  ///< pts(*node) >= pts(src)
  /// Node may hold a derived (non-base) address — pointer arithmetic
  /// results and everything they flow into (see SiteFacts docs).
  std::vector<bool> Imprecise;
  /// Base-operand node of every indirect access site.
  std::map<std::pair<size_t, size_t>, std::pair<uint32_t, bool>> SiteBases;
};

void Andersen::generateFunction(size_t FnIdx) {
  const Function &F = Prog.Functions[FnIdx];
  CFG G(F);
  auto Depths = computeBlockEntryDepths(G, FnIdx, nullptr);
  if (!Depths)
    return; // malformed function: no constraints, all sites unknown

  // Global-array objects were pre-created with ids equal to their array
  // indices (run()); map their base addresses for literal pushes.
  std::unordered_map<int64_t, uint32_t> BaseToObject;
  for (size_t AI = 0; AI != Prog.GlobalArrays.size(); ++AI)
    BaseToObject[static_cast<int64_t>(Prog.GlobalArrays[AI].Base)] =
        static_cast<uint32_t>(AI);

  for (uint32_t BI = 0; BI != G.numBlocks(); ++BI) {
    if (!G.reachable(BI))
      continue;
    std::vector<uint32_t> Stack;
    for (int D = 0; D != (*Depths)[BI]; ++D)
      Stack.push_back(phiNode(FnIdx, BI, D));

    auto pop = [&Stack]() {
      assert(!Stack.empty() && "verified depth cannot underflow");
      uint32_t N = Stack.back();
      Stack.pop_back();
      return N;
    };

    const BasicBlock &B = G.block(BI);
    for (size_t Pc = B.Begin; Pc != B.End; ++Pc) {
      const Instr &In = F.Code[Pc];
      switch (In.Opcode) {
      case Op::Nop:
      case Op::BasicBlock:
      case Op::Jump:
        break;
      case Op::PushConst: {
        auto It = BaseToObject.find(In.A);
        if (It != BaseToObject.end()) {
          uint32_t T = makeNode();
          addAddrOf(T, It->second);
          Stack.push_back(T);
        } else {
          Stack.push_back(NoNode);
        }
        break;
      }
      case Op::Pop:
      case Op::JumpIfFalse:
      case Op::JumpIfTrue:
        pop();
        break;
      case Op::LoadLocal:
        Stack.push_back(localNode(FnIdx, static_cast<size_t>(In.A)));
        break;
      case Op::StoreLocal:
        addCopy(pop(), localNode(FnIdx, static_cast<size_t>(In.A)));
        break;
      case Op::LoadGlobal:
        Stack.push_back(globalNode(static_cast<Addr>(In.A)));
        break;
      case Op::StoreGlobal:
        addCopy(pop(), globalNode(static_cast<Addr>(In.A)));
        break;
      case Op::LoadIndirect: {
        pop(); // index: never treated as carrying the base provenance
        uint32_t Base = pop();
        uint32_t T = makeNode();
        addLoad(Base, T);
        SiteBases[{FnIdx, Pc}] = {Base, false};
        Stack.push_back(T);
        break;
      }
      case Op::StoreIndirect: {
        uint32_t Value = pop();
        pop(); // index
        uint32_t Base = pop();
        addStore(Base, Value);
        SiteBases[{FnIdx, Pc}] = {Base, true};
        if (Base == NoNode)
          Result.HasWildStore = true;
        break;
      }
      case Op::AllocaArray: {
        // Statically sized iff the size operand is a literal directly
        // below (compile pattern for "var a[N];").
        uint64_t Cells = 0;
        if (Pc > B.Begin && F.Code[Pc - 1].Opcode == Op::PushConst &&
            F.Code[Pc - 1].A > 0)
          Cells = static_cast<uint64_t>(F.Code[Pc - 1].A);
        pop();
        uint32_t T = makeNode();
        addAddrOf(T,
                  objectForSite(AbstractObject::Kind::AllocaSite, FnIdx, Pc,
                                Cells));
        Stack.push_back(T);
        break;
      }
      case Op::Add:
      case Op::Sub: {
        uint32_t Rhs = pop();
        uint32_t Lhs = pop();
        if (Lhs == NoNode && Rhs == NoNode) {
          Stack.push_back(NoNode);
        } else {
          // Pointer arithmetic: the result may address either operand's
          // objects (field-insensitive, so offsets are ignored) but is
          // no longer an exact object base.
          uint32_t T = makeNode();
          Imprecise[T] = true;
          addCopy(Lhs, T);
          addCopy(Rhs, T);
          Stack.push_back(T);
        }
        break;
      }
      case Op::Mul:
      case Op::Div:
      case Op::Mod:
      case Op::Lt:
      case Op::Le:
      case Op::Gt:
      case Op::Ge:
      case Op::Eq:
      case Op::Ne:
        pop();
        pop();
        Stack.push_back(NoNode);
        break;
      case Op::Neg:
      case Op::Not:
      case Op::ToBool:
        pop();
        Stack.push_back(NoNode);
        break;
      case Op::Call:
      case Op::Spawn: {
        size_t Callee = static_cast<size_t>(In.A);
        for (int64_t Arg = In.B - 1; Arg >= 0; --Arg)
          addCopy(pop(), localNode(Callee, static_cast<size_t>(Arg)));
        Stack.push_back(In.Opcode == Op::Call ? retNode(Callee) : NoNode);
        break;
      }
      case Op::CallBuiltin: {
        std::vector<uint32_t> Args(static_cast<size_t>(In.B));
        for (size_t Arg = Args.size(); Arg-- > 0;)
          Args[Arg] = pop();
        uint32_t ResultNode = NoNode;
        switch (static_cast<Builtin>(In.A)) {
        case Builtin::Alloc: {
          uint64_t Cells = 0;
          if (Pc > B.Begin && F.Code[Pc - 1].Opcode == Op::PushConst &&
              F.Code[Pc - 1].A > 0)
            Cells = static_cast<uint64_t>(F.Code[Pc - 1].A);
          ResultNode = makeNode();
          addAddrOf(ResultNode,
                    objectForSite(AbstractObject::Kind::HeapSite, FnIdx, Pc,
                                  Cells));
          break;
        }
        case Builtin::Print: // print(x) returns x
          ResultNode = Args.empty() ? NoNode : Args[0];
          break;
        case Builtin::Load: { // load(addr): raw read through a pointer
          ResultNode = makeNode();
          addLoad(Args.empty() ? NoNode : Args[0], ResultNode);
          break;
        }
        case Builtin::Store: { // store(addr, v) returns v
          uint32_t Target = Args.empty() ? NoNode : Args[0];
          uint32_t Value = Args.size() > 1 ? Args[1] : NoNode;
          addStore(Target, Value);
          // A raw store through an untracked address can rewrite any
          // named cell.
          if (Target == NoNode)
            Result.HasWildStore = true;
          ResultNode = Value;
          break;
        }
        default:
          break;
        }
        Stack.push_back(ResultNode);
        break;
      }
      case Op::Return:
        addCopy(pop(), retNode(FnIdx));
        break;
      }
    }

    // Flow the exit stack into every successor's phi nodes.
    for (uint32_t S : B.Succs)
      for (size_t D = 0; D != Stack.size(); ++D)
        addCopy(Stack[D], phiNode(FnIdx, S, static_cast<int>(D)));
  }
}

void Andersen::solve() {
  std::vector<uint32_t> Work;
  std::vector<bool> InWork(Pts.size(), false);
  auto enqueue = [&](uint32_t N) {
    if (N < InWork.size() && !InWork[N]) {
      InWork[N] = true;
      Work.push_back(N);
    }
  };
  for (uint32_t N = 0; N != Pts.size(); ++N)
    if (!Pts[N].empty())
      enqueue(N);

  // Complex (load/store) constraints add copy edges as points-to sets
  // grow; re-processing a node replays them idempotently.
  while (!Work.empty()) {
    uint32_t N = Work.back();
    Work.pop_back();
    InWork[N] = false;

    for (uint32_t Obj : Pts[N]) {
      // Content nodes are pre-created (run()), so no allocation happens
      // while iterators into the constraint sets are live.
      uint32_t C = contentNode(Obj);
      for (uint32_t Dst : LoadsFrom[N])
        if (CopyEdges[C].insert(Dst).second && !Pts[C].empty())
          enqueue(C);
      for (uint32_t Src : StoresTo[N])
        if (CopyEdges[Src].insert(C).second && !Pts[Src].empty())
          enqueue(Src);
    }

    for (uint32_t To : CopyEdges[N]) {
      bool Changed = false;
      for (uint32_t Obj : Pts[N])
        Changed |= Pts[To].insert(Obj).second;
      // Imprecision (derived-address taint) rides the same edges.
      if (Imprecise[N] && !Imprecise[To]) {
        Imprecise[To] = true;
        Changed = true;
      }
      if (Changed)
        enqueue(To);
    }
  }
}

PointsToResult Andersen::run() {
  // Global-array objects first so their ids equal their array indices.
  for (size_t AI = 0; AI != Prog.GlobalArrays.size(); ++AI)
    Result.Objects.push_back({AbstractObject::Kind::GlobalArray, AI, 0, 0,
                              Prog.GlobalArrays[AI].Cells});
  // Their base addresses are installed into the named cells by the
  // loader (GlobalInits), without code — model as addr-of constraints.
  for (size_t AI = 0; AI != Prog.GlobalArrays.size(); ++AI)
    addAddrOf(globalNode(Prog.GlobalArrays[AI].Cell),
              static_cast<uint32_t>(AI));

  for (size_t FI = 0; FI != Prog.Functions.size(); ++FI)
    generateFunction(FI);
  // Materialize every content summary node before solving so the solver
  // never allocates (see the iterator-stability note in solve()).
  for (uint32_t Obj = 0; Obj != Result.Objects.size(); ++Obj)
    contentNode(Obj);
  solve();

  for (const auto &[Site, BaseInfo] : SiteBases) {
    SiteFacts Facts;
    Facts.IsStore = BaseInfo.second;
    if (BaseInfo.first != NoNode)
      Facts.Objects.assign(Pts[BaseInfo.first].begin(),
                           Pts[BaseInfo.first].end());
    Facts.BaseKnown = !Facts.Objects.empty();
    if (Facts.BaseKnown && !Imprecise[BaseInfo.first]) {
      Facts.PreciseBoundedBase = true;
      Facts.MinCells = ~uint64_t(0);
      for (uint32_t Obj : Facts.Objects) {
        const AbstractObject &O = Result.Objects[Obj];
        // Frame arrays are excluded: their storage can dangle into a
        // later activation's locals. Heap blocks are never reused and
        // global storage is immortal.
        if (O.K == AbstractObject::Kind::AllocaSite || O.Cells == 0) {
          Facts.PreciseBoundedBase = false;
          break;
        }
        Facts.MinCells = std::min(Facts.MinCells, O.Cells);
      }
      if (!Facts.PreciseBoundedBase)
        Facts.MinCells = 0;
    }
    if (BaseInfo.second && !Facts.BaseKnown)
      Result.HasWildStore = true;
    Result.Sites.emplace(Site, std::move(Facts));
  }
  for (const auto &Set : Pts)
    Result.TotalFacts += Set.size();
  return Result;
}

} // namespace

PointsToResult isp::analysis::computePointsTo(const Program &Prog) {
  obs::ScopedTimer Timer(
      obs::statsEnabled()
          ? &obs::Registry::get().counter("analysis.points_to_ns")
          : nullptr);
  PointsToResult R = Andersen(Prog).run();
  ISP_STATS(obs::Registry::get()
                .counter("analysis.points_to_facts")
                .add(R.TotalFacts));
  return R;
}
