//===- analysis/LocksetLint.h - Static lockset lint -------------*- C++ -*-===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A static approximation of the dynamic Eraser-style lockset check
/// (DrdTool): flag every global location that is reachable from two or
/// more thread contexts, written by at least one of them, and not
/// consistently protected by a common lock. Thread contexts are the
/// main thread plus one per Spawn site (a spawn inside a loop counts
/// twice — it can create many threads).
///
/// Abstract locks are global cells passed to lock_acquire/lock_release
/// (and sem_wait/sem_post, which guests use interchangeably as mutexes)
/// by the direct `LoadGlobal g; CallBuiltin` compile pattern. Must-held
/// locksets flow forward (join = intersection) through each context's
/// call graph.
///
/// False-positive policy (documented in DESIGN.md): accesses performed
/// by the main context before any spawn may have executed are
/// initialization and never race (the dynamic tools exclude them the
/// same way — a single-threaded prefix cannot produce concurrent
/// state). Acquiring a lock the analysis cannot name adds no
/// protection; *releasing* an unnamed lock clears the whole lockset —
/// both err toward warning. False negatives: accesses through
/// untracked pointers (empty points-to sets) and raw load()/store()
/// builtins are not attributed to globals and are skipped.
///
//===----------------------------------------------------------------------===//

#ifndef ISPROF_ANALYSIS_LOCKSETLINT_H
#define ISPROF_ANALYSIS_LOCKSETLINT_H

#include "analysis/PointsTo.h"
#include "vm/Bytecode.h"

#include <string>
#include <vector>

namespace isp {
namespace analysis {

struct LintWarning {
  Addr Address = 0;        ///< cell (scalars) or storage base (arrays)
  std::string Name;        ///< source-level name when known
  bool IsArray = false;
  unsigned Contexts = 0;   ///< accessor thread contexts (with multiplicity)
  unsigned Writers = 0;    ///< contexts performing post-init writes
};

struct LintReport {
  std::vector<LintWarning> Warnings;
  /// Thread contexts discovered (1 = single-threaded program).
  unsigned ContextCount = 1;
  /// Same shape as DrdTool's dynamic report, so workload tests can
  /// cross-check static warnings against dynamic findings line by line:
  ///   "lint: N location(s) with empty candidate lockset\n"
  ///   "  possible race at address A\n" ...
  std::string render() const;
};

/// Runs the lint over \p Prog, reusing \p PT for indirect-access
/// attribution. Folds analysis.lint_warnings and a pass timer into the
/// obs registry when stats are enabled.
LintReport runLocksetLint(const Program &Prog, const PointsToResult &PT);

/// Convenience overload that computes points-to itself.
LintReport runLocksetLint(const Program &Prog);

} // namespace analysis
} // namespace isp

#endif // ISPROF_ANALYSIS_LOCKSETLINT_H
