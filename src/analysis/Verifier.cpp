//===- analysis/Verifier.cpp - Bytecode verifier -----------------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "analysis/Verifier.h"

#include "analysis/Dataflow.h"
#include "analysis/PointsTo.h"
#include "analysis/Range.h"
#include "obs/Obs.h"
#include "support/Format.h"

#include <cassert>

using namespace isp;
using namespace isp::analysis;

namespace {

bool isAccessOp(Op Opcode) {
  switch (Opcode) {
  case Op::LoadLocal:
  case Op::StoreLocal:
  case Op::LoadGlobal:
  case Op::StoreGlobal:
  case Op::LoadIndirect:
  case Op::StoreIndirect:
    return true;
  default:
    return false;
  }
}

bool usesAOperand(Op Opcode) {
  switch (Opcode) {
  case Op::PushConst:
  case Op::LoadLocal:
  case Op::StoreLocal:
  case Op::LoadGlobal:
  case Op::StoreGlobal:
  case Op::Jump:
  case Op::JumpIfFalse:
  case Op::JumpIfTrue:
  case Op::Call:
  case Op::CallBuiltin:
  case Op::Spawn:
    return true;
  default:
    return false;
  }
}

bool usesBOperand(Op Opcode) {
  return Opcode == Op::Call || Opcode == Op::CallBuiltin ||
         Opcode == Op::Spawn;
}

/// Forward depth analysis. Lattice: Unreached (top) < depth d; any two
/// distinct depths join to Conflict (tracked as a poisoned value so the
/// error is reported exactly once, at the join block).
struct DepthProblem {
  static constexpr int Unreached = -1;
  static constexpr int Conflict = -2;
  using State = int;

  const CFG &G;
  explicit DepthProblem(const CFG &G) : G(G) {}

  State boundary() const { return 0; }
  State top() const { return Unreached; }
  bool join(State &Into, const State &From) const {
    if (From == Unreached || Into == From)
      return false;
    if (Into == Unreached) {
      Into = From;
      return true;
    }
    if (Into == Conflict)
      return false;
    Into = Conflict;
    return true;
  }
  State transfer(const CFG &Graph, uint32_t Block, State In) const {
    if (In < 0)
      return In;
    int Depth = In;
    const BasicBlock &B = Graph.block(Block);
    for (size_t I = B.Begin; I != B.End; ++I) {
      StackEffect E = stackEffect(Graph.function().Code[I]);
      Depth -= E.Pops;
      if (Depth < 0)
        return Conflict; // underflow; reported by the checking sweep
      Depth += E.Pushes;
    }
    return Depth;
  }
};

} // namespace

std::string VerifyResult::render(const Program &Prog) const {
  std::string Out;
  for (const VerifyError &E : Errors) {
    const char *Name = E.FunctionIndex < Prog.Functions.size()
                           ? Prog.Functions[E.FunctionIndex].Name.c_str()
                           : "<program>";
    if (E.InstrIndex == ~size_t(0))
      Out += formatString("%s: %s\n", Name, E.Message.c_str());
    else
      Out += formatString("%s+%zu: %s\n", Name, E.InstrIndex,
                          E.Message.c_str());
  }
  return Out;
}

bool isp::analysis::verifyFunctionStructure(const Program &Prog,
                                            size_t FnIndex,
                                            std::vector<VerifyError> &Errors) {
  const Function &F = Prog.Functions[FnIndex];
  const size_t Before = Errors.size();
  auto error = [&](size_t Pc, std::string Msg) {
    Errors.push_back({FnIndex, Pc, std::move(Msg)});
  };

  if (F.NumParams > F.NumLocals)
    Errors.push_back(
        {FnIndex, ~size_t(0),
         formatString("NumParams %u exceeds NumLocals %u", F.NumParams,
                      F.NumLocals)});
  if (F.Code.empty()) {
    Errors.push_back({FnIndex, ~size_t(0), "empty body"});
    return false;
  }

  const size_t N = F.Code.size();
  for (size_t I = 0; I != N; ++I) {
    const Instr &In = F.Code[I];
    if (static_cast<uint8_t>(In.Opcode) > static_cast<uint8_t>(Op::Return)) {
      error(I, formatString("invalid opcode %u",
                            static_cast<unsigned>(In.Opcode)));
      continue; // operand checks are meaningless for unknown opcodes
    }
    if (!usesAOperand(In.Opcode) && In.A != 0)
      error(I, formatString("stray A operand %lld on %u",
                            static_cast<long long>(In.A),
                            static_cast<unsigned>(In.Opcode)));
    if (isAccessOp(In.Opcode)) {
      if (In.B != 0 && In.B != 1)
        error(I, formatString("quiet mark must be 0 or 1, got %lld",
                              static_cast<long long>(In.B)));
    } else if (!usesBOperand(In.Opcode) && In.B != 0) {
      error(I, formatString("stray B operand %lld on %u",
                            static_cast<long long>(In.B),
                            static_cast<unsigned>(In.Opcode)));
    }
    switch (In.Opcode) {
    case Op::Jump:
    case Op::JumpIfFalse:
    case Op::JumpIfTrue:
      if (In.A < 0 || static_cast<size_t>(In.A) >= N)
        error(I, formatString("jump target %lld out of range [0, %zu)",
                              static_cast<long long>(In.A), N));
      break;
    case Op::LoadLocal:
    case Op::StoreLocal:
      if (In.A < 0 || In.A >= static_cast<int64_t>(F.NumLocals))
        error(I, formatString("local slot %lld out of range [0, %u)",
                              static_cast<long long>(In.A), F.NumLocals));
      break;
    case Op::LoadGlobal:
    case Op::StoreGlobal:
      if (In.A < static_cast<int64_t>(GlobalBase) ||
          In.A >= static_cast<int64_t>(GlobalBase + Prog.GlobalCells))
        error(I, formatString("global address %lld outside [%llu, %llu)",
                              static_cast<long long>(In.A),
                              static_cast<unsigned long long>(GlobalBase),
                              static_cast<unsigned long long>(
                                  GlobalBase + Prog.GlobalCells)));
      break;
    case Op::Call:
    case Op::Spawn: {
      if (In.A < 0 ||
          static_cast<size_t>(In.A) >= Prog.Functions.size()) {
        error(I, formatString("callee index %lld out of range",
                              static_cast<long long>(In.A)));
        break;
      }
      const Function &Callee = Prog.Functions[static_cast<size_t>(In.A)];
      if (In.B != static_cast<int64_t>(Callee.NumParams))
        error(I, formatString("%lld argument(s) to '%s' expecting %u",
                              static_cast<long long>(In.B),
                              Callee.Name.c_str(), Callee.NumParams));
      break;
    }
    case Op::CallBuiltin: {
      int Arity = builtinArity(In.A);
      if (Arity < 0)
        error(I, formatString("invalid builtin id %lld",
                              static_cast<long long>(In.A)));
      else if (In.B != Arity)
        error(I, formatString("%lld argument(s) to builtin %lld expecting %d",
                              static_cast<long long>(In.B),
                              static_cast<long long>(In.A), Arity));
      break;
    }
    default:
      break;
    }
  }

  const Instr &Last = F.Code[N - 1];
  if (Last.Opcode != Op::Return && Last.Opcode != Op::Jump)
    error(N - 1, "control can fall off the end of the body");

  return Errors.size() == Before;
}

std::optional<std::vector<int>>
isp::analysis::computeBlockEntryDepths(const CFG &G, size_t FnIndex,
                                       std::vector<VerifyError> *Errors) {
  DepthProblem P(G);
  std::vector<int> Entry = solveDataflow(G, P, Direction::Forward);

  bool Ok = true;
  auto error = [&](size_t Pc, std::string Msg) {
    Ok = false;
    if (Errors)
      Errors->push_back({FnIndex, Pc, std::move(Msg)});
  };

  const Function &F = G.function();
  for (uint32_t BI = 0; BI != G.numBlocks(); ++BI) {
    if (!G.reachable(BI)) {
      Entry[BI] = 0;
      continue;
    }
    if (Entry[BI] == DepthProblem::Conflict) {
      error(G.block(BI).Begin, "inconsistent stack depth at join");
      continue;
    }
    assert(Entry[BI] != DepthProblem::Unreached && "reachable but unsolved");
    int Depth = Entry[BI];
    for (size_t I = G.block(BI).Begin; I != G.block(BI).End; ++I) {
      StackEffect E = stackEffect(F.Code[I]);
      if (Depth < E.Pops) {
        error(I, formatString("stack underflow: depth %d, pops %d", Depth,
                              E.Pops));
        break;
      }
      Depth += E.Pushes - E.Pops;
    }
  }
  if (!Ok)
    return std::nullopt;
  return Entry;
}

VerifyResult isp::analysis::verifyProgram(const Program &Prog) {
  VerifyResult R;
  obs::ScopedTimer Timer(
      obs::statsEnabled()
          ? &obs::Registry::get().counter("analysis.verify_ns")
          : nullptr);

  if (Prog.Functions.empty())
    R.Errors.push_back({0, ~size_t(0), "program has no functions"});
  else if (Prog.EntryIndex >= Prog.Functions.size())
    R.Errors.push_back({Prog.EntryIndex, ~size_t(0),
                        "entry index out of range"});
  else if (Prog.Functions[Prog.EntryIndex].NumParams != 0)
    R.Errors.push_back({Prog.EntryIndex, ~size_t(0),
                        "entry function must take no parameters"});

  uint64_t TotalBlocks = 0;
  for (size_t FI = 0; FI != Prog.Functions.size(); ++FI) {
    if (!verifyFunctionStructure(Prog, FI, R.Errors))
      continue; // CFG construction is unsafe on structural errors
    CFG G(Prog.Functions[FI]);
    TotalBlocks += G.numBlocks();
    computeBlockEntryDepths(G, FI, &R.Errors);
  }

  // Exact-range tightening: an indirect access whose index folds to a
  // single constant lying outside [0, cells) of *every* object its base
  // can reference is a definite runtime fault — rejected the same way a
  // hard-coded bad global address is. Singleton intervals only:
  // anything wider is a lint matter (--lint-bounds), not a
  // verification failure.
  if (R.Errors.empty()) {
    PointsToResult PT = computePointsTo(Prog);
    RangeResult RR = computeRanges(Prog);
    for (const auto &[Key, Site] : RR.Sites) {
      if (!Site.Index.isConst())
        continue;
      const SiteFacts *F = PT.siteFacts(Key.first, Key.second);
      if (F == nullptr || !F->BaseKnown || F->Objects.empty())
        continue;
      int64_t V = Site.Index.Lo;
      bool AllOut = true;
      for (uint32_t Id : F->Objects) {
        const AbstractObject &Obj = PT.Objects[Id];
        if (Obj.Cells == 0 ||
            (V >= 0 && static_cast<uint64_t>(V) < Obj.Cells)) {
          AllOut = false;
          break;
        }
      }
      if (AllOut)
        R.Errors.push_back(
            {Key.first, Key.second,
             formatString("%s index %lld out of bounds for every "
                          "reachable object",
                          F->IsStore ? "store" : "load",
                          static_cast<long long>(V))});
    }
  }

  ISP_STATS({
    obs::Registry &Reg = obs::Registry::get();
    Reg.counter("analysis.cfg_blocks").add(TotalBlocks);
    if (!R.Errors.empty())
      Reg.counter("analysis.verifier_failures").add(R.Errors.size());
  });
  return R;
}
