//===- tools/HelgrindTool.cpp - Happens-before race detector -------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "tools/HelgrindTool.h"

#include "support/Format.h"

#include <algorithm>

using namespace isp;

HelgrindTool::VectorClock &HelgrindTool::clockOf(ThreadId Tid) {
  VectorClock &VC = ThreadClocks[Tid];
  if (VC.size() <= Tid)
    VC.resize(Tid + 1, 0);
  if (VC[Tid] == 0)
    VC[Tid] = 1; // own component starts at 1
  return VC;
}

void HelgrindTool::joinInto(VectorClock &Into, const VectorClock &From) {
  if (Into.size() < From.size())
    Into.resize(From.size(), 0);
  for (size_t I = 0; I != From.size(); ++I)
    Into[I] = std::max(Into[I], From[I]);
}

bool HelgrindTool::happensBefore(uint64_t Epoch, ThreadId Tid) {
  if (Epoch == 0)
    return true;
  ThreadId PrevTid = epochTid(Epoch);
  if (PrevTid == Tid)
    return true;
  VectorClock &VC = clockOf(Tid);
  uint64_t Known = PrevTid < VC.size() ? VC[PrevTid] : 0;
  return epochClock(Epoch) <= Known;
}

void HelgrindTool::onThreadStart(ThreadId Tid, ThreadId Parent) {
  VectorClock &VC = clockOf(Tid);
  auto It = InheritedClocks.find(Tid);
  if (It != InheritedClocks.end()) {
    joinInto(VC, It->second);
    InheritedClocks.erase(It);
  }
}

void HelgrindTool::onThreadCreate(ThreadId Tid, ThreadId Child) {
  // The child inherits everything the parent has done so far; the parent
  // then advances so later parent work is unordered with the child.
  VectorClock &Parent = clockOf(Tid);
  InheritedClocks[Child] = Parent;
  ++Parent[Tid];
}

void HelgrindTool::onThreadEnd(ThreadId Tid) {
  FinalClocks[Tid] = clockOf(Tid);
}

void HelgrindTool::onThreadJoin(ThreadId Tid, ThreadId Child) {
  auto It = FinalClocks.find(Child);
  if (It != FinalClocks.end())
    joinInto(clockOf(Tid), It->second);
}

void HelgrindTool::onSyncAcquire(ThreadId Tid, SyncId Id, bool IsLock) {
  auto It = SyncClocks.find(Id);
  if (It != SyncClocks.end())
    joinInto(clockOf(Tid), It->second);
}

void HelgrindTool::onSyncRelease(ThreadId Tid, SyncId Id, bool IsLock) {
  VectorClock &VC = clockOf(Tid);
  joinInto(SyncClocks[Id], VC);
  ++VC[Tid];
}

void HelgrindTool::reportRace(Addr A, uint64_t PrevEpoch, bool PrevWasWrite,
                              ThreadId Tid, bool IsWrite) {
  ++RaceCount;
  if (Races.size() < MaxRecordedRaces)
    Races.push_back(
        {A, epochTid(PrevEpoch), Tid, PrevWasWrite, IsWrite});
}

void HelgrindTool::accessCell(ThreadId Tid, Addr A, bool IsWrite) {
  uint64_t &WriteEpoch = WriteEpochs.cell(A);
  if (!happensBefore(WriteEpoch, Tid))
    reportRace(A, WriteEpoch, /*PrevWasWrite=*/true, Tid, IsWrite);
  if (IsWrite) {
    uint64_t &ReadEpoch = ReadEpochs.cell(A);
    if (!happensBefore(ReadEpoch, Tid))
      reportRace(A, ReadEpoch, /*PrevWasWrite=*/false, Tid, IsWrite);
    WriteEpoch = packEpoch(Tid, clockOf(Tid)[Tid]);
  } else {
    ReadEpochs.cell(A) = packEpoch(Tid, clockOf(Tid)[Tid]);
  }
}

void HelgrindTool::onRead(ThreadId Tid, Addr A, uint64_t Cells) {
  for (uint64_t I = 0; I != Cells; ++I)
    accessCell(Tid, A + I, /*IsWrite=*/false);
}

void HelgrindTool::onWrite(ThreadId Tid, Addr A, uint64_t Cells) {
  for (uint64_t I = 0; I != Cells; ++I)
    accessCell(Tid, A + I, /*IsWrite=*/true);
}

void HelgrindTool::onKernelWrite(ThreadId Tid, Addr A, uint64_t Cells) {
  // A kernel buffer fill resets the cells' history: the syscall itself
  // orders the data for the requesting thread.
  for (uint64_t I = 0; I != Cells; ++I) {
    WriteEpochs.cell(A + I) = 0;
    ReadEpochs.cell(A + I) = 0;
  }
}

uint64_t HelgrindTool::memoryFootprintBytes() const {
  uint64_t Total = WriteEpochs.totalBytes() + ReadEpochs.totalBytes();
  auto ClockBytes = [](const std::map<ThreadId, VectorClock> &Map) {
    uint64_t Bytes = 0;
    for (const auto &[Tid, VC] : Map)
      Bytes += VC.capacity() * sizeof(uint64_t) + 48;
    return Bytes;
  };
  Total += ClockBytes(ThreadClocks) + ClockBytes(InheritedClocks) +
           ClockBytes(FinalClocks);
  for (const auto &[Id, VC] : SyncClocks)
    Total += VC.capacity() * sizeof(uint64_t) + 48;
  return Total;
}

std::string HelgrindTool::renderReport(const SymbolTable *Symbols) const {
  std::string Out = formatString(
      "helgrind: %llu possible data race(s)\n",
      static_cast<unsigned long long>(RaceCount));
  for (const RaceReport &R : Races)
    Out += formatString(
        "  race at address %llu: thread %u %s vs thread %u %s\n",
        static_cast<unsigned long long>(R.Address), R.FirstTid,
        R.FirstWasWrite ? "write" : "read", R.SecondTid,
        R.SecondWasWrite ? "write" : "read");
  return Out;
}
