//===- tools/CallgrindTool.cpp - Call-graph profiler ---------------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "tools/CallgrindTool.h"

#include "instr/SymbolTable.h"
#include "support/Format.h"
#include "support/Table.h"

#include <algorithm>
#include <cassert>

using namespace isp;

void CallgrindTool::onCall(ThreadId Tid, RoutineId Rtn) {
  ThreadState &TS = Threads[Tid];
  RoutineId Caller = TS.Stack.empty() ? Rtn : TS.Stack.back().Rtn;
  ++Edges[{Caller, Rtn}];
  ++Costs[Rtn].Calls;

  if (TS.OnStackCount.size() <= Rtn)
    TS.OnStackCount.resize(Rtn + 1, 0);
  StackEntry Entry;
  Entry.Rtn = Rtn;
  Entry.BlocksAtEntry = TS.Blocks;
  Entry.CountsInclusive = TS.OnStackCount[Rtn] == 0;
  ++TS.OnStackCount[Rtn];
  TS.Stack.push_back(Entry);
}

void CallgrindTool::popEntry(ThreadState &TS) {
  assert(!TS.Stack.empty());
  StackEntry Entry = TS.Stack.back();
  TS.Stack.pop_back();
  --TS.OnStackCount[Entry.Rtn];
  if (Entry.CountsInclusive)
    Costs[Entry.Rtn].InclusiveBlocks += TS.Blocks - Entry.BlocksAtEntry;
}

void CallgrindTool::onReturn(ThreadId Tid, RoutineId Rtn) {
  ThreadState &TS = Threads[Tid];
  if (TS.Stack.empty())
    return;
  popEntry(TS);
}

void CallgrindTool::onBasicBlock(ThreadId Tid, uint64_t Count) {
  ThreadState &TS = Threads[Tid];
  TS.Blocks += Count;
  if (!TS.Stack.empty())
    Costs[TS.Stack.back().Rtn].ExclusiveBlocks += Count;
}

void CallgrindTool::unwind(ThreadState &TS) {
  while (!TS.Stack.empty())
    popEntry(TS);
}

void CallgrindTool::onThreadEnd(ThreadId Tid) { unwind(Threads[Tid]); }

void CallgrindTool::onFinish() {
  for (auto &[Tid, TS] : Threads)
    unwind(TS);
}

uint64_t CallgrindTool::memoryFootprintBytes() const {
  uint64_t Total = Costs.size() * (sizeof(RoutineCost) + 48) +
                   Edges.size() * (sizeof(uint64_t) * 3 + 48);
  for (const auto &[Tid, TS] : Threads)
    Total += TS.Stack.capacity() * sizeof(StackEntry) +
             TS.OnStackCount.capacity() * sizeof(uint32_t);
  return Total;
}

std::string CallgrindTool::renderReport(const SymbolTable *Symbols,
                                        size_t MaxRoutines) const {
  std::vector<std::pair<RoutineId, RoutineCost>> Ranked(Costs.begin(),
                                                        Costs.end());
  std::sort(Ranked.begin(), Ranked.end(), [](const auto &L, const auto &R) {
    return L.second.ExclusiveBlocks > R.second.ExclusiveBlocks;
  });
  if (Ranked.size() > MaxRoutines)
    Ranked.resize(MaxRoutines);

  TextTable Table;
  Table.setHeader({"routine", "calls", "excl(BB)", "incl(BB)"});
  for (const auto &[Rtn, Cost] : Ranked)
    Table.addRow({Symbols ? Symbols->routineName(Rtn)
                          : formatString("#%u", Rtn),
                  formatWithCommas(Cost.Calls),
                  formatWithCommas(Cost.ExclusiveBlocks),
                  formatWithCommas(Cost.InclusiveBlocks)});
  return Table.render();
}
