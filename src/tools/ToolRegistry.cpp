//===- tools/ToolRegistry.cpp - Analysis tool factory ----------------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "tools/ToolRegistry.h"

#include "core/NaiveProfiler.h"
#include "core/Report.h"
#include "core/RmsProfiler.h"
#include "core/TrmsProfiler.h"
#include "support/Format.h"
#include "tools/CallgrindTool.h"
#include "tools/CctTool.h"
#include "tools/DrdTool.h"
#include "tools/HelgrindTool.h"
#include "tools/MemcheckTool.h"
#include "tools/NulTool.h"

using namespace isp;

const std::vector<std::string> &isp::allToolNames() {
  static const std::vector<std::string> Names = {
      "nulgrind",  "memcheck",   "callgrind", "helgrind", "drd",
      "cct",       "aprof-rms",  "aprof-trms", "aprof-trms-naive"};
  return Names;
}

bool isp::knownToolName(const std::string &Name) {
  if (Name == "native")
    return true;
  for (const std::string &Known : allToolNames())
    if (Known == Name)
      return true;
  return false;
}

std::unique_ptr<Tool> isp::makeTool(const std::string &Name) {
  return makeTool(Name, ToolOptions());
}

std::unique_ptr<Tool> isp::makeTool(const std::string &Name,
                                    const ToolOptions &Opts) {
  if (Name == "nulgrind")
    return std::make_unique<NulTool>();
  if (Name == "memcheck")
    return std::make_unique<MemcheckTool>();
  if (Name == "callgrind")
    return std::make_unique<CallgrindTool>();
  if (Name == "helgrind")
    return std::make_unique<HelgrindTool>();
  if (Name == "drd")
    return std::make_unique<DrdTool>();
  if (Name == "cct")
    return std::make_unique<CctTool>();
  if (Name == "aprof-rms")
    return std::make_unique<RmsProfiler>();
  if (Name == "aprof-trms") {
    if (Opts.ShadowShards > 1) {
      TrmsProfilerOptions ProfOpts;
      ProfOpts.ShadowShards = Opts.ShadowShards;
      return std::make_unique<ShardedTrmsProfiler>(ProfOpts);
    }
    return std::make_unique<TrmsProfiler>();
  }
  if (Name == "aprof-trms-naive")
    return std::make_unique<NaiveTrmsProfiler>();
  return nullptr;
}

std::string isp::renderToolReport(
    Tool &T, const SymbolTable *Symbols,
    const std::map<RoutineId, unsigned> *StaticGrowth) {
  std::string Name = T.name();
  if (Name == "memcheck")
    return static_cast<MemcheckTool &>(T).renderReport(Symbols);
  if (Name == "callgrind")
    return static_cast<CallgrindTool &>(T).renderReport(Symbols);
  if (Name == "helgrind")
    return static_cast<HelgrindTool &>(T).renderReport(Symbols);
  if (Name == "drd")
    return static_cast<DrdTool &>(T).renderReport(Symbols);
  if (Name == "cct")
    return static_cast<CctTool &>(T).renderReport(Symbols);
  if (ProfileDatabase *Db = T.profileDatabase()) {
    if (StaticGrowth != nullptr)
      return renderRunSummary(*Db, Symbols, *StaticGrowth);
    return renderRunSummary(*Db, Symbols);
  }
  return formatString("%s: analysis state %s\n", Name.c_str(),
                      formatBytes(T.memoryFootprintBytes()).c_str());
}
