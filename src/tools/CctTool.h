//===- tools/CctTool.h - Calling-context-tree profiler ----------*- C++ -*-===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A calling-context-tree (CCT) cost profiler: attributes basic-block
/// costs to full call paths rather than flat routines. The paper's
/// related-work section situates input-sensitive profiling among
/// context-sensitive profilers (gprof descendants, callgrind's call
/// graph); this tool supplies the classic context-sensitive view on the
/// same event stream, so reports can say not just "mysql_select is
/// superlinear" but "…when reached via dispatch_query".
///
/// Contexts from different threads that follow the same path share a
/// node (each node also counts the distinct threads that reached it).
///
//===----------------------------------------------------------------------===//

#ifndef ISPROF_TOOLS_CCTTOOL_H
#define ISPROF_TOOLS_CCTTOOL_H

#include "instr/Tool.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace isp {

class CctTool : public Tool {
public:
  /// Index into the node arena; 0 is the synthetic root.
  using NodeIndex = uint32_t;

  struct Node {
    RoutineId Rtn = ~0u;
    NodeIndex Parent = 0;
    uint64_t Calls = 0;
    uint64_t ExclusiveBlocks = 0;
    /// Set lazily by inclusiveBlocks() at report time.
    mutable uint64_t CachedInclusive = 0;
    std::map<RoutineId, NodeIndex> Children;
  };

  CctTool();

  std::string name() const override { return "cct"; }
  /// The calling-context tree is instance-private; safe on any fixed
  /// worker.
  ToolAffinity threadAffinity() const override {
    return ToolAffinity::AnyWorker;
  }
  uint64_t memoryFootprintBytes() const override;

  void onCall(ThreadId Tid, RoutineId Rtn) override;
  void onReturn(ThreadId Tid, RoutineId Rtn) override;
  void onBasicBlock(ThreadId Tid, uint64_t Count) override;
  void onThreadEnd(ThreadId Tid) override;
  void onFinish() override;

  /// Total number of distinct calling contexts observed (excl. root).
  size_t contextCount() const { return Nodes.size() - 1; }

  const std::vector<Node> &nodes() const { return Nodes; }

  /// Exclusive cost of the node plus all descendants.
  uint64_t inclusiveBlocks(NodeIndex Index) const;

  /// "main > dispatch_query > mysql_select" for a node.
  std::string contextPath(NodeIndex Index, const SymbolTable *Symbols) const;

  /// Renders the top \p MaxContexts contexts by exclusive cost.
  std::string renderReport(const SymbolTable *Symbols = nullptr,
                           size_t MaxContexts = 20) const;

private:
  NodeIndex childOf(NodeIndex Parent, RoutineId Rtn);

  std::vector<Node> Nodes;
  /// Per-thread context stack (top = current context).
  std::map<ThreadId, std::vector<NodeIndex>> Stacks;
};

} // namespace isp

#endif // ISPROF_TOOLS_CCTTOOL_H
