//===- tools/ToolRegistry.h - Analysis tool factory -------------*- C++ -*-===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Creates analysis tools by name. Shared by the benchmark harnesses and
/// the isprof command-line driver, so every surface exposes the same
/// tool line-up: the Table 1 set (nulgrind, memcheck, callgrind,
/// helgrind, aprof-rms, aprof-trms) plus the extras (drd, cct,
/// aprof-trms-naive).
///
//===----------------------------------------------------------------------===//

#ifndef ISPROF_TOOLS_TOOLREGISTRY_H
#define ISPROF_TOOLS_TOOLREGISTRY_H

#include "instr/Tool.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace isp {

class SymbolTable;

/// Tool-construction knobs shared by every surface that builds tools
/// (driver, workload runner, benches).
struct ToolOptions {
  /// Shard count for the aprof-trms global wts shadow (power of two;
  /// 1 = the plain single-shard profiler). Other tools ignore it.
  unsigned ShadowShards = 1;
};

/// Creates a fresh tool by name; null for "native" or unknown names
/// (check knownToolName first to distinguish).
std::unique_ptr<Tool> makeTool(const std::string &Name);
/// Same, honoring \p Opts (e.g. "aprof-trms" with ShadowShards > 1
/// builds the sharded-wts profiler; reports stay byte-identical).
std::unique_ptr<Tool> makeTool(const std::string &Name,
                               const ToolOptions &Opts);

/// True when \p Name names a creatable tool or "native".
bool knownToolName(const std::string &Name);

/// All creatable tool names (excluding "native"), registry order.
const std::vector<std::string> &allToolNames();

/// Renders \p T's end-of-run report (error lists, profiles, race
/// reports). Falls back to a one-line footprint summary for tools
/// without a specific report. \p StaticGrowth, when non-null, adds the
/// static-vs-dynamic growth agreement columns to profile summaries
/// (--growth-check).
std::string renderToolReport(Tool &T, const SymbolTable *Symbols,
                             const std::map<RoutineId, unsigned>
                                 *StaticGrowth = nullptr);

} // namespace isp

#endif // ISPROF_TOOLS_TOOLREGISTRY_H
