//===- tools/MemcheckTool.cpp - Memory error checker --------------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "tools/MemcheckTool.h"

#include "support/Compiler.h"
#include "support/Format.h"
#include "vm/Bytecode.h"

using namespace isp;

const char *isp::memErrorKindName(MemError::Kind Kind) {
  switch (Kind) {
  case MemError::Kind::InvalidRead:
    return "invalid read";
  case MemError::Kind::InvalidWrite:
    return "invalid write";
  case MemError::Kind::UninitializedRead:
    return "uninitialized read";
  case MemError::Kind::DoubleFree:
    return "double free";
  case MemError::Kind::BadFree:
    return "bad free";
  case MemError::Kind::Leak:
    return "leaked block";
  }
  ISP_UNREACHABLE("unknown memory error kind");
}

bool MemcheckTool::isHeapAddress(Addr A) {
  return A >= HeapBase && A < StackRegionBase;
}

void MemcheckTool::report(MemError::Kind Kind, ThreadId Tid, Addr A,
                          uint64_t Cells) {
  ++ErrorCount;
  if (Errors.size() < MaxRecordedErrors)
    Errors.push_back({Kind, Tid, A, Cells});
}

void MemcheckTool::checkAccess(ThreadId Tid, Addr A, uint64_t Cells,
                               bool IsWrite, bool CheckInit) {
  for (uint64_t I = 0; I != Cells; ++I) {
    Addr Address = A + I;
    uint8_t &State = Shadow.cell(Address);
    if (isHeapAddress(Address)) {
      if (!(State & ShadowAllocated)) {
        report(IsWrite ? MemError::Kind::InvalidWrite
                       : MemError::Kind::InvalidRead,
               Tid, Address, 1);
        continue;
      }
      if (!IsWrite && CheckInit && !(State & ShadowInit))
        report(MemError::Kind::UninitializedRead, Tid, Address, 1);
    }
    if (IsWrite)
      State |= ShadowInit;
  }
}

void MemcheckTool::onRead(ThreadId Tid, Addr A, uint64_t Cells) {
  checkAccess(Tid, A, Cells, /*IsWrite=*/false, /*CheckInit=*/true);
}

void MemcheckTool::onWrite(ThreadId Tid, Addr A, uint64_t Cells) {
  checkAccess(Tid, A, Cells, /*IsWrite=*/true, /*CheckInit=*/false);
}

void MemcheckTool::onKernelRead(ThreadId Tid, Addr A, uint64_t Cells) {
  // The kernel copies guest memory out: same addressability rules, but
  // sending uninitialized data is only a warning-grade condition in real
  // memcheck; we flag it the same way.
  checkAccess(Tid, A, Cells, /*IsWrite=*/false, /*CheckInit=*/true);
}

void MemcheckTool::onKernelWrite(ThreadId Tid, Addr A, uint64_t Cells) {
  checkAccess(Tid, A, Cells, /*IsWrite=*/true, /*CheckInit=*/false);
}

void MemcheckTool::onAlloc(ThreadId Tid, Addr A, uint64_t Cells) {
  Blocks[A] = {Cells, /*Live=*/true};
  for (uint64_t I = 0; I != Cells; ++I) {
    uint8_t &State = Shadow.cell(A + I);
    State = ShadowAllocated; // clears Init and Freed from any prior block
  }
}

void MemcheckTool::onFree(ThreadId Tid, Addr A) {
  auto It = Blocks.find(A);
  if (It == Blocks.end()) {
    report(MemError::Kind::BadFree, Tid, A, 0);
    return;
  }
  if (!It->second.Live) {
    report(MemError::Kind::DoubleFree, Tid, A, It->second.Cells);
    return;
  }
  It->second.Live = false;
  for (uint64_t I = 0; I != It->second.Cells; ++I) {
    uint8_t &State = Shadow.cell(A + I);
    State = static_cast<uint8_t>((State & ~ShadowAllocated) | ShadowFreed);
  }
}

void MemcheckTool::onFinish() {
  for (const auto &[Base, Block] : Blocks) {
    if (Block.Live) {
      LeakedCells += Block.Cells;
      report(MemError::Kind::Leak, 0, Base, Block.Cells);
    }
  }
}

uint64_t MemcheckTool::memoryFootprintBytes() const {
  return Shadow.totalBytes() +
         Blocks.size() * (sizeof(Addr) + sizeof(HeapBlock) + 48) +
         Errors.capacity() * sizeof(MemError);
}

std::string MemcheckTool::renderReport(const SymbolTable *Symbols) const {
  std::string Out =
      formatString("memcheck: %llu error(s), %llu leaked cell(s)\n",
                   static_cast<unsigned long long>(ErrorCount),
                   static_cast<unsigned long long>(LeakedCells));
  for (const MemError &E : Errors)
    Out += formatString("  %s at address %llu (thread %u, %llu cell(s))\n",
                        memErrorKindName(E.ErrorKind),
                        static_cast<unsigned long long>(E.Address), E.Tid,
                        static_cast<unsigned long long>(E.Cells));
  return Out;
}
