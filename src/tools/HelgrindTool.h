//===- tools/HelgrindTool.h - Happens-before race detector ------*- C++ -*-===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The helgrind analogue: a vector-clock happens-before data-race
/// detector over the serialized event stream. Synchronization edges come
/// from semaphore/lock release->acquire pairs and from thread
/// create/start and end/join pairs. Per memory cell it keeps FastTrack-
/// style *epochs* (last-write and last-read (thread, clock) pairs packed
/// into one shadow word each), reporting a race when an access is not
/// ordered after the previous conflicting access. Keeping a single read
/// epoch (not a full read vector clock) trades a small class of
/// read-shared false negatives for a flat two-words-per-cell shadow —
/// the same engineering compromise FastTrack motivates.
///
/// In Table 1 terms this is the tool whose workload most resembles
/// aprof-trms (per-access shadow lookups plus cross-thread metadata),
/// and in the paper it is the slowest of the compared tools.
///
//===----------------------------------------------------------------------===//

#ifndef ISPROF_TOOLS_HELGRINDTOOL_H
#define ISPROF_TOOLS_HELGRINDTOOL_H

#include "instr/Tool.h"
#include "shadow/ShadowMemory.h"

#include <map>
#include <string>
#include <vector>

namespace isp {

/// One reported data race.
struct RaceReport {
  Addr Address = 0;
  ThreadId FirstTid = 0;
  ThreadId SecondTid = 0;
  bool FirstWasWrite = false;
  bool SecondWasWrite = false;
};

class HelgrindTool : public Tool {
public:
  std::string name() const override { return "helgrind"; }
  /// Lockset state and race reports are instance-private; safe on any
  /// fixed worker.
  ToolAffinity threadAffinity() const override {
    return ToolAffinity::AnyWorker;
  }
  uint64_t memoryFootprintBytes() const override;

  void onThreadStart(ThreadId Tid, ThreadId Parent) override;
  void onThreadEnd(ThreadId Tid) override;
  void onThreadCreate(ThreadId Tid, ThreadId Child) override;
  void onThreadJoin(ThreadId Tid, ThreadId Child) override;
  void onSyncAcquire(ThreadId Tid, SyncId Id, bool IsLock) override;
  void onSyncRelease(ThreadId Tid, SyncId Id, bool IsLock) override;
  void onRead(ThreadId Tid, Addr A, uint64_t Cells) override;
  void onWrite(ThreadId Tid, Addr A, uint64_t Cells) override;
  void onKernelWrite(ThreadId Tid, Addr A, uint64_t Cells) override;

  uint64_t racesDetected() const { return RaceCount; }
  const std::vector<RaceReport> &races() const { return Races; }
  std::string renderReport(const SymbolTable *Symbols = nullptr) const;

private:
  using VectorClock = std::vector<uint64_t>;

  /// Epochs pack (clock << 20 | tid + 1); 0 means "no access yet".
  static uint64_t packEpoch(ThreadId Tid, uint64_t Clock) {
    return (Clock << 20) | (static_cast<uint64_t>(Tid) + 1);
  }
  static ThreadId epochTid(uint64_t Epoch) {
    return static_cast<ThreadId>((Epoch & 0xfffff) - 1);
  }
  static uint64_t epochClock(uint64_t Epoch) { return Epoch >> 20; }

  VectorClock &clockOf(ThreadId Tid);
  static void joinInto(VectorClock &Into, const VectorClock &From);
  /// True when the epoch's access happens-before thread \p Tid's now.
  bool happensBefore(uint64_t Epoch, ThreadId Tid);
  void reportRace(Addr A, uint64_t PrevEpoch, bool PrevWasWrite,
                  ThreadId Tid, bool IsWrite);
  void accessCell(ThreadId Tid, Addr A, bool IsWrite);

  std::map<ThreadId, VectorClock> ThreadClocks;
  std::map<SyncId, VectorClock> SyncClocks;
  std::map<ThreadId, VectorClock> InheritedClocks;
  std::map<ThreadId, VectorClock> FinalClocks;
  ThreeLevelShadow<uint64_t> WriteEpochs;
  ThreeLevelShadow<uint64_t> ReadEpochs;
  std::vector<RaceReport> Races;
  uint64_t RaceCount = 0;
  static constexpr size_t MaxRecordedRaces = 64;
};

} // namespace isp

#endif // ISPROF_TOOLS_HELGRINDTOOL_H
