//===- tools/DrdTool.h - Lockset-based race detector ------------*- C++ -*-===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The DRD analogue: an Eraser-style *lockset* data-race detector, the
/// other Valgrind race checker the paper names alongside helgrind. Each
/// shared location carries a candidate lockset — the intersection of
/// the mutexes held at every access — refined through the classic state
/// machine (virgin -> exclusive -> shared -> shared-modified); a race is
/// reported when a shared-modified location's candidate set becomes
/// empty.
///
/// The two detectors deliberately embody the two classic designs:
/// HelgrindTool tracks happens-before with vector clocks (no false
/// positives on semaphore- or join-ordered code, but misses races that
/// a particular schedule happened to order), while DrdTool's locksets
/// are schedule-insensitive but flag lock-free synchronization — e.g.
/// a semaphore-paired producer/consumer — as racy. The tool tests pin
/// down both behaviours.
///
//===----------------------------------------------------------------------===//

#ifndef ISPROF_TOOLS_DRDTOOL_H
#define ISPROF_TOOLS_DRDTOOL_H

#include "instr/Tool.h"
#include "shadow/ShadowMemory.h"

#include <map>
#include <string>
#include <vector>

namespace isp {

class DrdTool : public Tool {
public:
  std::string name() const override { return "drd"; }
  /// Vector-clock state and race reports are instance-private; safe on
  /// any fixed worker.
  ToolAffinity threadAffinity() const override {
    return ToolAffinity::AnyWorker;
  }
  uint64_t memoryFootprintBytes() const override;

  void onRead(ThreadId Tid, Addr A, uint64_t Cells) override;
  void onWrite(ThreadId Tid, Addr A, uint64_t Cells) override;
  void onKernelWrite(ThreadId Tid, Addr A, uint64_t Cells) override;
  void onSyncAcquire(ThreadId Tid, SyncId Id, bool IsLock) override;
  void onSyncRelease(ThreadId Tid, SyncId Id, bool IsLock) override;

  uint64_t racesDetected() const { return RaceCount; }
  /// Addresses of the first reported races (bounded).
  const std::vector<Addr> &racyAddresses() const { return RacyAddresses; }
  std::string renderReport(const SymbolTable *Symbols = nullptr) const;

private:
  /// Location states of the Eraser state machine.
  enum State : uint8_t {
    Virgin = 0,        ///< never accessed
    Exclusive = 1,     ///< single thread so far (owner tracked)
    Shared = 2,        ///< multiple readers
    SharedModified = 3 ///< multiple threads incl. a writer: check locksets
  };

  /// Shadow word layout: [locksetId:32 | owner+1:22 | reported:1 |
  /// state:2] packed so one lookup yields everything.
  static uint64_t pack(State S, ThreadId Owner, uint32_t LockSet,
                       bool Reported) {
    return (static_cast<uint64_t>(LockSet) << 32) |
           (static_cast<uint64_t>(Owner + 1) << 3) |
           (Reported ? 4u : 0u) | static_cast<uint64_t>(S);
  }
  static State stateOf(uint64_t W) { return static_cast<State>(W & 3); }
  static bool reportedOf(uint64_t W) { return (W & 4) != 0; }
  static ThreadId ownerOf(uint64_t W) {
    return static_cast<ThreadId>(((W >> 3) & 0x1fffffff) - 1);
  }
  static uint32_t locksetOf(uint64_t W) {
    return static_cast<uint32_t>(W >> 32);
  }

  /// Interns \p Set (sorted) and returns its id. Id 0 is the empty set.
  uint32_t internLockset(const std::vector<SyncId> &Set);
  /// Id of the intersection of interned sets \p A and \p B.
  uint32_t intersect(uint32_t A, uint32_t B);
  /// Current held-lockset id of \p Tid.
  uint32_t heldOf(ThreadId Tid);

  void accessCell(ThreadId Tid, Addr A, bool IsWrite);
  void reportRace(Addr A, uint64_t &Word);

  ThreeLevelShadow<uint64_t> Shadow;
  std::map<ThreadId, std::vector<SyncId>> Held;
  std::map<ThreadId, uint32_t> HeldId;
  std::vector<std::vector<SyncId>> Locksets{{}};
  std::map<std::vector<SyncId>, uint32_t> LocksetIds{{{}, 0}};
  uint64_t RaceCount = 0;
  std::vector<Addr> RacyAddresses;
  static constexpr size_t MaxRecordedRaces = 64;
};

} // namespace isp

#endif // ISPROF_TOOLS_DRDTOOL_H
