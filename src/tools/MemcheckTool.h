//===- tools/MemcheckTool.h - Memory error checker --------------*- C++ -*-===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The memcheck analogue: a shadow-memory tool detecting, from the event
/// stream alone, (a) accesses to unallocated or freed heap cells,
/// (b) reads of heap cells never initialized since allocation,
/// (c) double frees and bad free addresses, and (d) leaked heap blocks
/// at program end. Like the original, it keys entirely off memory and
/// allocation events (it ignores call/return), which is why its Table 1
/// cost profile differs from the call-tracing tools.
///
//===----------------------------------------------------------------------===//

#ifndef ISPROF_TOOLS_MEMCHECKTOOL_H
#define ISPROF_TOOLS_MEMCHECKTOOL_H

#include "instr/Tool.h"
#include "shadow/ShadowMemory.h"

#include <map>
#include <string>
#include <vector>

namespace isp {

/// One reported memory error.
struct MemError {
  enum class Kind {
    InvalidRead,
    InvalidWrite,
    UninitializedRead,
    DoubleFree,
    BadFree,
    Leak
  };
  Kind ErrorKind;
  ThreadId Tid = 0;
  Addr Address = 0;
  uint64_t Cells = 0;
};

const char *memErrorKindName(MemError::Kind Kind);

class MemcheckTool : public Tool {
public:
  std::string name() const override { return "memcheck"; }
  /// All analysis state (addressability/definedness shadows, the
  /// allocation map, the error log) is instance-private and touched
  /// only from callbacks, so any fixed worker may drive this tool.
  ToolAffinity threadAffinity() const override {
    return ToolAffinity::AnyWorker;
  }
  uint64_t memoryFootprintBytes() const override;

  void onRead(ThreadId Tid, Addr A, uint64_t Cells) override;
  void onWrite(ThreadId Tid, Addr A, uint64_t Cells) override;
  void onKernelRead(ThreadId Tid, Addr A, uint64_t Cells) override;
  void onKernelWrite(ThreadId Tid, Addr A, uint64_t Cells) override;
  void onAlloc(ThreadId Tid, Addr A, uint64_t Cells) override;
  void onFree(ThreadId Tid, Addr A) override;
  void onFinish() override;

  const std::vector<MemError> &errors() const { return Errors; }
  uint64_t totalErrors() const { return ErrorCount; }
  uint64_t leakedCells() const { return LeakedCells; }

  /// Renders a memcheck-style error summary.
  std::string renderReport(const SymbolTable *Symbols = nullptr) const;

private:
  /// Per-cell shadow state bits.
  enum : uint8_t {
    ShadowAllocated = 1 << 0, ///< inside a live heap block
    ShadowInit = 1 << 1,      ///< written since allocation
    ShadowFreed = 1 << 2      ///< inside a freed heap block
  };

  struct HeapBlock {
    uint64_t Cells = 0;
    bool Live = false;
  };

  void report(MemError::Kind Kind, ThreadId Tid, Addr A, uint64_t Cells);
  void checkAccess(ThreadId Tid, Addr A, uint64_t Cells, bool IsWrite,
                   bool CheckInit);
  static bool isHeapAddress(Addr A);

  ThreeLevelShadow<uint8_t> Shadow;
  std::map<Addr, HeapBlock> Blocks;
  std::vector<MemError> Errors;
  uint64_t ErrorCount = 0;
  uint64_t LeakedCells = 0;
  static constexpr size_t MaxRecordedErrors = 64;
};

} // namespace isp

#endif // ISPROF_TOOLS_MEMCHECKTOOL_H
