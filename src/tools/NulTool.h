//===- tools/NulTool.h - The nulgrind analogue ------------------*- C++ -*-===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "null" analysis tool: subscribes to every event and does nothing
/// with it. Like nulgrind in the paper's Table 1, it isolates the cost
/// of the instrumentation substrate itself — every other tool's
/// slowdown is reported relative to this baseline.
///
//===----------------------------------------------------------------------===//

#ifndef ISPROF_TOOLS_NULTOOL_H
#define ISPROF_TOOLS_NULTOOL_H

#include "instr/Tool.h"

#include <string>

namespace isp {

class NulTool : public Tool {
public:
  std::string name() const override { return "nulgrind"; }
  /// One private counter; safe on any fixed worker.
  ToolAffinity threadAffinity() const override {
    return ToolAffinity::AnyWorker;
  }

  uint64_t eventsSeen() const { return Events; }

  void onThreadStart(ThreadId, ThreadId) override { ++Events; }
  void onThreadEnd(ThreadId) override { ++Events; }
  void onThreadSwitch(ThreadId) override { ++Events; }
  void onCall(ThreadId, RoutineId) override { ++Events; }
  void onReturn(ThreadId, RoutineId) override { ++Events; }
  void onBasicBlock(ThreadId, uint64_t) override { ++Events; }
  void onRead(ThreadId, Addr, uint64_t) override { ++Events; }
  void onWrite(ThreadId, Addr, uint64_t) override { ++Events; }
  void onKernelRead(ThreadId, Addr, uint64_t) override { ++Events; }
  void onKernelWrite(ThreadId, Addr, uint64_t) override { ++Events; }
  void onSyncAcquire(ThreadId, SyncId, bool) override { ++Events; }
  void onSyncRelease(ThreadId, SyncId, bool) override { ++Events; }
  void onThreadCreate(ThreadId, ThreadId) override { ++Events; }
  void onThreadJoin(ThreadId, ThreadId) override { ++Events; }
  void onAlloc(ThreadId, Addr, uint64_t) override { ++Events; }
  void onFree(ThreadId, Addr) override { ++Events; }

private:
  uint64_t Events = 0;
};

} // namespace isp

#endif // ISPROF_TOOLS_NULTOOL_H
