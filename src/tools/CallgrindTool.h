//===- tools/CallgrindTool.h - Call-graph profiler --------------*- C++ -*-===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The callgrind analogue: a call-graph profiler that attributes
/// basic-block costs to routines, maintaining exclusive and inclusive
/// counts and caller->callee edges. Like the original it instruments
/// calls/returns and basic blocks but *not* individual memory accesses,
/// making it the cheap end of the Table 1 comparison.
///
//===----------------------------------------------------------------------===//

#ifndef ISPROF_TOOLS_CALLGRINDTOOL_H
#define ISPROF_TOOLS_CALLGRINDTOOL_H

#include "instr/Tool.h"

#include <map>
#include <string>
#include <vector>

namespace isp {

class CallgrindTool : public Tool {
public:
  struct RoutineCost {
    uint64_t Calls = 0;
    uint64_t ExclusiveBlocks = 0;
    uint64_t InclusiveBlocks = 0;
  };

  std::string name() const override { return "callgrind"; }
  /// Per-routine cost tallies are instance-private; safe on any fixed
  /// worker.
  ToolAffinity threadAffinity() const override {
    return ToolAffinity::AnyWorker;
  }
  uint64_t memoryFootprintBytes() const override;

  void onCall(ThreadId Tid, RoutineId Rtn) override;
  void onReturn(ThreadId Tid, RoutineId Rtn) override;
  void onBasicBlock(ThreadId Tid, uint64_t Count) override;
  void onThreadEnd(ThreadId Tid) override;
  void onFinish() override;

  const std::map<RoutineId, RoutineCost> &routineCosts() const {
    return Costs;
  }
  /// (caller, callee) -> call count; callers of thread entry functions
  /// are recorded as the callee itself.
  const std::map<std::pair<RoutineId, RoutineId>, uint64_t> &
  callEdges() const {
    return Edges;
  }

  /// Renders a flat profile sorted by exclusive cost.
  std::string renderReport(const SymbolTable *Symbols = nullptr,
                           size_t MaxRoutines = 20) const;

private:
  struct StackEntry {
    RoutineId Rtn = 0;
    uint64_t BlocksAtEntry = 0;
    /// Recursion guard: only the outermost activation of a routine adds
    /// to its inclusive count.
    bool CountsInclusive = false;
  };

  struct ThreadState {
    std::vector<StackEntry> Stack;
    std::vector<uint32_t> OnStackCount; // indexed by RoutineId
    uint64_t Blocks = 0;
  };

  void unwind(ThreadState &TS);
  void popEntry(ThreadState &TS);

  std::map<ThreadId, ThreadState> Threads;
  std::map<RoutineId, RoutineCost> Costs;
  std::map<std::pair<RoutineId, RoutineId>, uint64_t> Edges;
};

} // namespace isp

#endif // ISPROF_TOOLS_CALLGRINDTOOL_H
