//===- tools/DrdTool.cpp - Lockset-based race detector -------------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "tools/DrdTool.h"

#include "support/Format.h"

#include <algorithm>

using namespace isp;

uint32_t DrdTool::internLockset(const std::vector<SyncId> &Set) {
  auto It = LocksetIds.find(Set);
  if (It != LocksetIds.end())
    return It->second;
  uint32_t Id = static_cast<uint32_t>(Locksets.size());
  Locksets.push_back(Set);
  LocksetIds.emplace(Set, Id);
  return Id;
}

uint32_t DrdTool::intersect(uint32_t A, uint32_t B) {
  if (A == B)
    return A;
  if (A == 0 || B == 0)
    return 0;
  const std::vector<SyncId> &SA = Locksets[A];
  const std::vector<SyncId> &SB = Locksets[B];
  std::vector<SyncId> Out;
  std::set_intersection(SA.begin(), SA.end(), SB.begin(), SB.end(),
                        std::back_inserter(Out));
  return internLockset(Out);
}

uint32_t DrdTool::heldOf(ThreadId Tid) {
  auto It = HeldId.find(Tid);
  return It == HeldId.end() ? 0 : It->second;
}

void DrdTool::onSyncAcquire(ThreadId Tid, SyncId Id, bool IsLock) {
  if (!IsLock)
    return; // semaphores do not contribute to locksets (Eraser model)
  std::vector<SyncId> &Set = Held[Tid];
  auto Pos = std::lower_bound(Set.begin(), Set.end(), Id);
  if (Pos == Set.end() || *Pos != Id)
    Set.insert(Pos, Id);
  HeldId[Tid] = internLockset(Set);
}

void DrdTool::onSyncRelease(ThreadId Tid, SyncId Id, bool IsLock) {
  if (!IsLock)
    return;
  std::vector<SyncId> &Set = Held[Tid];
  auto Pos = std::lower_bound(Set.begin(), Set.end(), Id);
  if (Pos != Set.end() && *Pos == Id)
    Set.erase(Pos);
  HeldId[Tid] = internLockset(Set);
}

void DrdTool::reportRace(Addr A, uint64_t &Word) {
  if (reportedOf(Word))
    return; // one report per location
  ++RaceCount;
  if (RacyAddresses.size() < MaxRecordedRaces)
    RacyAddresses.push_back(A);
  Word |= 4; // set the reported bit
}

void DrdTool::accessCell(ThreadId Tid, Addr A, bool IsWrite) {
  uint64_t &Word = Shadow.cell(A);
  State S = stateOf(Word);
  switch (S) {
  case Virgin:
    Word = pack(Exclusive, Tid, heldOf(Tid), false);
    return;
  case Exclusive: {
    if (ownerOf(Word) == Tid) {
      Word = pack(Exclusive, Tid, heldOf(Tid), reportedOf(Word));
      return;
    }
    // Eraser's initialization refinement: the exclusive phase counts as
    // initialization, so the candidate set starts from the *incoming*
    // thread's locks rather than intersecting with the initializer's
    // (which is typically lock-free and would flag every init-then-share
    // pattern).
    uint32_t Candidate = heldOf(Tid);
    State Next = IsWrite ? SharedModified : Shared;
    Word = pack(Next, Tid, Candidate, reportedOf(Word));
    if (Next == SharedModified && Candidate == 0)
      reportRace(A, Word);
    return;
  }
  case Shared: {
    uint32_t Candidate = intersect(locksetOf(Word), heldOf(Tid));
    State Next = IsWrite ? SharedModified : Shared;
    Word = pack(Next, Tid, Candidate, reportedOf(Word));
    if (Next == SharedModified && Candidate == 0)
      reportRace(A, Word);
    return;
  }
  case SharedModified: {
    uint32_t Candidate = intersect(locksetOf(Word), heldOf(Tid));
    Word = pack(SharedModified, Tid, Candidate, reportedOf(Word));
    if (Candidate == 0)
      reportRace(A, Word);
    return;
  }
  }
}

void DrdTool::onRead(ThreadId Tid, Addr A, uint64_t Cells) {
  for (uint64_t I = 0; I != Cells; ++I)
    accessCell(Tid, A + I, /*IsWrite=*/false);
}

void DrdTool::onWrite(ThreadId Tid, Addr A, uint64_t Cells) {
  for (uint64_t I = 0; I != Cells; ++I)
    accessCell(Tid, A + I, /*IsWrite=*/true);
}

void DrdTool::onKernelWrite(ThreadId Tid, Addr A, uint64_t Cells) {
  // A kernel fill resets the cells' history: the requesting thread owns
  // the fresh data.
  for (uint64_t I = 0; I != Cells; ++I)
    Shadow.cell(A + I) = pack(Exclusive, Tid, heldOf(Tid), false);
}

uint64_t DrdTool::memoryFootprintBytes() const {
  uint64_t Total = Shadow.totalBytes();
  for (const auto &[Tid, Set] : Held)
    Total += Set.capacity() * sizeof(SyncId) + 48;
  for (const auto &Set : Locksets)
    Total += Set.capacity() * sizeof(SyncId) + sizeof(Set);
  return Total;
}

std::string DrdTool::renderReport(const SymbolTable *Symbols) const {
  std::string Out = formatString(
      "drd: %llu location(s) with empty candidate lockset\n",
      static_cast<unsigned long long>(RaceCount));
  for (Addr A : RacyAddresses)
    Out += formatString("  possible race at address %llu\n",
                        static_cast<unsigned long long>(A));
  return Out;
}
