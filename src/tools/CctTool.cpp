//===- tools/CctTool.cpp - Calling-context-tree profiler -----------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "tools/CctTool.h"

#include "instr/SymbolTable.h"
#include "support/Format.h"
#include "support/Table.h"

#include <algorithm>

using namespace isp;

CctTool::CctTool() {
  Nodes.emplace_back(); // synthetic root
}

CctTool::NodeIndex CctTool::childOf(NodeIndex Parent, RoutineId Rtn) {
  auto [It, Inserted] =
      Nodes[Parent].Children.try_emplace(Rtn, NodeIndex(0));
  if (Inserted) {
    It->second = static_cast<NodeIndex>(Nodes.size());
    Node N;
    N.Rtn = Rtn;
    N.Parent = Parent;
    Nodes.push_back(std::move(N));
  }
  return It->second;
}

void CctTool::onCall(ThreadId Tid, RoutineId Rtn) {
  std::vector<NodeIndex> &Stack = Stacks[Tid];
  NodeIndex Parent = Stack.empty() ? 0 : Stack.back();
  NodeIndex Child = childOf(Parent, Rtn);
  ++Nodes[Child].Calls;
  Stack.push_back(Child);
}

void CctTool::onReturn(ThreadId Tid, RoutineId Rtn) {
  std::vector<NodeIndex> &Stack = Stacks[Tid];
  if (!Stack.empty())
    Stack.pop_back();
}

void CctTool::onBasicBlock(ThreadId Tid, uint64_t Count) {
  std::vector<NodeIndex> &Stack = Stacks[Tid];
  if (!Stack.empty())
    Nodes[Stack.back()].ExclusiveBlocks += Count;
}

void CctTool::onThreadEnd(ThreadId Tid) { Stacks.erase(Tid); }

void CctTool::onFinish() { Stacks.clear(); }

uint64_t CctTool::inclusiveBlocks(NodeIndex Index) const {
  const Node &N = Nodes[Index];
  uint64_t Total = N.ExclusiveBlocks;
  for (const auto &[Rtn, Child] : N.Children)
    Total += inclusiveBlocks(Child);
  N.CachedInclusive = Total;
  return Total;
}

std::string CctTool::contextPath(NodeIndex Index,
                                 const SymbolTable *Symbols) const {
  std::vector<RoutineId> Path;
  for (NodeIndex Cursor = Index; Cursor != 0;
       Cursor = Nodes[Cursor].Parent)
    Path.push_back(Nodes[Cursor].Rtn);
  std::string Out;
  for (auto It = Path.rbegin(); It != Path.rend(); ++It) {
    if (!Out.empty())
      Out += " > ";
    Out += Symbols ? Symbols->routineName(*It) : formatString("#%u", *It);
  }
  return Out;
}

std::string CctTool::renderReport(const SymbolTable *Symbols,
                                  size_t MaxContexts) const {
  std::vector<NodeIndex> Ranked;
  for (NodeIndex I = 1; I < Nodes.size(); ++I)
    Ranked.push_back(I);
  std::sort(Ranked.begin(), Ranked.end(),
            [this](NodeIndex L, NodeIndex R) {
              return Nodes[L].ExclusiveBlocks > Nodes[R].ExclusiveBlocks;
            });
  if (Ranked.size() > MaxContexts)
    Ranked.resize(MaxContexts);

  TextTable Table;
  Table.setHeader({"context", "calls", "excl(BB)", "incl(BB)"});
  for (NodeIndex I : Ranked)
    Table.addRow({contextPath(I, Symbols),
                  formatWithCommas(Nodes[I].Calls),
                  formatWithCommas(Nodes[I].ExclusiveBlocks),
                  formatWithCommas(inclusiveBlocks(I))});
  std::string Out = formatString("cct: %zu distinct calling contexts\n",
                                 contextCount());
  Out += Table.render();
  return Out;
}

uint64_t CctTool::memoryFootprintBytes() const {
  uint64_t Total = Nodes.capacity() * sizeof(Node);
  for (const Node &N : Nodes)
    Total += N.Children.size() * 48;
  for (const auto &[Tid, Stack] : Stacks)
    Total += Stack.capacity() * sizeof(NodeIndex) + 48;
  return Total;
}
