//===- replay/ParallelReplay.h - Shard-partitioned replay -------*- C++ -*-===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parallel replay of a chunked trace stream into the trms profiler,
/// partitioned by shadow shard with epoch-barrier coordination.
///
/// The reader thread is the serial step: it decodes chunks, applies
/// every non-memory event directly, and for each memory access runs the
/// serial half (counter bumps, global tallies — replayPrepareMemOp),
/// splits the address range at 512-cell shadow-chunk boundaries, and
/// routes each piece to the worker that owns its shard (shard mod
/// workers) through a bounded SPSC queue. Workers apply the shard-local
/// half: shadow-cell updates confined to their own shards, with the
/// classification side effects accumulated in per-worker commutative
/// delta sets.
///
/// Epochs: between barriers every shadow stack is frozen and the global
/// counter only moves on the reader, so workers race only on disjoint
/// shadow shards. Any event that unfreezes a stack (Call, Return,
/// ThreadEnd) seals the epoch for the workers holding that thread's
/// in-flight ops — an in-band seal sentinel drains each such queue, the
/// worker's deltas are folded into the real frames, and only then does
/// the serial step apply the event. A possible counter renumbering
/// (which rewrites every shard) seals ALL workers first. Thread starts
/// and basic blocks touch no shared shadow state and need no barrier.
///
/// Reports are byte-identical to serial replay at every (shards ×
/// workers) combination because each shadow cell still observes the
/// exact serial sequence of updates (per-cell updates are totally
/// ordered by the stamped counter values within an epoch and by
/// barriers across epochs), and all classification increments are
/// commutative sums merged before anything reads them.
///
//===----------------------------------------------------------------------===//

#ifndef ISPROF_REPLAY_PARALLELREPLAY_H
#define ISPROF_REPLAY_PARALLELREPLAY_H

#include "core/TrmsProfiler.h"

#include <cstddef>
#include <cstdint>

namespace isp {

class SymbolTable;
class TraceStreamReader;

struct ParallelReplayOptions {
  /// Upper bound on --replay-workers (sanity, not tuning).
  static constexpr unsigned MaxWorkers = 32;

  /// Worker thread count. 0 runs the identical demux/epoch machinery
  /// with in-line application on the calling thread and no threads
  /// spawned — the degenerate configuration the byte-identity tests
  /// anchor on. Capped at the profiler's shard count (extra workers
  /// would own no shard).
  unsigned Workers = 0;
  /// Per-worker queue capacity in ops (rounded up to a power of two).
  size_t QueueCapacity = size_t(1) << 14;
};

/// Replay statistics, also published as replay.* obs metrics when stats
/// collection is enabled.
struct ParallelReplayStats {
  uint64_t Workers = 0;
  /// Epoch seals performed (each drains at least one worker queue).
  uint64_t Epochs = 0;
  /// Seals where the reader actually had to wait for a worker.
  uint64_t BarrierWaits = 0;
  uint64_t BarrierWaitNs = 0;
  /// (chunk, worker) pairs skipped via the v2 shard-activity masks.
  uint64_t ChunksSkipped = 0;
  /// High-water mark of any worker queue's occupancy.
  uint64_t QueueDepthMax = 0;
  /// Memory events prepared, and shard-local pieces routed.
  uint64_t MemOps = 0;
  uint64_t ShardOps = 0;
};

/// Replays \p Reader from its current cursor position (seek first to
/// resume mid-stream) into \p P. Returns false on a read error
/// (Reader.error() explains); \p P still sees onFinish so partial
/// results are well-formed. \p EventsOut, when non-null, receives the
/// number of events replayed.
bool parallelReplayStream(TraceStreamReader &Reader, ParallelReplayProfiler &P,
                          const SymbolTable *Symbols,
                          const ParallelReplayOptions &Opts = {},
                          ParallelReplayStats *StatsOut = nullptr,
                          uint64_t *EventsOut = nullptr);

} // namespace isp

#endif // ISPROF_REPLAY_PARALLELREPLAY_H
