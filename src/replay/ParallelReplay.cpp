//===- replay/ParallelReplay.cpp - Shard-partitioned replay ------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "replay/ParallelReplay.h"

#include "instr/SpscQueue.h"
#include "obs/Obs.h"
#include "support/Compiler.h"
#include "trace/TraceStream.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

using namespace isp;

// The stream's activity-mask geometry must mirror the shadow layout the
// profiler shards by, or mask-driven skipping would consult the wrong
// slots.
static_assert(ActivityChunkShift == ShardedShadow<uint64_t>::OffsetBits,
              "stream activity masks disagree with shadow chunk geometry");
static_assert(ActivityShardSlots == ShardedShadow<uint64_t>::MaxShards,
              "stream activity masks disagree with shadow shard bound");

namespace {

constexpr size_t ShadowChunkCells = ShardedShadow<uint64_t>::ChunkCells;

/// One queued unit of shard-local work. Control discriminates: 0 = a
/// memory sub-op confined to one shadow chunk (hence one shard), 1 = an
/// epoch seal (Count carries the seal sequence number), 2 = shutdown.
struct ShardOp {
  Addr A = 0;
  uint64_t Count = 0;
  void *State = nullptr;
  ThreadId Tid = 0;
  uint16_t Cells = 0;
  uint8_t Kind = 0;
  uint8_t Control = 0;
};

class ReplayEngine {
public:
  ReplayEngine(TraceStreamReader &Reader, ParallelReplayProfiler &P,
               const ParallelReplayOptions &Opts)
      : Reader(Reader), P(P), Opts(Opts) {}

  bool run(const SymbolTable *Symbols);

  ParallelReplayStats Stats;
  uint64_t Replayed = 0;

private:
  struct Worker {
    explicit Worker(size_t QueueCapacity) : Queue(QueueCapacity) {}
    SpscQueue<ShardOp> Queue;
    TrmsReplayDeltas Deltas;
    std::thread Thread;
    /// Highest seal sequence the worker has fully drained to.
    alignas(64) std::atomic<uint64_t> AckedSeal{0};
    /// Reader-side bookkeeping: last seal pushed, whether any op was
    /// routed since, and which threads those ops belong to.
    uint64_t SealSeq = 0;
    bool Pending = false;
    std::vector<ThreadId> TouchedTids;
    /// Which of the 256 activity-mask slots fold to a shard this worker
    /// owns (precomputed for the chunk-skip test).
    ShardActivityMask OwnedSlots = {};
  };

  void processEvent(const EventRecord &E);
  void routeMemOp(const EventRecord &E);
  void sealWorkers(uint32_t WorkerMask);
  void barrierThread(ThreadId Tid);
  void barrierAll();
  void noteChunkActivity(size_t ChunkIndex);
  void workerMain(Worker &W);

  TraceStreamReader &Reader;
  ParallelReplayProfiler &P;
  ParallelReplayOptions Opts;

  unsigned NumWorkers = 0;
  std::vector<std::unique_ptr<Worker>> Workers;
  /// Tid -> bitmask of workers holding in-flight ops for that thread.
  std::vector<uint32_t> ThreadWorkerMask;
  /// Workers == 0: ops apply in-line, deltas still flow through the
  /// same merge points so the decomposition itself is what runs.
  TrmsReplayDeltas InlineDeltas;
  bool InlinePending = false;

  std::mutex AckMutex;
  std::condition_variable AckReady;
};

void ReplayEngine::workerMain(Worker &W) {
  std::vector<ShardOp> Batch(256);
  for (;;) {
    size_t N = W.Queue.popBatch(Batch.data(), Batch.size());
    for (size_t I = 0; I != N; ++I) {
      const ShardOp &Op = Batch[I];
      if (ISP_LIKELY(Op.Control == 0)) {
        TrmsReplayOp R;
        R.Kind = static_cast<EventKind>(Op.Kind);
        R.Tid = Op.Tid;
        R.Count = Op.Count;
        R.State = Op.State;
        P.replayApplyMemOp(R, Op.A, Op.Cells, W.Deltas);
      } else if (Op.Control == 1) {
        W.AckedSeal.store(Op.Count, std::memory_order_release);
        { std::lock_guard<std::mutex> Lock(AckMutex); }
        AckReady.notify_all();
      } else {
        return;
      }
    }
  }
}

void ReplayEngine::routeMemOp(const EventRecord &E) {
  TrmsReplayOp Op;
  P.replayPrepareMemOp(E, Op);
  ++Stats.MemOps;
  if (NumWorkers == 0) {
    if (E.Arg1 != 0) {
      P.replayApplyMemOp(Op, E.Arg0, E.Arg1, InlineDeltas);
      InlinePending = true;
      ++Stats.ShardOps;
    }
    return;
  }
  // Split at shadow-chunk boundaries: each piece lives in exactly one
  // shard, so it routes to exactly one worker's queue.
  Addr A = E.Arg0;
  uint64_t Cells = E.Arg1;
  while (Cells != 0) {
    size_t Off = static_cast<size_t>(A & (ShadowChunkCells - 1));
    uint64_t Span = std::min<uint64_t>(Cells, ShadowChunkCells - Off);
    unsigned Index =
        static_cast<unsigned>(P.replayShardOf(A) % NumWorkers);
    Worker &W = *Workers[Index];
    ShardOp Piece;
    Piece.A = A;
    Piece.Count = Op.Count;
    Piece.State = Op.State;
    Piece.Tid = Op.Tid;
    Piece.Cells = static_cast<uint16_t>(Span);
    Piece.Kind = static_cast<uint8_t>(Op.Kind);
    W.Queue.push(Piece);
    ++Stats.ShardOps;
    W.Pending = true;
    if (Op.Tid >= ThreadWorkerMask.size())
      ThreadWorkerMask.resize(Op.Tid + 1, 0);
    uint32_t Bit = uint32_t(1) << Index;
    if (!(ThreadWorkerMask[Op.Tid] & Bit)) {
      ThreadWorkerMask[Op.Tid] |= Bit;
      W.TouchedTids.push_back(Op.Tid);
    }
    A += Span;
    Cells -= Span;
  }
}

void ReplayEngine::sealWorkers(uint32_t WorkerMask) {
  if (NumWorkers == 0) {
    if (InlinePending) {
      P.replayMergeDeltas(InlineDeltas);
      InlinePending = false;
      ++Stats.Epochs;
    }
    return;
  }
  uint32_t Sealed = 0;
  for (unsigned I = 0; I != NumWorkers; ++I) {
    if (!(WorkerMask & (uint32_t(1) << I)) || !Workers[I]->Pending)
      continue;
    Worker &W = *Workers[I];
    ShardOp Seal;
    Seal.Count = ++W.SealSeq;
    Seal.Control = 1;
    W.Queue.push(Seal);
    Sealed |= uint32_t(1) << I;
  }
  if (Sealed == 0)
    return;
  ++Stats.Epochs;
  for (unsigned I = 0; I != NumWorkers; ++I) {
    if (!(Sealed & (uint32_t(1) << I)))
      continue;
    Worker &W = *Workers[I];
    if (W.AckedSeal.load(std::memory_order_acquire) < W.SealSeq) {
      ++Stats.BarrierWaits;
      uint64_t Start = obs::nowNs();
      for (unsigned Spin = 0;
           Spin != 4096 &&
           W.AckedSeal.load(std::memory_order_acquire) < W.SealSeq;
           ++Spin)
        ;
      if (W.AckedSeal.load(std::memory_order_acquire) < W.SealSeq) {
        std::unique_lock<std::mutex> Lock(AckMutex);
        while (W.AckedSeal.load(std::memory_order_acquire) < W.SealSeq)
          AckReady.wait_for(Lock, std::chrono::milliseconds(1));
      }
      Stats.BarrierWaitNs += obs::nowNs() - Start;
    }
    // Queue drained: the worker's shadow writes happened-before the
    // seal ack. Fold its classification deltas into the real frames.
    P.replayMergeDeltas(W.Deltas);
    W.Pending = false;
    for (ThreadId Tid : W.TouchedTids)
      ThreadWorkerMask[Tid] &= ~(uint32_t(1) << I);
    W.TouchedTids.clear();
  }
}

void ReplayEngine::barrierThread(ThreadId Tid) {
  if (NumWorkers == 0) {
    sealWorkers(~uint32_t(0));
    return;
  }
  if (Tid < ThreadWorkerMask.size() && ThreadWorkerMask[Tid] != 0)
    sealWorkers(ThreadWorkerMask[Tid]);
}

void ReplayEngine::barrierAll() { sealWorkers(~uint32_t(0)); }

void ReplayEngine::processEvent(const EventRecord &E) {
  switch (E.Kind) {
  case EventKind::Read:
  case EventKind::Write:
  case EventKind::KernelRead:
  case EventKind::KernelWrite:
    // A renumbering rewrites every shard of every shadow; it can only
    // run with all workers drained.
    if (ISP_UNLIKELY(P.replayMayRenumber()))
      barrierAll();
    routeMemOp(E);
    return;
  case EventKind::Call:
  case EventKind::Return:
    // The thread's stack is about to change; its in-flight ops read
    // frame timestamps and index frames by position, so they must land
    // (and their deltas merge) first. Other threads' stacks stay
    // frozen — their workers keep running.
    if (ISP_UNLIKELY(P.replayMayRenumber()))
      barrierAll();
    else
      barrierThread(E.Tid);
    P.handleEvent(E);
    return;
  case EventKind::ThreadEnd:
    // Ends pop every remaining frame AND take a footprint snapshot
    // across all per-thread shadows, so quiesce everything.
    barrierAll();
    P.handleEvent(E);
    return;
  default:
    // ThreadStart, BasicBlock, sync/alloc events: no shadow or stack
    // interaction beyond the serial step itself.
    if (ISP_UNLIKELY(P.replayMayRenumber()))
      barrierAll();
    P.handleEvent(E);
    return;
  }
}

void ReplayEngine::noteChunkActivity(size_t ChunkIndex) {
  if (NumWorkers == 0)
    return;
  const ShardActivityMask &Mask = Reader.chunkShardMask(ChunkIndex);
  for (unsigned I = 0; I != NumWorkers; ++I) {
    const ShardActivityMask &Owned = Workers[I]->OwnedSlots;
    bool Active = false;
    for (size_t Word = 0; Word != Mask.size(); ++Word)
      Active = Active || (Mask[Word] & Owned[Word]) != 0;
    // The mask is advisory: routing goes by actual addresses, so a
    // skipped worker is one the chunk provably cannot reach.
    if (!Active)
      ++Stats.ChunksSkipped;
  }
}

bool ReplayEngine::run(const SymbolTable *Symbols) {
  unsigned ShardCount = P.replayShardCount();
  NumWorkers = std::min({Opts.Workers, ShardCount,
                         ParallelReplayOptions::MaxWorkers});
  Stats.Workers = NumWorkers;

  P.onStart(Symbols);
  Workers.reserve(NumWorkers);
  for (unsigned I = 0; I != NumWorkers; ++I) {
    auto W = std::make_unique<Worker>(Opts.QueueCapacity);
    // Slot k of the activity mask belongs to shard k mod ShardCount,
    // which belongs to worker (k mod ShardCount) mod NumWorkers.
    for (unsigned Slot = 0; Slot != ActivityShardSlots; ++Slot)
      if ((Slot % ShardCount) % NumWorkers == I)
        W->OwnedSlots[Slot >> 6] |= uint64_t(1) << (Slot & 63);
    Workers.push_back(std::move(W));
  }
  for (unsigned I = 0; I != NumWorkers; ++I)
    Workers[I]->Thread =
        std::thread([this, I] { workerMain(*Workers[I]); });

  std::vector<Event> Chunk;
  while (true) {
    size_t ChunkIndex = Reader.cursor();
    if (!Reader.nextChunk(Chunk))
      break;
    noteChunkActivity(ChunkIndex);
    EventStreamView View(Chunk);
    for (EventRecord E; View.next(E);) {
      processEvent(E);
      ++Replayed;
    }
  }

  barrierAll();
  for (unsigned I = 0; I != NumWorkers; ++I) {
    ShardOp Shutdown;
    Shutdown.Control = 2;
    Workers[I]->Queue.push(Shutdown);
    Workers[I]->Thread.join();
    Stats.QueueDepthMax =
        std::max(Stats.QueueDepthMax, Workers[I]->Queue.peakDepth());
  }
  // onFinish pops every still-pending frame; all deltas merged above.
  P.onFinish();

  if (ISP_UNLIKELY(obs::statsEnabled())) {
    obs::Registry &R = obs::Registry::get();
    R.gauge("replay.workers").noteMax(Stats.Workers);
    R.counter("replay.epochs").add(Stats.Epochs);
    R.counter("replay.barrier_waits").add(Stats.BarrierWaits);
    R.counter("replay.barrier_wait_ns").add(Stats.BarrierWaitNs);
    R.counter("replay.chunks_skipped").add(Stats.ChunksSkipped);
    R.gauge("replay.queue_depth_max").noteMax(Stats.QueueDepthMax);
  }
  return Reader.error().empty();
}

} // namespace

bool isp::parallelReplayStream(TraceStreamReader &Reader,
                               ParallelReplayProfiler &P,
                               const SymbolTable *Symbols,
                               const ParallelReplayOptions &Opts,
                               ParallelReplayStats *StatsOut,
                               uint64_t *EventsOut) {
  ReplayEngine Engine(Reader, P, Opts);
  bool Ok = Engine.run(Symbols);
  if (StatsOut)
    *StatsOut = Engine.Stats;
  if (EventsOut)
    *EventsOut = Engine.Replayed;
  return Ok;
}
