//===- core/TrmsProfiler.h - Read/write timestamping profiler ---*- C++ -*-===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The multithreaded input-sensitive profiler: the read/write
/// timestamping algorithm of the paper's Figure 11, extended with
/// external input handling (Figure 12) and periodic timestamp
/// renumbering on counter overflow (Figure 13).
///
/// Per event the profiler maintains:
///  - a global counter `count`, bumped at thread switches, routine calls,
///    and kernel writes;
///  - a global shadow memory `wts` holding, per location, the timestamp
///    of the latest write by any thread (tagged with a kernel bit so
///    induced first-accesses can be split into thread-induced vs
///    external);
///  - per thread, a shadow memory `ts` with the timestamp of the
///    thread's latest access to each location, and a shadow stack whose
///    entries carry routine id, activation timestamp, cost snapshot, and
///    *partial* trms/rms so that Invariant 2 holds:
///        trms_i = sum_{j >= i} S[j].partialTrms.
///
/// A read at location l is an induced first-access iff ts_t[l] < wts[l]
/// (some other thread or the kernel wrote l after t's last access), and
/// a plain first-access iff ts_t[l] < S[top].ts. All operations are O(1)
/// except the ancestor adjustment on re-read, which is O(log depth).
/// The same pass simultaneously computes the sequential rms of
/// Definition 1, so every activation record carries (rms, trms, cost).
///
//===----------------------------------------------------------------------===//

#ifndef ISPROF_CORE_TRMSPROFILER_H
#define ISPROF_CORE_TRMSPROFILER_H

#include "core/ProfileData.h"
#include "instr/Tool.h"
#include "shadow/ShadowMemory.h"
#include "shadow/ShardedShadow.h"

#include <memory>
#include <string>
#include <vector>

namespace isp {

struct TrmsProfilerOptions {
  /// Renumbering threshold: when the global counter reaches this value
  /// the Figure 13 renumbering pass compacts all timestamps. The default
  /// mimics a 32-bit timestamp word; tests shrink it to a few hundred to
  /// exercise renumbering intensively.
  uint64_t CounterLimit = uint64_t(1) << 32;
  /// Retain every ActivationRecord (for tests and raw dumps).
  bool KeepActivationLog = false;
  /// Shard count for the global wts shadow (power of two; meaningful
  /// only when the wts shadow type is sharded — ShardedTrmsProfiler /
  /// --shadow-shards). 1 keeps the single-shard layout.
  unsigned ShadowShards = 1;
};

/// The profiler, parameterized over the shadow-memory implementation so
/// the three-level-table vs dense-map ablation can run the identical
/// algorithm, and separately over the global wts shadow type so the wts
/// can be range-sharded (ShardedShadow) while the per-thread ts shadows
/// keep the plain layout. Use the TrmsProfiler alias for the paper's
/// configuration and ShardedTrmsProfiler for the sharded wts.
template <typename ShadowT, typename WtsShadowT = ShadowT>
class TrmsProfilerT : public Tool {
public:
  explicit TrmsProfilerT(TrmsProfilerOptions Opts = TrmsProfilerOptions());
  ~TrmsProfilerT() override;

  void onStart(const SymbolTable *Symbols) override;
  void onFinish() override;
  void onThreadStart(ThreadId Tid, ThreadId Parent) override;
  void onThreadEnd(ThreadId Tid) override;
  void onCall(ThreadId Tid, RoutineId Rtn) override;
  void onReturn(ThreadId Tid, RoutineId Rtn) override;
  void onBasicBlock(ThreadId Tid, uint64_t Count) override;
  void onRead(ThreadId Tid, Addr A, uint64_t Cells) override;
  void onWrite(ThreadId Tid, Addr A, uint64_t Cells) override;
  void onKernelRead(ThreadId Tid, Addr A, uint64_t Cells) override;
  void onKernelWrite(ThreadId Tid, Addr A, uint64_t Cells) override;

  std::string name() const override { return "aprof-trms"; }
  /// The profiler keeps per-thread shadows but shares the global wts
  /// shadow and timestamp counter across guest threads, so the profiler
  /// family must stay on one serialized consumer: co-scheduled on a
  /// single worker (or the dispatch thread under serial fallback).
  ToolAffinity threadAffinity() const override {
    return ToolAffinity::CoScheduled;
  }
  uint64_t memoryFootprintBytes() const override;

  const ProfileDatabase &database() const { return Database; }
  ProfileDatabase takeDatabase() { return std::move(Database); }
  ProfileDatabase *profileDatabase() override { return &Database; }

  /// Number of Figure 13 renumbering passes performed so far.
  uint64_t renumberings() const { return Renumberings; }

  /// Current value of the global timestamp counter (for tests).
  uint64_t counterValue() const { return Count; }

private:
  /// One pending activation on a thread's shadow run-time stack.
  struct Frame {
    RoutineId Rtn = 0;
    /// Activation timestamp S_t[i].ts.
    uint64_t Ts = 0;
    /// Thread basic-block counter at entry; cost = counter - this.
    uint64_t BbAtEntry = 0;
    /// Partial sums per Invariant 2. Individual partials may go negative
    /// transiently (ancestor adjustments); the suffix sums never do.
    int64_t PartialTrms = 0;
    int64_t PartialRms = 0;
    uint64_t PartialInducedThread = 0;
    uint64_t PartialInducedExternal = 0;
  };

  struct ThreadState {
    ShadowT Ts;
    std::vector<Frame> Stack;
    uint64_t BbCount = 0;
  };

  /// Per-event thread lookup. The common case — a run of events from the
  /// running thread — is served by the CurrentState pointer; the slow
  /// path indexes a flat vector keyed by ThreadId (guest thread ids are
  /// small and dense), replacing the old std::map walk.
  ThreadState &state(ThreadId Tid);
  ThreadState &stateSlow(ThreadId Tid);

  /// Registers that the next event belongs to \p Tid, bumping the global
  /// counter when the running thread changes (Section 4's switchThread)
  /// and re-pointing the cached current-thread state.
  void noteThread(ThreadId Tid);

  /// Analysis-state bytes currently held.
  uint64_t currentFootprintBytes() const;

  /// Bumps the global counter, renumbering first if the configured
  /// counter limit has been reached.
  void bumpCount();

  /// Pops and records the topmost activation of \p TS.
  void popFrame(ThreadId Tid, ThreadState &TS);

  /// Figure 13: globally renumbers routine, thread-local, and global
  /// write timestamps, preserving every order relation the read test
  /// depends on, and resets the counter to a small value.
  void renumber();

  TrmsProfilerOptions Options;
  /// Global write-timestamp shadow; cells pack (time << 1) | kernelBit.
  WtsShadowT Wts;
  uint64_t Count = 1;
  /// Flat thread table keyed by ThreadId; dead threads leave null slots.
  std::vector<std::unique_ptr<ThreadState>> Threads;
  /// Cached state of CurrentTid (null right after that thread ends).
  ThreadState *CurrentState = nullptr;
  ThreadId CurrentTid = 0;
  bool HaveCurrentTid = false;
  ProfileDatabase Database;
  uint64_t Renumberings = 0;
  /// Peak analysis-state footprint; per-thread shadows are released when
  /// a thread ends (its timestamps can never be consulted again), so
  /// space reporting tracks the high-water mark.
  uint64_t PeakFootprintBytes = 0;
};

using TrmsProfiler = TrmsProfilerT<ThreeLevelShadow<uint64_t>>;
using DenseTrmsProfiler = TrmsProfilerT<DenseShadow<uint64_t>>;
/// Per-thread ts shadows stay plain; the global wts is range-sharded
/// (TrmsProfilerOptions::ShadowShards selects the shard count).
using ShardedTrmsProfiler =
    TrmsProfilerT<ThreeLevelShadow<uint64_t>, ShardedShadow<uint64_t>>;

extern template class TrmsProfilerT<ThreeLevelShadow<uint64_t>>;
extern template class TrmsProfilerT<DenseShadow<uint64_t>>;
extern template class TrmsProfilerT<ThreeLevelShadow<uint64_t>,
                                    ShardedShadow<uint64_t>>;

} // namespace isp

#endif // ISPROF_CORE_TRMSPROFILER_H
