//===- core/TrmsProfiler.h - Read/write timestamping profiler ---*- C++ -*-===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The multithreaded input-sensitive profiler: the read/write
/// timestamping algorithm of the paper's Figure 11, extended with
/// external input handling (Figure 12) and periodic timestamp
/// renumbering on counter overflow (Figure 13).
///
/// Per event the profiler maintains:
///  - a global counter `count`, bumped at thread switches, routine calls,
///    and kernel writes;
///  - a global shadow memory `wts` holding, per location, the timestamp
///    of the latest write by any thread (tagged with a kernel bit so
///    induced first-accesses can be split into thread-induced vs
///    external);
///  - per thread, a shadow memory `ts` with the timestamp of the
///    thread's latest access to each location, and a shadow stack whose
///    entries carry routine id, activation timestamp, cost snapshot, and
///    *partial* trms/rms so that Invariant 2 holds:
///        trms_i = sum_{j >= i} S[j].partialTrms.
///
/// A read at location l is an induced first-access iff ts_t[l] < wts[l]
/// (some other thread or the kernel wrote l after t's last access), and
/// a plain first-access iff ts_t[l] < S[top].ts. All operations are O(1)
/// except the ancestor adjustment on re-read, which is O(log depth).
/// The same pass simultaneously computes the sequential rms of
/// Definition 1, so every activation record carries (rms, trms, cost).
///
//===----------------------------------------------------------------------===//

#ifndef ISPROF_CORE_TRMSPROFILER_H
#define ISPROF_CORE_TRMSPROFILER_H

#include "core/ProfileData.h"
#include "instr/Tool.h"
#include "shadow/ShadowMemory.h"
#include "shadow/ShardedShadow.h"

#include <memory>
#include <string>
#include <vector>

namespace isp {

struct TrmsProfilerOptions {
  /// Renumbering threshold: when the global counter reaches this value
  /// the Figure 13 renumbering pass compacts all timestamps. The default
  /// mimics a 32-bit timestamp word; tests shrink it to a few hundred to
  /// exercise renumbering intensively.
  uint64_t CounterLimit = uint64_t(1) << 32;
  /// Retain every ActivationRecord (for tests and raw dumps).
  bool KeepActivationLog = false;
  /// Shard count for the global wts shadow (power of two; meaningful
  /// only when the wts shadow type is sharded — ShardedTrmsProfiler /
  /// --shadow-shards). 1 keeps the single-shard layout.
  unsigned ShadowShards = 1;
};

/// One memory operation prepared by the serial step of parallel replay
/// (replay/ParallelReplay.h) for application on a worker thread. The
/// serial step runs replayPrepareMemOp — which performs every update
/// that touches global profiler state (thread switch bookkeeping, the
/// counter bump of a kernel write, global read tallies) and stamps the
/// resulting counter value — and the shard-local remainder
/// (replayApplyMemOp) can then run on any thread that owns the shadow
/// shards the address range maps to.
struct TrmsReplayOp {
  /// Read, Write, or KernelWrite (kernel reads normalize to Read).
  EventKind Kind = EventKind::Read;
  ThreadId Tid = 0;
  /// Global counter value observed after the serial half ran.
  uint64_t Count = 0;
  /// The owning thread's state. A pointer, not a Tid: the thread table
  /// may grow (invalidating indices-to-come, not existing entries)
  /// between the prepare and the apply.
  void *State = nullptr;
};

/// Per-worker accumulator for the classification side effects of
/// replayApplyMemOp. Everything in here is a commutative sum, so any
/// interleaving of shard-local applies produces the same totals; the
/// serial step folds them into the real frames and database counters at
/// each epoch barrier (replayMergeDeltas), before any Return can pop a
/// frame the deltas target. Treat the contents as opaque.
struct TrmsReplayDeltas {
  struct FrameDelta {
    int64_t Trms = 0;
    int64_t Rms = 0;
    uint64_t InducedThread = 0;
    uint64_t InducedExternal = 0;
    bool Dirty = false;
  };
  struct ThreadDeltas {
    std::vector<FrameDelta> Frames;
    /// Indices of dirty entries in Frames, so merging skips clean ones.
    std::vector<uint32_t> DirtyFrames;
  };
  std::vector<ThreadDeltas> Threads;
  uint64_t InducedThread = 0;
  uint64_t InducedExternal = 0;
  uint64_t PlainFirstAccesses = 0;

  FrameDelta &frame(ThreadId Tid, size_t FrameIndex) {
    if (Tid >= Threads.size())
      Threads.resize(Tid + 1);
    ThreadDeltas &TD = Threads[Tid];
    if (FrameIndex >= TD.Frames.size())
      TD.Frames.resize(FrameIndex + 1);
    FrameDelta &FD = TD.Frames[FrameIndex];
    if (!FD.Dirty) {
      FD.Dirty = true;
      TD.DirtyFrames.push_back(static_cast<uint32_t>(FrameIndex));
    }
    return FD;
  }
};

/// The profiler, parameterized over the shadow-memory implementation so
/// the three-level-table vs dense-map ablation can run the identical
/// algorithm, and separately over the global wts shadow type so the wts
/// can be range-sharded (ShardedShadow) while the per-thread ts shadows
/// keep the plain layout. Use the TrmsProfiler alias for the paper's
/// configuration and ShardedTrmsProfiler for the sharded wts.
template <typename ShadowT, typename WtsShadowT = ShadowT>
class TrmsProfilerT : public Tool {
public:
  explicit TrmsProfilerT(TrmsProfilerOptions Opts = TrmsProfilerOptions());
  ~TrmsProfilerT() override;

  void onStart(const SymbolTable *Symbols) override;
  void onFinish() override;
  void onThreadStart(ThreadId Tid, ThreadId Parent) override;
  void onThreadEnd(ThreadId Tid) override;
  void onCall(ThreadId Tid, RoutineId Rtn) override;
  void onReturn(ThreadId Tid, RoutineId Rtn) override;
  void onBasicBlock(ThreadId Tid, uint64_t Count) override;
  void onRead(ThreadId Tid, Addr A, uint64_t Cells) override;
  void onWrite(ThreadId Tid, Addr A, uint64_t Cells) override;
  void onKernelRead(ThreadId Tid, Addr A, uint64_t Cells) override;
  void onKernelWrite(ThreadId Tid, Addr A, uint64_t Cells) override;

  std::string name() const override { return "aprof-trms"; }
  /// The profiler keeps per-thread shadows but shares the global wts
  /// shadow and timestamp counter across guest threads, so the profiler
  /// family must stay on one serialized consumer: co-scheduled on a
  /// single worker (or the dispatch thread under serial fallback).
  ToolAffinity threadAffinity() const override {
    return ToolAffinity::CoScheduled;
  }
  uint64_t memoryFootprintBytes() const override;

  const ProfileDatabase &database() const { return Database; }
  ProfileDatabase takeDatabase() { return std::move(Database); }
  ProfileDatabase *profileDatabase() override { return &Database; }

  /// Number of Figure 13 renumbering passes performed so far.
  uint64_t renumberings() const { return Renumberings; }

  /// Current value of the global timestamp counter (for tests).
  uint64_t counterValue() const { return Count; }

  //===--- Parallel-replay entry points (replay/ParallelReplay.h) -----===//
  //
  // Contract: between two epoch barriers the engine guarantees that (a)
  // no Call/Return/ThreadEnd event runs, so every shadow stack is
  // frozen and workers may read frame timestamps lock-free, (b) no
  // renumbering can trigger (replayMayRenumber gates every event), and
  // (c) each worker only applies ops whose address ranges map to shadow
  // shards it exclusively owns, on both the global wts and the
  // per-thread ts — which requires the doubly-sharded
  // ParallelReplayProfiler instantiation.

  /// Shard count of the shadows (1 for unsharded instantiations).
  unsigned replayShardCount() const;
  /// Shard that \p A's shadow cell lives in.
  size_t replayShardOf(Addr A) const;
  /// True when the next event could trigger a Figure 13 renumbering
  /// (conservative: no single event bumps the counter more than twice).
  bool replayMayRenumber() const { return Count + 3 >= Options.CounterLimit; }
  /// Serial half of a memory event: thread-switch bookkeeping, global
  /// counter/tally updates, and the op stamp. \p E must be a Read,
  /// Write, KernelRead, or KernelWrite.
  void replayPrepareMemOp(const EventRecord &E, TrmsReplayOp &Op);
  /// Shard-local half: applies \p Op to cells [A, A + Cells), folding
  /// classification side effects into \p D instead of shared state.
  /// Safe to run concurrently with other applies on disjoint shards.
  void replayApplyMemOp(const TrmsReplayOp &Op, Addr A, uint64_t Cells,
                        TrmsReplayDeltas &D);
  /// Folds (and resets) \p D into the real frames and database tallies.
  /// Serial step only, with all workers drained.
  void replayMergeDeltas(TrmsReplayDeltas &D);

private:
  /// One pending activation on a thread's shadow run-time stack.
  struct Frame {
    RoutineId Rtn = 0;
    /// Activation timestamp S_t[i].ts.
    uint64_t Ts = 0;
    /// Thread basic-block counter at entry; cost = counter - this.
    uint64_t BbAtEntry = 0;
    /// Partial sums per Invariant 2. Individual partials may go negative
    /// transiently (ancestor adjustments); the suffix sums never do.
    int64_t PartialTrms = 0;
    int64_t PartialRms = 0;
    uint64_t PartialInducedThread = 0;
    uint64_t PartialInducedExternal = 0;
  };

  struct ThreadState {
    ShadowT Ts;
    std::vector<Frame> Stack;
    uint64_t BbCount = 0;
  };

  /// Per-event thread lookup. The common case — a run of events from the
  /// running thread — is served by the CurrentState pointer; the slow
  /// path indexes a flat vector keyed by ThreadId (guest thread ids are
  /// small and dense), replacing the old std::map walk.
  ThreadState &state(ThreadId Tid);
  ThreadState &stateSlow(ThreadId Tid);

  /// Registers that the next event belongs to \p Tid, bumping the global
  /// counter when the running thread changes (Section 4's switchThread)
  /// and re-pointing the cached current-thread state.
  void noteThread(ThreadId Tid);

  /// Analysis-state bytes currently held.
  uint64_t currentFootprintBytes() const;

  /// Bumps the global counter, renumbering first if the configured
  /// counter limit has been reached.
  void bumpCount();

  /// Pops and records the topmost activation of \p TS.
  void popFrame(ThreadId Tid, ThreadState &TS);

  /// Figure 13: globally renumbers routine, thread-local, and global
  /// write timestamps, preserving every order relation the read test
  /// depends on, and resets the counter to a small value.
  void renumber();

  TrmsProfilerOptions Options;
  /// Global write-timestamp shadow; cells pack (time << 1) | kernelBit.
  WtsShadowT Wts;
  uint64_t Count = 1;
  /// Flat thread table keyed by ThreadId; dead threads leave null slots.
  std::vector<std::unique_ptr<ThreadState>> Threads;
  /// Cached state of CurrentTid (null right after that thread ends).
  ThreadState *CurrentState = nullptr;
  ThreadId CurrentTid = 0;
  bool HaveCurrentTid = false;
  ProfileDatabase Database;
  uint64_t Renumberings = 0;
  /// Peak analysis-state footprint; per-thread shadows are released when
  /// a thread ends (its timestamps can never be consulted again), so
  /// space reporting tracks the high-water mark.
  uint64_t PeakFootprintBytes = 0;
};

using TrmsProfiler = TrmsProfilerT<ThreeLevelShadow<uint64_t>>;
using DenseTrmsProfiler = TrmsProfilerT<DenseShadow<uint64_t>>;
/// Per-thread ts shadows stay plain; the global wts is range-sharded
/// (TrmsProfilerOptions::ShadowShards selects the shard count).
using ShardedTrmsProfiler =
    TrmsProfilerT<ThreeLevelShadow<uint64_t>, ShardedShadow<uint64_t>>;
/// Both the per-thread ts shadows and the global wts range-sharded with
/// the same shard count — the configuration parallel replay requires,
/// so every shadow write of a memory op stays inside the shard the op
/// was routed by (replay/ParallelReplay.h).
using ParallelReplayProfiler =
    TrmsProfilerT<ShardedShadow<uint64_t>, ShardedShadow<uint64_t>>;

extern template class TrmsProfilerT<ThreeLevelShadow<uint64_t>>;
extern template class TrmsProfilerT<DenseShadow<uint64_t>>;
extern template class TrmsProfilerT<ThreeLevelShadow<uint64_t>,
                                    ShardedShadow<uint64_t>>;
extern template class TrmsProfilerT<ShardedShadow<uint64_t>,
                                    ShardedShadow<uint64_t>>;

} // namespace isp

#endif // ISPROF_CORE_TRMSPROFILER_H
