//===- core/RmsProfiler.h - Sequential input-sensitive profiler -*- C++ -*-===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The original PLDI 2012 input-sensitive profiler: computes the read
/// memory size (rms, Definition 1) of every routine activation with the
/// latest-access timestamping algorithm. It is entirely per-thread — it
/// ignores communication between threads and external input, which is
/// precisely the limitation the trms profiler removes. Kept as a distinct
/// tool ("aprof-rms") because the paper's Table 1 compares against it:
/// it needs no global shadow memory, so it is slightly cheaper in both
/// time and space than aprof-trms.
///
/// In its ProfileDatabase, Trms is reported equal to Rms for every
/// activation (the tool cannot observe induced input).
///
//===----------------------------------------------------------------------===//

#ifndef ISPROF_CORE_RMSPROFILER_H
#define ISPROF_CORE_RMSPROFILER_H

#include "core/ProfileData.h"
#include "instr/Tool.h"
#include "shadow/ShadowMemory.h"

#include <memory>
#include <string>
#include <vector>

namespace isp {

struct RmsProfilerOptions {
  bool KeepActivationLog = false;
};

class RmsProfiler : public Tool {
public:
  explicit RmsProfiler(RmsProfilerOptions Opts = RmsProfilerOptions());
  ~RmsProfiler() override;

  void onFinish() override;
  void onThreadStart(ThreadId Tid, ThreadId Parent) override;
  void onThreadEnd(ThreadId Tid) override;
  void onCall(ThreadId Tid, RoutineId Rtn) override;
  void onReturn(ThreadId Tid, RoutineId Rtn) override;
  void onBasicBlock(ThreadId Tid, uint64_t Count) override;
  void onRead(ThreadId Tid, Addr A, uint64_t Cells) override;
  void onWrite(ThreadId Tid, Addr A, uint64_t Cells) override;
  void onKernelRead(ThreadId Tid, Addr A, uint64_t Cells) override;
  // Kernel writes are invisible to the rms metric: buffer loads do not
  // touch the thread-local timestamps, and there is no global shadow.

  std::string name() const override { return "aprof-rms"; }
  /// Entirely per-thread state, but the profiler family shares the
  /// renumbering/counter discipline of the trms profiler, so it declares
  /// the same co-scheduling: all profilers ride one serialized worker.
  ToolAffinity threadAffinity() const override {
    return ToolAffinity::CoScheduled;
  }
  uint64_t memoryFootprintBytes() const override;

  const ProfileDatabase &database() const { return Database; }
  ProfileDatabase takeDatabase() { return std::move(Database); }
  ProfileDatabase *profileDatabase() override { return &Database; }

private:
  struct Frame {
    RoutineId Rtn = 0;
    uint64_t Ts = 0;
    uint64_t BbAtEntry = 0;
    int64_t PartialRms = 0;
  };

  struct ThreadState {
    ThreeLevelShadow<uint64_t> Ts;
    std::vector<Frame> Stack;
    uint64_t BbCount = 0;
    /// The per-thread counter: rms needs no cross-thread ordering, so
    /// each thread numbers its own accesses.
    uint64_t Count = 1;
  };

  /// Fast per-event thread lookup: a flat vector keyed by ThreadId with
  /// a one-entry current-thread cache in front of it. Guest thread ids
  /// are small and dense (the VM hands them out sequentially), so the
  /// vector replaces the old std::map's pointer-chasing with one indexed
  /// load, and the cache collapses the common run-of-same-thread case to
  /// a compare.
  ThreadState &state(ThreadId Tid);

  void popFrame(ThreadId Tid, ThreadState &TS);
  uint64_t currentFootprintBytes() const;

  RmsProfilerOptions Options;
  std::vector<std::unique_ptr<ThreadState>> Threads;
  ThreadState *CachedState = nullptr;
  ThreadId CachedTid = 0;
  ProfileDatabase Database;
  /// Peak footprint: thread shadows are freed when their thread ends.
  uint64_t PeakFootprintBytes = 0;
};

} // namespace isp

#endif // ISPROF_CORE_RMSPROFILER_H
