//===- core/ProfileData.cpp - Input-sensitive profile storage ----------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "core/ProfileData.h"

#include <cassert>

using namespace isp;

void RoutineProfile::addActivation(const ActivationRecord &R) {
  assert(R.Trms >= R.Rms && "Inequality 1 (trms >= rms) violated");
  ByTrms[R.Trms].add(R.Cost);
  ByRms[R.Rms].add(R.Cost);
  ++Activations;
  SumRms += R.Rms;
  SumTrms += R.Trms;
  InducedThread += R.InducedThread;
  InducedExternal += R.InducedExternal;
  TotalCost += R.Cost;
}

void RoutineProfile::merge(const RoutineProfile &Other) {
  for (const auto &[Trms, Stats] : Other.ByTrms)
    ByTrms[Trms].merge(Stats);
  for (const auto &[Rms, Stats] : Other.ByRms)
    ByRms[Rms].merge(Stats);
  Activations += Other.Activations;
  SumRms += Other.SumRms;
  SumTrms += Other.SumTrms;
  InducedThread += Other.InducedThread;
  InducedExternal += Other.InducedExternal;
  TotalCost += Other.TotalCost;
}

void ProfileDatabase::recordActivation(const ActivationRecord &R) {
  Profiles[{R.Tid, R.Rtn}].addActivation(R);
  ++TotalActivations;
  if (KeepLog)
    Log.push_back(R);
}

std::map<RoutineId, RoutineProfile> ProfileDatabase::mergedByRoutine() const {
  std::map<RoutineId, RoutineProfile> Merged;
  for (const auto &[Key, Profile] : Profiles)
    Merged[Key.Rtn].merge(Profile);
  return Merged;
}
