//===- core/Metrics.h - Section 6.1 evaluation metrics ----------*- C++ -*-===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's evaluation metrics (Section 6.1):
///  1. routine profile richness  (|trms_r| - |rms_r|) / |rms_r|;
///  2. input volume              1 - sum(rms) / sum(trms);
///  3. thread-induced input      % of induced first-accesses caused by
///                               other threads' stores;
///  4. external input            % caused by kernel stores.
/// Plus the tail-distribution helper that turns per-routine values into
/// the "x% of routines have metric >= y" curves of Figures 15, 16, 18
/// and 19.
///
//===----------------------------------------------------------------------===//

#ifndef ISPROF_CORE_METRICS_H
#define ISPROF_CORE_METRICS_H

#include "core/ProfileData.h"

#include <cstddef>
#include <utility>
#include <vector>

namespace isp {

/// Per-routine metric values (computed over thread-merged profiles, as
/// the paper's |trms_r| counts distinct values "for all threads").
struct RoutineMetrics {
  RoutineId Rtn = 0;
  uint64_t Activations = 0;
  size_t DistinctTrms = 0;
  size_t DistinctRms = 0;
  /// (|trms| - |rms|) / |rms|; may be negative (rarely, per the paper).
  double ProfileRichness = 0;
  /// 1 - sum(rms)/sum(trms) in [0, 1); 0 when the routine saw no induced
  /// input at all.
  double InputVolume = 0;
  /// Of the routine's induced first-accesses (descendants included),
  /// the fraction caused by other threads, in [0, 100].
  double ThreadInducedPct = 0;
  /// ... and by the kernel (the two sum to 100 when any induced access
  /// exists).
  double ExternalPct = 0;
  /// Induced accesses as a share of the routine's total trms, [0, 100].
  double InducedShareOfInputPct = 0;
};

/// Computes per-routine metrics from \p Database.
std::vector<RoutineMetrics>
computeRoutineMetrics(const ProfileDatabase &Database);

/// Whole-run metrics in which each induced first-access is counted once
/// (Figure 17's percentages).
struct RunMetrics {
  uint64_t InducedThread = 0;
  uint64_t InducedExternal = 0;
  uint64_t PlainFirstAccesses = 0;
  double ThreadInducedPct = 0;
  double ExternalPct = 0;
  /// 1 - sum(rms)/sum(trms) over all activations.
  double InputVolume = 0;
};

RunMetrics computeRunMetrics(const ProfileDatabase &Database);

/// Builds the decreasing tail distribution of \p Values: returned points
/// (x, y) mean "x percent of routines have value >= y". x is the rank
/// percentile (i+1)/n*100 after sorting descending.
std::vector<std::pair<double, double>>
tailDistribution(std::vector<double> Values);

} // namespace isp

#endif // ISPROF_CORE_METRICS_H
