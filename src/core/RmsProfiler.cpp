//===- core/RmsProfiler.cpp - Sequential input-sensitive profiler ------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "core/RmsProfiler.h"

#include "obs/Obs.h"
#include "support/Compiler.h"

#include <algorithm>
#include <cassert>

using namespace isp;

RmsProfiler::RmsProfiler(RmsProfilerOptions Opts) : Options(Opts) {
  Database.setKeepLog(Options.KeepActivationLog);
}

RmsProfiler::~RmsProfiler() = default;

RmsProfiler::ThreadState &RmsProfiler::state(ThreadId Tid) {
  if (CachedState && CachedTid == Tid)
    return *CachedState;
  if (Tid >= Threads.size())
    Threads.resize(static_cast<size_t>(Tid) + 1);
  std::unique_ptr<ThreadState> &Slot = Threads[Tid];
  if (!Slot)
    Slot = std::make_unique<ThreadState>();
  CachedState = Slot.get();
  CachedTid = Tid;
  return *CachedState;
}

void RmsProfiler::onThreadStart(ThreadId Tid, ThreadId Parent) {
  state(Tid);
}

void RmsProfiler::onThreadEnd(ThreadId Tid) {
  ThreadState &TS = state(Tid);
  while (!TS.Stack.empty())
    popFrame(Tid, TS);
  // The rms shadow is entirely thread-private; release it when the
  // thread dies, keeping the high-water mark for space reports.
  PeakFootprintBytes = std::max(PeakFootprintBytes, currentFootprintBytes());
  CachedState = nullptr;
  Threads[Tid].reset();
}

void RmsProfiler::onCall(ThreadId Tid, RoutineId Rtn) {
  ThreadState &TS = state(Tid);
  ++TS.Count;
  Frame F;
  F.Rtn = Rtn;
  F.Ts = TS.Count;
  F.BbAtEntry = TS.BbCount;
  TS.Stack.push_back(F);
}

void RmsProfiler::popFrame(ThreadId Tid, ThreadState &TS) {
  assert(!TS.Stack.empty());
  Frame Top = TS.Stack.back();
  TS.Stack.pop_back();
  assert(Top.PartialRms >= 0 && "partial rms negative at completion");

  ActivationRecord R;
  R.Tid = Tid;
  R.Rtn = Top.Rtn;
  R.Rms = static_cast<uint64_t>(Top.PartialRms);
  R.Trms = R.Rms; // rms-only tool: no induced input is observable
  R.Cost = TS.BbCount - Top.BbAtEntry;
  Database.recordActivation(R);

  if (!TS.Stack.empty())
    TS.Stack.back().PartialRms += Top.PartialRms;
}

void RmsProfiler::onReturn(ThreadId Tid, RoutineId Rtn) {
  ThreadState &TS = state(Tid);
  if (TS.Stack.empty())
    return;
  assert(TS.Stack.back().Rtn == Rtn && "mismatched call/return nesting");
  popFrame(Tid, TS);
}

void RmsProfiler::onBasicBlock(ThreadId Tid, uint64_t N) {
  state(Tid).BbCount += N;
}

void RmsProfiler::onRead(ThreadId Tid, Addr A, uint64_t Cells) {
  ThreadState &TS = state(Tid);
  Database.GlobalReads += Cells;
  if (TS.Stack.empty()) {
    // Accesses outside any activation (prologue code): update the access
    // timestamps so later activations do not miscount, but attribute the
    // reads to no routine.
    TS.Ts.fillRange(A, Cells, TS.Count);
    return;
  }
  // The topmost frame and counter are loop-invariant: nothing in the
  // per-cell body pushes or pops frames, so hoist them out of the range
  // walk (the reference stays valid while the vector is untouched).
  Frame &Top = TS.Stack.back();
  const uint64_t Count = TS.Count;
  TS.Ts.forRange(A, Cells, [&](Addr, uint64_t &TsCell) {
    if (TsCell < Top.Ts) {
      ++Top.PartialRms;
      ++Database.GlobalPlainFirstAccesses;
      if (TsCell != 0) {
        // Deepest pending activation whose subtree performed the previous
        // access already counted this cell; transfer the unit.
        size_t Lo = 0, Hi = TS.Stack.size();
        while (Lo < Hi) {
          size_t Mid = Lo + (Hi - Lo) / 2;
          if (TS.Stack[Mid].Ts <= TsCell)
            Lo = Mid + 1;
          else
            Hi = Mid;
        }
        if (Lo > 0)
          --TS.Stack[Lo - 1].PartialRms;
      }
    }
    TsCell = Count;
  });
}

void RmsProfiler::onWrite(ThreadId Tid, Addr A, uint64_t Cells) {
  ThreadState &TS = state(Tid);
  TS.Ts.fillRange(A, Cells, TS.Count);
}

void RmsProfiler::onKernelRead(ThreadId Tid, Addr A, uint64_t Cells) {
  // A kernel read of guest memory is a read performed on the thread's
  // behalf; the 2012 profiler observed it like any load.
  onRead(Tid, A, Cells);
}

void RmsProfiler::onFinish() {
  for (ThreadId Tid = 0; Tid != Threads.size(); ++Tid) {
    ThreadState *TS = Threads[Tid].get();
    if (!TS)
      continue;
    while (!TS->Stack.empty())
      popFrame(Tid, *TS);
  }
  if (ISP_UNLIKELY(obs::statsEnabled())) {
    // Aggregate across the per-thread timestamp shadows.
    uint64_t Chunks = 0, Hits = 0, Misses = 0;
    for (const std::unique_ptr<ThreadState> &TS : Threads) {
      if (!TS)
        continue;
      Chunks += TS->Ts.chunksAllocated();
      Hits += TS->Ts.cacheHits();
      Misses += TS->Ts.cacheMisses();
    }
    obs::Registry &R = obs::Registry::get();
    R.counter("shadow.ts.chunks_allocated").add(Chunks);
    R.counter("shadow.ts.cache_hits").add(Hits);
    R.counter("shadow.ts.cache_misses").add(Misses);
    R.gauge("profiler.peak_footprint_bytes").noteMax(memoryFootprintBytes());
  }
}

uint64_t RmsProfiler::memoryFootprintBytes() const {
  return std::max(PeakFootprintBytes, currentFootprintBytes());
}

uint64_t RmsProfiler::currentFootprintBytes() const {
  uint64_t Total = 0;
  for (const std::unique_ptr<ThreadState> &TS : Threads) {
    if (!TS)
      continue;
    Total += TS->Ts.totalBytes();
    Total += TS->Stack.capacity() * sizeof(Frame);
  }
  for (const auto &[Key, Profile] : Database.threadRoutineProfiles())
    Total += Profile.distinctRmsValues() * (sizeof(CostStats) + 48) +
             sizeof(RoutineProfile);
  return Total;
}
