//===- core/Report.h - Cost plots and text reports --------------*- C++ -*-===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Turns RoutineProfiles into the artefacts the paper's case studies
/// show: worst-case running time plots (max cost per distinct input
/// size), workload plots (activation count per input size), fitted
/// asymptotic models, and human-readable per-routine reports.
///
//===----------------------------------------------------------------------===//

#ifndef ISPROF_CORE_REPORT_H
#define ISPROF_CORE_REPORT_H

#include "core/ProfileData.h"
#include "support/CurveFit.h"

#include <map>
#include <string>
#include <vector>

namespace isp {

class SymbolTable;

/// Which input-size metric keys the plot.
enum class InputMetric { Rms, Trms };

/// (input size, max cost) per distinct input size: the paper's
/// worst-case running time plot.
std::vector<FitPoint> worstCasePlot(const RoutineProfile &Profile,
                                    InputMetric Metric);

/// (input size, average cost) per distinct input size.
std::vector<FitPoint> averageCasePlot(const RoutineProfile &Profile,
                                      InputMetric Metric);

/// (input size, number of activations): the workload plot of Figure 8.
std::vector<FitPoint> workloadPlot(const RoutineProfile &Profile,
                                   InputMetric Metric);

/// Fits the worst-case plot to the standard asymptotic models.
FitResult fitWorstCase(const RoutineProfile &Profile, InputMetric Metric);

/// Renders a per-routine report: activation counts, rms vs trms point
/// counts, induced input split, both worst-case plots and their fitted
/// models. \p Symbols may be null.
std::string renderRoutineReport(RoutineId Rtn, const RoutineProfile &Profile,
                                const SymbolTable *Symbols);

/// Renders a run summary: top \p MaxRoutines routines by total cost with
/// their input characterization, plus the run-wide induced split.
std::string renderRunSummary(const ProfileDatabase &Database,
                             const SymbolTable *Symbols,
                             size_t MaxRoutines = 20);

/// Run summary with a static-vs-dynamic growth cross-check: adds a
/// "static" column (the analysis's predicted growth class, a loop-nest
/// degree per routine id) and an "agree" column comparing it with the
/// measured log-log alpha (agreement when alpha <= degree + 0.5, the
/// rule analysis::growthAgrees implements). Contradictions append a
/// warning line per routine.
std::string renderRunSummary(const ProfileDatabase &Database,
                             const SymbolTable *Symbols,
                             const std::map<RoutineId, unsigned> &StaticGrowth,
                             size_t MaxRoutines = 20);

/// Renders a plot as a two-column text series (for CSV-ish dumps).
std::string renderSeries(const std::vector<FitPoint> &Points,
                         const char *XLabel, const char *YLabel);

} // namespace isp

#endif // ISPROF_CORE_REPORT_H
