//===- core/Report.cpp - Cost plots and text reports -------------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "core/Report.h"

#include "core/Metrics.h"
#include "instr/SymbolTable.h"
#include "support/Format.h"
#include "support/Table.h"

#include <algorithm>

using namespace isp;

static const std::map<uint64_t, CostStats> &
selectMap(const RoutineProfile &Profile, InputMetric Metric) {
  return Metric == InputMetric::Trms ? Profile.costByTrms()
                                     : Profile.costByRms();
}

std::vector<FitPoint> isp::worstCasePlot(const RoutineProfile &Profile,
                                         InputMetric Metric) {
  std::vector<FitPoint> Points;
  for (const auto &[Size, Stats] : selectMap(Profile, Metric))
    Points.push_back({static_cast<double>(Size),
                      static_cast<double>(Stats.MaxCost)});
  return Points;
}

std::vector<FitPoint> isp::averageCasePlot(const RoutineProfile &Profile,
                                           InputMetric Metric) {
  std::vector<FitPoint> Points;
  for (const auto &[Size, Stats] : selectMap(Profile, Metric))
    Points.push_back({static_cast<double>(Size), Stats.averageCost()});
  return Points;
}

std::vector<FitPoint> isp::workloadPlot(const RoutineProfile &Profile,
                                        InputMetric Metric) {
  std::vector<FitPoint> Points;
  for (const auto &[Size, Stats] : selectMap(Profile, Metric))
    Points.push_back({static_cast<double>(Size),
                      static_cast<double>(Stats.Count)});
  return Points;
}

FitResult isp::fitWorstCase(const RoutineProfile &Profile,
                            InputMetric Metric) {
  return fitCurve(worstCasePlot(Profile, Metric));
}

std::string isp::renderSeries(const std::vector<FitPoint> &Points,
                              const char *XLabel, const char *YLabel) {
  std::string Out = formatString("%s,%s\n", XLabel, YLabel);
  for (const FitPoint &P : Points)
    Out += formatString("%.0f,%.2f\n", P.N, P.Cost);
  return Out;
}

std::string isp::renderRoutineReport(RoutineId Rtn,
                                     const RoutineProfile &Profile,
                                     const SymbolTable *Symbols) {
  std::string Name =
      Symbols ? Symbols->routineName(Rtn) : formatString("routine#%u", Rtn);
  std::string Out = formatString("== %s ==\n", Name.c_str());
  Out += formatString(
      "activations: %s, distinct trms values: %zu, distinct rms values: "
      "%zu\n",
      formatCount(Profile.activations()).c_str(),
      Profile.distinctTrmsValues(), Profile.distinctRmsValues());
  uint64_t Induced = Profile.inducedThread() + Profile.inducedExternal();
  double InducedPct =
      Profile.sumTrms()
          ? 100.0 * static_cast<double>(Induced) /
                static_cast<double>(Profile.sumTrms())
          : 0.0;
  Out += formatString(
      "input: sum trms %llu, sum rms %llu (%.1f%% induced: %llu "
      "thread-induced, %llu external)\n",
      static_cast<unsigned long long>(Profile.sumTrms()),
      static_cast<unsigned long long>(Profile.sumRms()), InducedPct,
      static_cast<unsigned long long>(Profile.inducedThread()),
      static_cast<unsigned long long>(Profile.inducedExternal()));

  for (InputMetric Metric : {InputMetric::Trms, InputMetric::Rms}) {
    const char *Label = Metric == InputMetric::Trms ? "trms" : "rms";
    std::vector<FitPoint> Plot = worstCasePlot(Profile, Metric);
    FitResult Fit = fitCurve(Plot);
    Out += formatString("worst-case plot by %s: %zu points, best fit %s",
                        Label, Plot.size(), formatFit(Fit.best()).c_str());
    if (Fit.PowerLawValid)
      Out += formatString(", power-law exponent %.2f", Fit.PowerLawAlpha);
    Out += '\n';
  }
  return Out;
}

std::string isp::renderRunSummary(const ProfileDatabase &Database,
                                  const SymbolTable *Symbols,
                                  size_t MaxRoutines) {
  auto Merged = Database.mergedByRoutine();
  std::vector<std::pair<RoutineId, const RoutineProfile *>> Ranked;
  Ranked.reserve(Merged.size());
  for (const auto &[Rtn, Profile] : Merged)
    Ranked.emplace_back(Rtn, &Profile);
  std::sort(Ranked.begin(), Ranked.end(), [](const auto &L, const auto &R) {
    return L.second->totalCost() > R.second->totalCost();
  });
  if (Ranked.size() > MaxRoutines)
    Ranked.resize(MaxRoutines);

  TextTable Table;
  Table.setHeader({"routine", "calls", "cost(BB)", "|trms|", "|rms|",
                   "sum trms", "thr-ind", "external", "fit(trms)"});
  for (const auto &[Rtn, Profile] : Ranked) {
    FitResult Fit = fitWorstCase(*Profile, InputMetric::Trms);
    Table.addRow(
        {Symbols ? Symbols->routineName(Rtn) : formatString("#%u", Rtn),
         formatWithCommas(Profile->activations()),
         formatWithCommas(Profile->totalCost()),
         formatString("%zu", Profile->distinctTrmsValues()),
         formatString("%zu", Profile->distinctRmsValues()),
         formatWithCommas(Profile->sumTrms()),
         formatWithCommas(Profile->inducedThread()),
         formatWithCommas(Profile->inducedExternal()),
         growthModelName(Fit.best().Model)});
  }

  RunMetrics Run = computeRunMetrics(Database);
  std::string Out = Table.render();
  Out += formatString(
      "\nrun totals: %s activations, input volume %.3f, induced "
      "first-accesses: %.1f%% thread-induced / %.1f%% external\n",
      formatCount(Database.totalActivations()).c_str(), Run.InputVolume,
      Run.ThreadInducedPct, Run.ExternalPct);
  return Out;
}
