//===- core/Report.cpp - Cost plots and text reports -------------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "core/Report.h"

#include "core/Metrics.h"
#include "instr/SymbolTable.h"
#include "support/Format.h"
#include "support/Table.h"

#include <algorithm>

using namespace isp;

static const std::map<uint64_t, CostStats> &
selectMap(const RoutineProfile &Profile, InputMetric Metric) {
  return Metric == InputMetric::Trms ? Profile.costByTrms()
                                     : Profile.costByRms();
}

std::vector<FitPoint> isp::worstCasePlot(const RoutineProfile &Profile,
                                         InputMetric Metric) {
  std::vector<FitPoint> Points;
  for (const auto &[Size, Stats] : selectMap(Profile, Metric))
    Points.push_back({static_cast<double>(Size),
                      static_cast<double>(Stats.MaxCost)});
  return Points;
}

std::vector<FitPoint> isp::averageCasePlot(const RoutineProfile &Profile,
                                           InputMetric Metric) {
  std::vector<FitPoint> Points;
  for (const auto &[Size, Stats] : selectMap(Profile, Metric))
    Points.push_back({static_cast<double>(Size), Stats.averageCost()});
  return Points;
}

std::vector<FitPoint> isp::workloadPlot(const RoutineProfile &Profile,
                                        InputMetric Metric) {
  std::vector<FitPoint> Points;
  for (const auto &[Size, Stats] : selectMap(Profile, Metric))
    Points.push_back({static_cast<double>(Size),
                      static_cast<double>(Stats.Count)});
  return Points;
}

FitResult isp::fitWorstCase(const RoutineProfile &Profile,
                            InputMetric Metric) {
  return fitCurve(worstCasePlot(Profile, Metric));
}

std::string isp::renderSeries(const std::vector<FitPoint> &Points,
                              const char *XLabel, const char *YLabel) {
  std::string Out = formatString("%s,%s\n", XLabel, YLabel);
  for (const FitPoint &P : Points)
    Out += formatString("%.0f,%.2f\n", P.N, P.Cost);
  return Out;
}

std::string isp::renderRoutineReport(RoutineId Rtn,
                                     const RoutineProfile &Profile,
                                     const SymbolTable *Symbols) {
  std::string Name =
      Symbols ? Symbols->routineName(Rtn) : formatString("routine#%u", Rtn);
  std::string Out = formatString("== %s ==\n", Name.c_str());
  Out += formatString(
      "activations: %s, distinct trms values: %zu, distinct rms values: "
      "%zu\n",
      formatCount(Profile.activations()).c_str(),
      Profile.distinctTrmsValues(), Profile.distinctRmsValues());
  uint64_t Induced = Profile.inducedThread() + Profile.inducedExternal();
  double InducedPct =
      Profile.sumTrms()
          ? 100.0 * static_cast<double>(Induced) /
                static_cast<double>(Profile.sumTrms())
          : 0.0;
  Out += formatString(
      "input: sum trms %llu, sum rms %llu (%.1f%% induced: %llu "
      "thread-induced, %llu external)\n",
      static_cast<unsigned long long>(Profile.sumTrms()),
      static_cast<unsigned long long>(Profile.sumRms()), InducedPct,
      static_cast<unsigned long long>(Profile.inducedThread()),
      static_cast<unsigned long long>(Profile.inducedExternal()));

  for (InputMetric Metric : {InputMetric::Trms, InputMetric::Rms}) {
    const char *Label = Metric == InputMetric::Trms ? "trms" : "rms";
    std::vector<FitPoint> Plot = worstCasePlot(Profile, Metric);
    FitResult Fit = fitCurve(Plot);
    Out += formatString("worst-case plot by %s: %zu points, best fit %s",
                        Label, Plot.size(), formatFit(Fit.best()).c_str());
    if (Fit.PowerLawValid)
      Out += formatString(", power-law exponent %.2f", Fit.PowerLawAlpha);
    Out += '\n';
  }
  return Out;
}

namespace {

/// Growth-class label for a static loop-nest degree; matches
/// analysis::growthClassName (duplicated so isp_core stays independent
/// of the analysis library).
const char *staticGrowthClass(unsigned Degree) {
  switch (Degree) {
  case 0:
    return "O(1)";
  case 1:
    return "O(n)";
  case 2:
    return "O(n^2)";
  default:
    return "O(n^3+)";
  }
}

std::string renderRunSummaryImpl(
    const ProfileDatabase &Database, const SymbolTable *Symbols,
    const std::map<RoutineId, unsigned> *StaticGrowth, size_t MaxRoutines) {
  auto Merged = Database.mergedByRoutine();
  std::vector<std::pair<RoutineId, const RoutineProfile *>> Ranked;
  Ranked.reserve(Merged.size());
  for (const auto &[Rtn, Profile] : Merged)
    Ranked.emplace_back(Rtn, &Profile);
  std::sort(Ranked.begin(), Ranked.end(), [](const auto &L, const auto &R) {
    return L.second->totalCost() > R.second->totalCost();
  });
  if (Ranked.size() > MaxRoutines)
    Ranked.resize(MaxRoutines);

  TextTable Table;
  std::vector<std::string> Header = {"routine",  "calls",    "cost(BB)",
                                     "|trms|",   "|rms|",    "sum trms",
                                     "thr-ind",  "external", "fit(trms)"};
  if (StaticGrowth != nullptr) {
    Header.push_back("static");
    Header.push_back("agree");
  }
  Table.setHeader(Header);
  std::string Contradictions;
  for (const auto &[Rtn, Profile] : Ranked) {
    FitResult Fit = fitWorstCase(*Profile, InputMetric::Trms);
    std::string Name =
        Symbols ? Symbols->routineName(Rtn) : formatString("#%u", Rtn);
    std::vector<std::string> Row = {
        Name,
        formatWithCommas(Profile->activations()),
        formatWithCommas(Profile->totalCost()),
        formatString("%zu", Profile->distinctTrmsValues()),
        formatString("%zu", Profile->distinctRmsValues()),
        formatWithCommas(Profile->sumTrms()),
        formatWithCommas(Profile->inducedThread()),
        formatWithCommas(Profile->inducedExternal()),
        growthModelName(Fit.best().Model)};
    if (StaticGrowth != nullptr) {
      auto It = StaticGrowth->find(Rtn);
      if (It == StaticGrowth->end()) {
        Row.push_back("-");
        Row.push_back("-");
      } else {
        Row.push_back(staticGrowthClass(It->second));
        // The static degree is an upper bound on polynomial growth in
        // the routine's input size: a measured exponent meaningfully
        // above it contradicts the analysis (or flags a routine whose
        // cost is driven by something other than its loop structure).
        if (!Fit.PowerLawValid) {
          Row.push_back("-");
        } else if (Fit.PowerLawAlpha <=
                   static_cast<double>(It->second) + 0.5) {
          Row.push_back("yes");
        } else {
          Row.push_back("NO");
          Contradictions += formatString(
              "warning: static-vs-dynamic growth contradiction: %s "
              "measured alpha %.2f exceeds static %s\n",
              Name.c_str(), Fit.PowerLawAlpha,
              staticGrowthClass(It->second));
        }
      }
    }
    Table.addRow(Row);
  }

  RunMetrics Run = computeRunMetrics(Database);
  std::string Out = Table.render();
  Out += Contradictions;
  Out += formatString(
      "\nrun totals: %s activations, input volume %.3f, induced "
      "first-accesses: %.1f%% thread-induced / %.1f%% external\n",
      formatCount(Database.totalActivations()).c_str(), Run.InputVolume,
      Run.ThreadInducedPct, Run.ExternalPct);
  return Out;
}

} // namespace

std::string isp::renderRunSummary(const ProfileDatabase &Database,
                                  const SymbolTable *Symbols,
                                  size_t MaxRoutines) {
  return renderRunSummaryImpl(Database, Symbols, nullptr, MaxRoutines);
}

std::string isp::renderRunSummary(
    const ProfileDatabase &Database, const SymbolTable *Symbols,
    const std::map<RoutineId, unsigned> &StaticGrowth, size_t MaxRoutines) {
  return renderRunSummaryImpl(Database, Symbols, &StaticGrowth, MaxRoutines);
}
