//===- core/HtmlReport.h - Self-contained HTML profile reports --*- C++ -*-===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a ProfileDatabase as a single self-contained HTML page — the
/// stand-in for the aprof GUI the paper's tool ships with: a ranked
/// routine table with induced-input splits, and per-routine cost plots
/// (worst-case cost vs rms and vs trms) drawn as inline SVG scatter
/// charts with the fitted growth model, so the Figure 4/5-style
/// comparisons can be eyeballed in a browser with no dependencies.
///
//===----------------------------------------------------------------------===//

#ifndef ISPROF_CORE_HTMLREPORT_H
#define ISPROF_CORE_HTMLREPORT_H

#include "core/ProfileData.h"

#include <string>

namespace isp {

class SymbolTable;

struct HtmlReportOptions {
  /// Page title.
  std::string Title = "isprof profile";
  /// Plot at most this many routines (ranked by total cost).
  size_t MaxRoutines = 24;
  /// SVG plot size in pixels.
  unsigned PlotWidth = 360;
  unsigned PlotHeight = 220;
};

/// Renders the report; write the result to a .html file.
std::string renderHtmlReport(const ProfileDatabase &Database,
                             const SymbolTable *Symbols,
                             const HtmlReportOptions &Options =
                                 HtmlReportOptions());

/// Convenience: renders and writes to \p Path. Returns false on I/O
/// failure.
bool writeHtmlReport(const std::string &Path,
                     const ProfileDatabase &Database,
                     const SymbolTable *Symbols,
                     const HtmlReportOptions &Options = HtmlReportOptions());

} // namespace isp

#endif // ISPROF_CORE_HTMLREPORT_H
