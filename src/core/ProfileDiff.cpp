//===- core/ProfileDiff.cpp - Cross-run profile comparison --------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "core/ProfileDiff.h"

#include "core/Report.h"
#include "instr/SymbolTable.h"
#include "support/Format.h"
#include "support/Table.h"

#include <algorithm>
#include <cmath>
#include <map>

using namespace isp;

namespace {

/// Name-keyed view of a profile database.
std::map<std::string, const RoutineProfile *>
byName(const std::map<RoutineId, RoutineProfile> &Merged,
       const SymbolTable &Symbols) {
  std::map<std::string, const RoutineProfile *> Out;
  for (const auto &[Rtn, Profile] : Merged)
    Out.emplace(Symbols.routineName(Rtn), &Profile);
  return Out;
}

/// Geometric-mean cost ratio over input sizes present in both profiles.
double costRatioAtCommonSizes(const RoutineProfile &Baseline,
                              const RoutineProfile &Candidate) {
  double LogSum = 0;
  size_t Count = 0;
  for (const auto &[Size, BaseStats] : Baseline.costByTrms()) {
    auto It = Candidate.costByTrms().find(Size);
    if (It == Candidate.costByTrms().end())
      continue;
    if (BaseStats.MaxCost == 0 || It->second.MaxCost == 0)
      continue;
    LogSum += std::log(static_cast<double>(It->second.MaxCost) /
                       static_cast<double>(BaseStats.MaxCost));
    ++Count;
  }
  return Count ? std::exp(LogSum / static_cast<double>(Count)) : 0.0;
}

} // namespace

std::vector<RoutineDiff>
isp::diffProfiles(const ProfileDatabase &Baseline,
                  const SymbolTable &BaselineSyms,
                  const ProfileDatabase &Candidate,
                  const SymbolTable &CandidateSyms,
                  const ProfileDiffOptions &Options) {
  auto BaseMerged = Baseline.mergedByRoutine();
  auto CandMerged = Candidate.mergedByRoutine();
  auto BaseByName = byName(BaseMerged, BaselineSyms);
  auto CandByName = byName(CandMerged, CandidateSyms);

  std::vector<RoutineDiff> Diffs;
  auto processRoutine = [&](const std::string &Name,
                            const RoutineProfile *Base,
                            const RoutineProfile *Cand) {
    RoutineDiff D;
    D.Name = Name;
    D.InBaseline = Base != nullptr;
    D.InCandidate = Cand != nullptr;
    uint64_t MaxActivations = 0;
    if (Base) {
      FitResult Fit = fitWorstCase(*Base, InputMetric::Trms);
      D.BaselineModel = Fit.best().Model;
      D.BaselineAlpha = Fit.PowerLawAlpha;
      D.BaselineActivations = Base->activations();
      MaxActivations = std::max(MaxActivations, D.BaselineActivations);
    }
    if (Cand) {
      FitResult Fit = fitWorstCase(*Cand, InputMetric::Trms);
      D.CandidateModel = Fit.best().Model;
      D.CandidateAlpha = Fit.PowerLawAlpha;
      D.CandidateActivations = Cand->activations();
      MaxActivations = std::max(MaxActivations, D.CandidateActivations);
    }
    if (MaxActivations < Options.MinActivations)
      return;
    if (Base && Cand) {
      D.CostRatioAtCommonSizes = costRatioAtCommonSizes(*Base, *Cand);
      D.GrowthRegression = static_cast<int>(D.CandidateModel) >
                           static_cast<int>(D.BaselineModel);
      D.CostRegression = D.CostRatioAtCommonSizes >
                         Options.CostRatioThreshold;
    }
    Diffs.push_back(std::move(D));
  };

  for (const auto &[Name, Base] : BaseByName) {
    auto It = CandByName.find(Name);
    processRoutine(Name, Base,
                   It == CandByName.end() ? nullptr : It->second);
  }
  for (const auto &[Name, Cand] : CandByName)
    if (!BaseByName.count(Name))
      processRoutine(Name, nullptr, Cand);

  std::sort(Diffs.begin(), Diffs.end(),
            [](const RoutineDiff &L, const RoutineDiff &R) {
              auto Rank = [](const RoutineDiff &D) {
                if (D.GrowthRegression)
                  return 0;
                if (D.CostRegression)
                  return 1;
                if (!D.InBaseline || !D.InCandidate)
                  return 2;
                return 3;
              };
              if (Rank(L) != Rank(R))
                return Rank(L) < Rank(R);
              return L.Name < R.Name;
            });
  return Diffs;
}

bool isp::hasRegressions(const std::vector<RoutineDiff> &Diffs) {
  for (const RoutineDiff &D : Diffs)
    if (D.GrowthRegression || D.CostRegression)
      return true;
  return false;
}

std::string isp::renderProfileDiff(const std::vector<RoutineDiff> &Diffs) {
  TextTable Table;
  Table.setHeader({"routine", "growth", "alpha", "cost ratio", "calls",
                   "verdict"});
  unsigned Regressions = 0;
  for (const RoutineDiff &D : Diffs) {
    std::string Growth, Alpha, Ratio, Calls, Verdict;
    if (D.InBaseline && D.InCandidate) {
      Growth = formatString("%s -> %s", growthModelName(D.BaselineModel),
                            growthModelName(D.CandidateModel));
      Alpha = formatString("%.2f -> %.2f", D.BaselineAlpha,
                           D.CandidateAlpha);
      Ratio = D.CostRatioAtCommonSizes > 0
                  ? formatString("%.2fx", D.CostRatioAtCommonSizes)
                  : "-";
      Calls = formatString("%llu -> %llu",
                           static_cast<unsigned long long>(
                               D.BaselineActivations),
                           static_cast<unsigned long long>(
                               D.CandidateActivations));
      if (D.GrowthRegression) {
        Verdict = "GROWTH REGRESSION";
        ++Regressions;
      } else if (D.CostRegression) {
        Verdict = "cost regression";
        ++Regressions;
      } else {
        Verdict = "ok";
      }
    } else if (D.InCandidate) {
      Growth = formatString("(new) %s", growthModelName(D.CandidateModel));
      Verdict = "added";
    } else {
      Growth = formatString("%s (gone)", growthModelName(D.BaselineModel));
      Verdict = "removed";
    }
    Table.addRow({D.Name, Growth, Alpha, Ratio, Calls, Verdict});
  }
  std::string Out = Table.render();
  Out += formatString("\n%u regression(s) across %zu routine(s)\n",
                      Regressions, Diffs.size());
  return Out;
}
