//===- core/NaiveProfiler.cpp - Set-based trms oracle ------------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "core/NaiveProfiler.h"

#include <cassert>

using namespace isp;

NaiveTrmsProfiler::NaiveTrmsProfiler(NaiveProfilerOptions Opts)
    : Options(Opts) {
  Database.setKeepLog(Options.KeepActivationLog);
}

NaiveTrmsProfiler::~NaiveTrmsProfiler() = default;

void NaiveTrmsProfiler::noteThread(ThreadId Tid) {
  if (HaveCurrentTid && CurrentTid == Tid)
    return;
  CurrentTid = Tid;
  HaveCurrentTid = true;
  ++Clock;
}

void NaiveTrmsProfiler::onThreadStart(ThreadId Tid, ThreadId Parent) {
  noteThread(Tid);
  Threads[Tid];
}

void NaiveTrmsProfiler::onThreadEnd(ThreadId Tid) {
  noteThread(Tid);
  ThreadState &TS = Threads[Tid];
  while (!TS.Stack.empty())
    popActivation(Tid, TS);
}

void NaiveTrmsProfiler::onCall(ThreadId Tid, RoutineId Rtn) {
  noteThread(Tid);
  ++Clock;
  ThreadState &TS = Threads[Tid];
  Activation A;
  A.Rtn = Rtn;
  A.BbAtEntry = TS.BbCount;
  TS.Stack.push_back(std::move(A));
}

void NaiveTrmsProfiler::popActivation(ThreadId Tid, ThreadState &TS) {
  assert(!TS.Stack.empty());
  Activation &Top = TS.Stack.back();

  ActivationRecord R;
  R.Tid = Tid;
  R.Rtn = Top.Rtn;
  R.Rms = Top.Rms;
  R.Trms = Top.Trms;
  R.Cost = TS.BbCount - Top.BbAtEntry;
  R.InducedThread = Top.InducedThread;
  R.InducedExternal = Top.InducedExternal;
  Database.recordActivation(R);
  LiveSetEntries -= Top.Live.size() + Top.Accessed.size();
  TS.Stack.pop_back();
}

void NaiveTrmsProfiler::onReturn(ThreadId Tid, RoutineId Rtn) {
  noteThread(Tid);
  ThreadState &TS = Threads[Tid];
  if (TS.Stack.empty())
    return;
  assert(TS.Stack.back().Rtn == Rtn && "mismatched call/return nesting");
  popActivation(Tid, TS);
}

void NaiveTrmsProfiler::onBasicBlock(ThreadId Tid, uint64_t N) {
  noteThread(Tid);
  Threads[Tid].BbCount += N;
}

void NaiveTrmsProfiler::readCell(ThreadId Tid, Addr A) {
  ++Database.GlobalReads;
  ThreadState &TS = Threads[Tid];

  // Classification mirrors the timestamping test ts_t[A] < wts[A]: the
  // location was last written by another thread or the kernel after this
  // thread's latest access.
  auto WriteIt = LastWrites.find(A);
  auto AccessIt = TS.LastAccess.find(A);
  uint64_t LastAccessTime = AccessIt == TS.LastAccess.end() ? 0
                                                            : AccessIt->second;
  bool Induced =
      WriteIt != LastWrites.end() && LastAccessTime < WriteIt->second.Time;
  bool InducedKernel = Induced && WriteIt->second.Kernel;

  if (Induced && !TS.Stack.empty()) {
    if (InducedKernel)
      ++Database.GlobalInducedExternal;
    else
      ++Database.GlobalInducedThread;
  }

  bool CountedPlainFirst = false;
  for (Activation &Act : TS.Stack) {
    // trms (Figure 10): counts iff absent from the live set.
    if (Act.Live.insert(A).second) {
      noteSetGrowth(1);
      ++Act.Trms;
      if (Induced) {
        if (InducedKernel)
          ++Act.InducedExternal;
        else
          ++Act.InducedThread;
      }
    } else {
      assert(!Induced &&
             "foreign write must have removed A from every live set");
    }
    // rms (Definition 1): counts iff the subtree never accessed A.
    if (Act.Accessed.insert(A).second) {
      noteSetGrowth(1);
      CountedPlainFirst = true;
      ++Act.Rms;
    }
  }
  if (CountedPlainFirst && !Induced)
    ++Database.GlobalPlainFirstAccesses;

  TS.LastAccess[A] = Clock;
}

void NaiveTrmsProfiler::onRead(ThreadId Tid, Addr A, uint64_t Cells) {
  noteThread(Tid);
  for (uint64_t I = 0; I != Cells; ++I)
    readCell(Tid, A + I);
}

void NaiveTrmsProfiler::onWrite(ThreadId Tid, Addr A, uint64_t Cells) {
  noteThread(Tid);
  for (uint64_t I = 0; I != Cells; ++I) {
    Addr Address = A + I;
    ThreadState &Self = Threads[Tid];
    for (Activation &Act : Self.Stack) {
      if (Act.Live.insert(Address).second)
        noteSetGrowth(1);
      if (Act.Accessed.insert(Address).second)
        noteSetGrowth(1);
    }
    Self.LastAccess[Address] = Clock;
    // The foreign-write rule: remove from every *other* thread's sets.
    for (auto &[OtherTid, Other] : Threads) {
      if (OtherTid == Tid)
        continue;
      for (Activation &Act : Other.Stack)
        LiveSetEntries -= Act.Live.erase(Address);
    }
    LastWrites[Address] = {Clock, /*Kernel=*/false};
  }
}

void NaiveTrmsProfiler::onKernelRead(ThreadId Tid, Addr A, uint64_t Cells) {
  onRead(Tid, A, Cells);
}

void NaiveTrmsProfiler::onKernelWrite(ThreadId Tid, Addr A, uint64_t Cells) {
  noteThread(Tid);
  // A kernel buffer load invalidates every thread's live sets, including
  // the requesting thread's: the data is new until actually read.
  ++Clock;
  for (uint64_t I = 0; I != Cells; ++I) {
    Addr Address = A + I;
    for (auto &[OtherTid, Other] : Threads)
      for (Activation &Act : Other.Stack)
        LiveSetEntries -= Act.Live.erase(Address);
    LastWrites[Address] = {Clock, /*Kernel=*/true};
  }
}

void NaiveTrmsProfiler::onFinish() {
  for (auto &[Tid, TS] : Threads)
    while (!TS.Stack.empty())
      popActivation(Tid, TS);
}

uint64_t NaiveTrmsProfiler::memoryFootprintBytes() const {
  // Peak set population (the sets die with their activations, so the
  // high-water mark is the honest number) plus the per-thread and
  // global access maps.
  const uint64_t PerSetEntry = sizeof(Addr) + 2 * sizeof(void *);
  uint64_t Total = PeakSetEntries * PerSetEntry;
  for (const auto &[Tid, TS] : Threads) {
    Total += TS.Stack.size() * sizeof(Activation);
    Total += TS.LastAccess.size() * (PerSetEntry + sizeof(uint64_t));
  }
  Total += LastWrites.size() * (PerSetEntry + sizeof(LastWrite));
  return Total;
}
