//===- core/TrmsProfiler.cpp - Read/write timestamping profiler --------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "core/TrmsProfiler.h"

#include "obs/Obs.h"
#include "support/Compiler.h"

#include <algorithm>
#include <cassert>

using namespace isp;

namespace {

/// wts cells pack (time << 1) | kernelBit so one shadow lookup yields both
/// the latest-write timestamp and whether that write came from the kernel.
inline uint64_t packWts(uint64_t Time, bool Kernel) {
  return (Time << 1) | (Kernel ? 1u : 0u);
}
inline uint64_t wtsTime(uint64_t Packed) { return Packed >> 1; }
inline bool wtsKernel(uint64_t Packed) { return (Packed & 1) != 0; }

} // namespace

template <typename ShadowT, typename WtsShadowT>
TrmsProfilerT<ShadowT, WtsShadowT>::TrmsProfilerT(TrmsProfilerOptions Opts)
    : Options(Opts) {
  Database.setKeepLog(Options.KeepActivationLog);
  // Shard the global wts when the shadow type supports it (ShadowShards
  // is validated upstream; an invalid count falls back to one shard).
  if constexpr (requires(WtsShadowT &W) { W.setShardCount(1u); })
    Wts.setShardCount(Options.ShadowShards);
}

template <typename ShadowT, typename WtsShadowT> TrmsProfilerT<ShadowT, WtsShadowT>::~TrmsProfilerT() = default;

template <typename ShadowT, typename WtsShadowT>
void TrmsProfilerT<ShadowT, WtsShadowT>::onStart(const SymbolTable *Symbols) {
  (void)Symbols;
}

template <typename ShadowT, typename WtsShadowT>
typename TrmsProfilerT<ShadowT, WtsShadowT>::ThreadState &
TrmsProfilerT<ShadowT, WtsShadowT>::stateSlow(ThreadId Tid) {
  if (Tid >= Threads.size())
    Threads.resize(static_cast<size_t>(Tid) + 1);
  std::unique_ptr<ThreadState> &Slot = Threads[Tid];
  if (!Slot) {
    Slot = std::make_unique<ThreadState>();
    // Mirror the wts sharding on the per-thread ts when the shadow type
    // supports it (the ParallelReplayProfiler configuration): parallel
    // replay routes ops by shard, and both shadows a worker touches
    // must agree on which shard an address belongs to.
    if constexpr (requires(ShadowT &S) { S.setShardCount(1u); })
      Slot->Ts.setShardCount(Options.ShadowShards);
  }
  if (HaveCurrentTid && CurrentTid == Tid)
    CurrentState = Slot.get();
  return *Slot;
}

template <typename ShadowT, typename WtsShadowT>
typename TrmsProfilerT<ShadowT, WtsShadowT>::ThreadState &
TrmsProfilerT<ShadowT, WtsShadowT>::state(ThreadId Tid) {
  if (CurrentState && HaveCurrentTid && CurrentTid == Tid)
    return *CurrentState;
  return stateSlow(Tid);
}

template <typename ShadowT, typename WtsShadowT>
void TrmsProfilerT<ShadowT, WtsShadowT>::noteThread(ThreadId Tid) {
  // The merged trace is serialized; a change of running thread is a
  // thread switch and bumps the global counter (Figure 11). Detecting
  // switches here (rather than relying on explicit ThreadSwitch events)
  // keeps the profiler correct on traces that omit them.
  if (HaveCurrentTid && CurrentTid == Tid)
    return;
  CurrentTid = Tid;
  HaveCurrentTid = true;
  CurrentState = nullptr; // re-pointed by the next state() call
  bumpCount();
}

template <typename ShadowT, typename WtsShadowT> void TrmsProfilerT<ShadowT, WtsShadowT>::bumpCount() {
  if (Count + 1 >= Options.CounterLimit)
    renumber();
  ++Count;
}

template <typename ShadowT, typename WtsShadowT>
void TrmsProfilerT<ShadowT, WtsShadowT>::onThreadStart(ThreadId Tid, ThreadId Parent) {
  noteThread(Tid);
  state(Tid);
}

template <typename ShadowT, typename WtsShadowT>
void TrmsProfilerT<ShadowT, WtsShadowT>::onThreadEnd(ThreadId Tid) {
  noteThread(Tid);
  ThreadState &TS = state(Tid);
  // Unwind any activations still pending when the thread dies, so their
  // (complete) partial sums are recorded.
  while (!TS.Stack.empty())
    popFrame(Tid, TS);
  // A dead thread's access timestamps can never be consulted again (the
  // read test only compares a thread's own ts against the global wts),
  // so its shadow is released — essential for fork-join programs that
  // spawn thousands of short-lived workers. Peak usage is kept for the
  // space-overhead reports.
  PeakFootprintBytes = std::max(PeakFootprintBytes, currentFootprintBytes());
  CurrentState = nullptr;
  Threads[Tid].reset();
}

template <typename ShadowT, typename WtsShadowT>
void TrmsProfilerT<ShadowT, WtsShadowT>::onCall(ThreadId Tid, RoutineId Rtn) {
  noteThread(Tid);
  ThreadState &TS = state(Tid);
  bumpCount();
  Frame F;
  F.Rtn = Rtn;
  F.Ts = Count;
  F.BbAtEntry = TS.BbCount;
  TS.Stack.push_back(F);
}

template <typename ShadowT, typename WtsShadowT>
void TrmsProfilerT<ShadowT, WtsShadowT>::popFrame(ThreadId Tid, ThreadState &TS) {
  assert(!TS.Stack.empty() && "return with empty shadow stack");
  Frame Top = TS.Stack.back();
  TS.Stack.pop_back();

  // Upon completion the partial trms equals the activation's true trms
  // (Invariant 2 with i = top), and likewise for rms.
  assert(Top.PartialTrms >= 0 && "partial trms negative at completion");
  assert(Top.PartialRms >= 0 && "partial rms negative at completion");

  ActivationRecord R;
  R.Tid = Tid;
  R.Rtn = Top.Rtn;
  R.Rms = static_cast<uint64_t>(Top.PartialRms);
  R.Trms = static_cast<uint64_t>(Top.PartialTrms);
  R.Cost = TS.BbCount - Top.BbAtEntry;
  R.InducedThread = Top.PartialInducedThread;
  R.InducedExternal = Top.PartialInducedExternal;
  Database.recordActivation(R);

  // Preserve Invariant 2 for the ancestors: fold the completed child's
  // partials into its parent.
  if (!TS.Stack.empty()) {
    Frame &Parent = TS.Stack.back();
    Parent.PartialTrms += Top.PartialTrms;
    Parent.PartialRms += Top.PartialRms;
    Parent.PartialInducedThread += Top.PartialInducedThread;
    Parent.PartialInducedExternal += Top.PartialInducedExternal;
  }
}

template <typename ShadowT, typename WtsShadowT>
void TrmsProfilerT<ShadowT, WtsShadowT>::onReturn(ThreadId Tid, RoutineId Rtn) {
  noteThread(Tid);
  ThreadState &TS = state(Tid);
  if (TS.Stack.empty())
    return;
  assert(TS.Stack.back().Rtn == Rtn && "mismatched call/return nesting");
  popFrame(Tid, TS);
}

template <typename ShadowT, typename WtsShadowT>
void TrmsProfilerT<ShadowT, WtsShadowT>::onBasicBlock(ThreadId Tid, uint64_t N) {
  noteThread(Tid);
  state(Tid).BbCount += N;
}

template <typename ShadowT, typename WtsShadowT>
void TrmsProfilerT<ShadowT, WtsShadowT>::onRead(ThreadId Tid, Addr A, uint64_t Cells) {
  noteThread(Tid);
  ThreadState &TS = state(Tid);
  Database.GlobalReads += Cells;
  if (TS.Stack.empty()) {
    // Accesses outside any activation (prologue code): update the access
    // timestamps so later activations do not miscount, but attribute the
    // reads to no routine.
    TS.Ts.fillRange(A, Cells, Count);
    return;
  }
  // Hoisted out of the cell loop: the topmost frame and the counter are
  // invariant across a multi-cell access (nothing below pushes or pops
  // frames, so the reference stays valid), and the range walk resolves
  // each shadow chunk once per 512-cell span instead of once per cell.
  Frame &Top = TS.Stack.back();
  const uint64_t CountNow = Count;
  TS.Ts.forRange(A, Cells, [&](Addr Address, uint64_t &TsCell) {
    uint64_t WPacked = Wts.get(Address);
    uint64_t WTime = wtsTime(WPacked);

    // The ancestor adjustment index: deepest pending activation whose
    // timestamp is <= ts_t[A]; that activation's subtree performed the
    // previous access, so it already counted the location. Shared by the
    // rms and trms updates below; computed lazily.
    bool NeedAncestor = TsCell != 0 && TsCell < Top.Ts;
    size_t AncestorIndex = 0;
    bool HaveAncestor = false;
    if (NeedAncestor) {
      // Binary search over strictly increasing frame timestamps.
      size_t Lo = 0, Hi = TS.Stack.size();
      while (Lo < Hi) {
        size_t Mid = Lo + (Hi - Lo) / 2;
        if (TS.Stack[Mid].Ts <= TsCell)
          Lo = Mid + 1;
        else
          Hi = Mid;
      }
      if (Lo > 0) {
        AncestorIndex = Lo - 1;
        HaveAncestor = true;
      }
    }

    // Sequential rms (Definition 1): a read counts iff the thread's last
    // access to A predates the current activation; if some pending
    // ancestor's subtree accessed A earlier, transfer the unit from it.
    if (TsCell < Top.Ts) {
      ++Top.PartialRms;
      if (HaveAncestor)
        --TS.Stack[AncestorIndex].PartialRms;
    }

    // trms (Figure 11): induced first-access wins over plain first-access
    // (Example 2's classification); an induced access is new input for
    // every pending activation, so no ancestor adjustment applies.
    if (TsCell < WTime) {
      ++Top.PartialTrms;
      if (wtsKernel(WPacked)) {
        ++Top.PartialInducedExternal;
        ++Database.GlobalInducedExternal;
      } else {
        ++Top.PartialInducedThread;
        ++Database.GlobalInducedThread;
      }
    } else if (TsCell < Top.Ts) {
      ++Top.PartialTrms;
      ++Database.GlobalPlainFirstAccesses;
      if (HaveAncestor)
        --TS.Stack[AncestorIndex].PartialTrms;
    }

    TsCell = CountNow;
  });
}

template <typename ShadowT, typename WtsShadowT>
void TrmsProfilerT<ShadowT, WtsShadowT>::onWrite(ThreadId Tid, Addr A, uint64_t Cells) {
  noteThread(Tid);
  ThreadState &TS = state(Tid);
  TS.Ts.fillRange(A, Cells, Count);
  Wts.fillRange(A, Cells, packWts(Count, /*Kernel=*/false));
}

template <typename ShadowT, typename WtsShadowT>
void TrmsProfilerT<ShadowT, WtsShadowT>::onKernelRead(ThreadId Tid, Addr A,
                                          uint64_t Cells) {
  // The OS reads guest memory to send it to a device; Figure 12 treats
  // this as a read performed by the thread, as if the system call were a
  // normal subroutine.
  onRead(Tid, A, Cells);
}

template <typename ShadowT, typename WtsShadowT>
void TrmsProfilerT<ShadowT, WtsShadowT>::onKernelWrite(ThreadId Tid, Addr A,
                                           uint64_t Cells) {
  noteThread(Tid);
  // Figure 12: a buffer load from a device must not count as thread input
  // by itself — only locations the thread actually reads later should.
  // Bump the counter once and stamp the buffer with a kernel-tagged
  // global write timestamp strictly larger than every thread-local one,
  // forcing the induced test to fire on a subsequent genuine read.
  // The thread-local timestamps are deliberately left untouched.
  bumpCount();
  Wts.fillRange(A, Cells, packWts(Count, /*Kernel=*/true));
}

//===----------------------------------------------------------------------===//
// Parallel-replay entry points
//
// onRead/onWrite/onKernelWrite split into a serial half (global counter
// and tallies) and a shard-local half (shadow cells plus commutative
// classification sums). The shard-local half below is a transcription
// of the corresponding on* body with every update to shared state
// replaced by a TrmsReplayDeltas increment; byte-identity of parallel
// replay rests on these staying in lockstep with the serial handlers.
//===----------------------------------------------------------------------===//

template <typename ShadowT, typename WtsShadowT>
unsigned TrmsProfilerT<ShadowT, WtsShadowT>::replayShardCount() const {
  if constexpr (requires(const WtsShadowT &W) { W.shardCount(); })
    return Wts.shardCount();
  else
    return 1;
}

template <typename ShadowT, typename WtsShadowT>
size_t TrmsProfilerT<ShadowT, WtsShadowT>::replayShardOf(Addr A) const {
  if constexpr (requires(const WtsShadowT &W) { W.shardOf(A); })
    return Wts.shardOf(A);
  else
    return 0;
}

template <typename ShadowT, typename WtsShadowT>
void TrmsProfilerT<ShadowT, WtsShadowT>::replayPrepareMemOp(const EventRecord &E,
                                                            TrmsReplayOp &Op) {
  noteThread(E.Tid);
  ThreadState &TS = state(E.Tid);
  Op.Tid = E.Tid;
  Op.State = &TS;
  switch (E.Kind) {
  case EventKind::Read:
  case EventKind::KernelRead:
    Database.GlobalReads += E.Arg1;
    Op.Kind = EventKind::Read;
    break;
  case EventKind::Write:
    Op.Kind = EventKind::Write;
    break;
  case EventKind::KernelWrite:
    bumpCount();
    Op.Kind = EventKind::KernelWrite;
    break;
  default:
    assert(false && "not a memory event");
    break;
  }
  Op.Count = Count;
}

template <typename ShadowT, typename WtsShadowT>
void TrmsProfilerT<ShadowT, WtsShadowT>::replayApplyMemOp(
    const TrmsReplayOp &Op, Addr A, uint64_t Cells, TrmsReplayDeltas &D) {
  ThreadState &TS = *static_cast<ThreadState *>(Op.State);
  switch (Op.Kind) {
  case EventKind::Write:
    TS.Ts.fillRange(A, Cells, Op.Count);
    Wts.fillRange(A, Cells, packWts(Op.Count, /*Kernel=*/false));
    return;
  case EventKind::KernelWrite:
    Wts.fillRange(A, Cells, packWts(Op.Count, /*Kernel=*/true));
    return;
  default:
    break;
  }
  // Read. The stack is frozen for the duration of the epoch, so frame
  // timestamps can be read without synchronization; the frame partials
  // themselves are NOT touched — increments go into D.
  if (TS.Stack.empty()) {
    TS.Ts.fillRange(A, Cells, Op.Count);
    return;
  }
  const Frame &Top = TS.Stack.back();
  const uint64_t CountNow = Op.Count;
  const size_t TopIndex = TS.Stack.size() - 1;
  // Resolve the top frame's delta first: it grows the Frames vector to
  // its final size, so the ancestor lookups inside the loop (always at
  // smaller indices) can never reallocate it under this reference.
  TrmsReplayDeltas::FrameDelta &TopD = D.frame(Op.Tid, TopIndex);
  TS.Ts.forRange(A, Cells, [&](Addr Address, uint64_t &TsCell) {
    uint64_t WPacked = Wts.get(Address);
    uint64_t WTime = wtsTime(WPacked);

    bool NeedAncestor = TsCell != 0 && TsCell < Top.Ts;
    size_t AncestorIndex = 0;
    bool HaveAncestor = false;
    if (NeedAncestor) {
      size_t Lo = 0, Hi = TS.Stack.size();
      while (Lo < Hi) {
        size_t Mid = Lo + (Hi - Lo) / 2;
        if (TS.Stack[Mid].Ts <= TsCell)
          Lo = Mid + 1;
        else
          Hi = Mid;
      }
      if (Lo > 0) {
        AncestorIndex = Lo - 1;
        HaveAncestor = true;
      }
    }

    if (TsCell < Top.Ts) {
      ++TopD.Rms;
      if (HaveAncestor)
        --D.frame(Op.Tid, AncestorIndex).Rms;
    }

    if (TsCell < WTime) {
      ++TopD.Trms;
      if (wtsKernel(WPacked)) {
        ++TopD.InducedExternal;
        ++D.InducedExternal;
      } else {
        ++TopD.InducedThread;
        ++D.InducedThread;
      }
    } else if (TsCell < Top.Ts) {
      ++TopD.Trms;
      ++D.PlainFirstAccesses;
      if (HaveAncestor)
        --D.frame(Op.Tid, AncestorIndex).Trms;
    }

    TsCell = CountNow;
  });
}

template <typename ShadowT, typename WtsShadowT>
void TrmsProfilerT<ShadowT, WtsShadowT>::replayMergeDeltas(
    TrmsReplayDeltas &D) {
  for (ThreadId Tid = 0; Tid != D.Threads.size(); ++Tid) {
    typename TrmsReplayDeltas::ThreadDeltas &TD = D.Threads[Tid];
    if (TD.DirtyFrames.empty())
      continue;
    assert(Tid < Threads.size() && Threads[Tid] &&
           "deltas for a thread with no live state");
    ThreadState &TS = *Threads[Tid];
    for (uint32_t Index : TD.DirtyFrames) {
      assert(Index < TS.Stack.size() && "delta for a popped frame");
      TrmsReplayDeltas::FrameDelta &FD = TD.Frames[Index];
      Frame &F = TS.Stack[Index];
      F.PartialTrms += FD.Trms;
      F.PartialRms += FD.Rms;
      F.PartialInducedThread += FD.InducedThread;
      F.PartialInducedExternal += FD.InducedExternal;
      FD = {};
    }
    TD.DirtyFrames.clear();
  }
  Database.GlobalInducedThread += D.InducedThread;
  Database.GlobalInducedExternal += D.InducedExternal;
  Database.GlobalPlainFirstAccesses += D.PlainFirstAccesses;
  D.InducedThread = 0;
  D.InducedExternal = 0;
  D.PlainFirstAccesses = 0;
}

template <typename ShadowT, typename WtsShadowT> void TrmsProfilerT<ShadowT, WtsShadowT>::onFinish() {
  for (ThreadId Tid = 0; Tid != Threads.size(); ++Tid) {
    ThreadState *TS = Threads[Tid].get();
    if (!TS)
      continue;
    while (!TS->Stack.empty())
      popFrame(Tid, *TS);
  }
  if (ISP_UNLIKELY(obs::statsEnabled())) {
    obs::Registry &R = obs::Registry::get();
    R.counter("profiler.renumbering_epochs").add(Renumberings);
    // Global wts shadow only; the per-thread ts shadows are touched once
    // per local access and have near-perfect locality by construction.
    R.counter("shadow.wts.chunks_allocated").add(Wts.chunksAllocated());
    R.counter("shadow.wts.cache_hits").add(Wts.cacheHits());
    R.counter("shadow.wts.cache_misses").add(Wts.cacheMisses());
    if constexpr (requires(WtsShadowT &W) { W.setShardCount(1u); }) {
      R.gauge("shadow.wts.shards").noteMax(Wts.shardCount());
      R.counter("shadow.wts.shard_epochs").add(Wts.totalEpochs());
    }
    R.gauge("profiler.peak_footprint_bytes").noteMax(memoryFootprintBytes());
  }
}

template <typename ShadowT, typename WtsShadowT>
uint64_t TrmsProfilerT<ShadowT, WtsShadowT>::memoryFootprintBytes() const {
  return std::max(PeakFootprintBytes, currentFootprintBytes());
}

template <typename ShadowT, typename WtsShadowT>
uint64_t TrmsProfilerT<ShadowT, WtsShadowT>::currentFootprintBytes() const {
  uint64_t Total = Wts.totalBytes();
  for (const std::unique_ptr<ThreadState> &TS : Threads) {
    if (!TS)
      continue;
    Total += TS->Ts.totalBytes();
    Total += TS->Stack.capacity() * sizeof(Frame);
  }
  // Profile maps: rough per-node accounting (two std::map nodes per
  // distinct input-size value plus the activation aggregates).
  for (const auto &[Key, Profile] : Database.threadRoutineProfiles())
    Total += (Profile.distinctTrmsValues() + Profile.distinctRmsValues()) *
                 (sizeof(CostStats) + 48) +
             sizeof(RoutineProfile);
  return Total;
}

template <typename ShadowT, typename WtsShadowT> void TrmsProfilerT<ShadowT, WtsShadowT>::renumber() {
  ++Renumberings;

  // Collect the timestamps of all pending activations across all threads
  // (distinct by construction: each call bumps the counter) and sort.
  std::vector<uint64_t> A;
  for (const std::unique_ptr<ThreadState> &TS : Threads) {
    if (!TS)
      continue;
    for (const Frame &F : TS->Stack)
      A.push_back(F.Ts);
  }
  std::sort(A.begin(), A.end());
  assert(std::adjacent_find(A.begin(), A.end()) == A.end() &&
         "activation timestamps must be distinct");

  // rankOf(T) = number of pending-activation timestamps <= T, i.e. the
  // 1-based rank of the latest activation started at or before T (0 when
  // T predates them all). Rank r is renumbered to 3r, leaving room at
  // 3r+1 for "written after activation r started" and 3r+2 for "read
  // back by the thread after that write" — the three cases of Figure 13.
  auto rankOf = [&A](uint64_t T) -> uint64_t {
    return static_cast<uint64_t>(
        std::upper_bound(A.begin(), A.end(), T) - A.begin());
  };

  // 1. Thread-local timestamps. These must be rewritten while the global
  // wts still holds original values, because each cell's new value
  // depends on its order relative to the location's last write.
  for (std::unique_ptr<ThreadState> &TS : Threads) {
    if (!TS)
      continue;
    TS->Ts.forEachNonZero([&](Addr Address, uint64_t &TsCell) {
      uint64_t J = rankOf(TsCell);
      uint64_t WPacked = Wts.get(Address);
      if (WPacked != 0) {
        uint64_t WTime = wtsTime(WPacked);
        uint64_t Q = rankOf(WTime);
        if (J == Q) {
          // ts and the last write fall between the same two activations;
          // their relative order is all that must survive.
          if (TsCell == WTime)
            TsCell = 3 * Q + 1; // the thread itself performed that write
          else if (TsCell < WTime)
            TsCell = 3 * Q; // foreign write after our access: induced
          else
            TsCell = 3 * Q + 2; // we already read the foreign value
          return;
        }
      }
      TsCell = 3 * J;
    });
  }

  // 2. Global write timestamps: wts lands at 3q+1, above activation q
  // and below activation q+1. A sharded wts sweeps shard by shard
  // through renumberNonZero, which bumps the per-shard epoch counters —
  // the bookkeeping a future parallel renumberer will rely on.
  auto RewriteWts = [&](Addr Address, uint64_t &WCell) {
    (void)Address;
    uint64_t Q = rankOf(wtsTime(WCell));
    WCell = packWts(3 * Q + 1, wtsKernel(WCell));
  };
  if constexpr (requires(WtsShadowT &W) { W.setShardCount(1u); })
    Wts.renumberNonZero(RewriteWts);
  else
    Wts.forEachNonZero(RewriteWts);

  // 3. Activation timestamps, in rank order.
  for (std::unique_ptr<ThreadState> &TS : Threads) {
    if (!TS)
      continue;
    for (Frame &F : TS->Stack)
      F.Ts = 3 * rankOf(F.Ts);
  }

  // 4. Restart the counter above every renumbered timestamp.
  Count = 3 * static_cast<uint64_t>(A.size()) + 3;
  if (Count + 2 >= Options.CounterLimit)
    reportFatalError("trms counter limit too small for the pending "
                     "activation count; raise TrmsProfilerOptions::"
                     "CounterLimit");
}

namespace isp {
template class TrmsProfilerT<ThreeLevelShadow<uint64_t>>;
template class TrmsProfilerT<DenseShadow<uint64_t>>;
template class TrmsProfilerT<ThreeLevelShadow<uint64_t>,
                             ShardedShadow<uint64_t>>;
template class TrmsProfilerT<ShardedShadow<uint64_t>,
                             ShardedShadow<uint64_t>>;
} // namespace isp
