//===- core/ProfileDiff.h - Cross-run profile comparison --------*- C++ -*-===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compares two input-sensitive profiles (e.g. two versions of a
/// program, or the same program on two workloads) routine by routine.
/// This is the payoff the paper's introduction promises — cost
/// *functions* rather than cost numbers — turned into a regression
/// detector: a routine whose fitted growth class moved from O(n) to
/// O(n^2) is flagged even when the measured totals barely changed on
/// the (small) test workload. Routines are matched by name, so the two
/// profiles may come from different builds.
///
//===----------------------------------------------------------------------===//

#ifndef ISPROF_CORE_PROFILEDIFF_H
#define ISPROF_CORE_PROFILEDIFF_H

#include "core/ProfileData.h"
#include "support/CurveFit.h"

#include <string>
#include <vector>

namespace isp {

class SymbolTable;

/// One routine's before/after comparison.
struct RoutineDiff {
  std::string Name;
  bool InBaseline = false;
  bool InCandidate = false;
  GrowthModel BaselineModel = GrowthModel::Constant;
  GrowthModel CandidateModel = GrowthModel::Constant;
  double BaselineAlpha = 0;
  double CandidateAlpha = 0;
  uint64_t BaselineActivations = 0;
  uint64_t CandidateActivations = 0;
  /// Geometric-mean ratio of candidate/baseline worst-case cost over the
  /// input sizes both runs observed (1.0 = unchanged; 0 when no common
  /// sizes exist).
  double CostRatioAtCommonSizes = 0;
  /// The fitted growth class got strictly worse.
  bool GrowthRegression = false;
  /// Cost at common sizes grew beyond the configured threshold.
  bool CostRegression = false;
};

struct ProfileDiffOptions {
  /// Flag a cost regression when the common-size cost ratio exceeds this.
  double CostRatioThreshold = 1.5;
  /// Ignore routines with fewer activations than this in both runs.
  uint64_t MinActivations = 2;
};

/// Diffs \p Candidate against \p Baseline; routines matched by name.
/// Results are sorted with regressions first.
std::vector<RoutineDiff>
diffProfiles(const ProfileDatabase &Baseline, const SymbolTable &BaselineSyms,
             const ProfileDatabase &Candidate,
             const SymbolTable &CandidateSyms,
             const ProfileDiffOptions &Options = ProfileDiffOptions());

/// Renders the diff as a table plus a verdict line.
std::string renderProfileDiff(const std::vector<RoutineDiff> &Diffs);

/// True when any entry is a growth or cost regression.
bool hasRegressions(const std::vector<RoutineDiff> &Diffs);

} // namespace isp

#endif // ISPROF_CORE_PROFILEDIFF_H
