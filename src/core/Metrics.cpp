//===- core/Metrics.cpp - Section 6.1 evaluation metrics ---------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "core/Metrics.h"

#include <algorithm>

using namespace isp;

std::vector<RoutineMetrics>
isp::computeRoutineMetrics(const ProfileDatabase &Database) {
  std::vector<RoutineMetrics> Result;
  for (const auto &[Rtn, Profile] : Database.mergedByRoutine()) {
    RoutineMetrics M;
    M.Rtn = Rtn;
    M.Activations = Profile.activations();
    M.DistinctTrms = Profile.distinctTrmsValues();
    M.DistinctRms = Profile.distinctRmsValues();
    if (M.DistinctRms > 0)
      M.ProfileRichness =
          (static_cast<double>(M.DistinctTrms) -
           static_cast<double>(M.DistinctRms)) /
          static_cast<double>(M.DistinctRms);
    if (Profile.sumTrms() > 0)
      M.InputVolume = 1.0 - static_cast<double>(Profile.sumRms()) /
                                static_cast<double>(Profile.sumTrms());
    uint64_t Induced = Profile.inducedThread() + Profile.inducedExternal();
    if (Induced > 0) {
      M.ThreadInducedPct = 100.0 * static_cast<double>(Profile.inducedThread()) /
                           static_cast<double>(Induced);
      M.ExternalPct = 100.0 - M.ThreadInducedPct;
    }
    if (Profile.sumTrms() > 0)
      M.InducedShareOfInputPct = 100.0 * static_cast<double>(Induced) /
                                 static_cast<double>(Profile.sumTrms());
    Result.push_back(M);
  }
  return Result;
}

RunMetrics isp::computeRunMetrics(const ProfileDatabase &Database) {
  RunMetrics M;
  M.InducedThread = Database.GlobalInducedThread;
  M.InducedExternal = Database.GlobalInducedExternal;
  M.PlainFirstAccesses = Database.GlobalPlainFirstAccesses;
  uint64_t Induced = M.InducedThread + M.InducedExternal;
  if (Induced > 0) {
    M.ThreadInducedPct = 100.0 * static_cast<double>(M.InducedThread) /
                         static_cast<double>(Induced);
    M.ExternalPct = 100.0 - M.ThreadInducedPct;
  }
  uint64_t SumRms = 0, SumTrms = 0;
  for (const auto &[Key, Profile] : Database.threadRoutineProfiles()) {
    SumRms += Profile.sumRms();
    SumTrms += Profile.sumTrms();
  }
  if (SumTrms > 0)
    M.InputVolume =
        1.0 - static_cast<double>(SumRms) / static_cast<double>(SumTrms);
  return M;
}

std::vector<std::pair<double, double>>
isp::tailDistribution(std::vector<double> Values) {
  std::sort(Values.begin(), Values.end(), std::greater<double>());
  std::vector<std::pair<double, double>> Points;
  Points.reserve(Values.size());
  size_t N = Values.size();
  for (size_t I = 0; I != N; ++I) {
    double Pct = 100.0 * static_cast<double>(I + 1) / static_cast<double>(N);
    Points.emplace_back(Pct, Values[I]);
  }
  return Points;
}
