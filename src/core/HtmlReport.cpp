//===- core/HtmlReport.cpp - Self-contained HTML profile reports --------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "core/HtmlReport.h"

#include "core/Metrics.h"
#include "core/Report.h"
#include "instr/SymbolTable.h"
#include "support/Format.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

using namespace isp;

namespace {

std::string escapeHtml(const std::string &Text) {
  std::string Out;
  Out.reserve(Text.size());
  for (char C : Text) {
    switch (C) {
    case '&':
      Out += "&amp;";
      break;
    case '<':
      Out += "&lt;";
      break;
    case '>':
      Out += "&gt;";
      break;
    case '"':
      Out += "&quot;";
      break;
    default:
      Out += C;
    }
  }
  return Out;
}

/// Renders one scatter plot as inline SVG with log-ish axis handling:
/// points are scaled linearly into the plot box; the fitted model curve
/// is sampled at 32 points.
std::string renderSvgPlot(const std::vector<FitPoint> &Points,
                          const FitResult &Fit, const char *AxisLabel,
                          unsigned Width, unsigned Height) {
  if (Points.empty())
    return "<p class=\"empty\">(no points)</p>";

  double MaxN = 1, MaxCost = 1;
  for (const FitPoint &P : Points) {
    MaxN = std::max(MaxN, P.N);
    MaxCost = std::max(MaxCost, P.Cost);
  }
  const double PadLeft = 44, PadBottom = 26, PadTop = 10, PadRight = 8;
  double PlotW = Width - PadLeft - PadRight;
  double PlotH = Height - PadTop - PadBottom;
  auto MapX = [&](double N) { return PadLeft + N / MaxN * PlotW; };
  auto MapY = [&](double C) {
    return PadTop + (1.0 - C / MaxCost) * PlotH;
  };

  std::string Svg = formatString(
      "<svg viewBox=\"0 0 %u %u\" width=\"%u\" height=\"%u\">\n", Width,
      Height, Width, Height);
  // Axes.
  Svg += formatString("<line x1=\"%.0f\" y1=\"%.0f\" x2=\"%.0f\" "
                      "y2=\"%.0f\" class=\"axis\"/>\n",
                      PadLeft, PadTop, PadLeft, PadTop + PlotH);
  Svg += formatString("<line x1=\"%.0f\" y1=\"%.0f\" x2=\"%.0f\" "
                      "y2=\"%.0f\" class=\"axis\"/>\n",
                      PadLeft, PadTop + PlotH, PadLeft + PlotW,
                      PadTop + PlotH);
  Svg += formatString("<text x=\"%.0f\" y=\"%.0f\" class=\"label\">%s"
                      "</text>\n",
                      PadLeft + PlotW / 2, static_cast<double>(Height - 6),
                      AxisLabel);
  Svg += formatString("<text x=\"4\" y=\"%.0f\" class=\"label\">cost"
                      "</text>\n",
                      PadTop + 10.0);
  Svg += formatString("<text x=\"%.0f\" y=\"%.0f\" class=\"tick\">%.0f"
                      "</text>\n",
                      PadLeft + PlotW - 8, PadTop + PlotH + 14, MaxN);
  Svg += formatString("<text x=\"4\" y=\"%.0f\" class=\"tick\">%.0f"
                      "</text>\n",
                      PadTop + 22.0, MaxCost);

  // Fitted model curve.
  const ModelFit &Best = Fit.best();
  Svg += "<polyline class=\"fit\" points=\"";
  for (unsigned I = 0; I <= 32; ++I) {
    double N = MaxN * I / 32.0;
    double C = std::clamp(Best.evaluate(N), 0.0, MaxCost);
    Svg += formatString("%.1f,%.1f ", MapX(N), MapY(C));
  }
  Svg += "\"/>\n";

  // Data points.
  for (const FitPoint &P : Points)
    Svg += formatString("<circle cx=\"%.1f\" cy=\"%.1f\" r=\"2.5\" "
                        "class=\"pt\"/>\n",
                        MapX(P.N), MapY(P.Cost));
  Svg += "</svg>\n";
  return Svg;
}

} // namespace

std::string isp::renderHtmlReport(const ProfileDatabase &Database,
                                  const SymbolTable *Symbols,
                                  const HtmlReportOptions &Options) {
  auto Merged = Database.mergedByRoutine();
  std::vector<std::pair<RoutineId, const RoutineProfile *>> Ranked;
  for (const auto &[Rtn, Profile] : Merged)
    Ranked.emplace_back(Rtn, &Profile);
  std::sort(Ranked.begin(), Ranked.end(), [](const auto &L, const auto &R) {
    return L.second->totalCost() > R.second->totalCost();
  });
  if (Ranked.size() > Options.MaxRoutines)
    Ranked.resize(Options.MaxRoutines);

  RunMetrics Run = computeRunMetrics(Database);

  std::string Html = formatString(
      "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n"
      "<title>%s</title>\n<style>\n"
      "body{font-family:system-ui,sans-serif;margin:24px;color:#222}\n"
      "h1{font-size:20px} h2{font-size:16px;margin-top:28px}\n"
      "table{border-collapse:collapse;font-size:13px}\n"
      "td,th{border:1px solid #ccc;padding:3px 8px;text-align:right}\n"
      "td:first-child,th:first-child{text-align:left}\n"
      ".plots{display:flex;gap:18px;flex-wrap:wrap}\n"
      ".plot{border:1px solid #ddd;padding:8px;border-radius:6px}\n"
      ".plot h3{font-size:13px;margin:0 0 4px 0;font-weight:600}\n"
      ".axis{stroke:#888;stroke-width:1}\n"
      ".pt{fill:#1f77b4}\n"
      ".fit{fill:none;stroke:#d62728;stroke-width:1.5;stroke-dasharray:4 "
      "3}\n"
      ".label,.tick{font-size:10px;fill:#555}\n"
      ".empty{color:#888;font-size:12px}\n"
      "</style></head><body>\n<h1>%s</h1>\n",
      escapeHtml(Options.Title).c_str(), escapeHtml(Options.Title).c_str());

  Html += formatString(
      "<p>%s activations; induced first-accesses: %.1f%% thread-induced "
      "/ %.1f%% external; input volume %.3f.</p>\n",
      formatWithCommas(Database.totalActivations()).c_str(),
      Run.ThreadInducedPct, Run.ExternalPct, Run.InputVolume);

  // Summary table.
  Html += "<h2>Routines by total cost</h2>\n<table>\n"
          "<tr><th>routine</th><th>calls</th><th>cost (BB)</th>"
          "<th>|trms|</th><th>|rms|</th><th>thread-induced</th>"
          "<th>external</th><th>fit (trms)</th><th>alpha</th></tr>\n";
  for (const auto &[Rtn, Profile] : Ranked) {
    FitResult Fit = fitWorstCase(*Profile, InputMetric::Trms);
    std::string Name = Symbols ? Symbols->routineName(Rtn)
                               : formatString("#%u", Rtn);
    // Humanized magnitudes in the cells; the exact count survives as a
    // hover title for anyone chasing a specific number.
    Html += formatString(
        "<tr><td>%s</td><td>%s</td><td title=\"%s\">%s</td>"
        "<td>%zu</td><td>%zu</td>"
        "<td title=\"%s\">%s</td><td title=\"%s\">%s</td>"
        "<td>%s</td><td>%.2f</td></tr>\n",
        escapeHtml(Name).c_str(),
        formatWithCommas(Profile->activations()).c_str(),
        formatWithCommas(Profile->totalCost()).c_str(),
        formatCount(Profile->totalCost()).c_str(),
        Profile->distinctTrmsValues(), Profile->distinctRmsValues(),
        formatWithCommas(Profile->inducedThread()).c_str(),
        formatCount(Profile->inducedThread()).c_str(),
        formatWithCommas(Profile->inducedExternal()).c_str(),
        formatCount(Profile->inducedExternal()).c_str(),
        growthModelName(Fit.best().Model), Fit.PowerLawAlpha);
  }
  Html += "</table>\n";

  // Per-routine plots: worst-case cost vs rms and vs trms side by side.
  for (const auto &[Rtn, Profile] : Ranked) {
    if (Profile->distinctTrmsValues() < 2)
      continue;
    std::string Name = Symbols ? Symbols->routineName(Rtn)
                               : formatString("#%u", Rtn);
    Html += formatString("<h2>%s</h2>\n<div class=\"plots\">\n",
                         escapeHtml(Name).c_str());
    for (InputMetric Metric : {InputMetric::Rms, InputMetric::Trms}) {
      const char *Label = Metric == InputMetric::Rms ? "rms" : "trms";
      auto Points = worstCasePlot(*Profile, Metric);
      FitResult Fit = fitCurve(Points);
      Html += formatString(
          "<div class=\"plot\"><h3>by %s &mdash; %s</h3>\n", Label,
          growthModelName(Fit.best().Model));
      Html += renderSvgPlot(Points, Fit, Label, Options.PlotWidth,
                            Options.PlotHeight);
      Html += "</div>\n";
    }
    Html += "</div>\n";
  }

  Html += "</body></html>\n";
  return Html;
}

bool isp::writeHtmlReport(const std::string &Path,
                          const ProfileDatabase &Database,
                          const SymbolTable *Symbols,
                          const HtmlReportOptions &Options) {
  std::FILE *File = std::fopen(Path.c_str(), "w");
  if (!File)
    return false;
  std::string Html = renderHtmlReport(Database, Symbols, Options);
  size_t Written = std::fwrite(Html.data(), 1, Html.size(), File);
  std::fclose(File);
  return Written == Html.size();
}
