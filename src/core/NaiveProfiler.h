//===- core/NaiveProfiler.h - Set-based trms oracle -------------*- C++ -*-===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simple-minded trms algorithm of the paper's Figure 10, kept as
/// (a) the correctness oracle for the timestamping profiler — the two
/// must produce identical ActivationRecords on any trace, which the
/// property-based tests verify on thousands of random traces — and
/// (b) the cost baseline the Section 4.2 ablation benchmark measures the
/// timestamping algorithm against.
///
/// Per pending activation r of thread t it maintains the explicit set
/// L_{r,t} of locations accessed by r's live subtree: every access by t
/// inserts into all pending sets of t (stack walking), every write by a
/// different thread (or the kernel) removes from all other threads' sets.
/// A read counts toward trms_{r,t} iff the location is absent from
/// L_{r,t}. Time per write is Theta(sum of all stack depths) and space
/// is up to (cells x depth x threads) — exactly the blowup Section 4.2
/// motivates the timestamping algorithm with.
///
//===----------------------------------------------------------------------===//

#ifndef ISPROF_CORE_NAIVEPROFILER_H
#define ISPROF_CORE_NAIVEPROFILER_H

#include "core/ProfileData.h"
#include "instr/Tool.h"

#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace isp {

struct NaiveProfilerOptions {
  bool KeepActivationLog = false;
};

class NaiveTrmsProfiler : public Tool {
public:
  explicit NaiveTrmsProfiler(
      NaiveProfilerOptions Opts = NaiveProfilerOptions());
  ~NaiveTrmsProfiler() override;

  void onFinish() override;
  void onThreadStart(ThreadId Tid, ThreadId Parent) override;
  void onThreadEnd(ThreadId Tid) override;
  void onCall(ThreadId Tid, RoutineId Rtn) override;
  void onReturn(ThreadId Tid, RoutineId Rtn) override;
  void onBasicBlock(ThreadId Tid, uint64_t Count) override;
  void onRead(ThreadId Tid, Addr A, uint64_t Cells) override;
  void onWrite(ThreadId Tid, Addr A, uint64_t Cells) override;
  void onKernelRead(ThreadId Tid, Addr A, uint64_t Cells) override;
  void onKernelWrite(ThreadId Tid, Addr A, uint64_t Cells) override;

  std::string name() const override { return "aprof-trms-naive"; }
  /// Co-scheduled with the other profilers (shared global-shadow
  /// discipline; see TrmsProfiler::threadAffinity).
  ToolAffinity threadAffinity() const override {
    return ToolAffinity::CoScheduled;
  }
  uint64_t memoryFootprintBytes() const override;

  const ProfileDatabase &database() const { return Database; }
  ProfileDatabase takeDatabase() { return std::move(Database); }
  ProfileDatabase *profileDatabase() override { return &Database; }

private:
  struct Activation {
    RoutineId Rtn = 0;
    uint64_t BbAtEntry = 0;
    /// L_{r,t}: live-accessed set for trms (foreign writes remove).
    std::unordered_set<Addr> Live;
    /// Accessed-ever-by-subtree set for rms (nothing removes).
    std::unordered_set<Addr> Accessed;
    uint64_t Trms = 0;
    uint64_t Rms = 0;
    uint64_t InducedThread = 0;
    uint64_t InducedExternal = 0;
  };

  struct ThreadState {
    std::vector<Activation> Stack;
    uint64_t BbCount = 0;
    /// Timestamp of the thread's latest access per location (for the
    /// induced-vs-plain classification, mirroring the operational
    /// definition the timestamping algorithm uses).
    std::unordered_map<Addr, uint64_t> LastAccess;
  };

  struct LastWrite {
    uint64_t Time = 0;
    bool Kernel = false;
  };

  void readCell(ThreadId Tid, Addr A);
  void popActivation(ThreadId Tid, ThreadState &TS);

  /// Bookkeeping for peak space: total entries across all live
  /// activation sets, tracked incrementally so footprint reporting can
  /// expose the algorithm's mid-run blowup (sets die with their
  /// activations, so an end-of-run measurement would flatter it).
  void noteSetGrowth(uint64_t Added) {
    LiveSetEntries += Added;
    if (LiveSetEntries > PeakSetEntries)
      PeakSetEntries = LiveSetEntries;
  }

  NaiveProfilerOptions Options;
  uint64_t LiveSetEntries = 0;
  uint64_t PeakSetEntries = 0;
  std::map<ThreadId, ThreadState> Threads;
  std::unordered_map<Addr, LastWrite> LastWrites;
  /// Monotone event clock; bumped at thread switches and kernel writes so
  /// the induced classification matches the timestamping profiler's.
  uint64_t Clock = 1;
  ThreadId CurrentTid = 0;
  bool HaveCurrentTid = false;
  void noteThread(ThreadId Tid);
  ProfileDatabase Database;
};

} // namespace isp

#endif // ISPROF_CORE_NAIVEPROFILER_H
