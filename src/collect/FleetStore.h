//===- collect/FleetStore.h - Fleet-level profile rollup --------*- C++ -*-===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fleet collector's aggregate store. Many recorded runs — from many
/// programs, machines, and build versions — are replayed through the
/// input-sensitive profiler and folded into one store keyed by
/// (program, routine). Per routine the store keeps the cross-run rms
/// curve: for every observed rms value, a mergeable cost distribution
/// (count/sum/min/max plus power-of-two buckets) from which p50/p90/p99
/// are answered deterministically.
///
/// Every aggregate is a commutative, associative fold (bucket-wise sums,
/// min/max), so merging N streams concurrently in any order yields a
/// store exactly equal to merging the N per-stream results serially —
/// the rollup identity the collector's tests assert.
///
//===----------------------------------------------------------------------===//

#ifndef ISPROF_COLLECT_FLEETSTORE_H
#define ISPROF_COLLECT_FLEETSTORE_H

#include "core/ProfileData.h"
#include "support/CurveFit.h"

#include <array>
#include <compare>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace isp {

class SymbolTable;

namespace collect {

/// A mergeable cost distribution: exact count/sum/min/max plus
/// power-of-two buckets (bucket 0 holds zeros; bucket I >= 1 holds
/// [2^(I-1), 2^I)). Percentiles interpolate inside the selected bucket
/// and clamp into [min, max], so a distribution with one distinct value
/// answers exactly and any distribution answers deterministically.
class CostQuantiles {
public:
  static constexpr unsigned NumBuckets = 65;

  void record(uint64_t Cost);
  /// Bucket-wise sum; min/max fold. Commutative and associative.
  void merge(const CostQuantiles &Other);

  uint64_t count() const { return Count; }
  uint64_t sum() const { return Sum; }
  uint64_t min() const { return Count ? MinCost : 0; }
  uint64_t max() const { return MaxCost; }
  double mean() const {
    return Count ? static_cast<double>(Sum) / static_cast<double>(Count) : 0.0;
  }
  /// Cost at quantile \p Q in [0, 1]; 0 for an empty distribution.
  uint64_t percentile(double Q) const;

  bool operator==(const CostQuantiles &Other) const = default;

private:
  std::array<uint64_t, NumBuckets> Buckets = {};
  uint64_t Count = 0;
  uint64_t Sum = 0;
  uint64_t MinCost = UINT64_MAX;
  uint64_t MaxCost = 0;
};

/// One routine's cross-run aggregate: totals plus the rms curve
/// (rms value -> cost distribution).
struct RoutineRollup {
  uint64_t Activations = 0;
  uint64_t SumCost = 0;
  uint64_t SumRms = 0;
  uint64_t SumTrms = 0;
  uint64_t InducedThread = 0;
  uint64_t InducedExternal = 0;
  /// Number of stream merges that contributed at least one activation.
  uint64_t Streams = 0;
  std::map<uint64_t, CostQuantiles> ByRms;

  void addActivation(const ActivationRecord &R);
  void merge(const RoutineRollup &Other);
  /// Free power-law fit over (rms, mean cost) — the ranking key for
  /// "which routines grow worst with input size".
  FitResult growth() const;

  bool operator==(const RoutineRollup &Other) const = default;
};

/// The fleet-level store: (program, routine) -> rollup.
class FleetStore {
public:
  struct Key {
    std::string Program;
    std::string Routine;
    auto operator<=>(const Key &Other) const = default;
  };

  /// Folds one replayed stream's database into the store under program
  /// label \p Program. Requires the profiler to have run with
  /// KeepActivationLog: the per-rms distributions need activation-level
  /// records, not just per-routine sums. \p Only, when non-null,
  /// restricts the fold to the named routines.
  void mergeDatabase(const std::string &Program, const ProfileDatabase &Db,
                     const SymbolTable &Symbols,
                     const std::set<std::string> *Only = nullptr);
  /// Whole-store merge (the serial side of the rollup-identity test).
  void merge(const FleetStore &Other);

  const std::map<Key, RoutineRollup> &rollups() const { return Rollups; }
  size_t routineCount() const { return Rollups.size(); }
  size_t programCount() const;
  uint64_t totalActivations() const;

  /// Human-readable fleet report: totals banner plus the top
  /// \p TopN routines ranked by power-law growth exponent, with
  /// p50/p90/p99 cost at each routine's largest observed rms.
  std::string renderRollup(unsigned TopN) const;
  /// Rollup with a static-vs-dynamic growth cross-check: \p
  /// StaticGrowth maps routine *names* to the compile-time loop-nest
  /// degree (isprof collect --growth-source=FILE); adds "static" and
  /// "agree" columns (agreement when alpha <= degree + 0.5) and a
  /// warning line per contradiction.
  std::string renderRollup(unsigned TopN,
                           const std::map<std::string, unsigned>
                               &StaticGrowth) const;
  /// Full rms curve for every (program, routine) whose routine name is
  /// \p Routine: one row per rms value with count and percentiles.
  std::string renderCurve(const std::string &Routine) const;

  bool operator==(const FleetStore &Other) const = default;

private:
  std::string renderRollupImpl(unsigned TopN,
                               const std::map<std::string, unsigned>
                                   *StaticGrowth) const;

  std::map<Key, RoutineRollup> Rollups;
};

/// One routine-level difference between two stores (programs merged:
/// the diff compares builds/runs routine-by-routine).
struct FleetRoutineDelta {
  std::string Routine;
  bool OnlyInBase = false;
  bool OnlyInCandidate = false;
  /// Candidate mean cost / base mean cost over the shared rms values
  /// (1.0 when there are none).
  double CostRatio = 1.0;
  double AlphaBase = 0.0;
  double AlphaCandidate = 0.0;
  uint64_t SharedRmsValues = 0;
};

struct FleetDiffOptions {
  /// Cost ratio at or above which a delta counts as a regression
  /// (mirrors ProfileDiffOptions::CostRatioThreshold).
  double CostRatioThreshold = 1.5;
  /// Growth-exponent increase that counts as a regression on its own.
  double AlphaThreshold = 0.5;
  /// Relative deviation below which curves are considered equal, so a
  /// diff of a store against itself reports zero deltas.
  double Epsilon = 1e-9;
};

/// Routine-by-routine curve deltas, largest cost ratio first. Routines
/// whose shared-rms mean costs and growth exponents agree within
/// Epsilon produce no entry.
std::vector<FleetRoutineDelta>
diffFleetStores(const FleetStore &Base, const FleetStore &Candidate,
                const FleetDiffOptions &Opts = FleetDiffOptions());

std::string renderFleetDiff(const std::vector<FleetRoutineDelta> &Deltas);

/// True when any delta crosses the regression thresholds (driver exit
/// code 3, like `isprof diff`).
bool hasFleetRegressions(const std::vector<FleetRoutineDelta> &Deltas,
                         const FleetDiffOptions &Opts = FleetDiffOptions());

} // namespace collect
} // namespace isp

#endif // ISPROF_COLLECT_FLEETSTORE_H
