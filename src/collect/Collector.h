//===- collect/Collector.h - Multi-stream fleet ingestion -------*- C++ -*-===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The collector's ingestion engine: many recorded ISPSTM streams —
/// named explicitly or discovered in a spool directory — are replayed
/// concurrently, each through its own aprof-trms profiler, and the
/// per-stream results are folded into a shared FleetStore. A corrupt
/// stream is reported (file + failing chunk, the stream reader's
/// diagnostics) and contributes nothing; it never poisons the rollup.
///
/// When a routine filter is set and a stream carries v2 activity
/// bitmaps, chunks whose 64-bit routine mask provably excludes every
/// filtered routine are skipped without decoding — but only while no
/// filtered activation is in flight, so everything between a filtered
/// Call and its Return always replays. A per-thread shadow stack of
/// forwarded calls reconciles the holes skipping tears in the stream:
/// Returns that close frames opened inside skipped chunks are dropped
/// before dispatch, keeping the replayed call stack consistent and the
/// filtered routines' rms and cost exact. On v3 streams the per-chunk
/// written-shard masks close the historical trms undercount: a chunk is
/// only skipped when, additionally, none of its written shards appears
/// in any later filtered-Call chunk's activity mask (a backward
/// suffix-union over the index), so the shadow-timestamp history behind
/// every retained induced first-access is preserved — up to one
/// residual corner where an activation's mask-invisible continuation
/// chunks read shards no filtered-Call chunk touches. On v2 streams
/// (no written masks) the legacy rule applies and filtered trms may
/// undercount induced first-accesses whose inducing write sat in a
/// skipped chunk (documented approximation; unfiltered ingestion is
/// always exact). v1 streams carry no masks and are always fully
/// decoded.
///
/// Observability: the `collector.*` metric family (streams, chunks
/// read/skipped, decode errors, merge time, store size) and one
/// Chrome-trace lane per ingested stream.
///
//===----------------------------------------------------------------------===//

#ifndef ISPROF_COLLECT_COLLECTOR_H
#define ISPROF_COLLECT_COLLECTOR_H

#include "collect/FleetStore.h"

#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <vector>

namespace isp::collect {

struct CollectorOptions {
  /// Concurrent ingestion threads. 0 auto-sizes to
  /// min(streams, hardware_concurrency), capped at MaxWorkers.
  unsigned Workers = 0;
  static constexpr unsigned MaxWorkers = 64;
  /// Restrict the rollup to these routine names (and skip provably
  /// excluded chunks on v2 streams). Empty ingests everything.
  std::vector<std::string> RoutineFilter;
  /// Program label for every ingested stream; empty labels each stream
  /// by its file stem ("spool/md-3.strm" -> "md-3").
  std::string ProgramLabel;
};

/// One failed stream: which file, which chunk, what the reader said.
struct StreamIngestError {
  std::string File;
  size_t Chunk = 0;
  std::string Message;
};

/// Commutative ingestion tallies (exported as collector.* metrics).
struct CollectorTotals {
  uint64_t Streams = 0;       ///< ingested and merged successfully
  uint64_t StreamsFailed = 0; ///< reported and skipped
  uint64_t ChunksRead = 0;
  uint64_t ChunksSkipped = 0; ///< excluded via v2 routine bitmaps
  uint64_t Events = 0;
  uint64_t MergeNs = 0;  ///< wall time inside store merges
  uint64_t IngestNs = 0; ///< wall time of the whole ingestFiles call
};

class Collector {
public:
  Collector(const CollectorOptions &Opts, FleetStore &Store)
      : Opts(Opts), Store(Store) {}

  /// Ingests every file, fanning out across the configured worker
  /// count. Returns the number of streams merged successfully; failures
  /// land in errors(). Publishes collector.* metrics when stats are
  /// enabled. Callable repeatedly (spool watching); totals accumulate.
  size_t ingestFiles(const std::vector<std::string> &Files);

  const CollectorTotals &totals() const { return Totals; }
  const std::vector<StreamIngestError> &errors() const { return Errors; }

private:
  bool ingestOne(const std::string &Path);

  CollectorOptions Opts;
  FleetStore &Store;
  CollectorTotals Totals;
  std::vector<StreamIngestError> Errors;
  /// Guards Store, Totals, and Errors during concurrent ingestion.
  std::mutex Mutex;
};

/// Chunked stream files directly inside \p Dir (identified by magic,
/// any extension), sorted by name for determinism. Returns an empty
/// list and sets \p Error when the directory cannot be read.
std::vector<std::string> scanSpoolDir(const std::string &Dir,
                                      std::string *Error);

} // namespace isp::collect

#endif // ISPROF_COLLECT_COLLECTOR_H
