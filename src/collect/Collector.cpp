//===- collect/Collector.cpp - Multi-stream fleet ingestion -------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "collect/Collector.h"

#include "core/TrmsProfiler.h"
#include "instr/Dispatcher.h"
#include "instr/SymbolTable.h"
#include "obs/Obs.h"
#include "obs/TraceLog.h"
#include "trace/TraceStream.h"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <thread>

using namespace isp;
using namespace isp::collect;

namespace {

std::string fileLabel(const std::string &Path) {
  return std::filesystem::path(Path).stem().string();
}

std::string fileName(const std::string &Path) {
  return std::filesystem::path(Path).filename().string();
}

} // namespace

bool Collector::ingestOne(const std::string &Path) {
  obs::LaneId Lane = obs::tracingEnabled()
                         ? obs::TraceLog::get().allocLane(
                               "stream: " + fileName(Path))
                         : 0;
  obs::ScopedSpan Span(Lane, "ingest " + fileName(Path), "collector");

  TraceStreamReader Reader;
  uint64_t LocalRead = 0, LocalSkipped = 0, LocalEvents = 0;
  size_t ErrChunk = 0;
  bool Ok = Reader.open(Path);
  if (Ok) {
    SymbolTable Symbols;
    for (const auto &[Id, Name] : Reader.routines())
      Symbols.intern(Name);

    // Advisory chunk filter: OR of the filtered routines' mask bits in
    // this stream's id space. Zero with a non-empty filter means no
    // filtered routine exists here at all — every chunk is skippable.
    bool UseFilter = !Opts.RoutineFilter.empty();
    uint64_t FilterMask = 0;
    std::set<uint64_t> MatchedIds;
    if (UseFilter)
      for (const auto &[Id, Name] : Reader.routines())
        if (std::find(Opts.RoutineFilter.begin(), Opts.RoutineFilter.end(),
                      Name) != Opts.RoutineFilter.end()) {
          FilterMask |= uint64_t(1) << (Id & 63);
          MatchedIds.insert(Id);
        }

    TrmsProfilerOptions ProfOpts;
    ProfOpts.KeepActivationLog = true;
    TrmsProfiler Profiler(ProfOpts);
    EventDispatcher Dispatcher;
    Dispatcher.addTool(&Profiler);
    Dispatcher.start(&Symbols);

    // A chunk may be skipped only when (a) its routine mask proves no
    // filtered routine is called in it and (b) no filtered activation
    // is in flight — everything between a filtered Call and its Return
    // must replay for exact rms/cost, and filtered Calls always set
    // their own mask bit, so (a) alone guarantees none is lost.
    //
    // (c) closes the trms undercount: a chunk passing (a) and (b) may
    // still *write* a cell that a later filtered activation reads for
    // the first time — dropping the write loses the shadow-timestamp
    // history that makes that read an induced first-access. On v3
    // streams each chunk carries a written-shard mask, and SuffixTargets
    // below holds, per chunk, the union of the shard-activity masks of
    // every *later* chunk containing a filtered Call (a backward suffix
    // pass over the index). A chunk whose written shards miss every
    // such target shard cannot feed any retained activation's trms, so
    // skipping it is exact up to one residual corner: an activation's
    // continuation chunks (after its Call chunk, mask-invisible) may
    // read shards no matching chunk touches; those reads can still
    // undercount. Pre-v3 streams carry no written masks and keep the
    // legacy skip rule (a)+(b) with its documented approximation.
    //
    // Skipping tears holes in the call stack: a skipped chunk may open
    // frames whose Returns land in decoded chunks. The per-thread
    // shadow stack below tracks only the calls actually forwarded; a
    // Return that does not match the forwarded top must close a frame
    // opened in a skipped chunk (traces are well-nested per thread, and
    // no frame opened in a skipped chunk can close inside a filtered
    // activation, since its Call would have to nest within it — it
    // would enclose the activation instead). Dropping such Returns
    // keeps the profiler's stack exactly the forwarded calls, so the
    // mismatched-nesting assert can never fire and filtered records
    // stay exact: cost is a within-activation basic-block delta and rms
    // counts only accesses inside the activation window, which is
    // always fully decoded.
    bool WriteAware = UseFilter && Reader.hasWrittenMasks();
    std::vector<ShardActivityMask> SuffixTargets;
    if (WriteAware) {
      size_t N = Reader.chunkCount();
      SuffixTargets.resize(N);
      ShardActivityMask Acc = {};
      for (size_t C = N; C-- > 0;) {
        SuffixTargets[C] = Acc;
        if ((Reader.chunkRoutineMask(C) & FilterMask) != 0) {
          const ShardActivityMask &S = Reader.chunkShardMask(C);
          for (size_t W = 0; W != Acc.size(); ++W)
            Acc[W] |= S[W];
        }
      }
    }
    auto WritesNothingRetained = [&](size_t C) {
      if (!WriteAware)
        return true; // pre-v3: legacy rule, documented approximation
      const ShardActivityMask &W = Reader.chunkWrittenMask(C);
      const ShardActivityMask &T = SuffixTargets[C];
      for (size_t I = 0; I != W.size(); ++I)
        if ((W[I] & T[I]) != 0)
          return false;
      return true;
    };

    uint64_t InFlight = 0;
    std::vector<std::vector<uint64_t>> Stacks;
    std::vector<Event> Chunk;
    while (true) {
      ErrChunk = Reader.cursor();
      if (UseFilter && Reader.hasActivityMasks() && InFlight == 0 &&
          ErrChunk < Reader.chunkCount() &&
          (Reader.chunkRoutineMask(ErrChunk) & FilterMask) == 0 &&
          WritesNothingRetained(ErrChunk)) {
        Reader.seek(ErrChunk + 1);
        LocalSkipped += 1;
        continue;
      }
      if (!Reader.nextChunk(Chunk))
        break;
      LocalRead += 1;
      LocalEvents += Reader.chunkEvents(ErrChunk);
      EventStreamView View(Chunk);
      if (!UseFilter) {
        for (EventRecord E; View.next(E);)
          Dispatcher.enqueue(E);
        continue;
      }
      for (EventRecord E; View.next(E);) {
        if (E.Kind == EventKind::Call) {
          if (E.Tid >= Stacks.size())
            Stacks.resize(static_cast<size_t>(E.Tid) + 1);
          Stacks[E.Tid].push_back(E.Arg0);
          if (MatchedIds.count(E.Arg0))
            InFlight += 1;
        } else if (E.Kind == EventKind::Return) {
          std::vector<uint64_t> *S =
              E.Tid < Stacks.size() ? &Stacks[E.Tid] : nullptr;
          if (!S || S->empty() || S->back() != E.Arg0)
            continue; // closes a frame opened in a skipped chunk
          S->pop_back();
          if (MatchedIds.count(E.Arg0) && InFlight > 0)
            InFlight -= 1;
        }
        Dispatcher.enqueue(E);
      }
    }
    Ok = Reader.error().empty();
    // finish() runs even on error so the dispatcher drains cleanly; the
    // partial database is simply never merged.
    Dispatcher.finish();

    if (Ok) {
      std::set<std::string> Only(Opts.RoutineFilter.begin(),
                                 Opts.RoutineFilter.end());
      std::string Label =
          Opts.ProgramLabel.empty() ? fileLabel(Path) : Opts.ProgramLabel;
      std::lock_guard<std::mutex> Lock(Mutex);
      uint64_t MergeStart = obs::nowNs();
      Store.mergeDatabase(Label, Profiler.database(), Symbols,
                          Only.empty() ? nullptr : &Only);
      Totals.MergeNs += obs::nowNs() - MergeStart;
      Totals.Streams += 1;
      Totals.ChunksRead += LocalRead;
      Totals.ChunksSkipped += LocalSkipped;
      Totals.Events += LocalEvents;
      return true;
    }
  }

  std::lock_guard<std::mutex> Lock(Mutex);
  Totals.StreamsFailed += 1;
  Totals.ChunksRead += LocalRead;
  Totals.ChunksSkipped += LocalSkipped;
  Totals.Events += LocalEvents;
  Errors.push_back({Path, ErrChunk, Reader.error()});
  return false;
}

size_t Collector::ingestFiles(const std::vector<std::string> &Files) {
  CollectorTotals Before = Totals;
  uint64_t Start = obs::nowNs();

  unsigned Workers = Opts.Workers;
  if (Workers == 0) {
    Workers = std::thread::hardware_concurrency();
    if (Workers == 0)
      Workers = 1;
  }
  Workers = std::clamp<unsigned>(
      Workers, 1,
      std::min<size_t>(CollectorOptions::MaxWorkers,
                       std::max<size_t>(Files.size(), 1)));

  if (Workers <= 1 || Files.size() <= 1) {
    for (const std::string &Path : Files)
      ingestOne(Path);
  } else {
    std::atomic<size_t> Next{0};
    std::vector<std::thread> Pool;
    Pool.reserve(Workers);
    for (unsigned W = 0; W != Workers; ++W)
      Pool.emplace_back([this, &Files, &Next] {
        for (size_t I = Next.fetch_add(1); I < Files.size();
             I = Next.fetch_add(1))
          ingestOne(Files[I]);
      });
    for (std::thread &T : Pool)
      T.join();
  }

  Totals.IngestNs += obs::nowNs() - Start;
  if (obs::statsEnabled()) {
    obs::Registry &R = obs::Registry::get();
    R.counter("collector.streams").add(Totals.Streams - Before.Streams);
    R.counter("collector.streams_failed")
        .add(Totals.StreamsFailed - Before.StreamsFailed);
    R.counter("collector.decode_errors")
        .add(Totals.StreamsFailed - Before.StreamsFailed);
    R.counter("collector.chunks_read")
        .add(Totals.ChunksRead - Before.ChunksRead);
    R.counter("collector.chunks_skipped")
        .add(Totals.ChunksSkipped - Before.ChunksSkipped);
    R.counter("collector.events").add(Totals.Events - Before.Events);
    R.counter("collector.merge_ns").add(Totals.MergeNs - Before.MergeNs);
    R.counter("collector.ingest_ns").add(Totals.IngestNs - Before.IngestNs);
    R.gauge("collector.workers").set(Workers);
    R.gauge("collector.store_routines").set(Store.routineCount());
  }
  return static_cast<size_t>(Totals.Streams - Before.Streams);
}

std::vector<std::string> isp::collect::scanSpoolDir(const std::string &Dir,
                                                    std::string *Error) {
  std::vector<std::string> Out;
  std::error_code Ec;
  std::filesystem::directory_iterator It(Dir, Ec), End;
  if (Ec) {
    if (Error)
      *Error = Ec.message();
    return Out;
  }
  for (; It != End; It.increment(Ec)) {
    if (Ec)
      break;
    if (!It->is_regular_file(Ec) || Ec)
      continue;
    std::string Path = It->path().string();
    if (isTraceStreamFile(Path))
      Out.push_back(std::move(Path));
  }
  std::sort(Out.begin(), Out.end());
  return Out;
}
