//===- collect/FleetStore.cpp - Fleet-level profile rollup --------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "collect/FleetStore.h"

#include "instr/SymbolTable.h"
#include "support/Format.h"
#include "support/Table.h"

#include <algorithm>
#include <bit>
#include <cmath>

using namespace isp;
using namespace isp::collect;

void CostQuantiles::record(uint64_t Cost) {
  unsigned I = Cost ? static_cast<unsigned>(std::bit_width(Cost)) : 0;
  Buckets[I] += 1;
  Count += 1;
  Sum += Cost;
  MinCost = std::min(MinCost, Cost);
  MaxCost = std::max(MaxCost, Cost);
}

void CostQuantiles::merge(const CostQuantiles &Other) {
  for (unsigned I = 0; I != NumBuckets; ++I)
    Buckets[I] += Other.Buckets[I];
  Count += Other.Count;
  Sum += Other.Sum;
  MinCost = std::min(MinCost, Other.MinCost);
  MaxCost = std::max(MaxCost, Other.MaxCost);
}

uint64_t CostQuantiles::percentile(double Q) const {
  if (!Count)
    return 0;
  if (Q <= 0.0)
    return MinCost;
  if (Q >= 1.0)
    return MaxCost;
  // Nearest-rank, then the selected bucket's midpoint clamped into the
  // observed [min, max] — deterministic, merge-order independent, and
  // exact whenever the distribution has a single distinct value.
  uint64_t Rank = static_cast<uint64_t>(
      std::ceil(Q * static_cast<double>(Count)));
  Rank = std::clamp<uint64_t>(Rank, 1, Count);
  uint64_t Cum = 0;
  for (unsigned I = 0; I != NumBuckets; ++I) {
    Cum += Buckets[I];
    if (Cum < Rank)
      continue;
    uint64_t Lower = I == 0 ? 0 : uint64_t(1) << (I - 1);
    uint64_t Upper =
        I == 0 ? 0 : (I == 64 ? UINT64_MAX : (uint64_t(1) << I) - 1);
    uint64_t Mid = Lower + (Upper - Lower) / 2;
    return std::clamp(Mid, MinCost, MaxCost);
  }
  return MaxCost;
}

void RoutineRollup::addActivation(const ActivationRecord &R) {
  Activations += 1;
  SumCost += R.Cost;
  SumRms += R.Rms;
  SumTrms += R.Trms;
  InducedThread += R.InducedThread;
  InducedExternal += R.InducedExternal;
  ByRms[R.Rms].record(R.Cost);
}

void RoutineRollup::merge(const RoutineRollup &Other) {
  Activations += Other.Activations;
  SumCost += Other.SumCost;
  SumRms += Other.SumRms;
  SumTrms += Other.SumTrms;
  InducedThread += Other.InducedThread;
  InducedExternal += Other.InducedExternal;
  Streams += Other.Streams;
  for (const auto &[Rms, Q] : Other.ByRms)
    ByRms[Rms].merge(Q);
}

FitResult RoutineRollup::growth() const {
  std::vector<FitPoint> Points;
  Points.reserve(ByRms.size());
  for (const auto &[Rms, Q] : ByRms)
    Points.push_back({static_cast<double>(Rms), Q.mean()});
  return fitCurve(Points);
}

void FleetStore::mergeDatabase(const std::string &Program,
                               const ProfileDatabase &Db,
                               const SymbolTable &Symbols,
                               const std::set<std::string> *Only) {
  std::set<Key> Touched;
  for (const ActivationRecord &R : Db.log()) {
    std::string Name = Symbols.routineName(R.Rtn);
    if (Only && !Only->count(Name))
      continue;
    Key K{Program, Name};
    Rollups[K].addActivation(R);
    Touched.insert(std::move(K));
  }
  for (const Key &K : Touched)
    Rollups[K].Streams += 1;
}

void FleetStore::merge(const FleetStore &Other) {
  for (const auto &[K, R] : Other.Rollups)
    Rollups[K].merge(R);
}

size_t FleetStore::programCount() const {
  std::set<std::string> Programs;
  for (const auto &[K, R] : Rollups)
    Programs.insert(K.Program);
  return Programs.size();
}

uint64_t FleetStore::totalActivations() const {
  uint64_t Total = 0;
  for (const auto &[K, R] : Rollups)
    Total += R.Activations;
  return Total;
}

namespace {

/// Ranking row: growth exponent first (unfittable curves sink), total
/// cost as tie-break, then the key for determinism.
struct RankedRollup {
  const FleetStore::Key *K = nullptr;
  const RoutineRollup *R = nullptr;
  double Alpha = 0.0;
  bool AlphaValid = false;
  const ModelFit *Best = nullptr;
  FitResult Fit;
};

std::vector<RankedRollup> rankByGrowth(const FleetStore &Store) {
  std::vector<RankedRollup> Rows;
  for (const auto &[K, R] : Store.rollups()) {
    RankedRollup Row;
    Row.K = &K;
    Row.R = &R;
    Row.Fit = R.growth();
    Row.AlphaValid = Row.Fit.PowerLawValid;
    Row.Alpha = Row.AlphaValid ? Row.Fit.PowerLawAlpha : 0.0;
    Rows.push_back(std::move(Row));
  }
  std::sort(Rows.begin(), Rows.end(),
            [](const RankedRollup &A, const RankedRollup &B) {
              if (A.AlphaValid != B.AlphaValid)
                return A.AlphaValid;
              if (A.Alpha != B.Alpha)
                return A.Alpha > B.Alpha;
              if (A.R->SumCost != B.R->SumCost)
                return A.R->SumCost > B.R->SumCost;
              return *A.K < *B.K;
            });
  return Rows;
}

} // namespace

namespace {

/// Growth-class label for a static loop-nest degree; matches
/// analysis::growthClassName (duplicated so isp_collect stays
/// independent of the analysis library).
const char *staticGrowthClass(unsigned Degree) {
  switch (Degree) {
  case 0:
    return "O(1)";
  case 1:
    return "O(n)";
  case 2:
    return "O(n^2)";
  default:
    return "O(n^3+)";
  }
}

} // namespace

std::string FleetStore::renderRollup(unsigned TopN) const {
  return renderRollupImpl(TopN, nullptr);
}

std::string FleetStore::renderRollup(
    unsigned TopN,
    const std::map<std::string, unsigned> &StaticGrowth) const {
  return renderRollupImpl(TopN, &StaticGrowth);
}

std::string FleetStore::renderRollupImpl(
    unsigned TopN,
    const std::map<std::string, unsigned> *StaticGrowth) const {
  std::string Out = formatString(
      "fleet rollup: %zu routine(s) across %zu program(s), %s "
      "activation(s)\n",
      routineCount(), programCount(),
      formatWithCommas(totalActivations()).c_str());
  if (Rollups.empty())
    return Out;
  Out += formatString("top %u by growth (cost ~ rms^alpha):\n",
                      TopN);
  TextTable Table;
  std::vector<std::string> Header = {"program", "routine", "streams",
                                     "acts",    "rms pts", "growth",
                                     "alpha",   "p50",     "p90",
                                     "p99"};
  if (StaticGrowth != nullptr) {
    Header.push_back("static");
    Header.push_back("agree");
  }
  Table.setHeader(Header);
  std::string Contradictions;
  std::vector<RankedRollup> Rows = rankByGrowth(*this);
  if (Rows.size() > TopN)
    Rows.resize(TopN);
  for (const RankedRollup &Row : Rows) {
    // Percentiles at the routine's largest observed rms — the paper's
    // "worst-case plot" point; renderCurve exposes the full curve.
    const CostQuantiles &AtMax = Row.R->ByRms.rbegin()->second;
    std::vector<std::string> Cells = {
        Row.K->Program, Row.K->Routine,
        formatWithCommas(Row.R->Streams),
        formatWithCommas(Row.R->Activations),
        formatWithCommas(Row.R->ByRms.size()),
        Row.AlphaValid ? growthModelName(Row.Fit.best().Model) : "-",
        Row.AlphaValid ? formatString("%.2f", Row.Alpha) : "-",
        formatWithCommas(AtMax.percentile(0.50)),
        formatWithCommas(AtMax.percentile(0.90)),
        formatWithCommas(AtMax.percentile(0.99))};
    if (StaticGrowth != nullptr) {
      auto It = StaticGrowth->find(Row.K->Routine);
      if (It == StaticGrowth->end()) {
        Cells.push_back("-");
        Cells.push_back("-");
      } else {
        Cells.push_back(staticGrowthClass(It->second));
        if (!Row.AlphaValid) {
          Cells.push_back("-");
        } else if (Row.Alpha <= static_cast<double>(It->second) + 0.5) {
          Cells.push_back("yes");
        } else {
          Cells.push_back("NO");
          Contradictions += formatString(
              "warning: static-vs-dynamic growth contradiction: %s "
              "measured alpha %.2f exceeds static %s\n",
              Row.K->Routine.c_str(), Row.Alpha,
              staticGrowthClass(It->second));
        }
      }
    }
    Table.addRow(Cells);
  }
  Out += Table.render();
  Out += Contradictions;
  return Out;
}

std::string FleetStore::renderCurve(const std::string &Routine) const {
  std::string Out;
  for (const auto &[K, R] : Rollups) {
    if (K.Routine != Routine)
      continue;
    Out += formatString("curve for '%s' (program '%s', %s activation(s)):\n",
                        K.Routine.c_str(), K.Program.c_str(),
                        formatWithCommas(R.Activations).c_str());
    TextTable Table;
    Table.setHeader({"rms", "count", "mean", "min", "p50", "p90", "p99",
                     "max"});
    for (const auto &[Rms, Q] : R.ByRms)
      Table.addRow({formatWithCommas(Rms), formatWithCommas(Q.count()),
                    formatString("%.1f", Q.mean()),
                    formatWithCommas(Q.min()),
                    formatWithCommas(Q.percentile(0.50)),
                    formatWithCommas(Q.percentile(0.90)),
                    formatWithCommas(Q.percentile(0.99)),
                    formatWithCommas(Q.max())});
    Out += Table.render();
  }
  if (Out.empty())
    Out = formatString("no routine '%s' in the store\n", Routine.c_str());
  return Out;
}

namespace {

/// Programs merged per routine name: the diff compares builds/runs
/// routine-by-routine, whatever program labels each side used.
std::map<std::string, RoutineRollup> byRoutine(const FleetStore &Store) {
  std::map<std::string, RoutineRollup> Out;
  for (const auto &[K, R] : Store.rollups())
    Out[K.Routine].merge(R);
  return Out;
}

} // namespace

std::vector<FleetRoutineDelta>
isp::collect::diffFleetStores(const FleetStore &Base,
                              const FleetStore &Candidate,
                              const FleetDiffOptions &Opts) {
  std::map<std::string, RoutineRollup> B = byRoutine(Base);
  std::map<std::string, RoutineRollup> C = byRoutine(Candidate);
  std::vector<FleetRoutineDelta> Deltas;

  for (const auto &[Name, BR] : B) {
    auto It = C.find(Name);
    if (It == C.end()) {
      FleetRoutineDelta D;
      D.Routine = Name;
      D.OnlyInBase = true;
      Deltas.push_back(std::move(D));
      continue;
    }
    const RoutineRollup &CR = It->second;
    // Mean cost over the rms values both sides observed; disjoint
    // curves fall back to the overall means.
    uint64_t BaseSum = 0, BaseCount = 0, CandSum = 0, CandCount = 0;
    uint64_t Shared = 0;
    double MaxDev = 0.0;
    for (const auto &[Rms, BQ] : BR.ByRms) {
      auto CIt = CR.ByRms.find(Rms);
      if (CIt == CR.ByRms.end()) {
        MaxDev = std::max(MaxDev, 1.0); // rms point vanished
        continue;
      }
      Shared += 1;
      BaseSum += BQ.sum();
      BaseCount += BQ.count();
      CandSum += CIt->second.sum();
      CandCount += CIt->second.count();
      double BM = BQ.mean(), CM = CIt->second.mean();
      if (BM == 0.0 && CM == 0.0)
        continue;
      MaxDev = std::max(
          MaxDev, BM == 0.0 ? 1e9 : std::fabs(CM / BM - 1.0));
    }
    for (const auto &[Rms, CQ] : CR.ByRms)
      if (!BR.ByRms.count(Rms))
        MaxDev = std::max(MaxDev, 1.0); // rms point appeared

    FleetRoutineDelta D;
    D.Routine = Name;
    D.SharedRmsValues = Shared;
    double BaseMean = Shared
                          ? (BaseCount ? static_cast<double>(BaseSum) /
                                             static_cast<double>(BaseCount)
                                       : 0.0)
                          : (BR.Activations
                                 ? static_cast<double>(BR.SumCost) /
                                       static_cast<double>(BR.Activations)
                                 : 0.0);
    double CandMean = Shared
                          ? (CandCount ? static_cast<double>(CandSum) /
                                             static_cast<double>(CandCount)
                                       : 0.0)
                          : (CR.Activations
                                 ? static_cast<double>(CR.SumCost) /
                                       static_cast<double>(CR.Activations)
                                 : 0.0);
    D.CostRatio = BaseMean == 0.0 ? (CandMean == 0.0 ? 1.0 : 1e9)
                                  : CandMean / BaseMean;
    FitResult BFit = BR.growth(), CFit = CR.growth();
    D.AlphaBase = BFit.PowerLawValid ? BFit.PowerLawAlpha : 0.0;
    D.AlphaCandidate = CFit.PowerLawValid ? CFit.PowerLawAlpha : 0.0;
    double AlphaDev = std::fabs(D.AlphaCandidate - D.AlphaBase);
    if (MaxDev > Opts.Epsilon || AlphaDev > Opts.Epsilon)
      Deltas.push_back(std::move(D));
  }
  for (const auto &[Name, CR] : C) {
    if (B.count(Name))
      continue;
    FleetRoutineDelta D;
    D.Routine = Name;
    D.OnlyInCandidate = true;
    Deltas.push_back(std::move(D));
  }
  std::sort(Deltas.begin(), Deltas.end(),
            [](const FleetRoutineDelta &A, const FleetRoutineDelta &X) {
              if (A.CostRatio != X.CostRatio)
                return A.CostRatio > X.CostRatio;
              return A.Routine < X.Routine;
            });
  return Deltas;
}

std::string
isp::collect::renderFleetDiff(const std::vector<FleetRoutineDelta> &Deltas) {
  std::string Out = formatString("fleet diff: %zu routine(s) differ\n",
                                 Deltas.size());
  for (const FleetRoutineDelta &D : Deltas) {
    if (D.OnlyInBase) {
      Out += formatString("  %s: only in baseline\n", D.Routine.c_str());
      continue;
    }
    if (D.OnlyInCandidate) {
      Out += formatString("  %s: only in candidate\n", D.Routine.c_str());
      continue;
    }
    Out += formatString(
        "  %s: mean cost %s over %llu shared rms value(s), "
        "growth alpha %.2f -> %.2f\n",
        D.Routine.c_str(), formatRatio(D.CostRatio).c_str(),
        static_cast<unsigned long long>(D.SharedRmsValues), D.AlphaBase,
        D.AlphaCandidate);
  }
  return Out;
}

bool isp::collect::hasFleetRegressions(
    const std::vector<FleetRoutineDelta> &Deltas,
    const FleetDiffOptions &Opts) {
  for (const FleetRoutineDelta &D : Deltas) {
    if (D.OnlyInBase || D.OnlyInCandidate)
      continue;
    if (D.CostRatio >= Opts.CostRatioThreshold)
      return true;
    if (D.AlphaCandidate - D.AlphaBase >= Opts.AlphaThreshold)
      return true;
  }
  return false;
}
