//===- vm/Compiler.h - Guest AST -> bytecode compiler -----------*- C++ -*-===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiles a parsed guest Module into a bytecode Program: resolves
/// names (block-scoped locals, globals, functions, builtins), lays out
/// the globals region, lowers control flow to jumps with short-circuit
/// logical operators, and places Op::BasicBlock cost markers at
/// structured control-flow leaders (function entry, branch arms, loop
/// bodies, loop exits).
///
//===----------------------------------------------------------------------===//

#ifndef ISPROF_VM_COMPILER_H
#define ISPROF_VM_COMPILER_H

#include "vm/Ast.h"
#include "vm/Bytecode.h"
#include "vm/Diag.h"

#include <optional>
#include <string>

namespace isp {

/// Compiles \p M. Returns std::nullopt (with diagnostics in \p Diags)
/// when the module has semantic errors; requires a zero-argument "main".
std::optional<Program> compileModule(const Module &M, DiagnosticEngine &Diags);

/// Convenience: lex + parse + compile \p Source.
std::optional<Program> compileProgram(const std::string &Source,
                                      DiagnosticEngine &Diags);

} // namespace isp

#endif // ISPROF_VM_COMPILER_H
