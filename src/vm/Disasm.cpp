//===- vm/Disasm.cpp - Bytecode disassembler ------------------------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "vm/Disasm.h"

#include "support/Compiler.h"
#include "support/Format.h"

using namespace isp;

const char *isp::opcodeName(Op Opcode) {
  switch (Opcode) {
  case Op::Nop:
    return "nop";
  case Op::BasicBlock:
    return "basic_block";
  case Op::PushConst:
    return "push_const";
  case Op::Pop:
    return "pop";
  case Op::LoadLocal:
    return "load_local";
  case Op::StoreLocal:
    return "store_local";
  case Op::LoadGlobal:
    return "load_global";
  case Op::StoreGlobal:
    return "store_global";
  case Op::LoadIndirect:
    return "load_indirect";
  case Op::StoreIndirect:
    return "store_indirect";
  case Op::AllocaArray:
    return "alloca_array";
  case Op::Add:
    return "add";
  case Op::Sub:
    return "sub";
  case Op::Mul:
    return "mul";
  case Op::Div:
    return "div";
  case Op::Mod:
    return "mod";
  case Op::Lt:
    return "lt";
  case Op::Le:
    return "le";
  case Op::Gt:
    return "gt";
  case Op::Ge:
    return "ge";
  case Op::Eq:
    return "eq";
  case Op::Ne:
    return "ne";
  case Op::Neg:
    return "neg";
  case Op::Not:
    return "not";
  case Op::ToBool:
    return "to_bool";
  case Op::Jump:
    return "jump";
  case Op::JumpIfFalse:
    return "jump_if_false";
  case Op::JumpIfTrue:
    return "jump_if_true";
  case Op::Call:
    return "call";
  case Op::CallBuiltin:
    return "call_builtin";
  case Op::Spawn:
    return "spawn";
  case Op::Return:
    return "return";
  }
  ISP_UNREACHABLE("unknown opcode");
}

const char *isp::builtinName(Builtin B) {
  switch (B) {
  case Builtin::Print:
    return "print";
  case Builtin::Alloc:
    return "alloc";
  case Builtin::Free:
    return "free";
  case Builtin::SysRead:
    return "sysread";
  case Builtin::SysWrite:
    return "syswrite";
  case Builtin::SemCreate:
    return "sem_create";
  case Builtin::SemWait:
    return "sem_wait";
  case Builtin::SemPost:
    return "sem_post";
  case Builtin::LockCreate:
    return "lock_create";
  case Builtin::LockAcquire:
    return "lock_acquire";
  case Builtin::LockRelease:
    return "lock_release";
  case Builtin::Join:
    return "join";
  case Builtin::Rand:
    return "rand";
  case Builtin::Yield:
    return "yield";
  case Builtin::Load:
    return "load";
  case Builtin::Store:
    return "store";
  case Builtin::ThreadId:
    return "thread_id";
  }
  ISP_UNREACHABLE("unknown builtin");
}

/// True for the opcodes whose B operand is the optimizer's quiet mark.
static bool isQuietMarkable(Op Opcode) {
  switch (Opcode) {
  case Op::LoadLocal:
  case Op::StoreLocal:
  case Op::LoadGlobal:
  case Op::StoreGlobal:
  case Op::LoadIndirect:
  case Op::StoreIndirect:
    return true;
  default:
    return false;
  }
}

std::string isp::disassembleInstr(const Instr &I, const Program *Prog) {
  // Quiet marks are semantic (the VM suppresses the access event), so
  // the listing must show them: golden-disasm tests key on this.
  const char *Quiet = isQuietMarkable(I.Opcode) && I.B == 1 ? "  ; quiet" : "";
  switch (I.Opcode) {
  case Op::LoadLocal:
  case Op::StoreLocal:
  case Op::LoadGlobal:
  case Op::StoreGlobal:
    return formatString("%-14s %lld%s", opcodeName(I.Opcode),
                        static_cast<long long>(I.A), Quiet);
  case Op::LoadIndirect:
  case Op::StoreIndirect:
    return formatString("%s%s", opcodeName(I.Opcode), Quiet);
  case Op::PushConst:
  case Op::Jump:
  case Op::JumpIfFalse:
  case Op::JumpIfTrue:
    return formatString("%-14s %lld", opcodeName(I.Opcode),
                        static_cast<long long>(I.A));
  case Op::Call:
  case Op::Spawn: {
    std::string Callee =
        Prog && static_cast<size_t>(I.A) < Prog->Functions.size()
            ? Prog->Functions[static_cast<size_t>(I.A)].Name
            : formatString("fn#%lld", static_cast<long long>(I.A));
    return formatString("%-14s %s, %lld args", opcodeName(I.Opcode),
                        Callee.c_str(), static_cast<long long>(I.B));
  }
  case Op::CallBuiltin:
    return formatString("%-14s %s, %lld args", opcodeName(I.Opcode),
                        builtinName(static_cast<Builtin>(I.A)),
                        static_cast<long long>(I.B));
  default:
    return opcodeName(I.Opcode);
  }
}

std::string isp::disassembleFunction(const Function &F, const Program *Prog,
                                     const DisasmAnnotations *Annotations,
                                     size_t FnIndex) {
  std::string Out = formatString("fn %s (%u params, %u locals):\n",
                                 F.Name.c_str(), F.NumParams, F.NumLocals);
  for (size_t Pc = 0; Pc != F.Code.size(); ++Pc) {
    Out += formatString("  %4zu  %s", Pc,
                        disassembleInstr(F.Code[Pc], Prog).c_str());
    if (Annotations != nullptr) {
      auto It = Annotations->find({FnIndex, Pc});
      if (It != Annotations->end())
        Out += formatString("  ; %s", It->second.c_str());
    }
    Out += '\n';
  }
  return Out;
}

std::string isp::disassembleProgram(const Program &Prog,
                                    const DisasmAnnotations *Annotations) {
  std::string Out =
      formatString("globals: %llu cell(s) at base %llu\n\n",
                   static_cast<unsigned long long>(Prog.GlobalCells),
                   static_cast<unsigned long long>(GlobalBase));
  for (size_t Fn = 0; Fn != Prog.Functions.size(); ++Fn) {
    Out += disassembleFunction(Prog.Functions[Fn], &Prog, Annotations, Fn);
    Out += '\n';
  }
  return Out;
}
