//===- vm/Lexer.cpp - Guest language lexer -----------------------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "vm/Lexer.h"

#include "support/Compiler.h"

#include <cctype>

using namespace isp;

const char *isp::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Integer:
    return "integer literal";
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::KwVar:
    return "'var'";
  case TokenKind::KwFn:
    return "'fn'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwWhile:
    return "'while'";
  case TokenKind::KwFor:
    return "'for'";
  case TokenKind::KwReturn:
    return "'return'";
  case TokenKind::KwSpawn:
    return "'spawn'";
  case TokenKind::KwBreak:
    return "'break'";
  case TokenKind::KwContinue:
    return "'continue'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Semicolon:
    return "';'";
  case TokenKind::Assign:
    return "'='";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Percent:
    return "'%'";
  case TokenKind::Less:
    return "'<'";
  case TokenKind::LessEqual:
    return "'<='";
  case TokenKind::Greater:
    return "'>'";
  case TokenKind::GreaterEqual:
    return "'>='";
  case TokenKind::EqualEqual:
    return "'=='";
  case TokenKind::NotEqual:
    return "'!='";
  case TokenKind::AmpAmp:
    return "'&&'";
  case TokenKind::PipePipe:
    return "'||'";
  case TokenKind::Bang:
    return "'!'";
  case TokenKind::EndOfFile:
    return "end of file";
  case TokenKind::Error:
    return "invalid token";
  }
  ISP_UNREACHABLE("unknown token kind");
}

Lexer::Lexer(std::string Src, DiagnosticEngine &Diags)
    : Source(std::move(Src)), Diags(Diags) {}

char Lexer::peek() const { return Pos < Source.size() ? Source[Pos] : '\0'; }

char Lexer::peekAhead() const {
  return Pos + 1 < Source.size() ? Source[Pos + 1] : '\0';
}

char Lexer::advance() {
  char C = peek();
  if (C == '\0')
    return C;
  ++Pos;
  if (C == '\n') {
    ++Line;
    Column = 1;
  } else {
    ++Column;
  }
  return C;
}

bool Lexer::match(char Expected) {
  if (peek() != Expected)
    return false;
  advance();
  return true;
}

void Lexer::skipWhitespaceAndComments() {
  for (;;) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
      continue;
    }
    if (C == '/' && peekAhead() == '/') {
      while (peek() != '\n' && peek() != '\0')
        advance();
      continue;
    }
    return;
  }
}

Token Lexer::makeToken(TokenKind Kind) {
  Token T;
  T.Kind = Kind;
  T.Line = TokenLine;
  T.Column = TokenColumn;
  return T;
}

Token Lexer::lexNumber() {
  int64_t Value = 0;
  bool Overflow = false;
  while (std::isdigit(static_cast<unsigned char>(peek()))) {
    int Digit = advance() - '0';
    if (Value > (INT64_MAX - Digit) / 10)
      Overflow = true;
    else
      Value = Value * 10 + Digit;
  }
  if (Overflow)
    Diags.error(TokenLine, TokenColumn, "integer literal overflows 64 bits");
  Token T = makeToken(TokenKind::Integer);
  T.IntValue = Value;
  return T;
}

Token Lexer::lexIdentifier() {
  std::string Text;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
    Text.push_back(advance());

  TokenKind Kind = TokenKind::Identifier;
  if (Text == "var")
    Kind = TokenKind::KwVar;
  else if (Text == "fn")
    Kind = TokenKind::KwFn;
  else if (Text == "if")
    Kind = TokenKind::KwIf;
  else if (Text == "else")
    Kind = TokenKind::KwElse;
  else if (Text == "while")
    Kind = TokenKind::KwWhile;
  else if (Text == "for")
    Kind = TokenKind::KwFor;
  else if (Text == "return")
    Kind = TokenKind::KwReturn;
  else if (Text == "spawn")
    Kind = TokenKind::KwSpawn;
  else if (Text == "break")
    Kind = TokenKind::KwBreak;
  else if (Text == "continue")
    Kind = TokenKind::KwContinue;

  Token T = makeToken(Kind);
  if (Kind == TokenKind::Identifier)
    T.Text = std::move(Text);
  return T;
}

Token Lexer::next() {
  skipWhitespaceAndComments();
  TokenLine = Line;
  TokenColumn = Column;

  char C = peek();
  if (C == '\0')
    return makeToken(TokenKind::EndOfFile);
  if (std::isdigit(static_cast<unsigned char>(C)))
    return lexNumber();
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
    return lexIdentifier();

  advance();
  switch (C) {
  case '(':
    return makeToken(TokenKind::LParen);
  case ')':
    return makeToken(TokenKind::RParen);
  case '{':
    return makeToken(TokenKind::LBrace);
  case '}':
    return makeToken(TokenKind::RBrace);
  case '[':
    return makeToken(TokenKind::LBracket);
  case ']':
    return makeToken(TokenKind::RBracket);
  case ',':
    return makeToken(TokenKind::Comma);
  case ';':
    return makeToken(TokenKind::Semicolon);
  case '+':
    return makeToken(TokenKind::Plus);
  case '-':
    return makeToken(TokenKind::Minus);
  case '*':
    return makeToken(TokenKind::Star);
  case '/':
    return makeToken(TokenKind::Slash);
  case '%':
    return makeToken(TokenKind::Percent);
  case '=':
    return makeToken(match('=') ? TokenKind::EqualEqual : TokenKind::Assign);
  case '<':
    return makeToken(match('=') ? TokenKind::LessEqual : TokenKind::Less);
  case '>':
    return makeToken(match('=') ? TokenKind::GreaterEqual
                                : TokenKind::Greater);
  case '!':
    return makeToken(match('=') ? TokenKind::NotEqual : TokenKind::Bang);
  case '&':
    if (match('&'))
      return makeToken(TokenKind::AmpAmp);
    break;
  case '|':
    if (match('|'))
      return makeToken(TokenKind::PipePipe);
    break;
  default:
    break;
  }
  Diags.error(TokenLine, TokenColumn,
              std::string("unexpected character '") + C + "'");
  Token T = makeToken(TokenKind::Error);
  T.Text = std::string(1, C);
  return T;
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Tokens;
  for (;;) {
    Tokens.push_back(next());
    if (Tokens.back().Kind == TokenKind::EndOfFile)
      return Tokens;
  }
}
