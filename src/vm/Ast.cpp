//===- vm/Ast.cpp - Guest language AST anchors ----------------------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Out-of-line virtual destructor anchors for the AST base classes, so a
// single translation unit owns their vtables.
//
//===----------------------------------------------------------------------===//

#include "vm/Ast.h"

using namespace isp;

Expr::~Expr() = default;
Stmt::~Stmt() = default;
