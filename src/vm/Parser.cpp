//===- vm/Parser.cpp - Guest language parser ----------------------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "vm/Parser.h"

#include "support/Format.h"
#include "vm/Lexer.h"

#include <cassert>

using namespace isp;

Parser::Parser(std::vector<Token> Toks, DiagnosticEngine &Diags)
    : Tokens(std::move(Toks)), Diags(Diags) {
  assert(!Tokens.empty() && Tokens.back().Kind == TokenKind::EndOfFile &&
         "token stream must end with EndOfFile");
}

const Token &Parser::peek(size_t Offset) const {
  size_t Index = Pos + Offset;
  if (Index >= Tokens.size())
    Index = Tokens.size() - 1; // EndOfFile
  return Tokens[Index];
}

Token Parser::consume() {
  Token T = current();
  if (Pos + 1 < Tokens.size())
    ++Pos;
  return T;
}

bool Parser::accept(TokenKind Kind) {
  if (!check(Kind))
    return false;
  consume();
  return true;
}

bool Parser::expect(TokenKind Kind, const char *Context) {
  if (accept(Kind))
    return true;
  Diags.error(current().Line, current().Column,
              formatString("expected %s %s, found %s", tokenKindName(Kind),
                           Context, tokenKindName(current().Kind)));
  return false;
}

SourceLoc Parser::here() const { return {current().Line, current().Column}; }

void Parser::synchronizeToStatement() {
  while (!check(TokenKind::EndOfFile)) {
    TokenKind Kind = consume().Kind;
    if (Kind == TokenKind::Semicolon || Kind == TokenKind::RBrace)
      return;
  }
}

Module Parser::parseModule() {
  Module M;
  while (!check(TokenKind::EndOfFile)) {
    if (check(TokenKind::KwVar)) {
      parseGlobal(M);
    } else if (check(TokenKind::KwFn)) {
      parseFunction(M);
    } else {
      Diags.error(current().Line, current().Column,
                  formatString("expected 'var' or 'fn' at top level, found %s",
                               tokenKindName(current().Kind)));
      synchronizeToStatement();
    }
  }
  return M;
}

void Parser::parseGlobal(Module &M) {
  GlobalDecl G;
  G.Loc = here();
  consume(); // 'var'
  if (!check(TokenKind::Identifier)) {
    expect(TokenKind::Identifier, "in global declaration");
    synchronizeToStatement();
    return;
  }
  G.Name = consume().Text;
  if (accept(TokenKind::LBracket)) {
    if (!check(TokenKind::Integer)) {
      Diags.error(current().Line, current().Column,
                  "global array size must be an integer literal");
      synchronizeToStatement();
      return;
    }
    G.ArraySize = static_cast<uint64_t>(consume().IntValue);
    G.IsArray = true;
    expect(TokenKind::RBracket, "after global array size");
    if (G.ArraySize == 0) {
      Diags.error(G.Loc.Line, G.Loc.Column,
                  "global array size must be positive");
      G.ArraySize = 1;
    }
  }
  if (accept(TokenKind::Assign)) {
    bool Negative = accept(TokenKind::Minus);
    if (!check(TokenKind::Integer)) {
      Diags.error(current().Line, current().Column,
                  "global initializer must be an integer literal");
      synchronizeToStatement();
      return;
    }
    G.InitValue = consume().IntValue;
    if (Negative)
      G.InitValue = -G.InitValue;
    if (G.IsArray)
      Diags.error(G.Loc.Line, G.Loc.Column,
                  "global arrays cannot have initializers");
  }
  expect(TokenKind::Semicolon, "after global declaration");
  M.Globals.push_back(std::move(G));
}

void Parser::parseFunction(Module &M) {
  auto Fn = std::make_unique<FunctionDecl>();
  Fn->Loc = here();
  consume(); // 'fn'
  if (!check(TokenKind::Identifier)) {
    expect(TokenKind::Identifier, "in function declaration");
    synchronizeToStatement();
    return;
  }
  Fn->Name = consume().Text;
  expect(TokenKind::LParen, "after function name");
  if (!check(TokenKind::RParen)) {
    do {
      if (!check(TokenKind::Identifier)) {
        expect(TokenKind::Identifier, "in parameter list");
        break;
      }
      Fn->Params.push_back(consume().Text);
    } while (accept(TokenKind::Comma));
  }
  expect(TokenKind::RParen, "after parameter list");
  if (!check(TokenKind::LBrace)) {
    expect(TokenKind::LBrace, "to begin function body");
    synchronizeToStatement();
    return;
  }
  StmtPtr Body = parseBlock();
  Fn->Body.reset(static_cast<BlockStmt *>(Body.release()));
  M.Functions.push_back(std::move(Fn));
}

StmtPtr Parser::parseBlock() {
  SourceLoc Loc = here();
  expect(TokenKind::LBrace, "to begin block");
  std::vector<StmtPtr> Body;
  while (!check(TokenKind::RBrace) && !check(TokenKind::EndOfFile)) {
    StmtPtr S = parseStatement();
    if (S)
      Body.push_back(std::move(S));
  }
  expect(TokenKind::RBrace, "to end block");
  return std::make_unique<BlockStmt>(std::move(Body), Loc);
}

StmtPtr Parser::parseStatement() {
  switch (current().Kind) {
  case TokenKind::KwVar:
    return parseVarDecl();
  case TokenKind::KwIf:
    return parseIf();
  case TokenKind::KwWhile:
    return parseWhile();
  case TokenKind::KwFor:
    return parseFor();
  case TokenKind::KwReturn:
    return parseReturn();
  case TokenKind::KwBreak: {
    SourceLoc Loc = here();
    consume();
    expect(TokenKind::Semicolon, "after 'break'");
    return std::make_unique<BreakStmt>(Loc);
  }
  case TokenKind::KwContinue: {
    SourceLoc Loc = here();
    consume();
    expect(TokenKind::Semicolon, "after 'continue'");
    return std::make_unique<ContinueStmt>(Loc);
  }
  case TokenKind::LBrace:
    return parseBlock();
  default:
    break;
  }

  SourceLoc Loc = here();
  // Assignment lookahead: IDENT '=' and IDENT '[' ... ']' '='.
  if (check(TokenKind::Identifier)) {
    if (peek(1).Kind == TokenKind::Assign) {
      std::string Name = consume().Text;
      consume(); // '='
      ExprPtr Value = parseExpr();
      expect(TokenKind::Semicolon, "after assignment");
      return std::make_unique<AssignStmt>(std::move(Name), std::move(Value),
                                          Loc);
    }
    if (peek(1).Kind == TokenKind::LBracket) {
      // Scan for the bracket matching the one at peek(1); if it is
      // followed by '=', this is an indexed assignment.
      size_t Depth = 0;
      size_t Offset = 1;
      for (;; ++Offset) {
        TokenKind Kind = peek(Offset).Kind;
        if (Kind == TokenKind::LBracket) {
          ++Depth;
        } else if (Kind == TokenKind::RBracket) {
          if (--Depth == 0)
            break;
        } else if (Kind == TokenKind::EndOfFile) {
          break;
        }
      }
      if (peek(Offset).Kind == TokenKind::RBracket &&
          peek(Offset + 1).Kind == TokenKind::Assign) {
        std::string Base = consume().Text;
        consume(); // '['
        ExprPtr Index = parseExpr();
        expect(TokenKind::RBracket, "after index expression");
        consume(); // '='
        ExprPtr Value = parseExpr();
        expect(TokenKind::Semicolon, "after assignment");
        return std::make_unique<IndexAssignStmt>(
            std::move(Base), std::move(Index), std::move(Value), Loc);
      }
    }
  }

  // Fallback: expression statement.
  ExprPtr E = parseExpr();
  if (!E) {
    synchronizeToStatement();
    return nullptr;
  }
  expect(TokenKind::Semicolon, "after expression statement");
  return std::make_unique<ExprStmt>(std::move(E), Loc);
}

StmtPtr Parser::parseVarDecl() {
  SourceLoc Loc = here();
  consume(); // 'var'
  if (!check(TokenKind::Identifier)) {
    expect(TokenKind::Identifier, "in variable declaration");
    synchronizeToStatement();
    return nullptr;
  }
  std::string Name = consume().Text;
  ExprPtr ArraySize;
  ExprPtr Init;
  if (accept(TokenKind::LBracket)) {
    ArraySize = parseExpr();
    expect(TokenKind::RBracket, "after array size");
  } else if (accept(TokenKind::Assign)) {
    Init = parseExpr();
  }
  expect(TokenKind::Semicolon, "after variable declaration");
  return std::make_unique<VarDeclStmt>(std::move(Name), std::move(ArraySize),
                                       std::move(Init), Loc);
}

StmtPtr Parser::parseIf() {
  SourceLoc Loc = here();
  consume(); // 'if'
  expect(TokenKind::LParen, "after 'if'");
  ExprPtr Condition = parseExpr();
  expect(TokenKind::RParen, "after if condition");
  StmtPtr Then = parseStatement();
  StmtPtr Else;
  if (accept(TokenKind::KwElse))
    Else = parseStatement();
  return std::make_unique<IfStmt>(std::move(Condition), std::move(Then),
                                  std::move(Else), Loc);
}

StmtPtr Parser::parseWhile() {
  SourceLoc Loc = here();
  consume(); // 'while'
  expect(TokenKind::LParen, "after 'while'");
  ExprPtr Condition = parseExpr();
  expect(TokenKind::RParen, "after while condition");
  StmtPtr Body = parseStatement();
  return std::make_unique<WhileStmt>(std::move(Condition), std::move(Body),
                                     Loc);
}

StmtPtr Parser::parseSimpleForClause() {
  SourceLoc Loc = here();
  if (check(TokenKind::KwVar)) {
    consume();
    if (!check(TokenKind::Identifier)) {
      expect(TokenKind::Identifier, "in for-clause declaration");
      return nullptr;
    }
    std::string Name = consume().Text;
    expect(TokenKind::Assign, "in for-clause declaration");
    ExprPtr Init = parseExpr();
    return std::make_unique<VarDeclStmt>(std::move(Name), nullptr,
                                         std::move(Init), Loc);
  }
  if (check(TokenKind::Identifier) && peek(1).Kind == TokenKind::Assign) {
    std::string Name = consume().Text;
    consume(); // '='
    ExprPtr Value = parseExpr();
    return std::make_unique<AssignStmt>(std::move(Name), std::move(Value),
                                        Loc);
  }
  ExprPtr E = parseExpr();
  if (!E)
    return nullptr;
  return std::make_unique<ExprStmt>(std::move(E), Loc);
}

StmtPtr Parser::parseFor() {
  SourceLoc Loc = here();
  consume(); // 'for'
  expect(TokenKind::LParen, "after 'for'");
  StmtPtr Init;
  if (!check(TokenKind::Semicolon))
    Init = parseSimpleForClause();
  expect(TokenKind::Semicolon, "after for-loop initializer");
  ExprPtr Condition;
  if (!check(TokenKind::Semicolon))
    Condition = parseExpr();
  expect(TokenKind::Semicolon, "after for-loop condition");
  StmtPtr Step;
  if (!check(TokenKind::RParen))
    Step = parseSimpleForClause();
  expect(TokenKind::RParen, "after for-loop clauses");
  StmtPtr Body = parseStatement();
  return std::make_unique<ForStmt>(std::move(Init), std::move(Condition),
                                   std::move(Step), std::move(Body), Loc);
}

StmtPtr Parser::parseReturn() {
  SourceLoc Loc = here();
  consume(); // 'return'
  ExprPtr Value;
  if (!check(TokenKind::Semicolon))
    Value = parseExpr();
  expect(TokenKind::Semicolon, "after return statement");
  return std::make_unique<ReturnStmt>(std::move(Value), Loc);
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

ExprPtr Parser::parseExpr() { return parseOr(); }

ExprPtr Parser::parseOr() {
  ExprPtr Lhs = parseAnd();
  while (Lhs && check(TokenKind::PipePipe)) {
    SourceLoc Loc = here();
    consume();
    ExprPtr Rhs = parseAnd();
    Lhs = std::make_unique<BinaryExpr>(BinaryOp::LogicalOr, std::move(Lhs),
                                       std::move(Rhs), Loc);
  }
  return Lhs;
}

ExprPtr Parser::parseAnd() {
  ExprPtr Lhs = parseEquality();
  while (Lhs && check(TokenKind::AmpAmp)) {
    SourceLoc Loc = here();
    consume();
    ExprPtr Rhs = parseEquality();
    Lhs = std::make_unique<BinaryExpr>(BinaryOp::LogicalAnd, std::move(Lhs),
                                       std::move(Rhs), Loc);
  }
  return Lhs;
}

ExprPtr Parser::parseEquality() {
  ExprPtr Lhs = parseRelational();
  while (Lhs &&
         (check(TokenKind::EqualEqual) || check(TokenKind::NotEqual))) {
    SourceLoc Loc = here();
    BinaryOp Op = consume().Kind == TokenKind::EqualEqual ? BinaryOp::Eq
                                                          : BinaryOp::Ne;
    ExprPtr Rhs = parseRelational();
    Lhs = std::make_unique<BinaryExpr>(Op, std::move(Lhs), std::move(Rhs),
                                       Loc);
  }
  return Lhs;
}

ExprPtr Parser::parseRelational() {
  ExprPtr Lhs = parseAdditive();
  for (;;) {
    if (!Lhs)
      return Lhs;
    BinaryOp Op;
    switch (current().Kind) {
    case TokenKind::Less:
      Op = BinaryOp::Lt;
      break;
    case TokenKind::LessEqual:
      Op = BinaryOp::Le;
      break;
    case TokenKind::Greater:
      Op = BinaryOp::Gt;
      break;
    case TokenKind::GreaterEqual:
      Op = BinaryOp::Ge;
      break;
    default:
      return Lhs;
    }
    SourceLoc Loc = here();
    consume();
    ExprPtr Rhs = parseAdditive();
    Lhs = std::make_unique<BinaryExpr>(Op, std::move(Lhs), std::move(Rhs),
                                       Loc);
  }
}

ExprPtr Parser::parseAdditive() {
  ExprPtr Lhs = parseMultiplicative();
  while (Lhs && (check(TokenKind::Plus) || check(TokenKind::Minus))) {
    SourceLoc Loc = here();
    BinaryOp Op =
        consume().Kind == TokenKind::Plus ? BinaryOp::Add : BinaryOp::Sub;
    ExprPtr Rhs = parseMultiplicative();
    Lhs = std::make_unique<BinaryExpr>(Op, std::move(Lhs), std::move(Rhs),
                                       Loc);
  }
  return Lhs;
}

ExprPtr Parser::parseMultiplicative() {
  ExprPtr Lhs = parseUnary();
  for (;;) {
    if (!Lhs)
      return Lhs;
    BinaryOp Op;
    switch (current().Kind) {
    case TokenKind::Star:
      Op = BinaryOp::Mul;
      break;
    case TokenKind::Slash:
      Op = BinaryOp::Div;
      break;
    case TokenKind::Percent:
      Op = BinaryOp::Mod;
      break;
    default:
      return Lhs;
    }
    SourceLoc Loc = here();
    consume();
    ExprPtr Rhs = parseUnary();
    Lhs = std::make_unique<BinaryExpr>(Op, std::move(Lhs), std::move(Rhs),
                                       Loc);
  }
}

ExprPtr Parser::parseUnary() {
  SourceLoc Loc = here();
  if (accept(TokenKind::Minus))
    return std::make_unique<UnaryExpr>(UnaryOp::Neg, parseUnary(), Loc);
  if (accept(TokenKind::Bang))
    return std::make_unique<UnaryExpr>(UnaryOp::Not, parseUnary(), Loc);
  return parsePrimary();
}

std::vector<ExprPtr> Parser::parseArgs() {
  std::vector<ExprPtr> Args;
  expect(TokenKind::LParen, "to begin argument list");
  if (!check(TokenKind::RParen)) {
    do {
      Args.push_back(parseExpr());
    } while (accept(TokenKind::Comma));
  }
  expect(TokenKind::RParen, "to end argument list");
  return Args;
}

ExprPtr Parser::parsePrimary() {
  SourceLoc Loc = here();
  if (check(TokenKind::Integer))
    return std::make_unique<IntLiteralExpr>(consume().IntValue, Loc);

  if (accept(TokenKind::LParen)) {
    ExprPtr E = parseExpr();
    expect(TokenKind::RParen, "to close parenthesized expression");
    return E;
  }

  if (accept(TokenKind::KwSpawn)) {
    if (!check(TokenKind::Identifier)) {
      expect(TokenKind::Identifier, "after 'spawn'");
      return nullptr;
    }
    std::string Callee = consume().Text;
    return std::make_unique<SpawnExpr>(std::move(Callee), parseArgs(), Loc);
  }

  if (check(TokenKind::Identifier)) {
    std::string Name = consume().Text;
    if (check(TokenKind::LParen))
      return std::make_unique<CallExpr>(std::move(Name), parseArgs(), Loc);
    if (accept(TokenKind::LBracket)) {
      ExprPtr Index = parseExpr();
      expect(TokenKind::RBracket, "after index expression");
      return std::make_unique<IndexExpr>(std::move(Name), std::move(Index),
                                         Loc);
    }
    return std::make_unique<VarRefExpr>(std::move(Name), Loc);
  }

  Diags.error(current().Line, current().Column,
              formatString("expected expression, found %s",
                           tokenKindName(current().Kind)));
  consume();
  return nullptr;
}

Module isp::parseSource(const std::string &Source, DiagnosticEngine &Diags) {
  Lexer Lex(Source, Diags);
  Parser P(Lex.lexAll(), Diags);
  return P.parseModule();
}
