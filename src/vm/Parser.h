//===- vm/Parser.h - Guest language parser ----------------------*- C++ -*-===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for the guest language. Grammar (EBNF):
///
///   program     := (globalDecl | fnDecl)*
///   globalDecl  := 'var' IDENT ('[' INT ']')? ('=' '-'? INT)? ';'
///   fnDecl      := 'fn' IDENT '(' (IDENT (',' IDENT)*)? ')' block
///   block       := '{' stmt* '}'
///   stmt        := 'var' IDENT ('[' expr ']')? ('=' expr)? ';'
///                | 'if' '(' expr ')' stmt ('else' stmt)?
///                | 'while' '(' expr ')' stmt
///                | 'for' '(' simple? ';' expr? ';' simple? ')' stmt
///                | 'return' expr? ';'
///                | IDENT '=' expr ';'
///                | IDENT '[' expr ']' '=' expr ';'
///                | expr ';'
///                | block
///   simple      := 'var' IDENT '=' expr | IDENT '=' expr
///   expr        := or; or := and ('||' and)*; and := eq ('&&' eq)*;
///   eq          := rel (('=='|'!=') rel)*;
///   rel         := add (('<'|'<='|'>'|'>=') add)*;
///   add         := mul (('+'|'-') mul)*;
///   mul         := unary (('*'|'/'|'%') unary)*;
///   unary       := ('-'|'!') unary | primary
///   primary     := INT | '(' expr ')' | 'spawn' IDENT '(' args ')'
///                | IDENT ('(' args ')' | '[' expr ']')?
///
/// On parse errors the parser reports via DiagnosticEngine and
/// synchronizes to the next statement boundary; the resulting Module is
/// only meaningful when no errors were reported.
///
//===----------------------------------------------------------------------===//

#ifndef ISPROF_VM_PARSER_H
#define ISPROF_VM_PARSER_H

#include "vm/Ast.h"
#include "vm/Diag.h"
#include "vm/Token.h"

#include <vector>

namespace isp {

class Parser {
public:
  Parser(std::vector<Token> Tokens, DiagnosticEngine &Diags);

  /// Parses a whole module. Check Diags.hasErrors() before using it.
  Module parseModule();

private:
  const Token &peek(size_t Offset = 0) const;
  const Token &current() const { return peek(0); }
  Token consume();
  bool check(TokenKind Kind) const { return current().Kind == Kind; }
  bool accept(TokenKind Kind);
  bool expect(TokenKind Kind, const char *Context);
  void synchronizeToStatement();
  SourceLoc here() const;

  void parseGlobal(Module &M);
  void parseFunction(Module &M);
  StmtPtr parseStatement();
  StmtPtr parseBlock();
  StmtPtr parseVarDecl();
  StmtPtr parseIf();
  StmtPtr parseWhile();
  StmtPtr parseFor();
  StmtPtr parseReturn();
  StmtPtr parseSimpleForClause();

  ExprPtr parseExpr();
  ExprPtr parseOr();
  ExprPtr parseAnd();
  ExprPtr parseEquality();
  ExprPtr parseRelational();
  ExprPtr parseAdditive();
  ExprPtr parseMultiplicative();
  ExprPtr parseUnary();
  ExprPtr parsePrimary();
  std::vector<ExprPtr> parseArgs();

  std::vector<Token> Tokens;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
};

/// Convenience: lex + parse \p Source.
Module parseSource(const std::string &Source, DiagnosticEngine &Diags);

} // namespace isp

#endif // ISPROF_VM_PARSER_H
