//===- vm/Ast.h - Guest language abstract syntax tree -----------*- C++ -*-===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST for the guest language. Nodes carry an explicit kind discriminator
/// (LLVM-style hand-rolled RTTI: no virtual dispatch, no dynamic_cast)
/// and source locations for diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef ISPROF_VM_AST_H
#define ISPROF_VM_AST_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace isp {

struct SourceLoc {
  unsigned Line = 0;
  unsigned Column = 0;
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

enum class ExprKind : uint8_t {
  IntLiteral,
  VarRef,   ///< scalar variable reference
  Index,    ///< base[index]
  Unary,    ///< -x, !x
  Binary,   ///< arithmetic / comparison / logical
  Call,     ///< f(args) — user function or builtin
  Spawn     ///< spawn f(args) — yields the new thread id
};

struct Expr {
  explicit Expr(ExprKind Kind, SourceLoc Loc) : Kind(Kind), Loc(Loc) {}
  /// Virtual so ExprPtr can destroy any node through the base class;
  /// anchored out of line in Ast.cpp.
  virtual ~Expr();
  const ExprKind Kind;
  SourceLoc Loc;
};

using ExprPtr = std::unique_ptr<Expr>;

struct IntLiteralExpr : Expr {
  IntLiteralExpr(int64_t Value, SourceLoc Loc)
      : Expr(ExprKind::IntLiteral, Loc), Value(Value) {}
  int64_t Value;
  static bool classof(const Expr *E) { return E->Kind == ExprKind::IntLiteral; }
};

struct VarRefExpr : Expr {
  VarRefExpr(std::string Name, SourceLoc Loc)
      : Expr(ExprKind::VarRef, Loc), Name(std::move(Name)) {}
  std::string Name;
  static bool classof(const Expr *E) { return E->Kind == ExprKind::VarRef; }
};

struct IndexExpr : Expr {
  IndexExpr(std::string Base, ExprPtr Index, SourceLoc Loc)
      : Expr(ExprKind::Index, Loc), Base(std::move(Base)),
        Index(std::move(Index)) {}
  /// Name of the array-holding variable; its value is the base address.
  std::string Base;
  ExprPtr Index;
  static bool classof(const Expr *E) { return E->Kind == ExprKind::Index; }
};

enum class UnaryOp : uint8_t { Neg, Not };

struct UnaryExpr : Expr {
  UnaryExpr(UnaryOp Op, ExprPtr Operand, SourceLoc Loc)
      : Expr(ExprKind::Unary, Loc), Op(Op), Operand(std::move(Operand)) {}
  UnaryOp Op;
  ExprPtr Operand;
  static bool classof(const Expr *E) { return E->Kind == ExprKind::Unary; }
};

enum class BinaryOp : uint8_t {
  Add,
  Sub,
  Mul,
  Div,
  Mod,
  Lt,
  Le,
  Gt,
  Ge,
  Eq,
  Ne,
  LogicalAnd, ///< short-circuit
  LogicalOr   ///< short-circuit
};

struct BinaryExpr : Expr {
  BinaryExpr(BinaryOp Op, ExprPtr Lhs, ExprPtr Rhs, SourceLoc Loc)
      : Expr(ExprKind::Binary, Loc), Op(Op), Lhs(std::move(Lhs)),
        Rhs(std::move(Rhs)) {}
  BinaryOp Op;
  ExprPtr Lhs;
  ExprPtr Rhs;
  static bool classof(const Expr *E) { return E->Kind == ExprKind::Binary; }
};

struct CallExpr : Expr {
  CallExpr(std::string Callee, std::vector<ExprPtr> Args, SourceLoc Loc)
      : Expr(ExprKind::Call, Loc), Callee(std::move(Callee)),
        Args(std::move(Args)) {}
  std::string Callee;
  std::vector<ExprPtr> Args;
  static bool classof(const Expr *E) { return E->Kind == ExprKind::Call; }
};

struct SpawnExpr : Expr {
  SpawnExpr(std::string Callee, std::vector<ExprPtr> Args, SourceLoc Loc)
      : Expr(ExprKind::Spawn, Loc), Callee(std::move(Callee)),
        Args(std::move(Args)) {}
  std::string Callee;
  std::vector<ExprPtr> Args;
  static bool classof(const Expr *E) { return E->Kind == ExprKind::Spawn; }
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

enum class StmtKind : uint8_t {
  VarDecl,
  Assign,
  IndexAssign,
  If,
  While,
  For,
  Return,
  Break,
  Continue,
  ExprStmt,
  Block
};

struct Stmt {
  explicit Stmt(StmtKind Kind, SourceLoc Loc) : Kind(Kind), Loc(Loc) {}
  /// Virtual so StmtPtr can destroy any node through the base class;
  /// anchored out of line in Ast.cpp.
  virtual ~Stmt();
  const StmtKind Kind;
  SourceLoc Loc;
};

using StmtPtr = std::unique_ptr<Stmt>;

struct BlockStmt : Stmt {
  BlockStmt(std::vector<StmtPtr> Body, SourceLoc Loc)
      : Stmt(StmtKind::Block, Loc), Body(std::move(Body)) {}
  std::vector<StmtPtr> Body;
  static bool classof(const Stmt *S) { return S->Kind == StmtKind::Block; }
};

struct VarDeclStmt : Stmt {
  VarDeclStmt(std::string Name, ExprPtr ArraySize, ExprPtr Init,
              SourceLoc Loc)
      : Stmt(StmtKind::VarDecl, Loc), Name(std::move(Name)),
        ArraySize(std::move(ArraySize)), Init(std::move(Init)) {}
  std::string Name;
  /// Non-null for "var a[size];" — the variable holds the array's base
  /// address, and the cells live in the enclosing frame (or globals).
  ExprPtr ArraySize;
  /// Optional initializer for scalars.
  ExprPtr Init;
  static bool classof(const Stmt *S) { return S->Kind == StmtKind::VarDecl; }
};

struct AssignStmt : Stmt {
  AssignStmt(std::string Name, ExprPtr Value, SourceLoc Loc)
      : Stmt(StmtKind::Assign, Loc), Name(std::move(Name)),
        Value(std::move(Value)) {}
  std::string Name;
  ExprPtr Value;
  static bool classof(const Stmt *S) { return S->Kind == StmtKind::Assign; }
};

struct IndexAssignStmt : Stmt {
  IndexAssignStmt(std::string Base, ExprPtr Index, ExprPtr Value,
                  SourceLoc Loc)
      : Stmt(StmtKind::IndexAssign, Loc), Base(std::move(Base)),
        Index(std::move(Index)), Value(std::move(Value)) {}
  std::string Base;
  ExprPtr Index;
  ExprPtr Value;
  static bool classof(const Stmt *S) {
    return S->Kind == StmtKind::IndexAssign;
  }
};

struct IfStmt : Stmt {
  IfStmt(ExprPtr Condition, StmtPtr Then, StmtPtr Else, SourceLoc Loc)
      : Stmt(StmtKind::If, Loc), Condition(std::move(Condition)),
        Then(std::move(Then)), Else(std::move(Else)) {}
  ExprPtr Condition;
  StmtPtr Then;
  StmtPtr Else; ///< may be null
  static bool classof(const Stmt *S) { return S->Kind == StmtKind::If; }
};

struct WhileStmt : Stmt {
  WhileStmt(ExprPtr Condition, StmtPtr Body, SourceLoc Loc)
      : Stmt(StmtKind::While, Loc), Condition(std::move(Condition)),
        Body(std::move(Body)) {}
  ExprPtr Condition;
  StmtPtr Body;
  static bool classof(const Stmt *S) { return S->Kind == StmtKind::While; }
};

struct ForStmt : Stmt {
  ForStmt(StmtPtr Init, ExprPtr Condition, StmtPtr Step, StmtPtr Body,
          SourceLoc Loc)
      : Stmt(StmtKind::For, Loc), Init(std::move(Init)),
        Condition(std::move(Condition)), Step(std::move(Step)),
        Body(std::move(Body)) {}
  StmtPtr Init;      ///< may be null
  ExprPtr Condition; ///< may be null (infinite loop)
  StmtPtr Step;      ///< may be null
  StmtPtr Body;
  static bool classof(const Stmt *S) { return S->Kind == StmtKind::For; }
};

struct ReturnStmt : Stmt {
  ReturnStmt(ExprPtr Value, SourceLoc Loc)
      : Stmt(StmtKind::Return, Loc), Value(std::move(Value)) {}
  ExprPtr Value; ///< may be null (returns 0)
  static bool classof(const Stmt *S) { return S->Kind == StmtKind::Return; }
};

struct BreakStmt : Stmt {
  explicit BreakStmt(SourceLoc Loc) : Stmt(StmtKind::Break, Loc) {}
  static bool classof(const Stmt *S) { return S->Kind == StmtKind::Break; }
};

struct ContinueStmt : Stmt {
  explicit ContinueStmt(SourceLoc Loc) : Stmt(StmtKind::Continue, Loc) {}
  static bool classof(const Stmt *S) {
    return S->Kind == StmtKind::Continue;
  }
};

struct ExprStmt : Stmt {
  ExprStmt(ExprPtr E, SourceLoc Loc)
      : Stmt(StmtKind::ExprStmt, Loc), E(std::move(E)) {}
  ExprPtr E;
  static bool classof(const Stmt *S) { return S->Kind == StmtKind::ExprStmt; }
};

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

struct FunctionDecl {
  std::string Name;
  std::vector<std::string> Params;
  std::unique_ptr<BlockStmt> Body;
  SourceLoc Loc;
};

struct GlobalDecl {
  std::string Name;
  /// Cell count for arrays; 1 for scalars.
  uint64_t ArraySize = 1;
  bool IsArray = false;
  int64_t InitValue = 0;
  SourceLoc Loc;
};

struct Module {
  std::vector<GlobalDecl> Globals;
  std::vector<std::unique_ptr<FunctionDecl>> Functions;
};

} // namespace isp

#endif // ISPROF_VM_AST_H
