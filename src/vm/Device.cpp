//===- vm/Device.cpp - External device model ----------------------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "vm/Device.h"

using namespace isp;

const std::deque<int64_t> ExternalDevice::EmptyTail;

ExternalDevice::Stream &ExternalDevice::stream(int64_t Fd) {
  Stream &S = Streams[Fd];
  if (!S.RngInitialized) {
    S.RngState = Seed ^ (static_cast<uint64_t>(Fd) * 0x9e3779b97f4a7c15ULL);
    S.RngInitialized = true;
  }
  return S;
}

void ExternalDevice::preload(int64_t Fd, std::vector<int64_t> Values) {
  Stream &S = stream(Fd);
  for (int64_t V : Values)
    S.Preloaded.push_back(V);
}

int64_t ExternalDevice::readValue(int64_t Fd) {
  Stream &S = stream(Fd);
  ++S.ReadCount;
  if (!S.Preloaded.empty()) {
    int64_t V = S.Preloaded.front();
    S.Preloaded.pop_front();
    return V;
  }
  // Deterministic per-descriptor stream via SplitMix64 steps; bounded to
  // keep guest arithmetic away from overflow.
  SplitMix64 SM(S.RngState);
  uint64_t Raw = SM.next();
  S.RngState = Raw;
  return static_cast<int64_t>(Raw % 1000000);
}

void ExternalDevice::writeValue(int64_t Fd, int64_t Value) {
  Stream &S = stream(Fd);
  ++S.WriteCount;
  S.Tail.push_back(Value);
  if (S.Tail.size() > TailLimit)
    S.Tail.pop_front();
}

uint64_t ExternalDevice::valuesRead(int64_t Fd) const {
  auto It = Streams.find(Fd);
  return It == Streams.end() ? 0 : It->second.ReadCount;
}

uint64_t ExternalDevice::valuesWritten(int64_t Fd) const {
  auto It = Streams.find(Fd);
  return It == Streams.end() ? 0 : It->second.WriteCount;
}

const std::deque<int64_t> &ExternalDevice::writtenTail(int64_t Fd) const {
  auto It = Streams.find(Fd);
  return It == Streams.end() ? EmptyTail : It->second.Tail;
}
