//===- vm/Optimizer.h - Bytecode peephole optimizer -------------*- C++ -*-===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A peephole optimizer over compiled guest bytecode: constant folding
/// of arithmetic/comparison/logic over literals, folding of ToBool and
/// conditional jumps on constants, jump threading, and compaction of
/// the resulting dead slots (with jump-target remapping).
///
/// The pass deliberately never touches memory instructions or
/// Op::BasicBlock markers, so each *thread's* event sequence — its
/// memory accesses, calls, and basic-block counts — is identical to the
/// unoptimized program's; only the interpreter's instruction count (and
/// hence native time) drops. For single-threaded programs the whole
/// event stream and therefore the profile is bit-identical (tested).
/// For multithreaded programs the per-thread streams are preserved but
/// their interleaving can shift (scheduler quanta are counted in
/// instructions), exactly as if the program ran under a different slice
/// length — synchronized guests still compute identical results.
///
//===----------------------------------------------------------------------===//

#ifndef ISPROF_VM_OPTIMIZER_H
#define ISPROF_VM_OPTIMIZER_H

#include "vm/Bytecode.h"

namespace isp {

struct OptimizerStats {
  unsigned ConstantsFolded = 0;
  unsigned JumpsThreaded = 0;
  unsigned BranchesResolved = 0;
  unsigned InstructionsRemoved = 0;
};

/// Optimizes one function in place.
OptimizerStats optimizeFunction(Function &F);

/// Optimizes every function of \p Prog in place; returns summed stats.
OptimizerStats optimizeProgram(Program &Prog);

} // namespace isp

#endif // ISPROF_VM_OPTIMIZER_H
