//===- vm/Optimizer.h - Bytecode peephole optimizer -------------*- C++ -*-===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A peephole optimizer over compiled guest bytecode: constant folding
/// of arithmetic/comparison/logic over literals, folding of ToBool and
/// conditional jumps on constants, jump threading, and compaction of
/// the resulting dead slots (with jump-target remapping) — plus a
/// *quiet-access* pass that marks provably redundant local accesses so
/// the VM can skip their instrumentation events.
///
/// The peephole passes never touch memory instructions or
/// Op::BasicBlock markers, so each *thread's* event sequence — its
/// memory accesses, calls, and basic-block counts — is identical to the
/// unoptimized program's; only the interpreter's instruction count (and
/// hence native time) drops. For multithreaded programs the per-thread
/// streams are preserved but their interleaving can shift (scheduler
/// quanta are counted in instructions), exactly as if the program ran
/// under a different slice length — synchronized guests still compute
/// identical results.
///
/// The quiet-access pass additionally suppresses *events* (never the
/// accesses themselves) that are no-ops for every tool: within one
/// straight-line window — broken by jump targets, unconditional jumps,
/// calls, builtins, spawns, and returns — a repeated read of an address
/// already read or written, or a repeated write of an address already
/// written, finds every per-address tool state (access timestamps,
/// write timestamps, definedness, locksets) already current, because
/// tool counters only advance at events the window-breaking
/// instructions (or the scheduler) produce. Windows span BasicBlock
/// markers and conditional fall-through edges: block costs accumulate
/// without a counter bump, and code after an untaken branch still
/// postdominates the window's earlier accesses in execution order. The
/// VM honors quiet marks only while no scheduler switch has interrupted
/// the window (Machine::WindowInterrupted), covering the one
/// interruption the static pass cannot see. Profiles are bit-identical
/// with or without the pass (tested); stream-level statistics (event
/// counts) legitimately drop.
///
/// Since the analysis layer landed, the pass covers *indirect* accesses
/// too: a window-local symbolic value numbering assigns each operand a
/// value number such that equal numbers imply equal runtime values
/// (straight-line code executes each instruction at most once per
/// window entry, so value numbers are genuine must-alias facts). A
/// LoadIndirect whose address value number was already touched — or a
/// StoreIndirect whose address was already written — in the same window
/// is marked quiet exactly like a direct access. Value numbers for
/// loaded cells are cached and must be dropped when an intervening
/// StoreIndirect may clobber the cell; the pass keeps them when the
/// store is provably confined to object storage, using either a
/// window-local shape fact (the base is this window's own alloc/alloca
/// result, or an immutable global array base) or the Andersen points-to
/// facts from src/analysis (PreciseBoundedBase). See DESIGN.md "Static
/// analysis" for the soundness argument.
///
//===----------------------------------------------------------------------===//

#ifndef ISPROF_VM_OPTIMIZER_H
#define ISPROF_VM_OPTIMIZER_H

#include "vm/Bytecode.h"

namespace isp {

struct OptimizerStats {
  unsigned ConstantsFolded = 0;
  unsigned JumpsThreaded = 0;
  unsigned BranchesResolved = 0;
  unsigned InstructionsRemoved = 0;
  /// Accesses whose instrumentation events are provably redundant
  /// within their straight-line window (the access still executes).
  /// Counts direct and indirect marks; the next field is the indirect
  /// subset.
  unsigned QuietAccessesMarked = 0;
  /// LoadIndirect/StoreIndirect instructions marked quiet (subset of
  /// QuietAccessesMarked) — the alias-analysis-driven extension.
  unsigned QuietIndirectMarked = 0;
  /// Variable-index LoadIndirect sites marked quiet by the
  /// interprocedural covered-read certificate (Range.h) — a subset of
  /// QuietIndirectMarked that the window-local value numbering cannot
  /// see (the proof spans loops and the whole program).
  unsigned RangeQuietMarked = 0;
};

/// Optimizes one function in place.
OptimizerStats optimizeFunction(Function &F);

/// Optimizes every function of \p Prog in place; returns summed stats.
OptimizerStats optimizeProgram(Program &Prog);

} // namespace isp

#endif // ISPROF_VM_OPTIMIZER_H
