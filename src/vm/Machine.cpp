//===- vm/Machine.cpp - Guest interpreter and scheduler -----------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "vm/Machine.h"

#include "obs/Obs.h"
#include "obs/TraceLog.h"
#include "support/Compiler.h"
#include "support/Format.h"
#include "vm/Compiler.h"

#include <cassert>

using namespace isp;

Machine::Machine(const Program &Prog, EventDispatcher *Events,
                 MachineOptions Opts)
    : Prog(Prog), Events(Events), Options(Opts), Device(Opts.Seed),
      GuestRng(Opts.Seed) {
  assert(Options.StackCells <= StackRegionStride &&
         "stack size exceeds the per-thread address stride");
#if ISP_DISPATCH_THREADED
  // DispatchMode::Auto takes the threaded loop whenever the build has
  // it; a Threaded request on a switch-only build degrades to the
  // switch loop (the driver warns — semantics are identical).
  UseThreaded = Options.Dispatch != DispatchMode::Switch;
#endif
  if (Options.BlockCompile) {
    BlockPlans.reserve(Prog.Functions.size());
    for (const Function &Fn : Prog.Functions)
      BlockPlans.push_back(compileFunctionBlocks(Fn, Prog.GlobalCells));
    for (const FunctionBlockPlans &P : BlockPlans)
      if (!P.Plans.empty())
        BlockCompileActive = true;
  }
}

void Machine::runtimeError(const std::string &Message) {
  if (!Failed) {
    Failed = true;
    Error = Message;
  }
}

//===----------------------------------------------------------------------===//
// Guest memory
//===----------------------------------------------------------------------===//

bool Machine::decodeAddress(Addr A, int64_t *&Cell) {
  // Regions are laid out Global < Heap < Stack, so a descending chain of
  // single compares resolves each one; stacks first — locals dominate
  // the access mix of typical guests.
  if (A >= StackRegionBase) {
    uint64_t Index = (A - StackRegionBase) / StackRegionStride;
    uint64_t Offset = (A - StackRegionBase) % StackRegionStride;
    if (Index < ThreadList.size() && Offset < Options.StackCells) {
      ThreadCtx &Owner = ThreadList[Index];
      if (Offset >= Owner.StackMemory.size())
        Owner.StackMemory.resize(Offset + 1, 0);
      Cell = &Owner.StackMemory[Offset];
      return true;
    }
  } else if (A >= HeapBase) {
    if (A < HeapBase + Heap.size()) {
      Cell = &Heap[A - HeapBase];
      return true;
    }
  } else if (A >= GlobalBase && A < GlobalBase + Globals.size()) {
    Cell = &Globals[A - GlobalBase];
    return true;
  }
  runtimeError(formatString("invalid memory access at address %llu",
                            static_cast<unsigned long long>(A)));
  return false;
}

// The fast path resolves an access to the running thread's own stack —
// locals and allocas, the bulk of the access mix — with one subtract and
// one compare. Anything else (heap, globals, another thread's stack, or
// an invalid address; the subtract wraps for all of them) takes the full
// region decode. EventRecord construction is guarded so uninstrumented runs
// skip the timestamp bump and the EventRecord build entirely.
ISP_ALWAYS_INLINE bool Machine::memRead(ThreadCtx &T, Addr A, int64_t &Value,
                                        bool Emit) {
  uint64_t Offset = A - T.StackBase;
  if (ISP_LIKELY(Offset < Options.StackCells)) {
    if (ISP_UNLIKELY(Offset >= T.StackMemory.size()))
      T.StackMemory.resize(Offset + 1, 0);
    Value = T.StackMemory[Offset];
  } else {
    int64_t *Cell = nullptr;
    if (!decodeAddress(A, Cell))
      return false;
    Value = *Cell;
  }
  ++Stats.MemReads;
  if (TraceActive && Emit)
    Events->enqueue(EventRecord::read(T.Id, now(), A));
  return true;
}

ISP_ALWAYS_INLINE bool Machine::memWrite(ThreadCtx &T, Addr A, int64_t Value,
                                         bool Emit) {
  uint64_t Offset = A - T.StackBase;
  if (ISP_LIKELY(Offset < Options.StackCells)) {
    if (ISP_UNLIKELY(Offset >= T.StackMemory.size()))
      T.StackMemory.resize(Offset + 1, 0);
    T.StackMemory[Offset] = Value;
  } else {
    int64_t *Cell = nullptr;
    if (!decodeAddress(A, Cell))
      return false;
    *Cell = Value;
  }
  ++Stats.MemWrites;
  if (TraceActive && Emit)
    Events->enqueue(EventRecord::write(T.Id, now(), A));
  return true;
}

bool Machine::rawRead(Addr A, int64_t &Value) {
  int64_t *Cell = nullptr;
  if (!decodeAddress(A, Cell))
    return false;
  Value = *Cell;
  return true;
}

bool Machine::rawWrite(Addr A, int64_t Value) {
  int64_t *Cell = nullptr;
  if (!decodeAddress(A, Cell))
    return false;
  *Cell = Value;
  return true;
}

//===----------------------------------------------------------------------===//
// Threads and frames
//===----------------------------------------------------------------------===//

Machine::ThreadCtx &Machine::newThread(ThreadId Parent, const Function *Fn) {
  ThreadId Id = static_cast<ThreadId>(ThreadList.size());
  ThreadList.emplace_back();
  ThreadCtx &T = ThreadList.back();
  T.Id = Id;
  T.Parent = Parent;
  T.StackBase = StackRegionBase + static_cast<Addr>(Id) * StackRegionStride;
  T.Sp = T.StackBase;
  T.EntryFn = Fn;
  ++Stats.ThreadsSpawned;
  return T;
}

ISP_ALWAYS_INLINE bool Machine::pushFrame(ThreadCtx &T, const Function *Fn,
                                          const int64_t *Args,
                                          size_t NumArgs) {
  Addr FrameBase = T.Sp;
  if (FrameBase + Fn->NumLocals >= T.StackBase + Options.StackCells) {
    runtimeError(formatString("guest stack overflow in thread %u calling "
                              "'%s'",
                              T.Id, Fn->Name.c_str()));
    return false;
  }
  // Spill the arguments into the parameter cells *before* the Call
  // event: the writes belong to the caller, and the callee's parameter
  // reads are then first-accesses, i.e. input of the callee.
  for (size_t I = 0; I != NumArgs; ++I)
    if (!memWrite(T, FrameBase + I, Args[I]))
      return false;
  Frame F;
  F.Fn = Fn;
  F.Pc = 0;
  F.FrameBase = FrameBase;
  F.OperandBase = T.Operands.size();
  F.SavedSp = T.Sp;
  T.Sp = FrameBase + Fn->NumLocals;
  if (TraceActive)
    Events->enqueue(EventRecord::call(T.Id, now(), Fn->Id));
  T.Frames.push_back(F);
  return true;
}

void Machine::finishThread(ThreadCtx &T, int64_t Result) {
  T.State = ThreadStateKind::Finished;
  T.Result = Result;
  emitEvent(EventRecord::threadEnd(T.Id, now()));
  if (T.Id == 0) {
    MainReturned = true;
    MainResult = Result;
  }
  wakeJoiners(T.Id);
}

void Machine::wakeJoiners(ThreadId Ended) {
  for (ThreadCtx &T : ThreadList)
    if (T.State == ThreadStateKind::BlockedJoin && T.WaitTid == Ended)
      T.State = ThreadStateKind::Runnable;
}

void Machine::wakeSemWaiters(SyncId Sem) {
  for (ThreadCtx &T : ThreadList)
    if (T.State == ThreadStateKind::BlockedSem && T.WaitSync == Sem)
      T.State = ThreadStateKind::Runnable;
}

//===----------------------------------------------------------------------===//
// Interpreter
//===----------------------------------------------------------------------===//

namespace {
inline int64_t popValue(std::vector<int64_t> &Operands) {
  assert(!Operands.empty() && "operand stack underflow");
  int64_t V = Operands.back();
  Operands.pop_back();
  return V;
}
} // namespace

bool Machine::handleBuiltin(ThreadCtx &T, Builtin B, unsigned NumArgs) {
  // Pop arguments (pushed left to right).
  int64_t Args[3] = {0, 0, 0};
  assert(NumArgs <= 3 && "builtins take at most three arguments");
  for (unsigned I = NumArgs; I > 0; --I)
    Args[I - 1] = popValue(T.Operands);

  auto block = [&](ThreadStateKind Kind) {
    // Re-push the arguments and retry this instruction when woken.
    for (unsigned I = 0; I != NumArgs; ++I)
      T.Operands.push_back(Args[I]);
    T.State = Kind;
    return false;
  };

  switch (B) {
  case Builtin::Print:
    Output += formatString("%lld\n", static_cast<long long>(Args[0]));
    T.Operands.push_back(Args[0]);
    return true;

  case Builtin::Alloc: {
    if (Args[0] < 0) {
      runtimeError("alloc() with negative size");
      return true;
    }
    if (HeapBase + HeapNext + static_cast<uint64_t>(Args[0]) >=
        StackRegionBase) {
      runtimeError("guest heap exhausted");
      return true;
    }
    Addr Base = HeapBase + HeapNext;
    HeapNext += static_cast<uint64_t>(Args[0]);
    Heap.resize(HeapNext, 0);
    Stats.HeapCellsAllocated += static_cast<uint64_t>(Args[0]);
    emitEvent(EventRecord::alloc(T.Id, now(), Base,
                           static_cast<uint64_t>(Args[0])));
    T.Operands.push_back(static_cast<int64_t>(Base));
    return true;
  }

  case Builtin::Free:
    emitEvent(EventRecord::free(T.Id, now(), static_cast<Addr>(Args[0])));
    T.Operands.push_back(0);
    return true;

  case Builtin::SysRead: {
    int64_t Fd = Args[0], Buf = Args[1], N = Args[2];
    if (N < 0) {
      runtimeError("sysread() with negative length");
      return true;
    }
    for (int64_t I = 0; I != N; ++I)
      if (!rawWrite(static_cast<Addr>(Buf + I), Device.readValue(Fd)))
        return true;
    if (N > 0)
      emitEvent(EventRecord::kernelWrite(T.Id, now(), static_cast<Addr>(Buf),
                                   static_cast<uint64_t>(N)));
    T.Operands.push_back(N);
    return true;
  }

  case Builtin::SysWrite: {
    int64_t Fd = Args[0], Buf = Args[1], N = Args[2];
    if (N < 0) {
      runtimeError("syswrite() with negative length");
      return true;
    }
    for (int64_t I = 0; I != N; ++I) {
      int64_t V = 0;
      if (!rawRead(static_cast<Addr>(Buf + I), V))
        return true;
      Device.writeValue(Fd, V);
    }
    if (N > 0)
      emitEvent(EventRecord::kernelRead(T.Id, now(), static_cast<Addr>(Buf),
                                  static_cast<uint64_t>(N)));
    T.Operands.push_back(N);
    return true;
  }

  case Builtin::SemCreate:
  case Builtin::LockCreate: {
    Semaphore S;
    S.IsLock = B == Builtin::LockCreate;
    S.Count = S.IsLock ? 1 : Args[0];
    Semaphores.push_back(S);
    T.Operands.push_back(static_cast<int64_t>(Semaphores.size() - 1));
    return true;
  }

  case Builtin::SemWait:
  case Builtin::LockAcquire: {
    int64_t Id = Args[0];
    if (Id < 0 || static_cast<size_t>(Id) >= Semaphores.size()) {
      runtimeError("sem_wait() on invalid semaphore id");
      return true;
    }
    if (Semaphores[Id].Count <= 0) {
      T.WaitSync = static_cast<SyncId>(Id);
      return block(ThreadStateKind::BlockedSem);
    }
    --Semaphores[Id].Count;
    emitEvent(EventRecord::syncAcquire(T.Id, now(), static_cast<SyncId>(Id),
                                 Semaphores[Id].IsLock));
    T.Operands.push_back(0);
    return true;
  }

  case Builtin::SemPost:
  case Builtin::LockRelease: {
    int64_t Id = Args[0];
    if (Id < 0 || static_cast<size_t>(Id) >= Semaphores.size()) {
      runtimeError("sem_post() on invalid semaphore id");
      return true;
    }
    ++Semaphores[Id].Count;
    emitEvent(EventRecord::syncRelease(T.Id, now(), static_cast<SyncId>(Id),
                                 Semaphores[Id].IsLock));
    wakeSemWaiters(static_cast<SyncId>(Id));
    T.Operands.push_back(0);
    return true;
  }

  case Builtin::Join: {
    int64_t Target = Args[0];
    if (Target < 0 || static_cast<size_t>(Target) >= ThreadList.size()) {
      runtimeError("join() on invalid thread id");
      return true;
    }
    ThreadCtx &Joinee = ThreadList[static_cast<size_t>(Target)];
    if (Joinee.State != ThreadStateKind::Finished) {
      T.WaitTid = static_cast<ThreadId>(Target);
      return block(ThreadStateKind::BlockedJoin);
    }
    emitEvent(EventRecord::threadJoin(T.Id, now(), Joinee.Id));
    T.Operands.push_back(Joinee.Result);
    return true;
  }

  case Builtin::Rand:
    T.Operands.push_back(
        Args[0] > 0
            ? static_cast<int64_t>(
                  GuestRng.nextBelow(static_cast<uint64_t>(Args[0])))
            : 0);
    return true;

  case Builtin::Yield:
    T.Operands.push_back(0);
    // Handled by the scheduler via the YieldRequested signal below; the
    // builtin itself completes normally.
    YieldRequested = true;
    return true;

  case Builtin::Load: {
    int64_t Value = 0;
    if (memRead(T, static_cast<Addr>(Args[0]), Value))
      T.Operands.push_back(Value);
    return true;
  }

  case Builtin::Store:
    memWrite(T, static_cast<Addr>(Args[0]), Args[1]);
    T.Operands.push_back(Args[1]);
    return true;

  case Builtin::ThreadId:
    T.Operands.push_back(T.Id);
    return true;
  }
  ISP_UNREACHABLE("unknown builtin");
}

// The fetch-execute loop lives in MachineInterp.inc, written once
// against the ISP_CASE/ISP_NEXT/ISP_RELOAD_FRAME macros and included
// here for each dispatch strategy the build supports.
#define ISP_INTERP_THREADED 0
#include "vm/MachineInterp.inc"
#undef ISP_INTERP_THREADED

#if ISP_DISPATCH_THREADED
#define ISP_INTERP_THREADED 1
#include "vm/MachineInterp.inc"
#undef ISP_INTERP_THREADED
#endif

bool Machine::runSlice(ThreadCtx &T) {
#if ISP_DISPATCH_THREADED
  if (ISP_LIKELY(UseThreaded))
    return runSliceThreaded(&T);
#endif
  return runSliceSwitch(&T);
}

uint64_t Machine::tryCompiledBlock(ThreadCtx &T, Frame &F, size_t InstrPc,
                                   uint64_t BudgetLeft) {
  const BlockPlan *Plan = BlockPlans[functionIndex(F.Fn)].planAt(InstrPc);
  if (Plan == nullptr)
    return 0;

  // --- Gates. Each bail-out means "the per-instruction path must run
  // this block" — either because it would do something the template
  // cannot express, or because it would fail with a diagnostic the
  // fast path does not carry. Gates must not mutate machine state.
  uint64_t Extra = Plan->instrCount() - 1;
  if (Extra > BudgetLeft)
    return 0; // run would straddle a scheduling point
  if (T.Operands.size() - F.OperandBase < Plan->NeedDepth)
    return 0; // malformed code; slow path asserts
  uint64_t FrameOff = F.FrameBase - T.StackBase;
  uint64_t TopOff = 0;
  if (Plan->MaxSlot >= 0) {
    TopOff = FrameOff + static_cast<uint64_t>(Plan->MaxSlot);
    if (TopOff >= Options.StackCells)
      return 0; // slow path reports the invalid access
  }
  uint64_t T0 = EventTime;
  if (TraceActive) {
    if (ISP_UNLIKELY(T.Id > Event::MaxInlineTid))
      return 0; // template tids are inline-only
    if (Plan->QuietSkips + Plan->DynQuietSkips != 0 &&
        ISP_UNLIKELY(WindowInterrupted))
      return 0; // slow path forces the quiet-marked events through
    // No early flush to make room: flush timing is part of the
    // byte-exact contract (the encoder resets per batch). The bound
    // covers the whole run — static template words plus at most one
    // buffered word per runtime-enqueued dynamic event — so no
    // mid-run enqueue can roll the batch either.
    if (!Events->runFits(Plan->Words.size() + Plan->NumDynEvents))
      return 0;
    if (!Events->runTimesCompatible(T0 + 1, T0 + Plan->EnqueueCount))
      return 0; // epoch boundary: the per-event path emits an escape
  }

  // --- Committed. The template's static events splice into the batch
  // segment by segment (the dispatcher patches tid, absolute times,
  // and frame base directly into the pending buffer in one pass);
  // dynamic accesses between segments go through the normal
  // memRead/memWrite enqueue at execution time, so the buffer fills in
  // exactly the slow path's order.
  if (Plan->MaxSlot >= 0 && T.StackMemory.size() <= TopOff)
    T.StackMemory.resize(TopOff + 1, 0); // grow-only, like the lazy path
  const BlockPlan::Segment *Seg = Plan->Segments.data();
  auto SpliceSeg = [&](const BlockPlan::Segment &S) {
    EventDispatcher::TemplateRun Run;
    Run.Words = Plan->Words.data() + S.WordBegin;
    Run.NumWords = S.WordEnd - S.WordBegin;
    Run.NumRecords = S.NumRecords;
    Run.InternalMerges = S.InternalMerges;
    Run.InternalBbFolds = S.InternalBbFolds;
    Run.EnqueueCount = S.Ticks;
    Run.LastMainOff = S.LastMainOff;
    Run.HasBlockHead = &S == Plan->Segments.data();
    Events->spliceTemplateRun(Run, T.Id, T0, F.FrameBase);
    EventTime += S.Ticks;
  };
  if (TraceActive)
    SpliceSeg(*Seg);

  // The run's operand-stack excursion is static (NeedDepth below entry,
  // MaxGrowth above), so one resize bounds the whole run and the loop
  // works a raw cursor — no per-push capacity check or size update.
  // The resize is committed state, but it only grows scratch space the
  // shrink below releases; zero-initialized cells are written before
  // any read (pushes precede pops at every depth).
  std::vector<int64_t> &Ops = T.Operands;
  const size_t EntryDepth = Ops.size();
  Ops.resize(EntryDepth + Plan->MaxGrowth);
  int64_t *Sp = Ops.data() + EntryDepth;
  int64_t *Stack =
      Plan->MaxSlot >= 0 ? T.StackMemory.data() + FrameOff : nullptr;
  int64_t *GlobalCells = Globals.data();
  const Instr *Code = F.Fn->Code.data();

  for (size_t Pc = InstrPc + 1, End = Plan->EndPc; Pc != End; ++Pc) {
    const Instr &I = Code[Pc];
    switch (I.Opcode) {
    case Op::Nop:
      break;
    case Op::BasicBlock:
      // Interior marker: its event was folded into the template and
      // its block tally lands in the bulk NumBlocks update below.
      break;
    case Op::PushConst:
      *Sp++ = I.A;
      break;
    case Op::Pop:
      --Sp;
      break;
    case Op::LoadLocal:
      *Sp++ = Stack[I.A];
      break;
    case Op::StoreLocal:
      Stack[I.A] = *--Sp;
      break;
    case Op::LoadGlobal:
      *Sp++ = GlobalCells[I.A - static_cast<int64_t>(GlobalBase)];
      break;
    case Op::StoreGlobal:
      GlobalCells[I.A - static_cast<int64_t>(GlobalBase)] = *--Sp;
      break;
// Same in-place rewrite as the interpreter's binary cases.
#define ISP_BLOCK_BINARY(OPCODE, EXPR)                                         \
  case Op::OPCODE: {                                                           \
    int64_t Rhs = *--Sp;                                                       \
    int64_t Lhs = Sp[-1];                                                      \
    (void)Lhs;                                                                 \
    (void)Rhs;                                                                 \
    Sp[-1] = (EXPR);                                                           \
    break;                                                                     \
  }
      ISP_BLOCK_BINARY(Add, Lhs + Rhs)
      ISP_BLOCK_BINARY(Sub, Lhs - Rhs)
      ISP_BLOCK_BINARY(Mul, Lhs * Rhs)
      ISP_BLOCK_BINARY(Lt, Lhs < Rhs ? 1 : 0)
      ISP_BLOCK_BINARY(Le, Lhs <= Rhs ? 1 : 0)
      ISP_BLOCK_BINARY(Gt, Lhs > Rhs ? 1 : 0)
      ISP_BLOCK_BINARY(Ge, Lhs >= Rhs ? 1 : 0)
      ISP_BLOCK_BINARY(Eq, Lhs == Rhs ? 1 : 0)
      ISP_BLOCK_BINARY(Ne, Lhs != Rhs ? 1 : 0)
#undef ISP_BLOCK_BINARY
    case Op::Neg:
      Sp[-1] = -Sp[-1];
      break;
    case Op::Not:
      Sp[-1] = Sp[-1] == 0 ? 1 : 0;
      break;
    case Op::ToBool:
      Sp[-1] = Sp[-1] != 0 ? 1 : 0;
      break;
    case Op::Div: {
      int64_t Rhs = *--Sp;
      if (ISP_UNLIKELY(Rhs == 0)) {
        runtimeError("division by zero");
        return compiledBlockFail(T, F, InstrPc, Pc, Sp);
      }
      Sp[-1] /= Rhs;
      break;
    }
    case Op::Mod: {
      int64_t Rhs = *--Sp;
      if (ISP_UNLIKELY(Rhs == 0)) {
        runtimeError("modulo by zero");
        return compiledBlockFail(T, F, InstrPc, Pc, Sp);
      }
      Sp[-1] %= Rhs;
      break;
    }
    case Op::LoadIndirect: {
      int64_t Index = *--Sp;
      int64_t Base = *--Sp;
      int64_t Value = 0;
      bool Emit = noteQuietAccess(I.B);
      if (!Emit)
        ++Stats.QuietIndirectSuppressed;
      if (ISP_UNLIKELY(!memRead(T, static_cast<Addr>(Base + Index), Value,
                                Emit)))
        return compiledBlockFail(T, F, InstrPc, Pc, Sp);
      *Sp++ = Value;
      if (TraceActive && Emit)
        SpliceSeg(*++Seg);
      // The access may have grown this thread's stack vector.
      if (Plan->MaxSlot >= 0)
        Stack = T.StackMemory.data() + FrameOff;
      break;
    }
    case Op::StoreIndirect: {
      int64_t Value = *--Sp;
      int64_t Index = *--Sp;
      int64_t Base = *--Sp;
      bool Emit = noteQuietAccess(I.B);
      if (!Emit)
        ++Stats.QuietIndirectSuppressed;
      if (ISP_UNLIKELY(!memWrite(T, static_cast<Addr>(Base + Index), Value,
                                 Emit)))
        return compiledBlockFail(T, F, InstrPc, Pc, Sp);
      if (TraceActive && Emit)
        SpliceSeg(*++Seg);
      // The access may have grown this thread's stack vector.
      if (Plan->MaxSlot >= 0)
        Stack = T.StackMemory.data() + FrameOff;
      break;
    }
    default:
      ISP_UNREACHABLE("ineligible opcode inside a compiled block");
    }
  }
  assert(Sp == Ops.data() + static_cast<int64_t>(EntryDepth) +
                   Plan->NetEffect &&
         "static stack effect must match the executed run");
  Ops.resize(static_cast<size_t>(static_cast<int64_t>(EntryDepth) +
                                 Plan->NetEffect));

  Stats.BasicBlocks += Plan->NumBlocks;
  Stats.MemReads += Plan->Reads;
  Stats.MemWrites += Plan->Writes;
  if (TraceActive)
    Stats.QuietEventsSuppressed += Plan->QuietSkips;
  ++Stats.CompiledBlockRuns;
  Stats.CompiledBlockInstrs += Plan->instrCount();
  F.Pc = Plan->EndPc;
  return Extra;
}

uint64_t Machine::compiledBlockFail(ThreadCtx &T, Frame &F, size_t InstrPc,
                                    size_t FailPc, int64_t *Sp) {
  // The machine has already failed with the slow path's diagnostic;
  // events and time are correct as-is (only segments preceding the
  // failing instruction were spliced, and the static instructions they
  // cover all executed). Retroactively account the executed prefix
  // that tryCompiledBlock's bulk success-path tallies would have
  // covered -- dynamic accesses self-account through memRead/memWrite
  // -- and hand the covered quotient back, counting the failing
  // instruction, exactly as the slow path's dispatch preamble would.
  const Instr *Code = F.Fn->Code.data();
  for (size_t P = InstrPc; P != FailPc; ++P) {
    const Instr &J = Code[P];
    switch (J.Opcode) {
    case Op::BasicBlock:
      ++Stats.BasicBlocks;
      break;
    case Op::LoadLocal:
    case Op::LoadGlobal:
      ++Stats.MemReads;
      if (J.B != 0 && TraceActive)
        ++Stats.QuietEventsSuppressed;
      break;
    case Op::StoreLocal:
    case Op::StoreGlobal:
      ++Stats.MemWrites;
      if (J.B != 0 && TraceActive)
        ++Stats.QuietEventsSuppressed;
      break;
    default:
      break;
    }
  }
  ++Stats.CompiledBlockRuns;
  Stats.CompiledBlockInstrs += FailPc - InstrPc;
  T.Operands.resize(static_cast<size_t>(Sp - T.Operands.data()));
  F.Pc = FailPc + 1;
  return FailPc - InstrPc;
}

RunResult Machine::run() {
  RunResult Result;

  // Load the program image.
  Globals.resize(Prog.GlobalCells, 0);
  for (const GlobalInit &Init : Prog.GlobalInits) {
    assert(Init.Address >= GlobalBase &&
           Init.Address < GlobalBase + Globals.size());
    Globals[Init.Address - GlobalBase] = Init.Value;
  }

  if (Events)
    Events->start(&Prog.Symbols);
  TraceActive = tracing();

  newThread(/*Parent=*/0, &Prog.Functions[Prog.EntryIndex]);

  // Fair round-robin serializing scheduler.
  size_t Cursor = 0;
  ThreadId LastRunning = 0;
  bool HaveLastRunning = false;
  while (!Failed) {
    // Find the next runnable thread at or after the cursor.
    size_t Live = 0;
    ThreadCtx *Next = nullptr;
    for (size_t Probe = 0; Probe != ThreadList.size(); ++Probe) {
      size_t Index = (Cursor + Probe) % ThreadList.size();
      ThreadCtx &T = ThreadList[Index];
      if (T.State == ThreadStateKind::Finished)
        continue;
      ++Live;
      if (!Next && T.State == ThreadStateKind::Runnable) {
        Next = &T;
        Cursor = (Index + 1) % ThreadList.size();
      }
    }
    if (Live == 0)
      break;
    if (!Next) {
      runtimeError("deadlock: all live guest threads are blocked");
      break;
    }

    ThreadCtx &T = *Next;
    if (HaveLastRunning && LastRunning != T.Id) {
      ++Stats.ThreadSwitches;
      emitEvent({EventKind::ThreadSwitch, T.Id, now(), T.Id, 0});
      // The incoming thread may resume mid-window; suspend quiet marks
      // until it passes a window-breaking instruction.
      WindowInterrupted = true;
    }
    LastRunning = T.Id;
    HaveLastRunning = true;

    if (!T.Started) {
      T.Started = true;
      if (ISP_UNLIKELY(obs::tracingEnabled())) {
        obs::TraceLog::get().setLaneName(static_cast<obs::LaneId>(T.Id),
                                         "guest thread " +
                                             std::to_string(T.Id));
        obs::TraceLog::get().instant(static_cast<obs::LaneId>(T.Id),
                                     "thread_start", "guest", obs::nowNs());
      }
      emitEvent(EventRecord::threadStart(T.Id, now(), T.Parent));
      // Spawn arguments were already written into the entry frame cells
      // by the parent; main has none.
      if (!pushFrame(T, T.EntryFn, /*Args=*/nullptr, /*NumArgs=*/0))
        break;
    }
    if (T.State == ThreadStateKind::Runnable && !T.Frames.empty()) {
      if (ISP_UNLIKELY(obs::tracingEnabled())) {
        // Name the slice after the function on top at slice entry (the
        // slice may return out of or call into other frames mid-way).
        std::string SliceName = T.Frames.back().Fn->Name;
        uint64_t SliceStart = obs::nowNs();
        runSlice(T);
        obs::TraceLog::get().completeSpan(static_cast<obs::LaneId>(T.Id),
                                          SliceName, "guest", SliceStart,
                                          obs::nowNs());
      } else {
        runSlice(T);
      }
    }
  }

  // Account the guest footprint before tearing anything down.
  uint64_t GuestCells = Globals.size() + Heap.size();
  for (const ThreadCtx &T : ThreadList)
    GuestCells += T.StackMemory.size();
  Stats.GuestMemoryBytes = GuestCells * sizeof(int64_t);

  // Fold the run's tallies into the process-wide registry (the per-run
  // RunStats copy in Result is unaffected and stays the API of record
  // for single runs; the registry aggregates across runs).
  if (ISP_UNLIKELY(obs::statsEnabled())) {
    obs::Registry &R = obs::Registry::get();
    R.counter("machine.instructions").add(Stats.Instructions);
    R.counter("machine.basic_blocks").add(Stats.BasicBlocks);
    R.counter("machine.mem_reads").add(Stats.MemReads);
    R.counter("machine.mem_writes").add(Stats.MemWrites);
    R.counter("machine.threads_spawned").add(Stats.ThreadsSpawned);
    R.counter("machine.thread_switches").add(Stats.ThreadSwitches);
    R.counter("machine.heap_cells_allocated").add(Stats.HeapCellsAllocated);
    R.counter("machine.quiet_suppressed").add(Stats.QuietEventsSuppressed);
    R.counter("machine.quiet_window_aborts").add(Stats.QuietWindowAborts);
    R.counter("machine.quiet_indirect_suppressed")
        .add(Stats.QuietIndirectSuppressed);
    R.counter("machine.compiled_block_runs").add(Stats.CompiledBlockRuns);
    R.counter("machine.compiled_block_instrs").add(Stats.CompiledBlockInstrs);
    R.gauge("machine.guest_memory_bytes").noteMax(Stats.GuestMemoryBytes);
  }

  if (Events)
    Events->finish();

  Result.Ok = !Failed;
  Result.Error = Error;
  Result.ExitCode = MainResult;
  Result.Output = std::move(Output);
  Result.Stats = Stats;
  return Result;
}

RunResult isp::compileAndRun(const std::string &Source,
                             EventDispatcher *Events, MachineOptions Opts) {
  DiagnosticEngine Diags;
  std::optional<Program> Prog = compileProgram(Source, Diags);
  if (!Prog) {
    RunResult Result;
    Result.Ok = false;
    Result.Error = "compile error:\n" + Diags.render();
    return Result;
  }
  Machine M(*Prog, Events, Opts);
  return M.run();
}
