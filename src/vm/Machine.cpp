//===- vm/Machine.cpp - Guest interpreter and scheduler -----------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "vm/Machine.h"

#include "obs/Obs.h"
#include "obs/TraceLog.h"
#include "support/Compiler.h"
#include "support/Format.h"
#include "vm/Compiler.h"

#include <cassert>

using namespace isp;

Machine::Machine(const Program &Prog, EventDispatcher *Events,
                 MachineOptions Opts)
    : Prog(Prog), Events(Events), Options(Opts), Device(Opts.Seed),
      GuestRng(Opts.Seed) {
  assert(Options.StackCells <= StackRegionStride &&
         "stack size exceeds the per-thread address stride");
}

void Machine::runtimeError(const std::string &Message) {
  if (!Failed) {
    Failed = true;
    Error = Message;
  }
}

//===----------------------------------------------------------------------===//
// Guest memory
//===----------------------------------------------------------------------===//

bool Machine::decodeAddress(Addr A, int64_t *&Cell) {
  // Regions are laid out Global < Heap < Stack, so a descending chain of
  // single compares resolves each one; stacks first — locals dominate
  // the access mix of typical guests.
  if (A >= StackRegionBase) {
    uint64_t Index = (A - StackRegionBase) / StackRegionStride;
    uint64_t Offset = (A - StackRegionBase) % StackRegionStride;
    if (Index < ThreadList.size() && Offset < Options.StackCells) {
      ThreadCtx &Owner = ThreadList[Index];
      if (Offset >= Owner.StackMemory.size())
        Owner.StackMemory.resize(Offset + 1, 0);
      Cell = &Owner.StackMemory[Offset];
      return true;
    }
  } else if (A >= HeapBase) {
    if (A < HeapBase + Heap.size()) {
      Cell = &Heap[A - HeapBase];
      return true;
    }
  } else if (A >= GlobalBase && A < GlobalBase + Globals.size()) {
    Cell = &Globals[A - GlobalBase];
    return true;
  }
  runtimeError(formatString("invalid memory access at address %llu",
                            static_cast<unsigned long long>(A)));
  return false;
}

// The fast path resolves an access to the running thread's own stack —
// locals and allocas, the bulk of the access mix — with one subtract and
// one compare. Anything else (heap, globals, another thread's stack, or
// an invalid address; the subtract wraps for all of them) takes the full
// region decode. Event construction is guarded so uninstrumented runs
// skip the timestamp bump and the Event build entirely.
ISP_ALWAYS_INLINE bool Machine::memRead(ThreadCtx &T, Addr A, int64_t &Value,
                                        bool Emit) {
  uint64_t Offset = A - T.StackBase;
  if (ISP_LIKELY(Offset < Options.StackCells)) {
    if (ISP_UNLIKELY(Offset >= T.StackMemory.size()))
      T.StackMemory.resize(Offset + 1, 0);
    Value = T.StackMemory[Offset];
  } else {
    int64_t *Cell = nullptr;
    if (!decodeAddress(A, Cell))
      return false;
    Value = *Cell;
  }
  ++Stats.MemReads;
  if (TraceActive && Emit)
    Events->enqueue(Event::read(T.Id, now(), A));
  return true;
}

ISP_ALWAYS_INLINE bool Machine::memWrite(ThreadCtx &T, Addr A, int64_t Value,
                                         bool Emit) {
  uint64_t Offset = A - T.StackBase;
  if (ISP_LIKELY(Offset < Options.StackCells)) {
    if (ISP_UNLIKELY(Offset >= T.StackMemory.size()))
      T.StackMemory.resize(Offset + 1, 0);
    T.StackMemory[Offset] = Value;
  } else {
    int64_t *Cell = nullptr;
    if (!decodeAddress(A, Cell))
      return false;
    *Cell = Value;
  }
  ++Stats.MemWrites;
  if (TraceActive && Emit)
    Events->enqueue(Event::write(T.Id, now(), A));
  return true;
}

bool Machine::rawRead(Addr A, int64_t &Value) {
  int64_t *Cell = nullptr;
  if (!decodeAddress(A, Cell))
    return false;
  Value = *Cell;
  return true;
}

bool Machine::rawWrite(Addr A, int64_t Value) {
  int64_t *Cell = nullptr;
  if (!decodeAddress(A, Cell))
    return false;
  *Cell = Value;
  return true;
}

//===----------------------------------------------------------------------===//
// Threads and frames
//===----------------------------------------------------------------------===//

Machine::ThreadCtx &Machine::newThread(ThreadId Parent, const Function *Fn) {
  ThreadId Id = static_cast<ThreadId>(ThreadList.size());
  ThreadList.emplace_back();
  ThreadCtx &T = ThreadList.back();
  T.Id = Id;
  T.Parent = Parent;
  T.StackBase = StackRegionBase + static_cast<Addr>(Id) * StackRegionStride;
  T.Sp = T.StackBase;
  T.EntryFn = Fn;
  ++Stats.ThreadsSpawned;
  return T;
}

ISP_ALWAYS_INLINE bool Machine::pushFrame(ThreadCtx &T, const Function *Fn,
                                          const int64_t *Args,
                                          size_t NumArgs) {
  Addr FrameBase = T.Sp;
  if (FrameBase + Fn->NumLocals >= T.StackBase + Options.StackCells) {
    runtimeError(formatString("guest stack overflow in thread %u calling "
                              "'%s'",
                              T.Id, Fn->Name.c_str()));
    return false;
  }
  // Spill the arguments into the parameter cells *before* the Call
  // event: the writes belong to the caller, and the callee's parameter
  // reads are then first-accesses, i.e. input of the callee.
  for (size_t I = 0; I != NumArgs; ++I)
    if (!memWrite(T, FrameBase + I, Args[I]))
      return false;
  Frame F;
  F.Fn = Fn;
  F.Pc = 0;
  F.FrameBase = FrameBase;
  F.OperandBase = T.Operands.size();
  F.SavedSp = T.Sp;
  T.Sp = FrameBase + Fn->NumLocals;
  if (TraceActive)
    Events->enqueue(Event::call(T.Id, now(), Fn->Id));
  T.Frames.push_back(F);
  return true;
}

void Machine::finishThread(ThreadCtx &T, int64_t Result) {
  T.State = ThreadStateKind::Finished;
  T.Result = Result;
  emitEvent(Event::threadEnd(T.Id, now()));
  if (T.Id == 0) {
    MainReturned = true;
    MainResult = Result;
  }
  wakeJoiners(T.Id);
}

void Machine::wakeJoiners(ThreadId Ended) {
  for (ThreadCtx &T : ThreadList)
    if (T.State == ThreadStateKind::BlockedJoin && T.WaitTid == Ended)
      T.State = ThreadStateKind::Runnable;
}

void Machine::wakeSemWaiters(SyncId Sem) {
  for (ThreadCtx &T : ThreadList)
    if (T.State == ThreadStateKind::BlockedSem && T.WaitSync == Sem)
      T.State = ThreadStateKind::Runnable;
}

//===----------------------------------------------------------------------===//
// Interpreter
//===----------------------------------------------------------------------===//

namespace {
inline int64_t popValue(std::vector<int64_t> &Operands) {
  assert(!Operands.empty() && "operand stack underflow");
  int64_t V = Operands.back();
  Operands.pop_back();
  return V;
}
} // namespace

bool Machine::handleBuiltin(ThreadCtx &T, Builtin B, unsigned NumArgs) {
  // Pop arguments (pushed left to right).
  int64_t Args[3] = {0, 0, 0};
  assert(NumArgs <= 3 && "builtins take at most three arguments");
  for (unsigned I = NumArgs; I > 0; --I)
    Args[I - 1] = popValue(T.Operands);

  auto block = [&](ThreadStateKind Kind) {
    // Re-push the arguments and retry this instruction when woken.
    for (unsigned I = 0; I != NumArgs; ++I)
      T.Operands.push_back(Args[I]);
    T.State = Kind;
    return false;
  };

  switch (B) {
  case Builtin::Print:
    Output += formatString("%lld\n", static_cast<long long>(Args[0]));
    T.Operands.push_back(Args[0]);
    return true;

  case Builtin::Alloc: {
    if (Args[0] < 0) {
      runtimeError("alloc() with negative size");
      return true;
    }
    if (HeapBase + HeapNext + static_cast<uint64_t>(Args[0]) >=
        StackRegionBase) {
      runtimeError("guest heap exhausted");
      return true;
    }
    Addr Base = HeapBase + HeapNext;
    HeapNext += static_cast<uint64_t>(Args[0]);
    Heap.resize(HeapNext, 0);
    Stats.HeapCellsAllocated += static_cast<uint64_t>(Args[0]);
    emitEvent(Event::alloc(T.Id, now(), Base,
                           static_cast<uint64_t>(Args[0])));
    T.Operands.push_back(static_cast<int64_t>(Base));
    return true;
  }

  case Builtin::Free:
    emitEvent(Event::free(T.Id, now(), static_cast<Addr>(Args[0])));
    T.Operands.push_back(0);
    return true;

  case Builtin::SysRead: {
    int64_t Fd = Args[0], Buf = Args[1], N = Args[2];
    if (N < 0) {
      runtimeError("sysread() with negative length");
      return true;
    }
    for (int64_t I = 0; I != N; ++I)
      if (!rawWrite(static_cast<Addr>(Buf + I), Device.readValue(Fd)))
        return true;
    if (N > 0)
      emitEvent(Event::kernelWrite(T.Id, now(), static_cast<Addr>(Buf),
                                   static_cast<uint64_t>(N)));
    T.Operands.push_back(N);
    return true;
  }

  case Builtin::SysWrite: {
    int64_t Fd = Args[0], Buf = Args[1], N = Args[2];
    if (N < 0) {
      runtimeError("syswrite() with negative length");
      return true;
    }
    for (int64_t I = 0; I != N; ++I) {
      int64_t V = 0;
      if (!rawRead(static_cast<Addr>(Buf + I), V))
        return true;
      Device.writeValue(Fd, V);
    }
    if (N > 0)
      emitEvent(Event::kernelRead(T.Id, now(), static_cast<Addr>(Buf),
                                  static_cast<uint64_t>(N)));
    T.Operands.push_back(N);
    return true;
  }

  case Builtin::SemCreate:
  case Builtin::LockCreate: {
    Semaphore S;
    S.IsLock = B == Builtin::LockCreate;
    S.Count = S.IsLock ? 1 : Args[0];
    Semaphores.push_back(S);
    T.Operands.push_back(static_cast<int64_t>(Semaphores.size() - 1));
    return true;
  }

  case Builtin::SemWait:
  case Builtin::LockAcquire: {
    int64_t Id = Args[0];
    if (Id < 0 || static_cast<size_t>(Id) >= Semaphores.size()) {
      runtimeError("sem_wait() on invalid semaphore id");
      return true;
    }
    if (Semaphores[Id].Count <= 0) {
      T.WaitSync = static_cast<SyncId>(Id);
      return block(ThreadStateKind::BlockedSem);
    }
    --Semaphores[Id].Count;
    emitEvent(Event::syncAcquire(T.Id, now(), static_cast<SyncId>(Id),
                                 Semaphores[Id].IsLock));
    T.Operands.push_back(0);
    return true;
  }

  case Builtin::SemPost:
  case Builtin::LockRelease: {
    int64_t Id = Args[0];
    if (Id < 0 || static_cast<size_t>(Id) >= Semaphores.size()) {
      runtimeError("sem_post() on invalid semaphore id");
      return true;
    }
    ++Semaphores[Id].Count;
    emitEvent(Event::syncRelease(T.Id, now(), static_cast<SyncId>(Id),
                                 Semaphores[Id].IsLock));
    wakeSemWaiters(static_cast<SyncId>(Id));
    T.Operands.push_back(0);
    return true;
  }

  case Builtin::Join: {
    int64_t Target = Args[0];
    if (Target < 0 || static_cast<size_t>(Target) >= ThreadList.size()) {
      runtimeError("join() on invalid thread id");
      return true;
    }
    ThreadCtx &Joinee = ThreadList[static_cast<size_t>(Target)];
    if (Joinee.State != ThreadStateKind::Finished) {
      T.WaitTid = static_cast<ThreadId>(Target);
      return block(ThreadStateKind::BlockedJoin);
    }
    emitEvent(Event::threadJoin(T.Id, now(), Joinee.Id));
    T.Operands.push_back(Joinee.Result);
    return true;
  }

  case Builtin::Rand:
    T.Operands.push_back(
        Args[0] > 0
            ? static_cast<int64_t>(
                  GuestRng.nextBelow(static_cast<uint64_t>(Args[0])))
            : 0);
    return true;

  case Builtin::Yield:
    T.Operands.push_back(0);
    // Handled by the scheduler via the YieldRequested signal below; the
    // builtin itself completes normally.
    YieldRequested = true;
    return true;

  case Builtin::Load: {
    int64_t Value = 0;
    if (memRead(T, static_cast<Addr>(Args[0]), Value))
      T.Operands.push_back(Value);
    return true;
  }

  case Builtin::Store:
    memWrite(T, static_cast<Addr>(Args[0]), Args[1]);
    T.Operands.push_back(Args[1]);
    return true;

  case Builtin::ThreadId:
    T.Operands.push_back(T.Id);
    return true;
  }
  ISP_UNREACHABLE("unknown builtin");
}

bool Machine::runSlice(ThreadCtx &T) {
  YieldRequested = false;
  // Hoist the global instruction-budget check out of the per-instruction
  // loop: cap this slice at the remaining budget and only report the
  // overrun when the capped slice is exhausted.
  uint64_t Budget = Options.SliceLength;
  uint64_t Remaining = Options.MaxInstructions > Stats.Instructions
                           ? Options.MaxInstructions - Stats.Instructions
                           : 0;
  bool Capped = Remaining < Budget;
  if (Capped)
    Budget = Remaining;

  // Executed instructions land in Stats on every exit path (the budget
  // math above reads Stats, so it must be current between slices).
  struct InstrTally {
    uint64_t &Total;
    uint64_t Done = 0;
    ~InstrTally() { Total += Done; }
  } Tally{Stats.Instructions};

  // The fetch-execute loop is fused into the slice loop: the current
  // frame stays cached in a register across instructions (the opcodes
  // that push or pop frames refresh it), and only the opcodes that can
  // block, fail, or reschedule test the machine state. Every error path
  // exits with `return !Failed`, which also covers the non-error exits
  // (thread finished, builtin blocked).
  Frame *F = &T.Frames.back();
  while (Tally.Done != Budget) {
    assert(F == &T.Frames.back() && "cached frame out of date");
    assert(F->Pc < F->Fn->Code.size() && "pc out of range");
    const Instr &I = F->Fn->Code[F->Pc];
    size_t InstrPc = F->Pc;
    ++F->Pc;
    ++Tally.Done;

    switch (I.Opcode) {
    case Op::Nop:
      break;

    case Op::BasicBlock:
      ++Stats.BasicBlocks;
      if (TraceActive)
        Events->enqueue(Event::basicBlock(T.Id, now()));
      break;

    case Op::PushConst:
      T.Operands.push_back(I.A);
      break;

    case Op::Pop:
      popValue(T.Operands);
      break;

    case Op::LoadLocal: {
      int64_t Value = 0;
      if (!memRead(T, F->FrameBase + static_cast<Addr>(I.A), Value,
                   /*Emit=*/noteQuietAccess(I.B)))
        return !Failed;
      T.Operands.push_back(Value);
      break;
    }

    case Op::StoreLocal:
      if (!memWrite(T, F->FrameBase + static_cast<Addr>(I.A),
                    popValue(T.Operands),
                    /*Emit=*/noteQuietAccess(I.B)))
        return !Failed;
      break;

    case Op::LoadGlobal: {
      int64_t Value = 0;
      if (!memRead(T, static_cast<Addr>(I.A), Value,
                   /*Emit=*/noteQuietAccess(I.B)))
        return !Failed;
      T.Operands.push_back(Value);
      break;
    }

    case Op::StoreGlobal:
      if (!memWrite(T, static_cast<Addr>(I.A), popValue(T.Operands),
                    /*Emit=*/noteQuietAccess(I.B)))
        return !Failed;
      break;

    case Op::LoadIndirect: {
      int64_t Index = popValue(T.Operands);
      int64_t Base = popValue(T.Operands);
      int64_t Value = 0;
      bool Emit = noteQuietAccess(I.B);
      if (!Emit)
        ++Stats.QuietIndirectSuppressed;
      if (!memRead(T, static_cast<Addr>(Base + Index), Value, Emit))
        return !Failed;
      T.Operands.push_back(Value);
      break;
    }

    case Op::StoreIndirect: {
      int64_t Value = popValue(T.Operands);
      int64_t Index = popValue(T.Operands);
      int64_t Base = popValue(T.Operands);
      bool Emit = noteQuietAccess(I.B);
      if (!Emit)
        ++Stats.QuietIndirectSuppressed;
      if (!memWrite(T, static_cast<Addr>(Base + Index), Value, Emit))
        return !Failed;
      break;
    }

    case Op::AllocaArray: {
      int64_t N = popValue(T.Operands);
      if (N < 0) {
        runtimeError("negative local array size");
        return !Failed;
      }
      Addr Base = T.Sp;
      if (Base + static_cast<Addr>(N) >= T.StackBase + Options.StackCells) {
        runtimeError(formatString("guest stack overflow (local array of "
                                  "%lld cells) in thread %u",
                                  static_cast<long long>(N), T.Id));
        return !Failed;
      }
      T.Sp += static_cast<Addr>(N);
      T.Operands.push_back(static_cast<int64_t>(Base));
      break;
    }

// Pop the right operand, rewrite the left in place: one size update
// instead of three on the operand vector.
#define BINARY_CASE(OPCODE, EXPR)                                             \
  case Op::OPCODE: {                                                          \
    int64_t Rhs = popValue(T.Operands);                                       \
    assert(!T.Operands.empty() && "operand stack underflow");                 \
    int64_t &Slot = T.Operands.back();                                        \
    int64_t Lhs = Slot;                                                       \
    (void)Lhs;                                                                \
    (void)Rhs;                                                                \
    Slot = (EXPR);                                                            \
    break;                                                                    \
  }

      BINARY_CASE(Add, Lhs + Rhs)
      BINARY_CASE(Sub, Lhs - Rhs)
      BINARY_CASE(Mul, Lhs * Rhs)
      BINARY_CASE(Lt, Lhs < Rhs ? 1 : 0)
      BINARY_CASE(Le, Lhs <= Rhs ? 1 : 0)
      BINARY_CASE(Gt, Lhs > Rhs ? 1 : 0)
      BINARY_CASE(Ge, Lhs >= Rhs ? 1 : 0)
      BINARY_CASE(Eq, Lhs == Rhs ? 1 : 0)
      BINARY_CASE(Ne, Lhs != Rhs ? 1 : 0)
#undef BINARY_CASE

    case Op::Div: {
      int64_t Rhs = popValue(T.Operands);
      if (Rhs == 0) {
        runtimeError("division by zero");
        return !Failed;
      }
      T.Operands.back() /= Rhs;
      break;
    }

    case Op::Mod: {
      int64_t Rhs = popValue(T.Operands);
      if (Rhs == 0) {
        runtimeError("modulo by zero");
        return !Failed;
      }
      T.Operands.back() %= Rhs;
      break;
    }

    case Op::Neg:
      T.Operands.back() = -T.Operands.back();
      break;

    case Op::Not:
      T.Operands.back() = T.Operands.back() == 0 ? 1 : 0;
      break;

    case Op::ToBool:
      T.Operands.back() = T.Operands.back() != 0 ? 1 : 0;
      break;

    case Op::Jump:
      F->Pc = static_cast<size_t>(I.A);
      // Jump, Call, CallBuiltin, Spawn, and Return are the optimizer's
      // window-breaking instructions: a fresh quiet window starts after
      // each, so any earlier mid-window interruption is behind us.
      WindowInterrupted = false;
      break;

    case Op::JumpIfFalse:
      if (popValue(T.Operands) == 0)
        F->Pc = static_cast<size_t>(I.A);
      break;

    case Op::JumpIfTrue:
      if (popValue(T.Operands) != 0)
        F->Pc = static_cast<size_t>(I.A);
      break;

    case Op::Call: {
      const Function &Callee = Prog.Functions[static_cast<size_t>(I.A)];
      size_t NumArgs = static_cast<size_t>(I.B);
      ArgScratch.resize(NumArgs);
      for (size_t J = NumArgs; J > 0; --J)
        ArgScratch[J - 1] = popValue(T.Operands);
      if (!pushFrame(T, &Callee, ArgScratch.data(), NumArgs))
        return !Failed;
      F = &T.Frames.back();
      WindowInterrupted = false;
      break;
    }

    case Op::CallBuiltin: {
      bool Proceeded = handleBuiltin(T, static_cast<Builtin>(I.A),
                                     static_cast<unsigned>(I.B));
      if (!Proceeded)
        F->Pc = InstrPc; // blocked: retry this instruction when woken
      if (!Proceeded || Failed)
        return !Failed;
      WindowInterrupted = false;
      if (YieldRequested || T.State != ThreadStateKind::Runnable)
        return true;
      break;
    }

    case Op::Spawn: {
      const Function &Callee = Prog.Functions[static_cast<size_t>(I.A)];
      size_t NumArgs = static_cast<size_t>(I.B);
      ArgScratch.resize(NumArgs);
      for (size_t J = NumArgs; J > 0; --J)
        ArgScratch[J - 1] = popValue(T.Operands);
      ThreadCtx &Child = newThread(T.Id, &Callee);
      // The parent writes the arguments into the child's (future) entry
      // frame, like code publishing an argument block before calling
      // pthread_create: when the child first reads its parameters, those
      // are induced first-accesses — genuine thread-communication input.
      // The writes precede the ThreadCreate event so the create edge
      // orders them for happens-before analyses.
      for (size_t J = 0; J != NumArgs; ++J)
        if (!memWrite(T, Child.StackBase + J, ArgScratch[J]))
          return !Failed;
      emitEvent(Event::threadCreate(T.Id, now(), Child.Id));
      T.Operands.push_back(Child.Id);
      WindowInterrupted = false;
      break;
    }

    case Op::Return: {
      int64_t Result = popValue(T.Operands);
      Frame Completed = T.Frames.back();
      if (TraceActive)
        Events->enqueue(Event::ret(T.Id, now(), Completed.Fn->Id, 0));
      T.Frames.pop_back();
      T.Sp = Completed.SavedSp;
      T.Operands.resize(Completed.OperandBase);
      if (T.Frames.empty()) {
        finishThread(T, Result);
        return !Failed;
      }
      T.Operands.push_back(Result);
      F = &T.Frames.back();
      WindowInterrupted = false;
      break;
    }

    default:
      ISP_UNREACHABLE("unknown opcode");
    }
  }
  if (Capped) {
    runtimeError("guest instruction budget exceeded (possible infinite "
                 "loop)");
    return false;
  }
  return true;
}

RunResult Machine::run() {
  RunResult Result;

  // Load the program image.
  Globals.resize(Prog.GlobalCells, 0);
  for (const GlobalInit &Init : Prog.GlobalInits) {
    assert(Init.Address >= GlobalBase &&
           Init.Address < GlobalBase + Globals.size());
    Globals[Init.Address - GlobalBase] = Init.Value;
  }

  if (Events)
    Events->start(&Prog.Symbols);
  TraceActive = tracing();

  newThread(/*Parent=*/0, &Prog.Functions[Prog.EntryIndex]);

  // Fair round-robin serializing scheduler.
  size_t Cursor = 0;
  ThreadId LastRunning = 0;
  bool HaveLastRunning = false;
  while (!Failed) {
    // Find the next runnable thread at or after the cursor.
    size_t Live = 0;
    ThreadCtx *Next = nullptr;
    for (size_t Probe = 0; Probe != ThreadList.size(); ++Probe) {
      size_t Index = (Cursor + Probe) % ThreadList.size();
      ThreadCtx &T = ThreadList[Index];
      if (T.State == ThreadStateKind::Finished)
        continue;
      ++Live;
      if (!Next && T.State == ThreadStateKind::Runnable) {
        Next = &T;
        Cursor = (Index + 1) % ThreadList.size();
      }
    }
    if (Live == 0)
      break;
    if (!Next) {
      runtimeError("deadlock: all live guest threads are blocked");
      break;
    }

    ThreadCtx &T = *Next;
    if (HaveLastRunning && LastRunning != T.Id) {
      ++Stats.ThreadSwitches;
      emitEvent({EventKind::ThreadSwitch, T.Id, now(), T.Id, 0});
      // The incoming thread may resume mid-window; suspend quiet marks
      // until it passes a window-breaking instruction.
      WindowInterrupted = true;
    }
    LastRunning = T.Id;
    HaveLastRunning = true;

    if (!T.Started) {
      T.Started = true;
      if (ISP_UNLIKELY(obs::tracingEnabled())) {
        obs::TraceLog::get().setLaneName(static_cast<obs::LaneId>(T.Id),
                                         "guest thread " +
                                             std::to_string(T.Id));
        obs::TraceLog::get().instant(static_cast<obs::LaneId>(T.Id),
                                     "thread_start", "guest", obs::nowNs());
      }
      emitEvent(Event::threadStart(T.Id, now(), T.Parent));
      // Spawn arguments were already written into the entry frame cells
      // by the parent; main has none.
      if (!pushFrame(T, T.EntryFn, /*Args=*/nullptr, /*NumArgs=*/0))
        break;
    }
    if (T.State == ThreadStateKind::Runnable && !T.Frames.empty()) {
      if (ISP_UNLIKELY(obs::tracingEnabled())) {
        // Name the slice after the function on top at slice entry (the
        // slice may return out of or call into other frames mid-way).
        std::string SliceName = T.Frames.back().Fn->Name;
        uint64_t SliceStart = obs::nowNs();
        runSlice(T);
        obs::TraceLog::get().completeSpan(static_cast<obs::LaneId>(T.Id),
                                          SliceName, "guest", SliceStart,
                                          obs::nowNs());
      } else {
        runSlice(T);
      }
    }
  }

  // Account the guest footprint before tearing anything down.
  uint64_t GuestCells = Globals.size() + Heap.size();
  for (const ThreadCtx &T : ThreadList)
    GuestCells += T.StackMemory.size();
  Stats.GuestMemoryBytes = GuestCells * sizeof(int64_t);

  // Fold the run's tallies into the process-wide registry (the per-run
  // RunStats copy in Result is unaffected and stays the API of record
  // for single runs; the registry aggregates across runs).
  if (ISP_UNLIKELY(obs::statsEnabled())) {
    obs::Registry &R = obs::Registry::get();
    R.counter("machine.instructions").add(Stats.Instructions);
    R.counter("machine.basic_blocks").add(Stats.BasicBlocks);
    R.counter("machine.mem_reads").add(Stats.MemReads);
    R.counter("machine.mem_writes").add(Stats.MemWrites);
    R.counter("machine.threads_spawned").add(Stats.ThreadsSpawned);
    R.counter("machine.thread_switches").add(Stats.ThreadSwitches);
    R.counter("machine.heap_cells_allocated").add(Stats.HeapCellsAllocated);
    R.counter("machine.quiet_suppressed").add(Stats.QuietEventsSuppressed);
    R.counter("machine.quiet_window_aborts").add(Stats.QuietWindowAborts);
    R.counter("machine.quiet_indirect_suppressed")
        .add(Stats.QuietIndirectSuppressed);
    R.gauge("machine.guest_memory_bytes").noteMax(Stats.GuestMemoryBytes);
  }

  if (Events)
    Events->finish();

  Result.Ok = !Failed;
  Result.Error = Error;
  Result.ExitCode = MainResult;
  Result.Output = std::move(Output);
  Result.Stats = Stats;
  return Result;
}

RunResult isp::compileAndRun(const std::string &Source,
                             EventDispatcher *Events, MachineOptions Opts) {
  DiagnosticEngine Diags;
  std::optional<Program> Prog = compileProgram(Source, Diags);
  if (!Prog) {
    RunResult Result;
    Result.Ok = false;
    Result.Error = "compile error:\n" + Diags.render();
    return Result;
  }
  Machine M(*Prog, Events, Opts);
  return M.run();
}
