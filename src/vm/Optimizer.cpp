//===- vm/Optimizer.cpp - Bytecode peephole optimizer ------------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "vm/Optimizer.h"

#include "obs/Obs.h"

#include <cassert>
#include <optional>
#include <unordered_map>
#include <vector>

using namespace isp;

namespace {

/// Evaluates a foldable binary opcode over constants. Returns nullopt
/// for division/modulo by zero (left for the runtime's error handling).
std::optional<int64_t> foldBinary(Op Opcode, int64_t Lhs, int64_t Rhs) {
  switch (Opcode) {
  case Op::Add:
    return Lhs + Rhs;
  case Op::Sub:
    return Lhs - Rhs;
  case Op::Mul:
    return Lhs * Rhs;
  case Op::Div:
    if (Rhs == 0)
      return std::nullopt;
    return Lhs / Rhs;
  case Op::Mod:
    if (Rhs == 0)
      return std::nullopt;
    return Lhs % Rhs;
  case Op::Lt:
    return Lhs < Rhs ? 1 : 0;
  case Op::Le:
    return Lhs <= Rhs ? 1 : 0;
  case Op::Gt:
    return Lhs > Rhs ? 1 : 0;
  case Op::Ge:
    return Lhs >= Rhs ? 1 : 0;
  case Op::Eq:
    return Lhs == Rhs ? 1 : 0;
  case Op::Ne:
    return Lhs != Rhs ? 1 : 0;
  default:
    return std::nullopt;
  }
}

std::optional<int64_t> foldUnary(Op Opcode, int64_t Operand) {
  switch (Opcode) {
  case Op::Neg:
    return -Operand;
  case Op::Not:
    return Operand == 0 ? 1 : 0;
  case Op::ToBool:
    return Operand != 0 ? 1 : 0;
  default:
    return std::nullopt;
  }
}

bool isJump(Op Opcode) {
  return Opcode == Op::Jump || Opcode == Op::JumpIfFalse ||
         Opcode == Op::JumpIfTrue;
}

/// One optimization pass over \p F with a removal mask. Mutating passes
/// preserve the invariant that jump targets keep their *original*
/// indices until the final compaction.
class FunctionOptimizer {
public:
  explicit FunctionOptimizer(Function &F) : F(F), Removed(F.Code.size()) {}

  OptimizerStats run() {
    bool Changed = true;
    // Each iteration strictly reduces live instructions or branch
    // targets, so a generous bound keeps this linear in practice.
    for (unsigned Round = 0; Changed && Round != 16; ++Round) {
      collectTargets();
      Changed = foldConstants();
      Changed |= threadJumps();
    }
    compact();
    markQuietLocals();
    return Stats;
  }

private:
  /// Index of the next live instruction after \p Index, or the size.
  size_t nextLive(size_t Index) const {
    ++Index;
    while (Index < F.Code.size() && Removed[Index])
      ++Index;
    return Index;
  }

  /// First live instruction at or after \p Index (for target mapping).
  size_t firstLiveAt(size_t Index) const {
    while (Index < F.Code.size() && Removed[Index])
      ++Index;
    return Index;
  }

  void collectTargets() {
    Targets.assign(F.Code.size() + 1, false);
    for (size_t I = 0; I != F.Code.size(); ++I) {
      if (Removed[I] || !isJump(F.Code[I].Opcode))
        continue;
      assert(F.Code[I].A >= 0 &&
             static_cast<size_t>(F.Code[I].A) <= F.Code.size());
      Targets[static_cast<size_t>(F.Code[I].A)] = true;
    }
  }

  /// True when any index in (From, To] is a jump target — folding across
  /// such a point would change what a jump into the sequence observes.
  bool targetInside(size_t From, size_t To) const {
    for (size_t I = From + 1; I <= To; ++I)
      if (Targets[I])
        return true;
    return false;
  }

  bool foldConstants() {
    bool Changed = false;
    for (size_t I = 0; I < F.Code.size(); ++I) {
      if (Removed[I] || F.Code[I].Opcode != Op::PushConst)
        continue;
      size_t J = nextLive(I);
      if (J >= F.Code.size() || targetInside(I, J))
        continue;

      // PushConst a; unary -> PushConst f(a).
      if (auto Folded = foldUnary(F.Code[J].Opcode, F.Code[I].A)) {
        F.Code[I].A = *Folded;
        Removed[J] = true;
        ++Stats.ConstantsFolded;
        ++Stats.InstructionsRemoved;
        Changed = true;
        continue;
      }

      // PushConst a; JumpIfFalse/True L -> Jump L or fallthrough.
      if (F.Code[J].Opcode == Op::JumpIfFalse ||
          F.Code[J].Opcode == Op::JumpIfTrue) {
        bool Taken = (F.Code[J].Opcode == Op::JumpIfFalse) ==
                     (F.Code[I].A == 0);
        if (Taken) {
          F.Code[I] = {Op::Jump, F.Code[J].A, 0};
        } else {
          Removed[I] = true;
          ++Stats.InstructionsRemoved;
        }
        Removed[J] = true;
        ++Stats.BranchesResolved;
        ++Stats.InstructionsRemoved;
        Changed = true;
        continue;
      }

      // PushConst a; PushConst b; binop -> PushConst (a op b).
      if (F.Code[J].Opcode != Op::PushConst)
        continue;
      size_t K = nextLive(J);
      if (K >= F.Code.size() || targetInside(J, K))
        continue;
      if (auto Folded =
              foldBinary(F.Code[K].Opcode, F.Code[I].A, F.Code[J].A)) {
        F.Code[I].A = *Folded;
        Removed[J] = true;
        Removed[K] = true;
        Stats.InstructionsRemoved += 2;
        ++Stats.ConstantsFolded;
        Changed = true;
      }
    }
    return Changed;
  }

  bool threadJumps() {
    bool Changed = false;
    for (size_t I = 0; I != F.Code.size(); ++I) {
      if (Removed[I] || !isJump(F.Code[I].Opcode))
        continue;
      // Follow chains of unconditional jumps (bounded against cycles).
      int64_t Target = F.Code[I].A;
      for (unsigned Hops = 0; Hops != 8; ++Hops) {
        size_t Live = firstLiveAt(static_cast<size_t>(Target));
        if (Live >= F.Code.size() || F.Code[Live].Opcode != Op::Jump ||
            F.Code[Live].A == Target)
          break;
        Target = F.Code[Live].A;
        ++Stats.JumpsThreaded;
        Changed = true;
      }
      F.Code[I].A = Target;
    }
    return Changed;
  }

  /// Marks redundant local accesses quiet (Instr::B = 1) on the final
  /// code. Within one straight-line window — closed by any jump target,
  /// unconditional jump, call, builtin, spawn, or return — a re-read of
  /// a slot already read or written, or a re-write of a slot already
  /// written, leaves every per-address tool state unchanged (see the
  /// file comment in Optimizer.h), so the VM may skip emitting its
  /// event.
  ///
  /// Windows deliberately span BasicBlock markers and the fall-through
  /// edge of conditional jumps: no tool advances its timestamp counter
  /// at block boundaries — every counter-bump event originates from a
  /// call, builtin, spawn, return, or the scheduler, and the first four
  /// are window breaks here while the VM handles scheduler switches at
  /// runtime (Machine::WindowInterrupted). The one runtime interruption
  /// the pass cannot see — a thread switch mid-window — makes the VM
  /// fall back to emitting until the thread passes one of the breaking
  /// instructions, which is exactly where a fresh window begins.
  void markQuietLocals() {
    std::vector<bool> IsTarget(F.Code.size() + 1, false);
    for (const Instr &I : F.Code)
      if (isJump(I.Opcode))
        IsTarget[static_cast<size_t>(I.A)] = true;

    // Generation-stamped membership: bumping Gen empties both sets in
    // O(1) at every window break.
    std::vector<uint32_t> TouchedGen(F.NumLocals, 0);
    std::vector<uint32_t> WrittenGen(F.NumLocals, 0);
    std::unordered_map<int64_t, uint32_t> GlobalTouched, GlobalWritten;
    uint32_t Gen = 1;
    for (size_t I = 0; I != F.Code.size(); ++I) {
      if (IsTarget[I])
        ++Gen;
      Instr &In = F.Code[I];
      switch (In.Opcode) {
      case Op::Jump:
      case Op::Call:
      case Op::CallBuiltin:
      case Op::Spawn:
      case Op::Return:
        ++Gen;
        break;
      case Op::LoadLocal: {
        size_t Slot = static_cast<size_t>(In.A);
        assert(Slot < TouchedGen.size() && "local slot out of range");
        if (TouchedGen[Slot] == Gen) {
          In.B = 1;
          ++Stats.QuietAccessesMarked;
        } else {
          TouchedGen[Slot] = Gen;
        }
        break;
      }
      case Op::StoreLocal: {
        size_t Slot = static_cast<size_t>(In.A);
        assert(Slot < WrittenGen.size() && "local slot out of range");
        if (WrittenGen[Slot] == Gen) {
          In.B = 1;
          ++Stats.QuietAccessesMarked;
        } else {
          WrittenGen[Slot] = Gen;
          TouchedGen[Slot] = Gen;
        }
        break;
      }
      // Globals get the same treatment: their addresses are compile-time
      // constants (In.A), so redundancy within a window is just as
      // decidable as for locals. Array-heavy guests re-load the same
      // global base pointer for every subscript expression, making this
      // the dominant quiet source on numeric kernels.
      case Op::LoadGlobal: {
        uint32_t &Touched = GlobalTouched[In.A];
        if (Touched == Gen) {
          In.B = 1;
          ++Stats.QuietAccessesMarked;
        } else {
          Touched = Gen;
        }
        break;
      }
      case Op::StoreGlobal: {
        uint32_t &Written = GlobalWritten[In.A];
        if (Written == Gen) {
          In.B = 1;
          ++Stats.QuietAccessesMarked;
        } else {
          Written = Gen;
          GlobalTouched[In.A] = Gen;
        }
        break;
      }
      default:
        break;
      }
    }
  }

  void compact() {
    std::vector<int64_t> NewIndex(F.Code.size() + 1, 0);
    std::vector<Instr> NewCode;
    NewCode.reserve(F.Code.size());
    for (size_t I = 0; I != F.Code.size(); ++I) {
      NewIndex[I] = static_cast<int64_t>(NewCode.size());
      if (!Removed[I])
        NewCode.push_back(F.Code[I]);
    }
    NewIndex[F.Code.size()] = static_cast<int64_t>(NewCode.size());
    for (Instr &I : NewCode)
      if (isJump(I.Opcode))
        I.A = NewIndex[firstLiveAt(static_cast<size_t>(I.A))];
    F.Code = std::move(NewCode);
  }

  Function &F;
  std::vector<bool> Removed;
  std::vector<bool> Targets;
  OptimizerStats Stats;
};

} // namespace

OptimizerStats isp::optimizeFunction(Function &F) {
  return FunctionOptimizer(F).run();
}

OptimizerStats isp::optimizeProgram(Program &Prog) {
  OptimizerStats Total;
  for (Function &F : Prog.Functions) {
    OptimizerStats S = optimizeFunction(F);
    Total.ConstantsFolded += S.ConstantsFolded;
    Total.JumpsThreaded += S.JumpsThreaded;
    Total.BranchesResolved += S.BranchesResolved;
    Total.InstructionsRemoved += S.InstructionsRemoved;
    Total.QuietAccessesMarked += S.QuietAccessesMarked;
    // Per-function suppression potential: which routines the quiet-mark
    // pass actually bites on (zero-mark functions are left out of the
    // registry to keep the dump proportional to findings).
    if (S.QuietAccessesMarked != 0)
      ISP_STATS(obs::Registry::get()
                    .counter("optimizer.quiet_marked." + F.Name)
                    .add(S.QuietAccessesMarked));
  }
  if (ISP_UNLIKELY(obs::statsEnabled())) {
    obs::Registry &R = obs::Registry::get();
    R.counter("optimizer.constants_folded").add(Total.ConstantsFolded);
    R.counter("optimizer.jumps_threaded").add(Total.JumpsThreaded);
    R.counter("optimizer.branches_resolved").add(Total.BranchesResolved);
    R.counter("optimizer.instructions_removed").add(Total.InstructionsRemoved);
    R.counter("optimizer.quiet_accesses_marked").add(Total.QuietAccessesMarked);
  }
  return Total;
}
