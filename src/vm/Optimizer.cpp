//===- vm/Optimizer.cpp - Bytecode peephole optimizer ------------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "vm/Optimizer.h"

#include "analysis/Escape.h"
#include "analysis/PointsTo.h"
#include "analysis/Range.h"
#include "obs/Obs.h"

#include <cassert>
#include <map>
#include <optional>
#include <tuple>
#include <unordered_map>
#include <vector>

using namespace isp;

namespace {

/// Evaluates a foldable binary opcode over constants. Returns nullopt
/// for division/modulo by zero (left for the runtime's error handling).
std::optional<int64_t> foldBinary(Op Opcode, int64_t Lhs, int64_t Rhs) {
  switch (Opcode) {
  case Op::Add:
    return Lhs + Rhs;
  case Op::Sub:
    return Lhs - Rhs;
  case Op::Mul:
    return Lhs * Rhs;
  case Op::Div:
    if (Rhs == 0)
      return std::nullopt;
    return Lhs / Rhs;
  case Op::Mod:
    if (Rhs == 0)
      return std::nullopt;
    return Lhs % Rhs;
  case Op::Lt:
    return Lhs < Rhs ? 1 : 0;
  case Op::Le:
    return Lhs <= Rhs ? 1 : 0;
  case Op::Gt:
    return Lhs > Rhs ? 1 : 0;
  case Op::Ge:
    return Lhs >= Rhs ? 1 : 0;
  case Op::Eq:
    return Lhs == Rhs ? 1 : 0;
  case Op::Ne:
    return Lhs != Rhs ? 1 : 0;
  default:
    return std::nullopt;
  }
}

std::optional<int64_t> foldUnary(Op Opcode, int64_t Operand) {
  switch (Opcode) {
  case Op::Neg:
    return -Operand;
  case Op::Not:
    return Operand == 0 ? 1 : 0;
  case Op::ToBool:
    return Operand != 0 ? 1 : 0;
  default:
    return std::nullopt;
  }
}

bool isJump(Op Opcode) {
  return Opcode == Op::Jump || Opcode == Op::JumpIfFalse ||
         Opcode == Op::JumpIfTrue;
}

/// One optimization pass over \p F with a removal mask. Mutating passes
/// preserve the invariant that jump targets keep their *original*
/// indices until the final compaction.
class FunctionOptimizer {
public:
  explicit FunctionOptimizer(Function &F) : F(F), Removed(F.Code.size()) {}

  /// Folding/threading/compaction only; quiet marking runs separately
  /// (QuietMarker below) so optimizeProgram can feed it whole-program
  /// alias facts computed on the *final* instruction stream.
  OptimizerStats runPeephole() {
    bool Changed = true;
    // Each iteration strictly reduces live instructions or branch
    // targets, so a generous bound keeps this linear in practice.
    for (unsigned Round = 0; Changed && Round != 16; ++Round) {
      collectTargets();
      Changed = foldConstants();
      Changed |= threadJumps();
    }
    compact();
    return Stats;
  }

private:
  /// Index of the next live instruction after \p Index, or the size.
  size_t nextLive(size_t Index) const {
    ++Index;
    while (Index < F.Code.size() && Removed[Index])
      ++Index;
    return Index;
  }

  /// First live instruction at or after \p Index (for target mapping).
  size_t firstLiveAt(size_t Index) const {
    while (Index < F.Code.size() && Removed[Index])
      ++Index;
    return Index;
  }

  void collectTargets() {
    Targets.assign(F.Code.size() + 1, false);
    for (size_t I = 0; I != F.Code.size(); ++I) {
      if (Removed[I] || !isJump(F.Code[I].Opcode))
        continue;
      assert(F.Code[I].A >= 0 &&
             static_cast<size_t>(F.Code[I].A) <= F.Code.size());
      Targets[static_cast<size_t>(F.Code[I].A)] = true;
    }
  }

  /// True when any index in (From, To] is a jump target — folding across
  /// such a point would change what a jump into the sequence observes.
  bool targetInside(size_t From, size_t To) const {
    for (size_t I = From + 1; I <= To; ++I)
      if (Targets[I])
        return true;
    return false;
  }

  bool foldConstants() {
    bool Changed = false;
    for (size_t I = 0; I < F.Code.size(); ++I) {
      if (Removed[I] || F.Code[I].Opcode != Op::PushConst)
        continue;
      size_t J = nextLive(I);
      if (J >= F.Code.size() || targetInside(I, J))
        continue;

      // PushConst a; unary -> PushConst f(a).
      if (auto Folded = foldUnary(F.Code[J].Opcode, F.Code[I].A)) {
        F.Code[I].A = *Folded;
        Removed[J] = true;
        ++Stats.ConstantsFolded;
        ++Stats.InstructionsRemoved;
        Changed = true;
        continue;
      }

      // PushConst a; JumpIfFalse/True L -> Jump L or fallthrough.
      if (F.Code[J].Opcode == Op::JumpIfFalse ||
          F.Code[J].Opcode == Op::JumpIfTrue) {
        bool Taken = (F.Code[J].Opcode == Op::JumpIfFalse) ==
                     (F.Code[I].A == 0);
        if (Taken) {
          F.Code[I] = {Op::Jump, F.Code[J].A, 0};
        } else {
          Removed[I] = true;
          ++Stats.InstructionsRemoved;
        }
        Removed[J] = true;
        ++Stats.BranchesResolved;
        ++Stats.InstructionsRemoved;
        Changed = true;
        continue;
      }

      // PushConst a; PushConst b; binop -> PushConst (a op b).
      if (F.Code[J].Opcode != Op::PushConst)
        continue;
      size_t K = nextLive(J);
      if (K >= F.Code.size() || targetInside(J, K))
        continue;
      if (auto Folded =
              foldBinary(F.Code[K].Opcode, F.Code[I].A, F.Code[J].A)) {
        F.Code[I].A = *Folded;
        Removed[J] = true;
        Removed[K] = true;
        Stats.InstructionsRemoved += 2;
        ++Stats.ConstantsFolded;
        Changed = true;
      }
    }
    return Changed;
  }

  bool threadJumps() {
    bool Changed = false;
    for (size_t I = 0; I != F.Code.size(); ++I) {
      if (Removed[I] || !isJump(F.Code[I].Opcode))
        continue;
      // Follow chains of unconditional jumps (bounded against cycles).
      int64_t Target = F.Code[I].A;
      for (unsigned Hops = 0; Hops != 8; ++Hops) {
        size_t Live = firstLiveAt(static_cast<size_t>(Target));
        if (Live >= F.Code.size() || F.Code[Live].Opcode != Op::Jump ||
            F.Code[Live].A == Target)
          break;
        Target = F.Code[Live].A;
        ++Stats.JumpsThreaded;
        Changed = true;
      }
      F.Code[I].A = Target;
    }
    return Changed;
  }

  void compact() {
    std::vector<int64_t> NewIndex(F.Code.size() + 1, 0);
    std::vector<Instr> NewCode;
    NewCode.reserve(F.Code.size());
    for (size_t I = 0; I != F.Code.size(); ++I) {
      NewIndex[I] = static_cast<int64_t>(NewCode.size());
      if (!Removed[I])
        NewCode.push_back(F.Code[I]);
    }
    NewIndex[F.Code.size()] = static_cast<int64_t>(NewCode.size());
    for (Instr &I : NewCode)
      if (isJump(I.Opcode))
        I.A = NewIndex[firstLiveAt(static_cast<size_t>(I.A))];
    F.Code = std::move(NewCode);
  }

  Function &F;
  std::vector<bool> Removed;
  std::vector<bool> Targets;
  OptimizerStats Stats;
};

/// Whole-program context for the quiet pass. ImmutableArrayCells maps a
/// named global cell to its array's extent when the cell provably holds
/// the loader-installed base address for the entire run: no StoreGlobal
/// targets it, no raw store() builtin exists anywhere, and (established
/// by the probe round in optimizeProgram) every StoreIndirect in the
/// program is frame-safe — the last condition is a greatest fixpoint:
/// assuming immutability, each store stays inside object storage, so no
/// store clobbers a named cell, so immutability holds. Induction over
/// the event order grounds it: the first violating write would have to
/// be an indirect store whose base was read *before* any violation,
/// hence a genuine base address, hence in-bounds — a contradiction.
struct QuietPassContext {
  std::unordered_map<int64_t, uint64_t> ImmutableArrayCells;
  const analysis::PointsToResult *PT = nullptr;
  size_t FnIndex = 0;
};

/// The quiet-access pass: window-local symbolic value numbering over
/// the operand stack (see the Optimizer.h file comment). Equal value
/// numbers imply equal runtime values within one window entry, so an
/// address VN hit in the Touched/Written membership set is a must-alias
/// proof that the access is event-redundant.
///
/// Soundness split: the *membership sets* (address already touched /
/// written this window) are never invalidated mid-window — intervening
/// same-thread accesses to any address leave a re-read/re-write just as
/// redundant, because locks and tool timestamps cannot change inside a
/// window (every lock op is a builtin, i.e. a window break; scheduler
/// switches trip Machine::WindowInterrupted). Only the *value caches*
/// (the VN a local slot or named global cell currently holds) must be
/// dropped when a StoreIndirect may clobber the underlying cell; a
/// frame-safe store — provably confined to heap/global-array/own-window
/// frame-array storage — keeps them alive.
class QuietMarker {
public:
  struct Result {
    unsigned Marked = 0;
    unsigned IndirectMarked = 0;
    unsigned UnsafeStores = 0;
  };

  QuietMarker(Function &F, const QuietPassContext &Ctx, bool Mutate)
      : F(F), Ctx(Ctx), Mutate(Mutate) {}

  Result run();

private:
  // Value-number tags. Binary/unary operator VNs embed the opcode so
  // identical expressions over identical operands unify ("a[i+1]" read
  // twice computes the same address VN).
  enum : uint8_t { TConst, TLAddr, TGAddr, TArrayBase, TBin, TUn };

  uint32_t intern(uint8_t Tag, int64_t A, int64_t B = 0) {
    auto [It, New] = Interned.try_emplace(std::make_tuple(Tag, A, B), 0);
    if (New) {
      It->second = static_cast<uint32_t>(Info.size());
      Info.push_back({Tag, A, B, false});
    }
    return It->second;
  }
  /// A fresh VN equal to nothing else (unknown values).
  uint32_t opaque() {
    uint32_t Id = static_cast<uint32_t>(Info.size());
    Info.push_back({TConst, 0, 0, true});
    return Id;
  }
  bool constValue(uint32_t VN, int64_t &Out) const {
    if (Info[VN].Opaque || Info[VN].Tag != TConst)
      return false;
    Out = Info[VN].A;
    return true;
  }

  uint32_t pop() {
    if (Stack.empty())
      return opaque();
    uint32_t VN = Stack.back();
    Stack.pop_back();
    return VN;
  }
  /// The VN of base + index — the canonical commutative-Add VN, so an
  /// indirect address unifies with the same sum computed by guest
  /// arithmetic.
  uint32_t addressVN(uint32_t Base, uint32_t Index) {
    if (Base > Index)
      std::swap(Base, Index);
    return intern(TBin + static_cast<uint8_t>(Op::Add),
                  static_cast<int64_t>(Base), static_cast<int64_t>(Index));
  }

  /// Membership test-and-set; returns true (quiet) on a repeat.
  bool touch(std::unordered_map<uint32_t, uint32_t> &Set, uint32_t VN) {
    uint32_t &Stamp = Set[VN];
    if (Stamp == Gen)
      return true;
    Stamp = Gen;
    return false;
  }

  struct VNInfo {
    uint8_t Tag;
    int64_t A;
    int64_t B;
    bool Opaque;
  };
  struct CacheEntry {
    uint32_t VN = 0;
    uint32_t Gen = 0;
    uint32_t Epoch = 0;
  };

  Function &F;
  const QuietPassContext &Ctx;
  bool Mutate;

  std::map<std::tuple<uint8_t, int64_t, int64_t>, uint32_t> Interned;
  std::vector<VNInfo> Info;
  /// VN -> known object extent, for values that are exact object bases
  /// (this window's alloc/alloca results, immutable array bases).
  std::unordered_map<uint32_t, uint64_t> ShapeCells;

  std::vector<uint32_t> Stack;
  std::unordered_map<uint32_t, uint32_t> Touched, Written; ///< VN -> gen
  std::unordered_map<int64_t, CacheEntry> LocalCache, GlobalCache;
  uint32_t Gen = 1;
  uint32_t Epoch = 1;
};

QuietMarker::Result QuietMarker::run() {
  Result R;
  std::vector<bool> IsTarget(F.Code.size() + 1, false);
  for (const Instr &I : F.Code)
    if (isJump(I.Opcode))
      IsTarget[static_cast<size_t>(I.A)] = true;

  auto markQuiet = [&](Instr &In, bool Indirect) {
    if (Mutate)
      In.B = 1;
    ++R.Marked;
    if (Indirect)
      ++R.IndirectMarked;
  };

  for (size_t I = 0; I != F.Code.size(); ++I) {
    if (IsTarget[I]) {
      // Control may arrive here from elsewhere with different operand
      // values: keep the stack depth, forget the value identities.
      ++Gen;
      for (uint32_t &VN : Stack)
        VN = opaque();
    }
    Instr &In = F.Code[I];
    switch (In.Opcode) {
    case Op::Nop:
    case Op::BasicBlock:
      break;
    case Op::PushConst:
      Stack.push_back(intern(TConst, In.A));
      break;
    case Op::Pop:
    case Op::JumpIfFalse:
    case Op::JumpIfTrue:
      // Conditional jumps do not break the window: the fall-through
      // path still postdominates the window's earlier accesses.
      pop();
      break;
    case Op::LoadLocal: {
      uint32_t AddrVN = intern(TLAddr, In.A);
      if (touch(Touched, AddrVN))
        markQuiet(In, false);
      CacheEntry &E = LocalCache[In.A];
      if (E.Gen != Gen || E.Epoch != Epoch)
        E = {opaque(), Gen, Epoch};
      Stack.push_back(E.VN);
      break;
    }
    case Op::StoreLocal: {
      uint32_t Value = pop();
      uint32_t AddrVN = intern(TLAddr, In.A);
      if (touch(Written, AddrVN))
        markQuiet(In, false);
      else
        Touched[AddrVN] = Gen;
      LocalCache[In.A] = {Value, Gen, Epoch};
      break;
    }
    case Op::LoadGlobal: {
      uint32_t AddrVN = intern(TGAddr, In.A);
      if (touch(Touched, AddrVN))
        markQuiet(In, false);
      auto ImmIt = Ctx.ImmutableArrayCells.find(In.A);
      if (ImmIt != Ctx.ImmutableArrayCells.end()) {
        // The cell provably holds its loader-installed array base for
        // the whole run: its value is a window-independent constant.
        uint32_t BaseVN = intern(TArrayBase, In.A);
        ShapeCells[BaseVN] = ImmIt->second;
        Stack.push_back(BaseVN);
      } else {
        CacheEntry &E = GlobalCache[In.A];
        if (E.Gen != Gen || E.Epoch != Epoch)
          E = {opaque(), Gen, Epoch};
        Stack.push_back(E.VN);
      }
      break;
    }
    case Op::StoreGlobal: {
      uint32_t Value = pop();
      uint32_t AddrVN = intern(TGAddr, In.A);
      if (touch(Written, AddrVN))
        markQuiet(In, false);
      else
        Touched[AddrVN] = Gen;
      GlobalCache[In.A] = {Value, Gen, Epoch};
      break;
    }
    case Op::LoadIndirect: {
      uint32_t Index = pop();
      uint32_t Base = pop();
      uint32_t AddrVN = addressVN(Base, Index);
      if (touch(Touched, AddrVN))
        markQuiet(In, true);
      Stack.push_back(opaque());
      break;
    }
    case Op::StoreIndirect: {
      uint32_t Value = pop();
      (void)Value;
      uint32_t Index = pop();
      uint32_t Base = pop();
      uint32_t AddrVN = addressVN(Base, Index);
      if (touch(Written, AddrVN))
        markQuiet(In, true);
      else
        Touched[AddrVN] = Gen;

      // Frame safety: may this store clobber a cell whose value is
      // cached (a local slot or named global cell)? Proven safe when
      // the target is inside bounded object storage.
      bool Safe = false;
      int64_t C = 0;
      if (constValue(Index, C) && C >= 0) {
        auto ShapeIt = ShapeCells.find(Base);
        if (ShapeIt != ShapeCells.end() &&
            static_cast<uint64_t>(C) < ShapeIt->second)
          Safe = true;
        if (!Safe && Ctx.PT) {
          const analysis::SiteFacts *Facts =
              Ctx.PT->siteFacts(Ctx.FnIndex, I);
          if (Facts && Facts->PreciseBoundedBase &&
              static_cast<uint64_t>(C) < Facts->MinCells)
            Safe = true;
        }
      }
      if (!Safe) {
        ++R.UnsafeStores;
        ++Epoch; // drop every value cache; memberships survive
      }
      break;
    }
    case Op::AllocaArray: {
      uint32_t Size = pop();
      uint32_t BaseVN = opaque();
      int64_t C = 0;
      // The fresh storage belongs to the *current* frame, so in-window
      // stores through this base cannot touch any cached cell.
      if (constValue(Size, C) && C > 0)
        ShapeCells[BaseVN] = static_cast<uint64_t>(C);
      Stack.push_back(BaseVN);
      break;
    }
    case Op::Add:
    case Op::Mul:
    case Op::Eq:
    case Op::Ne: {
      // Commutative: canonicalize operand order.
      uint32_t Rhs = pop();
      uint32_t Lhs = pop();
      if (Lhs > Rhs)
        std::swap(Lhs, Rhs);
      Stack.push_back(intern(TBin + static_cast<uint8_t>(In.Opcode),
                             static_cast<int64_t>(Lhs),
                             static_cast<int64_t>(Rhs)));
      break;
    }
    case Op::Sub:
    case Op::Div:
    case Op::Mod:
    case Op::Lt:
    case Op::Le:
    case Op::Gt:
    case Op::Ge: {
      uint32_t Rhs = pop();
      uint32_t Lhs = pop();
      Stack.push_back(intern(TBin + static_cast<uint8_t>(In.Opcode),
                             static_cast<int64_t>(Lhs),
                             static_cast<int64_t>(Rhs)));
      break;
    }
    case Op::Neg:
    case Op::Not:
    case Op::ToBool: {
      uint32_t Operand = pop();
      Stack.push_back(intern(TUn + static_cast<uint8_t>(In.Opcode),
                             static_cast<int64_t>(Operand)));
      break;
    }
    case Op::Jump:
    case Op::Return:
      if (In.Opcode == Op::Return)
        pop();
      ++Gen;
      Stack.clear(); // the next instruction is unreachable from here
      break;
    case Op::Call:
    case Op::Spawn: {
      for (int64_t Arg = 0; Arg != In.B; ++Arg)
        pop();
      // The remaining stack entries are caller registers the callee
      // cannot touch: their value identities survive the window break.
      ++Gen;
      Stack.push_back(opaque());
      break;
    }
    case Op::CallBuiltin: {
      std::vector<uint32_t> Args(static_cast<size_t>(In.B));
      for (size_t Arg = Args.size(); Arg-- > 0;)
        Args[Arg] = pop();
      ++Gen;
      uint32_t ResultVN = opaque();
      int64_t C = 0;
      // alloc(N) with a literal N: the result is a bounded heap base —
      // a *value* fact, so it survives the window break just applied.
      if (static_cast<Builtin>(In.A) == Builtin::Alloc && !Args.empty() &&
          constValue(Args[0], C) && C > 0)
        ShapeCells[ResultVN] = static_cast<uint64_t>(C);
      Stack.push_back(ResultVN);
      break;
    }
    }
  }
  return R;
}

} // namespace

OptimizerStats isp::optimizeFunction(Function &F) {
  OptimizerStats Stats = FunctionOptimizer(F).runPeephole();
  // No whole-program context here: conservative quiet pass (window
  // shapes only, no immutable-array or points-to facts).
  QuietPassContext Ctx;
  QuietMarker::Result R = QuietMarker(F, Ctx, /*Mutate=*/true).run();
  Stats.QuietAccessesMarked += R.Marked;
  Stats.QuietIndirectMarked += R.IndirectMarked;
  return Stats;
}

OptimizerStats isp::optimizeProgram(Program &Prog) {
  OptimizerStats Total;
  for (Function &F : Prog.Functions) {
    OptimizerStats S = FunctionOptimizer(F).runPeephole();
    Total.ConstantsFolded += S.ConstantsFolded;
    Total.JumpsThreaded += S.JumpsThreaded;
    Total.BranchesResolved += S.BranchesResolved;
    Total.InstructionsRemoved += S.InstructionsRemoved;
  }

  // Quiet marking runs on the final instruction stream with
  // whole-program alias facts: Andersen points-to for the
  // cache-invalidation refinement, plus the immutable-array-cell
  // fixpoint (see QuietPassContext).
  obs::ScopedTimer MarkTimer(
      obs::statsEnabled()
          ? &obs::Registry::get().counter("analysis.quiet_mark_ns")
          : nullptr);
  analysis::PointsToResult PT = analysis::computePointsTo(Prog);

  bool HasRawStore = false;
  std::unordered_map<int64_t, bool> CellStored;
  for (const Function &F : Prog.Functions) {
    for (const Instr &In : F.Code) {
      if (In.Opcode == Op::CallBuiltin &&
          static_cast<Builtin>(In.A) == Builtin::Store)
        HasRawStore = true;
      if (In.Opcode == Op::StoreGlobal)
        CellStored[In.A] = true;
    }
  }
  QuietPassContext Ctx;
  Ctx.PT = &PT;
  if (!HasRawStore)
    for (const GlobalArrayInfo &Arr : Prog.GlobalArrays)
      if (!CellStored.count(static_cast<int64_t>(Arr.Cell)))
        Ctx.ImmutableArrayCells[static_cast<int64_t>(Arr.Cell)] = Arr.Cells;

  // Probe round: the immutability assumption must be self-consistent —
  // a single store the pass cannot bound may clobber any named cell,
  // including the array base cells themselves.
  if (!Ctx.ImmutableArrayCells.empty()) {
    unsigned Unsafe = 0;
    for (size_t FI = 0; FI != Prog.Functions.size(); ++FI) {
      Ctx.FnIndex = FI;
      Unsafe += QuietMarker(Prog.Functions[FI], Ctx, /*Mutate=*/false)
                    .run()
                    .UnsafeStores;
    }
    if (Unsafe != 0)
      Ctx.ImmutableArrayCells.clear();
  }

  for (size_t FI = 0; FI != Prog.Functions.size(); ++FI) {
    Function &F = Prog.Functions[FI];
    Ctx.FnIndex = FI;
    QuietMarker::Result R = QuietMarker(F, Ctx, /*Mutate=*/true).run();
    Total.QuietAccessesMarked += R.Marked;
    Total.QuietIndirectMarked += R.IndirectMarked;
    // Per-function suppression potential: which routines the quiet-mark
    // pass actually bites on (zero-mark functions are left out of the
    // registry to keep the dump proportional to findings).
    if (R.Marked != 0)
      ISP_STATS(obs::Registry::get()
                    .counter("optimizer.quiet_marked." + F.Name)
                    .add(R.Marked));
  }

  // Range-based covered-read pass: variable-index LoadIndirect sites
  // whose event is proven redundant by the interprocedural certificate
  // (never-escaping frame array, dominating certified fill loop,
  // in-bounds index, program-wide containment — see Range.h). These are
  // loop re-reads the window-local value numbering above can never mark
  // (every loop iteration re-enters the window).
  {
    analysis::EscapeResult Esc = analysis::computeEscape(Prog);
    analysis::RangeResult RR = analysis::computeRanges(Prog);
    for (const auto &Site : analysis::coveredIndirectReads(Prog, PT, Esc, RR)) {
      Instr &In = Prog.Functions[Site.first].Code[Site.second];
      if (In.Opcode != Op::LoadIndirect || In.B != 0)
        continue; // already marked by the window pass
      In.B = 1;
      ++Total.RangeQuietMarked;
      ++Total.QuietIndirectMarked;
      ++Total.QuietAccessesMarked;
    }
  }

  if (ISP_UNLIKELY(obs::statsEnabled())) {
    obs::Registry &R = obs::Registry::get();
    R.counter("analysis.range_quiet_marked").add(Total.RangeQuietMarked);
    R.counter("optimizer.constants_folded").add(Total.ConstantsFolded);
    R.counter("optimizer.jumps_threaded").add(Total.JumpsThreaded);
    R.counter("optimizer.branches_resolved").add(Total.BranchesResolved);
    R.counter("optimizer.instructions_removed").add(Total.InstructionsRemoved);
    R.counter("optimizer.quiet_accesses_marked").add(Total.QuietAccessesMarked);
    R.counter("analysis.quiet_indirect_marked").add(Total.QuietIndirectMarked);
  }
  return Total;
}
