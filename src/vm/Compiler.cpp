//===- vm/Compiler.cpp - Guest AST -> bytecode compiler ----------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "vm/Compiler.h"

#include "support/Compiler.h"
#include "support/Format.h"
#include "vm/Parser.h"

#include <cassert>
#include <map>
#include <unordered_map>

using namespace isp;

bool isp::lookupBuiltin(const std::string &Name, Builtin &Out,
                        unsigned &Arity) {
  static const struct {
    const char *Name;
    Builtin Id;
    unsigned Arity;
  } Table[] = {
      {"print", Builtin::Print, 1},
      {"alloc", Builtin::Alloc, 1},
      {"free", Builtin::Free, 1},
      {"sysread", Builtin::SysRead, 3},
      {"syswrite", Builtin::SysWrite, 3},
      {"sem_create", Builtin::SemCreate, 1},
      {"sem_wait", Builtin::SemWait, 1},
      {"sem_post", Builtin::SemPost, 1},
      {"lock_create", Builtin::LockCreate, 0},
      {"lock_acquire", Builtin::LockAcquire, 1},
      {"lock_release", Builtin::LockRelease, 1},
      {"join", Builtin::Join, 1},
      {"rand", Builtin::Rand, 1},
      {"yield", Builtin::Yield, 0},
      {"load", Builtin::Load, 1},
      {"store", Builtin::Store, 2},
      {"thread_id", Builtin::ThreadId, 0},
  };
  for (const auto &Entry : Table) {
    if (Name == Entry.Name) {
      Out = Entry.Id;
      Arity = Entry.Arity;
      return true;
    }
  }
  return false;
}

int isp::builtinArity(int64_t B) {
  static const int Arities[] = {
      /*Print*/ 1,      /*Alloc*/ 1,      /*Free*/ 1,     /*SysRead*/ 3,
      /*SysWrite*/ 3,   /*SemCreate*/ 1,  /*SemWait*/ 1,  /*SemPost*/ 1,
      /*LockCreate*/ 0, /*LockAcquire*/ 1, /*LockRelease*/ 1,
      /*Join*/ 1,       /*Rand*/ 1,       /*Yield*/ 0,    /*Load*/ 1,
      /*Store*/ 2,      /*ThreadId*/ 0};
  static_assert(sizeof(Arities) / sizeof(Arities[0]) == NumBuiltins,
                "arity table out of sync with Builtin enum");
  if (B < 0 || B >= static_cast<int64_t>(NumBuiltins))
    return -1;
  return Arities[B];
}

namespace {

/// Global variable layout info.
struct GlobalInfo {
  Addr Address = 0; ///< address of the variable cell itself
  bool IsArray = false;
};

/// Compiles one module. Functions are pre-registered so forward calls
/// resolve; each function body is compiled with a block-scoped local
/// environment where every declaration receives a fresh frame slot.
class Compiler {
public:
  Compiler(const Module &M, DiagnosticEngine &Diags) : M(M), Diags(Diags) {}

  std::optional<Program> compile();

private:
  // Code emission helpers (current function).
  size_t emit(Op Opcode, int64_t A = 0, int64_t B = 0) {
    Current->Code.push_back({Opcode, A, B});
    return Current->Code.size() - 1;
  }
  size_t emitJumpPlaceholder(Op Opcode) { return emit(Opcode, -1); }
  void patchJump(size_t Index) {
    Current->Code[Index].A = static_cast<int64_t>(Current->Code.size());
  }
  void error(SourceLoc Loc, std::string Message) {
    Diags.error(Loc.Line, Loc.Column, std::move(Message));
  }

  // Scope management.
  void pushScope() { ScopeSizes.push_back(0); }
  void popScope() {
    for (unsigned I = 0; I != ScopeSizes.back(); ++I)
      ScopeStack.pop_back();
    ScopeSizes.pop_back();
  }
  int declareLocal(const std::string &Name, SourceLoc Loc);
  /// Returns the slot of \p Name, or -1 if it is not a local in scope.
  int lookupLocal(const std::string &Name) const;

  void compileFunction(const FunctionDecl &Decl, Function &F);
  void compileStmt(const Stmt &S);
  void compileExpr(const Expr &E);
  void compileCondition(const Expr *E, SourceLoc Loc);
  /// Emits the load of variable \p Name (local slot or global address).
  void compileVarLoad(const std::string &Name, SourceLoc Loc);
  void compileVarStore(const std::string &Name, SourceLoc Loc);
  unsigned compileArgs(const std::vector<ExprPtr> &Args);

  /// Jump fix-up lists for the innermost enclosing loops.
  struct LoopContext {
    std::vector<size_t> BreakJumps;
    std::vector<size_t> ContinueJumps;
  };

  const Module &M;
  DiagnosticEngine &Diags;
  Program Prog;
  std::vector<LoopContext> Loops;
  Function *Current = nullptr;
  std::unordered_map<std::string, GlobalInfo> Globals;
  std::unordered_map<std::string, size_t> FunctionIndex;
  /// Innermost-last (name, slot) stack for block-scoped lookup.
  std::vector<std::pair<std::string, int>> ScopeStack;
  std::vector<unsigned> ScopeSizes;
};

} // namespace

int Compiler::declareLocal(const std::string &Name, SourceLoc Loc) {
  // Shadowing outer scopes is allowed; redeclaration in the same scope
  // is an error.
  unsigned InCurrentScope = ScopeSizes.back();
  for (size_t I = ScopeStack.size(); InCurrentScope > 0;
       --I, --InCurrentScope) {
    if (ScopeStack[I - 1].first == Name) {
      error(Loc, formatString("redeclaration of '%s'", Name.c_str()));
      return ScopeStack[I - 1].second;
    }
  }
  int Slot = static_cast<int>(Current->NumLocals++);
  ScopeStack.emplace_back(Name, Slot);
  ++ScopeSizes.back();
  return Slot;
}

int Compiler::lookupLocal(const std::string &Name) const {
  for (auto It = ScopeStack.rbegin(); It != ScopeStack.rend(); ++It)
    if (It->first == Name)
      return It->second;
  return -1;
}

std::optional<Program> Compiler::compile() {
  // Pass 1a: lay out globals. Variable cells first, then array storage,
  // so scalar globals are densely packed.
  Addr NextAddr = GlobalBase;
  for (const GlobalDecl &G : M.Globals) {
    if (Globals.count(G.Name)) {
      error(G.Loc, formatString("redeclaration of global '%s'",
                                G.Name.c_str()));
      continue;
    }
    Globals[G.Name] = {NextAddr, G.IsArray};
    ++NextAddr;
  }
  for (const GlobalDecl &G : M.Globals) {
    auto It = Globals.find(G.Name);
    if (It == Globals.end())
      continue;
    if (G.IsArray) {
      // The variable cell holds the array's base address.
      Prog.GlobalInits.push_back(
          {It->second.Address, static_cast<int64_t>(NextAddr)});
      Prog.GlobalArrays.push_back(
          {G.Name, It->second.Address, NextAddr, G.ArraySize});
      NextAddr += G.ArraySize;
    } else {
      Prog.GlobalVars.push_back({G.Name, It->second.Address});
      if (G.InitValue != 0)
        Prog.GlobalInits.push_back({It->second.Address, G.InitValue});
    }
  }
  Prog.GlobalCells = NextAddr - GlobalBase;

  // Pass 1b: register functions (forward references allowed).
  for (const auto &FnDecl : M.Functions) {
    if (FunctionIndex.count(FnDecl->Name)) {
      error(FnDecl->Loc, formatString("redefinition of function '%s'",
                                      FnDecl->Name.c_str()));
      continue;
    }
    Builtin B;
    unsigned Arity;
    if (lookupBuiltin(FnDecl->Name, B, Arity)) {
      error(FnDecl->Loc,
            formatString("'%s' is a builtin and cannot be redefined",
                         FnDecl->Name.c_str()));
      continue;
    }
    Function F;
    F.Name = FnDecl->Name;
    F.Id = Prog.Symbols.intern(FnDecl->Name);
    F.NumParams = static_cast<unsigned>(FnDecl->Params.size());
    FunctionIndex[FnDecl->Name] = Prog.Functions.size();
    Prog.Functions.push_back(std::move(F));
  }

  // Pass 2: compile bodies.
  for (const auto &FnDecl : M.Functions) {
    auto It = FunctionIndex.find(FnDecl->Name);
    if (It == FunctionIndex.end())
      continue;
    compileFunction(*FnDecl, Prog.Functions[It->second]);
  }

  auto EntryIt = FunctionIndex.find("main");
  if (EntryIt == FunctionIndex.end()) {
    Diags.error(1, 1, "program has no 'main' function");
    return std::nullopt;
  }
  if (Prog.Functions[EntryIt->second].NumParams != 0)
    Diags.error(1, 1, "'main' must take no parameters");
  Prog.EntryIndex = EntryIt->second;

  if (Diags.hasErrors())
    return std::nullopt;
  return std::move(Prog);
}

void Compiler::compileFunction(const FunctionDecl &Decl, Function &F) {
  Current = &F;
  ScopeStack.clear();
  ScopeSizes.clear();
  Loops.clear();
  pushScope();
  for (const std::string &Param : Decl.Params)
    declareLocal(Param, Decl.Loc);

  emit(Op::BasicBlock); // function entry block
  compileStmt(*Decl.Body);

  // Implicit "return 0;" so execution never falls off the end.
  emit(Op::PushConst, 0);
  emit(Op::Return);
  popScope();
  Current = nullptr;
}

void Compiler::compileVarLoad(const std::string &Name, SourceLoc Loc) {
  int Slot = lookupLocal(Name);
  if (Slot >= 0) {
    emit(Op::LoadLocal, Slot);
    return;
  }
  auto It = Globals.find(Name);
  if (It != Globals.end()) {
    emit(Op::LoadGlobal, static_cast<int64_t>(It->second.Address));
    return;
  }
  error(Loc, formatString("use of undeclared variable '%s'", Name.c_str()));
  emit(Op::PushConst, 0);
}

void Compiler::compileVarStore(const std::string &Name, SourceLoc Loc) {
  int Slot = lookupLocal(Name);
  if (Slot >= 0) {
    emit(Op::StoreLocal, Slot);
    return;
  }
  auto It = Globals.find(Name);
  if (It != Globals.end()) {
    emit(Op::StoreGlobal, static_cast<int64_t>(It->second.Address));
    return;
  }
  error(Loc, formatString("assignment to undeclared variable '%s'",
                          Name.c_str()));
  emit(Op::Pop);
}

void Compiler::compileCondition(const Expr *E, SourceLoc Loc) {
  if (!E) {
    error(Loc, "missing condition expression");
    emit(Op::PushConst, 0);
    return;
  }
  compileExpr(*E);
}

unsigned Compiler::compileArgs(const std::vector<ExprPtr> &Args) {
  for (const ExprPtr &Arg : Args) {
    if (Arg)
      compileExpr(*Arg);
    else
      emit(Op::PushConst, 0);
  }
  return static_cast<unsigned>(Args.size());
}

void Compiler::compileExpr(const Expr &E) {
  switch (E.Kind) {
  case ExprKind::IntLiteral:
    emit(Op::PushConst, static_cast<const IntLiteralExpr &>(E).Value);
    return;

  case ExprKind::VarRef: {
    const auto &Ref = static_cast<const VarRefExpr &>(E);
    compileVarLoad(Ref.Name, Ref.Loc);
    return;
  }

  case ExprKind::Index: {
    const auto &Index = static_cast<const IndexExpr &>(E);
    compileVarLoad(Index.Base, Index.Loc);
    if (Index.Index)
      compileExpr(*Index.Index);
    else
      emit(Op::PushConst, 0);
    emit(Op::LoadIndirect);
    return;
  }

  case ExprKind::Unary: {
    const auto &Unary = static_cast<const UnaryExpr &>(E);
    if (Unary.Operand)
      compileExpr(*Unary.Operand);
    else
      emit(Op::PushConst, 0);
    emit(Unary.Op == UnaryOp::Neg ? Op::Neg : Op::Not);
    return;
  }

  case ExprKind::Binary: {
    const auto &Binary = static_cast<const BinaryExpr &>(E);
    if (Binary.Op == BinaryOp::LogicalAnd ||
        Binary.Op == BinaryOp::LogicalOr) {
      // Short-circuit, producing a normalized 0/1 value.
      bool IsAnd = Binary.Op == BinaryOp::LogicalAnd;
      if (Binary.Lhs)
        compileExpr(*Binary.Lhs);
      else
        emit(Op::PushConst, 0);
      size_t ShortCircuit =
          emitJumpPlaceholder(IsAnd ? Op::JumpIfFalse : Op::JumpIfTrue);
      if (Binary.Rhs)
        compileExpr(*Binary.Rhs);
      else
        emit(Op::PushConst, 0);
      emit(Op::ToBool);
      size_t Done = emitJumpPlaceholder(Op::Jump);
      patchJump(ShortCircuit);
      emit(Op::PushConst, IsAnd ? 0 : 1);
      patchJump(Done);
      return;
    }
    if (Binary.Lhs)
      compileExpr(*Binary.Lhs);
    else
      emit(Op::PushConst, 0);
    if (Binary.Rhs)
      compileExpr(*Binary.Rhs);
    else
      emit(Op::PushConst, 0);
    switch (Binary.Op) {
    case BinaryOp::Add:
      emit(Op::Add);
      return;
    case BinaryOp::Sub:
      emit(Op::Sub);
      return;
    case BinaryOp::Mul:
      emit(Op::Mul);
      return;
    case BinaryOp::Div:
      emit(Op::Div);
      return;
    case BinaryOp::Mod:
      emit(Op::Mod);
      return;
    case BinaryOp::Lt:
      emit(Op::Lt);
      return;
    case BinaryOp::Le:
      emit(Op::Le);
      return;
    case BinaryOp::Gt:
      emit(Op::Gt);
      return;
    case BinaryOp::Ge:
      emit(Op::Ge);
      return;
    case BinaryOp::Eq:
      emit(Op::Eq);
      return;
    case BinaryOp::Ne:
      emit(Op::Ne);
      return;
    case BinaryOp::LogicalAnd:
    case BinaryOp::LogicalOr:
      break;
    }
    ISP_UNREACHABLE("logical ops handled above");
  }

  case ExprKind::Call: {
    const auto &Call = static_cast<const CallExpr &>(E);
    auto FnIt = FunctionIndex.find(Call.Callee);
    if (FnIt != FunctionIndex.end()) {
      const Function &Callee = Prog.Functions[FnIt->second];
      if (Call.Args.size() != Callee.NumParams)
        error(Call.Loc,
              formatString("'%s' expects %u argument(s), got %zu",
                           Call.Callee.c_str(), Callee.NumParams,
                           Call.Args.size()));
      unsigned NumArgs = compileArgs(Call.Args);
      emit(Op::Call, static_cast<int64_t>(FnIt->second), NumArgs);
      return;
    }
    Builtin B;
    unsigned Arity;
    if (lookupBuiltin(Call.Callee, B, Arity)) {
      if (Call.Args.size() != Arity)
        error(Call.Loc,
              formatString("builtin '%s' expects %u argument(s), got %zu",
                           Call.Callee.c_str(), Arity, Call.Args.size()));
      unsigned NumArgs = compileArgs(Call.Args);
      emit(Op::CallBuiltin, static_cast<int64_t>(B), NumArgs);
      return;
    }
    error(Call.Loc,
          formatString("call to undeclared function '%s'",
                       Call.Callee.c_str()));
    emit(Op::PushConst, 0);
    return;
  }

  case ExprKind::Spawn: {
    const auto &Spawn = static_cast<const SpawnExpr &>(E);
    auto FnIt = FunctionIndex.find(Spawn.Callee);
    if (FnIt == FunctionIndex.end()) {
      error(Spawn.Loc, formatString("spawn of undeclared function '%s'",
                                    Spawn.Callee.c_str()));
      emit(Op::PushConst, 0);
      return;
    }
    const Function &Callee = Prog.Functions[FnIt->second];
    if (Spawn.Args.size() != Callee.NumParams)
      error(Spawn.Loc,
            formatString("'%s' expects %u argument(s), got %zu",
                         Spawn.Callee.c_str(), Callee.NumParams,
                         Spawn.Args.size()));
    unsigned NumArgs = compileArgs(Spawn.Args);
    emit(Op::Spawn, static_cast<int64_t>(FnIt->second), NumArgs);
    return;
  }
  }
  ISP_UNREACHABLE("unknown expression kind");
}

void Compiler::compileStmt(const Stmt &S) {
  switch (S.Kind) {
  case StmtKind::Block: {
    const auto &Block = static_cast<const BlockStmt &>(S);
    pushScope();
    for (const StmtPtr &Child : Block.Body)
      if (Child)
        compileStmt(*Child);
    popScope();
    return;
  }

  case StmtKind::VarDecl: {
    const auto &Decl = static_cast<const VarDeclStmt &>(S);
    if (Decl.ArraySize) {
      compileExpr(*Decl.ArraySize);
      int Slot = declareLocal(Decl.Name, Decl.Loc);
      emit(Op::AllocaArray);
      emit(Op::StoreLocal, Slot);
      return;
    }
    if (Decl.Init) {
      compileExpr(*Decl.Init);
      int Slot = declareLocal(Decl.Name, Decl.Loc);
      emit(Op::StoreLocal, Slot);
      return;
    }
    // Uninitialized scalar: reserve the slot; the cell keeps whatever
    // the stack memory held (observable by the memcheck tool).
    declareLocal(Decl.Name, Decl.Loc);
    return;
  }

  case StmtKind::Assign: {
    const auto &Assign = static_cast<const AssignStmt &>(S);
    if (Assign.Value)
      compileExpr(*Assign.Value);
    else
      emit(Op::PushConst, 0);
    compileVarStore(Assign.Name, Assign.Loc);
    return;
  }

  case StmtKind::IndexAssign: {
    const auto &Assign = static_cast<const IndexAssignStmt &>(S);
    compileVarLoad(Assign.Base, Assign.Loc);
    if (Assign.Index)
      compileExpr(*Assign.Index);
    else
      emit(Op::PushConst, 0);
    if (Assign.Value)
      compileExpr(*Assign.Value);
    else
      emit(Op::PushConst, 0);
    emit(Op::StoreIndirect);
    return;
  }

  case StmtKind::If: {
    const auto &If = static_cast<const IfStmt &>(S);
    compileCondition(If.Condition.get(), If.Loc);
    size_t ElseJump = emitJumpPlaceholder(Op::JumpIfFalse);
    emit(Op::BasicBlock); // then block
    if (If.Then)
      compileStmt(*If.Then);
    if (If.Else) {
      size_t EndJump = emitJumpPlaceholder(Op::Jump);
      patchJump(ElseJump);
      emit(Op::BasicBlock); // else block
      compileStmt(*If.Else);
      patchJump(EndJump);
    } else {
      patchJump(ElseJump);
    }
    emit(Op::BasicBlock); // merge block
    return;
  }

  case StmtKind::While: {
    const auto &While = static_cast<const WhileStmt &>(S);
    size_t LoopHead = Current->Code.size();
    emit(Op::BasicBlock); // loop header (condition re-evaluation)
    compileCondition(While.Condition.get(), While.Loc);
    size_t ExitJump = emitJumpPlaceholder(Op::JumpIfFalse);
    Loops.emplace_back();
    if (While.Body)
      compileStmt(*While.Body);
    LoopContext Ctx = std::move(Loops.back());
    Loops.pop_back();
    for (size_t Jump : Ctx.ContinueJumps)
      Current->Code[Jump].A = static_cast<int64_t>(LoopHead);
    emit(Op::Jump, static_cast<int64_t>(LoopHead));
    patchJump(ExitJump);
    for (size_t Jump : Ctx.BreakJumps)
      patchJump(Jump);
    emit(Op::BasicBlock); // loop exit
    return;
  }

  case StmtKind::For: {
    const auto &For = static_cast<const ForStmt &>(S);
    pushScope(); // the init clause's declaration scopes over the loop
    if (For.Init)
      compileStmt(*For.Init);
    size_t LoopHead = Current->Code.size();
    emit(Op::BasicBlock); // loop header
    size_t ExitJump = SIZE_MAX;
    if (For.Condition) {
      compileExpr(*For.Condition);
      ExitJump = emitJumpPlaceholder(Op::JumpIfFalse);
    }
    Loops.emplace_back();
    if (For.Body)
      compileStmt(*For.Body);
    LoopContext Ctx = std::move(Loops.back());
    Loops.pop_back();
    // "continue" runs the step clause before re-testing the condition.
    size_t StepPc = Current->Code.size();
    for (size_t Jump : Ctx.ContinueJumps)
      Current->Code[Jump].A = static_cast<int64_t>(StepPc);
    if (For.Step)
      compileStmt(*For.Step);
    emit(Op::Jump, static_cast<int64_t>(LoopHead));
    if (ExitJump != SIZE_MAX)
      patchJump(ExitJump);
    for (size_t Jump : Ctx.BreakJumps)
      patchJump(Jump);
    emit(Op::BasicBlock); // loop exit
    popScope();
    return;
  }

  case StmtKind::Break: {
    if (Loops.empty()) {
      error(S.Loc, "'break' outside of a loop");
      return;
    }
    Loops.back().BreakJumps.push_back(emitJumpPlaceholder(Op::Jump));
    return;
  }

  case StmtKind::Continue: {
    if (Loops.empty()) {
      error(S.Loc, "'continue' outside of a loop");
      return;
    }
    Loops.back().ContinueJumps.push_back(emitJumpPlaceholder(Op::Jump));
    return;
  }

  case StmtKind::Return: {
    const auto &Return = static_cast<const ReturnStmt &>(S);
    if (Return.Value)
      compileExpr(*Return.Value);
    else
      emit(Op::PushConst, 0);
    emit(Op::Return);
    return;
  }

  case StmtKind::ExprStmt: {
    const auto &E = static_cast<const ExprStmt &>(S);
    if (E.E) {
      compileExpr(*E.E);
      emit(Op::Pop);
    }
    return;
  }
  }
  ISP_UNREACHABLE("unknown statement kind");
}

std::optional<Program> isp::compileModule(const Module &M,
                                          DiagnosticEngine &Diags) {
  Compiler C(M, Diags);
  return C.compile();
}

std::optional<Program> isp::compileProgram(const std::string &Source,
                                           DiagnosticEngine &Diags) {
  Module M = parseSource(Source, Diags);
  if (Diags.hasErrors())
    return std::nullopt;
  return compileModule(M, Diags);
}
