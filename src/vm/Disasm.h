//===- vm/Disasm.h - Bytecode disassembler ----------------------*- C++ -*-===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders compiled guest bytecode as readable text — one line per
/// instruction with resolved callee names and jump targets — for the
/// `isprof disasm` command, compiler debugging, and golden tests.
///
//===----------------------------------------------------------------------===//

#ifndef ISPROF_VM_DISASM_H
#define ISPROF_VM_DISASM_H

#include "vm/Bytecode.h"

#include <map>
#include <string>
#include <utility>

namespace isp {

/// Per-instruction disassembly annotations keyed by (function index,
/// instruction index), rendered as a trailing "  ; <text>" comment.
/// `isprof disasm --annotate-ranges` fills this with value-range and
/// escape facts ("range=[0,63]", "noescape cells=4").
using DisasmAnnotations = std::map<std::pair<size_t, size_t>, std::string>;

/// Returns the mnemonic for \p Opcode (e.g. "load_local").
const char *opcodeName(Op Opcode);

/// Returns the builtin's source-level name (e.g. "sem_wait").
const char *builtinName(Builtin B);

/// Disassembles one instruction (no trailing newline). \p Prog resolves
/// call targets; may be null.
std::string disassembleInstr(const Instr &I, const Program *Prog);

/// Disassembles a whole function: header plus numbered instructions.
/// \p Annotations, when non-null, appends per-instruction comments for
/// function index \p FnIndex.
std::string disassembleFunction(const Function &F, const Program *Prog,
                                const DisasmAnnotations *Annotations = nullptr,
                                size_t FnIndex = 0);

/// Disassembles every function of \p Prog, plus the globals layout.
std::string disassembleProgram(const Program &Prog,
                               const DisasmAnnotations *Annotations = nullptr);

} // namespace isp

#endif // ISPROF_VM_DISASM_H
