//===- vm/Disasm.h - Bytecode disassembler ----------------------*- C++ -*-===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders compiled guest bytecode as readable text — one line per
/// instruction with resolved callee names and jump targets — for the
/// `isprof disasm` command, compiler debugging, and golden tests.
///
//===----------------------------------------------------------------------===//

#ifndef ISPROF_VM_DISASM_H
#define ISPROF_VM_DISASM_H

#include "vm/Bytecode.h"

#include <string>

namespace isp {

/// Returns the mnemonic for \p Opcode (e.g. "load_local").
const char *opcodeName(Op Opcode);

/// Returns the builtin's source-level name (e.g. "sem_wait").
const char *builtinName(Builtin B);

/// Disassembles one instruction (no trailing newline). \p Prog resolves
/// call targets; may be null.
std::string disassembleInstr(const Instr &I, const Program *Prog);

/// Disassembles a whole function: header plus numbered instructions.
std::string disassembleFunction(const Function &F, const Program *Prog);

/// Disassembles every function of \p Prog, plus the globals layout.
std::string disassembleProgram(const Program &Prog);

} // namespace isp

#endif // ISPROF_VM_DISASM_H
