//===- vm/BlockCompiler.h - Straight-line block event templates -*- C++ -*-===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The block compiler turns eligible straight-line bytecode runs into
/// event *templates*: the exact packed words the per-instruction
/// interpreter path would buffer for one execution of the run, already
/// compacted (adjacent-access merges applied, basic-block markers
/// folded, quiet-marked accesses dropped) and encoded, with only the
/// thread id, the absolute time base, and frame-relative addresses
/// left to patch at execution time. Executing a compiled block then
/// costs one bulk template splice (EventDispatcher::spliceTemplateRun,
/// three branch-free ALU ops per word straight into the batch buffer)
/// instead of one enqueue — with its merge probing and encoder
/// bookkeeping — per access, plus a tight execute loop whose memory
/// operands were bounds-checked once per block instead of once per
/// access.
///
/// A template covers the instructions from an Op::BasicBlock marker up
/// to (excluding) the first terminator or ineligible opcode. Covered
/// runs extend *through* further Op::BasicBlock markers reached by
/// fall-through (superblock formation): executed as part of the run,
/// such a marker's event always folds into the run's own still-open
/// block event — no call, return, or barrier can intervene inside a
/// straight-line cover — so the compiler folds it statically (the
/// leading template word's count grows, the marker still ticks event
/// time) and accesses on either side of it stay merge candidates,
/// exactly as the dispatcher would have left them. Control entering
/// one of those interior markers from elsewhere (they are jump
/// targets) simply runs the per-instruction path, or that marker's own
/// shorter plan, from there.
///
/// Runs also extend through *dynamic* instructions — LoadIndirect,
/// StoreIndirect, Div, and Mod — whose events or error exits cannot be
/// templated (hybrid runs). A dynamic access's event is enqueue()d
/// normally at execution time; the template is split into *segments*
/// at each unmarked dynamic access, and the dispatcher re-applies its
/// merge rule at every segment seam, so a dynamic event merges with
/// its static neighbors exactly as on the slow path. Quiet-marked
/// dynamic accesses emit nothing (like static quiet skips, they are
/// deterministically suppressed under the WindowInterrupted gate) and
/// so do not split segments. Dynamic error exits (invalid address,
/// zero divisor) use stop-before-failure: segments are spliced only up
/// to the failing instruction, the executed prefix is accounted
/// retroactively, and the machine fails exactly as the slow path would
/// at that instruction — events, stats, and time all match.
///
/// Eligibility for everything else is deliberately conservative so the
/// fast path has no other failure exits:
///
///  - no AllocaArray (stack overflow error path, moving Sp);
///  - no calls, builtins, spawns, jumps, or returns (window-breaking
///    and/or frame-changing);
///  - LoadGlobal/StoreGlobal only for addresses statically inside the
///    globals region, LoadLocal/StoreLocal only for plausible slots —
///    both make the access infallible once the per-block runtime gates
///    pass.
///
/// Quiet marks (vm/Optimizer.h; driven by the CFG, points-to, and
/// value-range analyses) are honored *statically*: a marked access
/// contributes no template word and no event-time tick, exactly like
/// the slow path's noteQuietAccess suppression; the suppression tallies
/// are folded into the plan's stat deltas. Because a scheduler
/// interruption forces marked events through on the slow path, plans
/// containing quiet skips gate on !WindowInterrupted at runtime.
///
/// Soundness argument for byte-identical streams: within a covered run
/// the *static* event sequence is a function of (thread id, frame
/// base, entry event time) only — kinds and address offsets are
/// static, times are entry + i for the i-th emitted event (dynamic
/// events occupy statically-known tick positions), and the
/// dispatcher's two compaction rules depend on nothing but
/// kind/tid/address adjacency, which is invariant under the frame-base
/// shift (stack and global regions can never be address-adjacent).
/// Dynamic events go through the real enqueue(), and the splice seam
/// re-applies the same two rules against the live buffer head at every
/// segment boundary, so address-dependent merges involving dynamic
/// events are decided at runtime exactly as on the slow path.
/// runTimesCompatible() falls back to the slow path in the one case
/// templates cannot express (an epoch escape word), and the runFits()
/// bound covers the whole run including its dynamic words, so no
/// mid-run flush can reset the encoder. Property tests assert the
/// end-to-end byte identity.
///
//===----------------------------------------------------------------------===//

#ifndef ISPROF_VM_BLOCKCOMPILER_H
#define ISPROF_VM_BLOCKCOMPILER_H

#include "trace/Event.h"
#include "vm/Bytecode.h"

#include <cstdint>
#include <vector>

namespace isp {

/// The compiled form of one straight-line run, plus everything the
/// runtime gates need. Instruction counts include the leading
/// Op::BasicBlock marker and any interior (statically folded) markers.
struct BlockPlan {
  uint32_t BeginPc = 0; ///< pc of the leading Op::BasicBlock
  uint32_t EndPc = 0;   ///< first pc not covered by the template
  /// Operand-stack entries the covered run consumes below its entry
  /// depth (the runtime gate against popping into the caller's frame).
  uint32_t NeedDepth = 0;
  /// Highest operand-stack growth above entry depth anywhere in the
  /// run, and the net depth change at its end. The executor resizes
  /// the operand vector once to entry + MaxGrowth, runs on raw
  /// pointers (no per-push capacity or size bookkeeping), and shrinks
  /// to entry + NetEffect afterwards.
  uint32_t MaxGrowth = 0;
  int32_t NetEffect = 0;
  /// Highest local slot read or written, -1 when none: one bounds check
  /// and one stack pre-resize replace the per-access checks.
  int64_t MaxSlot = -1;
  /// Static (templated) memory reads/writes, including quiet ones.
  /// Dynamic (indirect) accesses are excluded — they self-account
  /// through the shared memRead/memWrite path at execution time.
  uint32_t Reads = 0;
  uint32_t Writes = 0;
  uint32_t QuietSkips = 0; ///< statically suppressed *static* accesses
  /// Quiet-marked dynamic accesses: suppressed at runtime through
  /// noteQuietAccess (which tallies them), but they still participate
  /// in the WindowInterrupted gate — a forced-through dynamic event
  /// would shift every later template time.
  uint32_t DynQuietSkips = 0;
  /// Unmarked dynamic accesses: each emits one runtime-enqueued event
  /// (one time tick, at most one buffered word) and splits the template
  /// into a new segment.
  uint32_t NumDynEvents = 0;
  uint32_t NumBlocks = 1;  ///< Op::BasicBlock markers covered
  uint32_t NumRecords = 0; ///< logical events among Words
  uint32_t InternalMerges = 0; ///< access merges applied in-template
  /// Interior markers folded into the leading block event (NumBlocks -
  /// 1; kept separate so the dispatcher's compaction identity
  /// enqueued == delivered + merges + folds stays exact).
  uint32_t InternalBbFolds = 0;
  uint64_t EnqueueCount = 0; ///< uncompacted events, dynamic included
  /// One straight-line stretch of the template between dynamic events:
  /// NumDynEvents + 1 segments, in run order; the first holds the
  /// leading BasicBlock word, later ones (possibly empty) are spliced
  /// right after their preceding dynamic access's enqueue.
  struct Segment {
    uint32_t WordBegin = 0; ///< range into Words
    uint32_t WordEnd = 0;
    uint32_t NumRecords = 0;
    uint32_t InternalMerges = 0;
    uint32_t InternalBbFolds = 0;
    /// Static time ticks in this segment (records + merges + folds);
    /// the dynamic events between segments tick through now().
    uint32_t Ticks = 0;
    /// Run-relative TimeOff of the segment's last record's main word —
    /// the encoder's PrevLow after the splice.
    uint32_t LastMainOff = 0;
  };
  std::vector<Segment> Segments;
  /// Pre-encoded packed words with patch masks (trace/Event.h).
  std::vector<TemplateWord> Words;

  uint32_t instrCount() const { return EndPc - BeginPc; }
};

/// Per-function plan table with O(1) leader lookup by pc.
struct FunctionBlockPlans {
  /// Code.size() entries; -1 where no plan starts.
  std::vector<int32_t> PlanIndexByPc;
  std::vector<BlockPlan> Plans;

  const BlockPlan *planAt(size_t Pc) const {
    int32_t Index = PlanIndexByPc[Pc];
    return Index < 0 ? nullptr : &Plans[static_cast<size_t>(Index)];
  }
};

/// Compiles every eligible straight-line run of \p Fn into a template.
/// \p GlobalCells bounds the globals region for the static
/// LoadGlobal/StoreGlobal eligibility check. Pure function of the
/// bytecode; runs once per function at Machine construction.
FunctionBlockPlans compileFunctionBlocks(const Function &Fn,
                                         uint64_t GlobalCells);

} // namespace isp

#endif // ISPROF_VM_BLOCKCOMPILER_H
