//===- vm/Diag.h - Guest language diagnostics -------------------*- C++ -*-===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Diagnostic collection for the guest-language frontend. The frontend
/// never aborts on user errors: it accumulates diagnostics and the caller
/// inspects hasErrors() (recoverable-error convention, no exceptions).
///
//===----------------------------------------------------------------------===//

#ifndef ISPROF_VM_DIAG_H
#define ISPROF_VM_DIAG_H

#include <string>
#include <vector>

namespace isp {

struct Diagnostic {
  unsigned Line = 0;
  unsigned Column = 0;
  std::string Message;
};

class DiagnosticEngine {
public:
  void error(unsigned Line, unsigned Column, std::string Message) {
    Diags.push_back({Line, Column, std::move(Message)});
  }

  bool hasErrors() const { return !Diags.empty(); }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Renders all diagnostics as "line:col: error: message" lines.
  std::string render() const {
    std::string Out;
    for (const Diagnostic &D : Diags) {
      Out += std::to_string(D.Line) + ":" + std::to_string(D.Column) +
             ": error: " + D.Message + "\n";
    }
    return Out;
  }

private:
  std::vector<Diagnostic> Diags;
};

} // namespace isp

#endif // ISPROF_VM_DIAG_H
