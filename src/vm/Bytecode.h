//===- vm/Bytecode.h - Guest bytecode and program image ---------*- C++ -*-===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The stack-machine bytecode the guest compiler targets and the
/// interpreter executes. Named variables and arrays live in *guest
/// memory* (globals region, heap, per-thread stacks) so every access is
/// an observable Read/Write event, exactly like compiled code under
/// binary instrumentation; the operand stack models registers and is
/// not instrumented. Op::BasicBlock markers are placed by the compiler
/// at structured control-flow leaders; executing one is the cost unit
/// (the paper profiles cost in basic blocks, Section 5).
///
//===----------------------------------------------------------------------===//

#ifndef ISPROF_VM_BYTECODE_H
#define ISPROF_VM_BYTECODE_H

#include "instr/SymbolTable.h"
#include "trace/Event.h"

#include <cstdint>
#include <string>
#include <vector>

namespace isp {

enum class Op : uint8_t {
  Nop,
  /// Cost marker: bumps the thread's basic-block counter.
  BasicBlock,
  /// Push immediate A.
  PushConst,
  /// Discard the top of the operand stack.
  Pop,
  /// Guest-memory loads/stores. A = local slot or global address.
  LoadLocal,
  StoreLocal,
  LoadGlobal,
  StoreGlobal,
  /// Pops index then base; pushes mem[base + index].
  LoadIndirect,
  /// Pops value, index, base; mem[base + index] = value.
  StoreIndirect,
  /// Pops size; extends the current frame by that many cells and pushes
  /// the base address ("var a[n];" inside a function).
  AllocaArray,
  // Arithmetic/logic: binary ops pop rhs then lhs and push the result.
  Add,
  Sub,
  Mul,
  Div,
  Mod,
  Lt,
  Le,
  Gt,
  Ge,
  Eq,
  Ne,
  Neg,
  Not,
  /// Pops X, pushes (X != 0).
  ToBool,
  /// Unconditional jump to pc A.
  Jump,
  /// Pops condition; jumps to A when it is zero / non-zero.
  JumpIfFalse,
  JumpIfTrue,
  /// Calls function index A with B arguments (popped rhs-last).
  Call,
  /// Calls builtin A with B arguments.
  CallBuiltin,
  /// Spawns a thread running function index A with B arguments; pushes
  /// the new thread id.
  Spawn,
  /// Pops the return value and returns from the current activation.
  Return
};

/// X-macro over every opcode, in enum order. The threaded interpreter
/// builds its computed-goto label table from this list (one label per
/// opcode, indexed by the enum value), so the list and the enum must
/// stay in lockstep; the static_asserts below turn a reordering of
/// either into a compile error.
#define ISP_FOR_EACH_OPCODE(X)                                                 \
  X(Nop) X(BasicBlock) X(PushConst) X(Pop) X(LoadLocal) X(StoreLocal)          \
  X(LoadGlobal) X(StoreGlobal) X(LoadIndirect) X(StoreIndirect)                \
  X(AllocaArray) X(Add) X(Sub) X(Mul) X(Div) X(Mod) X(Lt) X(Le) X(Gt) X(Ge)    \
  X(Eq) X(Ne) X(Neg) X(Not) X(ToBool) X(Jump) X(JumpIfFalse) X(JumpIfTrue)     \
  X(Call) X(CallBuiltin) X(Spawn) X(Return)

namespace detail {
enum : unsigned {
#define ISP_OP_ORDINAL(NAME) OpListOrdinal_##NAME,
  ISP_FOR_EACH_OPCODE(ISP_OP_ORDINAL)
#undef ISP_OP_ORDINAL
  OpListSize
};
#define ISP_OP_ORDER_CHECK(NAME)                                               \
  static_assert(static_cast<unsigned>(Op::NAME) == OpListOrdinal_##NAME,       \
                "ISP_FOR_EACH_OPCODE out of sync with enum Op");
ISP_FOR_EACH_OPCODE(ISP_OP_ORDER_CHECK)
#undef ISP_OP_ORDER_CHECK
} // namespace detail

/// Number of Op enumerators.
inline constexpr unsigned NumOpcodes = detail::OpListSize;

/// Builtin routines provided by the VM runtime.
enum class Builtin : uint8_t {
  Print,       ///< print(x): appends "x\n" to the run output; returns x.
  Alloc,       ///< alloc(n): allocates n heap cells, returns base address.
  Free,        ///< free(p): releases a heap block (no reuse).
  SysRead,     ///< sysread(fd, buf, n): kernel fills buf from device fd.
  SysWrite,    ///< syswrite(fd, buf, n): kernel sends buf to device fd.
  SemCreate,   ///< sem_create(init): new semaphore, returns its id.
  SemWait,     ///< sem_wait(s): P operation; blocks while the count is 0.
  SemPost,     ///< sem_post(s): V operation; wakes blocked waiters.
  LockCreate,  ///< lock_create(): binary semaphore initialized to 1.
  LockAcquire, ///< lock_acquire(l).
  LockRelease, ///< lock_release(l).
  Join,        ///< join(t): blocks until thread t ends; returns its result.
  Rand,        ///< rand(bound): deterministic uniform value in [0, bound).
  Yield,       ///< yield(): voluntarily ends the scheduling quantum.
  Load,        ///< load(addr): raw guest-memory read.
  Store,       ///< store(addr, v): raw guest-memory write; returns v.
  ThreadId     ///< thread_id(): id of the calling thread.
};

/// Returns the builtin for \p Name, or ~0u cast if unknown.
bool lookupBuiltin(const std::string &Name, Builtin &Out, unsigned &Arity);

/// Number of Builtin enumerators (bounds-check helper for the verifier).
inline constexpr unsigned NumBuiltins =
    static_cast<unsigned>(Builtin::ThreadId) + 1;

/// Argument count of \p B, or -1 when the raw value is not a builtin.
int builtinArity(int64_t B);

struct Instr {
  Op Opcode = Op::Nop;
  int64_t A = 0;
  int64_t B = 0;
};

struct Function {
  std::string Name;
  RoutineId Id = 0;
  unsigned NumParams = 0;
  /// Total frame slots (params + every declared local).
  unsigned NumLocals = 0;
  std::vector<Instr> Code;
};

/// One global scalar initializer (address, value).
struct GlobalInit {
  Addr Address = 0;
  int64_t Value = 0;
};

/// Layout record for one global array: the named cell holding the base
/// pointer and the storage range it points at. Emitted by the compiler
/// so static analyses can reason about which indirect accesses land in
/// which array without re-deriving the layout from GlobalInits.
struct GlobalArrayInfo {
  std::string Name;
  Addr Cell = 0;       ///< named cell that holds the base address
  Addr Base = 0;       ///< first storage cell
  uint64_t Cells = 0;  ///< storage extent in cells
};

/// Name record for one global scalar cell (arrays are in GlobalArrays),
/// emitted so diagnostics — lint warnings, verifier errors — can name
/// the cell instead of printing a bare address.
struct GlobalVarInfo {
  std::string Name;
  Addr Cell = 0;
};

/// A compiled guest program.
struct Program {
  std::vector<Function> Functions;
  /// Routine names for reporting; ids match Function::Id.
  SymbolTable Symbols;
  /// Number of cells in the globals region (variables + array storage).
  uint64_t GlobalCells = 0;
  /// Startup initialization (scalar values and array base addresses),
  /// applied by the loader before main runs, without events.
  std::vector<GlobalInit> GlobalInits;
  /// Global array layout, in declaration order (see GlobalArrayInfo).
  std::vector<GlobalArrayInfo> GlobalArrays;
  /// Global scalar names, in declaration order.
  std::vector<GlobalVarInfo> GlobalVars;
  /// Index of "main" in Functions.
  size_t EntryIndex = 0;

  const Function *findFunction(const std::string &Name) const {
    for (const Function &F : Functions)
      if (F.Name == Name)
        return &F;
    return nullptr;
  }
};

/// Base address of the globals region (address 0 is reserved so that a
/// zero value never aliases a valid cell). The guest address space is
/// deliberately compact — globals below 2^22, heap in [2^22, 2^24),
/// stacks above 2^24 — so shadow memories stay proportional to memory
/// actually used.
inline constexpr Addr GlobalBase = 16;
/// Base address of the heap region.
inline constexpr Addr HeapBase = Addr(1) << 22;
/// Base address of the per-thread stack regions; thread t's stack starts
/// at StackRegionBase + t * StackRegionStride.
inline constexpr Addr StackRegionBase = Addr(1) << 24;
inline constexpr Addr StackRegionStride = Addr(1) << 17;

} // namespace isp

#endif // ISPROF_VM_BYTECODE_H
