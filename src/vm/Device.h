//===- vm/Device.h - External device model ----------------------*- C++ -*-===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Simulates the external world behind the guest's sysread/syswrite
/// system calls (disk files, network sockets). Each descriptor is an
/// independent stream: reads deliver either test-provided content or a
/// deterministic pseudo-random sequence; writes are counted and the tail
/// retained for assertions. This is the stand-in for the paper's real
/// I/O (MySQL table files, vips image data) — what matters to the
/// profiler is that the kernel deposits fresh values into guest buffers,
/// which sysread models faithfully via KernelWrite events.
///
//===----------------------------------------------------------------------===//

#ifndef ISPROF_VM_DEVICE_H
#define ISPROF_VM_DEVICE_H

#include "support/Random.h"

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <vector>

namespace isp {

class ExternalDevice {
public:
  explicit ExternalDevice(uint64_t Seed = 7) : Seed(Seed) {}

  /// Preloads explicit content for descriptor \p Fd; reads consume it
  /// first, then fall back to the generated stream.
  void preload(int64_t Fd, std::vector<int64_t> Values);

  /// Reads the next value from descriptor \p Fd.
  int64_t readValue(int64_t Fd);

  /// Accepts one value written to descriptor \p Fd.
  void writeValue(int64_t Fd, int64_t Value);

  uint64_t valuesRead(int64_t Fd) const;
  uint64_t valuesWritten(int64_t Fd) const;

  /// The most recently written values on \p Fd (bounded tail).
  const std::deque<int64_t> &writtenTail(int64_t Fd) const;

private:
  struct Stream {
    std::deque<int64_t> Preloaded;
    uint64_t ReadCount = 0;
    uint64_t WriteCount = 0;
    std::deque<int64_t> Tail;
    uint64_t RngState = 0;
    bool RngInitialized = false;
  };

  Stream &stream(int64_t Fd);

  static constexpr size_t TailLimit = 256;
  uint64_t Seed;
  std::map<int64_t, Stream> Streams;
  static const std::deque<int64_t> EmptyTail;
};

} // namespace isp

#endif // ISPROF_VM_DEVICE_H
