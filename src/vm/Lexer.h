//===- vm/Lexer.h - Guest language lexer ------------------------*- C++ -*-===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written lexer for the guest language. Supports decimal integer
/// literals, identifiers/keywords, the operator set of Token.h, and
/// line comments introduced by "//".
///
//===----------------------------------------------------------------------===//

#ifndef ISPROF_VM_LEXER_H
#define ISPROF_VM_LEXER_H

#include "vm/Diag.h"
#include "vm/Token.h"

#include <string>
#include <vector>

namespace isp {

class Lexer {
public:
  Lexer(std::string Source, DiagnosticEngine &Diags);

  /// Lexes the next token (EndOfFile forever once exhausted).
  Token next();

  /// Lexes the entire input (including the trailing EndOfFile token).
  std::vector<Token> lexAll();

private:
  char peek() const;
  char peekAhead() const;
  char advance();
  bool match(char Expected);
  void skipWhitespaceAndComments();
  Token makeToken(TokenKind Kind);
  Token lexNumber();
  Token lexIdentifier();

  std::string Source;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  unsigned Line = 1;
  unsigned Column = 1;
  unsigned TokenLine = 1;
  unsigned TokenColumn = 1;
};

} // namespace isp

#endif // ISPROF_VM_LEXER_H
