//===- vm/Token.h - Guest language tokens -----------------------*- C++ -*-===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token vocabulary of the guest language ("Mini"), the small concurrent
/// imperative language whose interpreter serves as the instrumentation
/// substrate (the Valgrind stand-in). See vm/Parser.h for the grammar.
///
//===----------------------------------------------------------------------===//

#ifndef ISPROF_VM_TOKEN_H
#define ISPROF_VM_TOKEN_H

#include <cstdint>
#include <string>

namespace isp {

enum class TokenKind : uint8_t {
  // Literals and identifiers.
  Integer,
  Identifier,
  // Keywords.
  KwVar,
  KwFn,
  KwIf,
  KwElse,
  KwWhile,
  KwFor,
  KwReturn,
  KwSpawn,
  KwBreak,
  KwContinue,
  // Punctuation.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Comma,
  Semicolon,
  // Operators.
  Assign,
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Less,
  LessEqual,
  Greater,
  GreaterEqual,
  EqualEqual,
  NotEqual,
  AmpAmp,
  PipePipe,
  Bang,
  // Sentinels.
  EndOfFile,
  Error
};

/// Returns a printable token-kind name for diagnostics.
const char *tokenKindName(TokenKind Kind);

struct Token {
  TokenKind Kind = TokenKind::EndOfFile;
  /// Identifier spelling (Kind == Identifier) or error text.
  std::string Text;
  /// Literal value (Kind == Integer).
  int64_t IntValue = 0;
  unsigned Line = 0;
  unsigned Column = 0;
};

} // namespace isp

#endif // ISPROF_VM_TOKEN_H
