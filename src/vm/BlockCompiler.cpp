//===- vm/BlockCompiler.cpp - Straight-line block event templates ---------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Template construction simulates the per-instruction interpreter path
// over one straight-line run: the same event order, the same quiet-mark
// suppression, and the same adjacent-access merge rule the dispatcher's
// enqueue() applies, producing the packed words a run of the block
// would have buffered. See BlockCompiler.h for the soundness argument.
//
//===----------------------------------------------------------------------===//

#include "vm/BlockCompiler.h"

#include "analysis/CFG.h"

using namespace isp;

namespace {

/// True when \p I can be executed (and its events templated) by the
/// block fast path. Terminators, frame-changing and window-breaking
/// instructions are excluded; statically-addressed accesses must be
/// infallible once the per-block runtime gates pass. Dynamic
/// instructions (see dynamicOp) are eligible too — their events are
/// enqueued at runtime and their error exits stop before the failing
/// instruction.
bool eligibleOp(const Instr &I, uint64_t GlobalCells) {
  switch (I.Opcode) {
  case Op::Nop:
  case Op::PushConst:
  case Op::Pop:
  case Op::Add:
  case Op::Sub:
  case Op::Mul:
  case Op::Lt:
  case Op::Le:
  case Op::Gt:
  case Op::Ge:
  case Op::Eq:
  case Op::Ne:
  case Op::Neg:
  case Op::Not:
  case Op::ToBool:
  case Op::Div:
  case Op::Mod:
  case Op::LoadIndirect:
  case Op::StoreIndirect:
    return true;
  case Op::LoadLocal:
  case Op::StoreLocal:
    // Slots are frame-relative; the runtime gate bounds FrameBase +
    // MaxSlot against the thread's stack region in one compare.
    return I.A >= 0 && I.A < (int64_t(1) << 30);
  case Op::LoadGlobal:
  case Op::StoreGlobal:
    // Statically inside the globals region: the region decode cannot
    // fail, so the access is infallible.
    return I.A >= static_cast<int64_t>(GlobalBase) &&
           static_cast<uint64_t>(I.A) < GlobalBase + GlobalCells;
  default:
    return false;
  }
}

/// One logical event of the simulated run, pre-merge bookkeeping done.
struct SimRecord {
  EventKind Kind;
  bool FrameRel;
  uint64_t Base;
  uint64_t Cells;
  uint32_t TimeOff;
};

/// Compiles the run headed by the Op::BasicBlock at \p Begin, covering
/// instructions until the first ineligible opcode. The cover extends
/// through further Op::BasicBlock markers reached by fall-through
/// (their events fold statically — see the file comment in
/// BlockCompiler.h); a non-marker jump target still ends the run, as
/// does any terminator (terminators are ineligible). Returns false
/// when the cover is too short to be worth a plan.
bool compileBlockAt(const Function &Fn, size_t Begin,
                    const std::vector<bool> &Leader, uint64_t GlobalCells,
                    BlockPlan &Plan) {
  const std::vector<Instr> &Code = Fn.Code;
  size_t End = Begin + 1;
  while (End < Code.size() &&
         (Code[End].Opcode == Op::BasicBlock ||
          (!Leader[End] && eligibleOp(Code[End], GlobalCells))))
    ++End;
  // A trailing marker whose block contributes no covered instruction
  // still folds correctly, but covering it would leave the plan keyed
  // at that marker unreachable work — trim trailing markers instead.
  while (End > Begin + 1 && Code[End - 1].Opcode == Op::BasicBlock)
    --End;
  if (End - Begin < 2)
    return false; // only the marker itself — nothing to gain

  Plan.BeginPc = static_cast<uint32_t>(Begin);
  Plan.EndPc = static_cast<uint32_t>(End);

  // Simulate the slow path: event order, quiet suppression, operand
  // depth, and the dispatcher's last-event adjacency merge — split
  // into segments at each unmarked dynamic access, whose event the
  // executor enqueues at runtime between the segment splices.
  std::vector<SimRecord> Records;
  struct SimSeg {
    size_t RecBegin = 0, RecEnd = 0;
    uint32_t Merges = 0, Folds = 0, Ticks = 0;
  };
  std::vector<SimSeg> Segs(1);
  uint32_t TimeCursor = 0;
  auto tick = [&] {
    ++TimeCursor;
    ++Segs.back().Ticks;
  };
  tick(); // the BasicBlock event is enqueued at T0 + 1
  Records.push_back({EventKind::BasicBlock, false, /*Count=*/1, 0,
                     TimeCursor});

  int Depth = 0, MaxDeficit = 0, MaxDepth = 0;
  auto note = [&](const Instr &I) {
    analysis::StackEffect Effect = analysis::stackEffect(I);
    Depth -= Effect.Pops;
    if (-Depth > MaxDeficit)
      MaxDeficit = -Depth;
    Depth += Effect.Pushes;
    if (Depth > MaxDepth)
      MaxDepth = Depth;
  };
  auto access = [&](EventKind Kind, bool FrameRel, uint64_t Base,
                    bool Quiet) {
    if (Kind == EventKind::Read)
      ++Plan.Reads;
    else
      ++Plan.Writes;
    if (Quiet) {
      ++Plan.QuietSkips;
      return; // no event, no time tick (now() is never called)
    }
    tick();
    // Merging never crosses a segment boundary statically: a dynamic
    // event sits in the buffer between the segments (the runtime seam
    // decides those merges instead).
    if (Records.size() > Segs.back().RecBegin) {
      SimRecord &Last = Records.back();
      if (Last.Kind == Kind && Last.FrameRel == FrameRel &&
          Last.Base + Last.Cells == Base) {
        ++Last.Cells;
        ++Plan.InternalMerges;
        ++Segs.back().Merges;
        return;
      }
    }
    Records.push_back({Kind, FrameRel, Base, 1, TimeCursor});
  };

  for (size_t Pc = Begin + 1; Pc != End; ++Pc) {
    const Instr &I = Code[Pc];
    if (I.Opcode == Op::BasicBlock) {
      // Interior marker reached by fall-through: the dispatcher would
      // fold its event into the run's own still-open block event — no
      // barrier can sit between them inside a cover (dynamic accesses
      // are not barriers) — leaving the last-buffered event untouched.
      // Fold statically: the leading record's count grows, the marker
      // still consumes an event-time tick.
      tick();
      Records.front().Base += 1;
      ++Plan.InternalBbFolds;
      ++Segs.back().Folds;
      ++Plan.NumBlocks;
      continue;
    }
    note(I);
    switch (I.Opcode) {
    case Op::LoadLocal:
      access(EventKind::Read, /*FrameRel=*/true,
             static_cast<uint64_t>(I.A), I.B != 0);
      break;
    case Op::StoreLocal:
      access(EventKind::Write, /*FrameRel=*/true,
             static_cast<uint64_t>(I.A), I.B != 0);
      break;
    case Op::LoadGlobal:
      access(EventKind::Read, /*FrameRel=*/false,
             static_cast<uint64_t>(I.A), I.B != 0);
      break;
    case Op::StoreGlobal:
      access(EventKind::Write, /*FrameRel=*/false,
             static_cast<uint64_t>(I.A), I.B != 0);
      break;
    case Op::LoadIndirect:
    case Op::StoreIndirect:
      // Dynamic address: the access itself runs through the shared
      // memRead/memWrite at execution time (which also accounts it in
      // Stats, so Plan.Reads/Writes excludes it). Quiet-marked ones
      // are deterministically suppressed under the WindowInterrupted
      // gate — no event, no tick, no segment split. Unmarked ones emit
      // one runtime event: it ticks here, and the template splits.
      if (I.B != 0) {
        ++Plan.DynQuietSkips;
      } else {
        ++TimeCursor;
        ++Plan.NumDynEvents;
        Segs.back().RecEnd = Records.size();
        SimSeg Next;
        Next.RecBegin = Records.size();
        Segs.push_back(Next);
      }
      break;
    default:
      break; // Div/Mod and the pure stack ops: no events
    }
    if (I.Opcode == Op::LoadLocal || I.Opcode == Op::StoreLocal)
      if (I.A > Plan.MaxSlot)
        Plan.MaxSlot = I.A;
  }
  Segs.back().RecEnd = Records.size();
  Plan.NeedDepth = static_cast<uint32_t>(MaxDeficit);
  Plan.MaxGrowth = static_cast<uint32_t>(MaxDepth);
  Plan.NetEffect = Depth;
  Plan.EnqueueCount = TimeCursor;
  Plan.NumRecords = static_cast<uint32_t>(Records.size());

  // Serialize to packed words, exactly as EventEncoder::encode would
  // with an in-epoch time (no escapes; follow-on words only for
  // multi-cell runs — single-cell is the per-kind secondary default).
  for (const SimSeg &S : Segs) {
    BlockPlan::Segment Out;
    Out.WordBegin = static_cast<uint32_t>(Plan.Words.size());
    Out.NumRecords = static_cast<uint32_t>(S.RecEnd - S.RecBegin);
    Out.InternalMerges = S.Merges;
    Out.InternalBbFolds = S.Folds;
    Out.Ticks = S.Ticks;
    Out.LastMainOff =
        S.RecEnd > S.RecBegin ? Records[S.RecEnd - 1].TimeOff : 0;
    for (size_t RI = S.RecBegin; RI != S.RecEnd; ++RI) {
      const SimRecord &R = Records[RI];
      TemplateWord Main;
      Main.TimeOff = R.TimeOff;
      Main.MainMask = ~uint32_t(0);
      Main.FrameMask = R.FrameRel ? ~uint64_t(0) : 0;
      bool Follow = R.Kind != EventKind::BasicBlock && R.Cells != 1;
      Main.Word.Meta =
          static_cast<uint32_t>(R.Kind) | (Follow ? Event::FollowBit : 0);
      Main.Word.TimeLow = 0;
      Main.Word.Arg = R.Base;
      Plan.Words.push_back(Main);
      if (Follow) {
        TemplateWord FW;
        FW.Word.Meta = Event::SpecialBit | Event::FollowBit;
        FW.Word.TimeLow = 0;
        FW.Word.Arg = R.Cells;
        Plan.Words.push_back(FW);
      }
    }
    Out.WordEnd = static_cast<uint32_t>(Plan.Words.size());
    Plan.Segments.push_back(Out);
  }
  return true;
}

} // namespace

FunctionBlockPlans isp::compileFunctionBlocks(const Function &Fn,
                                              uint64_t GlobalCells) {
  FunctionBlockPlans Out;
  const std::vector<Instr> &Code = Fn.Code;
  Out.PlanIndexByPc.assign(Code.size(), -1);

  // Jump targets and post-terminator pcs end any covered run: control
  // can enter there from elsewhere, so the run past that point is not
  // straight-line. (Same leader rule as analysis::CFG, computed locally
  // to keep this a single pass.)
  std::vector<bool> Leader(Code.size() + 1, false);
  for (size_t Pc = 0; Pc != Code.size(); ++Pc) {
    const Instr &I = Code[Pc];
    if (analysis::isJumpOp(I.Opcode))
      Leader[static_cast<size_t>(I.A)] = true;
    if (analysis::isTerminatorOp(I.Opcode))
      Leader[Pc + 1] = true;
  }

  for (size_t Pc = 0; Pc != Code.size(); ++Pc) {
    if (Code[Pc].Opcode != Op::BasicBlock)
      continue;
    BlockPlan Plan;
    if (!compileBlockAt(Fn, Pc, Leader, GlobalCells, Plan))
      continue;
    Out.PlanIndexByPc[Pc] = static_cast<int32_t>(Out.Plans.size());
    Out.Plans.push_back(std::move(Plan));
  }
  return Out;
}
