//===- vm/Machine.h - Guest interpreter and scheduler -----------*- C++ -*-===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The instrumented virtual machine: executes compiled guest programs
/// with multiple guest threads under a *serializing* fair round-robin
/// scheduler (the same execution model Valgrind imposes on traced
/// multithreaded programs, Section 5), emitting the full event stream —
/// calls/returns, basic blocks, every guest-memory access, kernel-
/// mediated I/O, synchronization, thread lifecycle — to an
/// EventDispatcher. With no dispatcher attached the VM is the "native"
/// baseline the overhead benchmarks compare against.
///
//===----------------------------------------------------------------------===//

#ifndef ISPROF_VM_MACHINE_H
#define ISPROF_VM_MACHINE_H

#include "instr/Dispatcher.h"
#include "support/Compiler.h"
#include "support/Random.h"
#include "vm/BlockCompiler.h"
#include "vm/Bytecode.h"
#include "vm/Device.h"

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

namespace isp {

/// Interpreter dispatch strategy. Threaded dispatch (computed gotos with
/// per-pc pre-resolved label tables) is available on GCC/Clang builds
/// unless ISP_FORCE_SWITCH_DISPATCH compiled it out; Auto picks it when
/// available and falls back to the portable switch loop otherwise.
/// Both strategies execute identical semantics and produce byte-identical
/// event streams (property-tested).
enum class DispatchMode : uint8_t { Auto, Switch, Threaded };

/// True when this build can honor DispatchMode::Threaded.
inline constexpr bool ThreadedDispatchAvailable = ISP_DISPATCH_THREADED != 0;

struct MachineOptions {
  /// Scheduling quantum in bytecode instructions. Smaller slices
  /// interleave threads more finely (more thread switches in the trace).
  uint64_t SliceLength = 150;
  /// Safety valve against runaway guest programs.
  uint64_t MaxInstructions = uint64_t(1) << 33;
  /// Per-thread guest stack size in cells (must fit StackRegionStride).
  uint64_t StackCells = uint64_t(1) << 17;
  /// Seed for the guest rand() builtin and device streams.
  uint64_t Seed = 42;
  /// Interpreter loop selection (see DispatchMode).
  DispatchMode Dispatch = DispatchMode::Auto;
  /// Compile straight-line basic blocks into pre-compacted event batch
  /// templates executed by a block fast path (see vm/BlockCompiler.h).
  bool BlockCompile = false;
};

struct RunStats {
  uint64_t Instructions = 0;
  uint64_t BasicBlocks = 0;
  uint64_t MemReads = 0;
  uint64_t MemWrites = 0;
  uint64_t ThreadsSpawned = 0;
  uint64_t ThreadSwitches = 0;
  uint64_t HeapCellsAllocated = 0;
  /// Guest footprint in bytes (globals + heap + stacks actually touched):
  /// the "native" space baseline of the overhead comparisons.
  uint64_t GuestMemoryBytes = 0;
  /// Optimizer-marked quiet accesses whose event was actually skipped
  /// (the suppression win), vs. quiet marks *not* honored because a
  /// scheduler switch had interrupted the straight-line window (the
  /// WindowInterrupted guard firing). Both count only instrumented
  /// runs; native runs emit no events either way.
  uint64_t QuietEventsSuppressed = 0;
  uint64_t QuietWindowAborts = 0;
  /// Subset of QuietEventsSuppressed from LoadIndirect/StoreIndirect —
  /// the alias-analysis-driven marks (analysis layer, PR: static
  /// analysis) actually paying off at runtime.
  uint64_t QuietIndirectSuppressed = 0;
  /// Block fast path engagement: templated runs executed and the guest
  /// instructions they covered (the latter is included in Instructions —
  /// instruction accounting is dispatch-strategy-invariant).
  uint64_t CompiledBlockRuns = 0;
  uint64_t CompiledBlockInstrs = 0;
};

struct RunResult {
  bool Ok = false;
  std::string Error;
  int64_t ExitCode = 0;
  std::string Output;
  RunStats Stats;
};

class Machine {
public:
  /// \p Events may be null (uninstrumented run).
  Machine(const Program &Prog, EventDispatcher *Events,
          MachineOptions Opts = MachineOptions());

  /// Runs the program to completion (all threads ended) and returns the
  /// result. Call once per Machine.
  RunResult run();

  /// The simulated external world (preload test data before run()).
  ExternalDevice &device() { return Device; }

private:
  enum class ThreadStateKind : uint8_t {
    Runnable,
    BlockedSem,
    BlockedJoin,
    Finished
  };

  struct Frame {
    const Function *Fn = nullptr;
    size_t Pc = 0;
    Addr FrameBase = 0;
    /// Operand-stack height at entry (restored on return).
    size_t OperandBase = 0;
    /// Thread stack pointer to restore on return (pops allocas).
    Addr SavedSp = 0;
  };

  struct ThreadCtx {
    ThreadId Id = 0;
    ThreadId Parent = 0;
    ThreadStateKind State = ThreadStateKind::Runnable;
    std::vector<Frame> Frames;
    std::vector<int64_t> Operands;
    std::vector<int64_t> StackMemory;
    Addr StackBase = 0;
    Addr Sp = 0;
    /// Deferred start: the entry function, whose frame is pushed when
    /// the scheduler first runs the thread (arguments are pre-written
    /// into the entry frame cells by the spawning thread).
    const Function *EntryFn = nullptr;
    bool Started = false;
    SyncId WaitSync = 0;
    ThreadId WaitTid = 0;
    int64_t Result = 0;
  };

  struct Semaphore {
    int64_t Count = 0;
    /// Created by lock_create (vs sem_create): reported on sync events
    /// so lockset-based analyses can tell mutexes from semaphores.
    bool IsLock = false;
  };

  // --- EventRecord emission (no-ops when no tools are attached). ---
  bool tracing() const { return Events && Events->isActive(); }
  /// Events go through the dispatcher's batching enqueue: adjacent
  /// same-thread accesses to consecutive cells coalesce into multi-cell
  /// events and tools see one handleBatch call per scheduling point
  /// instead of one virtual fan-out per cell. TraceActive caches
  /// tracing() for the duration of run() so the hot path tests a single
  /// bool (tools cannot attach mid-run).
  void emitEvent(const EventRecord &E) {
    if (TraceActive)
      Events->enqueue(E);
  }
  uint64_t now() { return ++EventTime; }

  /// Tallies one execution of a quiet-marked access (\p MarkBit != 0)
  /// and returns the Emit flag for memRead/memWrite: suppressed when the
  /// mark is honored, a WindowInterrupted abort when a scheduler switch
  /// forced the event through. Unmarked accesses and native runs (no
  /// events either way) fall through without touching the tallies.
  bool noteQuietAccess(int64_t MarkBit) {
    if (MarkBit == 0 || !TraceActive)
      return true;
    if (WindowInterrupted) {
      ++Stats.QuietWindowAborts;
      return true;
    }
    ++Stats.QuietEventsSuppressed;
    return false;
  }

  // --- Guest memory. ---
  bool decodeAddress(Addr A, int64_t *&Cell);
  /// memRead/memWrite are force-inlined with a fast path for the
  /// accessing thread's own stack (the dominant case): locals resolve
  /// with one subtract and one bounds compare, no region decode.
  /// \p Emit false performs the access (and counts it in Stats) without
  /// emitting an event — used for optimizer-marked quiet accesses whose
  /// event is provably redundant (see vm/Optimizer.h).
  bool memRead(ThreadCtx &T, Addr A, int64_t &Value, bool Emit = true);
  bool memWrite(ThreadCtx &T, Addr A, int64_t Value, bool Emit = true);
  /// Kernel-side accesses: no thread Read/Write events (the syscall
  /// wrapper emits KernelRead/KernelWrite instead).
  bool rawRead(Addr A, int64_t &Value);
  bool rawWrite(Addr A, int64_t Value);

  // --- Thread and frame management. ---
  ThreadCtx &newThread(ThreadId Parent, const Function *Fn);
  /// Pushes an activation of \p Fn onto \p T. When \p NumArgs is nonzero
  /// the argument values are first spilled into the parameter cells with
  /// Write events attributed to the *current* topmost activation (the
  /// caller), so the callee's parameter reads register as its input —
  /// matching how compiled code stores arguments before the call
  /// instruction. Returns false on stack overflow.
  bool pushFrame(ThreadCtx &T, const Function *Fn, const int64_t *Args,
                 size_t NumArgs);
  void finishThread(ThreadCtx &T, int64_t Result);
  void wakeJoiners(ThreadId Ended);
  void wakeSemWaiters(SyncId Sem);

  // --- Execution. ---
  /// Executes up to SliceLength instructions of thread \p T — the
  /// fetch-execute loop itself, with the current frame cached across
  /// instructions. Returns false when the machine must stop (error or
  /// program end). Dispatches to the switch or threaded loop variant;
  /// both are generated from vm/MachineInterp.inc.
  bool runSlice(ThreadCtx &T);
  bool runSliceSwitch(ThreadCtx *T);
#if ISP_DISPATCH_THREADED
  /// Computed-goto variant; its per-opcode label table is a static
  /// local (labels-as-values are only visible inside the defining
  /// function).
  bool runSliceThreaded(ThreadCtx *T);
#endif
  /// Block fast path: executes the compiled template headed by the
  /// Op::BasicBlock at \p InstrPc when every runtime gate passes, and
  /// splices its pre-compacted events into the dispatcher. Returns the
  /// number of *extra* instructions retired beyond the marker itself
  /// (so the caller adds it to the tally), or 0 when the slow path must
  /// run the block instead. \p BudgetLeft is the slice budget remaining
  /// after the marker. Deliberately out-of-line: inlined into the
  /// interpreter loops it bloats their frames enough to slow the
  /// per-instruction dispatch itself (one call per Op::BasicBlock is
  /// noise next to that).
  ISP_NOINLINE uint64_t tryCompiledBlock(ThreadCtx &T, Frame &F,
                                         size_t InstrPc, uint64_t BudgetLeft);
  /// Stop-before-failure exit for a compiled run whose dynamic
  /// instruction failed at \p FailPc: retroactively accounts the
  /// executed prefix [InstrPc, FailPc) and hands back the covered
  /// quotient (see tryCompiledBlock). \p Sp is the run's live operand
  /// cursor. Cold: reached at most once per run, kept out of the fast
  /// path's text entirely.
  ISP_COLD uint64_t compiledBlockFail(ThreadCtx &T, Frame &F, size_t InstrPc,
                                      size_t FailPc, int64_t *Sp);
  size_t functionIndex(const Function *Fn) const {
    return static_cast<size_t>(Fn - Prog.Functions.data());
  }
  bool handleBuiltin(ThreadCtx &T, Builtin B, unsigned NumArgs);
  void runtimeError(const std::string &Message);

  const Program &Prog;
  EventDispatcher *Events;
  MachineOptions Options;
  ExternalDevice Device;
  Rng GuestRng;

  std::vector<int64_t> Globals;
  std::vector<int64_t> Heap;
  uint64_t HeapNext = 0;
  /// deque: spawn must not invalidate references to running threads.
  std::deque<ThreadCtx> ThreadList;
  std::vector<Semaphore> Semaphores;

  /// Dispatch/block-compile state resolved at construction.
  bool UseThreaded = false;
  bool BlockCompileActive = false;
  std::vector<FunctionBlockPlans> BlockPlans;

  uint64_t EventTime = 0;
  bool TraceActive = false;
  bool YieldRequested = false;
  /// True while the running thread may have been scheduled *into* the
  /// middle of a straight-line window: set whenever the scheduler
  /// switches threads (a counter-bump point that makes statically
  /// redundant events meaningful again), cleared when the running thread
  /// executes any window-breaking instruction (jump, call, builtin,
  /// spawn, return) — the points where the optimizer starts a fresh
  /// window anyway. Optimizer-marked quiet accesses are honored only
  /// while this is false: between a quiet access and its in-window
  /// covering access there are no breaking instructions by construction,
  /// so an interruption between them leaves the flag set until past the
  /// quiet access. Starts true (nothing has run yet).
  bool WindowInterrupted = true;
  /// Reused per Call/Spawn argument staging area; avoids a heap
  /// allocation per guest call (a measurable cost on call-dense guests).
  std::vector<int64_t> ArgScratch;
  RunStats Stats;
  std::string Output;
  std::string Error;
  bool Failed = false;
  bool MainReturned = false;
  int64_t MainResult = 0;
};

/// Convenience: compile \p Source and run it under \p Events. On compile
/// errors the result carries the rendered diagnostics in Error. Callers
/// that need the program's SymbolTable after the run should compile with
/// compileProgram() and keep the Program alive instead.
RunResult compileAndRun(const std::string &Source, EventDispatcher *Events,
                        MachineOptions Opts = MachineOptions());

} // namespace isp

#endif // ISPROF_VM_MACHINE_H
