//===- bench/bench_micro.cpp - google-benchmark microbenchmarks ------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Per-component microbenchmarks (google-benchmark): shadow memory
// get/set, the profiler's per-event costs on characteristic event mixes,
// trace merging throughput, synthetic generation, and raw VM
// interpretation speed. These are the numbers behind the macro tables:
// e.g. aprof-trms's slowdown over nulgrind is its per-memory-event cost
// times the workload's event density.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "core/NaiveProfiler.h"
#include "core/RmsProfiler.h"
#include "core/TrmsProfiler.h"
#include "instr/Dispatcher.h"
#include "shadow/ShadowMemory.h"
#include "support/Random.h"
#include "trace/Synthetic.h"
#include "trace/TraceMerger.h"
#include "vm/Machine.h"
#include "workloads/Runner.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

using namespace isp;

//===----------------------------------------------------------------------===//
// Shadow memories
//===----------------------------------------------------------------------===//

static void BM_ShadowThreeLevelSet(benchmark::State &State) {
  ThreeLevelShadow<uint64_t> Shadow;
  Rng R(1);
  uint64_t Range = static_cast<uint64_t>(State.range(0));
  for (auto _ : State)
    Shadow.set(R.nextBelow(Range), 42);
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_ShadowThreeLevelSet)->Arg(1 << 12)->Arg(1 << 20)->Arg(1 << 26);

static void BM_ShadowThreeLevelGet(benchmark::State &State) {
  ThreeLevelShadow<uint64_t> Shadow;
  uint64_t Range = static_cast<uint64_t>(State.range(0));
  for (uint64_t A = 0; A < Range; A += 7)
    Shadow.set(A, A);
  Rng R(2);
  uint64_t Sink = 0;
  for (auto _ : State)
    Sink += Shadow.get(R.nextBelow(Range));
  benchmark::DoNotOptimize(Sink);
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_ShadowThreeLevelGet)->Arg(1 << 12)->Arg(1 << 20)->Arg(1 << 26);

static void BM_ShadowDenseSet(benchmark::State &State) {
  DenseShadow<uint64_t> Shadow;
  Rng R(1);
  uint64_t Range = static_cast<uint64_t>(State.range(0));
  for (auto _ : State)
    Shadow.set(R.nextBelow(Range), 42);
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_ShadowDenseSet)->Arg(1 << 12)->Arg(1 << 20)->Arg(1 << 26);

//===----------------------------------------------------------------------===//
// Profiler event costs
//===----------------------------------------------------------------------===//

/// Replays a pre-generated trace repeatedly through a fresh profiler.
template <typename ProfilerT>
static void replayBenchmark(benchmark::State &State,
                            const SyntheticTraceOptions &Gen) {
  std::vector<EventRecord> Trace = generateSyntheticTrace(Gen);
  for (auto _ : State) {
    ProfilerT Profiler;
    replayTrace(Trace, Profiler);
    benchmark::DoNotOptimize(Profiler.database().totalActivations());
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(Trace.size()));
}

static SyntheticTraceOptions mixFor(int Threads) {
  SyntheticTraceOptions Gen;
  Gen.NumThreads = static_cast<unsigned>(Threads);
  Gen.NumOperations = 30000;
  Gen.SharedAddresses = 256;
  Gen.PrivateAddresses = 64;
  Gen.Seed = 7;
  return Gen;
}

static void BM_TrmsProfilerReplay(benchmark::State &State) {
  replayBenchmark<TrmsProfiler>(State, mixFor(State.range(0)));
}
BENCHMARK(BM_TrmsProfilerReplay)->Arg(1)->Arg(4)->Arg(16);

static void BM_RmsProfilerReplay(benchmark::State &State) {
  replayBenchmark<RmsProfiler>(State, mixFor(State.range(0)));
}
BENCHMARK(BM_RmsProfilerReplay)->Arg(1)->Arg(4)->Arg(16);

static void BM_NaiveProfilerReplay(benchmark::State &State) {
  replayBenchmark<NaiveTrmsProfiler>(State, mixFor(State.range(0)));
}
BENCHMARK(BM_NaiveProfilerReplay)->Arg(1)->Arg(4)->Arg(16);

/// Read-dominated mix with kernel writes: the induced-access hot path.
static void BM_TrmsInducedHeavy(benchmark::State &State) {
  SyntheticTraceOptions Gen = mixFor(4);
  Gen.KernelWriteProbability = 0.2;
  Gen.WriteProbability = 0.1;
  Gen.SharedProbability = 0.95;
  replayBenchmark<TrmsProfiler>(State, Gen);
}
BENCHMARK(BM_TrmsInducedHeavy);

/// Renumbering in the loop: a deliberately small counter.
static void BM_TrmsWithRenumbering(benchmark::State &State) {
  std::vector<EventRecord> Trace = generateSyntheticTrace(mixFor(4));
  for (auto _ : State) {
    TrmsProfilerOptions Opts;
    Opts.CounterLimit = uint64_t(1) << State.range(0);
    TrmsProfiler Profiler(Opts);
    replayTrace(Trace, Profiler);
    benchmark::DoNotOptimize(Profiler.renumberings());
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(Trace.size()));
}
BENCHMARK(BM_TrmsWithRenumbering)->Arg(12)->Arg(16)->Arg(32);

//===----------------------------------------------------------------------===//
// Trace infrastructure
//===----------------------------------------------------------------------===//

static void BM_TraceMerge(benchmark::State &State) {
  SyntheticTraceOptions Gen = mixFor(static_cast<int>(State.range(0)));
  auto PerThread = splitByThread(generateSyntheticTrace(Gen));
  for (auto _ : State) {
    auto Merged = mergeTraces(PerThread);
    benchmark::DoNotOptimize(Merged.size());
  }
  State.SetItemsProcessed(State.iterations() * 30000);
}
BENCHMARK(BM_TraceMerge)->Arg(2)->Arg(8);

static void BM_SyntheticGeneration(benchmark::State &State) {
  SyntheticTraceOptions Gen = mixFor(4);
  for (auto _ : State) {
    Gen.Seed += 1;
    auto Trace = generateSyntheticTrace(Gen);
    benchmark::DoNotOptimize(Trace.size());
  }
  State.SetItemsProcessed(State.iterations() * 30000);
}
BENCHMARK(BM_SyntheticGeneration);

//===----------------------------------------------------------------------===//
// VM substrate
//===----------------------------------------------------------------------===//

static void BM_VmNativeExecution(benchmark::State &State) {
  const WorkloadInfo *W = findWorkload("md");
  WorkloadParams Params;
  Params.Threads = 4;
  Params.Size = 48;
  std::optional<Program> Prog = compileWorkload(*W, Params);
  for (auto _ : State) {
    Machine M(*Prog, nullptr);
    RunResult R = M.run();
    benchmark::DoNotOptimize(R.Stats.Instructions);
    State.SetItemsProcessed(State.items_processed() +
                            static_cast<int64_t>(R.Stats.Instructions));
  }
}
BENCHMARK(BM_VmNativeExecution);

static void BM_VmInstrumentedExecution(benchmark::State &State) {
  const WorkloadInfo *W = findWorkload("md");
  WorkloadParams Params;
  Params.Threads = 4;
  Params.Size = 48;
  std::optional<Program> Prog = compileWorkload(*W, Params);
  uint64_t Emitted = 0;
  uint64_t Delivered = 0;
  for (auto _ : State) {
    TrmsProfiler Profiler;
    EventDispatcher Dispatcher;
    Dispatcher.addTool(&Profiler);
    Machine M(*Prog, &Dispatcher);
    RunResult R = M.run();
    benchmark::DoNotOptimize(R.Stats.Instructions);
    State.SetItemsProcessed(State.items_processed() +
                            static_cast<int64_t>(R.Stats.Instructions));
    Emitted += Dispatcher.enqueuedEvents();
    Delivered += Dispatcher.deliveredEvents();
  }
  State.counters["emitted_events/s"] = benchmark::Counter(
      static_cast<double>(Emitted), benchmark::Counter::kIsRate);
  State.counters["delivered_events/s"] = benchmark::Counter(
      static_cast<double>(Delivered), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_VmInstrumentedExecution);

static void BM_GuestCompilation(benchmark::State &State) {
  const WorkloadInfo *W = findWorkload("dbserver");
  WorkloadParams Params;
  Params.Threads = 4;
  Params.Size = 64;
  for (auto _ : State) {
    std::optional<Program> Prog = compileWorkload(*W, Params);
    benchmark::DoNotOptimize(Prog->Functions.size());
  }
}
BENCHMARK(BM_GuestCompilation);

//===----------------------------------------------------------------------===//
// Trace serialization formats
//===----------------------------------------------------------------------===//

#include "trace/TraceFile.h"

static TraceData makeTraceData() {
  TraceData Data;
  Data.Routines = {{0, "main"}, {1, "worker"}};
  Data.Events = generateSyntheticTrace(mixFor(4));
  return Data;
}

static void BM_TraceSerializeRaw(benchmark::State &State) {
  TraceData Data = makeTraceData();
  for (auto _ : State) {
    std::string Bytes = serializeTrace(Data, TraceFormat::Raw);
    benchmark::DoNotOptimize(Bytes.size());
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(Data.Events.size()));
}
BENCHMARK(BM_TraceSerializeRaw);

static void BM_TraceSerializeCompressed(benchmark::State &State) {
  TraceData Data = makeTraceData();
  size_t Raw = serializeTrace(Data, TraceFormat::Raw).size();
  size_t Compressed = serializeTrace(Data, TraceFormat::Compressed).size();
  for (auto _ : State) {
    std::string Bytes = serializeTrace(Data, TraceFormat::Compressed);
    benchmark::DoNotOptimize(Bytes.size());
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(Data.Events.size()));
  State.counters["compression"] =
      static_cast<double>(Raw) / static_cast<double>(Compressed);
}
BENCHMARK(BM_TraceSerializeCompressed);

static void BM_TraceDeserializeCompressed(benchmark::State &State) {
  TraceData Data = makeTraceData();
  std::string Bytes = serializeTrace(Data, TraceFormat::Compressed);
  for (auto _ : State) {
    TraceData Back;
    bool Ok = deserializeTrace(Bytes, Back);
    benchmark::DoNotOptimize(Ok);
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(Data.Events.size()));
}
BENCHMARK(BM_TraceDeserializeCompressed);

// Custom main: after the microbenchmarks run, emit the machine-readable
// hot-path report (events/sec under nulgrind, aprof-rms, aprof-trms) to
// bench_out/BENCH_hotpath.json. Use --benchmark_filter to narrow or skip
// the google-benchmark suites; the report is always written.
int main(int argc, char **argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  // ISPROF_BENCH_REPEATS trims the best-of-N timing loops (CI smoke
  // runs use 1); the default stays the statistically steadier 5.
  unsigned Repeats = 5;
  if (const char *Env = std::getenv("ISPROF_BENCH_REPEATS")) {
    char *End = nullptr;
    long N = std::strtol(Env, &End, 10);
    if (End != Env && *End == '\0' && N > 0 && N <= 100)
      Repeats = static_cast<unsigned>(N);
  }
  std::string Path = writeHotpathReport(Repeats);
  if (Path.empty())
    return 1;
  std::printf("hot-path report written to %s\n", Path.c_str());
  return 0;
}
