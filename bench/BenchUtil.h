//===- bench/BenchUtil.h - Shared benchmark harness pieces ------*- C++ -*-===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared machinery for the table/figure reproduction harnesses: the
/// evaluated-tool registry (native baseline, nulgrind, memcheck,
/// callgrind, helgrind, aprof-rms, aprof-trms — the paper's Table 1
/// line-up), wall-clock measurement of a workload under a tool, and
/// small output helpers.
///
//===----------------------------------------------------------------------===//

#ifndef ISPROF_BENCH_BENCHUTIL_H
#define ISPROF_BENCH_BENCHUTIL_H

#include "core/ProfileData.h"
#include "instr/Tool.h"
#include "vm/Machine.h"
#include "workloads/Workload.h"

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

namespace isp {

/// The evaluated tools, in the paper's Table 1 column order. Native is
/// the uninstrumented VM run every slowdown is relative to.
extern const std::vector<std::string> EvaluatedToolNames;

/// Creates a fresh tool by name; null for "native".
std::unique_ptr<Tool> makeEvaluatedTool(const std::string &Name);

/// One measured workload-under-tool execution.
struct Measurement {
  bool Ok = false;
  std::string Error;
  double Seconds = 0;
  /// Analysis-state footprint (0 for native/nulgrind).
  uint64_t ToolBytes = 0;
  /// Guest program footprint (globals + heap + touched stacks).
  uint64_t GuestBytes = 0;
  /// Substrate events emitted into the dispatcher (pre-compaction) and
  /// delivered to the tool (post-compaction) during the kept run; both
  /// 0 for native, where no dispatcher is attached.
  uint64_t EventsEmitted = 0;
  uint64_t EventsDelivered = 0;
  /// Pipeline observability breakdown of the kept run (all 0 for
  /// native). EventsEmitted == EventsDelivered + AccessMerges + BbFolds,
  /// and the suppression tallies split the quiet-mark wins from the
  /// WindowInterrupted aborts — the same counters the obs registry
  /// aggregates, surfaced per-measurement here.
  uint64_t AccessMerges = 0;
  uint64_t BbFolds = 0;
  uint64_t FlushesCapacity = 0;
  uint64_t FlushesExplicit = 0;
  uint64_t FlushesFinish = 0;
  RunStats Stats;
  /// Populated only for the aprof tools.
  ProfileDatabase Profile;
  SymbolTable Symbols;
};

/// Compiles and runs \p Workload at \p Params under \p ToolName,
/// measuring wall-clock time and footprints. \p Repeats re-runs and
/// keeps the fastest time (variance control on a shared machine).
Measurement measureWorkload(const WorkloadInfo &Workload,
                            const WorkloadParams &Params,
                            const std::string &ToolName,
                            unsigned Repeats = 1,
                            MachineOptions MachineOpts = MachineOptions());

/// Like measureWorkload, but attaches every tool in \p ToolNames to one
/// dispatcher. \p ParallelWorkers > 0 turns on parallel tool fan-out
/// with that many worker threads; 0 keeps serial in-line delivery.
/// ToolBytes sums all tools' footprints; Profile/Symbols stay empty.
Measurement measureWorkloadMulti(const WorkloadInfo &Workload,
                                 const WorkloadParams &Params,
                                 const std::vector<std::string> &ToolNames,
                                 unsigned Repeats = 1,
                                 unsigned ParallelWorkers = 0,
                                 MachineOptions MachineOpts = MachineOptions());

/// Names of the workloads in a suite, in registry order.
std::vector<std::string> workloadsInSuite(const std::string &Suite);

/// Ensures ./bench_out exists and returns "bench_out/<Name>".
std::string benchOutputPath(const std::string &Name);

/// Prints a banner for a reproduced table/figure.
void printBanner(const std::string &Title);

/// Measures the event-pipeline hot path on a representative workload
/// under nulgrind (instrumentation-only baseline), aprof-rms, and
/// aprof-trms, and writes machine-readable per-config timings, event
/// counts, and events/sec to bench_out/BENCH_hotpath.json. Also sweeps
/// a four-tool set (aprof-trms, aprof-rms, memcheck, callgrind) over
/// serial delivery and parallel fan-out with 1/2/4 workers, reporting
/// events/sec and speedup vs serial per worker count. Returns the path
/// written, or "" on failure.
std::string writeHotpathReport(unsigned Repeats = 5);

/// Writes the "interp_dispatch" object of BENCH_hotpath.json into \p F:
/// wall-clock interpreter rows for the full aprof-trms pipeline under
/// switch dispatch, threaded dispatch, and the block compiler (both
/// dispatch modes), each with seconds, slowdown vs native, emitted
/// events/sec, and speedup vs the switch baseline — the numbers the
/// hot-path-v2 acceptance gate (threaded+block >= 1.3x switch) and the
/// bench-smoke CI assert (threaded >= switch) read. Returns false
/// (after a diagnostic) on failure.
bool writeInterpDispatchSection(FILE *F, unsigned Repeats);

/// Writes the "quiet_indirect" object of BENCH_hotpath.json into \p F:
/// static quiet-mark counts from the alias-driven optimizer pass,
/// runtime suppression tallies, and the marked-vs-stripped event-count
/// and events/sec delta on the same optimized program. Returns false
/// (after printing a diagnostic) on failure.
bool writeQuietIndirectSection(FILE *F, unsigned Repeats);

/// Writes the "streaming" object of BENCH_hotpath.json into \p F:
/// records the same workload at a small and a >=10x-larger event count
/// through the chunked stream writer, reporting file bytes, the
/// writer's peak buffered bytes (which must stay flat — the
/// bounded-memory claim) against the in-memory recording vector's
/// growth, and replay events/sec for the streaming reader vs the
/// in-memory reader. Returns false (after a diagnostic) on failure.
bool writeStreamingSection(FILE *F, unsigned Repeats);

/// Writes the "parallel_replay" object of BENCH_hotpath.json into \p F:
/// records a workload into a chunked stream, replays it serially under
/// aprof-trms, then through the shard-partitioned parallel replay
/// engine at 1/2/4 workers, reporting events/sec and speedup vs serial
/// per worker count plus whether every parallel report was
/// byte-identical to the serial one. hardware_concurrency is recorded
/// because the speedup column is only meaningful on a multi-core host.
/// Returns false (after a diagnostic) on failure.
bool writeParallelReplaySection(FILE *F, unsigned Repeats);

/// Writes the "batch_capacity" array of BENCH_hotpath.json into \p F:
/// the dispatcher hot path under aprof-trms swept over pending-batch
/// capacities, reporting seconds, delivered events/sec, and flush
/// counts per capacity. Returns false (after a diagnostic) on failure.
bool writeBatchCapacitySection(FILE *F, unsigned Repeats);

/// Writes the "collector" object of BENCH_hotpath.json into \p F:
/// records several chunked streams of one workload, then measures the
/// fleet collector's concurrent ingest throughput (streams/sec and
/// events/sec into one rollup store) and a routine-filtered pass over
/// the same streams, reporting the footer-bitmap chunk-skip ratio for
/// the rarest-active routine. Returns false (after a diagnostic) on
/// failure.
bool writeCollectorSection(FILE *F, unsigned Repeats);

} // namespace isp

#endif // ISPROF_BENCH_BENCHUTIL_H
