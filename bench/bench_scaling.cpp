//===- bench/bench_scaling.cpp - Reproduces the paper's Figure 14 ----------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Figure 14: average (a) time and (b) space overhead, relative to
// nulgrind, as a function of the number of spawned worker threads
// (1, 2, 4, 8, 16), over a set of OMP2012-like benchmarks.
//
// Expected shape: all tools scale smoothly with thread count; memcheck
// and callgrind space is ~flat (thread-independent analyses) while
// aprof-trms and helgrind grow modestly (per-thread shadow state whose
// total stays sublinear because threads partition the touched memory —
// the paper's three-level-table argument).
//
// Usage: bench_scaling [--size=72] [--benchmarks=md,ilbdc,fma3d,smithwa]
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "support/CommandLine.h"
#include "support/Csv.h"
#include "support/Format.h"
#include "support/Stats.h"
#include "support/Table.h"

#include <cstdio>

using namespace isp;

static std::vector<std::string> splitList(const std::string &Csv) {
  std::vector<std::string> Out;
  size_t Pos = 0;
  while (Pos <= Csv.size()) {
    size_t Comma = Csv.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = Csv.size();
    if (Comma > Pos)
      Out.push_back(Csv.substr(Pos, Comma - Pos));
    Pos = Comma + 1;
  }
  return Out;
}

int main(int Argc, char **Argv) {
  OptionParser Options("Reproduces Figure 14: overhead vs thread count");
  Options.addOption("size", "72", "problem scale");
  Options.addOption("benchmarks", "md,ilbdc,fma3d,smithwa",
                    "comma-separated workload names");
  if (!Options.parse(Argc, Argv))
    return 1;

  std::vector<std::string> Benchmarks =
      splitList(Options.getString("benchmarks"));
  const unsigned ThreadCounts[] = {1, 2, 4, 8, 16};

  printBanner("Figure 14: overhead vs number of threads (relative to "
              "nulgrind)");

  CsvWriter Csv;
  Csv.addRow({"threads", "tool", "mean_slowdown_vs_nulgrind",
              "mean_space_vs_nulgrind"});

  TextTable TimeTable, SpaceTable;
  std::vector<std::string> Header = {"threads"};
  for (const std::string &ToolName : EvaluatedToolNames)
    if (ToolName != "native" && ToolName != "nulgrind")
      Header.push_back(ToolName);
  TimeTable.setHeader(Header);
  SpaceTable.setHeader(Header);

  for (unsigned Threads : ThreadCounts) {
    WorkloadParams Params;
    Params.Threads = Threads;
    Params.Size = static_cast<uint64_t>(Options.getInt("size"));

    // Per benchmark: nulgrind baseline, then each tool.
    std::map<std::string, std::vector<double>> TimeRatios, SpaceRatios;
    for (const std::string &Benchmark : Benchmarks) {
      const WorkloadInfo *W = findWorkload(Benchmark);
      if (!W) {
        std::fprintf(stderr, "unknown benchmark %s\n", Benchmark.c_str());
        return 1;
      }
      Measurement Nul = measureWorkload(*W, Params, "nulgrind");
      if (!Nul.Ok) {
        std::fprintf(stderr, "%s: %s\n", Benchmark.c_str(),
                     Nul.Error.c_str());
        return 1;
      }
      double NulBytes =
          static_cast<double>(Nul.GuestBytes + Nul.ToolBytes);
      for (const std::string &ToolName : EvaluatedToolNames) {
        if (ToolName == "native" || ToolName == "nulgrind")
          continue;
        Measurement M = measureWorkload(*W, Params, ToolName);
        if (!M.Ok) {
          std::fprintf(stderr, "%s under %s: %s\n", Benchmark.c_str(),
                       ToolName.c_str(), M.Error.c_str());
          return 1;
        }
        TimeRatios[ToolName].push_back(
            Nul.Seconds > 0 ? M.Seconds / Nul.Seconds : 0.0);
        SpaceRatios[ToolName].push_back(
            NulBytes > 0
                ? static_cast<double>(M.GuestBytes + M.ToolBytes) /
                      NulBytes
                : 0.0);
      }
    }

    std::vector<std::string> TimeRow = {std::to_string(Threads)};
    std::vector<std::string> SpaceRow = {std::to_string(Threads)};
    for (const std::string &ToolName : EvaluatedToolNames) {
      if (ToolName == "native" || ToolName == "nulgrind")
        continue;
      double MeanTime = geometricMean(TimeRatios[ToolName]);
      double MeanSpace = geometricMean(SpaceRatios[ToolName]);
      TimeRow.push_back(formatString("%.2f", MeanTime));
      SpaceRow.push_back(formatString("%.2f", MeanSpace));
      Csv.addRow({std::to_string(Threads), ToolName,
                  formatString("%.4f", MeanTime),
                  formatString("%.4f", MeanSpace)});
    }
    TimeTable.addRow(TimeRow);
    SpaceTable.addRow(SpaceRow);
  }

  std::printf("\n(a) mean time overhead vs nulgrind\n%s",
              TimeTable.render().c_str());
  std::printf("\n(b) mean space overhead vs nulgrind\n%s",
              SpaceTable.render().c_str());

  std::string CsvPath = benchOutputPath("figure14.csv");
  if (Csv.writeToFile(CsvPath))
    std::printf("\nraw data written to %s\n", CsvPath.c_str());
  return 0;
}
