//===- bench/bench_case_studies.cpp - Reproduces Figures 4-9 ---------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// The Section 3 case studies:
//   Figure 4: mysql_select worst-case plots by rms vs trms — by rms the
//     routine looks superlinear on a handful of points (buffer reuse
//     caps the measured input); by trms it is linear in the true input.
//   Figure 5: im_generate (vips) — same effect, thread-induced.
//   Figure 6: buf_flush_buffered_writes — trms reveals superlinear
//     growth that rms under-measures; standard curve fitting applied.
//   Figure 7: wbuffer_write_thread — profile richness: a couple of rms
//     points vs many trms points once external + thread input counts.
//   Figure 8: Protocol::send_eof workload plots by rms vs trms.
//   Figure 9: per-routine external vs thread-induced characterization
//     for both applications.
//
// Usage: bench_case_studies [--clients=4] [--size=112]
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "core/Metrics.h"
#include "core/Report.h"
#include "support/CommandLine.h"
#include "support/Csv.h"
#include "support/Gnuplot.h"
#include "support/Format.h"
#include "support/Table.h"

#include <cstdio>

using namespace isp;

namespace {

const RoutineProfile *
profileOf(const std::map<RoutineId, RoutineProfile> &Merged,
          const SymbolTable &Symbols, const char *Name) {
  RoutineId Id = Symbols.lookup(Name);
  auto It = Merged.find(Id);
  return It == Merged.end() ? nullptr : &It->second;
}

void dumpPlots(CsvWriter &Csv, const std::string &Figure,
               const std::string &Routine, const RoutineProfile &Profile) {
  GnuplotFigure Gp(Routine + " worst-case running time", "input size",
                   "cost (basic blocks)");
  for (InputMetric Metric : {InputMetric::Rms, InputMetric::Trms}) {
    const char *MetricName = Metric == InputMetric::Rms ? "rms" : "trms";
    PlotSeries Series;
    Series.Name = std::string("by ") + MetricName;
    for (const FitPoint &P : worstCasePlot(Profile, Metric)) {
      Csv.addRow({Figure, Routine, MetricName, formatString("%.0f", P.N),
                  formatString("%.0f", P.Cost)});
      Series.Points.emplace_back(P.N, P.Cost);
    }
    Gp.addSeries(std::move(Series));
  }
  std::string Base = benchOutputPath(Figure + "_" + Routine);
  if (Gp.write(Base))
    std::printf("  gnuplot: %s.gp\n", Base.c_str());
}

void reportWorstCase(const char *Figure, const char *Claim,
                     const RoutineProfile &Profile) {
  FitResult ByRms = fitWorstCase(Profile, InputMetric::Rms);
  FitResult ByTrms = fitWorstCase(Profile, InputMetric::Trms);
  std::printf("  by rms : %3zu points, fit %-10s (power-law alpha %5.2f)\n",
              Profile.distinctRmsValues(),
              growthModelName(ByRms.best().Model), ByRms.PowerLawAlpha);
  std::printf("  by trms: %3zu points, fit %-10s (power-law alpha %5.2f)\n",
              Profile.distinctTrmsValues(),
              growthModelName(ByTrms.best().Model), ByTrms.PowerLawAlpha);
  std::printf("  paper's claim: %s\n", Claim);
}

void reportFigure9(const char *Title, const ProfileDatabase &Db,
                   const SymbolTable &Symbols) {
  printBanner(Title);
  auto Merged = Db.mergedByRoutine();
  TextTable Table;
  Table.setHeader({"routine", "induced", "external%", "thread-induced%"});
  for (const RoutineMetrics &M : computeRoutineMetrics(Db)) {
    auto It = Merged.find(M.Rtn);
    if (It == Merged.end())
      continue;
    uint64_t Induced =
        It->second.inducedThread() + It->second.inducedExternal();
    if (Induced == 0)
      continue;
    Table.addRow({Symbols.routineName(M.Rtn), formatWithCommas(Induced),
                  formatString("%.1f", M.ExternalPct),
                  formatString("%.1f", M.ThreadInducedPct)});
  }
  std::printf("%s", Table.render().c_str());
  RunMetrics Run = computeRunMetrics(Db);
  std::printf("run-level split: %.1f%% thread-induced / %.1f%% external\n",
              Run.ThreadInducedPct, Run.ExternalPct);
}

} // namespace

int main(int Argc, char **Argv) {
  OptionParser Options("Reproduces the Section 3 case studies "
                       "(Figures 4-9)");
  Options.addOption("clients", "4", "dbserver client threads / vips "
                                    "workers");
  Options.addOption("size", "112", "workload scale");
  if (!Options.parse(Argc, Argv))
    return 1;

  WorkloadParams Params;
  Params.Threads = static_cast<unsigned>(Options.getInt("clients"));
  Params.Size = static_cast<uint64_t>(Options.getInt("size"));

  CsvWriter Csv;
  Csv.addRow({"figure", "routine", "metric", "input_size", "max_cost"});

  // --- MySQL-like case study. ---
  Measurement Db = measureWorkload(*findWorkload("dbserver"), Params,
                                   "aprof-trms");
  if (!Db.Ok) {
    std::fprintf(stderr, "dbserver: %s\n", Db.Error.c_str());
    return 1;
  }
  auto DbMerged = Db.Profile.mergedByRoutine();

  if (const RoutineProfile *Select =
          profileOf(DbMerged, Db.Symbols, "mysql_select")) {
    printBanner("Figure 4: mysql_select worst-case running time");
    reportWorstCase("4",
                    "rms collapses to few points / inflated growth; trms "
                    "is linear in the scanned table",
                    *Select);
    dumpPlots(Csv, "fig4", "mysql_select", *Select);
  }

  if (const RoutineProfile *Flush =
          profileOf(DbMerged, Db.Symbols, "buf_flush_buffered_writes")) {
    printBanner("Figure 6: buf_flush_buffered_writes with curve fitting");
    reportWorstCase("6",
                    "trms shows clearly superlinear growth (alpha > 1.3, "
                    "superlinear model) from the drain-and-sort pass, "
                    "while the rms axis is capped at the ring size and "
                    "cannot expose the batch-size dependence",
                    *Flush);
    dumpPlots(Csv, "fig6", "buf_flush_buffered_writes", *Flush);
  }

  if (const RoutineProfile *Eof =
          profileOf(DbMerged, Db.Symbols, "protocol_send_eof")) {
    printBanner("Figure 8: Protocol::send_eof workload plots");
    std::printf("  activations per input size (by rms): %zu distinct "
                "sizes\n",
                workloadPlot(*Eof, InputMetric::Rms).size());
    std::printf("  activations per input size (by trms): %zu distinct "
                "sizes\n",
                workloadPlot(*Eof, InputMetric::Trms).size());
    std::printf("%s",
                renderSeries(workloadPlot(*Eof, InputMetric::Trms), "trms",
                             "activations")
                    .c_str());
  }

  reportFigure9("Figure 9a: MySQL-like per-routine induced-input split",
                Db.Profile, Db.Symbols);

  // --- vips-like case study. ---
  Measurement Vips = measureWorkload(*findWorkload("vips_pipeline"),
                                     Params, "aprof-trms");
  if (!Vips.Ok) {
    std::fprintf(stderr, "vips: %s\n", Vips.Error.c_str());
    return 1;
  }
  auto VipsMerged = Vips.Profile.mergedByRoutine();

  if (const RoutineProfile *Generate =
          profileOf(VipsMerged, Vips.Symbols, "im_generate")) {
    printBanner("Figure 5: im_generate worst-case running time");
    reportWorstCase("5",
                    "rms misses thread-induced strip refreshes; trms "
                    "restores the linear relation",
                    *Generate);
    dumpPlots(Csv, "fig5", "im_generate", *Generate);
  }

  if (const RoutineProfile *Writer =
          profileOf(VipsMerged, Vips.Symbols, "wbuffer_write_thread")) {
    printBanner("Figure 7: wbuffer_write_thread profile richness");
    uint64_t Induced =
        Writer->inducedThread() + Writer->inducedExternal();
    std::printf("  (a) by rms:  %zu distinct input values over %llu "
                "activations\n",
                Writer->distinctRmsValues(),
                static_cast<unsigned long long>(Writer->activations()));
    std::printf("  (b,c) by trms: %zu distinct input values\n",
                Writer->distinctTrmsValues());
    std::printf("  induced share of its input: %.1f%% (%llu thread, %llu "
                "external; paper reports 99.9%%)\n",
                Writer->sumTrms()
                    ? 100.0 * static_cast<double>(Induced) /
                          static_cast<double>(Writer->sumTrms())
                    : 0.0,
                static_cast<unsigned long long>(Writer->inducedThread()),
                static_cast<unsigned long long>(Writer->inducedExternal()));
    dumpPlots(Csv, "fig7", "wbuffer_write_thread", *Writer);
  }

  reportFigure9("Figure 9b: vips-like per-routine induced-input split",
                Vips.Profile, Vips.Symbols);

  std::string CsvPath = benchOutputPath("figures4_9.csv");
  if (Csv.writeToFile(CsvPath))
    std::printf("\nraw plot data written to %s\n", CsvPath.c_str());
  return 0;
}
