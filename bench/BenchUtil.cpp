//===- bench/BenchUtil.cpp - Shared benchmark harness pieces --------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "instr/Dispatcher.h"
#include "tools/ToolRegistry.h"
#include "vm/Compiler.h"
#include "workloads/Runner.h"

#include <chrono>
#include <cstdio>
#include <sys/stat.h>

using namespace isp;

const std::vector<std::string> isp::EvaluatedToolNames = {
    "native",   "nulgrind",  "memcheck", "callgrind",
    "helgrind", "aprof-rms", "aprof-trms"};

std::unique_ptr<Tool> isp::makeEvaluatedTool(const std::string &Name) {
  if (Name == "native")
    return nullptr;
  std::unique_ptr<Tool> T = makeTool(Name);
  if (!T)
    std::fprintf(stderr, "unknown tool '%s'\n", Name.c_str());
  return T;
}

Measurement isp::measureWorkload(const WorkloadInfo &Workload,
                                 const WorkloadParams &Params,
                                 const std::string &ToolName,
                                 unsigned Repeats,
                                 MachineOptions MachineOpts) {
  Measurement Out;
  std::string Error;
  std::optional<Program> Prog = compileWorkload(Workload, Params, &Error);
  if (!Prog) {
    Out.Error = Error;
    return Out;
  }

  Out.Seconds = 1e100;
  for (unsigned Rep = 0; Rep == 0 || Rep < Repeats; ++Rep) {
    std::unique_ptr<Tool> ToolPtr = makeEvaluatedTool(ToolName);
    EventDispatcher Dispatcher;
    if (ToolPtr)
      Dispatcher.addTool(ToolPtr.get());
    Machine M(*Prog, ToolPtr ? &Dispatcher : nullptr, MachineOpts);

    auto Start = std::chrono::steady_clock::now();
    RunResult R = M.run();
    auto End = std::chrono::steady_clock::now();
    if (!R.Ok) {
      Out.Error = R.Error;
      return Out;
    }
    double Seconds = std::chrono::duration<double>(End - Start).count();
    if (Seconds < Out.Seconds) {
      Out.Seconds = Seconds;
      Out.Stats = R.Stats;
      Out.GuestBytes = R.Stats.GuestMemoryBytes;
      Out.ToolBytes = ToolPtr ? ToolPtr->memoryFootprintBytes() : 0;
    }
    if (Rep + 1 >= Repeats) {
      // Keep the last repetition's profile for the aprof tools.
      if (ToolPtr && ToolPtr->profileDatabase())
        Out.Profile = std::move(*ToolPtr->profileDatabase());
      Out.Symbols = Prog->Symbols;
      break;
    }
  }
  Out.Ok = true;
  return Out;
}

std::vector<std::string> isp::workloadsInSuite(const std::string &Suite) {
  std::vector<std::string> Names;
  for (const WorkloadInfo &W : allWorkloads())
    if (W.Suite == Suite)
      Names.push_back(W.Name);
  return Names;
}

std::string isp::benchOutputPath(const std::string &Name) {
  ::mkdir("bench_out", 0755);
  return "bench_out/" + Name;
}

void isp::printBanner(const std::string &Title) {
  std::string Rule(Title.size() + 4, '=');
  std::printf("\n%s\n= %s =\n%s\n", Rule.c_str(), Title.c_str(),
              Rule.c_str());
}
