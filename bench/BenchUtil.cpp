//===- bench/BenchUtil.cpp - Shared benchmark harness pieces --------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "collect/Collector.h"
#include "collect/FleetStore.h"
#include "instr/Dispatcher.h"
#include "replay/ParallelReplay.h"
#include "tools/ToolRegistry.h"
#include "trace/TraceStream.h"
#include "vm/Compiler.h"
#include "vm/Optimizer.h"
#include "workloads/Runner.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <thread>
#include <sys/stat.h>

using namespace isp;

const std::vector<std::string> isp::EvaluatedToolNames = {
    "native",   "nulgrind",  "memcheck", "callgrind",
    "helgrind", "aprof-rms", "aprof-trms"};

std::unique_ptr<Tool> isp::makeEvaluatedTool(const std::string &Name) {
  if (Name == "native")
    return nullptr;
  std::unique_ptr<Tool> T = makeTool(Name);
  if (!T)
    std::fprintf(stderr, "unknown tool '%s'\n", Name.c_str());
  return T;
}

Measurement isp::measureWorkload(const WorkloadInfo &Workload,
                                 const WorkloadParams &Params,
                                 const std::string &ToolName,
                                 unsigned Repeats,
                                 MachineOptions MachineOpts) {
  Measurement Out;
  std::string Error;
  std::optional<Program> Prog = compileWorkload(Workload, Params, &Error);
  if (!Prog) {
    Out.Error = Error;
    return Out;
  }

  Out.Seconds = 1e100;
  for (unsigned Rep = 0; Rep == 0 || Rep < Repeats; ++Rep) {
    std::unique_ptr<Tool> ToolPtr = makeEvaluatedTool(ToolName);
    EventDispatcher Dispatcher;
    if (ToolPtr)
      Dispatcher.addTool(ToolPtr.get());
    Machine M(*Prog, ToolPtr ? &Dispatcher : nullptr, MachineOpts);

    auto Start = std::chrono::steady_clock::now();
    RunResult R = M.run();
    auto End = std::chrono::steady_clock::now();
    if (!R.Ok) {
      Out.Error = R.Error;
      return Out;
    }
    double Seconds = std::chrono::duration<double>(End - Start).count();
    if (Seconds < Out.Seconds) {
      Out.Seconds = Seconds;
      Out.Stats = R.Stats;
      Out.GuestBytes = R.Stats.GuestMemoryBytes;
      Out.ToolBytes = ToolPtr ? ToolPtr->memoryFootprintBytes() : 0;
      Out.EventsEmitted = ToolPtr ? Dispatcher.enqueuedEvents() : 0;
      Out.EventsDelivered = ToolPtr ? Dispatcher.deliveredEvents() : 0;
      Out.AccessMerges = ToolPtr ? Dispatcher.accessMerges() : 0;
      Out.BbFolds = ToolPtr ? Dispatcher.bbFolds() : 0;
      Out.FlushesCapacity =
          ToolPtr ? Dispatcher.flushCount(EventDispatcher::FlushCause::Capacity)
                  : 0;
      Out.FlushesExplicit =
          ToolPtr ? Dispatcher.flushCount(EventDispatcher::FlushCause::Explicit)
                  : 0;
      Out.FlushesFinish =
          ToolPtr ? Dispatcher.flushCount(EventDispatcher::FlushCause::Finish)
                  : 0;
    }
    if (Rep + 1 >= Repeats) {
      // Keep the last repetition's profile for the aprof tools.
      if (ToolPtr && ToolPtr->profileDatabase())
        Out.Profile = std::move(*ToolPtr->profileDatabase());
      Out.Symbols = Prog->Symbols;
      break;
    }
  }
  Out.Ok = true;
  return Out;
}

Measurement isp::measureWorkloadMulti(const WorkloadInfo &Workload,
                                      const WorkloadParams &Params,
                                      const std::vector<std::string> &ToolNames,
                                      unsigned Repeats,
                                      unsigned ParallelWorkers,
                                      MachineOptions MachineOpts) {
  Measurement Out;
  std::string Error;
  std::optional<Program> Prog = compileWorkload(Workload, Params, &Error);
  if (!Prog) {
    Out.Error = Error;
    return Out;
  }

  Out.Seconds = 1e100;
  for (unsigned Rep = 0; Rep == 0 || Rep < Repeats; ++Rep) {
    std::vector<std::unique_ptr<Tool>> Tools;
    for (const std::string &Name : ToolNames) {
      std::unique_ptr<Tool> T = makeEvaluatedTool(Name);
      if (!T) {
        Out.Error = "unknown tool '" + Name + "'";
        return Out;
      }
      Tools.push_back(std::move(T));
    }
    EventDispatcher Dispatcher;
    for (auto &T : Tools)
      Dispatcher.addTool(T.get());
    if (ParallelWorkers > 0)
      Dispatcher.setParallelWorkers(ParallelWorkers);
    Machine M(*Prog, &Dispatcher, MachineOpts);

    auto Start = std::chrono::steady_clock::now();
    RunResult R = M.run();
    auto End = std::chrono::steady_clock::now();
    if (!R.Ok) {
      Out.Error = R.Error;
      return Out;
    }
    double Seconds = std::chrono::duration<double>(End - Start).count();
    if (Seconds < Out.Seconds) {
      Out.Seconds = Seconds;
      Out.Stats = R.Stats;
      Out.GuestBytes = R.Stats.GuestMemoryBytes;
      Out.ToolBytes = 0;
      for (auto &T : Tools)
        Out.ToolBytes += T->memoryFootprintBytes();
      Out.EventsEmitted = Dispatcher.enqueuedEvents();
      Out.EventsDelivered = Dispatcher.deliveredEvents();
      Out.AccessMerges = Dispatcher.accessMerges();
      Out.BbFolds = Dispatcher.bbFolds();
      Out.FlushesCapacity =
          Dispatcher.flushCount(EventDispatcher::FlushCause::Capacity);
      Out.FlushesExplicit =
          Dispatcher.flushCount(EventDispatcher::FlushCause::Explicit);
      Out.FlushesFinish =
          Dispatcher.flushCount(EventDispatcher::FlushCause::Finish);
    }
    if (Rep + 1 >= Repeats)
      break;
  }
  Out.Ok = true;
  return Out;
}

std::vector<std::string> isp::workloadsInSuite(const std::string &Suite) {
  std::vector<std::string> Names;
  for (const WorkloadInfo &W : allWorkloads())
    if (W.Suite == Suite)
      Names.push_back(W.Name);
  return Names;
}

std::string isp::benchOutputPath(const std::string &Name) {
  ::mkdir("bench_out", 0755);
  return "bench_out/" + Name;
}

std::string isp::writeHotpathReport(unsigned Repeats) {
  const WorkloadInfo *W = findWorkload("md");
  if (!W) {
    std::fprintf(stderr, "hotpath report: workload 'md' not registered\n");
    return "";
  }
  WorkloadParams Params;
  Params.Threads = 4;
  Params.Size = 48;

  Measurement Native = measureWorkload(*W, Params, "native", Repeats);
  if (!Native.Ok) {
    std::fprintf(stderr, "hotpath report: native run failed: %s\n",
                 Native.Error.c_str());
    return "";
  }

  std::string Path = benchOutputPath("BENCH_hotpath.json");
  FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "hotpath report: cannot open %s\n", Path.c_str());
    return "";
  }

  std::fprintf(F,
               "{\n"
               "  \"workload\": \"md\",\n"
               "  \"threads\": %u,\n"
               "  \"size\": %llu,\n"
               "  \"repeats\": %u,\n"
               "  \"native_seconds\": %.6f,\n"
               "  \"configs\": [",
               Params.Threads,
               static_cast<unsigned long long>(Params.Size), Repeats,
               Native.Seconds);

  const char *Configs[] = {"nulgrind", "aprof-rms", "aprof-trms"};
  bool First = true;
  for (const char *ToolName : Configs) {
    Measurement M = measureWorkload(*W, Params, ToolName, Repeats);
    if (!M.Ok) {
      std::fprintf(stderr, "hotpath report: %s run failed: %s\n", ToolName,
                   M.Error.c_str());
      std::fclose(F);
      return "";
    }
    double Compaction =
        M.EventsDelivered
            ? static_cast<double>(M.EventsEmitted) /
                  static_cast<double>(M.EventsDelivered)
            : 0.0;
    uint64_t TotalFlushes =
        M.FlushesCapacity + M.FlushesExplicit + M.FlushesFinish;
    std::fprintf(
        F,
        "%s\n"
        "    {\n"
        "      \"tool\": \"%s\",\n"
        "      \"seconds\": %.6f,\n"
        "      \"slowdown_vs_native\": %.3f,\n"
        "      \"events_emitted\": %llu,\n"
        "      \"events_delivered\": %llu,\n"
        "      \"compaction_ratio\": %.3f,\n"
        "      \"access_merges\": %llu,\n"
        "      \"bb_folds\": %llu,\n"
        "      \"quiet_suppressed\": %llu,\n"
        "      \"quiet_window_aborts\": %llu,\n"
        "      \"flushes_capacity\": %llu,\n"
        "      \"flushes_finish\": %llu,\n"
        "      \"avg_batch_fill\": %.1f,\n"
        "      \"delivered_events_per_sec\": %.0f,\n"
        "      \"emitted_events_per_sec\": %.0f\n"
        "    }",
        First ? "" : ",", ToolName, M.Seconds,
        Native.Seconds > 0 ? M.Seconds / Native.Seconds : 0.0,
        static_cast<unsigned long long>(M.EventsEmitted),
        static_cast<unsigned long long>(M.EventsDelivered), Compaction,
        static_cast<unsigned long long>(M.AccessMerges),
        static_cast<unsigned long long>(M.BbFolds),
        static_cast<unsigned long long>(M.Stats.QuietEventsSuppressed),
        static_cast<unsigned long long>(M.Stats.QuietWindowAborts),
        static_cast<unsigned long long>(M.FlushesCapacity),
        static_cast<unsigned long long>(M.FlushesFinish),
        TotalFlushes ? static_cast<double>(M.EventsDelivered) /
                           static_cast<double>(TotalFlushes)
                     : 0.0,
        M.Seconds > 0 ? static_cast<double>(M.EventsDelivered) / M.Seconds
                      : 0.0,
        M.Seconds > 0 ? static_cast<double>(M.EventsEmitted) / M.Seconds
                      : 0.0);
    First = false;
  }
  std::fprintf(F, "\n  ],\n");

  // Interpreter wall-clock: switch vs threaded dispatch vs the block
  // compiler, under the full aprof-trms pipeline.
  if (!writeInterpDispatchSection(F, Repeats)) {
    std::fclose(F);
    return "";
  }

  // Parallel tool fan-out sweep: the heaviest realistic tool stack
  // (both profilers plus memcheck and callgrind) under serial delivery
  // and under 1/2/4 dispatcher workers. The interesting number is
  // delivered events/sec vs the serial row: with several tools the
  // callback work dominates the publish cost, so extra workers should
  // show a real speedup.
  const std::vector<std::string> FanoutTools = {"aprof-trms", "aprof-rms",
                                                "memcheck", "callgrind"};
  // A larger instance than the per-tool configs: thread spawn and
  // per-batch handoff are fixed costs, so the fan-out comparison needs
  // enough batches to amortize them. Overlap needs real cores — the
  // recorded hardware_concurrency says how to read the speedup column
  // (on a single-core host the best possible outcome is ~1.0).
  WorkloadParams FanoutParams = Params;
  FanoutParams.Size = 96;
  std::fprintf(F,
               "  \"parallel_fanout\": {\n"
               "    \"size\": %llu,\n"
               "    \"hardware_concurrency\": %u,\n"
               "    \"tools\": [",
               static_cast<unsigned long long>(FanoutParams.Size),
               std::thread::hardware_concurrency());
  for (size_t I = 0; I != FanoutTools.size(); ++I)
    std::fprintf(F, "%s\"%s\"", I ? ", " : "", FanoutTools[I].c_str());
  std::fprintf(F, "],\n    \"rows\": [");

  const unsigned WorkerCounts[] = {0, 1, 2, 4};
  double SerialSeconds = 0;
  First = true;
  for (unsigned Workers : WorkerCounts) {
    Measurement M =
        measureWorkloadMulti(*W, FanoutParams, FanoutTools, Repeats, Workers);
    if (!M.Ok) {
      std::fprintf(stderr, "hotpath report: fan-out run (%u workers) "
                           "failed: %s\n",
                   Workers, M.Error.c_str());
      std::fclose(F);
      return "";
    }
    if (Workers == 0)
      SerialSeconds = M.Seconds;
    std::fprintf(
        F,
        "%s\n"
        "      {\n"
        "        \"parallel_workers\": %u,\n"
        "        \"seconds\": %.6f,\n"
        "        \"events_delivered\": %llu,\n"
        "        \"delivered_events_per_sec\": %.0f,\n"
        "        \"speedup_vs_serial\": %.3f\n"
        "      }",
        First ? "" : ",", Workers, M.Seconds,
        static_cast<unsigned long long>(M.EventsDelivered),
        M.Seconds > 0 ? static_cast<double>(M.EventsDelivered) / M.Seconds
                      : 0.0,
        M.Seconds > 0 && SerialSeconds > 0 ? SerialSeconds / M.Seconds : 0.0);
    First = false;
  }
  std::fprintf(F, "\n    ]\n  },\n");

  // Streaming record/replay: bounded writer memory and reader
  // throughput vs the in-memory recording path.
  if (!writeStreamingSection(F, Repeats)) {
    std::fclose(F);
    return "";
  }

  // Parallel shard-partitioned replay: serial aprof-trms stream replay
  // vs the epoch-barrier engine at 1/2/4 workers.
  if (!writeParallelReplaySection(F, Repeats)) {
    std::fclose(F);
    return "";
  }

  // Batch-capacity sweep: how the pending-batch size moves hot-path
  // throughput and flush frequency.
  if (!writeBatchCapacitySection(F, Repeats)) {
    std::fclose(F);
    return "";
  }

  // Fleet collector: concurrent multi-stream ingest throughput and the
  // routine-filtered chunk-skip ratio over the v2 activity bitmaps.
  if (!writeCollectorSection(F, Repeats)) {
    std::fclose(F);
    return "";
  }

  // Quiet-indirect suppression: the alias-analysis-driven quiet marks on
  // LoadIndirect/StoreIndirect (src/analysis). Run the *same* optimized
  // program twice under aprof-trms — marks honored vs marks stripped —
  // so the instruction streams and scheduling are identical and the
  // event-count delta is exactly the suppression win. sort_compare is
  // the indirect-heavy workload the pass bites on (repeated a[i]/a[j]
  // reads inside one comparison window).
  if (!writeQuietIndirectSection(F, Repeats)) {
    std::fclose(F);
    return "";
  }

  std::fprintf(F, "}\n");
  std::fclose(F);
  return Path;
}

bool isp::writeInterpDispatchSection(FILE *F, unsigned Repeats) {
  // The bench guest set: the high-static-coverage workloads where the
  // block compiler can engage on most of the instruction stream, plus
  // md as the hybrid (indirect-heavy) representative. Sizes are small
  // enough for CI smoke, large enough for stable minima.
  struct GuestSpec {
    const char *Name;
    uint64_t Size;
  };
  const GuestSpec Guests[] = {
      {"md", 64}, {"smithwa", 96}, {"applu331", 96}, {"kdtree", 96}};

  // "switch" (no block compile) is the pre-refactor fused loop: the
  // baseline every speedup ratio is measured against. nulgrind keeps
  // tool callback cost out of the comparison — this section measures
  // the interpreter + dispatcher substrate, the per-tool section above
  // covers full-pipeline slowdowns.
  struct Config {
    const char *Name;
    bool Native;
    DispatchMode Dispatch;
    bool BlockCompile;
  };
  const Config Configs[] = {
      {"native", true, DispatchMode::Auto, false},
      {"switch", false, DispatchMode::Switch, false},
      {"threaded", false, DispatchMode::Threaded, false},
      {"switch+block", false, DispatchMode::Switch, true},
      {"threaded+block", false, DispatchMode::Threaded, true},
  };
  constexpr size_t NumConfigs = sizeof(Configs) / sizeof(Configs[0]);

  std::fprintf(F,
               "  \"interp_dispatch\": {\n"
               "    \"tool\": \"nulgrind\",\n"
               "    \"threads\": 4,\n"
               "    \"threaded_dispatch_available\": %s,\n"
               "    \"workloads\": [",
               ThreadedDispatchAvailable ? "true" : "false");

  double GeomeanLogSum = 0;
  size_t GeomeanCount = 0;
  bool FirstGuest = true;
  for (const GuestSpec &G : Guests) {
    const WorkloadInfo *W = findWorkload(G.Name);
    if (!W) {
      std::fprintf(stderr, "hotpath report: workload '%s' not registered\n",
                   G.Name);
      return false;
    }
    WorkloadParams Params;
    Params.Threads = 4;
    Params.Size = G.Size;
    std::string Error;
    std::optional<Program> Prog = compileWorkload(*W, Params, &Error);
    if (!Prog) {
      std::fprintf(stderr, "hotpath report: %s\n", Error.c_str());
      return false;
    }

    // Interleave the configs round-robin and keep per-config minima:
    // sequential blocks of repeats confound config differences with
    // machine drift, round-robin minima cancel it.
    struct Best {
      double Seconds = 1e100;
      RunStats Stats;
      uint64_t EventsEmitted = 0;
      uint64_t EventsDelivered = 0;
    };
    Best Bests[NumConfigs];
    for (unsigned Round = 0; Round == 0 || Round < Repeats; ++Round) {
      for (size_t CI = 0; CI != NumConfigs; ++CI) {
        const Config &C = Configs[CI];
        std::unique_ptr<Tool> ToolPtr =
            C.Native ? nullptr : makeEvaluatedTool("nulgrind");
        EventDispatcher Dispatcher;
        if (ToolPtr)
          Dispatcher.addTool(ToolPtr.get());
        MachineOptions MachineOpts;
        MachineOpts.Dispatch = C.Dispatch;
        MachineOpts.BlockCompile = C.BlockCompile;
        Machine M(*Prog, ToolPtr ? &Dispatcher : nullptr, MachineOpts);
        auto Start = std::chrono::steady_clock::now();
        RunResult R = M.run();
        auto End = std::chrono::steady_clock::now();
        if (!R.Ok) {
          std::fprintf(stderr, "hotpath report: %s/%s interp run failed: %s\n",
                       G.Name, C.Name, R.Error.c_str());
          return false;
        }
        double Seconds = std::chrono::duration<double>(End - Start).count();
        if (Seconds < Bests[CI].Seconds) {
          Bests[CI].Seconds = Seconds;
          Bests[CI].Stats = R.Stats;
          Bests[CI].EventsEmitted = ToolPtr ? Dispatcher.enqueuedEvents() : 0;
          Bests[CI].EventsDelivered =
              ToolPtr ? Dispatcher.deliveredEvents() : 0;
        }
      }
    }

    const double SwitchSeconds = Bests[1].Seconds;
    std::fprintf(F,
                 "%s\n"
                 "      {\n"
                 "        \"workload\": \"%s\",\n"
                 "        \"size\": %llu,\n"
                 "        \"rows\": [",
                 FirstGuest ? "" : ",", G.Name,
                 static_cast<unsigned long long>(G.Size));
    FirstGuest = false;
    for (size_t CI = 0; CI != NumConfigs; ++CI) {
      const Config &C = Configs[CI];
      const Best &B = Bests[CI];
      double Coverage =
          B.Stats.Instructions
              ? static_cast<double>(B.Stats.CompiledBlockInstrs) /
                    static_cast<double>(B.Stats.Instructions)
              : 0.0;
      std::fprintf(
          F,
          "%s\n"
          "          {\n"
          "            \"config\": \"%s\",\n"
          "            \"seconds\": %.6f,\n"
          "            \"instructions_per_sec\": %.0f,\n"
          "            \"emitted_events_per_sec\": %.0f,\n"
          "            \"delivered_events_per_sec\": %.0f,\n"
          "            \"compiled_block_runs\": %llu,\n"
          "            \"block_instr_coverage\": %.3f,\n"
          "            \"speedup_vs_switch\": %.3f\n"
          "          }",
          CI == 0 ? "" : ",", C.Name, B.Seconds,
          B.Seconds > 0
              ? static_cast<double>(B.Stats.Instructions) / B.Seconds
              : 0.0,
          B.Seconds > 0 ? static_cast<double>(B.EventsEmitted) / B.Seconds
                        : 0.0,
          B.Seconds > 0 ? static_cast<double>(B.EventsDelivered) / B.Seconds
                        : 0.0,
          static_cast<unsigned long long>(B.Stats.CompiledBlockRuns), Coverage,
          B.Seconds > 0 && SwitchSeconds > 0 && !C.Native
              ? SwitchSeconds / B.Seconds
              : 0.0);
    }
    std::fprintf(F, "\n        ]\n      }");
    if (Bests[NumConfigs - 1].Seconds > 0 && SwitchSeconds > 0) {
      GeomeanLogSum += std::log(SwitchSeconds / Bests[NumConfigs - 1].Seconds);
      ++GeomeanCount;
    }
  }
  std::fprintf(F,
               "\n    ],\n"
               "    \"geomean_threaded_block_vs_switch\": %.3f\n"
               "  },\n",
               GeomeanCount ? std::exp(GeomeanLogSum /
                                       static_cast<double>(GeomeanCount))
                            : 0.0);
  return true;
}

bool isp::writeQuietIndirectSection(FILE *F, unsigned Repeats) {
  const WorkloadInfo *W = findWorkload("sort_compare");
  if (!W) {
    std::fprintf(stderr, "hotpath report: workload 'sort_compare' not "
                         "registered\n");
    return false;
  }
  WorkloadParams Params;
  Params.Threads = 3;
  Params.Size = 96;
  std::string Error;
  std::optional<Program> Prog = compileWorkload(*W, Params, &Error);
  if (!Prog) {
    std::fprintf(stderr, "hotpath report: %s\n", Error.c_str());
    return false;
  }
  OptimizerStats Opt = optimizeProgram(*Prog);

  Program Stripped = *Prog;
  for (Function &Fn : Stripped.Functions)
    for (Instr &I : Fn.Code)
      switch (I.Opcode) {
      case Op::LoadLocal:
      case Op::StoreLocal:
      case Op::LoadGlobal:
      case Op::StoreGlobal:
      case Op::LoadIndirect:
      case Op::StoreIndirect:
        I.B = 0;
        break;
      default:
        break;
      }

  struct Row {
    double Seconds = 1e100;
    uint64_t Emitted = 0;
    RunStats Stats;
  };
  auto measure = [&](const Program &P, Row &Out) {
    for (unsigned Rep = 0; Rep == 0 || Rep < Repeats; ++Rep) {
      std::unique_ptr<Tool> T = makeTool("aprof-trms");
      EventDispatcher Dispatcher;
      Dispatcher.addTool(T.get());
      Machine M(P, &Dispatcher);
      auto Start = std::chrono::steady_clock::now();
      RunResult R = M.run();
      auto End = std::chrono::steady_clock::now();
      if (!R.Ok) {
        std::fprintf(stderr, "hotpath report: quiet-indirect run "
                             "failed: %s\n",
                     R.Error.c_str());
        return false;
      }
      double Seconds = std::chrono::duration<double>(End - Start).count();
      if (Seconds < Out.Seconds) {
        Out.Seconds = Seconds;
        Out.Emitted = Dispatcher.enqueuedEvents();
        Out.Stats = R.Stats;
      }
      if (Rep + 1 >= Repeats)
        break;
    }
    return true;
  };

  Row Marked, Plain;
  if (!measure(*Prog, Marked) || !measure(Stripped, Plain))
    return false;

  uint64_t IndirectAccesses = Marked.Stats.MemReads +
                              Marked.Stats.MemWrites; // upper bound base
  std::fprintf(
      F,
      "  \"quiet_indirect\": {\n"
      "    \"workload\": \"sort_compare\",\n"
      "    \"threads\": %u,\n"
      "    \"size\": %llu,\n"
      "    \"static_marks_total\": %u,\n"
      "    \"static_marks_indirect\": %u,\n"
      "    \"suppressed_events\": %llu,\n"
      "    \"suppressed_indirect_events\": %llu,\n"
      "    \"window_aborts\": %llu,\n"
      "    \"suppression_hit_rate\": %.4f,\n"
      "    \"events_emitted_marked\": %llu,\n"
      "    \"events_emitted_stripped\": %llu,\n"
      "    \"event_reduction\": %.4f,\n"
      "    \"seconds_marked\": %.6f,\n"
      "    \"seconds_stripped\": %.6f,\n"
      "    \"emitted_events_per_sec_marked\": %.0f,\n"
      "    \"emitted_events_per_sec_stripped\": %.0f\n"
      "  }\n",
      Params.Threads, static_cast<unsigned long long>(Params.Size),
      Opt.QuietAccessesMarked, Opt.QuietIndirectMarked,
      static_cast<unsigned long long>(Marked.Stats.QuietEventsSuppressed),
      static_cast<unsigned long long>(
          Marked.Stats.QuietIndirectSuppressed),
      static_cast<unsigned long long>(Marked.Stats.QuietWindowAborts),
      IndirectAccesses
          ? static_cast<double>(Marked.Stats.QuietEventsSuppressed) /
                static_cast<double>(IndirectAccesses)
          : 0.0,
      static_cast<unsigned long long>(Marked.Emitted),
      static_cast<unsigned long long>(Plain.Emitted),
      Plain.Emitted ? 1.0 - static_cast<double>(Marked.Emitted) /
                                static_cast<double>(Plain.Emitted)
                    : 0.0,
      Marked.Seconds, Plain.Seconds,
      Marked.Seconds > 0
          ? static_cast<double>(Marked.Emitted) / Marked.Seconds
          : 0.0,
      Plain.Seconds > 0
          ? static_cast<double>(Plain.Emitted) / Plain.Seconds
          : 0.0);

  // Per-workload mark census: optimize virgin bytecode once per
  // workload (compileWorkload would pre-optimize and hide the counts)
  // and record how many indirect marks the window pass plus the
  // range/covered-read certificate recover. CI asserts md and dedup
  // stay nonzero — they have no window-provable indirect site, so a
  // zero there means the interprocedural analysis regressed.
  std::fprintf(F, "  ,\n  \"quiet_indirect_marks\": {\n");
  const char *Names[] = {"sort_compare", "md", "dedup"};
  for (unsigned I = 0; I != 3; ++I) {
    const WorkloadInfo *MW = findWorkload(Names[I]);
    if (!MW) {
      std::fprintf(stderr, "hotpath report: workload '%s' not "
                           "registered\n",
                   Names[I]);
      return false;
    }
    DiagnosticEngine Diags;
    std::optional<Program> Raw =
        compileProgram(MW->MakeSource(Params), Diags);
    if (!Raw) {
      std::fprintf(stderr, "hotpath report: %s failed to compile\n",
                   Names[I]);
      return false;
    }
    OptimizerStats S = optimizeProgram(*Raw);
    std::fprintf(F,
                 "    \"%s\": {\"indirect\": %u, \"range\": %u}%s\n",
                 Names[I], S.QuietIndirectMarked, S.RangeQuietMarked,
                 I + 1 != 3 ? "," : "");
  }
  std::fprintf(F, "  }\n");
  return true;
}

bool isp::writeStreamingSection(FILE *F, unsigned Repeats) {
  const WorkloadInfo *W = findWorkload("md");
  if (!W) {
    std::fprintf(stderr, "hotpath report: workload 'md' not registered\n");
    return false;
  }

  struct Row {
    uint64_t Size = 0;
    uint64_t Events = 0;
    uint64_t FileBytes = 0;
    uint64_t Chunks = 0;
    uint64_t PeakBuffered = 0;
    uint64_t InMemoryBytes = 0;
    double StreamReplaySeconds = 1e100;
    double InMemoryReplaySeconds = 1e100;
  };

  // The small and large instances must differ by >=10x recorded events
  // so "writer memory stays flat" is a claim about real growth.
  const uint64_t Sizes[2] = {12, 96};
  Row Rows[2];
  std::string StreamPath = benchOutputPath("stream_probe.strm");

  for (int I = 0; I != 2; ++I) {
    Row &R = Rows[I];
    R.Size = Sizes[I];
    WorkloadParams Params;
    Params.Threads = 4;
    Params.Size = Sizes[I];
    std::string Error;
    std::optional<Program> Prog = compileWorkload(*W, Params, &Error);
    if (!Prog) {
      std::fprintf(stderr, "hotpath report: %s\n", Error.c_str());
      return false;
    }

    // One recording run feeding both sinks: the chunked stream writer
    // and the in-memory Recorded vector it replaces.
    TraceStreamWriter Writer;
    if (!Writer.open(StreamPath, Prog->Symbols.entries())) {
      std::fprintf(stderr, "hotpath report: %s\n", Writer.error().c_str());
      return false;
    }
    EventDispatcher Recorder;
    Recorder.enableRecording();
    Recorder.setRecordSink(&Writer);
    Machine M(*Prog, &Recorder);
    RunResult Run = M.run(); // run() brackets the dispatcher start/finish
    if (!Run.Ok || !Writer.close()) {
      std::fprintf(stderr, "hotpath report: streaming record failed: %s\n",
                   Run.Ok ? Writer.error().c_str() : Run.Error.c_str());
      return false;
    }
    std::vector<EventRecord> Recorded = Recorder.takeRecordedEvents();
    R.Events = Writer.eventsWritten();
    R.FileBytes = Writer.bytesWritten();
    R.Chunks = Writer.chunksWritten();
    R.PeakBuffered = Writer.peakBufferedBytes();
    R.InMemoryBytes = Recorded.size() * sizeof(EventRecord);

    // Replay throughput, best of Repeats: the chunk-at-a-time streaming
    // reader vs handing the resident vector to the same batched
    // dispatcher path.
    for (unsigned Rep = 0; Rep == 0 || Rep < Repeats; ++Rep) {
      std::unique_ptr<Tool> T = makeTool("nulgrind");
      TraceStreamReader Reader;
      if (!Reader.open(StreamPath)) {
        std::fprintf(stderr, "hotpath report: %s\n", Reader.error().c_str());
        return false;
      }
      auto Start = std::chrono::steady_clock::now();
      bool Ok = replayTraceStream(Reader, *T);
      auto End = std::chrono::steady_clock::now();
      if (!Ok) {
        std::fprintf(stderr, "hotpath report: stream replay failed: %s\n",
                     Reader.error().c_str());
        return false;
      }
      R.StreamReplaySeconds = std::min(
          R.StreamReplaySeconds,
          std::chrono::duration<double>(End - Start).count());
      if (Rep + 1 >= Repeats)
        break;
    }
    for (unsigned Rep = 0; Rep == 0 || Rep < Repeats; ++Rep) {
      std::unique_ptr<Tool> T = makeTool("nulgrind");
      auto Start = std::chrono::steady_clock::now();
      replayTraceBatched(Recorded, *T);
      auto End = std::chrono::steady_clock::now();
      R.InMemoryReplaySeconds = std::min(
          R.InMemoryReplaySeconds,
          std::chrono::duration<double>(End - Start).count());
      if (Rep + 1 >= Repeats)
        break;
    }
  }
  std::remove(StreamPath.c_str());

  std::fprintf(F, "  \"streaming\": {\n"
                  "    \"workload\": \"md\",\n"
                  "    \"threads\": 4,\n"
                  "    \"rows\": [");
  for (int I = 0; I != 2; ++I) {
    const Row &R = Rows[I];
    std::fprintf(
        F,
        "%s\n"
        "      {\n"
        "        \"size\": %llu,\n"
        "        \"events_recorded\": %llu,\n"
        "        \"chunks\": %llu,\n"
        "        \"stream_file_bytes\": %llu,\n"
        "        \"writer_peak_buffered_bytes\": %llu,\n"
        "        \"in_memory_recording_bytes\": %llu,\n"
        "        \"stream_replay_events_per_sec\": %.0f,\n"
        "        \"in_memory_replay_events_per_sec\": %.0f\n"
        "      }",
        I ? "," : "", static_cast<unsigned long long>(R.Size),
        static_cast<unsigned long long>(R.Events),
        static_cast<unsigned long long>(R.Chunks),
        static_cast<unsigned long long>(R.FileBytes),
        static_cast<unsigned long long>(R.PeakBuffered),
        static_cast<unsigned long long>(R.InMemoryBytes),
        R.StreamReplaySeconds > 0
            ? static_cast<double>(R.Events) / R.StreamReplaySeconds
            : 0.0,
        R.InMemoryReplaySeconds > 0
            ? static_cast<double>(R.Events) / R.InMemoryReplaySeconds
            : 0.0);
  }
  // The punchline ratios: event growth vs the growth of each recorder's
  // variable memory. The in-memory vector's growth tracks the event
  // growth; the stream writer's stays far below it, capped by one chunk
  // (ChunkBytes + one encoded event) no matter how long the run.
  std::fprintf(
      F,
      "\n    ],\n"
      "    \"event_growth\": %.2f,\n"
      "    \"writer_peak_buffered_growth\": %.2f,\n"
      "    \"in_memory_recording_growth\": %.2f\n"
      "  },\n",
      Rows[0].Events ? static_cast<double>(Rows[1].Events) /
                           static_cast<double>(Rows[0].Events)
                     : 0.0,
      Rows[0].PeakBuffered ? static_cast<double>(Rows[1].PeakBuffered) /
                                 static_cast<double>(Rows[0].PeakBuffered)
                           : 0.0,
      Rows[0].InMemoryBytes ? static_cast<double>(Rows[1].InMemoryBytes) /
                                  static_cast<double>(Rows[0].InMemoryBytes)
                            : 0.0);
  return true;
}

bool isp::writeParallelReplaySection(FILE *F, unsigned Repeats) {
  const WorkloadInfo *W = findWorkload("md");
  if (!W) {
    std::fprintf(stderr, "hotpath report: workload 'md' not registered\n");
    return false;
  }
  WorkloadParams Params;
  Params.Threads = 4;
  Params.Size = 96;
  std::string Error;
  std::optional<Program> Prog = compileWorkload(*W, Params, &Error);
  if (!Prog) {
    std::fprintf(stderr, "hotpath report: %s\n", Error.c_str());
    return false;
  }

  std::string StreamPath = benchOutputPath("parallel_replay_probe.strm");
  TraceStreamWriter Writer;
  if (!Writer.open(StreamPath, Prog->Symbols.entries())) {
    std::fprintf(stderr, "hotpath report: %s\n", Writer.error().c_str());
    return false;
  }
  EventDispatcher Recorder;
  Recorder.enableRecording();
  Recorder.setRecordSink(&Writer);
  Machine M(*Prog, &Recorder);
  RunResult Run = M.run();
  if (!Run.Ok || !Writer.close()) {
    std::fprintf(stderr, "hotpath report: parallel replay record failed: %s\n",
                 Run.Ok ? Writer.error().c_str() : Run.Error.c_str());
    return false;
  }
  uint64_t Events = Writer.eventsWritten();

  // Serial baseline: the production streaming replay of aprof-trms.
  const unsigned Shards = 16;
  double SerialSeconds = 1e100;
  std::string SerialReport;
  for (unsigned Rep = 0; Rep == 0 || Rep < Repeats; ++Rep) {
    TrmsProfiler Profiler;
    TraceStreamReader Reader;
    if (!Reader.open(StreamPath)) {
      std::fprintf(stderr, "hotpath report: %s\n", Reader.error().c_str());
      return false;
    }
    auto Start = std::chrono::steady_clock::now();
    bool Ok = replayTraceStream(Reader, Profiler);
    auto End = std::chrono::steady_clock::now();
    if (!Ok) {
      std::fprintf(stderr, "hotpath report: serial replay failed: %s\n",
                   Reader.error().c_str());
      return false;
    }
    SerialSeconds = std::min(
        SerialSeconds, std::chrono::duration<double>(End - Start).count());
    if (SerialReport.empty())
      SerialReport = renderToolReport(Profiler, nullptr);
    if (Rep + 1 >= Repeats)
      break;
  }

  std::fprintf(F,
               "  \"parallel_replay\": {\n"
               "    \"workload\": \"md\",\n"
               "    \"size\": %llu,\n"
               "    \"shards\": %u,\n"
               "    \"hardware_concurrency\": %u,\n"
               "    \"events\": %llu,\n"
               "    \"serial_seconds\": %.6f,\n"
               "    \"serial_events_per_sec\": %.0f,\n"
               "    \"rows\": [",
               static_cast<unsigned long long>(Params.Size), Shards,
               std::thread::hardware_concurrency(),
               static_cast<unsigned long long>(Events), SerialSeconds,
               SerialSeconds > 0 ? static_cast<double>(Events) / SerialSeconds
                                 : 0.0);

  const unsigned WorkerCounts[] = {1, 2, 4};
  bool First = true;
  for (unsigned Workers : WorkerCounts) {
    double Seconds = 1e100;
    bool Matches = true;
    for (unsigned Rep = 0; Rep == 0 || Rep < Repeats; ++Rep) {
      TrmsProfilerOptions Opts;
      Opts.ShadowShards = Shards;
      ParallelReplayProfiler Profiler(Opts);
      TraceStreamReader Reader;
      if (!Reader.open(StreamPath)) {
        std::fprintf(stderr, "hotpath report: %s\n", Reader.error().c_str());
        return false;
      }
      ParallelReplayOptions ReplayOpts;
      ReplayOpts.Workers = Workers;
      auto Start = std::chrono::steady_clock::now();
      bool Ok = parallelReplayStream(Reader, Profiler, nullptr, ReplayOpts);
      auto End = std::chrono::steady_clock::now();
      if (!Ok) {
        std::fprintf(stderr,
                     "hotpath report: parallel replay (%u workers) "
                     "failed: %s\n",
                     Workers, Reader.error().c_str());
        return false;
      }
      Seconds = std::min(Seconds,
                         std::chrono::duration<double>(End - Start).count());
      Matches = Matches && renderToolReport(Profiler, nullptr) == SerialReport;
      if (Rep + 1 >= Repeats)
        break;
    }
    std::fprintf(
        F,
        "%s\n"
        "      {\n"
        "        \"workers\": %u,\n"
        "        \"seconds\": %.6f,\n"
        "        \"events_per_sec\": %.0f,\n"
        "        \"speedup_vs_serial\": %.3f,\n"
        "        \"report_matches_serial\": %s\n"
        "      }",
        First ? "" : ",", Workers, Seconds,
        Seconds > 0 ? static_cast<double>(Events) / Seconds : 0.0,
        Seconds > 0 && SerialSeconds > 0 ? SerialSeconds / Seconds : 0.0,
        Matches ? "true" : "false");
    First = false;
  }
  std::fprintf(F, "\n    ]\n  },\n");
  std::remove(StreamPath.c_str());
  return true;
}

bool isp::writeBatchCapacitySection(FILE *F, unsigned Repeats) {
  const WorkloadInfo *W = findWorkload("md");
  if (!W) {
    std::fprintf(stderr, "hotpath report: workload 'md' not registered\n");
    return false;
  }
  WorkloadParams Params;
  Params.Threads = 4;
  Params.Size = 48;
  std::string Error;
  std::optional<Program> Prog = compileWorkload(*W, Params, &Error);
  if (!Prog) {
    std::fprintf(stderr, "hotpath report: %s\n", Error.c_str());
    return false;
  }

  std::fprintf(F, "  \"batch_capacity\": [");
  const size_t Capacities[] = {64, 256, 1024, 4096};
  bool First = true;
  for (size_t Capacity : Capacities) {
    double BestSeconds = 1e100;
    uint64_t Delivered = 0, FlushesCapacity = 0, TotalFlushes = 0;
    for (unsigned Rep = 0; Rep == 0 || Rep < Repeats; ++Rep) {
      std::unique_ptr<Tool> T = makeTool("aprof-trms");
      EventDispatcher Dispatcher;
      Dispatcher.addTool(T.get());
      if (!Dispatcher.setBatchCapacity(Capacity)) {
        std::fprintf(stderr, "hotpath report: capacity %zu rejected\n",
                     Capacity);
        return false;
      }
      Machine M(*Prog, &Dispatcher);
      auto Start = std::chrono::steady_clock::now();
      RunResult R = M.run();
      auto End = std::chrono::steady_clock::now();
      if (!R.Ok) {
        std::fprintf(stderr, "hotpath report: batch-capacity run failed: "
                             "%s\n",
                     R.Error.c_str());
        return false;
      }
      double Seconds = std::chrono::duration<double>(End - Start).count();
      if (Seconds < BestSeconds) {
        BestSeconds = Seconds;
        Delivered = Dispatcher.deliveredEvents();
        FlushesCapacity =
            Dispatcher.flushCount(EventDispatcher::FlushCause::Capacity);
        TotalFlushes = Dispatcher.totalFlushes();
      }
      if (Rep + 1 >= Repeats)
        break;
    }
    std::fprintf(
        F,
        "%s\n"
        "    {\n"
        "      \"capacity\": %zu,\n"
        "      \"seconds\": %.6f,\n"
        "      \"delivered_events_per_sec\": %.0f,\n"
        "      \"flushes_capacity\": %llu,\n"
        "      \"avg_batch_fill\": %.1f\n"
        "    }",
        First ? "" : ",", Capacity, BestSeconds,
        BestSeconds > 0 ? static_cast<double>(Delivered) / BestSeconds : 0.0,
        static_cast<unsigned long long>(FlushesCapacity),
        TotalFlushes ? static_cast<double>(Delivered) /
                           static_cast<double>(TotalFlushes)
                     : 0.0);
    First = false;
  }
  std::fprintf(F, "\n  ],\n");
  return true;
}

bool isp::writeCollectorSection(FILE *F, unsigned Repeats) {
  // kdtree has the phase structure the chunk-skip gate needs: the
  // build phase's short tree_insert activations cluster in the leading
  // chunks, so a tree_insert-filtered ingest can prove the query-phase
  // chunks irrelevant from the footer bitmaps alone. (Long-lived
  // routines like each thread's root can never be skipped — their
  // frames stay open across the whole stream.)
  const WorkloadInfo *W = findWorkload("kdtree");
  if (!W) {
    std::fprintf(stderr, "hotpath report: workload 'kdtree' not "
                         "registered\n");
    return false;
  }
  WorkloadParams Params;
  Params.Threads = 4;
  Params.Size = 32;
  std::string Error;
  std::optional<Program> Prog = compileWorkload(*W, Params, &Error);
  if (!Prog) {
    std::fprintf(stderr, "hotpath report: %s\n", Error.c_str());
    return false;
  }

  // Small chunks so the filtered pass has enough chunk granularity for
  // the footer bitmaps to bite.
  const unsigned NumStreams = 3;
  TraceStreamOptions StreamOpts;
  StreamOpts.ChunkBytes = 4096;
  std::vector<std::string> Paths;
  uint64_t EventsRecorded = 0;
  for (unsigned I = 0; I != NumStreams; ++I) {
    std::string Path = benchOutputPath("collector_probe_" +
                                       std::to_string(I) + ".strm");
    TraceStreamWriter Writer;
    if (!Writer.open(Path, Prog->Symbols.entries(), StreamOpts)) {
      std::fprintf(stderr, "hotpath report: %s\n", Writer.error().c_str());
      return false;
    }
    EventDispatcher Recorder;
    Recorder.enableRecording();
    Recorder.setRecordSink(&Writer);
    Machine M(*Prog, &Recorder);
    RunResult Run = M.run();
    if (!Run.Ok || !Writer.close()) {
      std::fprintf(stderr, "hotpath report: collector record failed: %s\n",
                   Run.Ok ? Writer.error().c_str() : Run.Error.c_str());
      return false;
    }
    EventsRecorded += Writer.eventsWritten();
    Paths.push_back(Path);
  }

  // The filtered pass is the fleet use case ("where did the build
  // phase get slow?") where the v2 bitmaps pay.
  const std::string FilterRoutine = "tree_insert";

  struct Pass {
    double Seconds = 1e100;
    collect::CollectorTotals Totals;
    size_t Routines = 0;
  };
  auto ingest = [&](const std::vector<std::string> &Filter, Pass &Out) {
    for (unsigned Rep = 0; Rep == 0 || Rep < Repeats; ++Rep) {
      collect::FleetStore Store;
      collect::CollectorOptions Opts;
      Opts.Workers = NumStreams;
      Opts.RoutineFilter = Filter;
      collect::Collector C(Opts, Store);
      auto Start = std::chrono::steady_clock::now();
      size_t Ok = C.ingestFiles(Paths);
      auto End = std::chrono::steady_clock::now();
      if (Ok != Paths.size()) {
        std::fprintf(stderr, "hotpath report: collector ingest failed: %s\n",
                     C.errors().empty() ? "unknown"
                                        : C.errors()[0].Message.c_str());
        return false;
      }
      double Seconds = std::chrono::duration<double>(End - Start).count();
      if (Seconds < Out.Seconds) {
        Out.Seconds = Seconds;
        Out.Totals = C.totals();
        Out.Routines = Store.routineCount();
      }
      if (Rep + 1 >= Repeats)
        break;
    }
    return true;
  };

  Pass Full, Filtered;
  if (!ingest({}, Full) || !ingest({FilterRoutine}, Filtered))
    return false;
  for (const std::string &Path : Paths)
    std::remove(Path.c_str());

  uint64_t FilteredChunks =
      Filtered.Totals.ChunksRead + Filtered.Totals.ChunksSkipped;
  std::fprintf(
      F,
      "  \"collector\": {\n"
      "    \"workload\": \"kdtree\",\n"
      "    \"streams\": %u,\n"
      "    \"chunk_bytes\": %zu,\n"
      "    \"ingest_workers\": %u,\n"
      "    \"events_recorded\": %llu,\n"
      "    \"seconds\": %.6f,\n"
      "    \"streams_per_sec\": %.2f,\n"
      "    \"events_per_sec\": %.0f,\n"
      "    \"merge_ns\": %llu,\n"
      "    \"store_routines\": %zu,\n"
      "    \"filter_routine\": \"%s\",\n"
      "    \"filtered_seconds\": %.6f,\n"
      "    \"filtered_chunks_read\": %llu,\n"
      "    \"filtered_chunks_skipped\": %llu,\n"
      "    \"chunks_skipped_ratio\": %.4f,\n"
      "    \"filtered_streams_per_sec\": %.2f\n"
      "  },\n",
      NumStreams, StreamOpts.ChunkBytes, NumStreams,
      static_cast<unsigned long long>(EventsRecorded), Full.Seconds,
      Full.Seconds > 0 ? NumStreams / Full.Seconds : 0.0,
      Full.Seconds > 0
          ? static_cast<double>(Full.Totals.Events) / Full.Seconds
          : 0.0,
      static_cast<unsigned long long>(Full.Totals.MergeNs), Full.Routines,
      FilterRoutine.c_str(), Filtered.Seconds,
      static_cast<unsigned long long>(Filtered.Totals.ChunksRead),
      static_cast<unsigned long long>(Filtered.Totals.ChunksSkipped),
      FilteredChunks ? static_cast<double>(Filtered.Totals.ChunksSkipped) /
                           static_cast<double>(FilteredChunks)
                     : 0.0,
      Filtered.Seconds > 0 ? NumStreams / Filtered.Seconds : 0.0);
  return true;
}

void isp::printBanner(const std::string &Title) {
  std::string Rule(Title.size() + 4, '=');
  std::printf("\n%s\n= %s =\n%s\n", Rule.c_str(), Title.c_str(),
              Rule.c_str());
}
