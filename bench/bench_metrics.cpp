//===- bench/bench_metrics.cpp - Reproduces Figures 15-19 ------------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// The trms-vs-rms benefit study over a representative benchmark set:
//   Figure 15: routine profile richness curves ("x% of routines have
//              richness >= y").
//   Figure 16: per-routine input volume curves.
//   Figure 17: benchmark-level induced first-access split (external vs
//              thread-induced, each access counted once), sorted by
//              decreasing thread-induced share.
//   Figure 18: per-routine thread-induced input curves.
//   Figure 19: per-routine external input curves.
//
// Expected shape: richness is >= 0 for almost every routine and very
// large for the I/O / communication routines; ~5-10% of routines carry
// nearly all induced input; the OMP kernels cluster at the
// thread-induced end of Figure 17 while dbserver sits at the external
// end.
//
// Usage: bench_metrics [--threads=4] [--size=80]
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "core/Metrics.h"
#include "support/CommandLine.h"
#include "support/Csv.h"
#include "support/Format.h"
#include "support/Table.h"

#include <algorithm>
#include <cstdio>

using namespace isp;

namespace {

struct BenchmarkMetrics {
  std::string Name;
  std::vector<RoutineMetrics> Routines;
  RunMetrics Run;
};

/// Prints a compact tail-distribution curve at fixed percentiles.
void printCurve(const std::string &Benchmark,
                const std::vector<std::pair<double, double>> &Points,
                const char *Format) {
  std::printf("  %-16s", Benchmark.c_str());
  const double Percentiles[] = {2, 5, 10, 20, 40, 70, 100};
  for (double Pct : Percentiles) {
    double Value = 0;
    bool Have = false;
    for (const auto &[X, Y] : Points) {
      if (X >= Pct - 1e-9) {
        Value = Y;
        Have = true;
        break;
      }
    }
    if (!Have && !Points.empty()) {
      Value = Points.back().second;
      Have = true;
    }
    if (Have)
      std::printf(Format, Value);
    else
      std::printf("      -");
  }
  std::printf("\n");
}

void printCurveHeader(const char *Metric) {
  std::printf("  %-16s", "x% of routines");
  for (double Pct : {2, 5, 10, 20, 40, 70, 100})
    std::printf("%6.0f%%", Pct);
  std::printf("   (value: %s at that percentile)\n", Metric);
}

} // namespace

int main(int Argc, char **Argv) {
  OptionParser Options("Reproduces Figures 15-19: trms-vs-rms profile "
                       "richness, input volume, induced-input splits");
  Options.addOption("threads", "4", "worker threads");
  Options.addOption("size", "80", "problem scale");
  if (!Options.parse(Argc, Argv))
    return 1;

  WorkloadParams Params;
  Params.Threads = static_cast<unsigned>(Options.getInt("threads"));
  Params.Size = static_cast<uint64_t>(Options.getInt("size"));

  // A representative mix: compute-bound OMP kernels, pipelines, the
  // server, and the wavefront codes.
  const std::vector<std::string> Benchmarks = {
      "nab",  "smithwa",   "applu331",      "botsalgn", "md",
      "dedup", "vips_pipeline", "fluidanimate", "dbserver"};

  std::vector<BenchmarkMetrics> All;
  CsvWriter Csv;
  Csv.addRow({"benchmark", "routine", "activations", "distinct_trms",
              "distinct_rms", "richness", "input_volume",
              "thread_induced_pct", "external_pct"});

  for (const std::string &Name : Benchmarks) {
    const WorkloadInfo *W = findWorkload(Name);
    Measurement M = measureWorkload(*W, Params, "aprof-trms");
    if (!M.Ok) {
      std::fprintf(stderr, "%s: %s\n", Name.c_str(), M.Error.c_str());
      return 1;
    }
    BenchmarkMetrics B;
    B.Name = Name;
    B.Routines = computeRoutineMetrics(M.Profile);
    B.Run = computeRunMetrics(M.Profile);
    for (const RoutineMetrics &R : B.Routines)
      Csv.addRow({Name, M.Symbols.routineName(R.Rtn),
                  std::to_string(R.Activations),
                  std::to_string(R.DistinctTrms),
                  std::to_string(R.DistinctRms),
                  formatString("%.4f", R.ProfileRichness),
                  formatString("%.4f", R.InputVolume),
                  formatString("%.2f", R.ThreadInducedPct),
                  formatString("%.2f", R.ExternalPct)});
    All.push_back(std::move(B));
  }

  // Figure 15: profile richness tails.
  printBanner("Figure 15: routine profile richness "
              "(|trms|-|rms|)/|rms|");
  printCurveHeader("richness");
  uint64_t NegativeRichness = 0, TotalRoutines = 0;
  for (const BenchmarkMetrics &B : All) {
    std::vector<double> Values;
    for (const RoutineMetrics &R : B.Routines) {
      Values.push_back(R.ProfileRichness);
      ++TotalRoutines;
      if (R.ProfileRichness < 0)
        ++NegativeRichness;
    }
    printCurve(B.Name, tailDistribution(Values), "%7.2f");
  }
  std::printf("  negative-richness routines: %llu of %llu (paper: "
              "statistically intangible)\n",
              static_cast<unsigned long long>(NegativeRichness),
              static_cast<unsigned long long>(TotalRoutines));

  // Figure 16: input volume tails.
  printBanner("Figure 16: routine input volume 1 - sum(rms)/sum(trms)");
  printCurveHeader("input volume");
  for (const BenchmarkMetrics &B : All) {
    std::vector<double> Values;
    for (const RoutineMetrics &R : B.Routines)
      Values.push_back(R.InputVolume);
    printCurve(B.Name, tailDistribution(Values), "%7.3f");
  }

  // Figure 17: benchmark-level split, sorted by thread-induced share.
  printBanner("Figure 17: external vs thread-induced input per benchmark");
  std::vector<const BenchmarkMetrics *> Sorted;
  for (const BenchmarkMetrics &B : All)
    Sorted.push_back(&B);
  std::sort(Sorted.begin(), Sorted.end(),
            [](const BenchmarkMetrics *L, const BenchmarkMetrics *R) {
              return L->Run.ThreadInducedPct > R->Run.ThreadInducedPct;
            });
  TextTable SplitTable;
  SplitTable.setHeader({"benchmark", "thread-induced%", "external%",
                        "induced accesses"});
  for (const BenchmarkMetrics *B : Sorted)
    SplitTable.addRow(
        {B->Name, formatString("%.1f", B->Run.ThreadInducedPct),
         formatString("%.1f", B->Run.ExternalPct),
         formatWithCommas(B->Run.InducedThread + B->Run.InducedExternal)});
  std::printf("%s", SplitTable.render().c_str());

  // Figures 18 and 19: per-routine induced-kind tails.
  printBanner("Figure 18: thread-induced input per routine (% of its "
              "induced accesses)");
  printCurveHeader("thread-induced %");
  for (const BenchmarkMetrics &B : All) {
    std::vector<double> Values;
    for (const RoutineMetrics &R : B.Routines)
      Values.push_back(R.ThreadInducedPct);
    printCurve(B.Name, tailDistribution(Values), "%7.1f");
  }

  printBanner("Figure 19: external input per routine (% of its induced "
              "accesses)");
  printCurveHeader("external %");
  for (const BenchmarkMetrics &B : All) {
    std::vector<double> Values;
    for (const RoutineMetrics &R : B.Routines)
      Values.push_back(R.ExternalPct);
    printCurve(B.Name, tailDistribution(Values), "%7.1f");
  }

  std::string CsvPath = benchOutputPath("figures15_19.csv");
  if (Csv.writeToFile(CsvPath))
    std::printf("\nraw data written to %s\n", CsvPath.c_str());
  return 0;
}
