//===- bench/bench_table1.cpp - Reproduces the paper's Table 1 -------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Table 1: time slowdown and space overhead of aprof-trms against
// nulgrind, memcheck, callgrind, helgrind, and aprof-rms on the twelve
// OMP2012-like benchmarks at four threads.
//
// Columns mirror the paper: native seconds, then per-tool slowdown
// factors (relative to native); native MB, then per-tool space
// overheads ((guest + tool) / guest). A geometric-mean summary row
// closes each half, as in the paper.
//
// Expected shape (the paper's findings, which hold here):
//   nulgrind < callgrind < memcheck ~ aprof-rms < aprof-trms < helgrind
// for time, and modest (single-digit) space factors with aprof-trms
// slightly above aprof-rms (the extra global wts shadow).
//
// Usage: bench_table1 [--threads=4] [--size=96] [--repeats=1]
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "support/CommandLine.h"
#include "support/Csv.h"
#include "support/Format.h"
#include "support/Stats.h"
#include "support/Table.h"

#include <cstdio>

using namespace isp;

int main(int Argc, char **Argv) {
  OptionParser Options("Reproduces Table 1: tool comparison on the "
                       "OMP2012-like benchmarks");
  Options.addOption("threads", "4", "OpenMP-style worker threads");
  Options.addOption("size", "256", "problem scale");
  Options.addOption("repeats", "3", "timing repetitions (keep fastest)");
  if (!Options.parse(Argc, Argv))
    return 1;

  WorkloadParams Params;
  Params.Threads = static_cast<unsigned>(Options.getInt("threads"));
  Params.Size = static_cast<uint64_t>(Options.getInt("size"));
  unsigned Repeats = static_cast<unsigned>(Options.getInt("repeats"));

  printBanner(formatString("Table 1: tool comparison, %u threads, scale "
                           "%llu",
                           Params.Threads,
                           static_cast<unsigned long long>(Params.Size)));

  std::vector<std::string> Benchmarks = workloadsInSuite("omp2012");
  CsvWriter Csv;
  Csv.addRow({"benchmark", "tool", "seconds", "slowdown", "guest_bytes",
              "tool_bytes", "space_overhead"});

  TextTable TimeTable;
  TextTable SpaceTable;
  std::vector<std::string> TimeHeader = {"benchmark", "native(s)"};
  std::vector<std::string> SpaceHeader = {"benchmark", "native"};
  for (const std::string &ToolName : EvaluatedToolNames) {
    if (ToolName == "native")
      continue;
    TimeHeader.push_back(ToolName);
    SpaceHeader.push_back(ToolName);
  }
  TimeTable.setHeader(TimeHeader);
  SpaceTable.setHeader(SpaceHeader);

  std::map<std::string, std::vector<double>> SlowdownSamples;
  std::map<std::string, std::vector<double>> SpaceSamples;

  for (const std::string &Benchmark : Benchmarks) {
    const WorkloadInfo *W = findWorkload(Benchmark);
    std::vector<std::string> TimeRow = {Benchmark};
    std::vector<std::string> SpaceRow = {Benchmark};
    double NativeSeconds = 0;
    uint64_t GuestBytes = 0;

    for (const std::string &ToolName : EvaluatedToolNames) {
      Measurement M = measureWorkload(*W, Params, ToolName, Repeats);
      if (!M.Ok) {
        std::fprintf(stderr, "%s under %s failed: %s\n", Benchmark.c_str(),
                     ToolName.c_str(), M.Error.c_str());
        return 1;
      }
      if (ToolName == "native") {
        NativeSeconds = M.Seconds;
        GuestBytes = M.GuestBytes;
        TimeRow.push_back(formatString("%.3f", NativeSeconds));
        SpaceRow.push_back(formatBytes(GuestBytes));
        Csv.addRow({Benchmark, ToolName, formatString("%.6f", M.Seconds),
                    "1.0", std::to_string(M.GuestBytes), "0", "1.0"});
        continue;
      }
      double Slowdown =
          NativeSeconds > 0 ? M.Seconds / NativeSeconds : 0.0;
      double SpaceOverhead =
          GuestBytes > 0
              ? static_cast<double>(M.GuestBytes + M.ToolBytes) /
                    static_cast<double>(GuestBytes)
              : 0.0;
      TimeRow.push_back(formatString("%.1f", Slowdown));
      SpaceRow.push_back(formatString("%.1f", SpaceOverhead));
      SlowdownSamples[ToolName].push_back(Slowdown);
      SpaceSamples[ToolName].push_back(SpaceOverhead);
      Csv.addRow({Benchmark, ToolName, formatString("%.6f", M.Seconds),
                  formatString("%.3f", Slowdown),
                  std::to_string(M.GuestBytes),
                  std::to_string(M.ToolBytes),
                  formatString("%.3f", SpaceOverhead)});
    }
    TimeTable.addRow(TimeRow);
    SpaceTable.addRow(SpaceRow);
  }

  std::vector<std::string> TimeMeanRow = {"geometric mean", ""};
  std::vector<std::string> SpaceMeanRow = {"geometric mean", ""};
  for (const std::string &ToolName : EvaluatedToolNames) {
    if (ToolName == "native")
      continue;
    TimeMeanRow.push_back(
        formatString("%.1f", geometricMean(SlowdownSamples[ToolName])));
    SpaceMeanRow.push_back(
        formatString("%.1f", geometricMean(SpaceSamples[ToolName])));
  }
  TimeTable.addSeparator();
  TimeTable.addRow(TimeMeanRow);
  SpaceTable.addSeparator();
  SpaceTable.addRow(SpaceMeanRow);

  std::printf("\nTime: slowdown vs native\n%s", TimeTable.render().c_str());
  std::printf("\nSpace: overhead vs native guest footprint\n%s",
              SpaceTable.render().c_str());

  double TrmsMean = geometricMean(SlowdownSamples["aprof-trms"]);
  double RmsMean = geometricMean(SlowdownSamples["aprof-rms"]);
  double HelMean = geometricMean(SlowdownSamples["helgrind"]);
  std::printf("\nShape checks (paper: aprof-trms ~38%% over aprof-rms; "
              "helgrind slowest):\n");
  std::printf("  aprof-trms / aprof-rms time ratio: %.2f\n",
              RmsMean > 0 ? TrmsMean / RmsMean : 0.0);
  std::printf("  helgrind / aprof-trms time ratio:  %.2f\n",
              TrmsMean > 0 ? HelMean / TrmsMean : 0.0);

  std::string CsvPath = benchOutputPath("table1.csv");
  if (Csv.writeToFile(CsvPath))
    std::printf("\nraw data written to %s\n", CsvPath.c_str());
  return 0;
}
