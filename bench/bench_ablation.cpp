//===- bench/bench_ablation.cpp - Design-choice ablations -------------------------===//
//
// Part of the isprof project, under the Apache License v2.0.
//
//===----------------------------------------------------------------------===//
//
// Ablations for the design decisions DESIGN.md calls out:
//   A1 (Section 4.2): the read/write timestamping algorithm vs the naive
//       per-activation set algorithm of Figure 10, as thread count and
//       stack depth grow — time per event and analysis-state bytes.
//   A2 (Section 5): three-level shadow tables vs a dense hash shadow,
//       same profiler, same trace.
//   A3 (Section 4.4): renumbering cost — counter limits from 2^12 to
//       2^32 on the same trace; renumber count and total time.
//   A4: serializing-scheduler slice length — interleaving granularity vs
//       instrumented run time (results must not change).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "core/NaiveProfiler.h"
#include "core/TrmsProfiler.h"
#include "instr/ContextAdapter.h"
#include "instr/Dispatcher.h"
#include "support/CommandLine.h"
#include "support/Format.h"
#include "support/Table.h"
#include "trace/Synthetic.h"
#include "vm/Optimizer.h"
#include "workloads/Runner.h"

#include <chrono>
#include <cstdio>

using namespace isp;

namespace {

template <typename ProfilerT>
double timeReplay(const std::vector<EventRecord> &Trace, ProfilerT &Profiler) {
  auto Start = std::chrono::steady_clock::now();
  replayTrace(Trace, Profiler);
  auto End = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(End - Start).count();
}

void ablationNaiveVsTimestamping() {
  printBanner("A1 (Section 4.2): timestamping algorithm vs Figure 10 "
              "naive sets");
  TextTable Table;
  Table.setHeader({"threads", "depth", "events", "naive ns/ev",
                   "fast ns/ev", "time ratio", "naive bytes",
                   "fast bytes"});
  for (unsigned Threads : {1u, 2u, 4u, 8u, 16u}) {
    for (unsigned Depth : {6u, 16u}) {
      SyntheticTraceOptions Gen;
      Gen.NumThreads = Threads;
      Gen.MaxCallDepth = Depth;
      Gen.NumOperations = 60000;
      Gen.SharedAddresses = 512;
      Gen.PrivateAddresses = 128;
      Gen.Seed = 1234 + Threads * 7 + Depth;
      std::vector<EventRecord> Trace = generateSyntheticTrace(Gen);

      NaiveTrmsProfiler Naive;
      double NaiveSecs = timeReplay(Trace, Naive);
      TrmsProfiler Fast;
      double FastSecs = timeReplay(Trace, Fast);

      double PerEvent = 1e9 / static_cast<double>(Trace.size());
      Table.addRow({std::to_string(Threads), std::to_string(Depth),
                    formatWithCommas(Trace.size()),
                    formatString("%.0f", NaiveSecs * PerEvent),
                    formatString("%.0f", FastSecs * PerEvent),
                    formatString("%.1fx", NaiveSecs / FastSecs),
                    formatBytes(Naive.memoryFootprintBytes()),
                    formatBytes(Fast.memoryFootprintBytes())});
    }
  }
  std::printf("%s", Table.render().c_str());
  std::printf("expected shape: the naive ratio grows with threads and "
              "depth (stack walking + cross-thread set removals); the "
              "timestamping algorithm stays flat.\n");
}

void ablationShadowLayout() {
  printBanner("A2 (Section 5): three-level shadow vs dense hash shadow");
  TextTable Table;
  Table.setHeader({"address spread", "3-level ns/ev", "dense ns/ev",
                   "3-level bytes", "dense bytes"});
  for (unsigned Spread : {1u, 16u, 256u}) {
    SyntheticTraceOptions Gen;
    Gen.NumThreads = 4;
    Gen.NumOperations = 120000;
    Gen.SharedAddresses = 256 * Spread;
    Gen.PrivateAddresses = 64 * Spread;
    Gen.Seed = 99 + Spread;
    std::vector<EventRecord> Trace = generateSyntheticTrace(Gen);

    TrmsProfiler ThreeLevel;
    double ThreeSecs = timeReplay(Trace, ThreeLevel);
    DenseTrmsProfiler Dense;
    double DenseSecs = timeReplay(Trace, Dense);

    double PerEvent = 1e9 / static_cast<double>(Trace.size());
    Table.addRow({formatString("%ux", Spread),
                  formatString("%.0f", ThreeSecs * PerEvent),
                  formatString("%.0f", DenseSecs * PerEvent),
                  formatBytes(ThreeLevel.memoryFootprintBytes()),
                  formatBytes(Dense.memoryFootprintBytes())});
  }
  std::printf("%s", Table.render().c_str());
  std::printf("expected shape: the chunked tables win on lookup time at "
              "every spread; hash nodes cost more per populated cell on "
              "clustered address use.\n");
}

void ablationRenumbering() {
  printBanner("A3 (Section 4.4): timestamp renumbering cost vs counter "
              "width");
  SyntheticTraceOptions Gen;
  Gen.NumThreads = 4;
  Gen.NumOperations = 150000;
  Gen.Seed = 31;
  std::vector<EventRecord> Trace = generateSyntheticTrace(Gen);

  TextTable Table;
  Table.setHeader({"counter limit", "renumberings", "seconds",
                   "vs unlimited"});
  double Baseline = 0;
  for (uint64_t LimitLog : {32u, 16u, 14u, 12u}) {
    TrmsProfilerOptions Opts;
    Opts.CounterLimit = uint64_t(1) << LimitLog;
    TrmsProfiler Profiler(Opts);
    double Secs = timeReplay(Trace, Profiler);
    if (LimitLog == 32)
      Baseline = Secs;
    Table.addRow({formatString("2^%llu",
                               static_cast<unsigned long long>(LimitLog)),
                  formatWithCommas(Profiler.renumberings()),
                  formatString("%.3f", Secs),
                  formatString("%.2fx", Baseline > 0 ? Secs / Baseline
                                                     : 0.0)});
  }
  std::printf("%s", Table.render().c_str());
  std::printf("expected shape: renumbering is amortized — even a 2^12 "
              "counter (thousands of renumber passes) costs only a small "
              "constant factor; results are bit-identical (tested).\n");
}

void ablationSliceLength() {
  printBanner("A4: scheduler slice length (interleaving granularity)");
  const WorkloadInfo *W = findWorkload("dedup");
  WorkloadParams Params;
  Params.Threads = 4;
  Params.Size = 64;

  TextTable Table;
  Table.setHeader({"slice (instrs)", "thread switches", "aprof-trms secs",
                   "guest output stable"});
  std::string ReferenceOutput;
  for (uint64_t Slice : {25u, 150u, 1000u, 10000u}) {
    MachineOptions MachineOpts;
    MachineOpts.SliceLength = Slice;
    Measurement M =
        measureWorkload(*W, Params, "aprof-trms", /*Repeats=*/1,
                        MachineOpts);
    if (!M.Ok) {
      std::fprintf(stderr, "dedup: %s\n", M.Error.c_str());
      return;
    }
    RunResult Native = runWorkloadNative(*W, Params, MachineOpts);
    if (ReferenceOutput.empty())
      ReferenceOutput = Native.Output;
    Table.addRow({formatWithCommas(Slice),
                  formatWithCommas(M.Stats.ThreadSwitches),
                  formatString("%.3f", M.Seconds),
                  Native.Output == ReferenceOutput ? "yes" : "NO"});
  }
  std::printf("%s", Table.render().c_str());
  std::printf("expected shape: finer slices multiply thread switches "
              "(more induced-access churn) at modest time cost; the "
              "synchronized guest computes identical results throughout.\n");
}

void ablationContextSensitivity() {
  printBanner("A5: routine-level vs calling-context-level profiling");
  TextTable Table;
  Table.setHeader({"workload", "mode", "profiles", "seconds",
                   "state bytes"});
  for (const char *Name : {"dbserver", "dedup"}) {
    const WorkloadInfo *W = findWorkload(Name);
    WorkloadParams Params;
    Params.Threads = 4;
    Params.Size = 96;
    std::optional<Program> Prog = compileWorkload(*W, Params);
    if (!Prog)
      continue;
    for (bool Contexts : {false, true}) {
      TrmsProfiler Profiler;
      ContextAdapter Adapter(Profiler);
      EventDispatcher Dispatcher;
      Dispatcher.addTool(Contexts ? static_cast<Tool *>(&Adapter)
                                  : &Profiler);
      Machine M(*Prog, &Dispatcher);
      auto Start = std::chrono::steady_clock::now();
      RunResult R = M.run();
      auto End = std::chrono::steady_clock::now();
      if (!R.Ok)
        continue;
      uint64_t Bytes = Contexts ? Adapter.memoryFootprintBytes()
                                : Profiler.memoryFootprintBytes();
      Table.addRow({Name, Contexts ? "contexts" : "routines",
                    formatWithCommas(
                        Profiler.database().mergedByRoutine().size()),
                    formatString("%.3f",
                                 std::chrono::duration<double>(End - Start)
                                     .count()),
                    formatBytes(Bytes)});
    }
  }
  std::printf("%s", Table.render().c_str());
  std::printf("expected shape: context keying multiplies the number of "
              "distinct profiles at a modest time/space premium (the "
              "adapter adds one tree walk per call).\n");
}

void ablationOptimizer() {
  printBanner("A6: bytecode peephole optimizer (profiles invariant by "
              "construction)");
  TextTable Table;
  Table.setHeader({"workload", "instrs before", "instrs after", "saved",
                   "folds", "branches", "BBs unchanged"});
  for (const char *Name :
       {"dbserver", "vips_pipeline", "md", "smithwa", "sort_compare"}) {
    const WorkloadInfo *W = findWorkload(Name);
    WorkloadParams Params;
    Params.Threads = 4;
    Params.Size = 96;
    std::optional<Program> Prog = compileWorkload(*W, Params);
    if (!Prog)
      continue;
    RunResult Plain = Machine(*Prog, nullptr).run();
    OptimizerStats Stats = optimizeProgram(*Prog);
    RunResult Optimized = Machine(*Prog, nullptr).run();
    if (!Plain.Ok || !Optimized.Ok)
      continue;
    double Saved =
        100.0 *
        (1.0 - static_cast<double>(Optimized.Stats.Instructions) /
                   static_cast<double>(Plain.Stats.Instructions));
    Table.addRow(
        {Name, formatWithCommas(Plain.Stats.Instructions),
         formatWithCommas(Optimized.Stats.Instructions),
         formatString("%.1f%%", Saved),
         std::to_string(Stats.ConstantsFolded),
         std::to_string(Stats.BranchesResolved),
         Plain.Stats.BasicBlocks == Optimized.Stats.BasicBlocks ? "yes"
                                                                : "NO"});
  }
  std::printf("%s", Table.render().c_str());
  std::printf("expected shape: modest instruction savings (template-"
              "substituted constants fold), zero change to the basic-"
              "block cost metric or to any per-thread event sequence.\n");
}

} // namespace

int main(int Argc, char **Argv) {
  OptionParser Options("Ablations: naive vs timestamping, shadow layout, "
                       "renumbering, scheduler slice, context keying");
  if (!Options.parse(Argc, Argv))
    return 1;
  ablationNaiveVsTimestamping();
  ablationShadowLayout();
  ablationRenumbering();
  ablationSliceLength();
  ablationContextSensitivity();
  ablationOptimizer();
  return 0;
}
