file(REMOVE_RECURSE
  "../bench/bench_case_studies"
  "../bench/bench_case_studies.pdb"
  "CMakeFiles/bench_case_studies.dir/bench_case_studies.cpp.o"
  "CMakeFiles/bench_case_studies.dir/bench_case_studies.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_case_studies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
