file(REMOVE_RECURSE
  "../bench/bench_metrics"
  "../bench/bench_metrics.pdb"
  "CMakeFiles/bench_metrics.dir/bench_metrics.cpp.o"
  "CMakeFiles/bench_metrics.dir/bench_metrics.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
