file(REMOVE_RECURSE
  "CMakeFiles/isp_bench_util.dir/BenchUtil.cpp.o"
  "CMakeFiles/isp_bench_util.dir/BenchUtil.cpp.o.d"
  "libisp_bench_util.a"
  "libisp_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isp_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
