# Empty dependencies file for isp_bench_util.
# This may be replaced when dependencies are built.
