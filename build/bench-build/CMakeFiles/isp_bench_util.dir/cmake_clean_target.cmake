file(REMOVE_RECURSE
  "libisp_bench_util.a"
)
