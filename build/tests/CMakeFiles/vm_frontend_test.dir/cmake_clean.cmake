file(REMOVE_RECURSE
  "CMakeFiles/vm_frontend_test.dir/VmFrontendTest.cpp.o"
  "CMakeFiles/vm_frontend_test.dir/VmFrontendTest.cpp.o.d"
  "vm_frontend_test"
  "vm_frontend_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_frontend_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
