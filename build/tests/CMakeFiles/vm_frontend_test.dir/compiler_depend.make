# Empty compiler generated dependencies file for vm_frontend_test.
# This may be replaced when dependencies are built.
