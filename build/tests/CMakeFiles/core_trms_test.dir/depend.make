# Empty dependencies file for core_trms_test.
# This may be replaced when dependencies are built.
