file(REMOVE_RECURSE
  "CMakeFiles/core_trms_test.dir/CoreTrmsTest.cpp.o"
  "CMakeFiles/core_trms_test.dir/CoreTrmsTest.cpp.o.d"
  "core_trms_test"
  "core_trms_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_trms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
