file(REMOVE_RECURSE
  "CMakeFiles/vm_fuzz_test.dir/VmFuzzTest.cpp.o"
  "CMakeFiles/vm_fuzz_test.dir/VmFuzzTest.cpp.o.d"
  "vm_fuzz_test"
  "vm_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
