# Empty dependencies file for vm_machine_test.
# This may be replaced when dependencies are built.
