file(REMOVE_RECURSE
  "CMakeFiles/vm_machine_test.dir/VmMachineTest.cpp.o"
  "CMakeFiles/vm_machine_test.dir/VmMachineTest.cpp.o.d"
  "vm_machine_test"
  "vm_machine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_machine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
