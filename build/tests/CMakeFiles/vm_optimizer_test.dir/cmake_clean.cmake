file(REMOVE_RECURSE
  "CMakeFiles/vm_optimizer_test.dir/VmOptimizerTest.cpp.o"
  "CMakeFiles/vm_optimizer_test.dir/VmOptimizerTest.cpp.o.d"
  "vm_optimizer_test"
  "vm_optimizer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_optimizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
