# Empty compiler generated dependencies file for vm_optimizer_test.
# This may be replaced when dependencies are built.
